GO ?= go

.PHONY: all build test race vet check bench bench-host golden clean

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the short test suite under the race detector — the CI gate for
# the concurrent simulated-machine hot path.
race:
	$(GO) test -race -short ./...

# check is the full CI target: vet + race-detector short tests + full tests.
check: vet race test

# bench runs the Go benchmarks (figure drivers + device micro-benchmarks).
bench:
	$(GO) test -run XXX -bench . -benchtime=1x ./...

# bench-host produces the machine-readable host-performance record
# BENCH_1.json (see scripts/bench.sh and README.md).
bench-host:
	scripts/bench.sh

# golden re-checks that simulated cycle totals match the committed golden.
golden:
	$(GO) test ./internal/experiments/ -run 'TestGoldenCycles|TestCycleDeterminism' -v

clean:
	rm -f ffccd.test
