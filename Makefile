GO ?= go

.PHONY: all build test race vet fmt check bench bench-host benchsmoke benchscale benchdiff benchgate servesmoke servecrash serveshard golden crashmatrix clean

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# race runs the short test suite under the race detector — the CI gate for
# the concurrent simulated-machine hot path.
race:
	$(GO) test -race -short ./...

# crashmatrix is the reduced scheduled crash campaign: every one of the 26
# settings, a pinned seed, stratified site sampling (each site class's first
# occurrence always included), and both single and crash-during-recovery
# schedules. Any failure prints a one-line `ffccd-crashtest -repro` command
# that replays it bit-identically.
crashmatrix: build
	$(GO) run ./cmd/ffccd-crashtest -sites -seed 1 -max-sites 12 \
		-nested -max-nested 4 -timeout 2m

# servecrash is the reduced SERVING-PATH crash campaign: every scheme, a
# pinned seed, stratified site sampling over the open-loop dispatch phase,
# nested crash-during-recovery schedules, and per-trial durable-ack
# validation — the server must resume and every acknowledged SET must read
# back after recovery. Failures print a `ffccd-crashtest -serve -repro`
# command that replays bit-identically.
servecrash: build
	$(GO) run ./cmd/ffccd-crashtest -serve -seed 1 -max-sites 6 \
		-nested -max-nested 2 -timeout 2m \
		-serve-clients 4 -serve-ops 1200 -serve-keys 400

# check is the full CI target: gofmt + vet + race-detector short tests +
# full tests + the reduced crash-schedule matrix + the measurement smoke +
# the serving-layer smoke + the serving-path crash campaign + the multicore
# scaling gate + the sharded-serving scaling gate + the bench-record
# regression gate.
check: fmt vet race test crashmatrix benchsmoke servesmoke servecrash benchscale serveshard benchgate

# bench runs the Go benchmarks (figure drivers + device micro-benchmarks).
bench:
	$(GO) test -run XXX -bench . -benchtime=1x ./...

# bench-host produces the machine-readable host-performance record
# BENCH_7.json (see scripts/bench.sh and README.md). The paper-scale rows
# run for hours; FFCCD_BENCH_PAPER=0 scripts/bench.sh skips them.
bench-host:
	scripts/bench.sh

# benchgate diffs the two newest committed BENCH_<n>.json records: any
# sim_cycles_total drift fails (simulated behaviour changed), and a >15%
# host_seconds regression on a like-for-like configuration fails
# (FFCCD_BENCHGATE_TOL overrides). Skips cleanly with fewer than two files.
benchgate:
	$(GO) run ./scripts/bench_gate

# benchscale is the multicore scaling gate: fig5 under FFCCD_PARALLEL=1 vs
# =GOMAXPROCS must show a parallel speedup (work-stealing pool regression
# check). Skips cleanly on single-core hosts.
benchscale: build
	scripts/benchscale.sh

# serveshard is the sharded-serving scaling gate: one serving scheme at
# -shards 4 must run at least 2x faster than at -shards 1 on a >=4-core
# host (each shard is an independent simulated machine run as a workpool
# job). Skips cleanly on hosts with fewer than 4 cores.
serveshard: build
	scripts/serveshard.sh

# benchsmoke is the fast CI pass over the measurement tooling: the device
# micro-benchmarks run once each (-benchtime=1x), and the bench CLI runs a
# tiny fig5 with the span fast path off and on — exercising the -span/-fork
# plumbing and the BENCH record fields without a full bench-host session.
benchsmoke: build
	$(GO) test -run XXX -bench . -benchtime=1x ./internal/pmem/
	$(GO) run ./cmd/ffccd-bench -experiment fig5 -scale 0.0005 -span=false -json /tmp/ffccd_benchsmoke.json >/dev/null
	$(GO) run ./cmd/ffccd-bench -experiment fig5 -scale 0.0005 -span=true -json /tmp/ffccd_benchsmoke.json >/dev/null
	@echo "benchsmoke OK"

# servesmoke is the fast CI pass over the open-loop serving layer: a tiny
# FFCCD-vs-STW grid through the ffccd-redis serve mode (exercising the
# virtual-time scheduler, batched dispatch, and the SLO table), plus the
# host-parallelism determinism pin from the test suite.
servesmoke: build
	$(GO) run ./cmd/ffccd-redis -clients 8 -ops 20000 -keys 2000 -scheme all >/dev/null
	$(GO) test ./internal/redisws/ -run 'TestServeDeterministicAcrossHostParallelism|TestServeShape' >/dev/null
	@echo "servesmoke OK"

# benchdiff compares two `go test -bench` outputs with benchstat, e.g.
#   make bench > old.txt; <changes>; make bench > new.txt
#   make benchdiff OLD=old.txt NEW=new.txt
# benchstat is not vendored and this repo never installs tools from the
# network; if it is missing, say where to get it and exit cleanly.
OLD ?= old.txt
NEW ?= new.txt
benchdiff:
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(OLD) $(NEW); \
	else \
		echo "benchdiff: benchstat not found in PATH."; \
		echo "Install it on a networked machine (golang.org/x/perf/cmd/benchstat)"; \
		echo "or diff $(OLD) and $(NEW) by hand; this target never installs tools."; \
	fi

# golden re-checks that simulated cycle totals match the committed golden —
# each golden spec is replayed through BOTH the from-scratch path and the
# checkpoint/fork path (the /scratch and /fork subtests), with observability
# ENABLED (tracing must never perturb simulated results).
golden:
	$(GO) test ./internal/experiments/ -run 'TestGoldenCycles|TestCycleDeterminism|TestTracingDoesNotPerturb' -v

clean:
	rm -f ffccd.test
