package ffccd_test

// Serving-path soak: a wide double-crash campaign — for every scheme, a
// first power failure mid-dispatch at many stratified sites, each paired
// with a second failure injected DURING the recovery from the first — with
// durable-ack validation, online resume, and a final graph check per
// schedule. The stratified version in internal/faultinject's tests and
// `make servecrash` runs a handful of sites; this is the long form, skipped
// under -short.

import (
	"testing"
	"time"

	"ffccd/internal/faultinject"
)

func TestSoakServingDoubleCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	co := faultinject.ServeCampaignOptions{
		Seed:    77,
		Clients: 4,
		Ops:     1600,
		Keys:    400,
		// 24 first-level sites per scheme, every one of them also exercised
		// as the base of a crash-during-recovery schedule.
		MaxSites:  24,
		Nested:    true,
		MaxNested: 24,
		Timeout:   2 * time.Minute,
		Shrink:    true,
	}
	for _, scheme := range faultinject.ServeSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			out := faultinject.ExploreServeScheme(scheme, co)
			if out.Scheduled == 0 {
				t.Fatalf("%s: no schedules ran (census %d sites)", scheme, out.SitesTotal)
			}
			for _, f := range out.Failures {
				t.Errorf("%s: %s", scheme, f)
			}
			t.Logf("%s: %d/%d schedules passed over %d sites, coverage %s",
				scheme, out.Passed, out.Scheduled, out.SitesTotal, out.CoverageString())
		})
	}
}
