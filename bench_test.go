package ffccd

// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment from internal/experiments
// once per iteration and reports the headline numbers as custom metrics; run
// with -v to see the full rendered tables.
//
//	go test -bench=. -benchmem
//	FFCCD_SCALE=0.004 go test -bench=BenchmarkTable3 -v   # paper/250 scale
//
// The default scale keeps the whole suite within a few minutes; results are
// recorded in EXPERIMENTS.md.

import (
	"os"
	"strconv"
	"testing"

	"ffccd/internal/core"
	"ffccd/internal/experiments"
	"ffccd/internal/faultinject"
	"ffccd/internal/sim"
	"ffccd/internal/workload"
)

// benchScale returns the workload scale relative to the paper's 5M-insert
// setup (override with FFCCD_SCALE).
func benchScale() float64 {
	if s := os.Getenv("FFCCD_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.002 // 10k inserts
}

// BenchmarkFigure1 regenerates Fig. 1: fragmentation growth and throughput
// decline across three runs of Echo without defragmentation.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		runs := res.Series["4KB"]
		b.ReportMetric(runs[0].FragR, "fragR-run1")
		b.ReportMetric(runs[2].FragR, "fragR-run3")
		b.ReportMetric(runs[2].ThroughputRel, "thr-run3-%")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure5 regenerates Fig. 5: the Espresso baseline GC overhead
// breakdown on the microbenchmarks.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		var gc, norm float64
		for _, r := range res.Rows {
			gc += r.GCPct
			norm += r.NormalizedTime
		}
		n := float64(len(res.Rows))
		b.ReportMetric(gc/n, "gc-over-app-%")
		b.ReportMetric(norm/n, "norm-time")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable3 regenerates Table 3: fragmentation effectiveness on the
// five microbenchmarks under Normal and Relaxed parameters.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		var rn, rr float64
		for _, row := range res.Rows {
			rn += row.ReductionN
			rr += row.ReductionR
		}
		n := float64(len(res.Rows))
		b.ReportMetric(rn/n, "avg-reduction-N-%")
		b.ReportMetric(rr/n, "avg-reduction-R-%")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure14 regenerates Fig. 14: defragmentation time breakdown and
// normalised execution time for the microbenchmarks under all four schemes.
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure14(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		avg := map[core.Scheme][]float64{}
		for _, r := range res.Rows {
			avg[r.Scheme] = append(avg[r.Scheme], r.NormalizedTime)
		}
		mean := func(s core.Scheme) float64 {
			var t float64
			for _, v := range avg[s] {
				t += v
			}
			return t / float64(len(avg[s]))
		}
		b.ReportMetric(mean(core.SchemeEspresso), "norm-espresso")
		b.ReportMetric(mean(core.SchemeSFCCD), "norm-sfccd")
		b.ReportMetric(mean(core.SchemeFFCCD), "norm-ffccd")
		b.ReportMetric(mean(core.SchemeFFCCDCheckLookup), "norm-ffccd+cl")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable4 regenerates Table 4: fragmentation effectiveness on the
// concurrent data structures and KV applications.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		var red float64
		for _, row := range res.Rows {
			red += row.Reduction
		}
		b.ReportMetric(red/float64(len(res.Rows)), "avg-reduction-%")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure15 regenerates Fig. 15: the Fig. 14 axes on applications.
func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure15(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		var norm float64
		n := 0
		for _, r := range res.Rows {
			if r.Scheme == core.SchemeFFCCDCheckLookup {
				norm += r.NormalizedTime
				n++
			}
		}
		b.ReportMetric(norm/float64(n), "norm-ffccd+cl")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure16 regenerates the Redis case study (§7.4).
func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure16(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range res.Variants {
			switch v.Name {
			case "FFCCD":
				b.ReportMetric(v.FragReduction, "ffccd-red-%")
				b.ReportMetric(v.P99, "ffccd-p99-cyc")
			case "STW defrag":
				b.ReportMetric(v.FragReduction, "stw-red-%")
				b.ReportMetric(v.P99, "stw-p99-cyc")
			}
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable1 renders the hardware-cost model (static).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Table1()
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkTable2 renders the simulation parameters (static).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Table2()
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkAblationRBB sweeps the Reached Bitmap Buffer size.
func BenchmarkAblationRBB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationRBB(benchScale(), []int{1, 4, 8, 32})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Entries == 8 && row.Hits+row.Misses > 0 {
				b.ReportMetric(float64(row.Hits)/float64(row.Hits+row.Misses)*100, "rbb8-hit-%")
			}
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkAblationPMFT compares forwarding-table designs.
func BenchmarkAblationPMFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPMFT(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 3 && res.Rows[1].CyclesPerCheck > 0 {
			red := (res.Rows[1].CyclesPerCheck - res.Rows[2].CyclesPerCheck) / res.Rows[1].CyclesPerCheck * 100
			b.ReportMetric(red, "checklookup-red-%")
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkAblationWrites compares PM write traffic across schemes (the
// §3.3.3 endurance argument).
func BenchmarkAblationWrites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationWrites(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		byScheme := map[core.Scheme]experiments.AblationWritesRow{}
		for _, row := range res.Rows {
			byScheme[row.Scheme] = row
		}
		esp := byScheme[core.SchemeEspresso]
		ff := byScheme[core.SchemeFFCCD]
		if esp.MediaWrites > 0 {
			b.ReportMetric(float64(ff.MediaWrites)/float64(esp.MediaWrites)*100, "ffccd-writes-vs-espresso-%")
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFaultInjection runs a small §7.1 campaign (the full 26×N campaign
// is cmd/ffccd-crashtest).
func BenchmarkFaultInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		passed, trials := 0, 0
		for _, s := range faultinject.AllSettings() {
			out := faultinject.RunSetting(s, 2, int64(7000+i))
			passed += out.Passed
			trials += out.Trials
			if len(out.Failures) > 0 {
				b.Fatalf("%s: %s", s, out.Failures[0])
			}
		}
		b.ReportMetric(float64(passed)/float64(trials)*100, "pass-%")
	}
}

// BenchmarkReadBarrier measures the raw D_RW resolve cost during an open
// epoch — the paper's core fast-path (software check vs checklookup).
func BenchmarkReadBarrier(b *testing.B) {
	for _, scheme := range []core.Scheme{core.SchemeFFCCD, core.SchemeFFCCDCheckLookup} {
		b.Run(scheme.String(), func(b *testing.B) {
			env, err := experiments.NewEnv(64<<20, 12)
			if err != nil {
				b.Fatal(err)
			}
			store, err := experiments.BuildStore(env.Ctx, env.Pool, "LL", workload.Config{InitInserts: 2100})
			if err != nil {
				b.Fatal(err)
			}
			ctx := env.Ctx
			for i := uint64(0); i < 2000; i++ {
				if err := store.Insert(ctx, i, make([]byte, 128)); err != nil {
					b.Fatal(err)
				}
			}
			for i := uint64(0); i < 2000; i += 2 {
				store.Delete(ctx, i)
			}
			opt := core.DefaultOptions()
			opt.Scheme = scheme
			opt.TriggerRatio, opt.TargetRatio = 1.01, 1.005
			eng := core.NewEngine(env.Pool, opt)
			defer eng.Close()
			gcCtx := sim.NewCtx(&env.Cfg)
			if !eng.BeginCycle(gcCtx) {
				b.Fatal("no epoch")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store.Get(ctx, uint64(i)%2000)
			}
			b.StopTimer()
			b.ReportMetric(float64(ctx.Clock.Cycles(sim.CatCheckLookup))/float64(b.N), "chk-cyc/op")
		})
	}
}
