// Package ffccd is a Go reproduction of "FFCCD: Fence-Free Crash-Consistent
// Concurrent Defragmentation for Persistent Memory" (Xu, Ye, Solihin, Shen —
// ISCA 2022).
//
// The package provides the public surface over the internal subsystems:
//
//   - a simulated persistent-memory machine (cache + WPQ + ADR crash
//     semantics, Table 2 cost model),
//   - the PMOP programming model (pools, persistent pointers, typed
//     allocation, roots, undo-log transactions, D_RW-style accessors),
//   - the defragmentation engine with the Espresso, SFCCD, FFCCD and
//     FFCCD+checklookup schemes and their crash recovery,
//   - the paper's evaluation workloads, data structures and comparators.
//
// Quickstart:
//
//	cfg := ffccd.DefaultConfig()
//	rt := ffccd.NewRuntime(&cfg, 256<<20)
//	reg := ffccd.NewRegistry()
//	ffccd.RegisterStoreTypes(reg)
//	pool, _ := rt.Create("mypool", 64<<20, ffccd.Page4K, reg)
//	ctx := ffccd.NewCtx(&cfg)
//	list, _ := ffccd.NewList(ctx, pool)
//	list.Insert(ctx, 1, []byte("hello"))
//
//	eng := ffccd.NewEngine(pool, ffccd.DefaultEngineOptions())
//	defer eng.Close()
//	eng.RunCycle(ctx) // one defragmentation cycle
//
// See examples/ for complete programs and DESIGN.md for the system map.
package ffccd

import (
	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/kv"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// Simulation substrate.
type (
	// Config is the simulated-machine parameter set (Table 2 defaults).
	Config = sim.Config
	// Ctx is a per-thread simulation context (clock + TLB).
	Ctx = sim.Ctx
	// Clock accumulates simulated cycles by category.
	Clock = sim.Clock
	// Device is the simulated persistent-memory module.
	Device = pmem.Device
)

// Programming model.
type (
	// Runtime manages pools on a device.
	Runtime = pmop.Runtime
	// Pool is a persistent memory object pool.
	Pool = pmop.Pool
	// Ptr is a persistent pointer (pool id + offset).
	Ptr = pmop.Ptr
	// Registry holds persistent type layouts.
	Registry = pmop.Registry
	// TypeInfo describes a persistent type.
	TypeInfo = pmop.TypeInfo
	// Tx is an undo-log transaction.
	Tx = pmop.Tx
)

// Defragmentation engine.
type (
	// Engine is the concurrent defragmenter.
	Engine = core.Engine
	// EngineOptions configure an Engine.
	EngineOptions = core.Options
	// Scheme selects the crash-consistency design.
	Scheme = core.Scheme
)

// Data structures and stores.
type (
	// Store is the uniform key-value interface.
	Store = ds.Store
	// List is the persistent doubly linked list.
	List = ds.List
	// AVL is the persistent AVL tree.
	AVL = ds.AVL
	// RBTree is the persistent left-leaning red-black tree.
	RBTree = ds.RBTree
	// BPTree is the persistent order-4 B+tree.
	BPTree = ds.BPTree
	// StringStore is the string-swap slot store.
	StringStore = ds.StringStore
	// BzTree is the append/copy-on-write concurrent tree.
	BzTree = ds.BzTree
	// FPTree is the hybrid fingerprinting tree.
	FPTree = ds.FPTree
	// Echo is the Echo-style hash KV store.
	Echo = kv.Echo
	// PmemKV is the pmemkv-style concurrent engine.
	PmemKV = kv.PmemKV
)

// Schemes.
const (
	SchemeNone             = core.SchemeNone
	SchemeEspresso         = core.SchemeEspresso
	SchemeSFCCD            = core.SchemeSFCCD
	SchemeFFCCD            = core.SchemeFFCCD
	SchemeFFCCDCheckLookup = core.SchemeFFCCDCheckLookup
)

// OS page-size shifts for footprint/TLB accounting.
const (
	Page4K = uint(12)
	Page2M = uint(21)
)

// DefaultConfig returns the Table 2 machine parameters.
func DefaultConfig() Config { return sim.DefaultConfig() }

// NewCtx creates a per-thread simulation context.
func NewCtx(cfg *Config) *Ctx { return sim.NewCtx(cfg) }

// NewRuntime creates a runtime over a fresh simulated device.
func NewRuntime(cfg *Config, devSize uint64) *Runtime { return pmop.NewRuntime(cfg, devSize) }

// AttachRuntime reattaches to an existing device after a crash or restart.
func AttachRuntime(cfg *Config, dev *Device) (*Runtime, error) { return pmop.Attach(cfg, dev) }

// NewRegistry creates an empty persistent-type registry.
func NewRegistry() *Registry { return pmop.NewRegistry() }

// RegisterStoreTypes registers the built-in data-structure types.
func RegisterStoreTypes(reg *Registry) { ds.RegisterTypes(reg) }

// RegisterKVTypes registers the Echo/pmemkv store types.
func RegisterKVTypes(reg *Registry) { kv.RegisterTypes(reg) }

// DefaultEngineOptions returns FFCCD+checklookup with the paper's normal
// defragmentation parameters (trigger 1.5, target 1.25).
func DefaultEngineOptions() EngineOptions { return core.DefaultOptions() }

// NewEngine attaches a defragmentation engine to a pool.
func NewEngine(p *Pool, opt EngineOptions) *Engine { return core.NewEngine(p, opt) }

// Recover reopens a pool after a crash (or cleanly), runs the scheme's
// recovery, completes any interrupted defragmentation epoch, and returns the
// attached engine. The correct entry point for every reopen.
func Recover(ctx *Ctx, p *Pool, opt EngineOptions) (*Engine, error) {
	return core.Recover(ctx, p, opt)
}

// Data-structure constructors.
var (
	NewList   = ds.NewList
	NewAVL    = ds.NewAVL
	NewRBTree = ds.NewRBTree
	NewBPTree = ds.NewBPTree
	NewBzTree = ds.NewBzTree
	NewFPTree = ds.NewFPTree
	NewEcho   = kv.NewEcho
	NewPmemKV = kv.NewPmemKV
)

// NewStringStore creates a string-swap store with the given slot count.
func NewStringStore(ctx *Ctx, p *Pool, slots int) (*StringStore, error) {
	return ds.NewStringStore(ctx, p, slots)
}
