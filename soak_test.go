package ffccd_test

// Soak test: a long randomized lifecycle — churn, auto-triggered
// defragmentation, periodic power failures at arbitrary points, recovery —
// with continuous model verification. This is the closest the test suite
// gets to "run it for a day"; skipped under -short.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ffccd"
	"ffccd/internal/checker"
	"ffccd/internal/pmem"
	"ffccd/internal/trace"
)

// soakGenDeadline bounds one generation (churn + crash + recovery + full
// verification). A generation that blows past it is a hang — a recovery
// livelock or a lost wakeup in the engine — and the test fails immediately
// instead of stalling CI until the global test timeout.
const soakGenDeadline = 2 * time.Minute

func TestSoakLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, scheme := range []ffccd.Scheme{ffccd.SchemeSFCCD, ffccd.SchemeFFCCDCheckLookup} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			soak(t, scheme, 6, 1500)
		})
	}
}

func soak(t *testing.T, scheme ffccd.Scheme, generations, opsPerGen int) {
	cfg := ffccd.DefaultConfig()
	cfg.CacheBytes = 256 * 1024
	rt := ffccd.NewRuntime(&cfg, 256<<20)
	ctx := ffccd.NewCtx(&cfg)
	mkReg := func() *ffccd.Registry {
		r := ffccd.NewRegistry()
		ffccd.RegisterStoreTypes(r)
		return r
	}
	pool, err := rt.Create("soak", 96<<20, ffccd.Page4K, mkReg())
	if err != nil {
		t.Fatal(err)
	}
	dev := rt.Device()
	rng := rand.New(rand.NewSource(77))

	opt := ffccd.DefaultEngineOptions()
	opt.Scheme = scheme
	opt.TriggerRatio, opt.TargetRatio = 1.2, 1.05

	model := map[uint64][]byte{}
	var eng *ffccd.Engine

	for gen := 0; gen < generations; gen++ {
		gen := gen
		// Run the whole generation under a deadline. The body only touches
		// trial-local simulated state, so on expiry the goroutine is safely
		// abandoned and the test fails.
		done := make(chan error, 1)
		go func() {
			done <- func() error {
				store, err := ffccd.NewList(ctx, pool)
				if err != nil {
					return fmt.Errorf("gen %d: %v", gen, err)
				}
				if eng == nil {
					eng = ffccd.NewEngine(pool, opt)
				}

				// Churn with transactional ops; every op keeps the model in sync.
				for i := 0; i < opsPerGen; i++ {
					key := rng.Uint64() % 800
					switch rng.Intn(10) {
					case 0, 1, 2, 3, 4, 5:
						v := trace.ValueFor(key^uint64(gen*opsPerGen+i), 16+rng.Intn(140))
						if err := store.Insert(ctx, key, v); err != nil {
							return fmt.Errorf("gen %d op %d: %v", gen, i, err)
						}
						model[key] = v
					case 6, 7:
						store.Delete(ctx, key)
						delete(model, key)
					default:
						store.Get(ctx, key)
					}
					// Occasionally run a synchronous defragmentation cycle.
					if i%400 == 399 && pool.Heap().Frag(ffccd.Page4K).FragRatio > opt.TriggerRatio {
						eng.RunCycle(ctx)
					}
				}

				// Sometimes crash mid-epoch, sometimes crash quiescent,
				// sometimes shut down cleanly.
				mode := rng.Intn(3)
				switch mode {
				case 0: // crash mid-epoch if possible
					if eng.BeginCycle(ctx) {
						eng.StepCompaction(ctx, rng.Intn(600))
					}
					crashPolicy(dev, rng)
					dev.Crash()
					if eng.RBB() != nil {
						eng.RBB().PowerLossFlush()
					}
				case 1: // crash with the engine idle (dirty cache still lost)
					crashPolicy(dev, rng)
					dev.Crash()
					if eng.RBB() != nil {
						eng.RBB().PowerLossFlush()
					}
				default: // clean shutdown
					eng.Close()
					dev.FlushAll(ctx)
				}
				eng = nil

				// Restart.
				rt2, err := ffccd.AttachRuntime(&cfg, dev)
				if err != nil {
					return fmt.Errorf("gen %d attach: %v", gen, err)
				}
				pool, err = rt2.Open("soak", mkReg())
				if err != nil {
					return fmt.Errorf("gen %d open: %v", gen, err)
				}
				eng, err = ffccd.Recover(ctx, pool, opt)
				if err != nil {
					return fmt.Errorf("gen %d recover: %v", gen, err)
				}

				// Verify: rebuild the store view, compare against the
				// surviving model. Crashes may have rolled back the last
				// uncommitted op, but every op here committed before the
				// crash point, so the model holds exactly.
				store, err = ffccd.NewList(ctx, pool)
				if err != nil {
					return fmt.Errorf("gen %d rebuild: %v", gen, err)
				}
				if err := checker.CheckStore(ctx, store, model); err != nil {
					return fmt.Errorf("gen %d (mode %d): %v", gen, mode, err)
				}
				if _, err := checker.CheckGraph(ctx, pool); err != nil {
					return fmt.Errorf("gen %d graph: %v", gen, err)
				}
				return nil
			}()
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(soakGenDeadline):
			t.Fatalf("gen %d: exceeded the %s per-generation deadline (hang)", gen, soakGenDeadline)
		}
	}
	if eng != nil {
		eng.Close()
	}
}

func crashPolicy(dev *pmem.Device, rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0:
		dev.SetCrashPolicy(pmem.DropAllInflight)
	case 1:
		dev.SetCrashPolicy(pmem.KeepAllInflight)
	default:
		salt := rng.Uint64()
		dev.SetCrashPolicy(func(line uint64) bool {
			return (line*0x9E3779B97F4A7C15+salt&0xFFFF)%3 != 0
		})
	}
}
