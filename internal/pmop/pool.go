package pmop

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"ffccd/internal/alloc"
	"ffccd/internal/pmem"
	"ffccd/internal/sim"
)

// ReadBarrier is the hook the defragmenter installs on a pool during its
// compacting phase. Resolve is the paper's D_RW/D_RO read barrier: given a
// persistent pointer it checks whether the referent sits on a relocation
// page, relocates it if necessary, and returns the current pointer.
type ReadBarrier interface {
	Resolve(ctx *sim.Ctx, ref Ptr) Ptr
}

// HeaderSize is the per-object header: u32 type id, u32 payload length,
// u64 reserved. Headers are persisted at allocation time so post-crash
// reachability analysis can parse the heap.
const HeaderSize = 16

// Pool header field offsets (pool offset 0, one reserved frame).
const (
	hdrMagic      = 0
	hdrPoolID     = 8
	hdrRoot       = 16
	hdrHeapOff    = 24
	hdrHeapFrames = 32
	hdrTxLogOff   = 40
	hdrTxSlots    = 48
	hdrTxSlotSize = 56
	hdrGCMetaOff  = 64
	hdrGCMetaSize = 72
	hdrGCPhase    = 80 // owned by the defragmentation engine
	hdrPageShift  = 88
)

const poolMagic = 0x46464343_44504D31 // "FFCCDPM1"

// Geometry constants.
const (
	txSlotCount    = 8
	txSlotBytes    = 64 * 1024
	gcMetaPerFrame = 320 // reached bitmap (8) + moved bitmap (32) + PMFT (264) + slack

	// gcMetaUsedPerFrame is the portion of gcMetaPerFrame the defragmentation
	// schemes actually lay out; the rest of the region is auxiliary slack
	// (AuxMetaRange).
	gcMetaUsedPerFrame = 8 + 32 + 264
)

// Pool is a persistent memory object pool mapped into the simulated device.
type Pool struct {
	rt   *Runtime
	id   uint16
	name string

	region uint64 // device (physical) base address
	size   uint64
	vaBase uint64 // per-run virtual base: relocatability (§2.2.1)

	heapOff    uint64
	heapFrames uint64
	txLogOff   uint64
	gcMetaOff  uint64
	gcMetaSize uint64
	pageShift  uint

	dev   *pmem.Device
	cfg   *sim.Config
	heap  *alloc.Heap
	types *Registry

	barrier   atomic.Pointer[barrierBox]
	allocHook atomic.Pointer[func()]
	txAddHook atomic.Pointer[func(ctx *sim.Ctx, off, n uint64)]

	world   sync.RWMutex
	txFree  chan int
	txSlots []*Tx

	remapMu    sync.Mutex
	remapHooks []func(remap func(Ptr) Ptr)

	// frameRemap maps virtual heap frames to physical heap frames (nil =
	// identity). Installed by the Mesh comparator, which compacts physical
	// memory by aliasing virtual pages instead of moving references.
	frameRemap atomic.Pointer[[]uint32]

	// Op counters for throughput reporting.
	Ops atomic.Uint64
}

type barrierBox struct{ b ReadBarrier }

// --- construction -----------------------------------------------------------

func layout(size uint64) (txLogOff, gcMetaOff, gcMetaSize, heapOff, heapFrames uint64, err error) {
	txLogOff = alloc.FrameSize
	gcMetaOff = txLogOff + txSlotCount*txSlotBytes
	if size <= gcMetaOff+2*alloc.FrameSize {
		return 0, 0, 0, 0, 0, fmt.Errorf("pmop: pool size %d too small", size)
	}
	avail := size - gcMetaOff
	heapFrames = avail / (alloc.FrameSize + gcMetaPerFrame)
	gcMetaSize = (heapFrames*gcMetaPerFrame + alloc.FrameSize - 1) &^ (alloc.FrameSize - 1)
	heapOff = gcMetaOff + gcMetaSize
	heapFrames = (size - heapOff) / alloc.FrameSize
	return txLogOff, gcMetaOff, gcMetaSize, heapOff, heapFrames, nil
}

func (p *Pool) initVolatile() {
	p.heap = alloc.NewHeap(p.heapOff, int(p.heapFrames))
	p.txFree = make(chan int, txSlotCount)
	p.txSlots = make([]*Tx, txSlotCount)
	for i := 0; i < txSlotCount; i++ {
		p.txSlots[i] = &Tx{pool: p, slot: i}
		p.txFree <- i
	}
}

// TxSlotOrder returns the free-transaction-slot queue order. The pool must
// be quiescent (no transaction in flight) — the queue rotates as
// transactions begin and retire, and the rotation decides which txlog lines
// future transactions touch, so a forked pool must reproduce it exactly
// (see the experiments fork driver).
func (p *Pool) TxSlotOrder() []int {
	order := make([]int, 0, txSlotCount)
	for i := 0; i < txSlotCount; i++ {
		order = append(order, <-p.txFree)
	}
	for _, s := range order {
		p.txFree <- s
	}
	return order
}

// RestoreTxSlotOrder re-queues the free transaction slots in the given
// order. The pool must be quiescent and order must hold every slot once.
func (p *Pool) RestoreTxSlotOrder(order []int) {
	if len(order) != txSlotCount {
		panic("pmop: RestoreTxSlotOrder: wrong slot count")
	}
	for i := 0; i < txSlotCount; i++ {
		<-p.txFree
	}
	for _, s := range order {
		p.txFree <- s
	}
}

// --- identity & geometry ----------------------------------------------------

// ID returns the pool id.
func (p *Pool) ID() uint16 { return p.id }

// Name returns the pool name.
func (p *Pool) Name() string { return p.name }

// Heap exposes the allocator (the GC works with it directly).
func (p *Pool) Heap() *alloc.Heap { return p.heap }

// Types returns the pool's type registry.
func (p *Pool) Types() *Registry { return p.types }

// Device returns the underlying simulated PM device.
func (p *Pool) Device() *pmem.Device { return p.dev }

// Config returns the simulation config.
func (p *Pool) Config() *sim.Config { return p.cfg }

// PageShift returns the OS page-size shift used for footprint and TLB
// accounting (12 = 4 KB, 21 = 2 MB).
func (p *Pool) PageShift() uint { return p.pageShift }

// GCMetaRange returns the pool-offset range reserved for GC persistent
// metadata (PMFT, moved bitmaps, reached bitmap, phase state).
func (p *Pool) GCMetaRange() (off, size uint64) { return p.gcMetaOff, p.gcMetaSize }

// AuxMetaRange returns the slack tail of the GC metadata region: persistent
// space no defragmentation scheme touches (at least 16 bytes per heap frame),
// available to auxiliary comparators. The Mesh comparator persists its
// virtual→physical frame remap here. The range sits below the heap, so frame
// remapping never applies to it.
func (p *Pool) AuxMetaRange() (off, size uint64) {
	used := p.heapFrames * gcMetaUsedPerFrame
	if used >= p.gcMetaSize {
		// Tiny pools can round the meta region down to the used floor.
		return p.gcMetaOff + p.gcMetaSize, 0
	}
	return p.gcMetaOff + used, p.gcMetaSize - used
}

// HeapRange returns the heap's pool-offset start and frame count.
func (p *Pool) HeapRange() (off uint64, frames uint64) { return p.heapOff, p.heapFrames }

// PA converts a pool offset to a device physical address, honouring the
// Mesh-style frame remap when one is installed.
func (p *Pool) PA(off uint64) uint64 {
	if m := p.frameRemap.Load(); m != nil && off >= p.heapOff {
		rel := off - p.heapOff
		vf := rel / alloc.FrameSize
		if int(vf) < len(*m) {
			return p.region + p.heapOff + uint64((*m)[vf])*alloc.FrameSize + rel%alloc.FrameSize
		}
	}
	return p.region + off
}

// SetFrameRemap installs (or clears, with nil) a virtual→physical heap-frame
// mapping. The caller must quiesce the pool (stop-the-world) around changes.
func (p *Pool) SetFrameRemap(m []uint32) {
	if m == nil {
		p.frameRemap.Store(nil)
		return
	}
	p.frameRemap.Store(&m)
}

// VA converts a pool offset to this run's virtual address.
func (p *Pool) VA(off uint64) uint64 { return p.vaBase + off }

// OffsetOfPA converts a device address back to a pool offset.
func (p *Pool) OffsetOfPA(pa uint64) uint64 { return pa - p.region }

// OffsetOfVA converts this run's virtual address back to a pool offset.
func (p *Pool) OffsetOfVA(va uint64) uint64 { return va - p.vaBase }

// --- hooks -------------------------------------------------------------------

// SetBarrier installs (or, with nil, removes) the read barrier.
func (p *Pool) SetBarrier(b ReadBarrier) {
	if b == nil {
		p.barrier.Store(nil)
		return
	}
	p.barrier.Store(&barrierBox{b})
}

// SetAllocHook installs a function invoked after every Alloc/Free — the
// defragmentation trigger check (§5: pmalloc/pfree record fragmentation
// state and trigger defragmentation).
func (p *Pool) SetAllocHook(f func()) {
	if f == nil {
		p.allocHook.Store(nil)
		return
	}
	p.allocHook.Store(&f)
}

// SetTxAddHook installs the dest-modification hook, invoked before a
// transaction logs a range and before an object is freed (SFCCD's
// moved-object disambiguation uses it; see DESIGN.md).
func (p *Pool) SetTxAddHook(f func(ctx *sim.Ctx, off, n uint64)) {
	if f == nil {
		p.txAddHook.Store(nil)
		return
	}
	p.txAddHook.Store(&f)
}

// RegisterRemapHook adds a callback invoked under stop-the-world at the end
// of every defragmentation epoch with a remap function translating stale
// persistent pointers to their current locations. Applications that cache
// persistent pointers in volatile memory (handle maps, volatile indexes —
// FPTree's DRAM inner nodes are the canonical example) re-heal those caches
// here; heap-resident references are healed by the collector itself.
func (p *Pool) RegisterRemapHook(fn func(remap func(Ptr) Ptr)) {
	p.remapMu.Lock()
	p.remapHooks = append(p.remapHooks, fn)
	p.remapMu.Unlock()
}

// RunRemapHooks invokes every registered remap hook. Called by the
// defragmentation engine while the world is stopped.
func (p *Pool) RunRemapHooks(remap func(Ptr) Ptr) {
	p.remapMu.Lock()
	hooks := make([]func(remap func(Ptr) Ptr), len(p.remapHooks))
	copy(hooks, p.remapHooks)
	p.remapMu.Unlock()
	for _, fn := range hooks {
		fn(remap)
	}
}

// --- world control (stop-the-world for marking/summary) ----------------------

// StartOp enters an application operation (shared world access). Every
// data-structure operation brackets itself with StartOp/EndOp so the GC can
// stop the world for its idempotent phases.
func (p *Pool) StartOp() { p.world.RLock() }

// EndOp leaves an application operation.
func (p *Pool) EndOp() { p.world.RUnlock(); p.Ops.Add(1) }

// StopWorld blocks until all application operations drain, then holds them.
func (p *Pool) StopWorld() { p.world.Lock() }

// ResumeWorld releases the world.
func (p *Pool) ResumeWorld() { p.world.Unlock() }

// --- raw access (no barrier; used by allocator, tx, GC) ----------------------

func (p *Pool) chargeTLB(ctx *sim.Ctx, off uint64) {
	if ctx.TLB != nil {
		ctx.Charge(ctx.TLB.Access(p.VA(off), p.pageShift))
	}
}

// RawLoad reads len(buf) bytes at pool offset off through the cache.
func (p *Pool) RawLoad(ctx *sim.Ctx, off uint64, buf []byte) {
	p.chargeTLB(ctx, off)
	p.dev.Load(ctx, p.PA(off), buf)
}

// RawStore writes data at pool offset off through the cache.
func (p *Pool) RawStore(ctx *sim.Ctx, off uint64, data []byte) {
	p.chargeTLB(ctx, off)
	p.dev.Store(ctx, p.PA(off), data)
}

// RawLoadU64 reads a little-endian u64 at off.
func (p *Pool) RawLoadU64(ctx *sim.Ctx, off uint64) uint64 {
	var b [8]byte
	p.RawLoad(ctx, off, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// RawStoreU64 writes a little-endian u64 at off.
func (p *Pool) RawStoreU64(ctx *sim.Ctx, off uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	p.RawStore(ctx, off, b[:])
}

// Peek reads the newest bytes at pool offset off without simulating the
// access — no cycles, no cache/TLB perturbation, no stats (see
// pmem.Device.Peek). Serving-layer footprint prediction uses it at dispatch
// time; it must not be used where the simulated cost of a read matters.
func (p *Pool) Peek(off uint64, buf []byte) {
	p.dev.Peek(p.PA(off), buf)
}

// PeekU64 reads a little-endian u64 at off without simulating the access.
func (p *Pool) PeekU64(off uint64) uint64 {
	var b [8]byte
	p.Peek(off, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Clwb issues a cacheline write-back for the line containing pool offset off.
func (p *Pool) Clwb(ctx *sim.Ctx, off uint64) { p.dev.Clwb(ctx, p.PA(off)) }

// Sfence issues a store fence.
func (p *Pool) Sfence(ctx *sim.Ctx) { p.dev.Sfence(ctx) }

// PersistRange clwb's every line of [off, off+n) and fences once.
func (p *Pool) PersistRange(ctx *sim.Ctx, off, n uint64) {
	for a := off &^ (pmem.LineSize - 1); a < off+n; a += pmem.LineSize {
		p.Clwb(ctx, a)
	}
	p.Sfence(ctx)
}

// --- barrier-mediated object access (D_RW / D_RO) ----------------------------

// Resolve applies the read barrier to a persistent pointer — the equivalent
// of PMDK's D_RW/D_RO conversion. With no active barrier it is the identity.
func (p *Pool) Resolve(ctx *sim.Ctx, ref Ptr) Ptr {
	if ref.IsNull() {
		return ref
	}
	box := p.barrier.Load()
	if box == nil {
		return ref
	}
	return box.b.Resolve(ctx, ref)
}

// ReadPtr loads the pointer field at payload offset field of obj, applying
// the read barrier to both the handle and the loaded reference, and
// self-healing the stored reference if the referent has moved (the plain,
// fence-free reference update of Observation 3).
func (p *Pool) ReadPtr(ctx *sim.Ctx, obj Ptr, field uint64) Ptr {
	obj = p.Resolve(ctx, obj)
	slot := obj.Offset() + field
	ref := Ptr(p.RawLoadU64(ctx, slot))
	if ref.IsNull() {
		return ref
	}
	cur := p.Resolve(ctx, ref)
	if cur != ref {
		p.RawStoreU64(ctx, slot, uint64(cur))
	}
	return cur
}

// WritePtr stores val into the pointer field at payload offset field of obj.
// Both the handle and the stored value are barrier-resolved so stale
// references never re-enter the heap during compaction.
func (p *Pool) WritePtr(ctx *sim.Ctx, obj Ptr, field uint64, val Ptr) {
	obj = p.Resolve(ctx, obj)
	val = p.Resolve(ctx, val)
	p.RawStoreU64(ctx, obj.Offset()+field, uint64(val))
}

// ReadU64 loads a u64 data field.
func (p *Pool) ReadU64(ctx *sim.Ctx, obj Ptr, field uint64) uint64 {
	obj = p.Resolve(ctx, obj)
	return p.RawLoadU64(ctx, obj.Offset()+field)
}

// WriteU64 stores a u64 data field.
func (p *Pool) WriteU64(ctx *sim.Ctx, obj Ptr, field uint64, v uint64) {
	obj = p.Resolve(ctx, obj)
	p.RawStoreU64(ctx, obj.Offset()+field, v)
}

// ReadBytes loads len(buf) bytes from obj's payload at field.
func (p *Pool) ReadBytes(ctx *sim.Ctx, obj Ptr, field uint64, buf []byte) {
	obj = p.Resolve(ctx, obj)
	p.RawLoad(ctx, obj.Offset()+field, buf)
}

// WriteBytes stores data into obj's payload at field.
func (p *Pool) WriteBytes(ctx *sim.Ctx, obj Ptr, field uint64, data []byte) {
	obj = p.Resolve(ctx, obj)
	p.RawStore(ctx, obj.Offset()+field, data)
}

// --- object header ------------------------------------------------------------

// Header returns the type id and payload length of obj (no barrier; headers
// move with their objects, so callers pass an already-resolved pointer).
func (p *Pool) Header(ctx *sim.Ctx, obj Ptr) (TypeID, uint64) {
	var b [8]byte
	p.RawLoad(ctx, obj.Offset()-HeaderSize, b[:])
	return TypeID(binary.LittleEndian.Uint32(b[0:4])), uint64(binary.LittleEndian.Uint32(b[4:8]))
}

// writeHeader persists an object header (type id + payload length).
func (p *Pool) writeHeader(ctx *sim.Ctx, headerOff uint64, t TypeID, payload uint64) {
	var b [HeaderSize]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(t))
	binary.LittleEndian.PutUint32(b[4:8], uint32(payload))
	p.RawStore(ctx, headerOff, b[:])
	p.Clwb(ctx, headerOff)
	p.Sfence(ctx)
}

// --- allocation ----------------------------------------------------------------

// zeroPayload is a read-only source of zero bytes for Alloc. An object's
// payload is bounded by the frame size, so one frame of zeros always covers
// it.
var zeroPayload [alloc.FrameSize]byte

// Alloc allocates an object of the given registered type. For fixed-size
// types payload may be 0 (the registered size is used); KindBytes and
// KindPtrArray types take the payload size from the call.
func (p *Pool) Alloc(ctx *sim.Ctx, t TypeID, payload uint64) (Ptr, error) {
	ti, ok := p.types.Lookup(t)
	if !ok {
		return Null, fmt.Errorf("pmop: unregistered type %d", t)
	}
	if payload == 0 {
		payload = ti.Size
	}
	if payload == 0 {
		return Null, fmt.Errorf("pmop: type %s requires an explicit payload size", ti.Name)
	}
	headerOff, err := p.heap.Alloc(payload)
	if err != nil {
		return Null, err
	}
	// Zero the payload (stale media contents must not leak into new
	// objects), then persist the header so post-crash reachability can
	// parse the heap. RawStore only reads its source, so a shared zero
	// buffer serves every allocation (payloads never exceed one frame).
	p.RawStore(ctx, headerOff+HeaderSize, zeroPayload[:payload])
	p.writeHeader(ctx, headerOff, t, payload)
	if h := p.allocHook.Load(); h != nil {
		(*h)()
	}
	return MakePtr(p.id, headerOff+HeaderSize), nil
}

// Free releases obj. The pointer is barrier-resolved first, so freeing
// through a stale reference during compaction frees the current copy. Like
// a transactional modification, freeing invalidates the object's destination
// region, so the dest-modification hook fires first (SFCCD recovery must not
// "repair" a freed-and-reused destination from its stale source copy).
func (p *Pool) Free(ctx *sim.Ctx, obj Ptr) {
	obj = p.Resolve(ctx, obj)
	_, payload := p.Header(ctx, obj)
	if hook := p.txAddHook.Load(); hook != nil {
		(*hook)(ctx, obj.Offset()-HeaderSize, HeaderSize+payload)
	}
	p.heap.Free(obj.Offset()-HeaderSize, alloc.SlotsFor(payload))
	if h := p.allocHook.Load(); h != nil {
		(*h)()
	}
}

// --- root ------------------------------------------------------------------------

// Root returns the pool's root object pointer (§2.2.1: every PMOP has at
// least one entry point called a root), barrier-resolved and self-healed.
func (p *Pool) Root(ctx *sim.Ctx) Ptr {
	ref := Ptr(p.RawLoadU64(ctx, hdrRoot))
	if ref.IsNull() {
		return ref
	}
	cur := p.Resolve(ctx, ref)
	if cur != ref {
		p.RawStoreU64(ctx, hdrRoot, uint64(cur))
	}
	return cur
}

// SetRoot durably updates the root pointer.
func (p *Pool) SetRoot(ctx *sim.Ctx, root Ptr) {
	p.RawStoreU64(ctx, hdrRoot, uint64(p.Resolve(ctx, root)))
	p.Clwb(ctx, hdrRoot)
	p.Sfence(ctx)
}

// GCPhase reads the persistent defragmentation phase word (owned by core).
func (p *Pool) GCPhase(ctx *sim.Ctx) uint64 { return p.RawLoadU64(ctx, hdrGCPhase) }

// SetGCPhase durably writes the defragmentation phase word.
func (p *Pool) SetGCPhase(ctx *sim.Ctx, v uint64) {
	p.RawStoreU64(ctx, hdrGCPhase, v)
	p.Clwb(ctx, hdrGCPhase)
	p.Sfence(ctx)
}
