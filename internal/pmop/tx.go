package pmop

import (
	"encoding/binary"
	"fmt"

	"ffccd/internal/sim"
)

// Tx is an undo-log transaction in the libpmemobj style (§2.2.2): ranges are
// logged (TX_ADD) before modification, data is flushed at commit, and an
// interrupted transaction is rolled back during recovery. The log lives in
// the pool's persistent tx region; each Tx owns one of the pool's log slots
// so application threads can run transactions concurrently.
//
// Persistence protocol per operation:
//
//	Begin : state=active       → clwb+sfence
//	Add   : entry (addr,len,old data) → clwb+sfence; count++ → clwb+sfence
//	Commit: flush logged ranges → sfence; state=idle,count=0 → clwb+sfence
//
// The entry is fenced before the count so a torn entry is never replayed.
type Tx struct {
	pool   *Pool
	slot   int
	cursor uint64
	count  uint64
	ranges []txRange
	active bool
	// scratch is the reusable undo-entry staging buffer; its contents are
	// fully rewritten (padding included) before every RawStore.
	scratch []byte
}

type txRange struct{ off, n uint64 }

const (
	txStateIdle   = 0
	txStateActive = 1
	txHeaderBytes = 16 // state u64 | count u64 (same cacheline)
)

func (t *Tx) base() uint64 { return t.pool.txLogOff + uint64(t.slot)*txSlotBytes }

// Begin starts a transaction, blocking until a log slot is free.
func (p *Pool) Begin(ctx *sim.Ctx) *Tx {
	slot := <-p.txFree
	t := p.txSlots[slot]
	t.cursor = txHeaderBytes
	t.count = 0
	t.ranges = t.ranges[:0]
	t.active = true
	p.RawStoreU64(ctx, t.base(), txStateActive)
	p.RawStoreU64(ctx, t.base()+8, 0)
	p.Clwb(ctx, t.base())
	p.Sfence(ctx)
	return t
}

// Add logs the current contents of [off, off+n) so they can be rolled back —
// the TX_ADD_DIRECT of the paper's Figure 3. Must be called before the range
// is modified.
func (t *Tx) Add(ctx *sim.Ctx, off, n uint64) {
	if !t.active {
		panic("pmop: Add on inactive transaction")
	}
	p := t.pool
	if hook := p.txAddHook.Load(); hook != nil {
		(*hook)(ctx, off, n)
	}
	entryLen := 16 + (n+7)&^7
	if t.cursor+entryLen > txSlotBytes {
		panic(fmt.Sprintf("pmop: transaction log overflow (%d bytes)", t.cursor+entryLen))
	}
	if uint64(cap(t.scratch)) < entryLen {
		t.scratch = make([]byte, entryLen)
	}
	entry := t.scratch[:entryLen]
	binary.LittleEndian.PutUint64(entry[0:8], off)
	binary.LittleEndian.PutUint64(entry[8:16], n)
	p.RawLoad(ctx, off, entry[16:16+n])
	for i := 16 + n; i < entryLen; i++ {
		entry[i] = 0 // alignment padding: keep logged bytes deterministic
	}
	entryOff := t.base() + t.cursor
	p.RawStore(ctx, entryOff, entry)
	p.PersistRange(ctx, entryOff, entryLen)
	t.cursor += entryLen
	t.count++
	p.RawStoreU64(ctx, t.base()+8, t.count)
	p.Clwb(ctx, t.base())
	p.Sfence(ctx)
	t.ranges = append(t.ranges, txRange{off, n})
}

// AddPtr logs the single pointer field at obj.payload+field.
func (t *Tx) AddPtr(ctx *sim.Ctx, obj Ptr, field uint64) {
	obj = t.pool.Resolve(ctx, obj)
	t.Add(ctx, obj.Offset()+field, 8)
}

// AddObject logs an object's entire payload (and header), resolving the
// handle first.
func (t *Tx) AddObject(ctx *sim.Ctx, obj Ptr) {
	obj = t.pool.Resolve(ctx, obj)
	_, payload := t.pool.Header(ctx, obj)
	t.Add(ctx, obj.Offset()-HeaderSize, HeaderSize+payload)
}

// AddRange logs n bytes of obj's payload starting at field.
func (t *Tx) AddRange(ctx *sim.Ctx, obj Ptr, field, n uint64) {
	obj = t.pool.Resolve(ctx, obj)
	t.Add(ctx, obj.Offset()+field, n)
}

// Commit flushes every logged range's current contents and retires the log.
func (t *Tx) Commit(ctx *sim.Ctx) {
	if !t.active {
		panic("pmop: Commit on inactive transaction")
	}
	p := t.pool
	for _, r := range t.ranges {
		for a := r.off &^ 63; a < r.off+r.n; a += 64 {
			p.Clwb(ctx, a)
		}
	}
	p.Sfence(ctx)
	p.RawStoreU64(ctx, t.base(), txStateIdle)
	p.RawStoreU64(ctx, t.base()+8, 0)
	p.Clwb(ctx, t.base())
	p.Sfence(ctx)
	t.active = false
	p.txFree <- t.slot
}

// Abort rolls the transaction back in place (undo applied newest-first) and
// retires the log.
func (t *Tx) Abort(ctx *sim.Ctx) {
	if !t.active {
		panic("pmop: Abort on inactive transaction")
	}
	p := t.pool
	p.undoSlot(ctx, t.slot)
	t.active = false
	p.txFree <- t.slot
}

// undoSlot replays a slot's undo entries newest-first and marks it idle.
func (p *Pool) undoSlot(ctx *sim.Ctx, slot int) {
	base := p.txLogOff + uint64(slot)*txSlotBytes
	count := p.RawLoadU64(ctx, base+8)
	// Collect entry offsets by walking forward, then undo in reverse.
	type ent struct{ pos, off, n uint64 }
	var entries []ent
	pos := uint64(txHeaderBytes)
	for i := uint64(0); i < count; i++ {
		off := p.RawLoadU64(ctx, base+pos)
		n := p.RawLoadU64(ctx, base+pos+8)
		entries = append(entries, ent{pos, off, n})
		pos += 16 + (n+7)&^7
	}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		old := make([]byte, e.n)
		p.RawLoad(ctx, base+e.pos+16, old)
		p.RawStore(ctx, e.off, old)
		p.PersistRange(ctx, e.off, e.n)
	}
	p.RawStoreU64(ctx, base, txStateIdle)
	p.RawStoreU64(ctx, base+8, 0)
	p.Clwb(ctx, base)
	p.Sfence(ctx)
}

// RecoverTx rolls back every transaction that was active at the crash and
// returns the ranges they had logged (the defragmentation recovery uses them
// to identify application-touched objects). Call on an opened pool before
// resuming application work.
func (p *Pool) RecoverTx(ctx *sim.Ctx) []TxTouched {
	var touched []TxTouched
	for slot := 0; slot < txSlotCount; slot++ {
		base := p.txLogOff + uint64(slot)*txSlotBytes
		if p.RawLoadU64(ctx, base) != txStateActive {
			continue
		}
		count := p.RawLoadU64(ctx, base+8)
		pos := uint64(txHeaderBytes)
		for i := uint64(0); i < count; i++ {
			off := p.RawLoadU64(ctx, base+pos)
			n := p.RawLoadU64(ctx, base+pos+8)
			touched = append(touched, TxTouched{Off: off, Len: n})
			pos += 16 + (n+7)&^7
		}
		p.undoSlot(ctx, slot)
	}
	return touched
}

// TxTouched is a logged range found during recovery.
type TxTouched struct{ Off, Len uint64 }
