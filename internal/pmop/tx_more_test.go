package pmop

import (
	"strings"
	"testing"

	"ffccd/internal/sim"
)

func TestTxMultipleRangesAbortOrdering(t *testing.T) {
	_, p, ctx, tid := newTestPool(t)
	a, _ := p.Alloc(ctx, tid, 0)
	b, _ := p.Alloc(ctx, tid, 0)
	p.WriteU64(ctx, a, 0, 1)
	p.WriteU64(ctx, b, 0, 2)

	tx := p.Begin(ctx)
	tx.AddRange(ctx, a, 0, 8)
	p.WriteU64(ctx, a, 0, 10)
	tx.AddRange(ctx, b, 0, 8)
	p.WriteU64(ctx, b, 0, 20)
	// Overlapping second log of a: undo must apply newest-first so the
	// earliest logged value wins.
	tx.AddRange(ctx, a, 0, 8)
	p.WriteU64(ctx, a, 0, 100)
	tx.Abort(ctx)

	if got := p.ReadU64(ctx, a, 0); got != 1 {
		t.Errorf("a = %d after abort, want 1", got)
	}
	if got := p.ReadU64(ctx, b, 0); got != 2 {
		t.Errorf("b = %d after abort, want 2", got)
	}
}

func TestTxLogOverflowPanics(t *testing.T) {
	_, p, ctx, _ := newTestPool(t)
	bt := p.Types().Register(TypeInfo{Name: "big", Kind: KindBytes})
	obj, err := p.Alloc(ctx, bt, 4000)
	if err != nil {
		t.Fatal(err)
	}
	tx := p.Begin(ctx)
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "overflow") {
			t.Fatalf("expected log overflow panic, got %v", r)
		}
	}()
	for i := 0; i < 64*1024; i++ {
		tx.AddRange(ctx, obj, 0, 4000)
	}
}

func TestTxAddOnInactivePanics(t *testing.T) {
	_, p, ctx, tid := newTestPool(t)
	obj, _ := p.Alloc(ctx, tid, 0)
	tx := p.Begin(ctx)
	tx.Commit(ctx)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tx.AddObject(ctx, obj)
}

func TestTxRecoveryMultipleActiveSlots(t *testing.T) {
	// Two transactions active in different slots at the crash: both must
	// roll back.
	_, p, ctx, tid := newTestPool(t)
	a, _ := p.Alloc(ctx, tid, 0)
	b, _ := p.Alloc(ctx, tid, 0)
	p.WriteU64(ctx, a, 0, 5)
	p.WriteU64(ctx, b, 0, 6)
	p.Device().FlushAll(ctx)

	tx1 := p.Begin(ctx)
	tx2 := p.Begin(ctx)
	tx1.AddRange(ctx, a, 0, 8)
	p.WriteU64(ctx, a, 0, 50)
	tx2.AddRange(ctx, b, 0, 8)
	p.WriteU64(ctx, b, 0, 60)
	p.Clwb(ctx, a.Offset())
	p.Clwb(ctx, b.Offset())
	p.Sfence(ctx) // the dirty writes even persisted
	p.Device().Crash()

	touched := p.RecoverTx(ctx)
	if len(touched) != 2 {
		t.Fatalf("touched = %d, want 2", len(touched))
	}
	if got := p.ReadU64(ctx, a, 0); got != 5 {
		t.Errorf("a = %d, want 5", got)
	}
	if got := p.ReadU64(ctx, b, 0); got != 6 {
		t.Errorf("b = %d, want 6", got)
	}
}

func TestTxCrashBetweenAddAndWrite(t *testing.T) {
	// Crash right after logging, before the modification: undo rewrites the
	// same value — harmless idempotence.
	_, p, ctx, tid := newTestPool(t)
	obj, _ := p.Alloc(ctx, tid, 0)
	p.WriteU64(ctx, obj, 0, 7)
	p.Device().FlushAll(ctx)
	tx := p.Begin(ctx)
	tx.AddRange(ctx, obj, 0, 8)
	_ = tx
	p.Device().Crash()
	p.RecoverTx(ctx)
	if got := p.ReadU64(ctx, obj, 0); got != 7 {
		t.Errorf("value = %d, want 7", got)
	}
}

func TestSuperblockSurvivesMultiplePools(t *testing.T) {
	cfg := sim.DefaultConfig()
	rt := NewRuntime(&cfg, 64<<20)
	reg := NewRegistry()
	tid := nodeType(reg)
	ctx := sim.NewCtx(&cfg)

	pools := make([]*Pool, 3)
	for i := range pools {
		var err error
		pools[i], err = rt.Create([]string{"alpha", "beta", "gamma"}[i], 8<<20, 12, reg)
		if err != nil {
			t.Fatal(err)
		}
		obj, _ := pools[i].Alloc(ctx, tid, 0)
		pools[i].WriteU64(ctx, obj, 0, uint64(100+i))
		pools[i].SetRoot(ctx, obj)
	}
	pools[0].Device().FlushAll(ctx)

	rt2, err := Attach(&cfg, rt.Device())
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"alpha", "beta", "gamma"} {
		p, err := rt2.Open(name, reg)
		if err != nil {
			t.Fatal(err)
		}
		root := p.Root(ctx)
		if got := p.ReadU64(ctx, root, 0); got != uint64(100+i) {
			t.Errorf("pool %s root value = %d, want %d", name, got, 100+i)
		}
	}
	// Creating a fourth pool after reattach must not collide with existing
	// regions.
	p4, err := rt2.Create("delta", 8<<20, 12, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p4.Alloc(ctx, tid, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPoolSizeTooSmall(t *testing.T) {
	cfg := sim.DefaultConfig()
	rt := NewRuntime(&cfg, 8<<20)
	if _, err := rt.Create("tiny", 64<<10, 12, NewRegistry()); err == nil {
		t.Fatal("expected pool-too-small error")
	}
}

func TestDeviceFullRejected(t *testing.T) {
	cfg := sim.DefaultConfig()
	rt := NewRuntime(&cfg, 8<<20)
	if _, err := rt.Create("big", 16<<20, 12, NewRegistry()); err == nil {
		t.Fatal("expected device-full error")
	}
}

func TestDuplicatePoolNameRejected(t *testing.T) {
	cfg := sim.DefaultConfig()
	rt := NewRuntime(&cfg, 32<<20)
	reg := NewRegistry()
	if _, err := rt.Create("dup", 8<<20, 12, reg); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Create("dup", 8<<20, 12, reg); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestHugePagePoolAccounting(t *testing.T) {
	cfg := sim.DefaultConfig()
	rt := NewRuntime(&cfg, 64<<20)
	reg := NewRegistry()
	tid := nodeType(reg)
	p, err := rt.Create("huge", 32<<20, 21, reg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewCtx(&cfg)
	obj, _ := p.Alloc(ctx, tid, 0)
	p.WriteU64(ctx, obj, 0, 1)
	st := p.Heap().Frag(p.PageShift())
	// One tiny object pins a whole 2 MB page.
	if st.FootprintBytes != 2<<20 {
		t.Errorf("huge-page footprint = %d, want %d", st.FootprintBytes, 2<<20)
	}
	if st.FragRatio < 1000 {
		t.Errorf("huge-page fragR = %.1f, expected enormous", st.FragRatio)
	}
}
