package pmop

import (
	"fmt"
	"sync"
	"testing"
)

// TestFreezeLookup pins that freezing compiles the registry without changing
// any lookup answer, in both directions (id and name), including misses.
func TestFreezeLookup(t *testing.T) {
	reg := NewRegistry()
	idA := reg.Register(TypeInfo{Name: "a", Kind: KindFixed, Size: 16, PtrOffsets: []uint64{8}})
	idB := reg.Register(TypeInfo{Name: "b", Kind: KindBytes})
	if reg.Frozen() {
		t.Fatal("registry frozen before Freeze")
	}
	reg.Freeze()
	if !reg.Frozen() {
		t.Fatal("Freeze did not freeze")
	}
	for _, id := range []TypeID{idA, idB} {
		ti, ok := reg.Lookup(id)
		if !ok || ti.ID != id {
			t.Fatalf("post-freeze Lookup(%d) = %v, %v", id, ti, ok)
		}
	}
	if ti, ok := reg.LookupName("a"); !ok || ti.ID != idA {
		t.Fatalf("post-freeze LookupName(a) = %v, %v", ti, ok)
	}
	if _, ok := reg.Lookup(999); ok {
		t.Fatal("post-freeze Lookup of unregistered id succeeded")
	}
	if _, ok := reg.Lookup(0); ok {
		t.Fatal("post-freeze Lookup(0) succeeded — id 0 is never assigned")
	}
	if _, ok := reg.LookupName("ghost"); ok {
		t.Fatal("post-freeze LookupName of unregistered name succeeded")
	}
	// Freeze is idempotent.
	reg.Freeze()
	if ti, ok := reg.Lookup(idA); !ok || ti.Name != "a" {
		t.Fatalf("double Freeze broke Lookup: %v, %v", ti, ok)
	}
}

// TestRegisterAfterFreeze covers the copy-on-write re-registration path: the
// id space keeps growing, re-registering an existing name stays idempotent
// (same id back, no republished duplicate), and every pre-freeze type stays
// visible.
func TestRegisterAfterFreeze(t *testing.T) {
	reg := NewRegistry()
	idA := reg.Register(TypeInfo{Name: "a", Kind: KindBytes})
	reg.Freeze()

	// New type after freeze: republished, immediately visible.
	idC := reg.Register(TypeInfo{Name: "c", Kind: KindFixed, Size: 8, PtrOffsets: []uint64{0}})
	if idC == idA {
		t.Fatalf("post-freeze Register reused id %d", idC)
	}
	if ti, ok := reg.Lookup(idC); !ok || ti.Name != "c" {
		t.Fatalf("post-freeze type not visible: %v, %v", ti, ok)
	}

	// Idempotent re-registration (the re-attach path: application code
	// re-runs its RegisterTypes batch against an already-frozen registry).
	if again := reg.Register(TypeInfo{Name: "a", Kind: KindBytes}); again != idA {
		t.Fatalf("re-registering a = id %d, want %d", again, idA)
	}
	if again := reg.Register(TypeInfo{Name: "c", Kind: KindBytes}); again != idC {
		t.Fatalf("re-registering c = id %d, want %d", again, idC)
	}
	// Old types still resolve after the republish.
	if ti, ok := reg.Lookup(idA); !ok || ti.Name != "a" {
		t.Fatalf("pre-freeze type lost after republish: %v, %v", ti, ok)
	}
}

// TestRegisterBadOffsetPanicsAfterFreeze keeps the offset validation panic on
// the post-freeze path (it must fire before any republish).
func TestRegisterBadOffsetPanicsAfterFreeze(t *testing.T) {
	reg := NewRegistry()
	reg.Register(TypeInfo{Name: "ok", Kind: KindBytes})
	reg.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Register with misaligned pointer offset did not panic")
		}
		// The failed Register must not have corrupted the frozen view.
		if _, ok := reg.LookupName("bad"); ok {
			t.Fatal("panicking Register published the bad type")
		}
	}()
	reg.Register(TypeInfo{Name: "bad", Kind: KindFixed, Size: 16, PtrOffsets: []uint64{3}})
}

// TestConcurrentLookupDuringRegister hammers lock-free Lookups while another
// goroutine keeps registering new types and re-registering old ones against
// a frozen registry. Run under -race this pins the copy-on-write publication
// protocol: readers must always see a complete, immutable snapshot.
func TestConcurrentLookupDuringRegister(t *testing.T) {
	reg := NewRegistry()
	base := reg.Register(TypeInfo{Name: "base", Kind: KindFixed, Size: 24, PtrOffsets: []uint64{8, 16}})
	reg.Freeze()

	const writers = 2
	const readers = 4
	const perWriter = 200
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				reg.Register(TypeInfo{Name: fmt.Sprintf("t%d-%d", w, i), Kind: KindBytes})
				// Idempotent re-registration interleaved with growth.
				if got := reg.Register(TypeInfo{Name: "base", Kind: KindBytes}); got != base {
					t.Errorf("concurrent re-register of base = %d, want %d", got, base)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ti, ok := reg.Lookup(base)
				if !ok || ti.Name != "base" || len(ti.PtrOffsets) != 2 {
					t.Errorf("Lookup(base) during Register = %v, %v", ti, ok)
					return
				}
				if ti2, ok := reg.LookupName("base"); !ok || ti2.ID != base {
					t.Errorf("LookupName(base) during Register = %v, %v", ti2, ok)
					return
				}
				// Misses must stay clean misses, never a torn read.
				if _, ok := reg.Lookup(TypeID(1 + writers*(perWriter+1) + 50)); ok {
					t.Error("Lookup of never-registered id succeeded mid-publication")
					return
				}
			}
		}()
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	// Every registered type resolves afterwards.
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			name := fmt.Sprintf("t%d-%d", w, i)
			ti, ok := reg.LookupName(name)
			if !ok {
				t.Fatalf("type %s lost", name)
			}
			if got, ok := reg.Lookup(ti.ID); !ok || got.Name != name {
				t.Fatalf("Lookup(%d) = %v, %v; want %s", ti.ID, got, ok, name)
			}
		}
	}
}
