package pmop

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TypeID identifies a registered object type. It is stored in every object
// header so reachability analysis can find pointer fields (§3.1: "the object
// creators record type information of all objects for future references,
// allowing us to distinguish data and references").
type TypeID uint32

// Kind classifies a type's pointer layout.
type Kind uint8

const (
	// KindFixed is a fixed-size struct with pointer fields at PtrOffsets.
	KindFixed Kind = iota
	// KindBytes is raw data with no pointers (strings, value buffers).
	KindBytes
	// KindPtrArray is a payload consisting entirely of persistent pointers
	// (hash-table bucket arrays, node child arrays of dynamic arity).
	KindPtrArray
)

// TypeInfo describes a registered persistent type.
type TypeInfo struct {
	ID         TypeID
	Name       string
	Kind       Kind
	Size       uint64   // fixed payload size; 0 means size chosen at Alloc
	PtrOffsets []uint64 // payload offsets of pointer fields (KindFixed)
}

// frozenTypes is an immutable compiled view of a registry: a dense slice
// indexed directly by TypeID plus a name index. Once published it is never
// mutated — re-registration after a freeze builds and republishes a fresh
// copy — so readers need no lock: Lookup is one atomic pointer load plus a
// bounds-checked slice load.
type frozenTypes struct {
	byID   []*TypeInfo // index = TypeID; index 0 is nil (ids start at 1)
	byName map[string]*TypeInfo
}

// Registry maps type ids to layouts. Like C type declarations it is volatile
// and re-registered by application code on every run.
//
// Registries have two phases. During registration (NewRegistry until Freeze)
// lookups take an RWMutex over the builder maps. Freeze — called once type
// registration is complete, e.g. after ds.RegisterTypes/kv.RegisterTypes —
// compiles the registry into an immutable frozenTypes snapshot read
// lock-free; Register after Freeze still works (idempotent re-registration
// across runs) by copying-on-write and republishing the snapshot under the
// writer lock, so concurrent Lookups always see a complete view.
type Registry struct {
	mu     sync.RWMutex
	byID   map[TypeID]*TypeInfo
	byName map[string]*TypeInfo
	next   TypeID

	frozen atomic.Pointer[frozenTypes]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:   make(map[TypeID]*TypeInfo),
		byName: make(map[string]*TypeInfo),
		next:   1,
	}
}

// Freeze compiles the registry into its immutable lock-free form. Call it
// once after the initial RegisterTypes batch; later Registers republish the
// compiled form automatically. Freeze is idempotent.
func (r *Registry) Freeze() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.republish()
}

// Frozen reports whether the registry has been compiled for lock-free
// lookup.
func (r *Registry) Frozen() bool { return r.frozen.Load() != nil }

// republish rebuilds the frozen snapshot from the builder maps. Caller holds
// r.mu.
func (r *Registry) republish() {
	f := &frozenTypes{
		byID:   make([]*TypeInfo, r.next),
		byName: make(map[string]*TypeInfo, len(r.byName)),
	}
	for id, t := range r.byID {
		f.byID[id] = t
	}
	for name, t := range r.byName {
		f.byName[name] = t
	}
	r.frozen.Store(f)
}

// Register adds a type and assigns its id. Registering the same name twice
// returns the existing id (idempotent re-registration across runs).
func (r *Registry) Register(info TypeInfo) TypeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byName[info.Name]; ok {
		return existing.ID
	}
	if info.Name == "" {
		panic("pmop: type must have a name")
	}
	for _, off := range info.PtrOffsets {
		if off%8 != 0 || (info.Size > 0 && off+8 > info.Size) {
			panic(fmt.Sprintf("pmop: type %s has invalid pointer offset %d", info.Name, off))
		}
	}
	t := info
	t.ID = r.next
	r.next++
	r.byID[t.ID] = &t
	r.byName[t.Name] = &t
	if r.frozen.Load() != nil {
		// Already frozen: copy-on-write — republish a fresh snapshot so
		// in-flight lock-free Lookups keep reading the old complete view.
		r.republish()
	}
	return t.ID
}

// Lookup returns the type for id. On a frozen registry this is lock-free:
// one atomic load plus a bounds-checked slice index (the Alloc/mark hot
// path).
func (r *Registry) Lookup(id TypeID) (*TypeInfo, bool) {
	if f := r.frozen.Load(); f != nil {
		if uint64(id) < uint64(len(f.byID)) {
			if t := f.byID[id]; t != nil {
				return t, true
			}
		}
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byID[id]
	return t, ok
}

// LookupName returns the type registered under name.
func (r *Registry) LookupName(name string) (*TypeInfo, bool) {
	if f := r.frozen.Load(); f != nil {
		t, ok := f.byName[name]
		return t, ok
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byName[name]
	return t, ok
}

// PointerOffsets returns the payload offsets of pointer fields for an object
// of this type with the given payload size.
func (t *TypeInfo) PointerOffsets(payload uint64) []uint64 {
	switch t.Kind {
	case KindBytes:
		return nil
	case KindPtrArray:
		offs := make([]uint64, 0, payload/8)
		for o := uint64(0); o+8 <= payload; o += 8 {
			offs = append(offs, o)
		}
		return offs
	default:
		return t.PtrOffsets
	}
}
