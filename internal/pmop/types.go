package pmop

import (
	"fmt"
	"sync"
)

// TypeID identifies a registered object type. It is stored in every object
// header so reachability analysis can find pointer fields (§3.1: "the object
// creators record type information of all objects for future references,
// allowing us to distinguish data and references").
type TypeID uint32

// Kind classifies a type's pointer layout.
type Kind uint8

const (
	// KindFixed is a fixed-size struct with pointer fields at PtrOffsets.
	KindFixed Kind = iota
	// KindBytes is raw data with no pointers (strings, value buffers).
	KindBytes
	// KindPtrArray is a payload consisting entirely of persistent pointers
	// (hash-table bucket arrays, node child arrays of dynamic arity).
	KindPtrArray
)

// TypeInfo describes a registered persistent type.
type TypeInfo struct {
	ID         TypeID
	Name       string
	Kind       Kind
	Size       uint64   // fixed payload size; 0 means size chosen at Alloc
	PtrOffsets []uint64 // payload offsets of pointer fields (KindFixed)
}

// Registry maps type ids to layouts. Like C type declarations it is volatile
// and re-registered by application code on every run.
type Registry struct {
	mu     sync.RWMutex
	byID   map[TypeID]*TypeInfo
	byName map[string]*TypeInfo
	next   TypeID
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:   make(map[TypeID]*TypeInfo),
		byName: make(map[string]*TypeInfo),
		next:   1,
	}
}

// Register adds a type and assigns its id. Registering the same name twice
// returns the existing id (idempotent re-registration across runs).
func (r *Registry) Register(info TypeInfo) TypeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byName[info.Name]; ok {
		return existing.ID
	}
	if info.Name == "" {
		panic("pmop: type must have a name")
	}
	for _, off := range info.PtrOffsets {
		if off%8 != 0 || (info.Size > 0 && off+8 > info.Size) {
			panic(fmt.Sprintf("pmop: type %s has invalid pointer offset %d", info.Name, off))
		}
	}
	t := info
	t.ID = r.next
	r.next++
	r.byID[t.ID] = &t
	r.byName[t.Name] = &t
	return t.ID
}

// Lookup returns the type for id.
func (r *Registry) Lookup(id TypeID) (*TypeInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byID[id]
	return t, ok
}

// LookupName returns the type registered under name.
func (r *Registry) LookupName(name string) (*TypeInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byName[name]
	return t, ok
}

// PointerOffsets returns the payload offsets of pointer fields for an object
// of this type with the given payload size.
func (t *TypeInfo) PointerOffsets(payload uint64) []uint64 {
	switch t.Kind {
	case KindBytes:
		return nil
	case KindPtrArray:
		offs := make([]uint64, 0, payload/8)
		for o := uint64(0); o+8 <= payload; o += 8 {
			offs = append(offs, o)
		}
		return offs
	default:
		return t.PtrOffsets
	}
}
