package pmop

import (
	"encoding/binary"
	"fmt"
	"sync"

	"ffccd/internal/alloc"
	"ffccd/internal/pmem"
	"ffccd/internal/sim"
)

// Runtime manages the pools on one simulated device. A persistent superblock
// in device frame 0 records pool names and regions so pools can be reopened
// after a crash or in a later run (the PMOP's file-system-like naming role,
// §2.2.1).
type Runtime struct {
	cfg *sim.Config
	dev *pmem.Device

	mu      sync.Mutex
	pools   map[uint16]*Pool
	byName  map[string]*Pool
	nextOff uint64
	epoch   uint64 // bumped per attach: pools get fresh VA bases
}

const (
	sbMagic      = 0x46464343_44444556 // "FFCCDDEV"
	sbMagicOff   = 0
	sbCountOff   = 8
	sbEntriesOff = 16
	sbEntrySize  = 64 // id u16 | pageShift u8 | pad | region u64 | size u64 | name[40]
	sbFrame      = alloc.FrameSize
)

// NewRuntime creates a runtime over a fresh device of the given size.
func NewRuntime(cfg *sim.Config, devSize uint64) *Runtime {
	dev := pmem.NewDevice(cfg, devSize)
	rt := attach(cfg, dev)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], sbMagic)
	dev.MediaWrite(sbMagicOff, b[:])
	return rt
}

// Attach builds a runtime over an existing device (after a simulated crash
// and restart). Pools are not opened automatically; call Open.
func Attach(cfg *sim.Config, dev *pmem.Device) (*Runtime, error) {
	var b [8]byte
	dev.MediaRead(sbMagicOff, b[:])
	if binary.LittleEndian.Uint64(b[:]) != sbMagic {
		return nil, fmt.Errorf("pmop: no superblock on device")
	}
	rt := attach(cfg, dev)
	rt.epoch = 1 // any nonzero epoch shifts VA bases, exercising relocatability
	rt.scanSuperblock()
	return rt, nil
}

// AttachAtEpoch builds a runtime over an existing device pinned to a specific
// attach epoch. This is the fork path of the checkpoint/fork driver
// (DESIGN.md §7): a forked pool must reproduce the parent's VA bases exactly
// (epoch is a vaBase input), and unlike Attach the call performs no media
// writes, so restored device counters stay bit-identical. Pools are reopened
// via Open; their volatile allocator state is then restored from a
// HeapCheckpoint rather than rebuilt.
func AttachAtEpoch(cfg *sim.Config, dev *pmem.Device, epoch uint64) (*Runtime, error) {
	var b [8]byte
	dev.MediaRead(sbMagicOff, b[:])
	if binary.LittleEndian.Uint64(b[:]) != sbMagic {
		return nil, fmt.Errorf("pmop: no superblock on device")
	}
	rt := attach(cfg, dev)
	rt.epoch = epoch
	rt.scanSuperblock()
	return rt, nil
}

// Epoch returns the runtime's attach epoch (fresh runtimes are epoch 0;
// each Attach bumps it so reopened pools get shifted VA bases).
func (rt *Runtime) Epoch() uint64 { return rt.epoch }

func attach(cfg *sim.Config, dev *pmem.Device) *Runtime {
	return &Runtime{
		cfg:     cfg,
		dev:     dev,
		pools:   make(map[uint16]*Pool),
		byName:  make(map[string]*Pool),
		nextOff: sbFrame,
	}
}

// Device returns the underlying device.
func (rt *Runtime) Device() *pmem.Device { return rt.dev }

func (rt *Runtime) scanSuperblock() {
	var b [8]byte
	rt.dev.MediaRead(sbCountOff, b[:])
	n := binary.LittleEndian.Uint64(b[:])
	end := uint64(sbFrame)
	for i := uint64(0); i < n; i++ {
		e := make([]byte, sbEntrySize)
		rt.dev.MediaRead(sbEntriesOff+i*sbEntrySize, e)
		region := binary.LittleEndian.Uint64(e[8:16])
		size := binary.LittleEndian.Uint64(e[16:24])
		if region+size > end {
			end = region + size
		}
	}
	rt.nextOff = end
}

func (rt *Runtime) superblockEntries() []sbEntry {
	var b [8]byte
	rt.dev.MediaRead(sbCountOff, b[:])
	n := binary.LittleEndian.Uint64(b[:])
	out := make([]sbEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		e := make([]byte, sbEntrySize)
		rt.dev.MediaRead(sbEntriesOff+i*sbEntrySize, e)
		name := e[24:]
		l := 0
		for l < len(name) && name[l] != 0 {
			l++
		}
		out = append(out, sbEntry{
			id:        uint16(binary.LittleEndian.Uint16(e[0:2])),
			pageShift: uint(e[2]),
			region:    binary.LittleEndian.Uint64(e[8:16]),
			size:      binary.LittleEndian.Uint64(e[16:24]),
			name:      string(name[:l]),
		})
	}
	return out
}

type sbEntry struct {
	id        uint16
	pageShift uint
	region    uint64
	size      uint64
	name      string
}

func (rt *Runtime) appendSuperblock(e sbEntry) {
	var b [8]byte
	rt.dev.MediaRead(sbCountOff, b[:])
	n := binary.LittleEndian.Uint64(b[:])
	buf := make([]byte, sbEntrySize)
	binary.LittleEndian.PutUint16(buf[0:2], e.id)
	buf[2] = byte(e.pageShift)
	binary.LittleEndian.PutUint64(buf[8:16], e.region)
	binary.LittleEndian.PutUint64(buf[16:24], e.size)
	copy(buf[24:], e.name)
	rt.dev.MediaWrite(sbEntriesOff+n*sbEntrySize, buf)
	binary.LittleEndian.PutUint64(b[:], n+1)
	rt.dev.MediaWrite(sbCountOff, b[:])
}

func (rt *Runtime) vaBase(id uint16, region uint64) uint64 {
	// Distinct per pool and per attach epoch: exercises the offset-pointer
	// relocatability requirement without affecting device addressing.
	return region + (rt.epoch+1)<<34 + uint64(id)<<45
}

// Create builds a new pool. pageShift selects the OS page size used for
// footprint and TLB accounting (12 = 4 KB, 21 = 2 MB huge pages).
func (rt *Runtime) Create(name string, size uint64, pageShift uint, types *Registry) (*Pool, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, exists := rt.byName[name]; exists {
		return nil, fmt.Errorf("pmop: pool %q already exists", name)
	}
	if len(name) > 39 {
		return nil, fmt.Errorf("pmop: pool name too long")
	}
	size = (size + alloc.FrameSize - 1) &^ (alloc.FrameSize - 1)
	if rt.nextOff+size > rt.dev.Size() {
		return nil, fmt.Errorf("pmop: device full (%d + %d > %d)", rt.nextOff, size, rt.dev.Size())
	}
	txLogOff, gcMetaOff, gcMetaSize, heapOff, heapFrames, err := layout(size)
	if err != nil {
		return nil, err
	}
	id := uint16(len(rt.pools) + 1)
	p := &Pool{
		rt: rt, id: id, name: name,
		region: rt.nextOff, size: size,
		heapOff: heapOff, heapFrames: heapFrames,
		txLogOff: txLogOff, gcMetaOff: gcMetaOff, gcMetaSize: gcMetaSize,
		pageShift: pageShift,
		dev:       rt.dev, cfg: rt.cfg, types: types,
	}
	p.vaBase = rt.vaBase(id, p.region)
	rt.nextOff += size
	p.initVolatile()

	// Persist the pool header durably (create-time setup; media writes are
	// fine — pool creation is not in any measured path).
	hdr := make([]byte, 96)
	put := func(off int, v uint64) { binary.LittleEndian.PutUint64(hdr[off:], v) }
	put(hdrMagic, poolMagic)
	put(hdrPoolID, uint64(id))
	put(hdrRoot, 0)
	put(hdrHeapOff, heapOff)
	put(hdrHeapFrames, heapFrames)
	put(hdrTxLogOff, txLogOff)
	put(hdrTxSlots, txSlotCount)
	put(hdrTxSlotSize, txSlotBytes)
	put(hdrGCMetaOff, gcMetaOff)
	put(hdrGCMetaSize, gcMetaSize)
	put(hdrGCPhase, 0)
	put(hdrPageShift, uint64(pageShift))
	rt.dev.MediaWrite(p.region, hdr)
	// Zero tx-log slot states.
	rt.dev.MediaWrite(p.region+txLogOff, make([]byte, txSlotCount*txSlotBytes))

	rt.appendSuperblock(sbEntry{id: id, pageShift: pageShift, region: p.region, size: size, name: name})
	rt.pools[id] = p
	rt.byName[name] = p
	return p, nil
}

// Open reopens an existing pool from the superblock, with a fresh VA base.
// The volatile allocator state is empty: a reachability rebuild (the core
// package's Recover/Attach) must run before new allocations.
func (rt *Runtime) Open(name string, types *Registry) (*Pool, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if p, ok := rt.byName[name]; ok {
		return p, nil
	}
	for _, e := range rt.superblockEntries() {
		if e.name != name {
			continue
		}
		hdr := make([]byte, 96)
		rt.dev.MediaRead(e.region, hdr)
		get := func(off int) uint64 { return binary.LittleEndian.Uint64(hdr[off:]) }
		if get(hdrMagic) != poolMagic {
			return nil, fmt.Errorf("pmop: pool %q header corrupt", name)
		}
		p := &Pool{
			rt: rt, id: e.id, name: name,
			region: e.region, size: e.size,
			heapOff: get(hdrHeapOff), heapFrames: get(hdrHeapFrames),
			txLogOff: get(hdrTxLogOff), gcMetaOff: get(hdrGCMetaOff), gcMetaSize: get(hdrGCMetaSize),
			pageShift: uint(get(hdrPageShift)),
			dev:       rt.dev, cfg: rt.cfg, types: types,
		}
		p.vaBase = rt.vaBase(e.id, e.region)
		p.initVolatile()
		rt.pools[e.id] = p
		rt.byName[name] = p
		return p, nil
	}
	return nil, fmt.Errorf("pmop: pool %q not found", name)
}

// PoolByID resolves a pool id (for cross-pool pointer traversal).
func (rt *Runtime) PoolByID(id uint16) (*Pool, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	p, ok := rt.pools[id]
	return p, ok
}
