package pmop

import (
	"bytes"
	"testing"

	"ffccd/internal/sim"
)

// nodeType registers a list-node-like type: u64 value + next pointer.
func nodeType(reg *Registry) TypeID {
	return reg.Register(TypeInfo{
		Name: "node", Kind: KindFixed, Size: 16, PtrOffsets: []uint64{8},
	})
}

func newTestPool(t *testing.T) (*Runtime, *Pool, *sim.Ctx, TypeID) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.CacheBytes = 64 * 1024
	rt := NewRuntime(&cfg, 32<<20)
	reg := NewRegistry()
	tid := nodeType(reg)
	p, err := rt.Create("test", 16<<20, 12, reg)
	if err != nil {
		t.Fatal(err)
	}
	return rt, p, sim.NewCtx(&cfg), tid
}

func TestPtrEncoding(t *testing.T) {
	p := MakePtr(3, 0x123456)
	if p.PoolID() != 3 || p.Offset() != 0x123456 {
		t.Errorf("round trip failed: %v", p)
	}
	if !Null.IsNull() || p.IsNull() {
		t.Error("null semantics wrong")
	}
	if q := p.WithOffset(64); q.PoolID() != 3 || q.Offset() != 64 {
		t.Error("WithOffset wrong")
	}
}

func TestPtrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MakePtr(0,...) must panic")
		}
	}()
	MakePtr(0, 1)
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	id := reg.Register(TypeInfo{Name: "a", Kind: KindFixed, Size: 24, PtrOffsets: []uint64{16}})
	id2 := reg.Register(TypeInfo{Name: "a", Kind: KindFixed, Size: 24})
	if id != id2 {
		t.Error("re-registration must be idempotent")
	}
	ti, ok := reg.Lookup(id)
	if !ok || ti.Name != "a" {
		t.Fatal("lookup failed")
	}
	if _, ok := reg.LookupName("missing"); ok {
		t.Error("phantom type")
	}
}

func TestPointerOffsets(t *testing.T) {
	fixed := &TypeInfo{Kind: KindFixed, PtrOffsets: []uint64{8, 24}}
	if got := fixed.PointerOffsets(32); len(got) != 2 {
		t.Errorf("fixed offsets = %v", got)
	}
	bytesT := &TypeInfo{Kind: KindBytes}
	if got := bytesT.PointerOffsets(128); got != nil {
		t.Errorf("bytes offsets = %v", got)
	}
	arr := &TypeInfo{Kind: KindPtrArray}
	if got := arr.PointerOffsets(64); len(got) != 8 {
		t.Errorf("ptr array offsets = %v", got)
	}
}

func TestAllocAndAccess(t *testing.T) {
	_, p, ctx, tid := newTestPool(t)
	obj, err := p.Alloc(ctx, tid, 0)
	if err != nil {
		t.Fatal(err)
	}
	ty, size := p.Header(ctx, obj)
	if ty != tid || size != 16 {
		t.Errorf("header = (%d,%d), want (%d,16)", ty, size, tid)
	}
	p.WriteU64(ctx, obj, 0, 42)
	if got := p.ReadU64(ctx, obj, 0); got != 42 {
		t.Errorf("value = %d, want 42", got)
	}
	// Payload must start zeroed.
	if got := p.ReadU64(ctx, obj, 8); got != 0 {
		t.Errorf("fresh payload = %d, want 0", got)
	}
}

func TestPointerFieldsAndRoot(t *testing.T) {
	_, p, ctx, tid := newTestPool(t)
	a, _ := p.Alloc(ctx, tid, 0)
	b, _ := p.Alloc(ctx, tid, 0)
	p.WritePtr(ctx, a, 8, b)
	if got := p.ReadPtr(ctx, a, 8); got != b {
		t.Errorf("next = %v, want %v", got, b)
	}
	p.SetRoot(ctx, a)
	if got := p.Root(ctx); got != a {
		t.Errorf("root = %v, want %v", got, a)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	_, p, ctx, _ := newTestPool(t)
	bt := p.Types().Register(TypeInfo{Name: "blob", Kind: KindBytes})
	obj, err := p.Alloc(ctx, bt, 128)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 128)
	p.WriteBytes(ctx, obj, 0, data)
	got := make([]byte, 128)
	p.ReadBytes(ctx, obj, 0, got)
	if !bytes.Equal(got, data) {
		t.Error("blob mismatch")
	}
}

func TestFreeMakesSpaceReusable(t *testing.T) {
	_, p, ctx, tid := newTestPool(t)
	a, _ := p.Alloc(ctx, tid, 0)
	live := p.Heap().LiveBytes()
	p.Free(ctx, a)
	if p.Heap().LiveBytes() >= live {
		t.Error("free did not shrink live bytes")
	}
	b, _ := p.Alloc(ctx, tid, 0)
	if b != a {
		t.Errorf("slot not reused: %v vs %v", b, a)
	}
}

func TestReopenAcrossRuns(t *testing.T) {
	cfg := sim.DefaultConfig()
	rt := NewRuntime(&cfg, 32<<20)
	reg := NewRegistry()
	tid := nodeType(reg)
	ctx := sim.NewCtx(&cfg)
	p, _ := rt.Create("persist", 8<<20, 12, reg)
	obj, _ := p.Alloc(ctx, tid, 0)
	p.WriteU64(ctx, obj, 0, 777)
	p.SetRoot(ctx, obj)
	p.Device().FlushAll(ctx)

	// "Second run": new runtime on the same device, fresh VA base.
	rt2, err := Attach(&cfg, rt.Device())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := rt2.Open("persist", reg)
	if err != nil {
		t.Fatal(err)
	}
	if p2.VA(0) == p.VA(0) {
		t.Error("reopened pool should map at a different VA (relocatability)")
	}
	root := p2.Root(ctx)
	if root.IsNull() {
		t.Fatal("root lost across runs")
	}
	if got := p2.ReadU64(ctx, root, 0); got != 777 {
		t.Errorf("value across runs = %d, want 777", got)
	}
}

func TestOpenMissingPool(t *testing.T) {
	cfg := sim.DefaultConfig()
	rt := NewRuntime(&cfg, 8<<20)
	if _, err := rt.Open("ghost", NewRegistry()); err == nil {
		t.Fatal("expected error")
	}
}

func TestTxCommitPersists(t *testing.T) {
	_, p, ctx, tid := newTestPool(t)
	obj, _ := p.Alloc(ctx, tid, 0)
	tx := p.Begin(ctx)
	tx.AddObject(ctx, obj)
	p.WriteU64(ctx, obj, 0, 99)
	tx.Commit(ctx)
	p.Device().Crash()
	var b [8]byte
	p.Device().MediaRead(p.PA(obj.Offset()), b[:])
	if b[0] != 99 {
		t.Errorf("committed value lost on crash: %x", b[0])
	}
}

func TestTxAbortRollsBack(t *testing.T) {
	_, p, ctx, tid := newTestPool(t)
	obj, _ := p.Alloc(ctx, tid, 0)
	p.WriteU64(ctx, obj, 0, 1)
	tx := p.Begin(ctx)
	tx.AddObject(ctx, obj)
	p.WriteU64(ctx, obj, 0, 2)
	tx.Abort(ctx)
	if got := p.ReadU64(ctx, obj, 0); got != 1 {
		t.Errorf("abort left value %d, want 1", got)
	}
}

func TestTxCrashRecovery(t *testing.T) {
	_, p, ctx, tid := newTestPool(t)
	obj, _ := p.Alloc(ctx, tid, 0)
	p.WriteU64(ctx, obj, 0, 10)
	p.Device().FlushAll(ctx)

	tx := p.Begin(ctx)
	tx.AddObject(ctx, obj)
	p.WriteU64(ctx, obj, 0, 20)
	// The in-flight write happens to persist (worst case for undo).
	p.Clwb(ctx, obj.Offset())
	p.Sfence(ctx)
	// Crash mid-transaction.
	p.Device().Crash()

	touched := p.RecoverTx(ctx)
	if len(touched) != 1 {
		t.Fatalf("touched ranges = %d, want 1", len(touched))
	}
	if got := p.ReadU64(ctx, obj, 0); got != 10 {
		t.Errorf("recovered value = %d, want 10 (rolled back)", got)
	}
	// Recovery must be idempotent: a second pass finds nothing.
	if again := p.RecoverTx(ctx); len(again) != 0 {
		t.Errorf("second recovery found %d ranges", len(again))
	}
}

func TestTxConcurrentSlots(t *testing.T) {
	_, p, ctx, tid := newTestPool(t)
	objs := make([]Ptr, 4)
	for i := range objs {
		objs[i], _ = p.Alloc(ctx, tid, 0)
	}
	done := make(chan bool)
	for i := 0; i < 4; i++ {
		go func(i int) {
			cfg := sim.DefaultConfig()
			c := sim.NewCtx(&cfg)
			for rep := 0; rep < 20; rep++ {
				tx := p.Begin(c)
				tx.AddObject(c, objs[i])
				p.WriteU64(c, objs[i], 0, uint64(rep))
				tx.Commit(c)
			}
			done <- true
		}(i)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	for i, o := range objs {
		if got := p.ReadU64(ctx, o, 0); got != 19 {
			t.Errorf("obj %d = %d, want 19", i, got)
		}
	}
}

// movedBarrier simulates a forwarding read barrier for one object.
type movedBarrier struct {
	from, to Ptr
	calls    int
}

func (m *movedBarrier) Resolve(_ *sim.Ctx, ref Ptr) Ptr {
	m.calls++
	if ref == m.from {
		return m.to
	}
	return ref
}

func TestReadBarrierSelfHeals(t *testing.T) {
	_, p, ctx, tid := newTestPool(t)
	a, _ := p.Alloc(ctx, tid, 0)
	bOld, _ := p.Alloc(ctx, tid, 0)
	bNew, _ := p.Alloc(ctx, tid, 0)
	p.WriteU64(ctx, bNew, 0, 5)
	p.WritePtr(ctx, a, 8, bOld)

	p.SetBarrier(&movedBarrier{from: bOld, to: bNew})
	got := p.ReadPtr(ctx, a, 8)
	if got != bNew {
		t.Fatalf("barrier did not forward: %v", got)
	}
	// The stored reference must have been healed: with the barrier removed,
	// a plain read returns the new pointer.
	p.SetBarrier(nil)
	if raw := p.ReadPtr(ctx, a, 8); raw != bNew {
		t.Errorf("reference not self-healed: %v", raw)
	}
}

func TestWritePtrResolvesValue(t *testing.T) {
	_, p, ctx, tid := newTestPool(t)
	a, _ := p.Alloc(ctx, tid, 0)
	bOld, _ := p.Alloc(ctx, tid, 0)
	bNew, _ := p.Alloc(ctx, tid, 0)
	p.SetBarrier(&movedBarrier{from: bOld, to: bNew})
	p.WritePtr(ctx, a, 8, bOld) // stale value written during compaction
	p.SetBarrier(nil)
	if got := p.ReadPtr(ctx, a, 8); got != bNew {
		t.Errorf("stale reference re-entered the heap: %v", got)
	}
}

func TestRootBarrierHealing(t *testing.T) {
	_, p, ctx, tid := newTestPool(t)
	old, _ := p.Alloc(ctx, tid, 0)
	nw, _ := p.Alloc(ctx, tid, 0)
	p.SetRoot(ctx, old)
	p.SetBarrier(&movedBarrier{from: old, to: nw})
	if got := p.Root(ctx); got != nw {
		t.Fatalf("root not forwarded: %v", got)
	}
	p.SetBarrier(nil)
	if got := p.Root(ctx); got != nw {
		t.Errorf("root cell not healed: %v", got)
	}
}

func TestAllocHookFires(t *testing.T) {
	_, p, ctx, tid := newTestPool(t)
	n := 0
	p.SetAllocHook(func() { n++ })
	obj, _ := p.Alloc(ctx, tid, 0)
	p.Free(ctx, obj)
	if n != 2 {
		t.Errorf("hook fired %d times, want 2", n)
	}
}

func TestTLBChargedOnAccess(t *testing.T) {
	_, p, ctx, tid := newTestPool(t)
	obj, _ := p.Alloc(ctx, tid, 0)
	before := ctx.TLB.AccessCount()
	p.ReadU64(ctx, obj, 0)
	if ctx.TLB.AccessCount() == before {
		t.Error("access did not consult the TLB")
	}
}

func TestGCPhasePersistence(t *testing.T) {
	_, p, ctx, _ := newTestPool(t)
	p.SetGCPhase(ctx, 3)
	p.Device().Crash()
	if got := p.GCPhase(ctx); got != 3 {
		t.Errorf("gc phase = %d after crash, want 3", got)
	}
}
