// Package pmop implements the persistent-memory object-pool programming
// model the paper builds on (§2.2): pools with roots, 64-bit persistent
// pointers (pool id + offset) for relocatability, typed allocation backed by
// a type registry that records pointer-field layouts, undo-log transactions,
// and D_RW/D_RO-style accessors with a pluggable read barrier — the hook the
// defragmenter repurposes for concurrent compaction (§3.1).
package pmop

import "fmt"

// Ptr is a persistent pointer: the high 16 bits hold the pool id (≥1) and
// the low 48 bits the byte offset within the pool. The zero value is the
// null pointer. Offsets always point at an object's payload; the 16-byte
// header sits immediately before it.
type Ptr uint64

// Null is the nil persistent pointer.
const Null Ptr = 0

const offsetMask = (1 << 48) - 1

// MakePtr builds a pointer from a pool id and offset.
func MakePtr(pool uint16, off uint64) Ptr {
	if pool == 0 {
		panic("pmop: pool id 0 is reserved for the null pointer")
	}
	if off > offsetMask {
		panic(fmt.Sprintf("pmop: offset %#x exceeds 48 bits", off))
	}
	return Ptr(uint64(pool)<<48 | off)
}

// PoolID returns the pool id component.
func (p Ptr) PoolID() uint16 { return uint16(uint64(p) >> 48) }

// Offset returns the pool-relative byte offset of the object payload.
func (p Ptr) Offset() uint64 { return uint64(p) & offsetMask }

// IsNull reports whether p is the null pointer.
func (p Ptr) IsNull() bool { return p == 0 }

// WithOffset returns a pointer in the same pool at a different offset.
func (p Ptr) WithOffset(off uint64) Ptr { return MakePtr(p.PoolID(), off) }

func (p Ptr) String() string {
	if p.IsNull() {
		return "pmop.Null"
	}
	return fmt.Sprintf("pool%d+%#x", p.PoolID(), p.Offset())
}
