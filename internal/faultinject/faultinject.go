// Package faultinject reproduces the paper's crash-consistency validation
// (§7.1): crashes are injected at arbitrary points of the concurrent
// compacting phase, the per-scheme recovery runs, and a two-step checker
// validates (1) program data — readability, values, absence of dangling
// pointers, structure topology — and (2) agreement between defragmentation
// metadata and the memory state. The paper's 26 settings (five single-
// threaded microbenchmarks plus BzTree/FPTree at 1, 2, 4, 8 threads, each
// under SFCCD and FFCCD) are enumerated by AllSettings.
//
// Two trial drivers coexist:
//
//   - Trial/TrialWith: the original randomized driver — concurrent churn
//     goroutines, a crash after rng.Intn(400) compaction steps, a random
//     in-flight-line policy. Good concurrency coverage, but the crash point
//     is only as fine as a step count.
//   - RunScheduled (schedule.go): the deterministic driver — single-threaded
//     end to end, crash fired at an exact crash-site index (see
//     pmem.SiteClass), optionally a second crash inside recovery. Every
//     failing schedule replays bit-identically from its Repro line.
//
// Campaigns over scheduled trials (campaign.go) sweep or sample the site
// space and shrink failures (shrink.go) into minimal repro artifacts.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"

	"ffccd/internal/checker"
	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/obsv"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
	"ffccd/internal/workpool"
)

// TrialOptions carries per-campaign hooks. The zero value is a plain trial.
// Options travel by value with each campaign, so concurrent campaigns with
// different settings never race (this replaced a package-level factory
// variable).
type TrialOptions struct {
	// Obs, when non-nil, supplies a fresh observability bundle per trial.
	// An injected crash fires the bundle's OnCrash hook (flight-recorder
	// dump) at the fault, before recovery runs. Tracing reads simulated
	// clocks but never charges them, so trial outcomes are unaffected.
	Obs func(setting Setting, seed int64) *obsv.Obs

	// AfterRecovery, when non-nil, runs after recovery completes and before
	// the checker. Tests use it to plant synthetic corruption (proving the
	// campaign's failure→repro→replay loop end to end) or to stall (proving
	// the watchdog).
	AfterRecovery func(ctx *sim.Ctx, p *pmop.Pool)
}

// Host-side fan-out runs on the process-wide worker pool shared with the
// experiments driver (internal/workpool). Every trial builds its own
// simulated machine, so trials are hermetic; the pool size changes host
// wall-clock only, never a trial verdict. Defaults to GOMAXPROCS,
// overridable with FFCCD_PARALLEL or SetParallelism.

// SetParallelism sets the shared pool's worker count (values < 1 mean
// serial).
func SetParallelism(n int) { workpool.SetParallelism(n) }

// Parallelism returns the shared pool's current worker count.
func Parallelism() int { return int(workpool.Parallelism()) }

// parallelFor runs f(0..n-1) on the shared worker pool. Results must be
// written into index-addressed slots by f, so output order is deterministic
// regardless of worker count; nested fan-outs (campaign sweeps running
// trial grids) share the pool's slots instead of oversubscribing.
func parallelFor(n int, f func(i int)) {
	_ = workpool.ForEach(n, func(i int) error {
		f(i)
		return nil
	})
}

// Setting is one validation configuration.
type Setting struct {
	Store   string
	Threads int
	Scheme  core.Scheme
}

func (s Setting) String() string {
	return fmt.Sprintf("%s/%dT/%s", s.Store, s.Threads, s.Scheme)
}

// ParseSetting parses the String form ("BzTree/4T/ffccd") back into a
// Setting — the format repro artifacts carry.
func ParseSetting(str string) (Setting, error) {
	var s Setting
	parts := [3]string{}
	n := 0
	start := 0
	for i := 0; i <= len(str); i++ {
		if i == len(str) || str[i] == '/' {
			if n >= 3 {
				return s, fmt.Errorf("faultinject: bad setting %q", str)
			}
			parts[n] = str[start:i]
			n++
			start = i + 1
		}
	}
	if n != 3 {
		return s, fmt.Errorf("faultinject: bad setting %q", str)
	}
	s.Store = parts[0]
	known := false
	for _, st := range append(append([]string{}, MicroStores...), ConcurrentStores...) {
		if st == s.Store {
			known = true
			break
		}
	}
	if !known {
		return s, fmt.Errorf("faultinject: unknown store %q in %q", s.Store, str)
	}
	if _, err := fmt.Sscanf(parts[1], "%dT", &s.Threads); err != nil || s.Threads < 1 {
		return s, fmt.Errorf("faultinject: bad thread count in %q", str)
	}
	schemeName := parts[2]
	for _, sc := range []core.Scheme{core.SchemeNone, core.SchemeEspresso,
		core.SchemeSFCCD, core.SchemeFFCCD, core.SchemeFFCCDCheckLookup} {
		if sc.String() == schemeName {
			s.Scheme = sc
			if s.String() != str {
				return s, fmt.Errorf("faultinject: bad setting %q", str)
			}
			return s, nil
		}
	}
	return s, fmt.Errorf("faultinject: unknown scheme %q in %q", schemeName, str)
}

// MicroStores are the five single-threaded microbenchmarks.
var MicroStores = []string{"LL", "AVL", "SS", "BT", "RBT"}

// ConcurrentStores are the concurrent PM data structures.
var ConcurrentStores = []string{"BzTree", "FPTree"}

// AllSettings enumerates the paper's 26 settings.
func AllSettings() []Setting {
	var out []Setting
	for _, scheme := range []core.Scheme{core.SchemeSFCCD, core.SchemeFFCCD} {
		for _, st := range MicroStores {
			out = append(out, Setting{st, 1, scheme})
		}
		for _, st := range ConcurrentStores {
			for _, th := range []int{1, 2, 4, 8} {
				out = append(out, Setting{st, th, scheme})
			}
		}
	}
	return out
}

// buildStore constructs a named store over p.
func buildStore(ctx *sim.Ctx, p *pmop.Pool, name string) (ds.Store, error) {
	switch name {
	case "LL":
		return ds.NewList(ctx, p)
	case "AVL":
		return ds.NewAVL(ctx, p)
	case "SS":
		return ds.NewStringStore(ctx, p, 1024)
	case "BT":
		return ds.NewBPTree(ctx, p)
	case "RBT":
		return ds.NewRBTree(ctx, p)
	case "BzTree":
		return ds.NewBzTree(ctx, p)
	case "FPTree":
		return ds.NewFPTree(ctx, p)
	}
	return nil, fmt.Errorf("faultinject: unknown store %q", name)
}

// keyCapFor bounds the key space for slot-addressed stores.
func keyCapFor(name string) uint64 {
	if name == "SS" {
		return 1024
	}
	return 1 << 30
}

// Trial runs one randomized fault-injection trial and returns an error
// describing the first consistency violation, or nil.
func Trial(setting Setting, seed int64) error {
	return TrialWith(setting, seed, TrialOptions{})
}

// TrialWith is Trial with per-campaign options.
func TrialWith(setting Setting, seed int64, opts TrialOptions) error {
	cfg := sim.DefaultConfig()
	cfg.CacheBytes = 256 * 1024
	rt := pmop.NewRuntime(&cfg, 128<<20)
	reg := pmop.NewRegistry()
	ds.RegisterTypes(reg)
	p, err := rt.Create("fi", 64<<20, 12, reg)
	if err != nil {
		return err
	}
	ctx := sim.NewCtx(&cfg)
	s, err := buildStore(ctx, p, setting.Store)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))

	// Build a fragmented store with per-thread key ranges. Each thread owns
	// a disjoint range and a persistent thread-local model spanning both
	// churn sessions, so deletes in the second session are reflected.
	models := make([]map[uint64][]byte, setting.Threads)
	for i := range models {
		models[i] = make(map[uint64][]byte)
	}
	churn := func(c *sim.Ctx, tid, ops int, r *rand.Rand) error {
		local := models[tid]
		base := uint64(tid) << 20
		keyCap := keyCapFor(setting.Store)
		for i := 0; i < ops; i++ {
			key := base + r.Uint64()%300
			if key >= keyCap {
				key = key % keyCap
			}
			switch r.Intn(10) {
			case 0, 1, 2, 3, 4, 5:
				v := make([]byte, 16+r.Intn(113))
				for j := range v {
					v[j] = byte(key) ^ byte(j) ^ byte(i)
				}
				if err := s.Insert(c, key, v); err != nil {
					return err
				}
				local[key] = v
			case 6, 7:
				if _, err := s.Delete(c, key); err != nil {
					return err
				}
				delete(local, key)
			default:
				s.Get(c, key)
			}
		}
		return nil
	}

	// Single-threaded ranges must not overlap when threads > 1: each thread
	// owns its base. SS is slot-addressed, so it stays single-threaded in
	// AllSettings (a micro store).
	var wg sync.WaitGroup
	errs := make(chan error, setting.Threads)
	for t := 0; t < setting.Threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			c := sim.NewCtx(&cfg)
			errs <- churn(c, tid, 600, rand.New(rand.NewSource(seed+int64(tid)+1)))
		}(t)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		if e != nil {
			return e
		}
	}
	p.Device().FlushAll(ctx)

	var obs *obsv.Obs
	if opts.Obs != nil {
		if obs = opts.Obs(setting, seed); obs != nil {
			obs.Tracer.Name(ctx, "driver")
			p.Device().SetObs(obs)
		}
	}

	// Start a defragmentation epoch and advance it a random amount.
	opt := core.DefaultOptions()
	opt.Scheme = setting.Scheme
	opt.TriggerRatio = 1.01
	opt.TargetRatio = 1.05
	opt.Obs = obs
	e := core.NewEngine(p, opt)
	if !e.BeginCycle(ctx) {
		// Not fragmented enough this time; that is a (trivially) passing
		// trial — nothing to crash into.
		e.Close()
		return nil
	}
	steps := rng.Intn(400)
	e.StepCompaction(ctx, steps)

	// Concurrent application traffic through the read barrier, then stop.
	var wg2 sync.WaitGroup
	errs2 := make(chan error, setting.Threads)
	for t := 0; t < setting.Threads; t++ {
		wg2.Add(1)
		go func(tid int) {
			defer wg2.Done()
			c := sim.NewCtx(&cfg)
			errs2 <- churn(c, tid, 60, rand.New(rand.NewSource(seed^0x5a5a+int64(tid))))
		}(t)
	}
	wg2.Wait()
	close(errs2)
	for e2 := range errs2 {
		if e2 != nil {
			return e2
		}
	}

	// Crash with a randomly chosen persistence outcome for unfenced lines.
	switch rng.Intn(3) {
	case 0:
		p.Device().SetCrashPolicy(pmem.DropAllInflight)
	case 1:
		p.Device().SetCrashPolicy(pmem.KeepAllInflight)
	default:
		salt := rng.Uint64()
		p.Device().SetCrashPolicy(func(line uint64) bool {
			return (line*0x9E3779B97F4A7C15+salt)&1 == 0
		})
	}
	p.Device().Crash()

	// Restart: attach, open, recover (completes the epoch).
	rt2, err := pmop.Attach(&cfg, rt.Device())
	if err != nil {
		return err
	}
	reg2 := pmop.NewRegistry()
	ds.RegisterTypes(reg2)
	p2, err := rt2.Open("fi", reg2)
	if err != nil {
		return err
	}
	e2, err := core.Recover(ctx, p2, opt)
	if err != nil {
		return fmt.Errorf("recovery failed: %w", err)
	}
	defer e2.Close()

	if opts.AfterRecovery != nil {
		opts.AfterRecovery(ctx, p2)
	}

	s2, err := buildStore(ctx, p2, setting.Store)
	if err != nil {
		return err
	}
	model := make(map[uint64][]byte)
	for _, m := range models {
		for k, v := range m {
			model[k] = v
		}
	}

	// Checker step 1: program-data consistency against the model.
	if err := checker.CheckStore(ctx, s2, model); err != nil {
		return fmt.Errorf("checker step 1 (%s): %w", setting, err)
	}
	// Checker step 2: GC metadata vs memory state.
	if _, err := checker.CheckGraph(ctx, p2); err != nil {
		return fmt.Errorf("checker step 2 (%s): %w", setting, err)
	}
	return nil
}

// Outcome summarises a campaign over one setting.
type Outcome struct {
	Setting  Setting
	Trials   int
	Passed   int
	Failures []string
}

// RunSetting executes trials fault-injection trials for one setting across
// Parallelism() workers. The outcome is deterministic regardless of worker
// count: failures are aggregated in trial order.
func RunSetting(setting Setting, trials int, seed int64) Outcome {
	return RunSettingWith(setting, trials, seed, TrialOptions{})
}

// RunSettingWith is RunSetting with per-campaign options.
func RunSettingWith(setting Setting, trials int, seed int64, opts TrialOptions) Outcome {
	out := Outcome{Setting: setting, Trials: trials}
	errs := make([]error, trials)
	parallelFor(trials, func(i int) {
		errs[i] = TrialWith(setting, seed+int64(i)*7919, opts)
	})
	for _, err := range errs {
		if err != nil {
			out.Failures = append(out.Failures, err.Error())
		} else {
			out.Passed++
		}
	}
	return out
}
