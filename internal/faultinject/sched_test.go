package faultinject_test

// Tests for the deterministic crash-schedule driver, the campaign runner,
// the repro artifact round trip, and the shrinker.

import (
	"strings"
	"testing"
	"time"

	"ffccd/internal/core"
	"ffccd/internal/faultinject"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

func ffccdSetting() faultinject.Setting {
	return faultinject.Setting{Store: "LL", Threads: 1, Scheme: core.SchemeFFCCD}
}

// plantPhaseCorruption is the synthetic checker-failure hook: it flips the
// recovered pool's phase word back to "compacting", which checker step 2
// rejects deterministically. It proves the failure→repro→replay loop with
// a corruption no real code path produces.
func plantPhaseCorruption(ctx *sim.Ctx, p *pmop.Pool) {
	p.SetGCPhase(ctx, 1)
}

func TestScheduledTrialDeterministic(t *testing.T) {
	rep := faultinject.NewRepro(ffccdSetting(), 3)
	census, err := faultinject.RunScheduled(rep, faultinject.TrialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !census.Began || census.Census.Total == 0 {
		t.Fatalf("census pass opened no epoch: %+v", census)
	}
	rep.Site = int64(census.Census.Total) / 2
	rep.Policy = faultinject.PolicySalt
	rep.Salt = 0xfeed
	a, errA := faultinject.RunScheduled(rep, faultinject.TrialOptions{})
	b, errB := faultinject.RunScheduled(rep, faultinject.TrialOptions{})
	if errA != nil || errB != nil {
		t.Fatalf("scheduled runs failed: %v / %v", errA, errB)
	}
	if a.Crash == nil || b.Crash == nil {
		t.Fatalf("scheduled crash did not fire: %+v / %+v", a.Crash, b.Crash)
	}
	if *a.Crash != *b.Crash {
		t.Errorf("crash differs across replays: %+v vs %+v", a.Crash, b.Crash)
	}
	if a.Census != b.Census || a.RecoveryCensus != b.RecoveryCensus {
		t.Errorf("census differs across replays")
	}
	if a.PostCrashHash != b.PostCrashHash {
		t.Errorf("post-crash media hash differs: %#x vs %#x", a.PostCrashHash, b.PostCrashHash)
	}
	if a.FinalHash != b.FinalHash {
		t.Errorf("final media hash differs: %#x vs %#x", a.FinalHash, b.FinalHash)
	}
}

func TestSiteClassCoverage(t *testing.T) {
	// The census of one FFCCD trial must contain every compaction-side site
	// class; a crash's recovery census must contain recovery steps.
	rep := faultinject.NewRepro(ffccdSetting(), 1)
	res, err := faultinject.RunScheduled(rep, faultinject.TrialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range []pmem.SiteClass{
		pmem.SiteSfence, pmem.SiteWPQDrain, pmem.SiteRelocate,
		pmem.SiteRelocateLine, pmem.SiteMovedBit, pmem.SiteBarrierFixup,
		pmem.SiteEpochTransition,
	} {
		if res.Census.FirstIndex[cl] < 0 {
			t.Errorf("site class %s never hit in census: %+v", cl, res.Census)
		}
	}
	rep.Site = int64(res.Census.Total) / 2
	crashed, err := faultinject.RunScheduled(rep, faultinject.TrialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if crashed.Crash == nil {
		t.Fatal("mid-census site did not fire")
	}
	if crashed.RecoveryCensus.FirstIndex[pmem.SiteRecoveryStep] < 0 {
		t.Errorf("recovery census missing recovery-step sites: %+v", crashed.RecoveryCensus)
	}
}

func TestGoldenUnaffectedByDisarmedSites(t *testing.T) {
	// With no schedule armed the site hooks must not perturb the machine:
	// two plain trials and one scheduled census of the same seed must agree
	// on the final media image.
	rep := faultinject.NewRepro(ffccdSetting(), 11)
	a, errA := faultinject.RunScheduled(rep, faultinject.TrialOptions{})
	b, errB := faultinject.RunScheduled(rep, faultinject.TrialOptions{})
	if errA != nil || errB != nil {
		t.Fatalf("census runs failed: %v / %v", errA, errB)
	}
	if a.FinalHash == 0 || a.FinalHash != b.FinalHash {
		t.Fatalf("disarmed runs not bit-identical: %#x vs %#x", a.FinalHash, b.FinalHash)
	}
}

func TestSyntheticFailureReproReplaysBitIdentically(t *testing.T) {
	// Plant a corruption after recovery, watch the campaign fail, then
	// replay the emitted repro line and demand the same error and the same
	// media images — the acceptance test for the repro artifact.
	opts := faultinject.TrialOptions{AfterRecovery: plantPhaseCorruption}
	co := faultinject.CampaignOptions{
		Seed:     5,
		MaxSites: 3,
		Trial:    opts,
	}
	out := faultinject.ExploreSetting(ffccdSetting(), co)
	if out.Skipped || out.Scheduled == 0 {
		t.Fatalf("campaign did not run: %+v", out)
	}
	if len(out.Failures) == 0 {
		t.Fatal("planted corruption produced no failures")
	}
	f := out.Failures[0]
	if !strings.Contains(f.Err, "phase") {
		t.Fatalf("unexpected failure mode: %s", f.Err)
	}
	if !strings.Contains(f.Repro.Command(), "ffccd-crashtest -repro '") {
		t.Fatalf("failure carries no repro command: %q", f.Repro.Command())
	}

	line := f.Repro.MarshalLine()
	parsed, err := faultinject.ParseRepro(line)
	if err != nil {
		t.Fatalf("emitted repro line does not parse: %v", err)
	}
	if parsed != f.Repro {
		t.Fatalf("repro round trip drifted: %+v vs %+v", parsed, f.Repro)
	}
	r1, err1 := faultinject.RunScheduled(parsed, opts)
	r2, err2 := faultinject.RunScheduled(parsed, opts)
	if err1 == nil || err2 == nil {
		t.Fatalf("replay did not reproduce the failure: %v / %v", err1, err2)
	}
	if err1.Error() != f.Err || err2.Error() != f.Err {
		t.Fatalf("replay error drifted:\n campaign: %s\n replay:   %s", f.Err, err1)
	}
	if r1.PostCrashHash != r2.PostCrashHash || r1.Census != r2.Census {
		t.Fatal("replays not bit-identical")
	}
}

func TestShrinkFindsSmallerFailingSchedule(t *testing.T) {
	opts := faultinject.TrialOptions{AfterRecovery: plantPhaseCorruption}
	rep := faultinject.NewRepro(ffccdSetting(), 5)
	census, err := faultinject.RunScheduled(rep, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep.Site = int64(census.Census.Total) / 2
	if _, err := faultinject.RunScheduled(rep, opts); err == nil {
		t.Fatal("seed schedule unexpectedly passes")
	}
	min, ok := faultinject.ShrinkRepro(rep, opts, 0, faultinject.ShrinkBudget)
	if !ok {
		t.Fatal("shrinker found nothing smaller")
	}
	if min.Ops > rep.Ops || min.Site > rep.Site {
		t.Fatalf("shrunk schedule is not smaller: %+v vs %+v", min, rep)
	}
	if _, err := faultinject.RunScheduled(min, opts); err == nil {
		t.Fatalf("shrunk schedule does not fail: %+v", min)
	}
}

func TestWatchdogReportsHangAsFailure(t *testing.T) {
	stall := func(ctx *sim.Ctx, p *pmop.Pool) { time.Sleep(10 * time.Second) }
	co := faultinject.CampaignOptions{
		Seed:     5,
		MaxSites: 1, // class-first floor still applies; keep the wave small
		Timeout:  300 * time.Millisecond,
		Trial:    faultinject.TrialOptions{AfterRecovery: stall},
	}
	out := faultinject.ExploreSetting(ffccdSetting(), co)
	if len(out.Failures) == 0 {
		t.Fatal("hung trials produced no failures")
	}
	hung := 0
	for _, f := range out.Failures {
		if f.Hung {
			hung++
			if !strings.Contains(f.Err, "watchdog") {
				t.Errorf("hung failure lacks watchdog error: %s", f.Err)
			}
		}
	}
	if hung == 0 {
		t.Fatalf("no failure marked hung: %+v", out.Failures)
	}
}

func TestCampaignCleanSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, s := range []faultinject.Setting{
		{Store: "LL", Threads: 1, Scheme: core.SchemeFFCCD},
		{Store: "BT", Threads: 1, Scheme: core.SchemeSFCCD},
		{Store: "BzTree", Threads: 2, Scheme: core.SchemeFFCCD},
	} {
		co := faultinject.CampaignOptions{Seed: 7, MaxSites: 8, Nested: true, MaxNested: 3}
		out := faultinject.ExploreSetting(s, co)
		if out.Skipped {
			t.Errorf("%s: campaign skipped (store not fragmented)", s)
			continue
		}
		if out.Scheduled == 0 || out.Passed != out.Scheduled {
			t.Errorf("%s: %d/%d passed, failures: %+v", s, out.Passed, out.Scheduled, out.Failures)
		}
	}
}

func TestNestedCrashAllSettings(t *testing.T) {
	// Crash mid-compaction, crash again mid-recovery, then demand the final
	// unscheduled recovery satisfies the two-step checker — for all 26
	// settings of the paper.
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, s := range faultinject.AllSettings() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			rep := faultinject.NewRepro(s, 9)
			census, err := faultinject.RunScheduled(rep, faultinject.TrialOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !census.Began {
				t.Fatal("no epoch opened")
			}
			rep.Site = int64(census.Census.Total) / 2
			first, err := faultinject.RunScheduled(rep, faultinject.TrialOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if first.Crash == nil {
				t.Fatal("first-level crash did not fire")
			}
			if first.RecoveryCensus.Total == 0 {
				t.Fatal("recovery exposed no crash sites")
			}
			rep.Nested = int64(first.RecoveryCensus.Total) / 2
			nested, err := faultinject.RunScheduled(rep, faultinject.TrialOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if nested.NestedCrash == nil {
				t.Fatal("nested crash did not fire")
			}
		})
	}
}

func TestParseSettingRoundTrip(t *testing.T) {
	for _, s := range faultinject.AllSettings() {
		got, err := faultinject.ParseSetting(s.String())
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if got != s {
			t.Fatalf("round trip drifted: %+v vs %+v", got, s)
		}
	}
	for _, bad := range []string{"", "LL", "LL/1T", "LL/xT/ffccd", "LL/0T/ffccd",
		"LL/1T/bogus", "LL/1T/ffccd/extra", "ll/1T/ffccd"} {
		if _, err := faultinject.ParseSetting(bad); err == nil {
			t.Errorf("ParseSetting(%q) accepted", bad)
		}
	}
}

func TestParseReproRejectsGarbage(t *testing.T) {
	good := faultinject.NewRepro(ffccdSetting(), 1).MarshalLine()
	if _, err := faultinject.ParseRepro(good); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"",
		"{",
		`{"setting":"LL/1T/ffccd","seed":1,"ops":1,"tail_ops":0,"site":-1,"nested":-1,"policy":"bogus","salt":0}`,
		`{"setting":"nope","seed":1,"ops":1,"tail_ops":0,"site":-1,"nested":-1,"policy":"drop","salt":0}`,
		`{"setting":"LL/1T/ffccd","seed":1,"typo_field":3}`,
	} {
		if _, err := faultinject.ParseRepro(bad); err == nil {
			t.Errorf("ParseRepro(%q) accepted", bad)
		}
	}
}
