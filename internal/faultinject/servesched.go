package faultinject

// Deterministic crash schedules for the serving path (redisws.Serve). A
// serving trial is the online analogue of RunScheduled: the same machine runs
// under open-loop traffic, a site census enumerates every persistence-relevant
// event of the dispatch phase, and an armed replay fires a power failure at an
// exact site index — including a nested crash inside the recovery that
// follows. Unlike a batch trial, the run does not end at the crash: the
// dispatcher performs an online crash-recovery-resume (redisws.CrashPlan),
// the durable-ack checker validates every acknowledged write against the
// recovered store, and serving continues with retry/backoff until the
// schedule's op budget is spent. The whole trial — census, crash, recovery,
// resumed tail, final media hash — is a pure function of the ServeRepro line.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"ffccd/internal/alloc"
	"ffccd/internal/checker"
	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/kv"
	"ffccd/internal/mesh"
	"ffccd/internal/obsv"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/redisws"
	"ffccd/internal/sim"
)

// ServeSchemes are the serving-path defragmentation schemes a schedule can
// name — the four machines of the §7.4 comparison.
var ServeSchemes = []string{"none", "ffccd", "stw", "mesh"}

// Default serving-trial volumes. Small enough for a stratified campaign in CI,
// large enough that the value-size drift at Ops/2 fragments the store and the
// schemes actually defragment inside the schedulable window.
const (
	DefaultServeClients = 8
	DefaultServeOps     = 4000
	DefaultServeKeys    = 800
)

// ServeRepro is one deterministic serving crash schedule — the replayable
// artifact a failing serving campaign emits. All fields marshal explicitly so
// a shrunk zero survives the JSON round trip.
type ServeRepro struct {
	Scheme  string `json:"scheme"`
	Clients int    `json:"clients"`
	Ops     int    `json:"ops"`
	Keys    int    `json:"keys"`
	Seed    int64  `json:"seed"`
	Site    int64  `json:"site"`   // crash-site index; -1 = census (no crash)
	Nested  int64  `json:"nested"` // recovery crash-site index; -1 = none
	Policy  string `json:"policy"`
	Salt    uint64 `json:"salt"`

	// Shards is the sharded-deployment machine count (1 = the unsharded
	// trial; pre-sharding repro lines parse as Shards=1). Shard names the
	// machine the crash schedule targets — Site indexes that shard's own
	// site census, so a one-line repro stays deterministic under sharding.
	Shards int `json:"shards"`
	Shard  int `json:"shard"`
}

// NewServeRepro returns a census-pass schedule for one scheme with default
// volumes.
func NewServeRepro(scheme string, seed int64) ServeRepro {
	return ServeRepro{
		Scheme: scheme, Seed: seed,
		Clients: DefaultServeClients, Ops: DefaultServeOps, Keys: DefaultServeKeys,
		Site: -1, Nested: -1, Policy: PolicyDrop, Shards: 1,
	}
}

func validServeScheme(s string) bool {
	for _, k := range ServeSchemes {
		if k == s {
			return true
		}
	}
	return false
}

// MarshalLine renders the schedule as its canonical one-line JSON.
func (r ServeRepro) MarshalLine() string {
	b, err := json.Marshal(r)
	if err != nil {
		panic(err) // plain struct of scalars; cannot happen
	}
	return string(b)
}

// ParseServeRepro parses MarshalLine output (unknown fields rejected so typos
// in hand-edited repro lines fail loudly).
func ParseServeRepro(line string) (ServeRepro, error) {
	r := ServeRepro{Site: -1, Nested: -1, Shards: 1}
	dec := json.NewDecoder(bytes.NewReader([]byte(line)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return r, fmt.Errorf("faultinject: bad serve repro line: %w", err)
	}
	if !validServeScheme(r.Scheme) {
		return r, fmt.Errorf("faultinject: unknown serving scheme %q", r.Scheme)
	}
	if r.Shards < 1 {
		r.Shards = 1
	}
	if r.Shard < 0 || r.Shard >= r.Shards {
		return r, fmt.Errorf("faultinject: shard %d out of range for %d shards", r.Shard, r.Shards)
	}
	if _, err := PolicyFor(r.Policy, r.Salt); err != nil {
		return r, err
	}
	return r, nil
}

// Command renders the one-line shell command that replays this schedule.
func (r ServeRepro) Command() string {
	return fmt.Sprintf("ffccd-crashtest -serve -repro '%s'", r.MarshalLine())
}

// ServeTrialOptions carries per-campaign hooks for serving trials.
type ServeTrialOptions struct {
	// AfterRecovery, when non-nil, runs inside the blackout — after the store
	// reopens, before the durable-ack checker. Tests use it to plant ack-loss
	// bugs (proving the checker catches them) or to stall (proving the
	// watchdog).
	AfterRecovery func(ctx *sim.Ctx, p *pmop.Pool, s ds.Store)
	// Series, when non-nil, supplies a fresh time series per trial (the run's
	// recovery/backoff overlay intervals land in it). Unsharded trials only.
	Series func(rep ServeRepro) *obsv.TimeSeries
	// ShardSeries, when non-nil, supplies one time series per shard of a
	// sharded trial (shard in [0, rep.Shards)).
	ShardSeries func(rep ServeRepro, shard int) *obsv.TimeSeries
	// AdmitCap overrides the degraded-mode admission-queue bound
	// (0 = redisws default, Clients/4+1).
	AdmitCap int
}

// ServeScheduleResult reports what one serving trial did.
type ServeScheduleResult struct {
	// Census counts the dispatch-phase sites — complete when no crash fired,
	// up to the crash otherwise.
	Census pmem.SiteCensus
	// Crash is the injected power failure (nil for a completed census run).
	Crash *pmem.CrashAtSite
	// RecoveryCensus counts the sites of the first post-crash recovery;
	// NestedCrash is the power failure injected inside it, if any.
	RecoveryCensus pmem.SiteCensus
	NestedCrash    *pmem.CrashAtSite
	// RecoveryStages records the core.Recover stage labels of the last
	// completed recovery, in order.
	RecoveryStages []string
	// PostCrashHash digests the media right after the (first) crash;
	// FinalHash digests it after the resumed run quiesces (for a sharded
	// trial, an order-fixed fold of the per-shard hashes). Equal hashes
	// across runs of the same ServeRepro are the bit-identity witness.
	PostCrashHash, FinalHash uint64
	// Serve is the completed serving run (availability metrics included);
	// for a sharded trial it is the deterministic merge and PerShard carries
	// the per-machine rows (nil when Shards <= 1).
	Serve    redisws.ServeResult
	PerShard []redisws.ServeResult
	// ShardCensus is the per-shard dispatch-phase site census of a sharded
	// census pass (index = shard id; nil when Shards <= 1 or Site >= 0).
	ShardCensus []pmem.SiteCensus
	// ShardHashes are the per-shard final media hashes FinalHash folds
	// (nil when Shards <= 1).
	ShardHashes []uint64
}

// serveCoreScheme maps a serving scheme name to the engine scheme recovery
// runs under ("none" and "mesh" have no engine; their recovery is the
// scheme-independent idle path).
func serveCoreScheme(scheme string) core.Scheme {
	switch scheme {
	case "ffccd":
		return core.SchemeFFCCDCheckLookup
	case "stw":
		return core.SchemeEspresso
	}
	return core.SchemeNone
}

// serveEngineOptions is the serving-grid engine configuration (mirrors
// experiments.Serving so scheduled trials crash the same machine the SLO grid
// measures).
func serveEngineOptions(scheme string) core.Options {
	return core.Options{
		Scheme:       serveCoreScheme(scheme),
		TriggerRatio: 1.10,
		TargetRatio:  1.01,
		BatchObjects: 64,
	}
}

// wireServeHooks builds the serving hooks for one scheme over an existing
// machine — at trial start over a fresh engine, after a crash over the
// recovered one. The gcCtx carries across the crash (pause accounting is
// delta-based).
func wireServeHooks(scheme string, p *pmop.Pool, eng *core.Engine, d *mesh.Defragmenter, gcCtx *sim.Ctx) redisws.ServeHooks {
	var hooks redisws.ServeHooks
	switch scheme {
	case "ffccd":
		open := false
		hooks.Maintenance = func(uint64) uint64 {
			if open || p.Heap().Frag(12).FragRatio <= 1.10 {
				return 0
			}
			before := gcCtx.Clock.Cycles(sim.CatMark) + gcCtx.Clock.Cycles(sim.CatSummary)
			if !eng.BeginCycle(gcCtx) {
				return 0
			}
			open = true
			return gcCtx.Clock.Cycles(sim.CatMark) + gcCtx.Clock.Cycles(sim.CatSummary) - before
		}
		hooks.EpochOpen = func() bool { return open }
		hooks.EpochInfo = eng.OpenEpoch
		hooks.Step = func(n int) (bool, uint64) {
			eng.StepCompaction(gcCtx, n)
			if eng.EpochPending() > 0 {
				return true, 0
			}
			t0 := gcCtx.Clock.Total()
			eng.FinishCycle(gcCtx)
			open = false
			return false, gcCtx.Clock.Total() - t0
		}
	case "stw":
		hooks.Maintenance = func(uint64) uint64 {
			if p.Heap().Frag(12).FragRatio <= 1.10 {
				return 0
			}
			pause, _ := eng.RunCycleSTW(gcCtx)
			return pause
		}
	case "mesh":
		hooks.Maintenance = func(uint64) uint64 {
			before := gcCtx.Clock.Total()
			d.RunCycle(gcCtx)
			return gcCtx.Clock.Total() - before
		}
		hooks.Foot = func() alloc.FragStats { return d.PhysFrag(12) }
	}
	return hooks
}

// serveConfigFor builds the serving workload for a schedule: the Figure 16
// fragmentation regime (LRU churn near the cap, value-size drift at Ops/2)
// scaled down to trial volumes.
func serveConfigFor(rep ServeRepro) redisws.ServeConfig {
	cfg := redisws.DefaultServeConfig()
	cfg.Clients = rep.Clients
	cfg.Ops = rep.Ops
	cfg.Keyspace = rep.Keys
	cfg.Seed = rep.Seed
	cfg.MinVal, cfg.MaxVal = 240, 366
	cfg.MinVal2, cfg.MaxVal2 = 367, 492
	cfg.MaxLiveBytes = uint64(rep.Keys) * 300 / 2
	cfg.MaintEvery = rep.Keys / 8
	if cfg.MaintEvery < 1 {
		cfg.MaintEvery = 1
	}
	return cfg
}

// serveMachine is one independent simulated machine of a serving trial: its
// runtime, pool, loader context, store, GC clock domain, scheme engine, and
// hooks. curPool/curEng track the incarnation a crash recovery swapped in.
type serveMachine struct {
	rt    *pmop.Runtime
	pool  *pmop.Pool
	dev   *pmem.Device
	ctx   *sim.Ctx
	store ds.Store
	gcCtx *sim.Ctx
	eng   *core.Engine
	d     *mesh.Defragmenter
	hooks redisws.ServeHooks

	curPool *pmop.Pool
	curEng  *core.Engine
}

// buildServeMachine constructs one trial machine for scheme, sized for keys
// owned keys (the whole keyspace unsharded, the hash-owned subset per shard).
func buildServeMachine(cfg *sim.Config, scheme string, keys int) (*serveMachine, error) {
	poolBytes := uint64(keys)*512*6 + (16 << 20)
	rt := pmop.NewRuntime(cfg, poolBytes*2)
	reg := pmop.NewRegistry()
	ds.RegisterTypes(reg)
	kv.RegisterTypes(reg)
	p, err := rt.Create("serve", poolBytes, 12, reg)
	if err != nil {
		return nil, err
	}
	ctx := sim.NewCtx(cfg)
	s, err := kv.NewEcho(ctx, p, keys/2+64)
	if err != nil {
		return nil, err
	}
	m := &serveMachine{
		rt: rt, pool: p, dev: p.Device(), ctx: ctx, store: s,
		gcCtx: sim.NewCtx(cfg), curPool: p,
	}
	if sc := serveCoreScheme(scheme); sc != core.SchemeNone {
		m.eng = core.NewEngine(p, serveEngineOptions(scheme))
		m.curEng = m.eng
	}
	if scheme == "mesh" {
		m.d = mesh.New(p)
	}
	m.hooks = wireServeHooks(scheme, p, m.eng, m.d, m.gcCtx)
	return m, nil
}

// RunServeScheduled executes one deterministic serving crash trial. The
// returned error is the trial verdict (nil = consistent; recovery failures and
// durable-ack violations are verdicts). The ServeScheduleResult is populated
// as far as the trial got even on failure.
//
// With rep.Shards > 1 the trial runs one machine per shard: the crash plan
// arms only shard rep.Shard — its power failure blacks out that shard while
// the siblings keep serving — and the per-shard results merge
// deterministically. A sharded census pass (Site = -1) census-arms every
// shard, so one run yields each shard's own site census (ShardCensus).
func RunServeScheduled(rep ServeRepro, opts ServeTrialOptions) (ServeScheduleResult, error) {
	var res ServeScheduleResult
	if !validServeScheme(rep.Scheme) {
		return res, fmt.Errorf("faultinject: unknown serving scheme %q", rep.Scheme)
	}
	if rep.Clients <= 0 {
		rep.Clients = DefaultServeClients
	}
	if rep.Ops <= 0 {
		rep.Ops = DefaultServeOps
	}
	if rep.Keys <= 0 {
		rep.Keys = DefaultServeKeys
	}
	if rep.Shards < 1 {
		rep.Shards = 1
	}
	if rep.Shard < 0 || rep.Shard >= rep.Shards {
		return res, fmt.Errorf("faultinject: shard %d out of range for %d shards", rep.Shard, rep.Shards)
	}
	policy, err := PolicyFor(rep.Policy, rep.Salt)
	if err != nil {
		return res, err
	}

	cfg := sim.DefaultConfig()
	cfg.CacheBytes = 256 * 1024
	nsh := rep.Shards
	machines := make([]*serveMachine, nsh)
	shardKeys := make([]int, nsh)
	for i := 0; i < nsh; i++ {
		keys := rep.Keys
		if nsh > 1 {
			keys = len(redisws.OwnedKeys(uint64(rep.Keys), i, nsh))
		}
		shardKeys[i] = keys
		if machines[i], err = buildServeMachine(&cfg, rep.Scheme, keys); err != nil {
			return res, err
		}
	}
	target := machines[rep.Shard]
	if nsh == 1 {
		if opts.Series != nil {
			target.hooks.Series = opts.Series(rep)
		}
	} else if opts.ShardSeries != nil {
		for i := range machines {
			machines[i].hooks.Series = opts.ShardSeries(rep, i)
		}
	}

	// The crash plan arms only the target shard; siblings never lose power.
	// The pre-crash engine is abandoned wholesale at a crash, like the batch
	// driver: its volatile state is exactly what the power failure destroys.
	dev := target.dev
	gcCtx := target.gcCtx
	targetKeys := shardKeys[rep.Shard]
	crashed := false

	target.hooks.Crash = &redisws.CrashPlan{
		AdmitCap: opts.AdmitCap,
		Arm:      func() { dev.ArmSites(rep.Site) },
		Recover: func(crash *pmem.CrashAtSite, acked map[uint64][]byte, pending *redisws.PendingWrite) (*redisws.Recovered, error) {
			crashed = true
			res.Crash = crash
			res.Census = dev.DisarmSites()
			dev.SetCrashPolicy(policy)
			dev.Crash()
			res.PostCrashHash = dev.HashMedia()

			// Restart: attach, open, recover. recCtx bills the blackout — the
			// cycles the server is gone.
			recCtx := sim.NewCtx(&cfg)
			attach := func() (*pmop.Pool, error) {
				rt2, err := pmop.Attach(&cfg, target.rt.Device())
				if err != nil {
					return nil, err
				}
				reg2 := pmop.NewRegistry()
				ds.RegisterTypes(reg2)
				kv.RegisterTypes(reg2)
				return rt2.Open("serve", reg2)
			}
			ropt := serveEngineOptions(rep.Scheme)
			ropt.RecoveryProgress = func(stage string) {
				res.RecoveryStages = append(res.RecoveryStages, stage)
			}
			p2, err := attach()
			if err != nil {
				return nil, err
			}
			// Mesh's remap table must be installed before reference marking
			// reads the heap (see mesh.Recover).
			var d2 *mesh.Defragmenter
			if rep.Scheme == "mesh" {
				if d2, err = mesh.Recover(recCtx, p2); err != nil {
					return nil, fmt.Errorf("mesh recovery (%s): %w", rep.Scheme, err)
				}
			}
			var e2 *core.Engine
			var recErr error
			dev.ArmSites(rep.Nested)
			res.NestedCrash = catchCrash(func() {
				res.RecoveryStages = res.RecoveryStages[:0]
				e2, recErr = core.Recover(recCtx, p2, ropt)
			})
			res.RecoveryCensus = dev.DisarmSites()
			if recErr != nil {
				return nil, fmt.Errorf("recovery failed (%s): %w", rep.Scheme, recErr)
			}
			if res.NestedCrash != nil {
				// Second power failure, inside recovery. Crash again and run
				// the final, unscheduled recovery — double-recovery
				// idempotence on the serving path.
				dev.SetCrashPolicy(policy)
				dev.Crash()
				if p2, err = attach(); err != nil {
					return nil, err
				}
				if rep.Scheme == "mesh" {
					if d2, err = mesh.Recover(recCtx, p2); err != nil {
						return nil, fmt.Errorf("second mesh recovery (%s): %w", rep.Scheme, err)
					}
				}
				res.RecoveryStages = res.RecoveryStages[:0]
				if e2, err = core.Recover(recCtx, p2, ropt); err != nil {
					return nil, fmt.Errorf("second recovery failed (%s): %w", rep.Scheme, err)
				}
			}
			// After the allocator rebuild, re-pin meshed frames so later
			// cycles cannot re-mesh over resident neighbours.
			if d2 != nil {
				d2.RestoreFrameStates()
			}
			s2, err := kv.NewEcho(recCtx, p2, targetKeys/2+64)
			if err != nil {
				return nil, err
			}
			if opts.AfterRecovery != nil {
				opts.AfterRecovery(recCtx, p2, s2)
			}
			// Durable-ack and graph checks run on a non-billed context: the
			// blackout bill is the restart work, not the validation harness.
			chkCtx := sim.NewCtx(&cfg)
			var pw *checker.PendingWrite
			if pending != nil {
				pw = &checker.PendingWrite{Key: pending.Key, Val: pending.Val}
			}
			var model map[uint64][]byte
			if nsh > 1 {
				model, err = checker.DurableAcksShard(chkCtx, rep.Shard, s2, acked, pw)
			} else {
				model, err = checker.DurableAcks(chkCtx, s2, acked, pw)
			}
			if err != nil {
				return nil, fmt.Errorf("durable-ack check (%s): %w", rep.Scheme, err)
			}
			if _, err := checker.CheckGraph(chkCtx, p2); err != nil {
				return nil, fmt.Errorf("post-recovery graph check (%s): %w", rep.Scheme, err)
			}
			target.curPool, target.curEng = p2, e2
			return &redisws.Recovered{
				Store:  s2,
				Pool:   p2,
				Hooks:  wireServeHooks(rep.Scheme, p2, e2, d2, gcCtx),
				Cycles: recCtx.Clock.Total(),
				Model:  model,
			}, nil
		},
	}
	// A sharded census pass census-arms the sibling shards too, so a single
	// run yields every shard's site census. Arming charges no simulated
	// cycles, so sibling behaviour is bit-identical to an armed pass.
	if nsh > 1 && rep.Site < 0 {
		for i := range machines {
			if i == rep.Shard {
				continue
			}
			md := machines[i].dev
			machines[i].hooks.Crash = &redisws.CrashPlan{Arm: func() { md.ArmSites(-1) }}
		}
	}

	shards := make([]redisws.Shard, nsh)
	for i, m := range machines {
		shards[i] = redisws.Shard{Ctx: m.ctx, Pool: m.pool, Store: m.store, Hooks: m.hooks}
	}
	sharded, err := redisws.ServeSharded(shards, redisws.ShardConfigs(serveConfigFor(rep), nsh))
	res.Serve = sharded.Merged
	if nsh > 1 {
		res.PerShard = sharded.Shards
	}
	if err != nil {
		return res, err
	}
	if !crashed {
		// Census pass, or the armed site was past the end of the run.
		res.Census = dev.DisarmSites()
	}
	if nsh > 1 && rep.Site < 0 {
		res.ShardCensus = make([]pmem.SiteCensus, nsh)
		for i, m := range machines {
			if i == rep.Shard {
				res.ShardCensus[i] = res.Census
			} else {
				res.ShardCensus[i] = m.dev.DisarmSites()
			}
		}
	}
	for _, m := range machines {
		if m.curEng != nil {
			m.curEng.Close()
		}
		m.dev.FlushAll(m.ctx)
	}
	if nsh == 1 {
		res.FinalHash = dev.HashMedia()
	} else {
		// Fold the per-shard hashes in shard order (FNV-1a over the shard
		// digests) — one bit-identity witness for the whole deployment.
		res.ShardHashes = make([]uint64, nsh)
		h := uint64(1469598103934665603)
		for i, m := range machines {
			hs := m.dev.HashMedia()
			res.ShardHashes[i] = hs
			h ^= hs
			h *= 1099511628211
		}
		res.FinalHash = h
	}
	chkCtx := sim.NewCtx(&cfg)
	for i, m := range machines {
		if _, err := checker.CheckGraph(chkCtx, m.curPool); err != nil {
			if nsh > 1 {
				return res, fmt.Errorf("final graph check (%s, shard %d): %w", rep.Scheme, i, err)
			}
			return res, fmt.Errorf("final graph check (%s): %w", rep.Scheme, err)
		}
	}
	return res, nil
}
