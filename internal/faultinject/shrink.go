package faultinject

// Failure shrinking. Given a failing schedule, ShrinkRepro greedily tries
// cheaper variants — fewer churn ops, no tail churn, an earlier (smaller)
// crash site, no nested crash — and keeps any variant that still fails.
// Because scheduled trials are deterministic, "still fails" needs exactly
// one run per candidate; the result is a locally minimal Repro whose
// one-line command is a far better bug report than the original (less churn
// to wade through in a flight-recorder dump, an earlier crash to step to).
//
// Shrinking minimizes the *schedule*, not the error text: a candidate that
// fails with a different checker message still reproduces a bug at a
// smaller schedule, which is what a debugging session wants first.

import "time"

// ShrinkBudget is the default trial budget per shrink.
const ShrinkBudget = 48

// shrinkCost orders schedules by how much work replaying them takes.
func shrinkCost(r Repro) int64 {
	c := int64(r.Ops)*8 + int64(r.TailOps)*8 + r.Site
	if r.Nested >= 0 {
		c += r.Nested
	}
	return c
}

// ShrinkRepro minimizes a failing schedule, spending at most budget extra
// trials. Returns the smallest still-failing schedule found and whether it
// improves on the input. The input must fail (callers pass schedules a
// campaign just saw fail); if it somehow passes now, ok is false.
func ShrinkRepro(rep Repro, topts TrialOptions, timeout time.Duration, budget int) (Repro, bool) {
	if budget <= 0 {
		budget = ShrinkBudget
	}
	if rep.Ops <= 0 {
		rep.Ops = DefaultOps
	}
	fails := func(r Repro) bool {
		if budget <= 0 {
			return false
		}
		budget--
		_, err, hung := runWatched(r, topts, timeout)
		return err != nil || hung
	}

	best := rep
	improved := false
	for budget > 0 {
		// Candidate moves, cheapest-first. Halving moves converge in
		// log(size) accepted steps; the -1 moves polish the end point.
		var cands []Repro
		add := func(mut func(*Repro)) {
			c := best
			mut(&c)
			if c.Ops < 1 {
				c.Ops = 1
			}
			if c.TailOps < 0 {
				c.TailOps = 0
			}
			if c != best && shrinkCost(c) < shrinkCost(best) {
				cands = append(cands, c)
			}
		}
		add(func(r *Repro) { r.Nested = -1 })
		add(func(r *Repro) { r.Nested = r.Nested / 2 })
		add(func(r *Repro) { r.Ops = r.Ops / 2 })
		add(func(r *Repro) { r.TailOps = 0 })
		add(func(r *Repro) { r.TailOps = r.TailOps / 2 })
		add(func(r *Repro) { r.Site = r.Site / 2 })
		add(func(r *Repro) { r.Ops = r.Ops - 1 })
		add(func(r *Repro) { r.Site = r.Site - 1 })
		if r := best; r.Nested > 0 {
			add(func(r *Repro) { r.Nested = r.Nested - 1 })
		}

		progressed := false
		for _, c := range cands {
			if budget <= 0 {
				break
			}
			if fails(c) {
				best = c
				improved = true
				progressed = true
				break // restart the move list from the new best
			}
		}
		if !progressed {
			break
		}
	}
	return best, improved
}
