package faultinject_test

import (
	"testing"

	"ffccd/internal/core"
	"ffccd/internal/faultinject"
)

func TestAllSettingsEnumerates26(t *testing.T) {
	settings := faultinject.AllSettings()
	if len(settings) != 26 {
		t.Fatalf("settings = %d, want 26 (paper §7.1)", len(settings))
	}
	schemes := map[core.Scheme]int{}
	threads := map[int]int{}
	for _, s := range settings {
		schemes[s.Scheme]++
		threads[s.Threads]++
	}
	if schemes[core.SchemeSFCCD] != 13 || schemes[core.SchemeFFCCD] != 13 {
		t.Errorf("scheme split wrong: %v", schemes)
	}
	if threads[8] != 4 { // BzTree+FPTree ×2 schemes
		t.Errorf("thread split wrong: %v", threads)
	}
}

// TestCampaignSample runs a scaled-down injection campaign: a few trials of
// a representative subset of the 26 settings. The full campaign (1000 trials
// per setting) is cmd/ffccd-crashtest.
func TestCampaignSample(t *testing.T) {
	if testing.Short() {
		t.Skip("fault injection campaign is slow")
	}
	subset := []faultinject.Setting{
		{Store: "LL", Threads: 1, Scheme: core.SchemeSFCCD},
		{Store: "LL", Threads: 1, Scheme: core.SchemeFFCCD},
		{Store: "AVL", Threads: 1, Scheme: core.SchemeFFCCD},
		{Store: "BT", Threads: 1, Scheme: core.SchemeSFCCD},
		{Store: "RBT", Threads: 1, Scheme: core.SchemeFFCCD},
		{Store: "SS", Threads: 1, Scheme: core.SchemeSFCCD},
		{Store: "BzTree", Threads: 4, Scheme: core.SchemeFFCCD},
		{Store: "FPTree", Threads: 4, Scheme: core.SchemeSFCCD},
		{Store: "FPTree", Threads: 2, Scheme: core.SchemeFFCCD},
	}
	for _, s := range subset {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			out := faultinject.RunSetting(s, 4, 1000)
			if out.Passed != out.Trials {
				t.Fatalf("%d/%d passed; first failure: %s", out.Passed, out.Trials, out.Failures[0])
			}
		})
	}
}

func TestSingleTrialDeterministic(t *testing.T) {
	s := faultinject.Setting{Store: "LL", Threads: 1, Scheme: core.SchemeFFCCD}
	if err := faultinject.Trial(s, 42); err != nil {
		t.Fatal(err)
	}
}

func TestSettingString(t *testing.T) {
	s := faultinject.Setting{Store: "BzTree", Threads: 4, Scheme: core.SchemeFFCCD}
	if got := s.String(); got != "BzTree/4T/ffccd" {
		t.Errorf("Setting.String = %q", got)
	}
}

func TestAllSettingsCoverBothSchemes(t *testing.T) {
	bySch := map[core.Scheme]int{}
	byStore := map[string]bool{}
	for _, s := range faultinject.AllSettings() {
		bySch[s.Scheme]++
		byStore[s.Store] = true
		if s.Threads < 1 || s.Threads > 8 {
			t.Errorf("setting %s has bad thread count", s)
		}
	}
	if bySch[core.SchemeSFCCD] != 13 || bySch[core.SchemeFFCCD] != 13 {
		t.Errorf("scheme split %v, want 13/13", bySch)
	}
	for _, st := range append(append([]string{}, faultinject.MicroStores...), faultinject.ConcurrentStores...) {
		if !byStore[st] {
			t.Errorf("store %s missing from campaign", st)
		}
	}
}

func TestRunSettingAggregatesOutcome(t *testing.T) {
	out := faultinject.RunSetting(faultinject.Setting{Store: "LL", Threads: 1, Scheme: core.SchemeFFCCD}, 3, 101)
	if out.Trials != 3 {
		t.Fatalf("trials = %d", out.Trials)
	}
	if out.Passed+len(out.Failures) != out.Trials {
		t.Fatalf("pass/fail don't sum: %d + %d != %d", out.Passed, len(out.Failures), out.Trials)
	}
	if out.Passed != 3 {
		t.Fatalf("expected all trials to pass, failures: %v", out.Failures)
	}
}
