package faultinject

// Campaigns over deterministic crash schedules. For each setting the driver
// first runs a census pass (counting crash sites), then sweeps the site
// space — exhaustively when it fits the budget, by stratified sampling
// (every site class's first occurrence plus an even spread) when it does
// not — firing one scheduled crash per selected site with a rotating
// in-flight-line policy. With Nested enabled, sites whose recovery exposes
// its own crash sites get crash-during-recovery schedules too. Trials run on
// a shared worker pool (Parallelism()); a per-trial watchdog converts hangs
// into reported failures instead of stalled CI. Every failure carries the
// one-line Repro command that replays it bit-identically.

import (
	"fmt"
	"sort"
	"time"

	"ffccd/internal/pmem"
)

// CampaignOptions tunes a scheduled-crash campaign. The zero value is an
// exhaustive single-crash sweep with default churn and no watchdog.
type CampaignOptions struct {
	// Seed is the base churn seed (schedules inherit it verbatim).
	Seed int64
	// Ops/TailOps override the per-thread churn volumes (0 = defaults).
	Ops, TailOps int
	// MaxSites bounds the scheduled sites per setting; 0 sweeps
	// exhaustively. Every site class's first occurrence is always kept, so
	// the real floor is the number of populated classes.
	MaxSites int
	// Nested adds crash-during-recovery schedules.
	Nested bool
	// MaxNested caps the nested schedules per setting (0 = same as the
	// number of first-level sites selected).
	MaxNested int
	// Timeout is the per-trial watchdog; expiry is reported as a failure
	// (the trial goroutine is abandoned). 0 disables.
	Timeout time.Duration
	// Shrink minimizes each failure's Repro before reporting (ShrinkBudget
	// extra trials per failure).
	Shrink bool
	// Trial carries the per-trial hooks (observability, corruption planting).
	Trial TrialOptions
}

// Failure is one failing schedule with its replay artifact.
type Failure struct {
	Repro Repro
	Err   string
	// Hung marks a watchdog expiry (the trial never returned).
	Hung bool
	// Shrunk is the minimized schedule (set when CampaignOptions.Shrink).
	Shrunk *Repro
}

func (f Failure) String() string {
	kind := "failed"
	if f.Hung {
		kind = "hung"
	}
	s := fmt.Sprintf("%s: %s\n  repro: %s", kind, f.Err, f.Repro.Command())
	if f.Shrunk != nil {
		s += fmt.Sprintf("\n  shrunk: %s", f.Shrunk.Command())
	}
	return s
}

// CampaignOutcome summarises one setting's campaign.
type CampaignOutcome struct {
	Setting Setting
	// SitesTotal is the census site count; Scheduled the trials actually
	// run (first-level + nested, census excluded).
	SitesTotal uint64
	Scheduled  int
	Passed     int
	// Skipped is set when the census pass opened no epoch (store not
	// fragmented enough) — the setting is vacuously consistent.
	Skipped  bool
	Failures []Failure
}

// runWatched executes one schedule under the watchdog. On expiry the trial
// goroutine is abandoned (it holds only trial-local simulated state) and the
// expiry is the verdict.
func runWatched(rep Repro, topts TrialOptions, timeout time.Duration) (ScheduleResult, error, bool) {
	if timeout <= 0 {
		res, err := RunScheduled(rep, topts)
		return res, err, false
	}
	type outcome struct {
		res ScheduleResult
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := RunScheduled(rep, topts)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err, false
	case <-time.After(timeout):
		return ScheduleResult{}, fmt.Errorf("watchdog: trial exceeded %s", timeout), true
	}
}

// selectSites picks the schedule sites for a census: every site when the
// budget allows, otherwise each class's first occurrence plus an even spread
// across the index space — the stratification that keeps rare classes
// (epoch transitions happen twice per trial, WPQ drains thousands of times)
// in every campaign.
func selectSites(c pmem.SiteCensus, maxSites int) []int64 {
	total := int64(c.Total)
	if total == 0 {
		return nil
	}
	if maxSites <= 0 || total <= int64(maxSites) {
		out := make([]int64, total)
		for i := range out {
			out[i] = int64(i)
		}
		return out
	}
	seen := make(map[int64]bool)
	var out []int64
	add := func(s int64) {
		if s >= 0 && s < total && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, fi := range c.FirstIndex {
		add(fi)
	}
	for k := 0; len(out) < maxSites && k < maxSites; k++ {
		add(int64(k) * total / int64(maxSites))
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// ExploreSetting runs the scheduled-crash campaign for one setting.
func ExploreSetting(setting Setting, co CampaignOptions) CampaignOutcome {
	out := CampaignOutcome{Setting: setting}
	base := NewRepro(setting, co.Seed)
	if co.Ops > 0 {
		base.Ops = co.Ops
	}
	if co.TailOps > 0 {
		base.TailOps = co.TailOps
	}

	// Census pass: count the sites (and verify the no-crash run).
	census, err, hung := runWatched(base, co.Trial, co.Timeout)
	if err != nil {
		out.Failures = append(out.Failures, Failure{Repro: base, Err: err.Error(), Hung: hung})
		return out
	}
	if !census.Began {
		out.Skipped = true
		return out
	}
	out.SitesTotal = census.Census.Total

	// First-level schedules: one crash per selected site, policy rotating
	// per site, salt derived from the site index.
	sites := selectSites(census.Census, co.MaxSites)
	reps := make([]Repro, len(sites))
	for i, site := range sites {
		r := base
		r.Site = site
		r.Policy = Policies[i%len(Policies)]
		r.Salt = uint64(site)*0x9E3779B97F4A7C15 + uint64(co.Seed)
		reps[i] = r
	}
	type jobOut struct {
		res  ScheduleResult
		err  error
		hung bool
	}
	firsts := make([]jobOut, len(reps))
	parallelFor(len(reps), func(i int) {
		res, err, hung := runWatched(reps[i], co.Trial, co.Timeout)
		firsts[i] = jobOut{res, err, hung}
	})

	// Nested schedules: crash-during-recovery at the first recovery-step
	// site and the middle of the recovery's site space, for up to MaxNested
	// crashing first-level sites (evenly spread over the selection).
	var nreps []Repro
	if co.Nested {
		budget := co.MaxNested
		if budget <= 0 {
			budget = len(reps)
		}
		var crashed []int
		for i, f := range firsts {
			if f.err == nil && !f.hung && f.res.Crash != nil && f.res.RecoveryCensus.Total > 0 {
				crashed = append(crashed, i)
			}
		}
		stride := 1
		if len(crashed) > budget {
			stride = (len(crashed) + budget - 1) / budget
		}
		for k := 0; k < len(crashed) && len(nreps) < budget; k += stride {
			i := crashed[k]
			rc := firsts[i].res.RecoveryCensus
			nested := map[int64]bool{int64(rc.Total) / 2: true}
			if fi := rc.FirstIndex[pmem.SiteRecoveryStep]; fi >= 0 {
				nested[fi] = true
			}
			var ns []int64
			for s := range nested {
				ns = append(ns, s)
			}
			sort.Slice(ns, func(a, b int) bool { return ns[a] < ns[b] })
			for _, s := range ns {
				if len(nreps) >= budget {
					break
				}
				r := reps[i]
				r.Nested = s
				nreps = append(nreps, r)
			}
		}
	}
	nesteds := make([]jobOut, len(nreps))
	parallelFor(len(nreps), func(i int) {
		res, err, hung := runWatched(nreps[i], co.Trial, co.Timeout)
		nesteds[i] = jobOut{res, err, hung}
	})

	// Aggregate in schedule order (deterministic under any worker count).
	collect := func(reps []Repro, outs []jobOut) {
		for i, o := range outs {
			out.Scheduled++
			if o.err == nil {
				out.Passed++
				continue
			}
			f := Failure{Repro: reps[i], Err: o.err.Error(), Hung: o.hung}
			if co.Shrink {
				if min, ok := ShrinkRepro(reps[i], co.Trial, co.Timeout, ShrinkBudget); ok {
					f.Shrunk = &min
				}
			}
			out.Failures = append(out.Failures, f)
		}
	}
	collect(reps, firsts)
	collect(nreps, nesteds)
	return out
}

// RunExploration runs ExploreSetting over each setting in order.
func RunExploration(settings []Setting, co CampaignOptions) []CampaignOutcome {
	outs := make([]CampaignOutcome, len(settings))
	for i, s := range settings {
		outs[i] = ExploreSetting(s, co)
	}
	return outs
}
