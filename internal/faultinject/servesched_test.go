package faultinject_test

// Tests for the serving-path crash schedules: the online
// crash-recovery-resume loop, the durable-ack checker integration, resumed-run
// determinism across host parallelism, double-crash idempotence, the serving
// campaign (watchdog, coverage, shrinking), and the ServeRepro round trip.

import (
	"strings"
	"testing"
	"time"

	"ffccd/internal/ds"
	"ffccd/internal/faultinject"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// smallServe returns fast trial volumes for one scheme.
func smallServe(scheme string, seed int64) faultinject.ServeRepro {
	rep := faultinject.NewServeRepro(scheme, seed)
	rep.Clients, rep.Ops, rep.Keys = 4, 1200, 400
	return rep
}

func TestServeReproRoundTrip(t *testing.T) {
	rep := faultinject.NewServeRepro("ffccd", 7)
	rep.Site, rep.Nested, rep.Policy, rep.Salt = 123, 4, faultinject.PolicySalt, 99
	line := rep.MarshalLine()
	got, err := faultinject.ParseServeRepro(line)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got != rep {
		t.Fatalf("round trip: got %+v want %+v", got, rep)
	}
	if !strings.Contains(rep.Command(), "-serve") {
		t.Fatalf("command %q does not select serve mode", rep.Command())
	}
	if _, err := faultinject.ParseServeRepro(`{"scheme":"ffccd","bogus":1}`); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := faultinject.ParseServeRepro(`{"scheme":"espresso"}`); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

// TestServeScheduledCrashAllSchemes fires one mid-run crash per scheme and
// checks the trial recovers, resumes, and completes its full op budget.
func TestServeScheduledCrashAllSchemes(t *testing.T) {
	for _, scheme := range faultinject.ServeSchemes {
		rep := smallServe(scheme, 11)
		census, err := faultinject.RunServeScheduled(rep, faultinject.ServeTrialOptions{})
		if err != nil {
			t.Fatalf("%s census: %v", scheme, err)
		}
		if census.Census.Total == 0 {
			t.Fatalf("%s: census found no sites", scheme)
		}
		armed := rep
		armed.Site = int64(census.Census.Total / 2)
		res, err := faultinject.RunServeScheduled(armed, faultinject.ServeTrialOptions{})
		if err != nil {
			t.Fatalf("%s armed: %v", scheme, err)
		}
		if res.Crash == nil {
			t.Fatalf("%s armed: crash did not fire", scheme)
		}
		sv := res.Serve
		if sv.Crashes != 1 || sv.Ops != rep.Ops {
			t.Fatalf("%s: crashes=%d ops=%d, want 1 crash and %d ops", scheme, sv.Crashes, sv.Ops, rep.Ops)
		}
		if sv.BlackoutCycles == 0 || sv.ResumeCycle != sv.CrashCycle+sv.BlackoutCycles {
			t.Fatalf("%s: blackout=%d crash=%d resume=%d inconsistent", scheme, sv.BlackoutCycles, sv.CrashCycle, sv.ResumeCycle)
		}
		if sv.TimeToFirstAck == 0 || sv.TimeToFirstAck < sv.BlackoutCycles {
			t.Fatalf("%s: time-to-first-ack %d should cover the blackout %d", scheme, sv.TimeToFirstAck, sv.BlackoutCycles)
		}
		if sv.Retries == 0 {
			t.Fatalf("%s: no retries — lost in-flight requests were not rescheduled", scheme)
		}
		if len(res.RecoveryStages) == 0 || res.RecoveryStages[len(res.RecoveryStages)-1] != "done" {
			t.Fatalf("%s: recovery stages %v did not end in done", scheme, res.RecoveryStages)
		}
	}
}

// TestServeResumedDeterministicAcrossHostParallelism pins the acceptance
// criterion: the same armed schedule produces bit-identical post-resume
// counters and media at host parallelism 1 and 4.
func TestServeResumedDeterministicAcrossHostParallelism(t *testing.T) {
	rep := smallServe("ffccd", 23)
	census, err := faultinject.RunServeScheduled(rep, faultinject.ServeTrialOptions{})
	if err != nil {
		t.Fatalf("census: %v", err)
	}
	armed := rep
	armed.Site = int64(census.Census.Total / 2)
	armed.Policy = faultinject.PolicySalt
	armed.Salt = 77

	old := faultinject.Parallelism()
	defer faultinject.SetParallelism(old)

	type pin struct {
		post, final uint64
		ops, ret    int
		rej, adm    int
		black, ttfa uint64
		mksp, sim   uint64
	}
	run := func(par int) pin {
		faultinject.SetParallelism(par)
		res, err := faultinject.RunServeScheduled(armed, faultinject.ServeTrialOptions{})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if res.Crash == nil {
			t.Fatalf("par=%d: crash did not fire", par)
		}
		sv := res.Serve
		return pin{res.PostCrashHash, res.FinalHash, sv.Ops, sv.Retries,
			sv.Rejects, sv.Admitted, sv.BlackoutCycles, sv.TimeToFirstAck,
			sv.Makespan, sv.SimCycles}
	}
	p1 := run(1)
	p4 := run(4)
	if p1 != p4 {
		t.Fatalf("resumed run differs across host parallelism:\n 1: %+v\n 4: %+v", p1, p4)
	}
}

// TestServeScheduledDoubleCrash injects a second power failure inside
// recovery for every scheme and checks double-recovery idempotence on the
// serving path: same final op count, clean checkers, deterministic media.
func TestServeScheduledDoubleCrash(t *testing.T) {
	for _, scheme := range faultinject.ServeSchemes {
		rep := smallServe(scheme, 31)
		census, err := faultinject.RunServeScheduled(rep, faultinject.ServeTrialOptions{})
		if err != nil {
			t.Fatalf("%s census: %v", scheme, err)
		}
		armed := rep
		armed.Site = int64(census.Census.Total / 2)
		first, err := faultinject.RunServeScheduled(armed, faultinject.ServeTrialOptions{})
		if err != nil {
			t.Fatalf("%s armed: %v", scheme, err)
		}
		if first.RecoveryCensus.Total == 0 {
			t.Fatalf("%s: recovery exposed no sites", scheme)
		}
		nested := armed
		nested.Nested = int64(first.RecoveryCensus.Total / 2)
		res, err := faultinject.RunServeScheduled(nested, faultinject.ServeTrialOptions{})
		if err != nil {
			t.Fatalf("%s nested: %v", scheme, err)
		}
		if res.NestedCrash == nil {
			t.Fatalf("%s nested: second crash did not fire", scheme)
		}
		if res.Serve.Ops != rep.Ops {
			t.Fatalf("%s nested: completed %d ops, want %d", scheme, res.Serve.Ops, rep.Ops)
		}
		// Determinism witness: the same nested schedule twice, bit-identical.
		res2, err := faultinject.RunServeScheduled(nested, faultinject.ServeTrialOptions{})
		if err != nil {
			t.Fatalf("%s nested replay: %v", scheme, err)
		}
		if res.FinalHash != res2.FinalHash || res.PostCrashHash != res2.PostCrashHash {
			t.Fatalf("%s nested: replay media mismatch", scheme)
		}
	}
}

// deleteAcked removes n present keys from the recovered store — a synthetic
// ack-loss bug (acknowledged writes gone after recovery). Two keys defeat the
// single-pending-op tolerance.
func deleteAcked(ctx *sim.Ctx, s ds.Store, keys, n int) int {
	removed := 0
	for k := 0; k < keys && removed < n; k++ {
		if ok, err := s.Delete(ctx, uint64(k)); err == nil && ok {
			removed++
		}
	}
	return removed
}

// TestServeAckLossCaught proves the durable-ack checker end to end: a planted
// loss of acknowledged writes turns the trial into a failure naming the
// check.
func TestServeAckLossCaught(t *testing.T) {
	rep := smallServe("none", 41)
	census, err := faultinject.RunServeScheduled(rep, faultinject.ServeTrialOptions{})
	if err != nil {
		t.Fatalf("census: %v", err)
	}
	armed := rep
	armed.Site = int64(census.Census.Total / 2)
	opts := faultinject.ServeTrialOptions{
		AfterRecovery: func(ctx *sim.Ctx, p *pmop.Pool, s ds.Store) {
			if deleteAcked(ctx, s, rep.Keys, 2) != 2 {
				t.Fatal("fixture: could not remove two acked keys")
			}
		},
	}
	_, err = faultinject.RunServeScheduled(armed, opts)
	if err == nil {
		t.Fatal("planted ack loss not caught")
	}
	if !strings.Contains(err.Error(), "durable-ack") {
		t.Fatalf("wrong verdict for ack loss: %v", err)
	}
}

// TestServeCampaignWatchdog proves hung serving trials are reported, not
// waited for: AfterRecovery blocks forever, the watchdog converts it into a
// Hung failure.
func TestServeCampaignWatchdog(t *testing.T) {
	block := make(chan struct{}) // never closed; trial goroutine abandoned
	co := faultinject.ServeCampaignOptions{
		Seed: 5, Clients: 4, Ops: 600, Keys: 256,
		MaxSites: 1,
		Timeout:  200 * time.Millisecond,
		Trial: faultinject.ServeTrialOptions{
			AfterRecovery: func(*sim.Ctx, *pmop.Pool, ds.Store) { <-block },
		},
	}
	out := faultinject.ExploreServeScheme("none", co)
	if len(out.Failures) == 0 {
		t.Fatal("hung trial not reported")
	}
	hung := false
	for _, f := range out.Failures {
		if f.Hung {
			hung = true
		}
	}
	if !hung {
		t.Fatalf("failures carry no watchdog expiry: %+v", out.Failures)
	}
}

// TestServeCampaignStratified runs a small stratified campaign for one scheme
// and checks scheduling, class coverage, and the coverage summary.
func TestServeCampaignStratified(t *testing.T) {
	co := faultinject.ServeCampaignOptions{
		Seed: 9, Clients: 4, Ops: 1200, Keys: 400,
		MaxSites: 6, Nested: true, MaxNested: 2,
	}
	out := faultinject.ExploreServeScheme("ffccd", co)
	if len(out.Failures) != 0 {
		t.Fatalf("campaign failures:\n%v", out.Failures)
	}
	if out.SitesTotal == 0 || out.Scheduled < 6 {
		t.Fatalf("sites=%d scheduled=%d, want a populated stratified sweep", out.SitesTotal, out.Scheduled)
	}
	if out.Passed != out.Scheduled {
		t.Fatalf("passed=%d scheduled=%d", out.Passed, out.Scheduled)
	}
	covered := 0
	for _, n := range out.Covered {
		covered += n
	}
	if covered == 0 || out.CoverageString() == "none" {
		t.Fatalf("no class coverage recorded: %q", out.CoverageString())
	}
}

// TestServeShrinkStillFails checks the shrinker contract on the serving path:
// the minimized schedule still fails and is no more expensive.
func TestServeShrinkStillFails(t *testing.T) {
	rep := smallServe("none", 41)
	census, err := faultinject.RunServeScheduled(rep, faultinject.ServeTrialOptions{})
	if err != nil {
		t.Fatalf("census: %v", err)
	}
	armed := rep
	armed.Site = int64(census.Census.Total / 2)
	opts := faultinject.ServeTrialOptions{
		AfterRecovery: func(ctx *sim.Ctx, p *pmop.Pool, s ds.Store) {
			deleteAcked(ctx, s, rep.Keys, 2)
		},
	}
	if _, err := faultinject.RunServeScheduled(armed, opts); err == nil {
		t.Fatal("fixture schedule does not fail")
	}
	min, ok := faultinject.ShrinkServeRepro(armed, opts, 0, 12)
	if !ok {
		t.Fatal("shrink made no progress on a failing schedule")
	}
	if _, err := faultinject.RunServeScheduled(min, opts); err == nil {
		t.Fatalf("shrunk schedule passes: %s", min.Command())
	}
}
