package faultinject_test

// Finer-grained crash scheduling than the randomized campaign: crash at
// every boundary of the compaction pipeline for one representative store,
// per scheme — the deterministic complement to TestCampaignSample.

import (
	"fmt"
	"testing"

	"ffccd/internal/core"
	"ffccd/internal/faultinject"
)

func TestCrashPointSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// The Trial driver's crash point is seeded; sweep seeds chosen to land
	// at distinct steps-fractions (0, 1/4, 1/2, 3/4, all moved) by direct
	// enumeration of the setting space at higher density than the sample
	// campaign.
	for _, scheme := range []core.Scheme{core.SchemeEspresso, core.SchemeSFCCD, core.SchemeFFCCD} {
		for i := 0; i < 12; i++ {
			s := faultinject.Setting{Store: "LL", Threads: 1, Scheme: scheme}
			t.Run(fmt.Sprintf("%s/seed%d", scheme, i), func(t *testing.T) {
				if err := faultinject.Trial(s, int64(2000+i*37)); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestEspressoInCampaign(t *testing.T) {
	// The paper validates SFCCD and FFCCD (Espresso is the prior art), but
	// our Espresso implementation must be crash consistent too.
	for _, store := range []string{"AVL", "BT"} {
		s := faultinject.Setting{Store: store, Threads: 1, Scheme: core.SchemeEspresso}
		out := faultinject.RunSetting(s, 4, 31)
		if out.Passed != out.Trials {
			t.Fatalf("%s: %d/%d; %v", s, out.Passed, out.Trials, out.Failures[0])
		}
	}
}
