package faultinject

// Campaigns over serving crash schedules. Per scheme: a census pass under
// open-loop traffic counts the dispatch phase's crash sites, then the site
// space is swept (exhaustively or stratified, same selection as batch
// campaigns) with one online crash-recovery-resume trial per selected site
// and a rotating in-flight-line policy. Nested schedules add a second crash
// inside the recovery. Every failure carries the one-line ServeRepro command
// that replays it bit-identically, minimized by greedy shrinking.

import (
	"fmt"
	"strings"
	"time"

	"ffccd/internal/pmem"
)

// ServeCampaignOptions tunes a serving crash campaign. The zero value is an
// exhaustive single-crash sweep with default volumes and no watchdog.
type ServeCampaignOptions struct {
	// Seed is the base workload seed (schedules inherit it verbatim).
	Seed int64
	// Clients/Ops/Keys override the serving volumes (0 = defaults).
	Clients, Ops, Keys int
	// MaxSites bounds the scheduled sites per scheme; 0 sweeps exhaustively.
	// For a sharded campaign the budget is split evenly across shards
	// (minimum one site per shard).
	MaxSites int
	// Shards runs each trial as a sharded deployment (0/1 = unsharded). One
	// census pass yields every shard's site census; each shard's site space is
	// then swept with that shard as the crash target while its siblings keep
	// serving.
	Shards int
	// Nested adds crash-during-recovery schedules; MaxNested caps them
	// (0 = same as the number of first-level sites selected).
	Nested    bool
	MaxNested int
	// Timeout is the per-trial watchdog; expiry is reported as a failure
	// (the trial goroutine is abandoned). 0 disables.
	Timeout time.Duration
	// Shrink minimizes each failure's ServeRepro before reporting.
	Shrink bool
	// Trial carries the per-trial hooks.
	Trial ServeTrialOptions
}

// ServeFailure is one failing serving schedule with its replay artifact.
type ServeFailure struct {
	Repro ServeRepro
	Err   string
	// Hung marks a watchdog expiry (the trial never returned).
	Hung bool
	// Shrunk is the minimized schedule (set when ServeCampaignOptions.Shrink).
	Shrunk *ServeRepro
}

func (f ServeFailure) String() string {
	kind := "failed"
	if f.Hung {
		kind = "hung"
	}
	s := fmt.Sprintf("%s: %s\n  repro: %s", kind, f.Err, f.Repro.Command())
	if f.Shrunk != nil {
		s += fmt.Sprintf("\n  shrunk: %s", f.Shrunk.Command())
	}
	return s
}

// ServeCampaignOutcome summarises one scheme's serving campaign.
type ServeCampaignOutcome struct {
	Scheme string
	// Shards is the deployment width the campaign ran at (1 = unsharded).
	Shards int
	// SitesTotal is the census site count (summed over shards when sharded);
	// Scheduled the trials actually run (first-level + nested, census
	// excluded).
	SitesTotal uint64
	Scheduled  int
	Passed     int
	// Covered counts, per site class, the first-level crashes that actually
	// fired in that class — the campaign's coverage summary. ShardCovered
	// splits the same counts by crash-target shard (nil when unsharded).
	Covered      [pmem.NumSiteClasses]int
	ShardCovered [][pmem.NumSiteClasses]int
	Failures     []ServeFailure
}

// CoverageString renders the sites-per-class coverage line a campaign summary
// prints; sharded campaigns prefix each shard's counts with its index.
func (o ServeCampaignOutcome) CoverageString() string {
	classes := func(cov [pmem.NumSiteClasses]int) string {
		var parts []string
		for c := pmem.SiteClass(0); c < pmem.NumSiteClasses; c++ {
			if cov[c] > 0 {
				parts = append(parts, fmt.Sprintf("%s:%d", c, cov[c]))
			}
		}
		if len(parts) == 0 {
			return "none"
		}
		return strings.Join(parts, " ")
	}
	if len(o.ShardCovered) == 0 {
		return classes(o.Covered)
	}
	var parts []string
	for s, cov := range o.ShardCovered {
		parts = append(parts, fmt.Sprintf("s%d[%s]", s, classes(cov)))
	}
	return strings.Join(parts, " ")
}

// runServeWatched executes one serving schedule under the watchdog. On expiry
// the trial goroutine is abandoned (it holds only trial-local simulated
// state) and the expiry is the verdict.
func runServeWatched(rep ServeRepro, topts ServeTrialOptions, timeout time.Duration) (ServeScheduleResult, error, bool) {
	if timeout <= 0 {
		res, err := RunServeScheduled(rep, topts)
		return res, err, false
	}
	type outcome struct {
		res ServeScheduleResult
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := RunServeScheduled(rep, topts)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err, false
	case <-time.After(timeout):
		return ServeScheduleResult{}, fmt.Errorf("watchdog: serving trial exceeded %s", timeout), true
	}
}

// ExploreServeScheme runs the serving crash campaign for one scheme.
func ExploreServeScheme(scheme string, co ServeCampaignOptions) ServeCampaignOutcome {
	nsh := co.Shards
	if nsh < 1 {
		nsh = 1
	}
	out := ServeCampaignOutcome{Scheme: scheme, Shards: nsh}
	base := NewServeRepro(scheme, co.Seed)
	base.Shards = nsh
	if co.Clients > 0 {
		base.Clients = co.Clients
	}
	if co.Ops > 0 {
		base.Ops = co.Ops
	}
	if co.Keys > 0 {
		base.Keys = co.Keys
	}

	// Census pass: count the sites (and verify the no-crash run end to end).
	// A sharded pass census-arms every shard, so one run yields each shard's
	// own site space.
	census, err, hung := runServeWatched(base, co.Trial, co.Timeout)
	if err != nil {
		out.Failures = append(out.Failures, ServeFailure{Repro: base, Err: err.Error(), Hung: hung})
		return out
	}
	shardCensus := []pmem.SiteCensus{census.Census}
	if nsh > 1 {
		shardCensus = census.ShardCensus
		out.ShardCovered = make([][pmem.NumSiteClasses]int, nsh)
	}
	for _, sc := range shardCensus {
		out.SitesTotal += sc.Total
	}
	if out.SitesTotal == 0 {
		return out
	}

	// First-level schedules: one crash per selected site, policy rotating per
	// site, salt derived from the site index. A sharded campaign sweeps each
	// shard's site space in shard order, the per-scheme budget split evenly.
	maxPerShard := co.MaxSites
	if maxPerShard > 0 && nsh > 1 {
		maxPerShard /= nsh
		if maxPerShard < 1 {
			maxPerShard = 1
		}
	}
	var reps []ServeRepro
	for sh, sc := range shardCensus {
		for _, site := range selectSites(sc, maxPerShard) {
			r := base
			r.Shard = sh
			r.Site = site
			r.Policy = Policies[len(reps)%len(Policies)]
			r.Salt = uint64(site)*0x9E3779B97F4A7C15 + uint64(co.Seed) + uint64(sh)
			reps = append(reps, r)
		}
	}
	type jobOut struct {
		res  ServeScheduleResult
		err  error
		hung bool
	}
	firsts := make([]jobOut, len(reps))
	parallelFor(len(reps), func(i int) {
		res, err, hung := runServeWatched(reps[i], co.Trial, co.Timeout)
		firsts[i] = jobOut{res, err, hung}
	})

	// Nested schedules: crash-during-recovery at the first recovery-step site
	// and the middle of the recovery's site space, for up to MaxNested
	// crashing first-level sites (evenly spread over the selection).
	var nreps []ServeRepro
	if co.Nested {
		budget := co.MaxNested
		if budget <= 0 {
			budget = len(reps)
		}
		var crashed []int
		for i, f := range firsts {
			if f.err == nil && !f.hung && f.res.Crash != nil && f.res.RecoveryCensus.Total > 0 {
				crashed = append(crashed, i)
			}
		}
		stride := 1
		if len(crashed) > budget {
			stride = (len(crashed) + budget - 1) / budget
		}
		for k := 0; k < len(crashed) && len(nreps) < budget; k += stride {
			i := crashed[k]
			rc := firsts[i].res.RecoveryCensus
			nested := map[int64]bool{int64(rc.Total) / 2: true}
			if fi := rc.FirstIndex[pmem.SiteRecoveryStep]; fi >= 0 {
				nested[fi] = true
			}
			var ns []int64
			for s := range nested {
				ns = append(ns, s)
			}
			if len(ns) == 2 && ns[0] > ns[1] {
				ns[0], ns[1] = ns[1], ns[0]
			}
			for _, s := range ns {
				if len(nreps) >= budget {
					break
				}
				r := reps[i]
				r.Nested = s
				nreps = append(nreps, r)
			}
		}
	}
	nesteds := make([]jobOut, len(nreps))
	parallelFor(len(nreps), func(i int) {
		res, err, hung := runServeWatched(nreps[i], co.Trial, co.Timeout)
		nesteds[i] = jobOut{res, err, hung}
	})

	// Aggregate in schedule order (deterministic under any worker count).
	collect := func(reps []ServeRepro, outs []jobOut, firstLevel bool) {
		for i, o := range outs {
			out.Scheduled++
			if o.err == nil {
				out.Passed++
				if firstLevel && o.res.Crash != nil {
					out.Covered[o.res.Crash.Class]++
					if out.ShardCovered != nil {
						out.ShardCovered[reps[i].Shard][o.res.Crash.Class]++
					}
				}
				continue
			}
			f := ServeFailure{Repro: reps[i], Err: o.err.Error(), Hung: o.hung}
			if co.Shrink {
				if min, ok := ShrinkServeRepro(reps[i], co.Trial, co.Timeout, ShrinkBudget); ok {
					f.Shrunk = &min
				}
			}
			out.Failures = append(out.Failures, f)
		}
	}
	collect(reps, firsts, true)
	collect(nreps, nesteds, false)
	return out
}

// ExploreServing runs ExploreServeScheme over each scheme in order
// (nil = ServeSchemes).
func ExploreServing(schemes []string, co ServeCampaignOptions) []ServeCampaignOutcome {
	if len(schemes) == 0 {
		schemes = ServeSchemes
	}
	outs := make([]ServeCampaignOutcome, len(schemes))
	for i, s := range schemes {
		outs[i] = ExploreServeScheme(s, co)
	}
	return outs
}

// shrinkServeCost orders serving schedules by how much work replaying them
// takes. Extra shards multiply the machine count, so they weigh heavily.
func shrinkServeCost(r ServeRepro) int64 {
	c := int64(r.Ops)*8 + int64(r.Keys)*2 + int64(r.Clients) + r.Site
	if r.Nested >= 0 {
		c += r.Nested
	}
	if r.Shards > 1 {
		c += int64(r.Shards-1) * int64(r.Ops)
	}
	return c
}

// ShrinkServeRepro minimizes a failing serving schedule, spending at most
// budget extra trials. Same greedy contract as ShrinkRepro: deterministic
// trials mean one run per candidate, and a candidate failing with a different
// message still reproduces a bug at a smaller schedule.
func ShrinkServeRepro(rep ServeRepro, topts ServeTrialOptions, timeout time.Duration, budget int) (ServeRepro, bool) {
	if budget <= 0 {
		budget = ShrinkBudget
	}
	fails := func(r ServeRepro) bool {
		if budget <= 0 {
			return false
		}
		budget--
		_, err, hung := runServeWatched(r, topts, timeout)
		return err != nil || hung
	}

	best := rep
	improved := false
	for budget > 0 {
		var cands []ServeRepro
		add := func(mut func(*ServeRepro)) {
			c := best
			mut(&c)
			if c.Ops < 16 {
				c.Ops = 16
			}
			if c.Keys < 64 {
				c.Keys = 64
			}
			if c.Clients < 1 {
				c.Clients = 1
			}
			if c.Shards < 1 {
				c.Shards = 1
			}
			if c.Shard >= c.Shards {
				c.Shard = c.Shards - 1
			}
			if c != best && shrinkServeCost(c) < shrinkServeCost(best) {
				cands = append(cands, c)
			}
		}
		add(func(r *ServeRepro) { r.Shards = 1; r.Shard = 0 })
		add(func(r *ServeRepro) { r.Shards = r.Shards / 2 })
		add(func(r *ServeRepro) { r.Nested = -1 })
		add(func(r *ServeRepro) { r.Nested = r.Nested / 2 })
		add(func(r *ServeRepro) { r.Ops = r.Ops / 2 })
		add(func(r *ServeRepro) { r.Keys = r.Keys / 2 })
		add(func(r *ServeRepro) { r.Clients = r.Clients / 2 })
		add(func(r *ServeRepro) { r.Site = r.Site / 2 })
		add(func(r *ServeRepro) { r.Ops = r.Ops - 1 })
		add(func(r *ServeRepro) { r.Site = r.Site - 1 })

		progressed := false
		for _, c := range cands {
			if budget <= 0 {
				break
			}
			if fails(c) {
				best = c
				improved = true
				progressed = true
				break // restart the move list from the new best
			}
		}
		if !progressed {
			break
		}
	}
	return best, improved
}
