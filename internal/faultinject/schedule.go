package faultinject

// Deterministic crash schedules. A scheduled trial is single-threaded end to
// end — per-thread churn runs sequentially in thread order — so the sequence
// of crash-site passages (pmem.SiteClass) is a pure function of the Repro.
// The same Repro therefore produces the same site census, the same crash,
// the same post-crash media image, and the same checker verdict on every
// run: a failing trial's Repro line IS the bug report.
//
// Site = -1 runs the trial to completion, counting sites (the census pass a
// campaign uses to enumerate the schedule space). Site >= 0 fires a power
// failure at exactly that site; Nested >= 0 fires a second power failure at
// that site *of the recovery that follows*, after which a final unscheduled
// recovery must succeed — double-recovery idempotence.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"

	"ffccd/internal/checker"
	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/obsv"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// Crash policies a schedule can name.
const (
	PolicyDrop = "drop" // no in-flight line survives (most adversarial)
	PolicyKeep = "keep" // every in-flight line survives
	PolicySalt = "salt" // per-line fate from a salted address hash
)

// Policies lists the schedulable crash policies.
var Policies = []string{PolicyDrop, PolicyKeep, PolicySalt}

// PolicyFor resolves a policy name (+ salt for PolicySalt) to the device
// crash policy.
func PolicyFor(name string, salt uint64) (pmem.CrashPolicy, error) {
	switch name {
	case PolicyDrop, "":
		return pmem.DropAllInflight, nil
	case PolicyKeep:
		return pmem.KeepAllInflight, nil
	case PolicySalt:
		return func(line uint64) bool {
			return (line*0x9E3779B97F4A7C15+salt)&1 == 0
		}, nil
	}
	return nil, fmt.Errorf("faultinject: unknown crash policy %q", name)
}

// Default churn volumes for scheduled trials (per thread). Ops builds the
// fragmented store; TailOps interleaves with compaction through the read
// barrier. A Repro with zero Ops gets the defaults; TailOps is kept as-is
// (0 is a meaningful shrink).
const (
	DefaultOps     = 500
	DefaultTailOps = 40
)

// Repro is one deterministic crash schedule — the replayable artifact a
// failing campaign trial emits. All fields marshal explicitly (no omitempty)
// so a shrunk zero survives the JSON round trip.
type Repro struct {
	Setting string `json:"setting"`
	Seed    int64  `json:"seed"`
	Ops     int    `json:"ops"`      // build-churn ops per thread
	TailOps int    `json:"tail_ops"` // compaction-concurrent ops per thread
	Site    int64  `json:"site"`     // crash-site index; -1 = census (no crash)
	Nested  int64  `json:"nested"`   // recovery crash-site index; -1 = none
	Policy  string `json:"policy"`
	Salt    uint64 `json:"salt"`
}

// NewRepro returns a census-pass Repro for one setting with default churn.
func NewRepro(setting Setting, seed int64) Repro {
	return Repro{
		Setting: setting.String(), Seed: seed,
		Ops: DefaultOps, TailOps: DefaultTailOps,
		Site: -1, Nested: -1, Policy: PolicyDrop,
	}
}

// MarshalLine renders the Repro as its canonical one-line JSON.
func (r Repro) MarshalLine() string {
	b, err := json.Marshal(r)
	if err != nil {
		panic(err) // plain struct of scalars; cannot happen
	}
	return string(b)
}

// ParseRepro parses MarshalLine output (unknown fields rejected so typos in
// hand-edited repro lines fail loudly).
func ParseRepro(line string) (Repro, error) {
	r := Repro{Site: -1, Nested: -1}
	dec := json.NewDecoder(bytes.NewReader([]byte(line)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return r, fmt.Errorf("faultinject: bad repro line: %w", err)
	}
	if _, err := ParseSetting(r.Setting); err != nil {
		return r, err
	}
	if _, err := PolicyFor(r.Policy, r.Salt); err != nil {
		return r, err
	}
	return r, nil
}

// Command renders the one-line shell command that replays this schedule.
func (r Repro) Command() string {
	return fmt.Sprintf("ffccd-crashtest -repro '%s'", r.MarshalLine())
}

// ScheduleResult reports what a scheduled trial did.
type ScheduleResult struct {
	// Began reports whether a compaction epoch opened (a store can come out
	// of the build churn insufficiently fragmented; such a trial passes
	// vacuously and a campaign skips it).
	Began bool
	// Census counts the sites of the main run — complete when no crash
	// fired, up to the crash otherwise.
	Census pmem.SiteCensus
	// Crash is the injected power failure (nil for a completed census run).
	Crash *pmem.CrashAtSite
	// RecoveryCensus counts the sites of the first post-crash recovery.
	RecoveryCensus pmem.SiteCensus
	// NestedCrash is the power failure injected inside recovery, if any.
	NestedCrash *pmem.CrashAtSite
	// PostCrashHash digests the media image right after the (first) crash;
	// FinalHash digests it after recovery and checking. Equal hashes across
	// runs of the same Repro are the bit-identity witness.
	PostCrashHash, FinalHash uint64
}

// pendingOp is the churn operation in flight at the moment of a scheduled
// crash. Its store transaction is atomic, so post-crash state reflects the
// op either fully or not at all; the checker accepts both.
type pendingOp struct {
	key uint64
	val []byte // nil = delete
}

// catchCrash runs f, converting a scheduled-crash panic into a return value.
// Any other panic propagates.
func catchCrash(f func()) (crash *pmem.CrashAtSite) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := r.(*pmem.CrashAtSite); ok {
				crash = c
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

// RunScheduled executes one deterministic scheduled trial. The returned
// error is the trial verdict (nil = consistent); the ScheduleResult is
// populated as far as the trial got even on failure.
func RunScheduled(rep Repro, opts TrialOptions) (ScheduleResult, error) {
	var res ScheduleResult
	setting, err := ParseSetting(rep.Setting)
	if err != nil {
		return res, err
	}
	if rep.Ops <= 0 {
		rep.Ops = DefaultOps
	}
	if rep.TailOps < 0 {
		rep.TailOps = 0
	}
	policy, err := PolicyFor(rep.Policy, rep.Salt)
	if err != nil {
		return res, err
	}

	cfg := sim.DefaultConfig()
	cfg.CacheBytes = 256 * 1024
	rt := pmop.NewRuntime(&cfg, 128<<20)
	reg := pmop.NewRegistry()
	ds.RegisterTypes(reg)
	p, err := rt.Create("fi", 64<<20, 12, reg)
	if err != nil {
		return res, err
	}
	dev := p.Device()
	ctx := sim.NewCtx(&cfg)
	s, err := buildStore(ctx, p, setting.Store)
	if err != nil {
		return res, err
	}

	// Sequential churn in thread order — per-thread RNG streams and disjoint
	// key ranges like the randomized Trial, minus the host-scheduling
	// nondeterminism. The build phase fragments deliberately: insert Ops keys
	// over a wide span, then delete three quarters of them in insertion
	// order. That leaves many quarter-full frames, so BeginCycle's net-gain
	// planner reliably opens an epoch (a dense store compacts to nothing and
	// the whole schedule space would be vacuous).
	models := make([]map[uint64][]byte, setting.Threads)
	for i := range models {
		models[i] = make(map[uint64][]byte)
	}
	var pending *pendingOp
	keyCap := keyCapFor(setting.Store)
	span := uint64(4 * rep.Ops)
	build := func(c *sim.Ctx, tid, ops int, r *rand.Rand) error {
		local := models[tid]
		base := uint64(tid) << 20
		keys := make([]uint64, 0, ops)
		for i := 0; i < ops; i++ {
			key := base + r.Uint64()%span
			if key >= keyCap {
				key = key % keyCap
			}
			v := make([]byte, 16+r.Intn(113))
			for j := range v {
				v[j] = byte(key) ^ byte(j) ^ byte(i)
			}
			if err := s.Insert(c, key, v); err != nil {
				return err
			}
			local[key] = v
			keys = append(keys, key)
		}
		for i, key := range keys {
			if i%4 == 0 {
				continue // survivor — keeps its frame sparsely occupied
			}
			if _, err := s.Delete(c, key); err != nil {
				return err
			}
			delete(local, key)
		}
		return nil
	}
	churn := func(c *sim.Ctx, tid, ops int, r *rand.Rand) error {
		local := models[tid]
		base := uint64(tid) << 20
		for i := 0; i < ops; i++ {
			key := base + r.Uint64()%span
			if key >= keyCap {
				key = key % keyCap
			}
			switch r.Intn(10) {
			case 0, 1, 2, 3, 4, 5:
				v := make([]byte, 16+r.Intn(113))
				for j := range v {
					v[j] = byte(key) ^ byte(j) ^ byte(i)
				}
				pending = &pendingOp{key: key, val: v}
				if err := s.Insert(c, key, v); err != nil {
					return err
				}
				local[key] = v
				pending = nil
			case 6, 7:
				pending = &pendingOp{key: key}
				if _, err := s.Delete(c, key); err != nil {
					return err
				}
				delete(local, key)
				pending = nil
			default:
				s.Get(c, key)
			}
		}
		return nil
	}
	for t := 0; t < setting.Threads; t++ {
		if err := build(ctx, t, rep.Ops, rand.New(rand.NewSource(rep.Seed+int64(t)+1))); err != nil {
			return res, err
		}
	}
	dev.FlushAll(ctx)

	var obs *obsv.Obs
	if opts.Obs != nil {
		if obs = opts.Obs(setting, rep.Seed); obs != nil {
			obs.Tracer.Name(ctx, "driver")
			dev.SetObs(obs)
		}
	}
	opt := core.DefaultOptions()
	opt.Scheme = setting.Scheme
	opt.TriggerRatio = 1.01
	opt.TargetRatio = 1.05
	opt.Obs = obs
	e := core.NewEngine(p, opt)

	// Main run, armed. Compaction steps interleave with tail churn so the
	// read barrier and mid-epoch application transactions are inside the
	// schedulable window, then the epoch terminates.
	tailRngs := make([]*rand.Rand, setting.Threads)
	for t := range tailRngs {
		tailRngs[t] = rand.New(rand.NewSource(rep.Seed ^ 0x5a5a + int64(t)))
	}
	tailLeft := make([]int, setting.Threads)
	for t := range tailLeft {
		tailLeft[t] = rep.TailOps
	}
	var churnErr error
	dev.ArmSites(rep.Site)
	res.Crash = catchCrash(func() {
		if !e.BeginCycle(ctx) {
			return
		}
		res.Began = true
		for {
			moved := e.StepCompaction(ctx, 7)
			tailDone := true
			for t := 0; t < setting.Threads; t++ {
				n := tailLeft[t]
				if n > 5 {
					n = 5
				}
				if n > 0 {
					tailLeft[t] -= n
					if churnErr = churn(ctx, t, n, tailRngs[t]); churnErr != nil {
						return
					}
				}
				if tailLeft[t] > 0 {
					tailDone = false
				}
			}
			if moved == 0 && tailDone {
				break
			}
		}
		e.FinishCycle(ctx)
	})
	res.Census = dev.DisarmSites()
	if churnErr != nil {
		return res, churnErr
	}
	if res.Crash != nil && !res.Began {
		res.Began = true // crashed inside BeginCycle: the epoch was opening
	}

	model := make(map[uint64][]byte)
	for _, m := range models {
		for k, v := range m {
			model[k] = v
		}
	}

	if res.Crash == nil {
		// Completed (census pass, or the armed site was past the end).
		// Check consistency of the completed machine too — free coverage.
		e.Close()
		dev.FlushAll(ctx)
		res.FinalHash = dev.HashMedia()
		if err := checker.CheckStore(ctx, s, model); err != nil {
			return res, fmt.Errorf("census check 1 (%s): %w", setting, err)
		}
		if _, err := checker.CheckGraph(ctx, p); err != nil {
			return res, fmt.Errorf("census check 2 (%s): %w", setting, err)
		}
		return res, nil
	}

	// Power failure at the scheduled site. The panic unwound the driver; the
	// pre-crash engine, pool and contexts are abandoned wholesale (their
	// volatile state is what the crash destroys).
	dev.SetCrashPolicy(policy)
	dev.Crash()
	res.PostCrashHash = dev.HashMedia()

	// First recovery, armed for the nested schedule.
	rt2, err := pmop.Attach(&cfg, rt.Device())
	if err != nil {
		return res, err
	}
	reg2 := pmop.NewRegistry()
	ds.RegisterTypes(reg2)
	p2, err := rt2.Open("fi", reg2)
	if err != nil {
		return res, err
	}
	var e2 *core.Engine
	var recErr error
	dev.ArmSites(rep.Nested)
	res.NestedCrash = catchCrash(func() {
		e2, recErr = core.Recover(ctx, p2, opt)
	})
	res.RecoveryCensus = dev.DisarmSites()
	if recErr != nil {
		return res, fmt.Errorf("recovery failed (%s): %w", setting, recErr)
	}

	if res.NestedCrash != nil {
		// Second power failure, inside recovery. Crash again and run the
		// final, unscheduled recovery — double-recovery idempotence.
		dev.SetCrashPolicy(policy)
		dev.Crash()
		rt3, err := pmop.Attach(&cfg, rt.Device())
		if err != nil {
			return res, err
		}
		reg3 := pmop.NewRegistry()
		ds.RegisterTypes(reg3)
		p3, err := rt3.Open("fi", reg3)
		if err != nil {
			return res, err
		}
		e3, err := core.Recover(ctx, p3, opt)
		if err != nil {
			return res, fmt.Errorf("second recovery failed (%s): %w", setting, err)
		}
		p2, e2 = p3, e3
	}
	defer e2.Close()

	if opts.AfterRecovery != nil {
		opts.AfterRecovery(ctx, p2)
	}

	// Two-step checker, tolerant of the one churn op whose transaction was
	// in flight at the crash: tx atomicity means post-crash state reflects
	// it fully or not at all, so either model must verify.
	s2, err := buildStore(ctx, p2, setting.Store)
	if err != nil {
		return res, err
	}
	if err := checker.CheckStore(ctx, s2, model); err != nil {
		ok := false
		if pending != nil {
			alt := make(map[uint64][]byte, len(model))
			for k, v := range model {
				alt[k] = v
			}
			if pending.val != nil {
				alt[pending.key] = pending.val
			} else {
				delete(alt, pending.key)
			}
			ok = checker.CheckStore(ctx, s2, alt) == nil
		}
		if !ok {
			return res, fmt.Errorf("checker step 1 (%s): %w", setting, err)
		}
	}
	if _, err := checker.CheckGraph(ctx, p2); err != nil {
		return res, fmt.Errorf("checker step 2 (%s): %w", setting, err)
	}
	dev.FlushAll(ctx)
	res.FinalHash = dev.HashMedia()
	return res, nil
}
