package faultinject_test

// Tests for sharded serving crash trials: the per-shard census pass, the
// one-shard-blackout crash semantics (siblings keep serving), the sharded
// repro round trip, and bit-identity of a sharded trial across host
// parallelism.

import (
	"testing"

	"ffccd/internal/faultinject"
)

// shardedServe returns fast sharded trial volumes for one scheme.
func shardedServe(scheme string, seed int64, shards, target int) faultinject.ServeRepro {
	rep := smallServe(scheme, seed)
	rep.Shards, rep.Shard = shards, target
	return rep
}

func TestServeReproShardRoundTrip(t *testing.T) {
	rep := shardedServe("ffccd", 7, 4, 2)
	rep.Site = 55
	got, err := faultinject.ParseServeRepro(rep.MarshalLine())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got != rep {
		t.Fatalf("round trip: got %+v want %+v", got, rep)
	}
	// Pre-sharding lines parse as a one-shard deployment.
	legacy, err := faultinject.ParseServeRepro(`{"scheme":"ffccd","clients":4,"ops":100,"keys":64,"seed":1,"site":-1,"nested":-1,"policy":"drop","salt":0}`)
	if err != nil {
		t.Fatalf("legacy line: %v", err)
	}
	if legacy.Shards != 1 || legacy.Shard != 0 {
		t.Fatalf("legacy line normalized to shards=%d shard=%d", legacy.Shards, legacy.Shard)
	}
	if _, err := faultinject.ParseServeRepro(`{"scheme":"ffccd","shards":2,"shard":2}`); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// TestServeShardedCensusPerShard checks a sharded census pass yields every
// shard's own site space in one run.
func TestServeShardedCensusPerShard(t *testing.T) {
	rep := shardedServe("ffccd", 11, 2, 0)
	res, err := faultinject.RunServeScheduled(rep, faultinject.ServeTrialOptions{})
	if err != nil {
		t.Fatalf("census: %v", err)
	}
	if len(res.ShardCensus) != 2 {
		t.Fatalf("ShardCensus len %d, want 2", len(res.ShardCensus))
	}
	for s, sc := range res.ShardCensus {
		if sc.Total == 0 {
			t.Errorf("shard %d census found no sites", s)
		}
	}
	if res.Census.Total != res.ShardCensus[rep.Shard].Total {
		t.Errorf("Census (target shard) %d != ShardCensus[%d] %d",
			res.Census.Total, rep.Shard, res.ShardCensus[rep.Shard].Total)
	}
	if len(res.ShardHashes) != 2 || res.ShardHashes[0] == res.ShardHashes[1] {
		t.Errorf("per-shard hashes %v should be present and distinct", res.ShardHashes)
	}
	if len(res.PerShard) != 2 {
		t.Fatalf("PerShard len %d, want 2", len(res.PerShard))
	}
	if got := res.PerShard[0].Ops + res.PerShard[1].Ops; got != rep.Ops {
		t.Errorf("per-shard ops sum %d != deployment budget %d", got, rep.Ops)
	}
}

// TestServeShardedCrashSiblingsKeepServing is the one-shard-blackout pin:
// the armed crash fires only on the target shard, the sibling never crashes,
// and the merged run still completes the whole deployment budget.
func TestServeShardedCrashSiblingsKeepServing(t *testing.T) {
	base := shardedServe("ffccd", 11, 2, 1)
	census, err := faultinject.RunServeScheduled(base, faultinject.ServeTrialOptions{})
	if err != nil {
		t.Fatalf("census: %v", err)
	}
	armed := base
	armed.Site = int64(census.ShardCensus[1].Total / 2)
	res, err := faultinject.RunServeScheduled(armed, faultinject.ServeTrialOptions{})
	if err != nil {
		t.Fatalf("armed: %v", err)
	}
	if res.Crash == nil {
		t.Fatal("armed crash did not fire")
	}
	if got := res.PerShard[1].Crashes; got != 1 {
		t.Errorf("target shard crashes = %d, want 1", got)
	}
	if got := res.PerShard[0].Crashes; got != 0 {
		t.Errorf("sibling shard crashed %d times; the blackout must stay shard-local", got)
	}
	if res.PerShard[0].BlackoutCycles != 0 {
		t.Errorf("sibling blackout %d cycles, want 0", res.PerShard[0].BlackoutCycles)
	}
	sv := res.Serve
	if sv.Crashes != 1 || sv.Ops != base.Ops {
		t.Errorf("merged crashes=%d ops=%d, want 1 crash and the full %d ops", sv.Crashes, sv.Ops, base.Ops)
	}
	if sv.BlackoutCycles == 0 || sv.TimeToFirstAck == 0 {
		t.Errorf("merged availability fields empty: blackout=%d ttfa=%d", sv.BlackoutCycles, sv.TimeToFirstAck)
	}
}

// TestServeShardedDeterministicAcrossHostParallelism pins the sharded trial's
// bit-identity witness: same armed sharded schedule, same folded media hash
// and merged counters at host parallelism 1 and 4.
func TestServeShardedDeterministicAcrossHostParallelism(t *testing.T) {
	base := shardedServe("stw", 23, 2, 0)
	census, err := faultinject.RunServeScheduled(base, faultinject.ServeTrialOptions{})
	if err != nil {
		t.Fatalf("census: %v", err)
	}
	armed := base
	armed.Site = int64(census.ShardCensus[0].Total / 2)

	old := faultinject.Parallelism()
	defer faultinject.SetParallelism(old)

	type pin struct {
		final, h0, h1 uint64
		ops, retries  int
		sim           uint64
	}
	run := func(par int) pin {
		faultinject.SetParallelism(par)
		res, err := faultinject.RunServeScheduled(armed, faultinject.ServeTrialOptions{})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if res.Crash == nil {
			t.Fatalf("par=%d: crash did not fire", par)
		}
		return pin{res.FinalHash, res.ShardHashes[0], res.ShardHashes[1],
			res.Serve.Ops, res.Serve.Retries, res.Serve.SimCycles}
	}
	p1 := run(1)
	p4 := run(4)
	if p1 != p4 {
		t.Fatalf("sharded trial differs across host parallelism:\n 1: %+v\n 4: %+v", p1, p4)
	}
}
