package mesh_test

import (
	"testing"

	"ffccd/internal/alloc"
	"ffccd/internal/ds"
	"ffccd/internal/mesh"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

func setup(t *testing.T) (*pmop.Pool, *sim.Ctx) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.CacheBytes = 128 * 1024
	rt := pmop.NewRuntime(&cfg, 32<<20)
	reg := pmop.NewRegistry()
	ds.RegisterTypes(reg)
	p, err := rt.Create("mesh", 16<<20, 12, reg)
	if err != nil {
		t.Fatal(err)
	}
	return p, sim.NewCtx(&cfg)
}

// fragmentComplementary builds frames whose occupancy patterns are
// offset-disjoint: objects at even slots in some frames, odd-ish slots in
// others, by allocating pairs and freeing alternating halves.
func fragmentComplementary(t *testing.T, p *pmop.Pool, ctx *sim.Ctx) *ds.List {
	l, err := ds.NewList(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	var toDelete []uint64
	for i := uint64(0); i < 3000; i++ {
		if err := l.Insert(ctx, i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			toDelete = append(toDelete, i)
		}
	}
	for _, k := range toDelete {
		l.Delete(ctx, k)
	}
	return l
}

func TestMeshReducesPhysicalFootprint(t *testing.T) {
	p, ctx := setup(t)
	l := fragmentComplementary(t, p, ctx)
	d := mesh.New(p)
	before := d.PhysFrag(12)
	released := d.RunCycle(ctx)
	if released == 0 {
		t.Skip("no disjoint pairs found with this layout")
	}
	after := d.PhysFrag(12)
	if after.FootprintBytes >= before.FootprintBytes {
		t.Fatalf("physical footprint %d → %d despite %d meshes",
			before.FootprintBytes, after.FootprintBytes, released)
	}
	// All data still readable through the remapped pages.
	for i := uint64(1); i < 3000; i += 2 {
		v, ok := l.Get(ctx, i)
		if !ok || v[0] != byte(i) {
			t.Fatalf("key %d unreadable after meshing", i)
		}
	}
}

func TestMeshKeepsVirtualAddressesValid(t *testing.T) {
	p, ctx := setup(t)
	l := fragmentComplementary(t, p, ctx)
	d := mesh.New(p)
	d.RunCycle(ctx)
	// Mutations through old virtual addresses must land correctly.
	for i := uint64(1); i < 100; i += 2 {
		if err := l.Insert(ctx, i, []byte{0xEE}); err != nil {
			t.Fatal(err)
		}
		v, ok := l.Get(ctx, i)
		if !ok || v[0] != 0xEE {
			t.Fatalf("write-after-mesh readback failed for %d", i)
		}
	}
}

func TestMeshedFramesRejectAllocation(t *testing.T) {
	p, ctx := setup(t)
	fragmentComplementary(t, p, ctx)
	d := mesh.New(p)
	if d.RunCycle(ctx) == 0 {
		t.Skip("no meshes")
	}
	heap := p.Heap()
	meshed := -1
	for f := 0; f < heap.Frames(); f++ {
		if heap.State(f) == alloc.FrameMeshed {
			meshed = f
			break
		}
	}
	if meshed < 0 {
		t.Fatal("no meshed frame recorded")
	}
	// Allocations must avoid meshed frames.
	ti, _ := p.Types().LookupName("ds.value")
	for i := 0; i < 500; i++ {
		obj, err := p.Alloc(ctx, ti.ID, 64)
		if err != nil {
			t.Fatal(err)
		}
		if heap.FrameOf(obj.Offset()-pmop.HeaderSize) == meshed {
			t.Fatal("allocation landed in a meshed frame")
		}
	}
}

func TestMeshIdempotentWhenDense(t *testing.T) {
	p, ctx := setup(t)
	l, _ := ds.NewList(ctx, p)
	for i := uint64(0); i < 500; i++ {
		l.Insert(ctx, i, []byte{1})
	}
	d := mesh.New(p)
	if n := d.RunCycle(ctx); n != 0 {
		t.Fatalf("meshed %d pairs on a dense heap", n)
	}
	if d.MeshedFrames() != 0 {
		t.Fatal("phantom meshed frames")
	}
}

func TestMeshPhysFragAccounting(t *testing.T) {
	p, ctx := setup(t)
	l := fragmentComplementary(t, p, ctx)
	_ = l
	d := mesh.New(p)
	virt := p.Heap().Frag(12)
	released := d.RunCycle(ctx)
	phys := d.PhysFrag(12)
	// Physical footprint = virtual footprint − meshed frames.
	want := virt.FootprintBytes - uint64(released)*4096
	if phys.FootprintBytes != want {
		t.Errorf("phys footprint = %d, want %d", phys.FootprintBytes, want)
	}
	if released > 0 && phys.FragRatio >= virt.FragRatio {
		t.Errorf("phys fragR %.2f not below virtual %.2f", phys.FragRatio, virt.FragRatio)
	}
}

func TestMeshRepeatedCyclesConverge(t *testing.T) {
	p, ctx := setup(t)
	fragmentComplementary(t, p, ctx)
	d := mesh.New(p)
	total := 0
	for i := 0; i < 5; i++ {
		total += d.RunCycle(ctx)
	}
	// Meshed frames never unmesh; cycles must converge (identity-mapped
	// candidates run out).
	if d.MeshedFrames() != total {
		t.Errorf("meshed %d != total released %d", d.MeshedFrames(), total)
	}
	if again := d.RunCycle(ctx); again > 10 {
		t.Errorf("meshing did not converge: %d new pairs on 6th cycle", again)
	}
}
