// Package mesh implements the Mesh comparator (Powers et al., PLDI'19) used
// in the paper's Redis case study (§7.4): physical-memory compaction without
// reference updates. Two virtual pages whose live objects occupy disjoint
// page offsets are "meshed" — their objects are merged onto one physical
// page and the other virtual page is remapped to it, freeing a physical
// page while every virtual address (and therefore every reference) stays
// valid.
//
// Faithfulness notes: Mesh's randomized allocation and span machinery are
// out of scope; we mesh the pool's 4 KB frames greedily. The virtual→
// physical mapping is maintained in pmop.Pool's frame remap (the analogue of
// Mesh's mprotect/page-table surgery) and is volatile — the comparator runs
// in the non-crash Redis experiment, matching how the paper uses it.
package mesh

import (
	"sync"

	"ffccd/internal/alloc"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// Defragmenter meshes offset-disjoint frames of one pool.
type Defragmenter struct {
	p *pmop.Pool

	mu     sync.Mutex
	remap  []uint32 // virtual frame → physical frame
	meshed int      // physical frames released by meshing

	// MeshesPerformed counts successful pairings.
	MeshesPerformed int
}

// New creates a defragmenter with an identity mapping.
func New(p *pmop.Pool) *Defragmenter {
	_, frames := p.HeapRange()
	remap := make([]uint32, frames)
	for i := range remap {
		remap[i] = uint32(i)
	}
	d := &Defragmenter{p: p, remap: remap}
	p.SetFrameRemap(remap)
	return d
}

// MeshedFrames returns how many physical frames meshing has released.
func (d *Defragmenter) MeshedFrames() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.meshed
}

// PhysFrag returns fragmentation statistics based on *physical* footprint:
// the allocator's footprint minus the frames meshing released.
func (d *Defragmenter) PhysFrag(pageShift uint) alloc.FragStats {
	st := d.p.Heap().Frag(pageShift)
	d.mu.Lock()
	saved := uint64(d.meshed) * alloc.FrameSize
	d.mu.Unlock()
	if st.FootprintBytes > saved {
		st.FootprintBytes -= saved
	}
	if st.LiveBytes > 0 {
		st.FragRatio = float64(st.FootprintBytes) / float64(st.LiveBytes)
	}
	return st
}

// RunCycle performs one meshing pass under stop-the-world: it pairs
// offset-disjoint, identity-mapped, lightly occupied frames, copies each
// pair onto one physical frame, and updates the virtual mapping. Returns the
// number of physical frames released.
func (d *Defragmenter) RunCycle(ctx *sim.Ctx) int {
	p := d.p
	heap := p.Heap()
	p.StopWorld()
	defer p.ResumeWorld()
	d.mu.Lock()
	defer d.mu.Unlock()

	// Candidates: active frames, identity-mapped, at most half full.
	type cand struct {
		frame int
		bits  [4]uint64
		used  int
	}
	var cands []cand
	for _, fi := range heap.Snapshot() {
		if fi.State != alloc.FrameActive || fi.UsedSlots == 0 || fi.UsedSlots > alloc.SlotsPerFrame/2 {
			continue
		}
		if d.remap[fi.Frame] != uint32(fi.Frame) {
			continue
		}
		cands = append(cands, cand{fi.Frame, heap.FrameBitmap(fi.Frame), fi.UsedSlots})
	}

	released := 0
	usedAsTarget := make(map[int]bool)
	for i := 0; i < len(cands); i++ {
		if usedAsTarget[cands[i].frame] {
			continue
		}
		for j := i + 1; j < len(cands); j++ {
			if usedAsTarget[cands[j].frame] {
				continue
			}
			disjoint := true
			for w := 0; w < 4; w++ {
				if cands[i].bits[w]&cands[j].bits[w] != 0 {
					disjoint = false
					break
				}
			}
			if !disjoint {
				continue
			}
			d.meshPair(ctx, cands[i].frame, cands[j].frame, cands[j].bits)
			usedAsTarget[cands[i].frame] = true
			usedAsTarget[cands[j].frame] = true
			released++
			break
		}
	}
	if released > 0 {
		d.meshed += released
		d.MeshesPerformed += released
		// Publish the updated mapping.
		m := make([]uint32, len(d.remap))
		copy(m, d.remap)
		p.SetFrameRemap(m)
	}
	return released
}

// meshPair copies src's occupied slots onto dst's physical frame (same page
// offsets — that is the disjointness invariant) and remaps src to dst.
func (d *Defragmenter) meshPair(ctx *sim.Ctx, dst, src int, srcBits [4]uint64) {
	p := d.p
	heap := p.Heap()
	heapOff := heap.HeapOff()
	dstPhys := uint64(d.remap[dst])
	buf := make([]byte, alloc.SlotSize)
	for s := 0; s < alloc.SlotsPerFrame; s++ {
		if srcBits[s/64]&(1<<(s%64)) == 0 {
			continue
		}
		off := heap.OffsetOf(src, s)
		p.RawLoad(ctx, off, buf) // via src's current physical frame
		// Write directly to dst's physical slot and persist (the remap is
		// not yet updated, so RawStore would hit the old location).
		pa := p.PA(heapOff+dstPhys*alloc.FrameSize) + uint64(s)*alloc.SlotSize
		p.Device().Store(ctx, pa, buf)
		p.Device().Clwb(ctx, pa)
	}
	p.Device().Sfence(ctx)
	d.remap[src] = uint32(dstPhys)
	heap.SetState(dst, alloc.FrameMeshed)
	heap.SetState(src, alloc.FrameMeshed)
}
