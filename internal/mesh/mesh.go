// Package mesh implements the Mesh comparator (Powers et al., PLDI'19) used
// in the paper's Redis case study (§7.4): physical-memory compaction without
// reference updates. Two virtual pages whose live objects occupy disjoint
// page offsets are "meshed" — their objects are merged onto one physical
// page and the other virtual page is remapped to it, freeing a physical
// page while every virtual address (and therefore every reference) stays
// valid.
//
// Faithfulness notes: Mesh's randomized allocation and span machinery are
// out of scope; we mesh the pool's 4 KB frames greedily. The virtual→
// physical mapping is maintained in pmop.Pool's frame remap (the analogue of
// Mesh's mprotect/page-table surgery).
//
// Crash consistency. The remap table is the one piece of Mesh state that
// must survive power loss — without it, a recovered machine would read a
// meshed-away frame's stale physical page. RunCycle persists the table into
// the pool's auxiliary metadata slack (pmop.Pool.AuxMetaRange) with a
// two-copy generation scheme: the inactive copy is written and flushed
// first, then the 8-byte generation header flips to it (a line-atomic
// publish under any crash policy). A crash mid-cycle therefore recovers the
// *previous* mapping — safe, because meshPair copies source slots into free
// offsets of the destination's physical frame before the remap flips, so
// under the old mapping those bytes are unreachable garbage. Recover reads
// the table back before core recovery runs (reference marking must read
// through the mapping); RestoreFrameStates re-pins the meshed frame states
// after the allocator rebuild so later cycles cannot re-mesh over resident
// neighbours.
package mesh

import (
	"encoding/binary"
	"fmt"
	"sync"

	"ffccd/internal/alloc"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// Remap-table persistence layout inside AuxMetaRange:
//
//	[0:8)    header word: meshMagic | generation (0 on fresh media = identity)
//	[8:16)   reserved
//	[16:...) two copies of frames×u32 physical-frame entries; the active copy
//	         is generation%2.
const meshMagic = uint64(0x4D455348) << 32 // "MESH"

func remapLayout(p *pmop.Pool) (base uint64, copyBytes uint64, ok bool) {
	_, frames := p.HeapRange()
	off, size := p.AuxMetaRange()
	copyBytes = frames * 4
	return off, copyBytes, size >= 16+2*copyBytes
}

// Defragmenter meshes offset-disjoint frames of one pool.
type Defragmenter struct {
	p *pmop.Pool

	mu     sync.Mutex
	remap  []uint32 // virtual frame → physical frame
	meshed int      // physical frames released by meshing
	gen    uint64   // persisted remap-table generation (0 = identity)

	// MeshesPerformed counts successful pairings.
	MeshesPerformed int
}

// New creates a defragmenter with an identity mapping.
func New(p *pmop.Pool) *Defragmenter {
	_, frames := p.HeapRange()
	remap := make([]uint32, frames)
	for i := range remap {
		remap[i] = uint32(i)
	}
	d := &Defragmenter{p: p, remap: remap}
	p.SetFrameRemap(remap)
	return d
}

// MeshedFrames returns how many physical frames meshing has released.
func (d *Defragmenter) MeshedFrames() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.meshed
}

// PhysFrag returns fragmentation statistics based on *physical* footprint:
// the allocator's footprint minus the frames meshing released.
func (d *Defragmenter) PhysFrag(pageShift uint) alloc.FragStats {
	st := d.p.Heap().Frag(pageShift)
	d.mu.Lock()
	saved := uint64(d.meshed) * alloc.FrameSize
	d.mu.Unlock()
	if st.FootprintBytes > saved {
		st.FootprintBytes -= saved
	}
	if st.LiveBytes > 0 {
		st.FragRatio = float64(st.FootprintBytes) / float64(st.LiveBytes)
	}
	return st
}

// RunCycle performs one meshing pass under stop-the-world: it pairs
// offset-disjoint, identity-mapped, lightly occupied frames, copies each
// pair onto one physical frame, and updates the virtual mapping. Returns the
// number of physical frames released.
func (d *Defragmenter) RunCycle(ctx *sim.Ctx) int {
	p := d.p
	heap := p.Heap()
	p.StopWorld()
	defer p.ResumeWorld()
	d.mu.Lock()
	defer d.mu.Unlock()

	// Candidates: active frames, identity-mapped, at most half full.
	type cand struct {
		frame int
		bits  [4]uint64
		used  int
	}
	var cands []cand
	for _, fi := range heap.Snapshot() {
		if fi.State != alloc.FrameActive || fi.UsedSlots == 0 || fi.UsedSlots > alloc.SlotsPerFrame/2 {
			continue
		}
		if d.remap[fi.Frame] != uint32(fi.Frame) {
			continue
		}
		cands = append(cands, cand{fi.Frame, heap.FrameBitmap(fi.Frame), fi.UsedSlots})
	}

	released := 0
	usedAsTarget := make(map[int]bool)
	for i := 0; i < len(cands); i++ {
		if usedAsTarget[cands[i].frame] {
			continue
		}
		for j := i + 1; j < len(cands); j++ {
			if usedAsTarget[cands[j].frame] {
				continue
			}
			disjoint := true
			for w := 0; w < 4; w++ {
				if cands[i].bits[w]&cands[j].bits[w] != 0 {
					disjoint = false
					break
				}
			}
			if !disjoint {
				continue
			}
			d.meshPair(ctx, cands[i].frame, cands[j].frame, cands[j].bits)
			usedAsTarget[cands[i].frame] = true
			usedAsTarget[cands[j].frame] = true
			released++
			break
		}
	}
	if released > 0 {
		d.meshed += released
		d.MeshesPerformed += released
		// Persist first (inactive copy + durable generation flip), then
		// publish the volatile mapping: a crash inside persist leaves the old
		// generation active and the old remap recoverable.
		d.persist(ctx)
		m := make([]uint32, len(d.remap))
		copy(m, d.remap)
		p.SetFrameRemap(m)
	}
	return released
}

// persist writes the current remap table into the inactive aux-meta copy,
// flushes it, and flips the generation header. Called with d.mu held and the
// world stopped.
func (d *Defragmenter) persist(ctx *sim.Ctx) {
	p := d.p
	base, copyBytes, ok := remapLayout(p)
	if !ok {
		return // pool too small to carry the table; stay volatile
	}
	next := d.gen + 1
	dst := base + 16 + (next%2)*copyBytes
	buf := make([]byte, copyBytes)
	for i, ph := range d.remap {
		binary.LittleEndian.PutUint32(buf[i*4:], ph)
	}
	p.RawStore(ctx, dst, buf)
	p.PersistRange(ctx, dst, copyBytes)
	p.RawStoreU64(ctx, base, meshMagic|(next&0xFFFFFFFF))
	p.PersistRange(ctx, base, 8)
	d.gen = next
}

// Recover rebuilds a Defragmenter from the persisted remap table and
// installs the mapping on the pool. It must run BEFORE core recovery: the
// reference mark pass reads heap bytes through the pool's frame remap, and
// until the mapping is installed a meshed-away frame resolves to its stale
// physical page. Fresh media (or a pool too small for the table) recovers to
// the identity mapping.
func Recover(ctx *sim.Ctx, p *pmop.Pool) (*Defragmenter, error) {
	_, frames := p.HeapRange()
	remap := make([]uint32, frames)
	for i := range remap {
		remap[i] = uint32(i)
	}
	d := &Defragmenter{p: p, remap: remap}
	base, copyBytes, ok := remapLayout(p)
	if ok {
		if hdr := p.RawLoadU64(ctx, base); hdr&^uint64(0xFFFFFFFF) == meshMagic {
			gen := hdr & 0xFFFFFFFF
			buf := make([]byte, copyBytes)
			p.RawLoad(ctx, base+16+(gen%2)*copyBytes, buf)
			for i := range remap {
				ph := binary.LittleEndian.Uint32(buf[i*4:])
				if uint64(ph) >= frames {
					return nil, fmt.Errorf("mesh: corrupt remap entry %d → %d (frames %d)", i, ph, frames)
				}
				remap[i] = ph
				if ph != uint32(i) {
					d.meshed++
				}
			}
			d.gen = gen
		}
	}
	m := make([]uint32, len(remap))
	copy(m, remap)
	p.SetFrameRemap(m)
	return d, nil
}

// RestoreFrameStates re-marks every frame participating in a mesh pairing as
// FrameMeshed. Run it AFTER the allocator rebuild (core recovery leaves
// frames with live objects Active): a destination frame physically hosts its
// meshed partner's slots too, so leaving it Active would let a later cycle
// pair it against a third frame and overwrite the resident neighbour.
func (d *Defragmenter) RestoreFrameStates() {
	heap := d.p.Heap()
	d.mu.Lock()
	defer d.mu.Unlock()
	for src, ph := range d.remap {
		if uint32(src) != ph {
			heap.SetState(src, alloc.FrameMeshed)
			heap.SetState(int(ph), alloc.FrameMeshed)
		}
	}
}

// meshPair copies src's occupied slots onto dst's physical frame (same page
// offsets — that is the disjointness invariant) and remaps src to dst.
func (d *Defragmenter) meshPair(ctx *sim.Ctx, dst, src int, srcBits [4]uint64) {
	p := d.p
	heap := p.Heap()
	heapOff := heap.HeapOff()
	dstPhys := uint64(d.remap[dst])
	buf := make([]byte, alloc.SlotSize)
	for s := 0; s < alloc.SlotsPerFrame; s++ {
		if srcBits[s/64]&(1<<(s%64)) == 0 {
			continue
		}
		off := heap.OffsetOf(src, s)
		p.RawLoad(ctx, off, buf) // via src's current physical frame
		// Write directly to dst's physical slot and persist (the remap is
		// not yet updated, so RawStore would hit the old location).
		pa := p.PA(heapOff+dstPhys*alloc.FrameSize) + uint64(s)*alloc.SlotSize
		p.Device().Store(ctx, pa, buf)
		p.Device().Clwb(ctx, pa)
	}
	p.Device().Sfence(ctx)
	d.remap[src] = uint32(dstPhys)
	heap.SetState(dst, alloc.FrameMeshed)
	heap.SetState(src, alloc.FrameMeshed)
}
