// Package bloom implements the plain Bloom filter used by the summary phase
// to record relocation pages and modelled in hardware by the Bloom Filter
// Cache (§4.3.2). Only the standard library is used; the k hash functions are
// derived from double hashing over two FNV-1a variants.
package bloom

// Filter is a fixed-size Bloom filter. The zero value is unusable; use New.
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes int
	count  int
}

// New creates a filter with the given size in bytes and number of hash
// functions. The paper's BFC holds 1024-byte filters.
func New(sizeBytes, hashes int) *Filter {
	if sizeBytes < 8 {
		sizeBytes = 8
	}
	if hashes < 1 {
		hashes = 1
	}
	return &Filter{
		bits:   make([]uint64, (sizeBytes+7)/8),
		nbits:  uint64(sizeBytes) * 8,
		hashes: hashes,
	}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hash2 computes two independent 64-bit hashes of v.
func hash2(v uint64) (uint64, uint64) {
	h1 := uint64(fnvOffset)
	h2 := uint64(fnvOffset ^ 0x9E3779B97F4A7C15)
	for i := 0; i < 8; i++ {
		b := byte(v >> (8 * i))
		h1 = (h1 ^ uint64(b)) * fnvPrime
		h2 = (h2 ^ uint64(b^0x5A)) * fnvPrime
	}
	return h1, h2
}

// Add inserts v.
func (f *Filter) Add(v uint64) {
	h1, h2 := hash2(v)
	for i := 0; i < f.hashes; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		f.bits[bit/64] |= 1 << (bit % 64)
	}
	f.count++
}

// Test reports whether v may have been added (false positives possible,
// false negatives impossible).
func (f *Filter) Test(v uint64) bool {
	h1, h2 := hash2(v)
	for i := 0; i < f.hashes; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of Add calls.
func (f *Filter) Count() int { return f.count }

// SizeBytes returns the filter's bit-array size in bytes.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.count = 0
}
