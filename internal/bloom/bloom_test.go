package bloom

import (
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1024, 4)
	for i := uint64(0); i < 500; i++ {
		f.Add(i * 4096)
	}
	for i := uint64(0); i < 500; i++ {
		if !f.Test(i * 4096) {
			t.Fatalf("false negative for %d", i*4096)
		}
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	f := New(1024, 4)
	for i := uint64(0); i < 500; i++ {
		f.Add(i)
	}
	fp := 0
	const probes = 10000
	for i := uint64(1_000_000); i < 1_000_000+probes; i++ {
		if f.Test(i) {
			fp++
		}
	}
	// 8192 bits, 500 elements, 4 hashes → theoretical fp ≈ 1.2%. Allow 5%.
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Errorf("false positive rate %.3f too high", rate)
	}
}

func TestReset(t *testing.T) {
	f := New(64, 3)
	f.Add(42)
	f.Reset()
	if f.Test(42) {
		t.Error("Test(42) true after Reset")
	}
	if f.Count() != 0 {
		t.Errorf("count = %d after reset", f.Count())
	}
}

func TestEmptyFilterRejectsEverything(t *testing.T) {
	f := New(128, 4)
	for i := uint64(0); i < 1000; i++ {
		if f.Test(i) {
			t.Fatalf("empty filter accepted %d", i)
		}
	}
}

func TestMembershipProperty(t *testing.T) {
	prop := func(vals []uint64, probe uint64) bool {
		f := New(512, 4)
		for _, v := range vals {
			f.Add(v)
		}
		for _, v := range vals {
			if !f.Test(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTinySizeClamped(t *testing.T) {
	f := New(0, 0)
	f.Add(7)
	if !f.Test(7) {
		t.Error("clamped filter lost element")
	}
	if f.SizeBytes() < 8 {
		t.Errorf("size = %d, want >= 8", f.SizeBytes())
	}
}
