// Package alloc implements the persistent heap allocator underneath a PMOP:
// 4 KB frames carved into 16-byte slots (the glibc alignment granularity the
// paper's PMFT design assumes, §4.3.1), first-fit allocation within partially
// occupied frames, and fragmentation-ratio bookkeeping (eq. 1 of the paper).
//
// Allocator metadata is volatile, in the Makalu/Atlas style the paper builds
// on: object headers in PM are the ground truth, and after a crash or reopen
// the bitmaps are rebuilt from a reachability pass (RebuildFromMark). This
// keeps pmalloc/pfree free of persist barriers without losing soundness —
// anything the bitmaps forget is garbage by definition, and the GC reclaims
// it, which is exactly the paper's persistent-leak story.
package alloc

import (
	"fmt"
	"math/bits"
	"sync"
)

// SlotSize is the allocation granularity in bytes.
const SlotSize = 16

// FrameSize is the allocator frame size (4 KB; huge pages are groups of
// frames for footprint accounting only).
const FrameSize = 4096

// SlotsPerFrame is the number of slots in one frame.
const SlotsPerFrame = FrameSize / SlotSize // 256

// FrameState describes how a frame participates in allocation and
// defragmentation.
type FrameState uint8

const (
	// FrameFree has no live objects and is available.
	FrameFree FrameState = iota
	// FrameActive holds objects and accepts new allocations.
	FrameActive
	// FrameRelocation is being evacuated; no new allocations.
	FrameRelocation
	// FrameDestination receives relocated objects; only the GC places there.
	FrameDestination
	// FrameMeshed participates in a Mesh pairing: its physical page is
	// shared with another virtual frame, so no new allocations may land in
	// it (a free virtual slot may be occupied physically).
	FrameMeshed
)

// wordsPerFrame is the bitmap words per frame (256 bits).
const wordsPerFrame = SlotsPerFrame / 64

// Heap manages the slots of a pool's object heap. All methods are safe for
// concurrent use.
type Heap struct {
	mu sync.Mutex

	heapOff uint64 // pool offset of frame 0
	frames  int

	slotBits  []uint64 // allocation bitmap: 4 words/frame, bit = slot in use
	startBits []uint64 // set at the first slot of each allocation
	freeSlots []uint16 // per-frame free slot count
	state     []FrameState

	usedFrames int
	liveBytes  uint64 // sum of allocated sizes (header included)
	dupBytes   uint64 // bytes double-counted while relocation copies coexist

	cursor int // next frame to consider for allocation
}

// NewHeap creates an empty heap of the given geometry.
func NewHeap(heapOff uint64, frames int) *Heap {
	h := &Heap{
		heapOff:   heapOff,
		frames:    frames,
		slotBits:  make([]uint64, frames*wordsPerFrame),
		startBits: make([]uint64, frames*wordsPerFrame),
		freeSlots: make([]uint16, frames),
		state:     make([]FrameState, frames),
	}
	for i := range h.freeSlots {
		h.freeSlots[i] = SlotsPerFrame
	}
	return h
}

// Frames returns the heap size in frames.
func (h *Heap) Frames() int { return h.frames }

// HeapOff returns the pool offset of frame 0.
func (h *Heap) HeapOff() uint64 { return h.heapOff }

// OffsetOf converts (frame, slot) to a pool offset.
func (h *Heap) OffsetOf(frame, slot int) uint64 {
	return h.heapOff + uint64(frame)*FrameSize + uint64(slot)*SlotSize
}

// Locate converts a pool offset to (frame, slot); offsets must be
// slot-aligned and inside the heap.
func (h *Heap) Locate(off uint64) (frame, slot int) {
	rel := off - h.heapOff
	return int(rel / FrameSize), int(rel % FrameSize / SlotSize)
}

// FrameOf returns the frame index containing off.
func (h *Heap) FrameOf(off uint64) int { return int((off - h.heapOff) / FrameSize) }

// SlotsFor returns the slot count for a payload of n bytes plus the
// 16-byte object header.
func SlotsFor(payload uint64) int {
	return int((payload + 16 + SlotSize - 1) / SlotSize)
}

// findRun scans one frame's bitmap for a run of n free slots, returning the
// starting slot or -1.
func (h *Heap) findRun(frame, n int) int {
	base := frame * wordsPerFrame
	run := 0
	start := 0
	for s := 0; s < SlotsPerFrame; s++ {
		w := h.slotBits[base+s/64]
		if w == ^uint64(0) {
			// Fast-skip a fully allocated word.
			s += 63 - s%64
			run = 0
			continue
		}
		if w&(1<<(s%64)) == 0 {
			if run == 0 {
				start = s
			}
			run++
			if run == n {
				return start
			}
		} else {
			run = 0
		}
	}
	return -1
}

func (h *Heap) setRange(bits []uint64, frame, slot, n int, v bool) {
	base := frame * wordsPerFrame
	for i := slot; i < slot+n; i++ {
		if v {
			bits[base+i/64] |= 1 << (i % 64)
		} else {
			bits[base+i/64] &^= 1 << (i % 64)
		}
	}
}

// Alloc reserves a run of slots for a payload of `payload` bytes and returns
// the pool offset of the object's header slot. It never allocates into
// relocation frames (being evacuated) or meshed frames (physical slots may
// be occupied); destination frames are fine — their relocation targets are
// already reserved, and refusing their tails would force allocation-heavy
// workloads to open fresh frames during every epoch.
func (h *Heap) Alloc(payload uint64) (uint64, error) {
	n := SlotsFor(payload)
	if n > SlotsPerFrame {
		return 0, fmt.Errorf("alloc: object of %d bytes exceeds frame capacity", payload)
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	// First fit over active frames starting at the cursor; fall back to a
	// free frame.
	tried := 0
	for i := 0; i < h.frames && tried < h.frames; i++ {
		f := (h.cursor + i) % h.frames
		tried++
		if h.state[f] != FrameActive && h.state[f] != FrameDestination {
			continue
		}
		if int(h.freeSlots[f]) < n {
			continue
		}
		if s := h.findRun(f, n); s >= 0 {
			h.commitAlloc(f, s, n, payload)
			h.cursor = f
			return h.OffsetOf(f, s), nil
		}
	}
	for f := 0; f < h.frames; f++ {
		if h.state[f] == FrameFree {
			h.state[f] = FrameActive
			h.usedFrames++
			h.commitAlloc(f, 0, n, payload)
			h.cursor = f
			return h.OffsetOf(f, 0), nil
		}
	}
	return 0, fmt.Errorf("alloc: out of memory (%d frames, %d live bytes)", h.frames, h.liveBytes)
}

func (h *Heap) commitAlloc(f, s, n int, payload uint64) {
	h.setRange(h.slotBits, f, s, n, true)
	h.setRange(h.startBits, f, s, 1, true)
	h.freeSlots[f] -= uint16(n)
	h.liveBytes += uint64(n) * SlotSize
}

// PlaceAt reserves an explicit (frame, slot, n) run — the GC uses it to
// install relocated objects at their PMFT-determined destinations. The frame
// must be a destination or active frame and the run free.
func (h *Heap) PlaceAt(frame, slot, n int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	base := frame * wordsPerFrame
	for i := slot; i < slot+n; i++ {
		if h.slotBits[base+i/64]&(1<<(i%64)) != 0 {
			return fmt.Errorf("alloc: PlaceAt(%d,%d,%d) overlaps a live allocation", frame, slot, n)
		}
	}
	if h.state[frame] == FrameFree {
		h.state[frame] = FrameDestination
		h.usedFrames++
	}
	h.setRange(h.slotBits, frame, slot, n, true)
	h.setRange(h.startBits, frame, slot, 1, true)
	h.freeSlots[frame] -= uint16(n)
	h.liveBytes += uint64(n) * SlotSize
	return nil
}

// Free releases the run of n slots starting at pool offset off.
func (h *Heap) Free(off uint64, n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, s := h.Locate(off)
	h.freeRun(f, s, n)
}

func (h *Heap) freeRun(f, s, n int) {
	h.setRange(h.slotBits, f, s, n, false)
	h.setRange(h.startBits, f, s, 1, false)
	h.freeSlots[f] += uint16(n)
	h.liveBytes -= uint64(n) * SlotSize
	if h.freeSlots[f] == SlotsPerFrame && (h.state[f] == FrameActive || h.state[f] == FrameDestination) {
		h.state[f] = FrameFree
		h.usedFrames--
	}
}

// ReleaseFrame forcibly frees every slot of a frame (end of relocation) and
// marks it free.
func (h *Heap) ReleaseFrame(frame int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	base := frame * wordsPerFrame
	for w := 0; w < wordsPerFrame; w++ {
		inUse := bits.OnesCount64(h.slotBits[base+w])
		h.liveBytes -= uint64(inUse) * SlotSize
		h.slotBits[base+w] = 0
		h.startBits[base+w] = 0
	}
	if h.state[frame] != FrameFree {
		h.usedFrames--
	}
	h.freeSlots[frame] = SlotsPerFrame
	h.state[frame] = FrameFree
}

// SetState transitions a frame's state (GC summary marks relocation and
// destination frames; terminate reverts destination frames to active).
func (h *Heap) SetState(frame int, st FrameState) {
	h.mu.Lock()
	defer h.mu.Unlock()
	old := h.state[frame]
	if old == st {
		return
	}
	if old == FrameFree && st != FrameFree {
		h.usedFrames++
	}
	if old != FrameFree && st == FrameFree {
		h.usedFrames--
	}
	h.state[frame] = st
}

// State returns a frame's state.
func (h *Heap) State(frame int) FrameState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state[frame]
}

// IsStart reports whether the slot at pool offset off begins an allocation.
func (h *Heap) IsStart(off uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, s := h.Locate(off)
	return h.startBits[f*wordsPerFrame+s/64]&(1<<(s%64)) != 0
}

// FrameObjects returns the starting slots of allocations in a frame.
func (h *Heap) FrameObjects(frame int) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []int
	base := frame * wordsPerFrame
	for w := 0; w < wordsPerFrame; w++ {
		word := h.startBits[base+w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, w*64+b)
			word &^= 1 << b
		}
	}
	return out
}

// FrameBitmap returns a copy of a frame's slot-allocation bitmap words.
func (h *Heap) FrameBitmap(frame int) [wordsPerFrame]uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out [wordsPerFrame]uint64
	copy(out[:], h.slotBits[frame*wordsPerFrame:(frame+1)*wordsPerFrame])
	return out
}

// FreeFrames returns up to n free frame indices in ascending order —
// deterministic destination-frame selection for the GC summary phase.
func (h *Heap) FreeFrames(n int) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, 0, n)
	for f := 0; f < h.frames && len(out) < n; f++ {
		if h.state[f] == FrameFree {
			out = append(out, f)
		}
	}
	return out
}

// FrameInfo summarises a frame for the GC summary phase.
type FrameInfo struct {
	Frame     int
	State     FrameState
	UsedSlots int
	Objects   int
}

// Snapshot returns per-frame occupancy for all non-free frames.
func (h *Heap) Snapshot() []FrameInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []FrameInfo
	for f := 0; f < h.frames; f++ {
		if h.state[f] == FrameFree {
			continue
		}
		base := f * wordsPerFrame
		used, objs := 0, 0
		for w := 0; w < wordsPerFrame; w++ {
			used += bits.OnesCount64(h.slotBits[base+w])
			objs += bits.OnesCount64(h.startBits[base+w])
		}
		out = append(out, FrameInfo{Frame: f, State: h.state[f], UsedSlots: used, Objects: objs})
	}
	return out
}

// Reset clears all allocator state (used before RebuildFromMark).
func (h *Heap) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.slotBits {
		h.slotBits[i] = 0
		h.startBits[i] = 0
	}
	for i := range h.freeSlots {
		h.freeSlots[i] = SlotsPerFrame
		h.state[i] = FrameFree
	}
	h.usedFrames = 0
	h.liveBytes = 0
	h.dupBytes = 0
	h.cursor = 0
}

// AddDup records bytes that are temporarily allocated twice (an in-flight
// relocation epoch holds both source and destination copies); Frag subtracts
// them so live data stays the logical single-copy size.
func (h *Heap) AddDup(n uint64) {
	h.mu.Lock()
	h.dupBytes += n
	h.mu.Unlock()
}

// SubDup removes previously recorded duplicate bytes.
func (h *Heap) SubDup(n uint64) {
	h.mu.Lock()
	if n > h.dupBytes {
		n = h.dupBytes
	}
	h.dupBytes -= n
	h.mu.Unlock()
}

// RebuildEntry describes one live object found by a reachability pass.
type RebuildEntry struct {
	Off   uint64 // header offset
	Slots int
}

// RebuildFromMark reconstructs the bitmaps from the live-object set — the
// post-crash/reopen path. Unreachable allocations are implicitly reclaimed
// (the paper's persistent-leak fix).
func (h *Heap) RebuildFromMark(live []RebuildEntry) {
	h.Reset()
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, e := range live {
		f, s := h.Locate(e.Off)
		if h.state[f] == FrameFree {
			h.state[f] = FrameActive
			h.usedFrames++
		}
		h.setRange(h.slotBits, f, s, e.Slots, true)
		h.setRange(h.startBits, f, s, 1, true)
		h.freeSlots[f] -= uint16(e.Slots)
		h.liveBytes += uint64(e.Slots) * SlotSize
	}
}
