package alloc

// HeapCheckpoint is a deep copy of the allocator's volatile state. The
// allocator is rebuildable from persistent headers (RebuildFromMark), but
// rebuilding charges simulated mark-phase cycles — the fork-based experiment
// driver instead restores the exact host-side bitmaps so a forked run's
// allocation decisions replay bit-identically (DESIGN.md §7).
type HeapCheckpoint struct {
	HeapOff    uint64
	Frames     int
	SlotBits   []uint64
	StartBits  []uint64
	FreeSlots  []uint16
	State      []FrameState
	UsedFrames int
	LiveBytes  uint64
	DupBytes   uint64
	Cursor     int
}

// Checkpoint captures the heap state.
func (h *Heap) Checkpoint() *HeapCheckpoint {
	c := &HeapCheckpoint{}
	h.CheckpointInto(c)
	return c
}

// CheckpointInto captures the heap state into c, reusing c's buffers.
func (h *Heap) CheckpointInto(c *HeapCheckpoint) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c.HeapOff = h.heapOff
	c.Frames = h.frames
	c.SlotBits = append(c.SlotBits[:0], h.slotBits...)
	c.StartBits = append(c.StartBits[:0], h.startBits...)
	c.FreeSlots = append(c.FreeSlots[:0], h.freeSlots...)
	c.State = append(c.State[:0], h.state...)
	c.UsedFrames = h.usedFrames
	c.LiveBytes = h.liveBytes
	c.DupBytes = h.dupBytes
	c.Cursor = h.cursor
}

// Restore overwrites the heap state from c. The heap must have the same
// geometry (offset and frame count) as the checkpoint's source; the
// checkpoint is only read, so concurrent restores from one checkpoint into
// distinct heaps are safe.
func (h *Heap) Restore(c *HeapCheckpoint) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if c.HeapOff != h.heapOff || c.Frames != h.frames {
		panic("alloc: Restore geometry mismatch")
	}
	copy(h.slotBits, c.SlotBits)
	copy(h.startBits, c.StartBits)
	copy(h.freeSlots, c.FreeSlots)
	copy(h.state, c.State)
	h.usedFrames = c.UsedFrames
	h.liveBytes = c.LiveBytes
	h.dupBytes = c.DupBytes
	h.cursor = c.Cursor
}
