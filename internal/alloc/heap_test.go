package alloc

import (
	"testing"
	"testing/quick"
)

func TestAllocBasics(t *testing.T) {
	h := NewHeap(4096, 16)
	off, err := h.Alloc(100) // 100+16 → 8 slots
	if err != nil {
		t.Fatal(err)
	}
	if off != 4096 {
		t.Errorf("first alloc at %d, want 4096", off)
	}
	if !h.IsStart(off) {
		t.Error("start bit missing")
	}
	off2, _ := h.Alloc(16) // 2 slots
	if off2 != 4096+8*SlotSize {
		t.Errorf("second alloc at %d, want adjacent", off2)
	}
	if h.LiveBytes() != 10*SlotSize {
		t.Errorf("live = %d, want %d", h.LiveBytes(), 10*SlotSize)
	}
}

func TestSlotsFor(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 2, 16: 2, 48: 4, 4080: 256}
	for payload, want := range cases {
		if got := SlotsFor(payload); got != want {
			t.Errorf("SlotsFor(%d) = %d, want %d", payload, got, want)
		}
	}
}

func TestFreeReuse(t *testing.T) {
	h := NewHeap(0, 4)
	off, _ := h.Alloc(112) // 8 slots
	h.Alloc(112)
	h.Free(off, 8)
	off3, _ := h.Alloc(112)
	if off3 != off {
		t.Errorf("freed hole not reused: got %d, want %d", off3, off)
	}
}

func TestHoleTooSmallForcesNewFrame(t *testing.T) {
	// The Figure 2 scenario: enough free space in total, but not contiguous.
	h := NewHeap(0, 8)
	var offs []uint64
	for i := 0; i < SlotsPerFrame/2; i++ { // fill frame 0 with 2-slot objects
		o, err := h.Alloc(16)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, o)
	}
	// Free alternating objects: 128 scattered free pairs.
	for i := 0; i < len(offs); i += 2 {
		h.Free(offs[i], 2)
	}
	// A 3-slot request cannot fit a 2-slot hole: must open frame 1.
	off, err := h.Alloc(33)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := h.Locate(off); f != 1 {
		t.Errorf("allocated in frame %d, want new frame 1", f)
	}
	if h.UsedFrames() != 2 {
		t.Errorf("used frames = %d, want 2", h.UsedFrames())
	}
}

func TestFrameFreedWhenEmpty(t *testing.T) {
	h := NewHeap(0, 4)
	off, _ := h.Alloc(100)
	if h.UsedFrames() != 1 {
		t.Fatal("frame not counted")
	}
	h.Free(off, SlotsFor(100))
	if h.UsedFrames() != 0 {
		t.Error("empty frame not released")
	}
	if h.State(0) != FrameFree {
		t.Error("frame state not free")
	}
}

func TestNoAllocationIntoRelocationFrames(t *testing.T) {
	h := NewHeap(0, 2)
	h.Alloc(16)
	h.SetState(0, FrameRelocation)
	off, err := h.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := h.Locate(off); f == 0 {
		t.Error("allocated into a relocation frame")
	}
}

func TestPlaceAt(t *testing.T) {
	h := NewHeap(0, 4)
	if err := h.PlaceAt(2, 10, 8); err != nil {
		t.Fatal(err)
	}
	if h.State(2) != FrameDestination {
		t.Error("PlaceAt frame should become destination")
	}
	if err := h.PlaceAt(2, 12, 4); err == nil {
		t.Error("overlapping PlaceAt must fail")
	}
	objs := h.FrameObjects(2)
	if len(objs) != 1 || objs[0] != 10 {
		t.Errorf("frame objects = %v, want [10]", objs)
	}
}

func TestReleaseFrame(t *testing.T) {
	h := NewHeap(0, 2)
	h.Alloc(1000)
	h.Alloc(1000)
	live := h.LiveBytes()
	h.ReleaseFrame(0)
	if h.State(0) != FrameFree {
		t.Error("frame not free after release")
	}
	if h.LiveBytes() >= live {
		t.Error("live bytes not reduced")
	}
}

func TestOutOfMemory(t *testing.T) {
	h := NewHeap(0, 1)
	h.Alloc(4080)
	if _, err := h.Alloc(16); err == nil {
		t.Fatal("expected out of memory")
	}
}

func TestObjectTooLarge(t *testing.T) {
	h := NewHeap(0, 4)
	if _, err := h.Alloc(4081); err == nil {
		t.Fatal("object larger than a frame must fail")
	}
}

func TestFragRatio4K(t *testing.T) {
	h := NewHeap(0, 64)
	// Allocate 16 frames' worth of 8-slot objects then free 3 of every 4.
	var offs []uint64
	for i := 0; i < 16*32; i++ {
		o, err := h.Alloc(112)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, o)
	}
	before := h.Frag(12)
	if before.FragRatio < 1.0 || before.FragRatio > 1.01 {
		t.Errorf("dense heap fragR = %.3f, want ≈1.0", before.FragRatio)
	}
	for i, o := range offs {
		if i%4 != 0 {
			h.Free(o, 8)
		}
	}
	after := h.Frag(12)
	if after.FragRatio < 3.5 {
		t.Errorf("sparse heap fragR = %.3f, want ≈4.0", after.FragRatio)
	}
}

func TestFragRatioHugePagesWorse(t *testing.T) {
	h := NewHeap(0, 1024)
	var offs []uint64
	for i := 0; i < 512; i++ {
		o, _ := h.Alloc(4000) // ~one object per frame
		offs = append(offs, o)
	}
	for i, o := range offs {
		if i%2 == 0 {
			h.Free(o, SlotsFor(4000))
		}
	}
	small := h.Frag(12).FragRatio
	huge := h.Frag(21).FragRatio
	if huge < small {
		t.Errorf("2MB fragR (%.2f) should be >= 4KB fragR (%.2f)", huge, small)
	}
}

func TestSnapshot(t *testing.T) {
	h := NewHeap(0, 8)
	h.Alloc(112)
	h.Alloc(112)
	snap := h.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot frames = %d, want 1", len(snap))
	}
	if snap[0].UsedSlots != 16 || snap[0].Objects != 2 {
		t.Errorf("snapshot = %+v", snap[0])
	}
}

func TestRebuildFromMark(t *testing.T) {
	h := NewHeap(0, 8)
	a, _ := h.Alloc(112)
	b, _ := h.Alloc(112)
	c, _ := h.Alloc(112)
	_ = b
	// Rebuild keeping only a and c: b becomes reclaimable (a "leak" fixed).
	h.RebuildFromMark([]RebuildEntry{{a, 8}, {c, 8}})
	if h.LiveBytes() != 2*8*SlotSize {
		t.Errorf("live = %d after rebuild", h.LiveBytes())
	}
	if !h.IsStart(a) || !h.IsStart(c) || h.IsStart(b) {
		t.Error("start bits wrong after rebuild")
	}
	// b's slots must be allocatable again.
	d, err := h.Alloc(112)
	if err != nil || d != b {
		t.Errorf("reclaimed leak not reused: %v %d", err, d)
	}
}

func TestAllocFreeProperty(t *testing.T) {
	// Property: alloc/free sequences never double-allocate a slot and live
	// bytes always equals the sum of outstanding allocations.
	type obj struct {
		off   uint64
		slots int
	}
	f := func(sizes []uint16, frees []uint8) bool {
		h := NewHeap(0, 256)
		var objs []obj
		liveSlots := 0
		for _, sz := range sizes {
			p := uint64(sz%2000) + 1
			off, err := h.Alloc(p)
			if err != nil {
				continue
			}
			n := SlotsFor(p)
			// Check no overlap with existing objects.
			for _, o := range objs {
				if off < o.off+uint64(o.slots)*SlotSize && o.off < off+uint64(n)*SlotSize {
					return false
				}
			}
			objs = append(objs, obj{off, n})
			liveSlots += n
		}
		for _, fi := range frees {
			if len(objs) == 0 {
				break
			}
			i := int(fi) % len(objs)
			h.Free(objs[i].off, objs[i].slots)
			liveSlots -= objs[i].slots
			objs = append(objs[:i], objs[i+1:]...)
		}
		return h.LiveBytes() == uint64(liveSlots)*SlotSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
