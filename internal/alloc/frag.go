package alloc

// FragStats reports the fragmentation state of the heap using the paper's
// metric (eq. 1): fragR = memory footprint / live data size. Footprint is
// OS-page granular — with 2 MB pages a single live object pins the whole
// huge page, which is why the paper's Figure 1 shows worse ratios at 2 MB.
type FragStats struct {
	FootprintBytes uint64
	LiveBytes      uint64
	UsedFrames     int
	FragRatio      float64
}

// Frag computes fragmentation statistics with the given OS page shift
// (12 for 4 KB pages, 21 for 2 MB huge pages).
func (h *Heap) Frag(pageShift uint) FragStats {
	h.mu.Lock()
	defer h.mu.Unlock()

	var footprint uint64
	if pageShift <= 12 {
		footprint = uint64(h.usedFrames) * FrameSize
	} else {
		// Count distinct OS pages containing at least one used frame.
		framesPerPage := 1 << (pageShift - 12)
		pages := 0
		for p := 0; p < h.frames; p += framesPerPage {
			end := p + framesPerPage
			if end > h.frames {
				end = h.frames
			}
			for f := p; f < end; f++ {
				if h.state[f] != FrameFree {
					pages++
					break
				}
			}
		}
		footprint = uint64(pages) << pageShift
	}
	live := h.liveBytes
	if h.dupBytes < live {
		live -= h.dupBytes
	}
	st := FragStats{
		FootprintBytes: footprint,
		LiveBytes:      live,
		UsedFrames:     h.usedFrames,
	}
	if live > 0 {
		st.FragRatio = float64(footprint) / float64(live)
	}
	return st
}

// LiveBytes returns the current live-allocation total.
func (h *Heap) LiveBytes() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.liveBytes
}

// UsedFrames returns the count of non-free frames.
func (h *Heap) UsedFrames() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.usedFrames
}
