// Package experiments regenerates every table and figure of the paper's
// evaluation (§6–§7) on the simulated machine. Each experiment returns a
// structured result with a String() rendering; cmd/ffccd-bench and the
// repo-root benchmarks drive them. Workload sizes are scaled from the
// paper's 5M-insertion setup by a configurable factor (fragmentation ratios
// are scale-invariant; see DESIGN.md).
package experiments

import (
	"fmt"
	"sync"

	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/kv"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
	"ffccd/internal/workload"
	"ffccd/internal/workpool"
)

// DefaultScale is the workload scale factor relative to the paper
// (5M inserts × DefaultScale).
const DefaultScale = 0.004 // 20k inserts

// Env is one simulated machine + pool.
type Env struct {
	Cfg  sim.Config
	RT   *pmop.Runtime
	Pool *pmop.Pool
	Ctx  *sim.Ctx
}

// NewEnv builds a fresh environment. pageShift selects footprint/TLB
// granularity.
func NewEnv(poolBytes uint64, pageShift uint) (*Env, error) {
	cfg := sim.DefaultConfig()
	reg := pmop.NewRegistry()
	ds.RegisterTypes(reg)
	kv.RegisterTypes(reg)
	rt := pmop.NewRuntime(&cfg, poolBytes*2)
	p, err := rt.Create("bench", poolBytes, pageShift, reg)
	if err != nil {
		return nil, err
	}
	env := &Env{Cfg: cfg, RT: rt, Pool: p}
	env.Ctx = sim.NewCtx(&env.Cfg)
	return env, nil
}

// BuildStore constructs a named store (the §6 workloads).
func BuildStore(ctx *sim.Ctx, p *pmop.Pool, name string, wl workload.Config) (ds.Store, error) {
	switch name {
	case "LL":
		return ds.NewList(ctx, p)
	case "AVL":
		return ds.NewAVL(ctx, p)
	case "SS":
		slots := wl.InitInserts + 16
		return ds.NewStringStore(ctx, p, slots)
	case "BT":
		return ds.NewBPTree(ctx, p)
	case "RBT":
		return ds.NewRBTree(ctx, p)
	case "BzTree":
		return ds.NewBzTree(ctx, p)
	case "FPTree":
		return ds.NewFPTree(ctx, p)
	case "Echo":
		return kv.NewEcho(ctx, p, wl.InitInserts/4+64)
	case "pmemkv":
		return kv.NewPmemKV(ctx, p, wl.InitInserts/4+64)
	}
	return nil, fmt.Errorf("experiments: unknown store %q", name)
}

// Micros are the five §6 microbenchmarks.
var Micros = []string{"LL", "AVL", "SS", "BT", "RBT"}

// Spec describes one measured run.
type Spec struct {
	Store     string
	Threads   int
	Scheme    core.Scheme
	Trigger   float64
	Target    float64
	Scale     float64
	PageShift uint
	Seed      int64
}

// Outcome is the measurement of one run.
type Outcome struct {
	Spec           Spec
	AvgFootprintMB float64
	AvgLiveMB      float64
	TotalOps       int
	// Cycle attribution, merged across application and GC threads.
	Cycles [sim.NumCategories]uint64
	Engine core.EngineStats
	// Device traffic over the whole run (PM write endurance, §3.3.3's
	// "fewer PM writes" claim).
	Device pmem.Stats
}

// AppCycles is application work including read-barrier costs charged to GC
// categories on the app thread.
func (o Outcome) AppCycles() uint64 { return o.Cycles[sim.CatApp] }

// GCCycles is all defragmentation work.
func (o Outcome) GCCycles() uint64 {
	return o.Cycles[sim.CatMark] + o.Cycles[sim.CatSummary] + o.Cycles[sim.CatCopy] +
		o.Cycles[sim.CatCheckLookup] + o.Cycles[sim.CatGCMisc]
}

// TotalCycles is everything.
func (o Outcome) TotalCycles() uint64 { return o.AppCycles() + o.GCCycles() }

// FragRatio is footprint over live.
func (o Outcome) FragRatio() float64 {
	if o.AvgLiveMB == 0 {
		return 0
	}
	return o.AvgFootprintMB / o.AvgLiveMB
}

// wlFor builds the workload config for a spec.
func wlFor(spec Spec) workload.Config {
	// Scaled() multiplies the default (which is DefaultScale of the paper's
	// 5M-insert setup), so convert the paper-relative factor.
	wl := workload.Scaled(spec.Scale / DefaultScale)
	wl.Seed = spec.Seed + 1
	// Keep ~40 maintenance ticks per phase regardless of scale.
	wl.SampleEvery = wl.PhaseOps / 40
	if wl.SampleEvery < 25 {
		wl.SampleEvery = 25
	}
	if spec.Store == "SS" {
		wl.KeyCap = uint64(wl.InitInserts + 16)
		wl.ValueJitter = 64 // string swap exercises varied sizes
	}
	return wl
}

// poolSizeFor picks a pool comfortably larger than the workload's peak.
func poolSizeFor(wl workload.Config) uint64 {
	// Peak live ≈ InitInserts × (value+node+header overheads ≈ 280 B),
	// fragmentation can triple it; PMFT metadata adds ~8 %.
	need := uint64(wl.InitInserts+wl.PhaseOps) * 512 * 4
	if need < 16<<20 {
		need = 16 << 20
	}
	return need
}

// Host-side fan-out runs on the process-wide worker pool shared with the
// fault-injection campaign (internal/workpool). Every Run builds its own Env
// (device, pool, runtime), so runs are hermetic; the pool size changes host
// wall-clock only, never a simulated result. Defaults to GOMAXPROCS,
// overridable with the FFCCD_PARALLEL environment variable or
// SetParallelism.

// SetParallelism sets the shared pool's worker count (values < 1 mean
// serial).
func SetParallelism(n int) { workpool.SetParallelism(n) }

// Parallelism returns the shared pool's current worker count.
func Parallelism() int { return workpool.Parallelism() }

// RunSpecs executes every spec, fanning them out across Parallelism()
// workers, and returns the outcomes in spec order (the output is
// deterministic regardless of worker count). The first error in spec order
// is returned.
func RunSpecs(specs []Spec) ([]Outcome, error) {
	outs := make([]Outcome, len(specs))
	err := parallelFor(len(specs), func(i int) error {
		var err error
		outs[i], err = Run(specs[i])
		return err
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// parallelFor runs f(0..n-1) on the shared worker pool and returns the first
// error in index order. It is the fan-out primitive for experiments whose
// units of work are not plain Specs (custom envs, multi-run series); nested
// calls — the fork driver fans a group's schemes out from inside the
// per-cell fan-out — share the pool's slots instead of oversubscribing.
func parallelFor(n int, f func(i int) error) error {
	return workpool.ForEach(n, f)
}

// Run executes one spec and returns its outcome.
func Run(spec Spec) (Outcome, error) {
	wl := wlFor(spec)
	env, err := NewEnv(poolSizeFor(wl), spec.PageShift)
	if err != nil {
		return Outcome{}, err
	}
	if spec.Threads <= 1 {
		// The whole run — workload, hooks and engine stepping — executes on
		// one goroutine, so the device's internal locking can be elided.
		env.RT.Device().SetExclusive(true)
	}
	store, err := BuildStore(env.Ctx, env.Pool, spec.Store, wl)
	if err != nil {
		return Outcome{}, err
	}

	var eng *core.Engine
	gcCtx := sim.NewCtx(&env.Cfg)
	obs := newRunObs(spec, "", env.RT.Device(), env.Ctx, gcCtx)
	if spec.Scheme != core.SchemeNone {
		opt := core.Options{
			Scheme:       spec.Scheme,
			TriggerRatio: spec.Trigger,
			TargetRatio:  spec.Target,
			BatchObjects: 64,
			Obs:          obs,
		}
		eng = core.NewEngine(env.Pool, opt)
		// Deterministic concurrency: the maintenance tick starts an epoch
		// when fragmentation crosses the trigger, then advances background
		// compaction a batch at a time between application operations, so
		// application D_RW traffic runs through the read barrier while
		// relocation is in flight — the paper's concurrent regime without
		// scheduler nondeterminism.
		// Epochs span exactly one inter-tick window: BeginCycle after one
		// sample, complete before the next. Application D_RW traffic inside
		// the window runs through the read barrier (relocating hot objects
		// on demand); footprint samples always see quiesced state.
		// epochMu serialises the tick protocol when several workload threads
		// run it concurrently (every thread finishes an open epoch before
		// sampling, so footprint samples always see quiesced state; only
		// thread 0 begins epochs — see runConcurrent).
		var epochMu sync.Mutex
		epochOpen := false
		wl.PreSample = func() {
			epochMu.Lock()
			defer epochMu.Unlock()
			if epochOpen {
				eng.StepCompaction(gcCtx, 1<<30)
				eng.FinishCycle(gcCtx)
				epochOpen = false
			}
		}
		wl.Maintenance = func() {
			epochMu.Lock()
			defer epochMu.Unlock()
			if !epochOpen && env.Pool.Heap().Frag(spec.PageShift).FragRatio > spec.Trigger {
				epochOpen = eng.BeginCycle(gcCtx)
			}
		}
	}

	registerRunGroups(obs, env.Ctx, gcCtx, eng)

	var res workload.Result
	if spec.Threads <= 1 {
		res, err = workload.Run(env.Ctx, env.Pool, store, wl)
	} else {
		res, err = runConcurrent(env, store, wl, spec.Threads)
	}
	if err != nil {
		return Outcome{}, err
	}
	out := assembleOutcome(spec, res, env.Ctx, gcCtx, eng, env.RT.Device())
	env.RT.Device().ReleaseMedia()
	return out, nil
}

// assembleOutcome builds the result record from a finished workload: app and
// GC clocks merged, engine stats captured (and the engine closed), device
// counters read. Shared by the scratch and fork paths so their outcome
// assembly stays identical.
func assembleOutcome(spec Spec, res workload.Result, appCtx, gcCtx *sim.Ctx, eng *core.Engine, dev *pmem.Device) Outcome {
	out := Outcome{
		Spec:           spec,
		AvgFootprintMB: res.AvgFootprint / (1 << 20),
		AvgLiveMB:      res.AvgLive / (1 << 20),
		TotalOps:       res.TotalOps + res.Phases[0].Ops,
	}
	clk := sim.NewClock()
	clk.Merge(appCtx.Clock)
	clk.Merge(gcCtx.Clock)
	if eng != nil {
		clk.Merge(eng.GCClock())
		out.Engine = eng.Stats()
		eng.Close()
	}
	out.Cycles = clk.Snapshot()
	out.Device = dev.Stats()
	return out
}

// runConcurrent drives the workload from several threads over disjoint key
// ranges; thread 0 owns the maintenance hook. Reported cycles are the merge
// of all thread clocks (total work; wall-clock shape is preserved because
// every thread executes the same op mix).
func runConcurrent(env *Env, store ds.Store, wl workload.Config, threads int) (workload.Result, error) {
	per := wl
	per.InitInserts = wl.InitInserts / threads
	per.PhaseOps = wl.PhaseOps / threads
	if wl.KeyCap > 0 {
		per.KeyCap = wl.KeyCap / uint64(threads)
	}

	results := make([]workload.Result, threads)
	errs := make([]error, threads)
	ctxs := make([]*sim.Ctx, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			c := sim.NewCtx(&env.Cfg)
			ctxs[tid] = c
			cfg := per
			cfg.Seed = wl.Seed + int64(tid)*101
			cfg.KeyBase = uint64(tid) << 40
			if tid != 0 {
				// Thread 0 owns Maintenance (epoch begin); every thread
				// keeps PreSample so open epochs are completed before any
				// thread samples the footprint. The hooks serialise on the
				// engine's epoch mutex (see Run).
				cfg.Maintenance = nil
			}
			results[tid], errs[tid] = workload.Run(c, env.Pool, store, cfg)
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return workload.Result{}, err
		}
	}
	// Merge: footprint/live sampled per-thread over the same pool; average
	// the per-thread averages. Cycles: merge into env.Ctx.
	var agg workload.Result
	agg.Phases = results[0].Phases
	for _, r := range results {
		agg.AvgFootprint += r.AvgFootprint / float64(threads)
		agg.AvgLive += r.AvgLive / float64(threads)
		agg.TotalOps += r.TotalOps
		agg.TotalCycles += r.TotalCycles
	}
	for _, c := range ctxs {
		env.Ctx.Clock.Merge(c.Clock)
	}
	return agg, nil
}
