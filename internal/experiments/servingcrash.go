package experiments

import (
	"fmt"
	"strings"

	"ffccd/internal/faultinject"
	"ffccd/internal/obsv"
	"ffccd/internal/redisws"
	"ffccd/internal/stats"
)

// ServingCrashOptions parameterizes the serving-availability grid: one
// mid-run power failure per scheme, with the full online
// crash-recovery-resume loop (durable-ack validation, degraded-mode
// admission, retry/backoff) and the post-recovery tail measured.
type ServingCrashOptions struct {
	Clients  int
	Ops      int
	Keyspace int
	Seed     int64
	Schemes  []string // subset of faultinject.ServeSchemes; nil = all

	// SiteFrac places the armed crash site as a fraction of the scheme's
	// census total (0 < f < 1; default 0.5 — the middle of the run).
	SiteFrac float64
	// WindowCycles is the time-series window width (0 = a volume-scaled
	// default small enough to resolve the recovery ramp).
	WindowCycles uint64
	// AdmitCap overrides the degraded-mode admission bound (0 = default).
	AdmitCap int

	// Shards runs each variant as a sharded deployment (0/1 = unsharded);
	// the crash blacks out shard CrashShard while its siblings keep serving,
	// so the grid also measures partial availability.
	Shards     int
	CrashShard int
}

// ServingCrashVariant is one scheme's crash-availability measurement.
type ServingCrashVariant struct {
	Name       string
	SitesTotal uint64 // census sites in the dispatch phase
	Site       int64  // armed site index
	CrashClass string // site class the crash fired in

	// Availability metrics, all in simulated cycles of the serving run's
	// virtual-time domain.
	CrashCycle     uint64
	ResumeCycle    uint64
	BlackoutCycles uint64
	TimeToFirstAck uint64
	// RampCycles is the post-recovery p999 ramp: cycles from resume until the
	// first window whose p999 is back within 2x the pre-crash median window
	// p999 (the full remaining tail if it never requalifies; 0 when no
	// window completed before the crash, so there is no baseline).
	// RampWindows counts the windows the ramp spans.
	RampCycles  uint64
	RampWindows int

	Retries  int // lost or rejected requests rescheduled with backoff
	Rejects  int // admission-queue rejections during the blackout
	Admitted int // requests parked in the bounded admission queue

	P999      float64 // whole-run p999 (crash included)
	SimCycles uint64

	// Series is the run's windowed time series with recovery/backoff overlay
	// intervals (rendered by ffccd-inspect -timeline). For a sharded variant
	// it is the deterministic merge and ShardSeries carries the per-shard
	// lanes.
	Series      *obsv.TimeSeries
	ShardSeries []*obsv.TimeSeries

	// Sharded-deployment fields (zero when Shards <= 1). SiblingOps counts
	// the completions sibling shards served inside the crashed shard's
	// blackout — the partial-availability measurement a sharded deployment
	// buys.
	Shards     int
	CrashShard int
	SiblingOps uint64
}

// ServingCrashResult is the whole grid.
type ServingCrashResult struct {
	Clients  int
	Ops      int
	Variants []ServingCrashVariant
}

func servingCrashDefaults(o ServingCrashOptions) ServingCrashOptions {
	if o.Clients <= 0 {
		o.Clients = faultinject.DefaultServeClients
	}
	if o.Ops <= 0 {
		o.Ops = faultinject.DefaultServeOps
	}
	if o.Keyspace <= 0 {
		o.Keyspace = faultinject.DefaultServeKeys
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	if len(o.Schemes) == 0 {
		o.Schemes = append([]string(nil), faultinject.ServeSchemes...)
	}
	if o.SiteFrac <= 0 || o.SiteFrac >= 1 {
		o.SiteFrac = 0.5
	}
	if o.WindowCycles == 0 {
		// ~64 windows over a trial-volume run; enough rows to see the
		// blackout gap and the ramp without drowning the timeline.
		o.WindowCycles = uint64(o.Ops) * 256
		if o.WindowCycles < 50_000 {
			o.WindowCycles = 50_000
		}
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.CrashShard < 0 || o.CrashShard >= o.Shards {
		o.CrashShard = 0
	}
	return o
}

// ServingCrash runs the availability grid: per scheme, a census pass counts
// the dispatch phase's crash sites, then an armed pass fires a power failure
// at SiteFrac of the census and measures the blackout, time-to-first-ack,
// degraded-mode admission and the post-recovery p999 ramp.
func ServingCrash(o ServingCrashOptions) (ServingCrashResult, error) {
	o = servingCrashDefaults(o)
	res := ServingCrashResult{Clients: o.Clients, Ops: o.Ops}
	outs := make([]ServingCrashVariant, len(o.Schemes))
	err := parallelFor(len(o.Schemes), func(i int) error {
		v, err := runServingCrashVariant(o.Schemes[i], o)
		outs[i] = v
		return err
	})
	if err != nil {
		return res, err
	}
	res.Variants = outs
	return res, nil
}

func runServingCrashVariant(scheme string, o ServingCrashOptions) (ServingCrashVariant, error) {
	base := faultinject.NewServeRepro(scheme, o.Seed)
	base.Clients, base.Ops, base.Keys = o.Clients, o.Ops, o.Keyspace
	base.Shards, base.Shard = o.Shards, o.CrashShard

	census, err := faultinject.RunServeScheduled(base, faultinject.ServeTrialOptions{})
	if err != nil {
		return ServingCrashVariant{}, fmt.Errorf("experiments.ServingCrash: %s census: %w", scheme, err)
	}
	// The armed site indexes the crash-target shard's own site space, which
	// for a sharded deployment is that shard's census, not the sum.
	total := census.Census.Total
	if o.Shards > 1 {
		total = census.ShardCensus[o.CrashShard].Total
	}
	if total == 0 {
		return ServingCrashVariant{}, fmt.Errorf("experiments.ServingCrash: %s: no crash sites in dispatch phase", scheme)
	}

	armed := base
	armed.Site = int64(float64(total) * o.SiteFrac)
	var series *obsv.TimeSeries
	var shardSeries []*obsv.TimeSeries
	topts := faultinject.ServeTrialOptions{AdmitCap: o.AdmitCap}
	if o.Shards > 1 {
		shardSeries = make([]*obsv.TimeSeries, o.Shards)
		for i := range shardSeries {
			shardSeries[i] = obsv.NewTimeSeries(scheme, o.WindowCycles, 0)
		}
		topts.ShardSeries = func(_ faultinject.ServeRepro, shard int) *obsv.TimeSeries {
			return shardSeries[shard]
		}
	} else {
		series = obsv.NewTimeSeries(scheme, o.WindowCycles, 0)
		topts.Series = func(faultinject.ServeRepro) *obsv.TimeSeries { return series }
	}
	out, err := faultinject.RunServeScheduled(armed, topts)
	if err != nil {
		return ServingCrashVariant{}, fmt.Errorf("experiments.ServingCrash: %s armed trial: %w\n  repro: %s",
			scheme, err, armed.Command())
	}
	if out.Crash == nil {
		return ServingCrashVariant{}, fmt.Errorf("experiments.ServingCrash: %s: armed site %d did not fire", scheme, armed.Site)
	}
	if o.Shards > 1 {
		if series, err = redisws.MergeShardSeries(scheme, o.WindowCycles, 0, shardSeries); err != nil {
			return ServingCrashVariant{}, fmt.Errorf("experiments.ServingCrash: %s: %w", scheme, err)
		}
	}

	sv := out.Serve
	v := ServingCrashVariant{
		Name:           scheme,
		SitesTotal:     total,
		Site:           armed.Site,
		CrashClass:     out.Crash.Class.String(),
		CrashCycle:     sv.CrashCycle,
		ResumeCycle:    sv.ResumeCycle,
		BlackoutCycles: sv.BlackoutCycles,
		TimeToFirstAck: sv.TimeToFirstAck,
		Retries:        sv.Retries,
		Rejects:        sv.Rejects,
		Admitted:       sv.Admitted,
		P999:           sv.Lat.Percentile(99.9),
		SimCycles:      sv.SimCycles,
		Series:         series,
		ShardSeries:    shardSeries,
		Shards:         o.Shards,
		CrashShard:     o.CrashShard,
	}
	if o.Shards > 1 {
		v.SiblingOps = siblingOpsInBlackout(shardSeries, o.CrashShard, sv.CrashCycle, sv.ResumeCycle)
	}
	if v.Series != nil {
		v.RampCycles, v.RampWindows = p999Ramp(v.Series.Windows(), sv.CrashCycle, sv.ResumeCycle)
	}
	return v, nil
}

// siblingOpsInBlackout counts the completions the non-crashed shards served
// in windows overlapping [crash, resume) — the work the deployment kept doing
// while one machine was dark.
func siblingOpsInBlackout(shardSeries []*obsv.TimeSeries, crashShard int, crash, resume uint64) uint64 {
	var ops uint64
	for s, ts := range shardSeries {
		if s == crashShard || ts == nil {
			continue
		}
		for _, w := range ts.Windows() {
			if w.Start < resume && w.End > crash {
				ops += w.Count
			}
		}
	}
	return ops
}

// p999Ramp measures how long the tail stays degraded after a resume: the
// cycles from resume until the end of the first window at-or-after resume
// whose p999 is within 2x the median p999 of the fully-pre-crash windows.
// Returns the cycles and the number of windows the ramp spans; if no window
// requalifies, the ramp runs to the last window's end.
func p999Ramp(wins []obsv.WindowSnap, crash, resume uint64) (uint64, int) {
	var pre []uint64
	for _, w := range wins {
		if w.End <= crash && w.Count > 0 {
			pre = append(pre, w.P999)
		}
	}
	if len(pre) == 0 {
		return 0, 0
	}
	// wins is sorted by window index; median of the pre-crash p999s.
	sorted := append([]uint64(nil), pre...)
	for i := 1; i < len(sorted); i++ { // insertion sort: short slice
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	baseline := sorted[len(sorted)/2]
	threshold := 2 * baseline

	ramp, n := uint64(0), 0
	seen := false
	for _, w := range wins {
		if w.End <= resume || w.Count == 0 {
			continue
		}
		seen = true
		n++
		ramp = w.End - resume
		if w.P999 <= threshold {
			return ramp, n
		}
	}
	if !seen {
		return 0, 0
	}
	return ramp, n
}

func (r ServingCrashResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ServingCrash — availability under one mid-run power failure: %d clients, %d ops\n",
		r.Clients, r.Ops)
	t := stats.NewTable("scheme", "sites", "site", "class", "blackout(cyc)",
		"ttfa(cyc)", "ramp(cyc)", "retries", "rejects", "admitted", "p999(cyc)")
	for _, v := range r.Variants {
		t.Add(v.Name, v.SitesTotal, v.Site, v.CrashClass, v.BlackoutCycles,
			v.TimeToFirstAck, v.RampCycles, v.Retries, v.Rejects, v.Admitted, v.P999)
	}
	b.WriteString(t.String())
	for _, v := range r.Variants {
		if v.Shards > 1 {
			fmt.Fprintf(&b, "%s: %d shards, crash on shard %d; siblings served %d ops during the blackout\n",
				v.Name, v.Shards, v.CrashShard, v.SiblingOps)
		}
	}
	for _, v := range r.Variants {
		if v.Series == nil || v.Series.Count() == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nper-window p999 — %s (crash@%d, resume@%d):\n", v.Name, v.CrashCycle, v.ResumeCycle)
		b.WriteString(obsv.RenderTimeline(v.Series, 40))
	}
	return b.String()
}

// Metrics flattens the grid for benchmark records.
func (r ServingCrashResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"servingcrash.clients": float64(r.Clients),
		"servingcrash.ops":     float64(r.Ops),
	}
	var total uint64
	for _, v := range r.Variants {
		k := "servingcrash." + v.Name + "."
		m[k+"sites_total"] = float64(v.SitesTotal)
		m[k+"blackout_cycles"] = float64(v.BlackoutCycles)
		m[k+"time_to_first_ack_cycles"] = float64(v.TimeToFirstAck)
		m[k+"ramp_cycles"] = float64(v.RampCycles)
		m[k+"ramp_windows"] = float64(v.RampWindows)
		m[k+"retries"] = float64(v.Retries)
		m[k+"rejects"] = float64(v.Rejects)
		m[k+"admitted"] = float64(v.Admitted)
		m[k+"p999_cycles"] = v.P999
		m[k+"sim_cycles"] = float64(v.SimCycles)
		if v.Shards > 1 {
			m["servingcrash.shards"] = float64(v.Shards)
			m[k+"sibling_ops_in_blackout"] = float64(v.SiblingOps)
		}
		total += v.SimCycles
	}
	m["sim_cycles_total"] = float64(total)
	return m
}
