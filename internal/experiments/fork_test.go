package experiments

import (
	"fmt"
	"math/rand"
	"testing"

	"ffccd/internal/core"
)

// sameSimulatedMachine fails the test unless two outcomes agree on every
// simulated observable the golden contract pins: per-category cycle totals,
// device counters, engine counters, op counts and frag ratios. Engine
// counters match because the fork driver folds the prefix engine's
// pre-divergence bookkeeping (failed-attempt leak reclamation) into each
// forked outcome.
func sameSimulatedMachine(t *testing.T, label string, scratch, fork Outcome) {
	t.Helper()
	if scratch.Cycles != fork.Cycles {
		t.Errorf("%s: cycle totals diverge\n  scratch %v\n  fork    %v", label, scratch.Cycles, fork.Cycles)
	}
	if scratch.Device != fork.Device {
		t.Errorf("%s: device counters diverge\n  scratch %+v\n  fork    %+v", label, scratch.Device, fork.Device)
	}
	if scratch.Engine != fork.Engine {
		t.Errorf("%s: engine counters diverge\n  scratch %+v\n  fork    %+v", label, scratch.Engine, fork.Engine)
	}
	if scratch.TotalOps != fork.TotalOps {
		t.Errorf("%s: total ops diverge: %d vs %d", label, scratch.TotalOps, fork.TotalOps)
	}
	if scratch.AvgFootprintMB != fork.AvgFootprintMB || scratch.AvgLiveMB != fork.AvgLiveMB {
		t.Errorf("%s: footprint diverges: %v/%v vs %v/%v", label,
			scratch.AvgFootprintMB, scratch.AvgLiveMB, fork.AvgFootprintMB, fork.AvgLiveMB)
	}
}

// TestForkMatchesScratch is the randomized property test for the fork
// driver: for arbitrary (store, scheme, scale, seed, trigger, page size)
// specs, running the workload through buildPrefix+runFork must be
// bit-identical to running it from scratch.
func TestForkMatchesScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	stores := []string{"LL", "AVL", "SS", "BT", "RBT", "BzTree", "FPTree", "Echo", "pmemkv"}
	schemes := []core.Scheme{core.SchemeEspresso, core.SchemeSFCCD,
		core.SchemeFFCCD, core.SchemeFFCCDCheckLookup}
	rng := rand.New(rand.NewSource(20260805))
	const cases = 10
	for n := 0; n < cases; n++ {
		spec := Spec{
			Store:     stores[rng.Intn(len(stores))],
			Threads:   1,
			Scheme:    schemes[rng.Intn(len(schemes))],
			Scale:     []float64{0.001, 0.002}[rng.Intn(2)],
			PageShift: []uint{12, 14}[rng.Intn(2)],
			Seed:      int64(rng.Intn(1000)),
		}
		if rng.Intn(2) == 0 {
			spec.Trigger, spec.Target = core.NormalParams()
		} else {
			spec.Trigger, spec.Target = core.RelaxedParams()
		}
		name := fmt.Sprintf("%s_%s_s%g_sh%d_seed%d_t%g",
			spec.Store, spec.Scheme, spec.Scale, spec.PageShift, spec.Seed, spec.Trigger)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			scratch, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			fork, err := runForked(spec)
			if err != nil {
				t.Fatal(err)
			}
			sameSimulatedMachine(t, name, scratch, fork)
		})
	}
}

// TestRunSpecsForkedMatchesRunSpecs pins the grouped driver end to end: a
// breakdown-shaped grid (baseline + full scheme axis per cell) must come
// back in spec order with every outcome bit-identical to the scratch
// driver's, and must actually have exercised the fork path.
func TestRunSpecsForkedMatchesRunSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var specs []Spec
	for _, store := range []string{"LL", "SS"} {
		base := Spec{Store: store, Threads: 1, Scheme: core.SchemeNone,
			Scale: 0.002, PageShift: 12, Seed: 11}
		specs = append(specs, base)
		for _, scheme := range allSchemes {
			s := base
			s.Scheme = scheme
			s.Trigger, s.Target = core.NormalParams()
			specs = append(specs, s)
		}
	}
	scratch, err := RunSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	ResetForkCounters()
	forked, err := RunSpecsForked(specs)
	if err != nil {
		t.Fatal(err)
	}
	prefixes, checkpoints, forks := ForkCounters()
	if len(forked) != len(specs) {
		t.Fatalf("got %d outcomes for %d specs", len(forked), len(specs))
	}
	for i := range specs {
		if forked[i].Spec != specs[i] {
			t.Errorf("outcome %d carries spec %+v, want %+v", i, forked[i].Spec, specs[i])
		}
		sameSimulatedMachine(t, fmt.Sprintf("spec %d (%s/%s)", i, specs[i].Store, specs[i].Scheme),
			scratch[i], forked[i])
	}
	// Both cells' scheme axes group; whether each group forks or completes
	// its prefix depends on the workload, but prefixes must have been built.
	if prefixes != 2 {
		t.Errorf("prefixes built = %d, want 2", prefixes)
	}
	t.Logf("fork counters: prefixes=%d checkpoints=%d forks=%d", prefixes, checkpoints, forks)
}

// TestForkDisabledFallsBack checks that SetFork(false) routes everything
// through the scratch driver.
func TestForkDisabledFallsBack(t *testing.T) {
	SetFork(false)
	defer SetFork(true)
	if ForkEnabled() {
		t.Fatal("ForkEnabled after SetFork(false)")
	}
	spec := Spec{Store: "LL", Threads: 1, Scheme: core.SchemeEspresso,
		Scale: 0.001, PageShift: 12, Seed: 3}
	spec.Trigger, spec.Target = core.NormalParams()
	ResetForkCounters()
	if _, err := RunSpecsForked([]Spec{spec, spec}); err != nil {
		t.Fatal(err)
	}
	if p, c, f := ForkCounters(); p != 0 || c != 0 || f != 0 {
		t.Errorf("fork counters moved while disabled: %d/%d/%d", p, c, f)
	}
}
