package experiments

import (
	"fmt"
	"strings"

	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
	"ffccd/internal/stats"
	"ffccd/internal/workload"
)

// AblationRBBRow is one RBB-size data point.
type AblationRBBRow struct {
	Entries    int
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	GCCycles   uint64
}

// AblationRBBResult sweeps the Reached Bitmap Buffer size (DESIGN.md §4
// ablation: reached-bitmap write-back traffic vs buffer capacity).
type AblationRBBResult struct{ Rows []AblationRBBRow }

// AblationRBB runs the LL workload under FFCCD with varying RBB entry
// counts, reporting the buffer's hit/miss/write-back behaviour.
func AblationRBB(scale float64, sizes []int) (AblationRBBResult, error) {
	var res AblationRBBResult
	rows := make([]AblationRBBRow, len(sizes))
	err := parallelFor(len(sizes), func(i int) error {
		entries := sizes[i]
		wl := workload.Scaled(scale / DefaultScale)
		wl.Seed = 21

		cfg := sim.DefaultConfig()
		cfg.RBBEntries = entries
		reg := pmop.NewRegistry()
		ds.RegisterTypes(reg)
		rt := pmop.NewRuntime(&cfg, poolSizeFor(wl)*2)
		p, err := rt.Create("ablation", poolSizeFor(wl), 12, reg)
		if err != nil {
			return err
		}
		ctx := sim.NewCtx(&cfg)
		store, err := ds.NewList(ctx, p)
		if err != nil {
			return err
		}
		tr, tg := core.NormalParams()
		eng := core.NewEngine(p, core.Options{Scheme: core.SchemeFFCCD, TriggerRatio: tr, TargetRatio: tg, BatchObjects: 64})
		gcCtx := sim.NewCtx(&cfg)
		wl.Maintenance = func() {
			if p.Heap().Frag(12).FragRatio > tr {
				eng.RunCycle(gcCtx)
			}
		}
		if _, err := workload.Run(ctx, p, store, wl); err != nil {
			return err
		}
		rbb := eng.RBB()
		row := AblationRBBRow{Entries: entries, GCCycles: gcCtx.Clock.GCTotal()}
		if rbb != nil {
			row.Hits, row.Misses, row.Writebacks = rbb.Hits, rbb.Misses, rbb.Writebacks
		}
		eng.Close()
		rows[i] = row
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

func (r AblationRBBResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation — Reached Bitmap Buffer size (LL workload, FFCCD)")
	t := stats.NewTable("RBB entries", "hits", "misses", "writebacks", "gc cycles")
	for _, row := range r.Rows {
		t.Add(row.Entries, row.Hits, row.Misses, row.Writebacks, row.GCCycles)
	}
	b.WriteString(t.String())
	return b.String()
}

// AblationPMFTRow compares forwarding-lookup models.
type AblationPMFTRow struct {
	Model          string
	CyclesPerCheck float64
	SpacePct       float64 // persistent space over relocation-page size
}

// AblationPMFTResult compares the PMFT (major+minor distance, hardware-
// friendly) against a hashed forwarding table model (§4.3.1's discarded
// alternative) on check+lookup cost per barrier event.
type AblationPMFTResult struct{ Rows []AblationPMFTRow }

// AblationPMFT measures the check+lookup cycles per D_RW during compaction
// for the software PMFT walk (FFCCD), the hardware checklookup
// (FFCCD+BFC/PMFTLB), and an Espresso-style table, on the LL workload.
func AblationPMFT(scale float64) (AblationPMFTResult, error) {
	var res AblationPMFTResult
	models := []struct {
		name   string
		scheme core.Scheme
		space  float64
	}{
		{"software table walk (Espresso-style)", core.SchemeEspresso, 3.2},
		{"PMFT, software walk (FFCCD)", core.SchemeFFCCD, 6.32},
		{"PMFT + BFC/PMFTLB (checklookup)", core.SchemeFFCCDCheckLookup, 6.32},
	}
	specs := make([]Spec, len(models))
	for i, m := range models {
		specs[i] = Spec{Store: "LL", Threads: 1, Scheme: m.scheme, Scale: scale, PageShift: 12, Seed: 31}
		specs[i].Trigger, specs[i].Target = core.NormalParams()
	}
	outs, err := RunSpecsForked(specs)
	if err != nil {
		return res, err
	}
	for i, m := range models {
		out := outs[i]
		// Normalise check+lookup cycles per application operation.
		per := float64(out.Cycles[sim.CatCheckLookup]) / float64(out.TotalOps)
		res.Rows = append(res.Rows, AblationPMFTRow{Model: m.name, CyclesPerCheck: per, SpacePct: m.space})
	}
	return res, nil
}

func (r AblationPMFTResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation — forwarding-table design (check+lookup cost per op)")
	t := stats.NewTable("model", "cycles/op", "space (% of reloc pages)")
	for _, row := range r.Rows {
		t.Add(row.Model, row.CyclesPerCheck, row.SpacePct)
	}
	b.WriteString(t.String())
	return b.String()
}

// AblationWritesRow is one scheme's PM traffic.
type AblationWritesRow struct {
	Scheme        core.Scheme
	MediaWrites   uint64 // lines written to PM media
	Clwbs         uint64
	Sfences       uint64
	ObjectsMoved  uint64
	WritesPerMove float64
}

// AblationWritesResult compares persistent-memory write traffic across the
// schemes — the §3.3.3 endurance argument: the fence-free design "incurs
// fewer PM writes (good for performance and write endurance) while the
// cacheline remains available in the cache for future reuse".
type AblationWritesResult struct {
	Baseline AblationWritesRow // SchemeNone traffic for reference
	Rows     []AblationWritesRow
}

// AblationWrites measures device write traffic for the LL workload under
// every scheme.
func AblationWrites(scale float64) (AblationWritesResult, error) {
	var res AblationWritesResult
	schemes := []core.Scheme{core.SchemeNone, core.SchemeEspresso, core.SchemeSFCCD,
		core.SchemeFFCCD, core.SchemeFFCCDCheckLookup}
	specs := make([]Spec, len(schemes))
	for i, scheme := range schemes {
		specs[i] = Spec{Store: "LL", Threads: 1, Scheme: scheme, Scale: scale, PageShift: 12, Seed: 41}
		specs[i].Trigger, specs[i].Target = core.NormalParams()
	}
	outs, err := RunSpecsForked(specs)
	if err != nil {
		return res, err
	}
	for i, scheme := range schemes {
		out := outs[i]
		row := AblationWritesRow{
			Scheme:       scheme,
			MediaWrites:  out.Device.MediaWrites,
			Clwbs:        out.Device.Clwbs,
			Sfences:      out.Device.Sfences,
			ObjectsMoved: out.Engine.ObjectsMoved,
		}
		if row.ObjectsMoved > 0 {
			row.WritesPerMove = float64(row.MediaWrites-res.Baseline.MediaWrites) / float64(row.ObjectsMoved)
		}
		if scheme == core.SchemeNone {
			res.Baseline = row
			continue
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r AblationWritesResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation — PM write traffic per scheme (LL workload)")
	t := stats.NewTable("scheme", "media writes", "clwbs", "sfences", "objects moved", "extra writes/move")
	t.Add("baseline (no GC)", r.Baseline.MediaWrites, r.Baseline.Clwbs, r.Baseline.Sfences, "-", "-")
	for _, row := range r.Rows {
		t.Add(row.Scheme.String(), row.MediaWrites, row.Clwbs, row.Sfences, row.ObjectsMoved, row.WritesPerMove)
	}
	b.WriteString(t.String())
	return b.String()
}
