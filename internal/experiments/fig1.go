package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/kv"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
	"ffccd/internal/stats"
)

// Fig1Run is one run of the Figure 1 experiment.
type Fig1Run struct {
	Run           int
	FragR         float64
	ThroughputRel float64 // normalised to run 1 = 100
}

// Fig1Result holds the Figure 1 series per page configuration.
type Fig1Result struct {
	Series map[string][]Fig1Run // "4KB" and "2MB(scaled)"
}

// Figure1 reproduces Fig. 1: PM fragmentation worsens across three
// consecutive runs of Echo without defragmentation — the fragmentation ratio
// grows and throughput declines. The paper's 2 MB huge pages are represented
// by a scaled page size (64 KB) so the pages-per-live-data ratio matches the
// scaled-down workload; see EXPERIMENTS.md.
func Figure1(scale float64) (Fig1Result, error) {
	res := Fig1Result{Series: map[string][]Fig1Run{}}
	configs := []struct {
		name  string
		shift uint
	}{{"4KB", 12}, {"2MB(scaled)", 16}}
	series := make([][]Fig1Run, len(configs))
	// The three runs of one page config share a device and must stay
	// sequential; the two page configs are independent machines.
	err := parallelFor(len(configs), func(i int) error {
		runs, err := figure1Runs(scale, configs[i].shift)
		series[i] = runs
		return err
	})
	if err != nil {
		return res, err
	}
	for i, pc := range configs {
		res.Series[pc.name] = series[i]
	}
	return res, nil
}

func figure1Runs(scale float64, pageShift uint) ([]Fig1Run, error) {
	n := int(5_000_000 * scale)
	if n < 1000 {
		n = 1000
	}
	churnOps := n * 4 / 5 // the paper churns 4M of 5M objects per run

	env, err := NewEnv(uint64(n)*512*4+(16<<20), pageShift)
	if err != nil {
		return nil, err
	}
	dev := env.RT.Device()
	cfgCopy := env.Cfg
	// Figure 1 measures the throughput cost of a bloated footprint on real
	// Optane, where TLB misses trigger page-table walks in PM; the pure
	// Table 2 penalty (60 cycles) models only the simulator's TLB. Charge
	// the walk's PM read here (see EXPERIMENTS.md).
	cfgCopy.TLBWalkPenaltyExtra = cfgCopy.PMReadLatency

	// Persistent driver state across runs (the application's own knowledge).
	rng := rand.New(rand.NewSource(7))
	var live []uint64
	nextKey := uint64(0)
	val := func(k uint64) []byte {
		// WHISPER's Echo stores variable-sized values; mismatched hole sizes
		// are what make fragmentation accumulate across runs.
		b := make([]byte, 64+int(k*37%160))
		for i := range b {
			b[i] = byte(k) + byte(i)
		}
		return b
	}

	var out []Fig1Run
	pool := env.Pool
	for run := 1; run <= 3; run++ {
		ctx := sim.NewCtx(&cfgCopy)
		// Type ids are assigned in registration order, so every run must
		// register the same set in the same order (the cross-run analogue
		// of keeping C struct declarations stable).
		reg := pmop.NewRegistry()
		ds.RegisterTypes(reg)
		kv.RegisterTypes(reg)
		if run > 1 {
			rt, err := pmop.Attach(&cfgCopy, dev)
			if err != nil {
				return nil, err
			}
			pool, err = rt.Open("bench", reg)
			if err != nil {
				return nil, err
			}
			// Clean reopen: rebuild the allocator (no defragmentation).
			eng, err := core.Recover(ctx, pool, core.Options{Scheme: core.SchemeNone})
			if err != nil {
				return nil, err
			}
			eng.Close()
		}
		store, err := kv.NewEcho(ctx, pool, n/4+64)
		if err != nil {
			return nil, err
		}

		ops := 0
		var footSum, liveSum float64
		samples := 0
		sample := func() {
			st := pool.Heap().Frag(pageShift)
			footSum += float64(st.FootprintBytes)
			liveSum += float64(st.LiveBytes)
			samples++
		}
		insert := func() error {
			k := nextKey
			nextKey++
			if err := store.Insert(ctx, k, val(k)); err != nil {
				return err
			}
			live = append(live, k)
			ops++
			return nil
		}
		remove := func() error {
			if len(live) == 0 {
				return nil
			}
			i := rng.Intn(len(live))
			k := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if _, err := store.Delete(ctx, k); err != nil {
				return err
			}
			ops++
			return nil
		}

		if run == 1 {
			// Initial population is setup, not measured (it has a different
			// op mix from the steady-state churn the figure compares).
			for i := 0; i < n; i++ {
				if err := insert(); err != nil {
					return nil, err
				}
			}
			ops = 0
		}
		// Measured churn: delete then reinsert — each run inherits and
		// worsens the previous run's fragmentation.
		start := ctx.Clock.Total()
		for i := 0; i < churnOps; i++ {
			if err := remove(); err != nil {
				return nil, err
			}
			if i%500 == 0 {
				sample()
			}
		}
		for i := 0; i < churnOps; i++ {
			if err := insert(); err != nil {
				return nil, err
			}
			if i%500 == 0 {
				sample()
			}
		}
		sample()

		cycles := ctx.Clock.Total() - start
		thr := float64(ops) / float64(cycles)
		out = append(out, Fig1Run{Run: run, FragR: footSum / liveSum, ThroughputRel: thr})

		// Clean shutdown persists everything for the next run.
		dev.FlushAll(ctx)
	}
	// Normalise throughput to run 1 = 100.
	base := out[0].ThroughputRel
	for i := range out {
		out[i].ThroughputRel = out[i].ThroughputRel / base * 100
	}
	return out, nil
}

func (r Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 1 — PM fragmentation across runs of Echo (no defragmentation)")
	for _, name := range []string{"4KB", "2MB(scaled)"} {
		t := stats.NewTable("pages", "run", "fragR", "throughput(%)")
		for _, r := range r.Series[name] {
			t.Add(name, r.Run, r.FragR, r.ThroughputRel)
		}
		b.WriteString(t.String())
	}
	return b.String()
}
