package experiments

import (
	"fmt"
	"strings"

	"ffccd/internal/arch"
	"ffccd/internal/core"
	"ffccd/internal/sim"
	"ffccd/internal/stats"
)

// Table3Row is one microbenchmark line of Table 3.
type Table3Row struct {
	Store         string
	PMDKMB        float64 // baseline footprint
	ActualMB      float64 // live data
	OursNormalMB  float64
	OursRelaxedMB float64
	ReductionN    float64
	ReductionR    float64
}

// Table3Result is the whole table.
type Table3Result struct{ Rows []Table3Row }

// tableSeeds are the seeds each Table 3/4 cell is averaged over (single
// runs at small scale are noisy).
var tableSeeds = []int64{3, 109, 271}

// seededSpecs expands spec into one copy per table seed. averageOutcomes
// merges the corresponding outcomes back into one averaged cell; the split
// lets a whole table's runs fan out through RunSpecs at once.
func seededSpecs(spec Spec) []Spec {
	specs := make([]Spec, len(tableSeeds))
	for i, seed := range tableSeeds {
		specs[i] = spec
		specs[i].Seed = seed
	}
	return specs
}

func averageOutcomes(outs []Outcome) Outcome {
	var agg Outcome
	for _, out := range outs {
		agg.Spec = out.Spec
		agg.AvgFootprintMB += out.AvgFootprintMB / float64(len(outs))
		agg.AvgLiveMB += out.AvgLiveMB / float64(len(outs))
		agg.TotalOps += out.TotalOps
		agg.Engine.Cycles += out.Engine.Cycles
		agg.Engine.ObjectsMoved += out.Engine.ObjectsMoved
	}
	return agg
}

// Table3 reproduces Table 3: fragmentation effectiveness on the five
// microbenchmarks with Normal (1.5→1.25) and Relaxed (1.7→1.5) parameters.
// The paper reports 2 MB pages; the scaled runs use a proportionally scaled
// 64 KB huge page (see EXPERIMENTS.md). Each cell averages three seeds.
func Table3(scale float64) (Table3Result, error) {
	var res Table3Result
	const pageShift = 16 // scaled stand-in for 2 MB pages
	// Three averaged cells (baseline, Normal, Relaxed) of three seeded runs
	// each, per store — all 9×len(Micros) runs fan out together.
	var specs []Spec
	for _, store := range Micros {
		base := Spec{Store: store, Threads: 1, Scheme: core.SchemeNone, Scale: scale, PageShift: pageShift}
		normal := base
		normal.Scheme = core.SchemeFFCCDCheckLookup
		normal.Trigger, normal.Target = core.NormalParams()
		relaxed := normal
		relaxed.Trigger, relaxed.Target = core.RelaxedParams()
		specs = append(specs, seededSpecs(base)...)
		specs = append(specs, seededSpecs(normal)...)
		specs = append(specs, seededSpecs(relaxed)...)
	}
	outs, err := RunSpecsForked(specs)
	if err != nil {
		return res, err
	}
	ns := len(tableSeeds)
	for i, store := range Micros {
		cell := outs[i*3*ns:]
		baseOut := averageOutcomes(cell[:ns])
		nOut := averageOutcomes(cell[ns : 2*ns])
		rOut := averageOutcomes(cell[2*ns : 3*ns])
		res.Rows = append(res.Rows, Table3Row{
			Store:         store,
			PMDKMB:        baseOut.AvgFootprintMB,
			ActualMB:      baseOut.AvgLiveMB,
			OursNormalMB:  nOut.AvgFootprintMB,
			OursRelaxedMB: rOut.AvgFootprintMB,
			ReductionN:    fragReduction(baseOut, nOut),
			ReductionR:    fragReduction(baseOut, rOut),
		})
	}
	return res, nil
}

func (r Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 3 — fragmentation effectiveness (microbenchmarks)")
	t := stats.NewTable("prog", "PMDK(MB)", "Actual(MB)", "Ours-N(MB)", "Ours-R(MB)", "Red-N(%)", "Red-R(%)")
	var sums [6]float64
	for _, row := range r.Rows {
		t.Add(row.Store, row.PMDKMB, row.ActualMB, row.OursNormalMB, row.OursRelaxedMB, row.ReductionN, row.ReductionR)
		sums[0] += row.PMDKMB
		sums[1] += row.ActualMB
		sums[2] += row.OursNormalMB
		sums[3] += row.OursRelaxedMB
		sums[4] += row.ReductionN
		sums[5] += row.ReductionR
	}
	n := float64(len(r.Rows))
	t.Add("Avg.", sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n, sums[4]/n, sums[5]/n)
	b.WriteString(t.String())
	return b.String()
}

// Table4Row is one application line of Table 4.
type Table4Row struct {
	Store     string
	Threads   int
	PMDKMB    float64
	ActualMB  float64
	OursMB    float64
	Reduction float64
}

// Table4Result is the whole table.
type Table4Result struct{ Rows []Table4Row }

// Table4 reproduces Table 4: fragmentation effectiveness on the concurrent
// PM data structures and KV applications with Normal parameters.
func Table4(scale float64) (Table4Result, error) {
	var res Table4Result
	const pageShift = 16
	apps := []struct {
		store   string
		threads int
	}{
		{"BzTree", 1}, {"BzTree", 4}, {"FPTree", 1}, {"FPTree", 4}, {"Echo", 1}, {"pmemkv", 1},
	}
	var specs []Spec
	for _, app := range apps {
		base := Spec{Store: app.store, Threads: app.threads, Scheme: core.SchemeNone, Scale: scale, PageShift: pageShift}
		ours := base
		ours.Scheme = core.SchemeFFCCDCheckLookup
		ours.Trigger, ours.Target = core.NormalParams()
		specs = append(specs, seededSpecs(base)...)
		specs = append(specs, seededSpecs(ours)...)
	}
	outs, err := RunSpecsForked(specs)
	if err != nil {
		return res, err
	}
	ns := len(tableSeeds)
	for i, app := range apps {
		cell := outs[i*2*ns:]
		baseOut := averageOutcomes(cell[:ns])
		oOut := averageOutcomes(cell[ns : 2*ns])
		res.Rows = append(res.Rows, Table4Row{
			Store:     app.store,
			Threads:   app.threads,
			PMDKMB:    baseOut.AvgFootprintMB,
			ActualMB:  baseOut.AvgLiveMB,
			OursMB:    oOut.AvgFootprintMB,
			Reduction: fragReduction(baseOut, oOut),
		})
	}
	return res, nil
}

func (r Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 4 — fragmentation effectiveness (applications)")
	t := stats.NewTable("app", "PMDK(MB)", "Actual(MB)", "Ours(MB)", "Reduction(%)")
	var sums [4]float64
	for _, row := range r.Rows {
		name := row.Store
		if row.Threads > 1 {
			name = fmt.Sprintf("%s(%dT)", row.Store, row.Threads)
		}
		t.Add(name, row.PMDKMB, row.ActualMB, row.OursMB, row.Reduction)
		sums[0] += row.PMDKMB
		sums[1] += row.ActualMB
		sums[2] += row.OursMB
		sums[3] += row.Reduction
	}
	n := float64(len(r.Rows))
	t.Add("Avg.", sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n)
	b.WriteString(t.String())
	return b.String()
}

// Table1 renders the hardware-cost model.
func Table1() string {
	cfg := sim.DefaultConfig()
	rows, mem := arch.CostTable(&cfg)
	var b strings.Builder
	fmt.Fprintln(&b, "Table 1 — hardware cost")
	t := stats.NewTable("component", "entry(B)", "entries", "size(B)", "area(mm²)")
	for _, r := range rows {
		entry := "-"
		if r.EntryBytes > 0 {
			entry = fmt.Sprintf("%.2f", r.EntryBytes)
		}
		entries := "-"
		if r.Entries > 0 {
			entries = fmt.Sprintf("%d", r.Entries)
		}
		t.Add(r.Component, entry, entries, r.SizeBytes, fmt.Sprintf("%.3f", r.AreaMM2))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "total on-chip storage: %d bytes\n", arch.TotalOnChipBytes(&cfg))
	t2 := stats.NewTable("in-memory structure", "bytes/4KB page", "overhead(%)")
	for _, m := range mem {
		t2.Add(m.Structure, m.BytesPer4KBPage, m.OverheadPercent)
	}
	b.WriteString(t2.String())
	return b.String()
}

// Table2 renders the simulation parameters in use.
func Table2() string {
	cfg := sim.DefaultConfig()
	var b strings.Builder
	fmt.Fprintln(&b, "Table 2 — simulation parameters (cycles @2.6 GHz)")
	t := stats.NewTable("parameter", "value")
	add := func(k string, v any) { t.Add(k, v) }
	add("L1D latency", cfg.L1Latency)
	add("L2 latency", cfg.L2Latency)
	add("DRAM latency", cfg.DRAMLatency)
	add("PM read latency", cfg.PMReadLatency)
	add("PM write latency", cfg.PMWriteLatency)
	add("WPQ latency", cfg.WPQLatency)
	add("L1 TLB (4K) entries", cfg.L1TLB4KEntries)
	add("L1 TLB (2M) entries", cfg.L1TLB2MEntries)
	add("L2 TLB entries", cfg.L2TLBEntries)
	add("TLB miss penalty", cfg.TLBMissPenalty)
	add("PMFTLB entries", cfg.PMFTLBEntries)
	add("RBB entries", cfg.RBBEntries)
	add("Bloom filter size (B)", cfg.BloomFilterBytes)
	add("In-memory bloom filters", cfg.BloomFilters)
	add("Bloom miss latency", cfg.BloomMissLatency)
	add("Bloom check latency", cfg.BloomCheckLatency)
	add("PMFTLB latency", cfg.PMFTLBLatency)
	add("RBB latency", cfg.RBBLatency)
	add("Shared cache (B)", cfg.CacheBytes)
	b.WriteString(t.String())
	return b.String()
}
