package experiments

import (
	"fmt"
	"sync/atomic"

	"ffccd/internal/core"
	"ffccd/internal/obsv"
	"ffccd/internal/pmem"
	"ffccd/internal/sim"
)

// Observability wiring for the experiment drivers. When a collector is
// installed (cmd/ffccd-bench -trace / -httpobs), every run — scratch, fork
// prefix, and forked continuation — becomes one trace "process" so Perfetto
// shows prefix work attributed separately from each scheme's fork. With no
// collector installed (the default) every hook below is a nil load and the
// drivers run exactly as before; either way no simulated cycle is charged,
// so outcomes are bit-identical (golden-pinned with tracing enabled).

var obsCollector atomic.Pointer[obsv.Collector]

// SetObsCollector installs (or, with nil, removes) the collector that
// receives every run's observability. Applies to runs started afterwards.
func SetObsCollector(c *obsv.Collector) { obsCollector.Store(c) }

// specLabel names a run's trace process.
func specLabel(spec Spec, suffix string) string {
	return fmt.Sprintf("%s/%s/t%d/seed%d%s",
		spec.Store, spec.Scheme, spec.Threads, spec.Seed, suffix)
}

// newRunObs creates the per-run bundle when a collector is installed and
// wires the device into it; returns nil (observability off) otherwise.
// Call before engine construction so the bundle can ride in core.Options.
func newRunObs(spec Spec, suffix string, dev *pmem.Device, appCtx, gcCtx *sim.Ctx) *obsv.Obs {
	col := obsCollector.Load()
	if col == nil {
		return nil
	}
	o := col.NewObs(specLabel(spec, suffix))
	o.Tracer.Name(appCtx, "app")
	o.Tracer.Name(gcCtx, "gc")
	dev.SetObs(o)
	return o
}

// registerRunGroups adds the per-run snapshot groups owned by the driver:
// per-category cycle attribution (including the engine's own GC clock, which
// terminate work during Close charges) and TLB counters. Device and engine
// register their own counter groups in their SetObs. No-op when o is nil.
func registerRunGroups(o *obsv.Obs, appCtx, gcCtx *sim.Ctx, eng *core.Engine) {
	if o == nil {
		return
	}
	o.Metrics.RegisterGroup("cycles", func() map[string]uint64 {
		clk := sim.NewClock()
		clk.Merge(appCtx.Clock)
		clk.Merge(gcCtx.Clock)
		if eng != nil {
			clk.Merge(eng.GCClock())
		}
		m := make(map[string]uint64, sim.NumCategories)
		for c := 0; c < sim.NumCategories; c++ {
			m[sim.Category(c).String()] = clk.Cycles(sim.Category(c))
		}
		return m
	})
	o.Metrics.RegisterGroup("tlb", func() map[string]uint64 {
		return map[string]uint64{
			"accesses":  appCtx.TLB.AccessCount() + gcCtx.TLB.AccessCount(),
			"l1_misses": appCtx.TLB.L1Misses + gcCtx.TLB.L1Misses,
			"l2_misses": appCtx.TLB.L2Misses + gcCtx.TLB.L2Misses,
		}
	})
}
