package experiments

import (
	"fmt"
	"strings"

	"ffccd/internal/alloc"
	"ffccd/internal/core"
	"ffccd/internal/kv"
	"ffccd/internal/mesh"
	"ffccd/internal/redisws"
	"ffccd/internal/sim"
	"ffccd/internal/stats"
)

// Fig16Variant is one scheme's Redis run.
type Fig16Variant struct {
	Name          string
	Samples       []redisws.Sample
	FinalFragR    float64
	FragReduction float64 // vs the PMDK baseline, eq. 1
	P90, P95, P99 float64 // op latency percentiles (cycles)
	P999          float64
	MaxPause      float64
}

// Fig16Result is the whole case study.
type Fig16Result struct {
	Variants []Fig16Variant
}

// Figure16 reproduces the §7.4 Redis case study: memory footprint over time
// and tail latency for the PMDK baseline, FFCCD (concurrent), a
// stop-the-world compactor (jemalloc-style) and Mesh.
func Figure16(scale float64) (Fig16Result, error) {
	cfg := redisws.DefaultConfig()
	cfg.InitialKeys = int(1_000_000 * scale * 20)
	cfg.ExtraKeys = int(500_000 * scale * 20)
	if cfg.InitialKeys < 2000 {
		cfg.InitialKeys, cfg.ExtraKeys = 2000, 1000
	}
	// Cap the live set at roughly half the key-volume so LRU expiry churns,
	// and drift the value-size distribution in the second phase — the
	// long-running-cache regime in which Redis fragments (§7.4).
	cfg.MaxLiveBytes = uint64(cfg.InitialKeys) * 300 / 2
	cfg.MinVal, cfg.MaxVal = 240, 366
	cfg.MinVal2, cfg.MaxVal2 = 367, 492
	cfg.ExtraKeys = cfg.InitialKeys

	var res Fig16Result
	type variant struct {
		name   string
		scheme core.Scheme
		mesh   bool
	}
	variants := []variant{
		{"PMDK (baseline)", core.SchemeNone, false},
		{"FFCCD", core.SchemeFFCCDCheckLookup, false},
		{"STW defrag", core.SchemeEspresso, false},
		{"Mesh", core.SchemeNone, true},
	}
	outs := make([]Fig16Variant, len(variants))
	// Every variant drives its own simulated machine; fan them out.
	err := parallelFor(len(variants), func(i int) error {
		v := variants[i]
		out, err := runFig16Variant(v.name, v.scheme, v.mesh, cfg)
		outs[i] = out
		return err
	})
	if err != nil {
		return res, err
	}
	res.Variants = outs
	// Fragmentation reduction vs baseline.
	base := res.Variants[0]
	baseFoot := float64(base.Samples[len(base.Samples)-1].Footprint)
	baseLive := float64(base.Samples[len(base.Samples)-1].Live)
	for i := range res.Variants[1:] {
		v := &res.Variants[i+1]
		foot := float64(v.Samples[len(v.Samples)-1].Footprint)
		if denom := baseFoot - baseLive; denom > 0 {
			v.FragReduction = (baseFoot - foot) / denom * 100
		}
	}
	return res, nil
}

func runFig16Variant(name string, scheme core.Scheme, useMesh bool, cfg redisws.Config) (Fig16Variant, error) {
	env, err := NewEnv(uint64(cfg.InitialKeys)*512*6+(32<<20), 12)
	if err != nil {
		return Fig16Variant{}, err
	}
	store, err := kv.NewEcho(env.Ctx, env.Pool, cfg.InitialKeys/2+64)
	if err != nil {
		return Fig16Variant{}, err
	}

	var hook redisws.Hook
	var foot redisws.FootprintFn
	interval := cfg.InitialKeys / 8

	switch {
	case useMesh:
		d := mesh.New(env.Pool)
		meshCtx := sim.NewCtx(&env.Cfg)
		hook = func(op int) uint64 {
			if op%interval != interval-1 {
				return 0
			}
			before := meshCtx.Clock.Total()
			d.RunCycle(meshCtx)
			return meshCtx.Clock.Total() - before // meshing pauses the world
		}
		foot = func() alloc.FragStats { return d.PhysFrag(12) }
	case scheme == core.SchemeEspresso:
		// Stop-the-world comparator: the full cycle stalls the in-flight op.
		opt := core.Options{Scheme: scheme, TriggerRatio: 1.15, TargetRatio: 1.05, BatchObjects: 64}
		eng := core.NewEngine(env.Pool, opt)
		defer eng.Close()
		stwCtx := sim.NewCtx(&env.Cfg)
		hook = func(op int) uint64 {
			if op%interval != interval-1 {
				return 0
			}
			if env.Pool.Heap().Frag(12).FragRatio <= opt.TriggerRatio {
				return 0
			}
			pause, _ := eng.RunCycleSTW(stwCtx)
			return pause
		}
	case scheme != core.SchemeNone:
		// Concurrent FFCCD: marking+summary stall (short); compaction runs
		// via read barriers and the background mover on the GC clock.
		opt := core.Options{Scheme: scheme, TriggerRatio: 1.15, TargetRatio: 1.05, BatchObjects: 64}
		eng := core.NewEngine(env.Pool, opt)
		defer eng.Close()
		gcCtx := sim.NewCtx(&env.Cfg)
		hook = func(op int) uint64 {
			if op%interval != interval-1 {
				return 0
			}
			if env.Pool.Heap().Frag(12).FragRatio <= opt.TriggerRatio {
				return 0
			}
			before := gcCtx.Clock.Cycles(sim.CatMark) + gcCtx.Clock.Cycles(sim.CatSummary)
			eng.RunCycle(gcCtx)
			after := gcCtx.Clock.Cycles(sim.CatMark) + gcCtx.Clock.Cycles(sim.CatSummary)
			// Only the STW phases stall the application (§2.3.2).
			return after - before
		}
	}

	out, err := redisws.Run(env.Ctx, env.Pool, store, cfg, hook, foot)
	if err != nil {
		return Fig16Variant{}, err
	}
	v := Fig16Variant{
		Name:       name,
		Samples:    out.Samples,
		FinalFragR: out.Final.FragRatio,
		P90:        out.Lat.Percentile(90),
		P95:        out.Lat.Percentile(95),
		P99:        out.Lat.Percentile(99),
		P999:       out.Lat.Percentile(99.9),
		MaxPause:   out.Lat.Max(),
	}
	return v, nil
}

func (r Fig16Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 16 — Redis case study: footprint over time and tail latency")
	t := stats.NewTable("variant", "final fragR", "frag-red(%)", "p90(cyc)", "p95(cyc)", "p99(cyc)", "p999(cyc)", "max(cyc)")
	for _, v := range r.Variants {
		t.Add(v.Name, v.FinalFragR, v.FragReduction, v.P90, v.P95, v.P99, v.P999, v.MaxPause)
	}
	b.WriteString(t.String())
	fmt.Fprintln(&b, "\nfootprint series (MB at sampled ops):")
	st := stats.NewTable(append([]string{"op"}, variantNames(r)...)...)
	if len(r.Variants) > 0 {
		n := len(r.Variants[0].Samples)
		step := n / 20
		if step == 0 {
			step = 1
		}
		for i := 0; i < n; i += step {
			cells := []any{r.Variants[0].Samples[i].Op}
			for _, v := range r.Variants {
				if i < len(v.Samples) {
					cells = append(cells, float64(v.Samples[i].Footprint)/(1<<20))
				} else {
					cells = append(cells, "-")
				}
			}
			st.Add(cells...)
		}
	}
	b.WriteString(st.String())
	return b.String()
}

func variantNames(r Fig16Result) []string {
	var out []string
	for _, v := range r.Variants {
		out = append(out, v.Name)
	}
	return out
}

// CSV renders the footprint-over-time series as comma-separated values
// (op, then one column per variant, in MB) — plot-ready Figure 16 data.
func (r Fig16Result) CSV() string {
	var b strings.Builder
	b.WriteString("op")
	for _, v := range r.Variants {
		b.WriteString(",")
		b.WriteString(v.Name)
	}
	b.WriteString("\n")
	if len(r.Variants) == 0 {
		return b.String()
	}
	for i := range r.Variants[0].Samples {
		fmt.Fprintf(&b, "%d", r.Variants[0].Samples[i].Op)
		for _, v := range r.Variants {
			if i < len(v.Samples) {
				fmt.Fprintf(&b, ",%.4f", float64(v.Samples[i].Footprint)/(1<<20))
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
