package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ffccd/internal/core"
	"ffccd/internal/obsv"
)

// updateGolden rewrites testdata/golden_cycles.json from the current
// simulator instead of comparing against it:
//
//	go test ./internal/experiments/ -run TestGoldenCycles -args -update-golden
//
// Only for INTENTIONAL sequence changes (the counter-based workload RNG that
// replaced the math/rand source is the canonical example — the workload's
// random stream changed, so every pinned cycle total moved). Regeneration
// still demands scratch/fork bit-identity on the new sequence before
// writing: a golden that the two execution paths disagree on pins nothing.
var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_cycles.json from the current simulator")

// goldenRun mirrors one entry of testdata/golden_cycles.json — the exact
// per-category cycle totals and device counters captured before the host-side
// performance refactor (sharded stats, per-set in-flight state,
// allocation-free relocate). The simulated machine must keep producing these
// numbers bit-for-bit: host optimisations may change wall-clock, never cycles.
type goldenRun struct {
	Store        string   `json:"store"`
	Scheme       string   `json:"scheme"`
	Threads      int      `json:"threads"`
	Scale        float64  `json:"scale"`
	PageShift    uint     `json:"page_shift"`
	Seed         int64    `json:"seed"`
	Trigger      float64  `json:"trigger"`
	Target       float64  `json:"target"`
	Cycles       []uint64 `json:"cycles"`
	FragRatio    string   `json:"frag_ratio"`
	Loads        uint64   `json:"loads"`
	Stores       uint64   `json:"stores"`
	MediaWrites  uint64   `json:"media_writes"`
	MediaReads   uint64   `json:"media_reads"`
	Clwbs        uint64   `json:"clwbs"`
	Sfences      uint64   `json:"sfences"`
	RelocateOps  uint64   `json:"relocate_ops"`
	PendingReach uint64   `json:"pending_reach"`
}

func schemeByName(name string) (core.Scheme, bool) {
	for s := core.SchemeNone; s <= core.SchemeFFCCDCheckLookup; s++ {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// TestGoldenCycles replays the committed pre-refactor runs and demands
// byte-identical simulated results. Any drift here means a host-side change
// leaked into simulation semantics.
func TestGoldenCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_cycles.json"))
	if err != nil {
		t.Fatal(err)
	}
	var golden []goldenRun
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden) == 0 {
		t.Fatal("empty golden file")
	}
	// Run every golden spec with observability ENABLED. Tracing and metrics
	// read simulated clocks but never charge them, so the goldens must hold
	// bit-for-bit with a collector installed — this is the package's
	// non-perturbation contract under its heaviest consumer.
	col := obsv.NewCollector(0)
	SetObsCollector(col)
	t.Cleanup(func() { SetObsCollector(nil) })
	if *updateGolden {
		regenerateGolden(t, golden)
		return
	}
	for _, g := range golden {
		g := g
		name := fmt.Sprintf("%s_%s_shift%d_seed%d", g.Store, g.Scheme, g.PageShift, g.Seed)
		scheme, ok := schemeByName(g.Scheme)
		if !ok {
			t.Fatalf("unknown scheme %q", g.Scheme)
		}
		spec := Spec{
			Store: g.Store, Threads: g.Threads, Scheme: scheme,
			Trigger: g.Trigger, Target: g.Target,
			Scale: g.Scale, PageShift: g.PageShift, Seed: g.Seed,
		}
		// Every golden spec must reproduce through both execution paths:
		// from scratch, and via the checkpoint/fork driver.
		t.Run(name+"/scratch", func(t *testing.T) {
			t.Parallel()
			out, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, out, g)
		})
		t.Run(name+"/fork", func(t *testing.T) {
			t.Parallel()
			out, err := runForked(spec)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, out, g)
		})
	}
}

// regenerateGolden re-runs every golden spec through BOTH execution paths,
// demands they agree bit-for-bit, and rewrites the file with the scratch
// path's numbers. The spec fields (store, scheme, scale, seed, …) are kept;
// only the pinned measurements move.
func regenerateGolden(t *testing.T, golden []goldenRun) {
	for i := range golden {
		g := &golden[i]
		scheme, ok := schemeByName(g.Scheme)
		if !ok {
			t.Fatalf("unknown scheme %q", g.Scheme)
		}
		spec := Spec{
			Store: g.Store, Threads: g.Threads, Scheme: scheme,
			Trigger: g.Trigger, Target: g.Target,
			Scale: g.Scale, PageShift: g.PageShift, Seed: g.Seed,
		}
		scratch, err := Run(spec)
		if err != nil {
			t.Fatalf("%s/%s: scratch run: %v", g.Store, g.Scheme, err)
		}
		forked, err := runForked(spec)
		if err != nil {
			t.Fatalf("%s/%s: forked run: %v", g.Store, g.Scheme, err)
		}
		if scratch.Cycles != forked.Cycles || scratch.Device != forked.Device {
			t.Fatalf("%s/%s: scratch and fork disagree on the new sequence:\n  scratch %v %+v\n  fork    %v %+v",
				g.Store, g.Scheme, scratch.Cycles, scratch.Device, forked.Cycles, forked.Device)
		}
		g.Cycles = scratch.Cycles[:]
		g.FragRatio = fmt.Sprintf("%.9f", scratch.FragRatio())
		dev := scratch.Device
		g.Loads, g.Stores = dev.Loads, dev.Stores
		g.MediaWrites, g.MediaReads = dev.MediaWrites, dev.MediaReads
		g.Clwbs, g.Sfences = dev.Clwbs, dev.Sfences
		g.RelocateOps, g.PendingReach = dev.RelocateOps, dev.PendingReach
		t.Logf("regenerated %s/%s seed %d", g.Store, g.Scheme, g.Seed)
	}
	out, err := json.MarshalIndent(golden, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_cycles.json")
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d specs)", path, len(golden))
}

// checkGolden compares an outcome against one golden entry.
func checkGolden(t *testing.T, out Outcome, g goldenRun) {
	t.Helper()
	for cat, want := range g.Cycles {
		if got := out.Cycles[cat]; got != want {
			t.Errorf("cycles[%d] = %d, golden %d", cat, got, want)
		}
	}
	if got := fmt.Sprintf("%.9f", out.FragRatio()); got != g.FragRatio {
		t.Errorf("fragRatio = %s, golden %s", got, g.FragRatio)
	}
	dev := out.Device
	counters := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"loads", dev.Loads, g.Loads},
		{"stores", dev.Stores, g.Stores},
		{"mediaWrites", dev.MediaWrites, g.MediaWrites},
		{"mediaReads", dev.MediaReads, g.MediaReads},
		{"clwbs", dev.Clwbs, g.Clwbs},
		{"sfences", dev.Sfences, g.Sfences},
		{"relocateOps", dev.RelocateOps, g.RelocateOps},
		{"pendingReach", dev.PendingReach, g.PendingReach},
	}
	for _, c := range counters {
		if c.got != c.want {
			t.Errorf("device.%s = %d, golden %d", c.name, c.got, c.want)
		}
	}
}

// TestTracingDoesNotPerturb runs the same spec with observability off and
// on and demands identical simulated results, while also proving the trace
// actually recorded activity (an accidentally-dead tracer would make the
// comparison vacuous). Single-threaded spec: with Threads > 1 the goroutine
// interleaving itself is nondeterministic run to run, so only 1-thread runs
// carry the repeatability contract (same as TestCycleDeterminism).
func TestTracingDoesNotPerturb(t *testing.T) {
	spec := Spec{Store: "SS", Threads: 1, Scheme: core.SchemeFFCCDCheckLookup,
		Scale: 0.001, PageShift: 12, Seed: 5}
	spec.Trigger, spec.Target = core.NormalParams()

	SetObsCollector(nil)
	off, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	col := obsv.NewCollector(0)
	SetObsCollector(col)
	defer SetObsCollector(nil)
	on, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	if off.Cycles != on.Cycles {
		t.Errorf("tracing perturbed cycles:\n  off %v\n  on  %v", off.Cycles, on.Cycles)
	}
	if off.Device != on.Device {
		t.Errorf("tracing perturbed device counters:\n  off %+v\n  on  %+v", off.Device, on.Device)
	}
	if off.Engine != on.Engine {
		t.Errorf("tracing perturbed engine counters:\n  off %+v\n  on  %+v", off.Engine, on.Engine)
	}
	flat := col.MetricsSummary()
	if flat["trace.events"] == 0 {
		t.Error("collector recorded no trace events — tracer was dead, comparison vacuous")
	}
	if flat["stw_pause_cycles.count"] == 0 {
		t.Error("no STW pauses recorded; FFCCD run should have triggered epochs")
	}
	// The overlay-interval taps (epoch spans, STW pauses) must have fired
	// too — they share the non-perturbation contract this test pins.
	_, procs := col.Processes()
	stwIvs, epochIvs := 0, 0
	for _, o := range procs {
		for _, iv := range o.Intervals.Intervals() {
			if iv.End <= iv.Start {
				t.Errorf("degenerate overlay interval %+v", iv)
			}
			switch iv.Kind {
			case obsv.IntervalSTW:
				stwIvs++
			case obsv.IntervalEpoch:
				epochIvs++
			}
		}
	}
	if stwIvs == 0 || epochIvs == 0 {
		t.Errorf("overlay intervals missing (stw=%d epoch=%d); interval taps were dead", stwIvs, epochIvs)
	}
}

// TestCycleDeterminism runs the same spec twice in one process and demands
// identical cycle totals and device counters. This pins the deterministic
// drain order of the per-set in-flight state: map-iteration or scheduling
// nondeterminism anywhere in the device would show up here as cycle drift.
func TestCycleDeterminism(t *testing.T) {
	spec := Spec{Store: "LL", Threads: 1, Scheme: core.SchemeFFCCDCheckLookup,
		Scale: 0.001, PageShift: 12, Seed: 7}
	spec.Trigger, spec.Target = core.NormalParams()
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("cycle totals differ across identical runs:\n  %v\n  %v", a.Cycles, b.Cycles)
	}
	if a.Device != b.Device {
		t.Errorf("device counters differ across identical runs:\n  %+v\n  %+v", a.Device, b.Device)
	}
	if fmt.Sprintf("%.12f", a.FragRatio()) != fmt.Sprintf("%.12f", b.FragRatio()) {
		t.Errorf("frag ratio differs: %v vs %v", a.FragRatio(), b.FragRatio())
	}
}
