package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ffccd/internal/alloc"
	"ffccd/internal/arch"
	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/kv"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
	"ffccd/internal/workload"
)

// The fork driver (DESIGN.md §7, "Checkpoint/fork"): every scheme of a
// breakdown cell replays the identical workload prefix up to the first
// successful BeginCycle — the scheme-divergence point — so that prefix is
// built once, checkpointed, and each scheme's run forked from it.
//
// Why the divergence point is exactly there: a BeginCycle attempt's
// *failure* path (mark, leak-reclaim resync, frame ranking, the nil
// verdicts "fragmentation at/below target" and "no positive net gain") is
// decided purely by heap state and charges identical cycles under every
// scheme — every scheme-dependent effect of summary() (PMFT construction,
// moved-bitmap clears, RBB arming, the compacting phase word) happens only
// after the verdict is "go". Hence all schemes attempt at the same sample
// points with identical outcomes until the first success, where they
// diverge. The prefix runs those shared attempts under a neutral Espresso
// engine, checkpoints the machine *before* each attempt (attempts mutate
// the heap and clocks), and suspends when one succeeds; each scheme then
// restores the pre-attempt machine and re-runs the attempt with its own
// engine.
//
// Forked runs reproduce scratch runs bit-identically in simulated cycle
// totals, device counters, frag ratios AND engine counters (pinned by
// TestGoldenCycles' fork replay and TestForkMatchesScratch). Engine counters
// need one extra step: a scratch engine accumulates leak-reclaim counts from
// the failed pre-divergence attempts, while a fork's engine is born at the
// divergence point — so the checkpoint captures the prefix engine's stats
// (taken *before* the successful attempt, hence exactly the failed-attempt
// bookkeeping, which is scheme-independent) and runFork folds them into each
// forked outcome.

// forkEnabled gates the fork driver (on by default; cmd/ffccd-bench -fork).
var forkEnabled atomic.Bool

func init() { forkEnabled.Store(true) }

// SetFork enables or disables the checkpoint/fork driver.
func SetFork(on bool) { forkEnabled.Store(on) }

// ForkEnabled reports whether the fork driver is active.
func ForkEnabled() bool { return forkEnabled.Load() }

// Fork-driver counters (reported in the BENCH_*.json records).
var (
	forkPrefixes    atomic.Uint64 // shared prefixes built
	forkCheckpoints atomic.Uint64 // machine checkpoints taken (one per BeginCycle attempt)
	forkRuns        atomic.Uint64 // runs served from a checkpoint instead of from scratch

	// forkCapturedBytes sums the media bytes each checkpoint actually
	// captured (dirty pages only); forkMediaBytes sums what a full-image
	// copy of the same devices would have moved. Their ratio is the
	// dirty-line checkpointing win reported in BENCH_4.json.
	forkCapturedBytes atomic.Uint64
	forkMediaBytes    atomic.Uint64

	// forkRestoreNanos sums the host time each forked run spent
	// materializing its machine from the checkpoint — device/heap/context
	// restore plus ResumeRunner's RNG repositioning. With the counter-based
	// workload source the RNG part is O(1), so this stays flat as scale
	// (and therefore the checkpointed draw count) grows; the old
	// draw-and-discard skip made it linear in scale. The dominant remaining
	// cost, the device page copies, restores as coalesced disjoint spans
	// fanned out on the worker pool (pmem.Device.Restore), so large restores
	// also scale with host cores.
	forkRestoreNanos atomic.Uint64
)

// ForkCounters returns (prefixes built, checkpoints taken, forked runs).
func ForkCounters() (prefixes, checkpoints, forks uint64) {
	return forkPrefixes.Load(), forkCheckpoints.Load(), forkRuns.Load()
}

// ForkCheckpointBytes returns the media bytes captured across all machine
// checkpoints (dirty pages only) and the bytes a full-media copy of the
// same checkpoints would have captured.
func ForkCheckpointBytes() (captured, fullMedia uint64) {
	return forkCapturedBytes.Load(), forkMediaBytes.Load()
}

// ForkRestoreSeconds returns the cumulative host time forked runs spent
// restoring machines from checkpoints (including runner/RNG repositioning).
func ForkRestoreSeconds() float64 {
	return float64(forkRestoreNanos.Load()) / 1e9
}

// ResetForkCounters zeroes the fork-driver counters.
func ResetForkCounters() {
	forkPrefixes.Store(0)
	forkCheckpoints.Store(0)
	forkRuns.Store(0)
	forkCapturedBytes.Store(0)
	forkMediaBytes.Store(0)
	forkRestoreNanos.Store(0)
}

// machineCheckpoint captures the whole simulated machine at a candidate
// divergence point: device (media, cache, in-flight lines, counters),
// allocator, both simulation contexts (clocks, TLBs, pending flushes), the
// pool's op counter and the workload runner position.
type machineCheckpoint struct {
	dev     pmem.DeviceCheckpoint
	heap    alloc.HeapCheckpoint
	appCtx  sim.CtxCheckpoint
	gcCtx   sim.CtxCheckpoint
	ops     uint64
	txOrder []int
	runner  *workload.RunnerCheckpoint

	// engine holds the prefix engine's counters at the checkpoint: the
	// bookkeeping of every failed pre-divergence trigger attempt (leak
	// reclamation; failures move no objects), which is scheme-independent.
	// Forked outcomes add it so they report the same engine activity a
	// scratch run would.
	engine core.EngineStats

	// Architectural hot state, for checkpoints taken inside an open epoch
	// (crash-replay tests; the standard driver's fork points sit outside
	// epochs, where all three are nil). rbb is the engine's Reached Bitmap
	// Buffer; appCLU/gcCLU are the checklookup units attached to the two
	// contexts, when a unit is resident there.
	rbb           *arch.RBBCheckpoint
	appCLU, gcCLU *arch.CheckLookupUnitCheckpoint
}

// prefixState is the outcome of building one cell's shared prefix: either a
// checkpoint at the divergence point (forked=true) plus the prefix store to
// clone volatile state from, or — when no epoch ever began — the completed
// run, whose result is scheme-independent.
type prefixState struct {
	spec   Spec
	forked bool
	chk    machineCheckpoint
	store  ds.Store

	outcome Outcome // valid when !forked (Spec.Scheme must be overwritten)
}

func captureMachine(chk *machineCheckpoint, env *Env, gcCtx *sim.Ctx, eng *core.Engine) {
	env.RT.Device().CheckpointInto(&chk.dev)
	forkCapturedBytes.Add(chk.dev.CapturedBytes())
	forkMediaBytes.Add(chk.dev.MediaBytes())
	env.Pool.Heap().CheckpointInto(&chk.heap)
	env.Ctx.CheckpointInto(&chk.appCtx)
	gcCtx.CheckpointInto(&chk.gcCtx)
	chk.ops = env.Pool.Ops.Load()
	chk.txOrder = env.Pool.TxSlotOrder()
	chk.engine = eng.Stats()
	chk.rbb, chk.appCLU, chk.gcCLU = nil, nil, nil
	if rbb := eng.RBB(); rbb != nil {
		chk.rbb = rbb.Checkpoint()
	}
	if u, ok := env.Ctx.HW.(*arch.CheckLookupUnit); ok {
		chk.appCLU = u.Checkpoint()
	}
	if u, ok := gcCtx.HW.(*arch.CheckLookupUnit); ok {
		chk.gcCLU = u.Checkpoint()
	}
}

// restoreHW replants the checkpoint's architectural hot state into a
// restored machine: the engine's RBB (when both sides have one — schemes
// without the relocate instruction have no buffer to restore into) and the
// per-context checklookup units, recreated on the engine and attached to the
// contexts so the read barrier finds them warm.
func restoreHW(chk *machineCheckpoint, eng *core.Engine, ctx, gcCtx *sim.Ctx) {
	if chk.rbb != nil {
		if rbb := eng.RBB(); rbb != nil {
			rbb.Restore(chk.rbb)
		}
	}
	if chk.appCLU != nil {
		eng.RestoreCLU(ctx, chk.appCLU)
	}
	if chk.gcCLU != nil {
		eng.RestoreCLU(gcCtx, chk.gcCLU)
	}
}

// buildPrefix runs spec's workload up to the scheme-divergence point.
// spec's own Scheme is irrelevant (the prefix engine is the neutral
// Espresso one); Trigger/Target/BatchObjects must match the specs that will
// fork from it, since failed BeginCycle attempts depend on them.
func buildPrefix(spec Spec) (*prefixState, error) {
	forkPrefixes.Add(1)
	wl := wlFor(spec)
	env, err := NewEnv(poolSizeFor(wl), spec.PageShift)
	if err != nil {
		return nil, err
	}
	env.RT.Device().SetExclusive(true)
	store, err := BuildStore(env.Ctx, env.Pool, spec.Store, wl)
	if err != nil {
		return nil, err
	}
	gcCtx := sim.NewCtx(&env.Cfg)
	obs := newRunObs(spec, "/prefix", env.RT.Device(), env.Ctx, gcCtx)
	eng := core.NewEngine(env.Pool, core.Options{
		Scheme:       core.SchemeEspresso,
		TriggerRatio: spec.Trigger,
		TargetRatio:  spec.Target,
		BatchObjects: 64,
		Obs:          obs,
	})
	registerRunGroups(obs, env.Ctx, gcCtx, eng)
	pre := &prefixState{spec: spec}

	var r *workload.Runner
	// No PreSample hook: before the first successful BeginCycle no epoch is
	// ever open, so the scratch path's "finish an open epoch" hook is a
	// simulated no-op there too.
	wl.Maintenance = func() {
		if env.Pool.Heap().Frag(spec.PageShift).FragRatio <= spec.Trigger {
			return
		}
		// Checkpoint before the attempt: a failed attempt still reclaims
		// leaks and charges mark/summary cycles, all of which is shared
		// prefix; a successful one diverges, so the forks must re-run it.
		captureMachine(&pre.chk, env, gcCtx, eng)
		forkCheckpoints.Add(1)
		if eng.BeginCycle(gcCtx) {
			r.RequestStop()
		}
	}
	r = workload.NewRunner(env.Ctx, env.Pool, store, wl)
	res, finished, err := r.Run()
	if err != nil {
		return nil, err
	}
	if finished {
		// Fragmentation never produced a viable epoch: no scheme-dependent
		// machinery ever engaged, so this completed run is every scheme's
		// result.
		pre.outcome = assembleOutcome(spec, res, env.Ctx, gcCtx, eng, env.RT.Device())
		env.RT.Device().ReleaseMedia()
		return pre, nil
	}
	// Suspended inside the successful attempt's Maintenance call: the
	// machine checkpoint predates the attempt, and the runner checkpoint
	// (position, RNG draw count, accumulators) re-enters Maintenance first
	// on resume. BeginCycle itself mutates no store/runner state, so
	// capturing these after suspension matches the machine checkpoint.
	pre.chk.runner = r.Checkpoint()
	pre.store = store
	pre.forked = true
	// The prefix machine is no longer needed: forks restore from the
	// checkpoint, and store.Fork copies volatile handles without touching
	// the device.
	env.RT.Device().ReleaseMedia()
	return pre, nil
}

// runFork materializes a fresh machine from pre's checkpoint and finishes
// the workload under spec.Scheme. Safe to call concurrently for different
// schemes: the checkpoint and prefix store are only read.
func runFork(pre *prefixState, spec Spec) (Outcome, error) {
	forkRuns.Add(1)
	wl := wlFor(spec)

	restoreStart := time.Now()
	cfg := sim.DefaultConfig()
	reg := pmop.NewRegistry()
	ds.RegisterTypes(reg)
	kv.RegisterTypes(reg)
	dev := pmem.NewDeviceForRestore(&cfg, poolSizeFor(wl)*2)
	dev.Restore(&pre.chk.dev)
	dev.SetExclusive(true)
	rt, err := pmop.AttachAtEpoch(&cfg, dev, 0)
	if err != nil {
		return Outcome{}, err
	}
	pool, err := rt.Open("bench", reg)
	if err != nil {
		return Outcome{}, err
	}
	pool.Heap().Restore(&pre.chk.heap)
	pool.Ops.Store(pre.chk.ops)
	pool.RestoreTxSlotOrder(pre.chk.txOrder)
	ctx := sim.NewCtx(&cfg)
	ctx.Restore(&pre.chk.appCtx)
	gcCtx := sim.NewCtx(&cfg)
	gcCtx.Restore(&pre.chk.gcCtx)
	store := pre.store.(ds.Forker).Fork(pool)

	obs := newRunObs(spec, "/fork", dev, ctx, gcCtx)
	eng := core.NewEngine(pool, core.Options{
		Scheme:       spec.Scheme,
		TriggerRatio: spec.Trigger,
		TargetRatio:  spec.Target,
		BatchObjects: 64,
		Obs:          obs,
	})
	registerRunGroups(obs, ctx, gcCtx, eng)
	restoreHW(&pre.chk, eng, ctx, gcCtx)
	// The standard scheme hooks (identical to Run's): the resumed runner's
	// first action is this Maintenance, re-running the divergence attempt
	// under spec.Scheme.
	var epochMu sync.Mutex
	epochOpen := false
	wl.PreSample = func() {
		epochMu.Lock()
		defer epochMu.Unlock()
		if epochOpen {
			eng.StepCompaction(gcCtx, 1<<30)
			eng.FinishCycle(gcCtx)
			epochOpen = false
		}
	}
	wl.Maintenance = func() {
		epochMu.Lock()
		defer epochMu.Unlock()
		if !epochOpen && pool.Heap().Frag(spec.PageShift).FragRatio > spec.Trigger {
			epochOpen = eng.BeginCycle(gcCtx)
		}
	}
	r, err := workload.ResumeRunner(ctx, pool, store, wl, pre.chk.runner)
	if err != nil {
		return Outcome{}, err
	}
	forkRestoreNanos.Add(uint64(time.Since(restoreStart).Nanoseconds()))
	res, finished, err := r.Run()
	if err != nil {
		return Outcome{}, err
	}
	if !finished {
		return Outcome{}, fmt.Errorf("experiments: forked run suspended unexpectedly")
	}
	out := assembleOutcome(spec, res, ctx, gcCtx, eng, dev)
	// Fold in the prefix engine's pre-divergence bookkeeping so forked and
	// scratch runs report identical engine activity.
	out.Engine.Add(pre.chk.engine)
	dev.ReleaseMedia()
	return out, nil
}

// runForked executes one spec through the fork path: prefix to the
// divergence point, then a single fork. Specs the fork protocol cannot
// serve (no engine, or goroutine-nondeterministic multi-thread runs) fall
// back to Run.
func runForked(spec Spec) (Outcome, error) {
	if spec.Scheme == core.SchemeNone || spec.Threads > 1 {
		return Run(spec)
	}
	pre, err := buildPrefix(spec)
	if err != nil {
		return Outcome{}, err
	}
	if !pre.forked {
		out := pre.outcome
		out.Spec = spec
		return out, nil
	}
	return runFork(pre, spec)
}

// forkGroupKey identifies specs that share a bit-identical prefix: same
// everything except the scheme. Spec is comparable, so the zeroed-scheme
// copy serves as the map key.
func forkGroupKey(s Spec) Spec {
	s.Scheme = core.SchemeNone
	return s
}

// RunSpecsForked executes every spec like RunSpecs, but batches
// single-threaded scheme runs that share a prefix (same store, scale, seed,
// trigger, target, page size) through the fork driver: one prefix build
// plus one forked run per scheme, instead of len(schemes) full runs.
// Outcomes are returned in spec order and are bit-identical (cycles, device
// counters, frag ratios) to RunSpecs'. Baselines (SchemeNone), concurrent
// specs, and singleton groups run from scratch — a lone scheme gains
// nothing from checkpointing.
func RunSpecsForked(specs []Spec) ([]Outcome, error) {
	if !ForkEnabled() {
		return RunSpecs(specs)
	}
	groups := make(map[Spec][]int)
	var groupOrder []Spec
	for i, s := range specs {
		if s.Scheme == core.SchemeNone || s.Threads > 1 {
			continue
		}
		k := forkGroupKey(s)
		if _, seen := groups[k]; !seen {
			groupOrder = append(groupOrder, k)
		}
		groups[k] = append(groups[k], i)
	}

	// Units of parallel work: every scratch spec individually, plus every
	// multi-spec fork group (whose members fan out again once its prefix
	// exists).
	type unit struct {
		specIdx  int   // >= 0: scratch run of specs[specIdx]
		groupIdx []int // else: fork group over these spec indices
	}
	var units []unit
	inGroup := make([]bool, len(specs))
	for _, k := range groupOrder {
		idxs := groups[k]
		if len(idxs) < 2 {
			continue
		}
		for _, i := range idxs {
			inGroup[i] = true
		}
		units = append(units, unit{specIdx: -1, groupIdx: idxs})
	}
	for i := range specs {
		if !inGroup[i] {
			units = append(units, unit{specIdx: i})
		}
	}

	outs := make([]Outcome, len(specs))
	err := parallelFor(len(units), func(u int) error {
		if i := units[u].specIdx; i >= 0 {
			var err error
			outs[i], err = Run(specs[i])
			return err
		}
		idxs := units[u].groupIdx
		pre, err := buildPrefix(specs[idxs[0]])
		if err != nil {
			return err
		}
		if !pre.forked {
			for _, i := range idxs {
				outs[i] = pre.outcome
				outs[i].Spec = specs[i]
			}
			return nil
		}
		return parallelFor(len(idxs), func(j int) error {
			var err error
			outs[idxs[j]], err = runFork(pre, specs[idxs[j]])
			return err
		})
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}
