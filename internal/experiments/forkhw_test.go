package experiments

import (
	"reflect"
	"testing"

	"ffccd/internal/arch"
	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/kv"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
	"ffccd/internal/workload"
)

// stubFwd answers every lookup with a fixed displacement, giving a warm
// PMFTLB something functional to delegate to during probes.
type stubFwd struct{}

func (stubFwd) LookupAddr(_ *sim.Ctx, src uint64) (uint64, bool) { return src + 64, true }

// probeCLU drives a unit through a fixed trace — same-page runs inside the
// bloom ranges plus pages outside every range — and returns the cycles the
// trace charged. Two units in identical states must charge identical cycles.
func probeCLU(u *arch.CheckLookupUnit, cfg *sim.Config, bs *arch.BloomSet) uint64 {
	ctx := sim.NewCtx(cfg)
	for i := 0; i < 96; i++ {
		va := uint64(0x40000) + uint64(i%6)<<arch.FrameShift + uint64(i)*8
		u.CheckLookup(ctx, va, bs, stubFwd{})
	}
	return ctx.Clock.Total()
}

// TestForkInsideOpenEpoch captures a machine checkpoint while a
// defragmentation epoch is open — RBB armed and mid-compaction, a warm
// checklookup unit parked on the GC context — and verifies the checkpoint
// carries the architectural hot state and that restoreHW replants it exactly:
// bit-identical RBB and CLU state, and identical probe cycles from the
// restored unit.
func TestForkInsideOpenEpoch(t *testing.T) {
	spec := Spec{Store: "LL", Threads: 1, Scheme: core.SchemeFFCCDCheckLookup,
		Scale: 0.001, PageShift: 12, Seed: 11}
	spec.Trigger, spec.Target = core.NormalParams()
	wl := wlFor(spec)
	env, err := NewEnv(poolSizeFor(wl), spec.PageShift)
	if err != nil {
		t.Fatal(err)
	}
	env.RT.Device().SetExclusive(true)
	store, err := BuildStore(env.Ctx, env.Pool, spec.Store, wl)
	if err != nil {
		t.Fatal(err)
	}
	gcCtx := sim.NewCtx(&env.Cfg)
	eng := core.NewEngine(env.Pool, core.Options{
		Scheme: spec.Scheme, TriggerRatio: spec.Trigger,
		TargetRatio: spec.Target, BatchObjects: 64,
	})
	var r *workload.Runner
	opened := false
	wl.Maintenance = func() {
		if opened || env.Pool.Heap().Frag(spec.PageShift).FragRatio <= spec.Trigger {
			return
		}
		if eng.BeginCycle(gcCtx) {
			opened = true
			r.RequestStop()
		}
	}
	r = workload.NewRunner(env.Ctx, env.Pool, store, wl)
	if _, finished, err := r.Run(); err != nil {
		t.Fatal(err)
	} else if finished || !opened {
		t.Fatalf("workload never opened an epoch (finished=%v opened=%v)", finished, opened)
	}

	// Mid-epoch: advance compaction so the RBB holds live state, and park a
	// warm checklookup unit on the GC context.
	eng.StepCompaction(gcCtx, 50_000)
	if eng.RBB() == nil {
		t.Fatal("checklookup-scheme engine has no RBB")
	}
	bs := arch.NewBloomSetFromPages(
		[]uint64{0x40000, 0x40000 + 1<<arch.FrameShift, 0x40000 + 2<<arch.FrameShift}, 2, 256)
	warm := arch.NewCheckLookupUnit(&env.Cfg)
	probeCLU(warm, &env.Cfg, bs)
	gcCtx.HW = warm

	var chk machineCheckpoint
	captureMachine(&chk, env, gcCtx, eng)
	if chk.rbb == nil {
		t.Fatal("machine checkpoint missed the RBB")
	}
	if chk.gcCLU == nil {
		t.Fatal("machine checkpoint missed the GC context's checklookup unit")
	}
	if chk.appCLU != nil {
		t.Fatal("phantom app-context checklookup unit captured")
	}

	// Restore into a brand-new machine, runFork-style.
	cfg := sim.DefaultConfig()
	reg := pmop.NewRegistry()
	ds.RegisterTypes(reg)
	kv.RegisterTypes(reg)
	dev := pmem.NewDeviceForRestore(&cfg, poolSizeFor(wl)*2)
	dev.Restore(&chk.dev)
	dev.SetExclusive(true)
	rt, err := pmop.AttachAtEpoch(&cfg, dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rt.Open("bench", reg)
	if err != nil {
		t.Fatal(err)
	}
	pool.Heap().Restore(&chk.heap)
	ctx2 := sim.NewCtx(&cfg)
	ctx2.Restore(&chk.appCtx)
	gcCtx2 := sim.NewCtx(&cfg)
	gcCtx2.Restore(&chk.gcCtx)
	eng2 := core.NewEngine(pool, core.Options{
		Scheme: spec.Scheme, TriggerRatio: spec.Trigger,
		TargetRatio: spec.Target, BatchObjects: 64,
	})
	restoreHW(&chk, eng2, ctx2, gcCtx2)

	if got := eng2.RBB().Checkpoint(); !reflect.DeepEqual(got, chk.rbb) {
		t.Errorf("restored RBB state diverges:\n  got  %+v\n  want %+v", got, chk.rbb)
	}
	u2, ok := gcCtx2.HW.(*arch.CheckLookupUnit)
	if !ok {
		t.Fatal("restoreHW did not attach a checklookup unit to the GC context")
	}
	if got := u2.Checkpoint(); !reflect.DeepEqual(got, chk.gcCLU) {
		t.Errorf("restored checklookup unit diverges:\n  got  %+v\n  want %+v", got, chk.gcCLU)
	}
	// From identical state, identical behaviour: the source unit and its
	// restored copy must charge the same cycles for the same probe trace.
	if a, b := probeCLU(warm, &env.Cfg, bs), probeCLU(u2, &cfg, bs); a != b {
		t.Errorf("probe cycles diverge: source %d, restored %d", a, b)
	}
	dev.ReleaseMedia()
	env.RT.Device().ReleaseMedia()
}
