package experiments

import (
	"strings"
	"testing"

	"ffccd/internal/obsv"
)

// servingTestOpts is a small serving grid that still triggers defrag on both
// schemes, sized for test wall-clock.
func servingTestOpts() ServingOptions {
	return ServingOptions{
		Scale:    0.002,
		Clients:  8,
		Ops:      12000,
		Keyspace: 1500,
		Seed:     7,
		Schemes:  []string{"ffccd", "stw"},
	}
}

// windowOnlyKey reports metric keys that exist only when the time series is
// enabled; everything else must be bit-identical with windows on or off.
func windowOnlyKey(k string) bool {
	return strings.HasSuffix(k, ".windows") || strings.HasSuffix(k, ".worst_window_p999_cycles")
}

// TestServingWindowsDoNotPerturb is the experiment-level bit-identity pin:
// the windowed time series (including the epoch tap into core.Engine and the
// device drain probe) must not change any simulated metric of the serving
// grid, while the enabled run actually produces windows, CSV rows, and bench
// window records.
func TestServingWindowsDoNotPerturb(t *testing.T) {
	opts := servingTestOpts()

	opts.NoWindows = true
	off, err := Serving(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.NoWindows = false
	on, err := Serving(opts)
	if err != nil {
		t.Fatal(err)
	}

	mOff, mOn := off.Metrics(), on.Metrics()
	for k, v := range mOff {
		if windowOnlyKey(k) {
			t.Fatalf("windows-off run emitted window metric %s", k)
		}
		if mOn[k] != v {
			t.Errorf("windows perturbed %s: off %v, on %v", k, v, mOn[k])
		}
	}
	for k := range mOn {
		if _, ok := mOff[k]; !ok && !windowOnlyKey(k) {
			t.Errorf("unexpected extra metric %s in windowed run", k)
		}
	}

	for _, v := range off.Variants {
		if v.Series != nil {
			t.Fatalf("%s: NoWindows run still built a series", v.Name)
		}
	}
	csv := on.CSV()
	bw := on.BenchWindows()
	for _, v := range on.Variants {
		key := schemeKey(v.Name)
		if v.Series == nil || v.Series.Count() == 0 {
			t.Fatalf("%s: windowed run captured nothing", v.Name)
		}
		if len(bw[key]) == 0 {
			t.Errorf("%s: BenchWindows has no rows", v.Name)
		}
		if !strings.Contains(csv, "\n"+key+",") && !strings.HasPrefix(csv, key+",") {
			t.Errorf("%s: CSV has no rows for scheme %q:\n%s", v.Name, key, csv)
		}
		if mOn["serving."+key+".windows"] == 0 {
			t.Errorf("%s: windows metric is zero", v.Name)
		}
	}
	if !strings.HasPrefix(csv, obsv.CSVHeader+"\n") {
		t.Errorf("CSV missing header:\n%.120s", csv)
	}
}

// TestServingSTWExemplarAttribution is the acceptance pin for tail
// attribution: at the working scale, every p999-class exemplar the STW run
// captures must blame its wait on an STW pause (directly or through the
// queue chain), referencing a pause interval the overlay log independently
// recorded — and for direct stalls, one that actually covers the wait.
func TestServingSTWExemplarAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale serving run; skipped under -short")
	}
	res, err := Serving(ServingOptions{Scale: 0.002, Schemes: []string{"stw"}})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Variants[0]
	if v.Series == nil {
		t.Fatal("no series on the stw variant")
	}

	type span struct{ start, end uint64 }
	ends := map[uint64]span{}
	for _, iv := range v.Series.Intervals() {
		if iv.Kind == obsv.IntervalSTW {
			ends[iv.End] = span{iv.Start, iv.End}
		}
	}
	if len(ends) == 0 {
		t.Fatal("stw run recorded no pause intervals")
	}

	p999 := uint64(v.P999)
	checked := 0
	for _, w := range v.Series.Windows() {
		for _, ex := range w.Exemplars {
			if ex.Latency < p999 {
				continue
			}
			checked++
			c := ex.Cause
			if dom := c.Dominant(); dom != "stw" && dom != "queue" {
				t.Errorf("p999 exemplar (lat %d, window %d) dominated by %q, want stw/queue: %+v",
					ex.Latency, w.Index, dom, c)
				continue
			}
			if c.STWRef == 0 {
				t.Errorf("p999 exemplar (lat %d, window %d) has no STW chain ref: %+v",
					ex.Latency, w.Index, c)
				continue
			}
			iv, ok := ends[c.STWRef]
			if !ok {
				t.Errorf("exemplar stw_ref %d matches no recorded pause interval", c.STWRef)
				continue
			}
			// A directly-stalled request waited [Start-STWWait, Start) for
			// exactly that pause to lift.
			if c.STWWait > 0 && c.Dominant() == "stw" {
				if ex.Start != iv.end || ex.Start-c.STWWait < iv.start {
					t.Errorf("stall [%d,%d) not covered by its pause [%d,%d)",
						ex.Start-c.STWWait, ex.Start, iv.start, iv.end)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no p999-class exemplars captured; attribution check vacuous")
	}
}
