package experiments

import (
	"fmt"
	"strings"

	"ffccd/internal/core"
	"ffccd/internal/sim"
	"ffccd/internal/stats"
)

// BreakdownRow is one (store, scheme) cell of Figures 5/14/15: the
// defragmentation time split over the application-only baseline and the
// normalised total execution time.
type BreakdownRow struct {
	Store  string
	Scheme core.Scheme

	// Percent of baseline application time spent in each GC activity.
	MarkPct, SummaryPct, CopyPct, CheckLookupPct, MiscPct float64
	// GCPct is their sum — Fig. 14(a)'s bar height.
	GCPct float64
	// NormalizedTime is (application + defragmentation) / baseline —
	// Fig. 14(b). Values below ~1+GCPct mean defragmentation sped the
	// application up (fewer TLB/cache misses).
	NormalizedTime float64
	// FragReduction is the fragmentation reduction (eq. 1) vs baseline.
	FragReduction float64
	// SimCycles is the run's total simulated cycles (app + GC), for the
	// machine-readable benchmark record.
	SimCycles uint64
}

// BreakdownResult is a whole figure.
type BreakdownResult struct {
	Title string
	Rows  []BreakdownRow
}

// allSchemes is the Fig. 14/15 scheme axis.
var allSchemes = []core.Scheme{
	core.SchemeEspresso, core.SchemeSFCCD, core.SchemeFFCCD, core.SchemeFFCCDCheckLookup,
}

// breakdownCell is one (store, threads) column of a breakdown figure.
type breakdownCell struct {
	store   string
	threads int
}

// runBreakdowns measures every cell under every scheme against its no-GC
// baseline. All runs of the whole figure — one baseline plus one run per
// scheme for each cell — are fanned out together, so a figure's wall-clock
// is bounded by its slowest single run, not the sum. When the fork driver is
// enabled, each cell's scheme axis shares one checkpointed workload prefix
// (see fork.go) instead of rebuilding it per scheme.
func runBreakdowns(cells []breakdownCell, scale float64, schemes []core.Scheme) ([]BreakdownRow, error) {
	specs := make([]Spec, 0, len(cells)*(1+len(schemes)))
	for _, cell := range cells {
		base := Spec{
			Store: cell.store, Threads: cell.threads, Scheme: core.SchemeNone,
			Scale: scale, PageShift: 12, Seed: 11,
		}
		specs = append(specs, base)
		for _, scheme := range schemes {
			spec := base
			spec.Scheme = scheme
			spec.Trigger, spec.Target = core.NormalParams()
			specs = append(specs, spec)
		}
	}
	outs, err := RunSpecsForked(specs)
	if err != nil {
		return nil, err
	}

	var rows []BreakdownRow
	i := 0
	for _, cell := range cells {
		baseOut := outs[i]
		i++
		baseline := float64(baseOut.AppCycles())
		for _, scheme := range schemes {
			out := outs[i]
			i++
			row := BreakdownRow{
				Store:          cell.store,
				Scheme:         scheme,
				MarkPct:        pct(out.Cycles[sim.CatMark], baseline),
				SummaryPct:     pct(out.Cycles[sim.CatSummary], baseline),
				CopyPct:        pct(out.Cycles[sim.CatCopy], baseline),
				CheckLookupPct: pct(out.Cycles[sim.CatCheckLookup], baseline),
				MiscPct:        pct(out.Cycles[sim.CatGCMisc], baseline),
				NormalizedTime: float64(out.TotalCycles()) / baseline,
				SimCycles:      out.TotalCycles(),
			}
			row.GCPct = row.MarkPct + row.SummaryPct + row.CopyPct + row.CheckLookupPct + row.MiscPct
			row.FragReduction = fragReduction(baseOut, out)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func pct(v uint64, base float64) float64 {
	if base == 0 {
		return 0
	}
	return float64(v) / base * 100
}

// fragReduction implements eq. 1 of the paper.
func fragReduction(base, ours Outcome) float64 {
	denom := base.AvgFootprintMB - base.AvgLiveMB
	if denom <= 0 {
		return 0
	}
	return (base.AvgFootprintMB - ours.AvgFootprintMB) / denom * 100
}

// Figure5 reproduces Fig. 5: the Espresso-design baseline GC overhead
// breakdown on the five microbenchmarks.
func Figure5(scale float64) (BreakdownResult, error) {
	res := BreakdownResult{Title: "Figure 5 — Espresso (baseline crash-consistent GC) overhead breakdown"}
	rows, err := runBreakdowns(microCells(), scale, []core.Scheme{core.SchemeEspresso})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// microCells returns the microbenchmark columns (all single-threaded).
func microCells() []breakdownCell {
	cells := make([]breakdownCell, len(Micros))
	for i, store := range Micros {
		cells[i] = breakdownCell{store: store, threads: 1}
	}
	return cells
}

// Figure14 reproduces Fig. 14: defragmentation time breakdown and
// normalised execution time for the microbenchmarks under all four schemes.
func Figure14(scale float64) (BreakdownResult, error) {
	res := BreakdownResult{Title: "Figure 14 — defragmentation overhead on microbenchmarks"}
	rows, err := runBreakdowns(microCells(), scale, allSchemes)
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// Figure15 reproduces Fig. 15: the same axes on the concurrent data
// structures and KV applications.
func Figure15(scale float64) (BreakdownResult, error) {
	res := BreakdownResult{Title: "Figure 15 — defragmentation overhead on applications"}
	cells := []breakdownCell{{"BzTree", 1}, {"FPTree", 1}, {"Echo", 1}, {"pmemkv", 1}}
	rows, err := runBreakdowns(cells, scale, allSchemes)
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

func (r BreakdownResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, r.Title)
	t := stats.NewTable("store", "scheme", "mark%", "summary%", "copy%", "chk+lkp%", "misc%", "gc-total%", "norm-time", "frag-red%")
	for _, row := range r.Rows {
		t.Add(row.Store, row.Scheme.String(), row.MarkPct, row.SummaryPct, row.CopyPct,
			row.CheckLookupPct, row.MiscPct, row.GCPct, row.NormalizedTime, row.FragReduction)
	}
	b.WriteString(t.String())
	b.WriteString("\n")
	b.WriteString(r.GCShares())
	return b.String()
}

// GCShares renders Fig. 5(b)'s view: each GC activity as a share of total
// defragmentation time (rather than of application time) — the breakdown
// showing that the compacting phase's copy-persist and check+lookup dominate.
func (r BreakdownResult) GCShares() string {
	t := stats.NewTable("store", "scheme", "mark", "summary", "copy", "chk+lkp", "misc")
	for _, row := range r.Rows {
		if row.GCPct == 0 {
			continue
		}
		share := func(v float64) string { return fmt.Sprintf("%.0f%%", v/row.GCPct*100) }
		t.Add(row.Store, row.Scheme.String(), share(row.MarkPct), share(row.SummaryPct),
			share(row.CopyPct), share(row.CheckLookupPct), share(row.MiscPct))
	}
	return "GC-time shares (Fig. 5b view):\n" + t.String()
}

// CopyReductionVsEspresso summarises, per store, how much each scheme cut
// the data-copy slice relative to Espresso — the headline §7.2 numbers
// (SFCCD ≈40 %, FFCCD ≈66–70 %).
func (r BreakdownResult) CopyReductionVsEspresso() map[string]map[string]float64 {
	byStore := map[string]map[core.Scheme]BreakdownRow{}
	for _, row := range r.Rows {
		if byStore[row.Store] == nil {
			byStore[row.Store] = map[core.Scheme]BreakdownRow{}
		}
		byStore[row.Store][row.Scheme] = row
	}
	out := map[string]map[string]float64{}
	for store, rows := range byStore {
		esp, ok := rows[core.SchemeEspresso]
		if !ok || esp.CopyPct == 0 {
			continue
		}
		out[store] = map[string]float64{}
		for scheme, row := range rows {
			if scheme == core.SchemeEspresso {
				continue
			}
			out[store][scheme.String()] = (esp.CopyPct - row.CopyPct) / esp.CopyPct * 100
		}
	}
	return out
}

// Metrics returns the headline numbers plus total simulated cycles, for the
// machine-readable benchmark record (cmd/ffccd-bench -json).
func (r BreakdownResult) Metrics() map[string]float64 {
	var gc, norm float64
	var cycles uint64
	for _, row := range r.Rows {
		gc += row.GCPct
		norm += row.NormalizedTime
		cycles += row.SimCycles
	}
	n := float64(len(r.Rows))
	if n == 0 {
		return nil
	}
	return map[string]float64{
		"avg_gc_over_app_pct": gc / n,
		"avg_norm_time":       norm / n,
		"sim_cycles_total":    float64(cycles),
	}
}

// CSV renders the breakdown rows as comma-separated values — plot-ready
// Figure 5/14/15 data.
func (r BreakdownResult) CSV() string {
	var b strings.Builder
	b.WriteString("store,scheme,mark,summary,copy,checklookup,misc,gctotal,normtime,fragreduction\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.4f,%.2f\n",
			row.Store, row.Scheme, row.MarkPct, row.SummaryPct, row.CopyPct,
			row.CheckLookupPct, row.MiscPct, row.GCPct, row.NormalizedTime, row.FragReduction)
	}
	return b.String()
}
