package experiments

import (
	"fmt"
	"strings"

	"ffccd/internal/core"
	"ffccd/internal/sim"
	"ffccd/internal/stats"
)

// BreakdownRow is one (store, scheme) cell of Figures 5/14/15: the
// defragmentation time split over the application-only baseline and the
// normalised total execution time.
type BreakdownRow struct {
	Store  string
	Scheme core.Scheme

	// Percent of baseline application time spent in each GC activity.
	MarkPct, SummaryPct, CopyPct, CheckLookupPct, MiscPct float64
	// GCPct is their sum — Fig. 14(a)'s bar height.
	GCPct float64
	// NormalizedTime is (application + defragmentation) / baseline —
	// Fig. 14(b). Values below ~1+GCPct mean defragmentation sped the
	// application up (fewer TLB/cache misses).
	NormalizedTime float64
	// FragReduction is the fragmentation reduction (eq. 1) vs baseline.
	FragReduction float64
}

// BreakdownResult is a whole figure.
type BreakdownResult struct {
	Title string
	Rows  []BreakdownRow
}

// allSchemes is the Fig. 14/15 scheme axis.
var allSchemes = []core.Scheme{
	core.SchemeEspresso, core.SchemeSFCCD, core.SchemeFFCCD, core.SchemeFFCCDCheckLookup,
}

// runBreakdown measures one store under every scheme against the no-GC
// baseline.
func runBreakdown(store string, threads int, scale float64, schemes []core.Scheme) ([]BreakdownRow, error) {
	base := Spec{
		Store: store, Threads: threads, Scheme: core.SchemeNone,
		Scale: scale, PageShift: 12, Seed: 11,
	}
	baseOut, err := Run(base)
	if err != nil {
		return nil, err
	}
	baseline := float64(baseOut.AppCycles())

	var rows []BreakdownRow
	for _, scheme := range schemes {
		spec := base
		spec.Scheme = scheme
		spec.Trigger, spec.Target = core.NormalParams()
		out, err := Run(spec)
		if err != nil {
			return nil, err
		}
		row := BreakdownRow{
			Store:          store,
			Scheme:         scheme,
			MarkPct:        pct(out.Cycles[sim.CatMark], baseline),
			SummaryPct:     pct(out.Cycles[sim.CatSummary], baseline),
			CopyPct:        pct(out.Cycles[sim.CatCopy], baseline),
			CheckLookupPct: pct(out.Cycles[sim.CatCheckLookup], baseline),
			MiscPct:        pct(out.Cycles[sim.CatGCMisc], baseline),
			NormalizedTime: float64(out.TotalCycles()) / baseline,
		}
		row.GCPct = row.MarkPct + row.SummaryPct + row.CopyPct + row.CheckLookupPct + row.MiscPct
		row.FragReduction = fragReduction(baseOut, out)
		rows = append(rows, row)
	}
	return rows, nil
}

func pct(v uint64, base float64) float64 {
	if base == 0 {
		return 0
	}
	return float64(v) / base * 100
}

// fragReduction implements eq. 1 of the paper.
func fragReduction(base, ours Outcome) float64 {
	denom := base.AvgFootprintMB - base.AvgLiveMB
	if denom <= 0 {
		return 0
	}
	return (base.AvgFootprintMB - ours.AvgFootprintMB) / denom * 100
}

// Figure5 reproduces Fig. 5: the Espresso-design baseline GC overhead
// breakdown on the five microbenchmarks.
func Figure5(scale float64) (BreakdownResult, error) {
	res := BreakdownResult{Title: "Figure 5 — Espresso (baseline crash-consistent GC) overhead breakdown"}
	for _, store := range Micros {
		rows, err := runBreakdown(store, 1, scale, []core.Scheme{core.SchemeEspresso})
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// Figure14 reproduces Fig. 14: defragmentation time breakdown and
// normalised execution time for the microbenchmarks under all four schemes.
func Figure14(scale float64) (BreakdownResult, error) {
	res := BreakdownResult{Title: "Figure 14 — defragmentation overhead on microbenchmarks"}
	for _, store := range Micros {
		rows, err := runBreakdown(store, 1, scale, allSchemes)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// Figure15 reproduces Fig. 15: the same axes on the concurrent data
// structures and KV applications.
func Figure15(scale float64) (BreakdownResult, error) {
	res := BreakdownResult{Title: "Figure 15 — defragmentation overhead on applications"}
	apps := []struct {
		store   string
		threads int
	}{{"BzTree", 1}, {"FPTree", 1}, {"Echo", 1}, {"pmemkv", 1}}
	for _, app := range apps {
		rows, err := runBreakdown(app.store, app.threads, scale, allSchemes)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

func (r BreakdownResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, r.Title)
	t := stats.NewTable("store", "scheme", "mark%", "summary%", "copy%", "chk+lkp%", "misc%", "gc-total%", "norm-time", "frag-red%")
	for _, row := range r.Rows {
		t.Add(row.Store, row.Scheme.String(), row.MarkPct, row.SummaryPct, row.CopyPct,
			row.CheckLookupPct, row.MiscPct, row.GCPct, row.NormalizedTime, row.FragReduction)
	}
	b.WriteString(t.String())
	b.WriteString("\n")
	b.WriteString(r.GCShares())
	return b.String()
}

// GCShares renders Fig. 5(b)'s view: each GC activity as a share of total
// defragmentation time (rather than of application time) — the breakdown
// showing that the compacting phase's copy-persist and check+lookup dominate.
func (r BreakdownResult) GCShares() string {
	t := stats.NewTable("store", "scheme", "mark", "summary", "copy", "chk+lkp", "misc")
	for _, row := range r.Rows {
		if row.GCPct == 0 {
			continue
		}
		share := func(v float64) string { return fmt.Sprintf("%.0f%%", v/row.GCPct*100) }
		t.Add(row.Store, row.Scheme.String(), share(row.MarkPct), share(row.SummaryPct),
			share(row.CopyPct), share(row.CheckLookupPct), share(row.MiscPct))
	}
	return "GC-time shares (Fig. 5b view):\n" + t.String()
}

// CopyReductionVsEspresso summarises, per store, how much each scheme cut
// the data-copy slice relative to Espresso — the headline §7.2 numbers
// (SFCCD ≈40 %, FFCCD ≈66–70 %).
func (r BreakdownResult) CopyReductionVsEspresso() map[string]map[string]float64 {
	byStore := map[string]map[core.Scheme]BreakdownRow{}
	for _, row := range r.Rows {
		if byStore[row.Store] == nil {
			byStore[row.Store] = map[core.Scheme]BreakdownRow{}
		}
		byStore[row.Store][row.Scheme] = row
	}
	out := map[string]map[string]float64{}
	for store, rows := range byStore {
		esp, ok := rows[core.SchemeEspresso]
		if !ok || esp.CopyPct == 0 {
			continue
		}
		out[store] = map[string]float64{}
		for scheme, row := range rows {
			if scheme == core.SchemeEspresso {
				continue
			}
			out[store][scheme.String()] = (esp.CopyPct - row.CopyPct) / esp.CopyPct * 100
		}
	}
	return out
}

// CSV renders the breakdown rows as comma-separated values — plot-ready
// Figure 5/14/15 data.
func (r BreakdownResult) CSV() string {
	var b strings.Builder
	b.WriteString("store,scheme,mark,summary,copy,checklookup,misc,gctotal,normtime,fragreduction\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.4f,%.2f\n",
			row.Store, row.Scheme, row.MarkPct, row.SummaryPct, row.CopyPct,
			row.CheckLookupPct, row.MiscPct, row.GCPct, row.NormalizedTime, row.FragReduction)
	}
	return b.String()
}
