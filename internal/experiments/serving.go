package experiments

import (
	"fmt"
	"strings"

	"ffccd/internal/alloc"
	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/kv"
	"ffccd/internal/mesh"
	"ffccd/internal/obsv"
	"ffccd/internal/redisws"
	"ffccd/internal/sim"
	"ffccd/internal/stats"
)

// ServingOptions parameterizes the serving grid. Zero values select
// paper-regime defaults scaled by Scale (the same knob every other
// experiment uses; 1.0 is the paper's full setup).
type ServingOptions struct {
	Scale      float64
	Clients    int
	Ops        int
	Keyspace   int
	RatePerSec float64 // <= 0 auto-calibrates (each scheme lands on the same rate)
	Seed       int64
	Schemes    []string // subset of "none", "ffccd", "stw", "mesh"; nil = all

	// Shards is the number of independent simulated machines the keyspace is
	// hash-partitioned across (<= 1 = one machine, the pre-sharding setup).
	// Each shard gets its own device, heap, clock domain, scheme engine, and
	// RNG stream; shards run host-parallel as workpool jobs and their
	// results merge deterministically (see internal/redisws/shard.go).
	Shards int

	// WindowCycles is the time-series window width in simulated cycles
	// (0 = obsv.DefaultWindowCycles). ExemplarK is the worst-request
	// exemplars kept per window (0 = obsv.DefaultExemplarK).
	WindowCycles uint64
	ExemplarK    int
	// NoWindows disables the windowed time series. The layer is
	// non-perturbing either way; the knob exists for the bit-identity tests
	// that pin exactly that.
	NoWindows bool
}

// ServingVariant is one scheme's serving run.
type ServingVariant struct {
	Name       string
	P50        float64 // per-op latency percentiles, simulated cycles
	P99        float64
	P999       float64
	Max        float64
	MeanApp    float64 // decomposition: the op's own work…
	MeanInterf float64 // …barrier/checklookup interference…
	MeanStall  float64 // …STW-pause wait…
	MeanQueue  float64 // …and open-loop queueing behind the connection.
	HitRate    float64
	FinalFragR float64
	SimCycles  uint64 // loader + clients + defrag thread
	Parallel   int    // ops executed in conflict-free batches
	Serial     int
	Batches    int
	Evictions  int

	// Series is the run's windowed time series (per-window SLO metrics,
	// worst-request exemplars, GC overlay intervals); nil when
	// ServingOptions.NoWindows was set. In a sharded run this is the
	// deterministic merge of the per-shard series.
	Series *obsv.TimeSeries

	// Shards is the machine count this variant ran on; PerShard and
	// ShardSeries carry the per-machine rows (nil when Shards <= 1).
	Shards      int
	PerShard    []ServingShard
	ShardSeries []*obsv.TimeSeries
}

// ServingShard is one machine's row of a sharded serving variant.
type ServingShard struct {
	Shard     int
	Ops       int
	P50       float64
	P999      float64
	Rate      float64
	SimCycles uint64
	Parallel  int
	Serial    int
	Evictions int
}

// ServingResult is the whole serving grid.
type ServingResult struct {
	Clients  int
	Ops      int
	Shards   int
	Rate     float64 // offered load (ops/sec), equal across schemes
	Variants []ServingVariant
}

// servingDefaults fills unset options from Scale.
func servingDefaults(o ServingOptions) ServingOptions {
	if o.Scale <= 0 {
		o.Scale = 0.002
	}
	if o.Keyspace <= 0 {
		o.Keyspace = int(1_000_000 * o.Scale * 20)
		if o.Keyspace < 2000 {
			o.Keyspace = 2000
		}
	}
	if o.Ops <= 0 {
		o.Ops = 6 * o.Keyspace
	}
	if o.Clients <= 0 {
		o.Clients = 32
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if len(o.Schemes) == 0 {
		o.Schemes = []string{"none", "ffccd", "stw", "mesh"}
	}
	if o.WindowCycles == 0 {
		// Scale-aware default: the run's virtual makespan grows roughly
		// linearly with Scale (ops ∝ keyspace ∝ scale at a calibrated fixed
		// utilization), so a proportional window keeps the timeline at a
		// useful row count at any scale. 0.002 → 1M cycles (~0.4ms); capped
		// at obsv.DefaultWindowCycles (50M) for paper-scale runs.
		w := uint64(o.Scale * 500_000_000)
		if w < 250_000 {
			w = 250_000
		}
		if w > obsv.DefaultWindowCycles {
			w = obsv.DefaultWindowCycles
		}
		o.WindowCycles = w
	}
	return o
}

func servingConfig(o ServingOptions) redisws.ServeConfig {
	cfg := redisws.DefaultServeConfig()
	cfg.Clients = o.Clients
	cfg.Ops = o.Ops
	cfg.Keyspace = o.Keyspace
	cfg.RatePerSec = o.RatePerSec
	cfg.Seed = o.Seed
	// The Figure 16 fragmentation regime: LRU churn near the cap plus a
	// value-size drift halfway through, so defrag has holes to reclaim.
	cfg.MinVal, cfg.MaxVal = 240, 366
	cfg.MinVal2, cfg.MaxVal2 = 367, 492
	cfg.MaxLiveBytes = uint64(o.Keyspace) * 300 / 2
	cfg.MaintEvery = o.Keyspace / 8
	return cfg
}

// Serving runs the SLO grid: the same offered load against one machine per
// scheme, reporting per-op latency percentiles and their decomposition.
// This is the paper's §7.4 tail-latency story under open-loop load: STW
// pauses stall every in-flight and arriving op, so they surface at p999;
// FFCCD's short mark/summary pauses plus concurrent compaction trade that
// for small per-op barrier interference.
func Serving(o ServingOptions) (ServingResult, error) {
	o = servingDefaults(o)
	res := ServingResult{Clients: o.Clients, Ops: o.Ops, Shards: o.Shards}
	outs := make([]ServingVariant, len(o.Schemes))
	rates := make([]float64, len(o.Schemes))
	err := parallelFor(len(o.Schemes), func(i int) error {
		v, rate, err := runServingVariant(o.Schemes[i], o)
		outs[i], rates[i] = v, rate
		return err
	})
	if err != nil {
		return res, err
	}
	res.Variants = outs
	res.Rate = rates[0]
	for _, r := range rates[1:] {
		if r != res.Rate {
			return res, fmt.Errorf("experiments.Serving: unequal offered load across schemes (%v vs %v)", res.Rate, r)
		}
	}
	return res, nil
}

// servingMachine is one simulated machine of a serving variant: its
// environment, store, scheme engine, GC clock domain, and serving hooks.
// Every field is private to the machine's clock domain, so shards never
// share simulated state.
type servingMachine struct {
	env      *Env
	store    ds.Store
	hooks    redisws.ServeHooks
	gcCtx    *sim.Ctx
	eng      *core.Engine
	name     string
	series   *obsv.TimeSeries
	closeEng func()
}

// newServingMachine builds one machine for scheme. keys sizes the pool and
// store index (the machine's owned keyspace — the whole keyspace unsharded,
// the hash-owned subset per shard); shard/shards label the observability
// hookup.
func newServingMachine(scheme string, o ServingOptions, keys, shard, shards int) (*servingMachine, error) {
	env, err := NewEnv(uint64(keys)*512*6+(32<<20), 12)
	if err != nil {
		return nil, err
	}
	store, err := kv.NewEcho(env.Ctx, env.Pool, keys/2+64)
	if err != nil {
		return nil, err
	}
	m := &servingMachine{env: env, store: store, gcCtx: sim.NewCtx(&env.Cfg), name: scheme}

	switch scheme {
	case "none":
		m.name = "PMDK (baseline)"
	case "ffccd":
		m.name = "FFCCD"
		opt := core.Options{Scheme: core.SchemeFFCCDCheckLookup, TriggerRatio: 1.10, TargetRatio: 1.01, BatchObjects: 64}
		eng := core.NewEngine(env.Pool, opt)
		m.eng, m.closeEng = eng, eng.Close
		gcCtx := m.gcCtx
		open := false
		m.hooks.Maintenance = func(uint64) uint64 {
			if open || env.Pool.Heap().Frag(12).FragRatio <= opt.TriggerRatio {
				return 0
			}
			before := gcCtx.Clock.Cycles(sim.CatMark) + gcCtx.Clock.Cycles(sim.CatSummary)
			if !eng.BeginCycle(gcCtx) {
				return 0
			}
			open = true
			// Only the mark+summary phases stall the application (§2.3.2);
			// compaction proceeds concurrently behind the read barrier.
			return gcCtx.Clock.Cycles(sim.CatMark) + gcCtx.Clock.Cycles(sim.CatSummary) - before
		}
		m.hooks.EpochOpen = func() bool { return open }
		m.hooks.Step = func(n int) (bool, uint64) {
			eng.StepCompaction(gcCtx, n)
			if eng.EpochPending() > 0 {
				return true, 0
			}
			// Terminate: reference fixup + flush run stop-the-world.
			t0 := gcCtx.Clock.Total()
			eng.FinishCycle(gcCtx)
			open = false
			return false, gcCtx.Clock.Total() - t0
		}
	case "stw":
		m.name = "STW defrag"
		opt := core.Options{Scheme: core.SchemeEspresso, TriggerRatio: 1.10, TargetRatio: 1.01, BatchObjects: 64}
		eng := core.NewEngine(env.Pool, opt)
		m.eng, m.closeEng = eng, eng.Close
		gcCtx := m.gcCtx
		m.hooks.Maintenance = func(uint64) uint64 {
			if env.Pool.Heap().Frag(12).FragRatio <= opt.TriggerRatio {
				return 0
			}
			pause, _ := eng.RunCycleSTW(gcCtx)
			return pause
		}
	case "mesh":
		m.name = "Mesh"
		d := mesh.New(env.Pool)
		gcCtx := m.gcCtx
		m.hooks.Maintenance = func(uint64) uint64 {
			before := gcCtx.Clock.Total()
			d.RunCycle(gcCtx)
			return gcCtx.Clock.Total() - before // meshing pauses the world
		}
		m.hooks.Foot = func() alloc.FragStats { return d.PhysFrag(12) }
	default:
		return nil, fmt.Errorf("experiments.Serving: unknown scheme %q", scheme)
	}

	if !o.NoWindows {
		// The series label is the scheme on every shard; exemplar stall
		// causes carry the shard id, which the merge's total order uses.
		m.series = obsv.NewTimeSeries(scheme, o.WindowCycles, o.ExemplarK)
		m.hooks.Series = m.series
		if m.eng != nil {
			m.hooks.EpochInfo = m.eng.OpenEpoch
		}
	}
	if col := obsCollector.Load(); col != nil {
		label := "serving/" + scheme
		if shards > 1 {
			label = fmt.Sprintf("serving/%s/s%d", scheme, shard)
		}
		ob := col.NewObs(label)
		ob.Series = m.series
		ob.Tracer.Name(env.Ctx, "loader")
		ob.Tracer.Name(m.gcCtx, "gc")
		env.Pool.Device().SetObs(ob)
		if m.eng != nil {
			m.eng.SetObs(ob)
		}
		registerRunGroups(ob, env.Ctx, m.gcCtx, m.eng)
	}
	return m, nil
}

func runServingVariant(scheme string, o ServingOptions) (ServingVariant, float64, error) {
	n := o.Shards
	if n < 1 {
		n = 1
	}
	cfgs := redisws.ShardConfigs(servingConfig(o), n)
	machines := make([]*servingMachine, 0, n)
	defer func() {
		for _, m := range machines {
			if m.closeEng != nil {
				m.closeEng()
			}
		}
	}()
	shards := make([]redisws.Shard, n)
	for i := 0; i < n; i++ {
		keys := o.Keyspace
		if n > 1 {
			keys = len(redisws.OwnedKeys(uint64(o.Keyspace), i, n))
		}
		m, err := newServingMachine(scheme, o, keys, i, n)
		if err != nil {
			return ServingVariant{}, 0, err
		}
		machines = append(machines, m)
		shards[i] = redisws.Shard{Ctx: m.env.Ctx, Pool: m.env.Pool, Store: m.store, Hooks: m.hooks}
	}

	sh, err := redisws.ServeSharded(shards, cfgs)
	if err != nil {
		return ServingVariant{}, 0, err
	}
	out := sh.Merged

	var series *obsv.TimeSeries
	var shardSeries []*obsv.TimeSeries
	if !o.NoWindows {
		if n == 1 {
			series = machines[0].series
		} else {
			shardSeries = make([]*obsv.TimeSeries, n)
			for i, m := range machines {
				shardSeries[i] = m.series
			}
			series, err = redisws.MergeShardSeries(scheme, o.WindowCycles, o.ExemplarK, shardSeries)
			if err != nil {
				return ServingVariant{}, 0, err
			}
		}
	}

	simTotal := out.SimCycles
	for _, m := range machines {
		simTotal += m.gcCtx.Clock.Total()
	}

	nOps := float64(out.Ops)
	v := ServingVariant{
		Name:       machines[0].name,
		P50:        out.Lat.Percentile(50),
		P99:        out.Lat.Percentile(99),
		P999:       out.Lat.Percentile(99.9),
		Max:        out.Lat.Max(),
		MeanApp:    float64(out.AppCycles) / nOps,
		MeanInterf: float64(out.InterfCycles) / nOps,
		MeanStall:  float64(out.StallWaitCycles) / nOps,
		MeanQueue:  float64(out.QueueWaitCycles) / nOps,
		FinalFragR: out.Final.FragRatio,
		SimCycles:  simTotal,
		Parallel:   out.ParallelOps,
		Serial:     out.SerialOps,
		Batches:    out.Batches,
		Evictions:  out.Evictions,
		Series:     series,
		Shards:     n,
	}
	if n > 1 {
		v.ShardSeries = shardSeries
		v.PerShard = make([]ServingShard, n)
		for i := range sh.Shards {
			r := &sh.Shards[i]
			v.PerShard[i] = ServingShard{
				Shard:     i,
				Ops:       r.Ops,
				P50:       r.Lat.Percentile(50),
				P999:      r.Lat.Percentile(99.9),
				Rate:      r.RateUsed,
				SimCycles: r.SimCycles + machines[i].gcCtx.Clock.Total(),
				Parallel:  r.ParallelOps,
				Serial:    r.SerialOps,
				Evictions: r.Evictions,
			}
		}
	}
	if out.Gets > 0 {
		v.HitRate = float64(out.Hits) / float64(out.Gets)
	}
	return v, out.RateUsed, nil
}

func (r ServingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving — open-loop SLO comparison: %d clients, %d ops, %.0f ops/s offered",
		r.Clients, r.Ops, r.Rate)
	if r.Shards > 1 {
		fmt.Fprintf(&b, ", %d shards", r.Shards)
	}
	b.WriteString("\n")
	t := stats.NewTable("scheme", "p50(cyc)", "p99(cyc)", "p999(cyc)", "max(cyc)",
		"app(cyc)", "interf", "stall", "queue", "hit%", "fragR", "par-ops")
	for _, v := range r.Variants {
		t.Add(v.Name, v.P50, v.P99, v.P999, v.Max,
			v.MeanApp, v.MeanInterf, v.MeanStall, v.MeanQueue, v.HitRate*100, v.FinalFragR, v.Parallel)
	}
	b.WriteString(t.String())
	for _, v := range r.Variants {
		if len(v.PerShard) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nper-shard rows — %s:\n", v.Name)
		st := stats.NewTable("shard", "ops", "p50(cyc)", "p999(cyc)", "rate(ops/s)", "par-ops", "serial", "evict")
		for _, s := range v.PerShard {
			st.Add(s.Shard, s.Ops, s.P50, s.P999, s.Rate, s.Parallel, s.Serial, s.Evictions)
		}
		b.WriteString(st.String())
	}
	for _, v := range r.Variants {
		if v.Series == nil || v.Series.Count() == 0 {
			continue
		}
		b.WriteString("\nper-window p999 — " + v.Name + ":\n")
		b.WriteString(obsv.RenderTimeline(v.Series, 40))
		if ex, ok := v.Series.WorstExemplar(); ok {
			fmt.Fprintf(&b, "worst request: %s\n", ex)
		}
	}
	return b.String()
}

// CSV renders the per-window time series of every scheme as CSV rows (with
// header), the per-window export ffccd-bench -csv embeds in bench records.
func (r ServingResult) CSV() string {
	var b strings.Builder
	b.WriteString(obsv.CSVHeader + "\n")
	for _, v := range r.Variants {
		if v.Series != nil {
			b.WriteString(v.Series.CSV())
		}
	}
	return b.String()
}

// BenchWindows returns the per-window series keyed by scheme, the JSON shape
// bench records carry.
func (r ServingResult) BenchWindows() map[string][]obsv.WindowSnap {
	out := map[string][]obsv.WindowSnap{}
	for _, v := range r.Variants {
		if v.Series != nil && v.Series.Count() > 0 {
			out[schemeKey(v.Name)] = v.Series.Windows()
		}
	}
	return out
}

// Metrics flattens the grid for benchmark records; sim_cycles_total is the
// cross-host-parallelism determinism pin.
func (r ServingResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"serving.clients":      float64(r.Clients),
		"serving.ops":          float64(r.Ops),
		"serving.rate_per_sec": r.Rate,
	}
	if r.Shards > 0 {
		m["serving.shards"] = float64(r.Shards)
	}
	var total uint64
	for _, v := range r.Variants {
		k := "serving." + schemeKey(v.Name) + "."
		m[k+"p50_cycles"] = v.P50
		m[k+"p99_cycles"] = v.P99
		m[k+"p999_cycles"] = v.P999
		m[k+"max_cycles"] = v.Max
		m[k+"mean_app_cycles"] = v.MeanApp
		m[k+"mean_interf_cycles"] = v.MeanInterf
		m[k+"mean_stall_cycles"] = v.MeanStall
		m[k+"mean_queue_cycles"] = v.MeanQueue
		m[k+"hit_rate"] = v.HitRate
		m[k+"final_frag_ratio"] = v.FinalFragR
		m[k+"sim_cycles"] = float64(v.SimCycles)
		m[k+"parallel_ops"] = float64(v.Parallel)
		m[k+"serial_ops"] = float64(v.Serial)
		m[k+"batches"] = float64(v.Batches)
		if v.Series != nil {
			wins := v.Series.Windows()
			m[k+"windows"] = float64(len(wins))
			var worst uint64
			for _, w := range wins {
				if w.P999 > worst {
					worst = w.P999
				}
			}
			m[k+"worst_window_p999_cycles"] = float64(worst)
		}
		for _, s := range v.PerShard {
			sk := fmt.Sprintf("%sshard%d.", k, s.Shard)
			m[sk+"ops"] = float64(s.Ops)
			m[sk+"p999_cycles"] = s.P999
			m[sk+"sim_cycles"] = float64(s.SimCycles)
		}
		total += v.SimCycles
	}
	m["sim_cycles_total"] = float64(total)
	return m
}

func schemeKey(name string) string {
	switch name {
	case "PMDK (baseline)":
		return "none"
	case "FFCCD":
		return "ffccd"
	case "STW defrag":
		return "stw"
	case "Mesh":
		return "mesh"
	}
	return strings.ToLower(strings.ReplaceAll(name, " ", "_"))
}
