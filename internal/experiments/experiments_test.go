package experiments

import (
	"strings"
	"testing"

	"ffccd/internal/core"
)

// Small scale for CI: 1/2000 of the paper (2.5k inserts).
const testScale = 0.001

func TestRunBaselineAndFFCCD(t *testing.T) {
	base := Spec{Store: "LL", Threads: 1, Scheme: core.SchemeNone, Scale: testScale, PageShift: 12, Seed: 1}
	b, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if b.AvgFootprintMB <= 0 || b.AvgLiveMB <= 0 || b.AppCycles() == 0 {
		t.Fatalf("degenerate baseline: %+v", b)
	}
	if b.GCCycles() != 0 {
		t.Fatalf("baseline charged GC cycles: %d", b.GCCycles())
	}
	ours := base
	ours.Scheme = core.SchemeFFCCDCheckLookup
	ours.Trigger, ours.Target = core.NormalParams()
	o, err := Run(ours)
	if err != nil {
		t.Fatal(err)
	}
	if o.Engine.Cycles == 0 {
		t.Fatal("no defragmentation cycles ran")
	}
	if o.AvgFootprintMB >= b.AvgFootprintMB {
		t.Errorf("footprint not reduced: %.2f vs %.2f", o.AvgFootprintMB, b.AvgFootprintMB)
	}
	if red := fragReduction(b, o); red < 10 {
		t.Errorf("fragmentation reduction = %.1f%%, want >10%%", red)
	}
}

func TestRunConcurrent(t *testing.T) {
	spec := Spec{Store: "FPTree", Threads: 4, Scheme: core.SchemeFFCCD, Scale: testScale, PageShift: 12, Seed: 2}
	spec.Trigger, spec.Target = core.NormalParams()
	out, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalOps == 0 || out.AppCycles() == 0 {
		t.Fatalf("degenerate concurrent run: %+v", out)
	}
}

func TestFigure14SchemeOrdering(t *testing.T) {
	rows, err := runBreakdowns([]breakdownCell{{"LL", 1}}, testScale, allSchemes)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[core.Scheme]BreakdownRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	esp := byScheme[core.SchemeEspresso]
	sf := byScheme[core.SchemeSFCCD]
	ff := byScheme[core.SchemeFFCCD]
	cl := byScheme[core.SchemeFFCCDCheckLookup]
	// The paper's headline ordering: each design cuts the copy cost further.
	if !(esp.CopyPct > sf.CopyPct && sf.CopyPct > ff.CopyPct) {
		t.Errorf("copy%% ordering violated: esp=%.2f sfccd=%.2f ffccd=%.2f",
			esp.CopyPct, sf.CopyPct, ff.CopyPct)
	}
	// checklookup slashes the check+lookup slice.
	if cl.CheckLookupPct >= ff.CheckLookupPct {
		t.Errorf("checklookup did not reduce check+lookup: %.2f vs %.2f",
			cl.CheckLookupPct, ff.CheckLookupPct)
	}
	// Total defragmentation time must shrink from Espresso to FFCCD+CL.
	if cl.GCPct >= esp.GCPct {
		t.Errorf("FFCCD+CL gc%%=%.2f not below Espresso %.2f", cl.GCPct, esp.GCPct)
	}
}

func TestTable1And2Render(t *testing.T) {
	t1 := Table1()
	if !strings.Contains(t1, "2256 bytes") || !strings.Contains(t1, "PMFT") {
		t.Errorf("Table1 wrong:\n%s", t1)
	}
	t2 := Table2()
	if !strings.Contains(t2, "360") || !strings.Contains(t2, "RBB entries") {
		t.Errorf("Table2 wrong:\n%s", t2)
	}
}

func TestFigure1Shape(t *testing.T) {
	res, err := Figure1(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for name, runs := range res.Series {
		if len(runs) != 3 {
			t.Fatalf("%s: runs = %d", name, len(runs))
		}
		// Fragmentation must not improve run over run (at the tiny CI scale
		// the coarse scaled-huge-page series can plateau; the 4 KB series
		// must grow strictly).
		if runs[2].FragR < runs[0].FragR-0.01 {
			t.Errorf("%s: fragR improved across runs: %.2f → %.2f → %.2f",
				name, runs[0].FragR, runs[1].FragR, runs[2].FragR)
		}
		if name == "4KB" && !(runs[2].FragR > runs[0].FragR) {
			t.Errorf("4KB fragR did not grow: %.2f → %.2f → %.2f",
				runs[0].FragR, runs[1].FragR, runs[2].FragR)
		}
		if runs[2].ThroughputRel > runs[0].ThroughputRel+1 {
			t.Errorf("%s: throughput rose across runs: %v", name, runs)
		}
	}
}

func TestAblationPMFT(t *testing.T) {
	res, err := AblationPMFT(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Hardware checklookup must be the cheapest per op.
	if res.Rows[2].CyclesPerCheck >= res.Rows[1].CyclesPerCheck {
		t.Errorf("checklookup not cheaper: %.2f vs %.2f",
			res.Rows[2].CyclesPerCheck, res.Rows[1].CyclesPerCheck)
	}
}

func TestAblationWritesShape(t *testing.T) {
	res, err := AblationWrites(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[core.Scheme]AblationWritesRow{}
	for _, row := range res.Rows {
		byScheme[row.Scheme] = row
	}
	esp := byScheme[core.SchemeEspresso]
	ff := byScheme[core.SchemeFFCCD]
	if esp.MediaWrites == 0 || ff.MediaWrites == 0 {
		t.Fatalf("degenerate traffic: %+v", res)
	}
	// §3.3.3: the fence-free design incurs fewer PM writes per move.
	if ff.WritesPerMove >= esp.WritesPerMove {
		t.Errorf("FFCCD writes/move %.2f not below Espresso %.2f",
			ff.WritesPerMove, esp.WritesPerMove)
	}
	// And far fewer GC-issued fences overall.
	if ff.Sfences >= esp.Sfences {
		t.Errorf("FFCCD sfences %d not below Espresso %d", ff.Sfences, esp.Sfences)
	}
}

func TestBreakdownRenderings(t *testing.T) {
	rows, err := runBreakdowns([]breakdownCell{{"LL", 1}}, testScale, []core.Scheme{core.SchemeEspresso})
	if err != nil {
		t.Fatal(err)
	}
	res := BreakdownResult{Title: "t", Rows: rows}
	out := res.String()
	if !strings.Contains(out, "GC-time shares") || !strings.Contains(out, "espresso") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
	// Only Espresso present: the per-store map exists but holds no
	// comparisons.
	for store, m := range res.CopyReductionVsEspresso() {
		if len(m) != 0 {
			t.Errorf("unexpected reductions for %s: %v", store, m)
		}
	}
}

func TestFigure16Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Figure16(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 4 {
		t.Fatalf("variants = %d", len(res.Variants))
	}
	base := res.Variants[0]
	ffccd := res.Variants[1]
	if len(base.Samples) == 0 || len(ffccd.Samples) == 0 {
		t.Fatal("no samples")
	}
	// FFCCD must not end with a larger footprint than the baseline.
	bf := base.Samples[len(base.Samples)-1].Footprint
	ff := ffccd.Samples[len(ffccd.Samples)-1].Footprint
	if ff > bf {
		t.Errorf("FFCCD final footprint %d above baseline %d", ff, bf)
	}
}
