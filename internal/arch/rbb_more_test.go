package arch

import (
	"testing"
	"testing/quick"

	"ffccd/internal/pmem"
	"ffccd/internal/sim"
)

func TestRBBHeapBaseOffsetting(t *testing.T) {
	cfg, dev, ctx := testSetup()
	rbb := NewRBB(cfg, dev)
	heapBase := uint64(64 << 12) // heap starts at frame 64 of the device
	rbb.Configure(1<<20, heapBase, 32)
	dev.SetRBB(rbb)

	// A pending line below the heap base must be ignored.
	dev.Relocate(ctx, 4096, 0, 64)
	dev.Clwb(ctx, 4096)
	dev.Sfence(ctx)
	if rbb.Hits+rbb.Misses != 0 {
		t.Fatal("line below heap base recorded")
	}

	// A line inside frame 2 of the heap maps to bitmap word 2.
	dst := heapBase + 2<<FrameShift + 3<<pmem.LineShift
	dev.Relocate(ctx, dst, 0, 64)
	dev.Clwb(ctx, dst)
	dev.Sfence(ctx)
	if got := rbb.Read(ctx, 2); got != 1<<3 {
		t.Fatalf("frame 2 word = %b, want bit 3", got)
	}
}

func TestRBBRearmPreservesBitmap(t *testing.T) {
	cfg, dev, ctx := testSetup()
	rbb := NewRBB(cfg, dev)
	rbb.Configure(1<<20, 0, 64)
	dev.SetRBB(rbb)
	dev.Relocate(ctx, 5<<FrameShift, 0, 64)
	dev.Clwb(ctx, 5<<FrameShift)
	dev.Sfence(ctx)
	rbb.PowerLossFlush()

	// Rearm (post-crash resume) must keep existing bits; Configure zeroes.
	rbb.Rearm(1<<20, 0, 64)
	if rbb.Read(ctx, 5)&1 == 0 {
		t.Fatal("Rearm lost the reached bit")
	}
	rbb.Configure(1<<20, 0, 64)
	if rbb.Read(ctx, 5) != 0 {
		t.Fatal("Configure did not zero the bitmap")
	}
}

func TestRBBReadMergesBufferAndMedia(t *testing.T) {
	cfg, dev, ctx := testSetup()
	rbb := NewRBB(cfg, dev)
	rbb.Configure(1<<20, 0, 64)
	dev.SetRBB(rbb)
	// Bit for frame 1 resident only in the RBB entry (no flush).
	dev.Relocate(ctx, 1<<FrameShift, 0, 64)
	dev.Clwb(ctx, 1<<FrameShift)
	dev.Sfence(ctx)
	if rbb.Read(ctx, 1)&1 == 0 {
		t.Fatal("Read missed a buffered bit")
	}
}

func TestRBBBitAccumulationProperty(t *testing.T) {
	// Property: the merged bitmap equals the OR of every reported line,
	// regardless of eviction order, for arbitrary line sequences.
	cfg, dev, _ := testSetup()
	prop := func(raw []uint16) bool {
		rbb := NewRBB(cfg, dev)
		rbb.Configure(2<<20, 0, 64)
		ctx := sim.NewCtx(cfg)
		want := make(map[uint64]uint64)
		for _, r := range raw {
			frame := uint64(r) % 64
			line := uint64(r>>6) % 64
			addr := frame<<FrameShift | line<<pmem.LineShift
			rbb.LineReached(ctx, addr)
			want[frame] |= 1 << line
		}
		for frame, bits := range want {
			if got := rbb.Read(ctx, frame); got != bits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCheckLookupUnitReset(t *testing.T) {
	cfg, _, ctx := testSetup()
	u := NewCheckLookupUnit(cfg)
	page := uint64(3 << FrameShift)
	bs := NewBloomSetFromPages([]uint64{page}, 8, 1024)
	fwd := mapForwarder{page: 0x9000}
	u.CheckLookup(ctx, page, bs, fwd)
	u.Reset()
	u.CheckLookup(ctx, page, bs, fwd)
	if u.PMFTLBMisses != 2 {
		t.Errorf("misses = %d after reset, want 2 (cold both times)", u.PMFTLBMisses)
	}
}

func TestBloomGapSplitting(t *testing.T) {
	// Pages in two clusters separated by a huge gap, plus a scattered set:
	// clustered input → 2 tight ranges; scattered-but-dense input → 1 range.
	var clustered []uint64
	for i := uint64(0); i < 10; i++ {
		clustered = append(clustered, (50+i)<<FrameShift, (90000+i)<<FrameShift)
	}
	bs := NewBloomSetFromPages(clustered, 8, 1024)
	if len(bs.Ranges) != 2 {
		t.Fatalf("clustered ranges = %d, want 2", len(bs.Ranges))
	}
	if bs.rangeFor(40000<<FrameShift) >= 0 {
		t.Fatal("gap address covered")
	}

	var dense []uint64
	for i := uint64(0); i < 64; i++ {
		dense = append(dense, i*2<<FrameShift) // gaps of 1 page: below threshold
	}
	bs2 := NewBloomSetFromPages(dense, 8, 1024)
	if len(bs2.Ranges) != 1 {
		t.Fatalf("dense ranges = %d, want 1 (stable BFC)", len(bs2.Ranges))
	}
}
