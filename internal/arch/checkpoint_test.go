package arch

import (
	"testing"

	"ffccd/internal/pmem"
	"ffccd/internal/sim"
)

// The checkpoint tests all follow the fork-driver shape: run a prefix,
// checkpoint, then replay an identical continuation on (a) the original
// machine and (b) a freshly constructed machine restored from the
// checkpoint, and require bit-identical state — counters, simulated
// cycles, and persisted media.

// relocateLine drives one pending cacheline into the persistence domain.
func relocateLine(dev *pmem.Device, ctx *sim.Ctx, dst uint64) {
	dev.Relocate(ctx, dst, 1<<19, 64)
	dev.Clwb(ctx, dst)
	dev.Sfence(ctx)
}

const rbbBitmapBase = 1 << 20

func rbbMachine(t *testing.T) (*sim.Config, *pmem.Device, *RBB) {
	t.Helper()
	cfg, dev, _ := testSetup()
	rbb := NewRBB(cfg, dev)
	rbb.Configure(rbbBitmapBase, 0, 256)
	dev.SetRBB(rbb)
	return cfg, dev, rbb
}

// rbbContinuation is the shared post-checkpoint op sequence: it mixes hits
// on resident entries, misses that force evictions (dirty writebacks), and
// reads through the merged view.
func rbbContinuation(cfg *sim.Config, dev *pmem.Device, rbb *RBB, ctx *sim.Ctx) {
	for f := 0; f < cfg.RBBEntries+3; f++ {
		relocateLine(dev, ctx, uint64(f)<<FrameShift|uint64(f%8)<<pmem.LineShift)
	}
	relocateLine(dev, ctx, 2<<FrameShift|9<<pmem.LineShift) // hit or refetch
	rbb.Read(ctx, 1)
	rbb.Read(ctx, uint64(cfg.RBBEntries))
}

func compareRBB(t *testing.T, a, b *RBB, devA, devB *pmem.Device, ctxA, ctxB *sim.Ctx, nframes uint64) {
	t.Helper()
	if a.Hits != b.Hits || a.Misses != b.Misses || a.Writebacks != b.Writebacks {
		t.Fatalf("counters diverged: orig %d/%d/%d, restored %d/%d/%d",
			a.Hits, a.Misses, a.Writebacks, b.Hits, b.Misses, b.Writebacks)
	}
	for f := uint64(0); f < nframes; f++ {
		if wa, wb := a.Read(nil, f), b.Read(nil, f); wa != wb {
			t.Fatalf("frame %d reached word: orig %b, restored %b", f, wa, wb)
		}
	}
	sa, sb := ctxA.Clock.Snapshot(), ctxB.Clock.Snapshot()
	if sa != sb {
		t.Fatalf("continuation cycles diverged: orig %v, restored %v", sa, sb)
	}
	bufA := make([]byte, 8*nframes)
	bufB := make([]byte, 8*nframes)
	devA.MediaRead(rbbBitmapBase, bufA)
	devB.MediaRead(rbbBitmapBase, bufB)
	if string(bufA) != string(bufB) {
		t.Fatal("in-PM bitmap regions differ")
	}
}

func TestRBBCheckpointRestoreWithDirtyEntries(t *testing.T) {
	cfg, dev, rbb := rbbMachine(t)
	ctx := sim.NewCtx(cfg)

	// Prefix: warm the RBB past capacity so live entries are dirty and some
	// words have already been written back to media.
	for f := 0; f < cfg.RBBEntries+5; f++ {
		relocateLine(dev, ctx, uint64(f)<<FrameShift)
	}
	if rbb.Writebacks == 0 {
		t.Fatal("prefix produced no dirty evictions; test needs dirty entries")
	}
	devChk := dev.Checkpoint()
	rbbChk := rbb.Checkpoint()

	// Restore into a freshly built machine with the same geometry.
	cfg2, dev2, _ := testSetup()
	dev2.Restore(devChk)
	rbb2 := NewRBB(cfg2, dev2)
	rbb2.Restore(rbbChk)
	dev2.SetRBB(rbb2)

	ctxA, ctxB := sim.NewCtx(cfg), sim.NewCtx(cfg2)
	rbbContinuation(cfg, dev, rbb, ctxA)
	rbbContinuation(cfg2, dev2, rbb2, ctxB)
	compareRBB(t, rbb, rbb2, dev, dev2, ctxA, ctxB, 256)
}

func TestRBBCrashAfterRestore(t *testing.T) {
	cfg, dev, rbb := rbbMachine(t)
	ctx := sim.NewCtx(cfg)
	for f := 0; f < cfg.RBBEntries+5; f++ {
		relocateLine(dev, ctx, uint64(f)<<FrameShift)
	}
	devChk := dev.Checkpoint()
	rbbChk := rbb.Checkpoint()

	cfg2, dev2, _ := testSetup()
	dev2.Restore(devChk)
	rbb2 := NewRBB(cfg2, dev2)
	rbb2.Restore(rbbChk)
	dev2.SetRBB(rbb2)

	// Fault injection: run the same continuation on both machines, then
	// crash both mid-epoch. The ADR path (power-loss flush of cache pending
	// state and RBB entries) must persist identical reached bitmaps —
	// i.e. a crash replayed from a restored machine recovers exactly like
	// a crash on the original.
	ctxA, ctxB := sim.NewCtx(cfg), sim.NewCtx(cfg2)
	rbbContinuation(cfg, dev, rbb, ctxA)
	rbbContinuation(cfg2, dev2, rbb2, ctxB)

	dev.Crash()
	rbb.PowerLossFlush()
	dev2.Crash()
	rbb2.PowerLossFlush()

	bufA := make([]byte, 8*256)
	bufB := make([]byte, 8*256)
	dev.MediaRead(rbbBitmapBase, bufA)
	dev2.MediaRead(rbbBitmapBase, bufB)
	if string(bufA) != string(bufB) {
		t.Fatal("post-crash in-PM bitmaps differ between original and restored machine")
	}
	// The surviving bitmap must still reflect the prefix's reached lines.
	var word [8]byte
	dev2.MediaRead(rbbBitmapBase+0*8, word[:])
	if word[0]&1 == 0 {
		t.Fatal("restored machine lost frame 0's reached bit across the crash")
	}
}

func TestRBBRestoreGeometryMismatchPanics(t *testing.T) {
	cfg, dev, rbb := rbbMachine(t)
	chk := rbb.Checkpoint()
	small := sim.DefaultConfig()
	small.RBBEntries = cfg.RBBEntries / 2
	other := NewRBB(&small, dev)
	defer func() {
		if recover() == nil {
			t.Fatal("Restore with mismatched entry count did not panic")
		}
	}()
	other.Restore(chk)
}

// clMachine builds a BloomSet over two page clusters, a forwarder for a few
// addresses inside them, and a warm unit.
func clMachine() (*sim.Config, *BloomSet, mapForwarder, *CheckLookupUnit) {
	cfg := sim.DefaultConfig()
	var pages []uint64
	for i := uint64(0); i < 8; i++ {
		pages = append(pages, (100+i)<<FrameShift)    // cluster A
		pages = append(pages, (100000+i)<<FrameShift) // cluster B, far away
	}
	bs := NewBloomSetFromPages(pages, 4, 256)
	fwd := mapForwarder{}
	for i := uint64(0); i < 8; i++ {
		fwd[(100+i)<<FrameShift|64] = (500 + i) << FrameShift
		fwd[(100000+i)<<FrameShift|64] = (600 + i) << FrameShift
	}
	return &cfg, bs, fwd, NewCheckLookupUnit(&cfg)
}

// clContinuation mixes BFC hits, BFC refills (alternating clusters), PMFTLB
// hits and misses, and outside-every-range addresses.
func clContinuation(u *CheckLookupUnit, ctx *sim.Ctx, bs *BloomSet, fwd Forwarder, cfg *sim.Config) {
	for i := uint64(0); i < uint64(cfg.PMFTLBEntries)+4; i++ {
		u.CheckLookup(ctx, (100+i%8)<<FrameShift|64, bs, fwd)
		u.CheckLookup(ctx, (100000+i%8)<<FrameShift|64, bs, fwd)
		u.CheckLookup(ctx, (50000+i)<<FrameShift, bs, fwd) // outside all ranges
	}
}

func TestCheckLookupUnitCheckpointRestore(t *testing.T) {
	cfg, bs, fwd, u := clMachine()
	warm := sim.NewCtx(cfg)
	// Prefix: warm the BFC and partially fill the PMFTLB.
	for i := uint64(0); i < 6; i++ {
		u.CheckLookup(warm, (100+i)<<FrameShift|64, bs, fwd)
	}
	if u.PMFTLBMisses == 0 || u.BFCMisses == 0 {
		t.Fatal("prefix did not warm the unit")
	}
	chk := u.Checkpoint()

	u2 := NewCheckLookupUnit(cfg)
	u2.Restore(chk)

	ctxA, ctxB := sim.NewCtx(cfg), sim.NewCtx(cfg)
	clContinuation(u, ctxA, bs, fwd, cfg)
	clContinuation(u2, ctxB, bs, fwd, cfg)

	if u.BFCHits != u2.BFCHits || u.BFCMisses != u2.BFCMisses {
		t.Fatalf("BFC counters diverged: orig %d/%d, restored %d/%d",
			u.BFCHits, u.BFCMisses, u2.BFCHits, u2.BFCMisses)
	}
	if u.PMFTLBHits != u2.PMFTLBHits || u.PMFTLBMisses != u2.PMFTLBMisses {
		t.Fatalf("PMFTLB counters diverged: orig %d/%d, restored %d/%d",
			u.PMFTLBHits, u.PMFTLBMisses, u2.PMFTLBHits, u2.PMFTLBMisses)
	}
	if sa, sb := ctxA.Clock.Snapshot(), ctxB.Clock.Snapshot(); sa != sb {
		t.Fatalf("continuation cycles diverged: orig %v, restored %v", sa, sb)
	}

	// Functional results must match too (the structures are timing-only,
	// but a restored unit must not change lookup answers).
	dstA, okA := u.CheckLookup(sim.NewCtx(cfg), 103<<FrameShift|64, bs, fwd)
	dstB, okB := u2.CheckLookup(sim.NewCtx(cfg), 103<<FrameShift|64, bs, fwd)
	if dstA != dstB || okA != okB {
		t.Fatalf("lookup result diverged: orig (%#x,%v), restored (%#x,%v)", dstA, okA, dstB, okB)
	}
}

func TestCheckLookupUnitRestoreGeometryMismatchPanics(t *testing.T) {
	cfg, _, _, u := clMachine()
	chk := u.Checkpoint()
	small := *cfg
	small.PMFTLBEntries = cfg.PMFTLBEntries * 2
	other := NewCheckLookupUnit(&small)
	defer func() {
		if recover() == nil {
			t.Fatal("Restore with mismatched PMFTLB size did not panic")
		}
	}()
	other.Restore(chk)
}
