package arch

import (
	"sort"
	"sync/atomic"

	"ffccd/internal/bloom"
	"ffccd/internal/sim"
)

// CLUStats is an optional shared sink for checklookup-unit counters. Units
// are transient — one per read-barrier resolve context — so their own
// counters vanish with them; an engine that wants machine-wide BFC/PMFTLB
// totals (the obsv snapshot groups) hands every unit it creates the same
// CLUStats. Atomic because resolves run on every simulated thread. Purely
// host-side bookkeeping: it never charges cycles.
type CLUStats struct {
	BFCHits, BFCMisses       atomic.Uint64
	PMFTLBHits, PMFTLBMisses atomic.Uint64
}

// Map renders the counters as a snapshot-group map.
func (s *CLUStats) Map() map[string]uint64 {
	return map[string]uint64{
		"bfc_hits":      s.BFCHits.Load(),
		"bfc_misses":    s.BFCMisses.Load(),
		"pmftlb_hits":   s.PMFTLBHits.Load(),
		"pmftlb_misses": s.PMFTLBMisses.Load(),
	}
}

// Forwarder is the functional interface to the PM-aware forwarding table
// (built by the GC's summary phase). The PMFTLB models its lookup *timing*;
// values come from the table itself.
type Forwarder interface {
	// LookupAddr returns the destination address for a source address inside
	// a relocation page, and whether the address maps to a relocated object.
	LookupAddr(ctx *sim.Ctx, src uint64) (dst uint64, ok bool)
}

// BloomRange is one in-memory bloom filter covering a contiguous VA range
// (§4.3.2: "Several in-memory bloom filters are constructed to record all
// relocation pages during the summary phase"). Ranges are *tight* around the
// relocation pages they record: an address outside every range is resolved
// by the BFC's range compare alone — the cheap common case that gives
// checklookup its ≈80 % check+lookup reduction.
type BloomRange struct {
	Start, End uint64 // [Start, End)
	Filter     *bloom.Filter
}

// BloomSet holds the epoch's filters, ordered by Start.
type BloomSet struct {
	Ranges []BloomRange
}

// NewBloomSetFromPages builds filters of filterBytes each over the given
// relocation page addresses. The pages are split into at most n contiguous
// chunks at their largest VA gaps (and only at gaps of at least 64 pages), so
// clustered relocation sets get tight ranges — addresses between clusters
// resolve on the BFC's range compare alone — while scattered sets collapse to
// a single filter that keeps the one-entry Bloom Filter Cache stable. Both
// are the cheap paths that give checklookup its ≈80 % check+lookup reduction.
func NewBloomSetFromPages(pageVAs []uint64, n, filterBytes int) *BloomSet {
	if n < 1 {
		n = 1
	}
	bs := &BloomSet{}
	if len(pageVAs) == 0 {
		return bs
	}
	pages := append([]uint64(nil), pageVAs...)
	sort.Slice(pages, func(a, b int) bool { return pages[a] < pages[b] })

	// Choose up to n-1 split points at the largest gaps ≥ 64 pages.
	const minGap = 64 << FrameShift
	type gap struct {
		at   int // split before pages[at]
		size uint64
	}
	var gaps []gap
	for i := 1; i < len(pages); i++ {
		if g := pages[i] - pages[i-1]; g >= minGap {
			gaps = append(gaps, gap{i, g})
		}
	}
	sort.Slice(gaps, func(a, b int) bool { return gaps[a].size > gaps[b].size })
	if len(gaps) > n-1 {
		gaps = gaps[:n-1]
	}
	splits := []int{0}
	for _, g := range gaps {
		splits = append(splits, g.at)
	}
	sort.Ints(splits)
	splits = append(splits, len(pages))

	for i := 0; i+1 < len(splits); i++ {
		chunk := pages[splits[i]:splits[i+1]]
		r := BloomRange{
			Start:  chunk[0],
			End:    chunk[len(chunk)-1] + (1 << FrameShift),
			Filter: bloom.New(filterBytes, 4),
		}
		for _, pg := range chunk {
			r.Filter.Add(pg >> FrameShift)
		}
		bs.Ranges = append(bs.Ranges, r)
	}
	return bs
}

// rangeFor returns the index of the filter covering va, or -1.
func (bs *BloomSet) rangeFor(va uint64) int {
	for i := range bs.Ranges {
		if va >= bs.Ranges[i].Start && va < bs.Ranges[i].End {
			return i
		}
	}
	return -1
}

// CheckLookupUnit models the checklookup instruction's two hardware
// structures (§4.3.2): the Bloom Filter Cache holding one filter at a time,
// and the 16-entry PMFT Lookaside Buffer. Both only affect timing; the
// functional result always comes from the BloomSet and Forwarder.
//
// A CheckLookupUnit belongs to one simulated core; it is not safe for
// concurrent use (each worker thread gets its own, like a real per-core TLB).
type CheckLookupUnit struct {
	cfg *sim.Config

	// BFC state: which filter (by index into the BloomSet) is cached.
	bfcValid bool
	bfcIdx   int

	// PMFTLB state.
	tlb  []pmftlbEntry
	tick uint32

	// Counters.
	BFCHits, BFCMisses       uint64
	PMFTLBHits, PMFTLBMisses uint64

	// Shared, when non-nil, additionally receives every counter increment
	// (see CLUStats).
	Shared *CLUStats
}

type pmftlbEntry struct {
	valid bool
	frame uint64
	age   uint32
}

// NewCheckLookupUnit builds a per-core unit with Table 2 geometry.
func NewCheckLookupUnit(cfg *sim.Config) *CheckLookupUnit {
	return &CheckLookupUnit{
		cfg: cfg,
		tlb: make([]pmftlbEntry, cfg.PMFTLBEntries),
	}
}

// Reset restores power-on state: BFC and PMFTLB invalid, LRU clock at zero.
// A reset unit simulates bit-identically to a freshly constructed one (the
// counters are host-side totals and charge nothing), which is what lets
// engines recycle units across resolves instead of allocating each time.
func (u *CheckLookupUnit) Reset() {
	u.bfcValid = false
	for i := range u.tlb {
		u.tlb[i] = pmftlbEntry{}
	}
	u.tick = 0
}

// check runs the BFC stage: is va possibly on a relocation page?
func (u *CheckLookupUnit) check(ctx *sim.Ctx, va uint64, bs *BloomSet) bool {
	idx := bs.rangeFor(va)
	if idx < 0 {
		ctx.Charge(u.cfg.BloomCheckLatency)
		return false
	}
	if !u.bfcValid || u.bfcIdx != idx {
		// §4.3.2 step 1: fetch the covering bloom filter from memory.
		u.BFCMisses++
		if u.Shared != nil {
			u.Shared.BFCMisses.Add(1)
		}
		ctx.Charge(u.cfg.BloomMissLatency)
		u.bfcValid = true
		u.bfcIdx = idx
	} else {
		u.BFCHits++
		if u.Shared != nil {
			u.Shared.BFCHits.Add(1)
		}
	}
	ctx.Charge(u.cfg.BloomCheckLatency)
	return bs.Ranges[idx].Filter.Test(va >> FrameShift)
}

// lookup runs the PMFTLB stage and delegates the value to fwd.
func (u *CheckLookupUnit) lookup(ctx *sim.Ctx, va uint64, fwd Forwarder) (uint64, bool) {
	frame := va >> FrameShift
	u.tick++
	var victim *pmftlbEntry
	var oldest uint32 = ^uint32(0)
	hit := false
	for i := range u.tlb {
		e := &u.tlb[i]
		if e.valid && e.frame == frame {
			e.age = u.tick
			hit = true
			break
		}
		if !e.valid {
			if oldest != 0 {
				victim, oldest = e, 0
			}
			continue
		}
		if e.age < oldest {
			victim, oldest = e, e.age
		}
	}
	if hit {
		u.PMFTLBHits++
		if u.Shared != nil {
			u.Shared.PMFTLBHits.Add(1)
		}
		ctx.Charge(u.cfg.PMFTLBLatency)
	} else {
		u.PMFTLBMisses++
		if u.Shared != nil {
			u.Shared.PMFTLBMisses.Add(1)
		}
		// Walk the in-PM PMFT (persisted by the summary phase).
		ctx.Charge(u.cfg.PMFTLBLatency + u.cfg.PMReadLatency)
		victim.valid = true
		victim.frame = frame
		victim.age = u.tick
	}
	return fwd.LookupAddr(ctx, va)
}

// CheckLookup executes the checklookup instruction (§4.1): it returns the
// destination address of the object at va if va points into a relocation
// page, or (0, false) otherwise. Bloom-filter false positives resolve to
// "not found" in the PMFT, exactly as the paper describes.
func (u *CheckLookupUnit) CheckLookup(ctx *sim.Ctx, va uint64, bs *BloomSet, fwd Forwarder) (uint64, bool) {
	if bs == nil || !u.check(ctx, va, bs) {
		return 0, false
	}
	return u.lookup(ctx, va, fwd)
}
