package arch

// Checkpoint/restore for the architectural structures, part of the
// machine-wide checkpoint subsystem (DESIGN.md §7). The experiment driver's
// fork points always sit outside a defragmentation epoch, where both
// structures are disarmed and cold — but the API captures the full hot
// state (dirty RBB entries, resident PMFTLB frames, the cached BFC filter)
// so mid-epoch state can be snapshotted and replayed too, e.g. by
// fault-injection tests that re-run a crash from a restored machine.

// RBBCheckpoint is a deep copy of the Reached Bitmap Buffer state. The
// in-PM reached bitmap itself lives in device media and travels with the
// device checkpoint; this captures only the controller-side buffer.
type RBBCheckpoint struct {
	Base     uint64
	HeapBase uint64
	NFrames  uint64
	On       bool
	Entries  []rbbEntry
	Tick     uint32

	Hits, Misses, Writebacks uint64
}

// Checkpoint captures the RBB state. Call only while the simulation is
// quiescent.
func (r *RBB) Checkpoint() *RBBCheckpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &RBBCheckpoint{
		Base:       r.base,
		HeapBase:   r.heapBase,
		NFrames:    r.nfr,
		On:         r.on,
		Entries:    append([]rbbEntry(nil), r.entries...),
		Tick:       r.tick,
		Hits:       r.Hits,
		Misses:     r.Misses,
		Writebacks: r.Writebacks,
	}
}

// Restore overwrites the RBB state from c. The RBB must have the same entry
// count as the checkpoint's source; its device attachment is unchanged (a
// fork restores into an RBB built over the forked device).
func (r *RBB) Restore(c *RBBCheckpoint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(c.Entries) != len(r.entries) {
		panic("arch: RBB Restore geometry mismatch")
	}
	r.base = c.Base
	r.heapBase = c.HeapBase
	r.nfr = c.NFrames
	r.on = c.On
	copy(r.entries, c.Entries)
	r.tick = c.Tick
	r.Hits, r.Misses, r.Writebacks = c.Hits, c.Misses, c.Writebacks
}

// CheckLookupUnitCheckpoint is a deep copy of one core's checklookup state.
// The BloomSet and Forwarder are epoch-owned and referenced externally; only
// the unit's cached timing state is captured.
type CheckLookupUnitCheckpoint struct {
	BFCValid bool
	BFCIdx   int
	TLB      []pmftlbEntry
	Tick     uint32

	BFCHits, BFCMisses       uint64
	PMFTLBHits, PMFTLBMisses uint64
}

// Checkpoint captures the unit's state.
func (u *CheckLookupUnit) Checkpoint() *CheckLookupUnitCheckpoint {
	return &CheckLookupUnitCheckpoint{
		BFCValid:     u.bfcValid,
		BFCIdx:       u.bfcIdx,
		TLB:          append([]pmftlbEntry(nil), u.tlb...),
		Tick:         u.tick,
		BFCHits:      u.BFCHits,
		BFCMisses:    u.BFCMisses,
		PMFTLBHits:   u.PMFTLBHits,
		PMFTLBMisses: u.PMFTLBMisses,
	}
}

// Restore overwrites the unit's state from c. The unit must have the same
// PMFTLB entry count as the checkpoint's source.
func (u *CheckLookupUnit) Restore(c *CheckLookupUnitCheckpoint) {
	if len(c.TLB) != len(u.tlb) {
		panic("arch: CheckLookupUnit Restore geometry mismatch")
	}
	u.bfcValid = c.BFCValid
	u.bfcIdx = c.BFCIdx
	copy(u.tlb, c.TLB)
	u.tick = c.Tick
	u.BFCHits, u.BFCMisses = c.BFCHits, c.BFCMisses
	u.PMFTLBHits, u.PMFTLBMisses = c.PMFTLBHits, c.PMFTLBMisses
}
