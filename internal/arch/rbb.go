// Package arch models the architecture support FFCCD adds (§4): the Reached
// Bitmap Buffer in the memory controller, the relocate-instruction pending
// bits (implemented in pmem), and the checklookup instruction's Bloom Filter
// Cache and PMFT Lookaside Buffer. Every structure uses the Table 1/Table 2
// geometries and latencies.
package arch

import (
	"encoding/binary"
	"sync"

	"ffccd/internal/pmem"
	"ffccd/internal/sim"
)

// FrameShift is log2 of the reached-bitmap granularity: one 64-bit bitmap
// word covers the 64 cachelines of one 4 KB frame.
const FrameShift = 12

// RBB is the Reached Bitmap Buffer (§4.2): a small memory-controller cache
// over the in-PM reached bitmap. Each entry maps a physical frame number to
// a 64-bit bitmap with one bit per destination cacheline; a set bit means the
// cacheline produced by a relocate instruction arrived in the persistence
// domain. The RBB sits inside the ADR domain, so PowerLossFlush preserves its
// contents across a crash.
type RBB struct {
	mu       sync.Mutex
	dev      *pmem.Device
	cfg      *sim.Config
	base     uint64 // in-PM reached bitmap base (8 bytes per frame)
	heapBase uint64 // device address of heap frame 0 (frame index origin)
	nfr      uint64 // frames covered
	on       bool

	entries []rbbEntry
	tick    uint32

	// Counters.
	Hits, Misses, Writebacks uint64
}

type rbbEntry struct {
	valid  bool
	frame  uint64
	bitmap uint64
	age    uint32
}

// NewRBB creates an RBB attached to dev. It is inactive until Configure.
func NewRBB(cfg *sim.Config, dev *pmem.Device) *RBB {
	return &RBB{
		dev:     dev,
		cfg:     cfg,
		entries: make([]rbbEntry, cfg.RBBEntries),
	}
}

// Configure activates the RBB over an in-PM reached bitmap of nframes words
// starting at base, zeroing the bitmap region. heapBase is the device address
// whose frame gets index 0 (lines below it are ignored). Called at the
// beginning of the compacting phase (§4.2: "The structure is created at the
// beginning of the compacting phase").
func (r *RBB) Configure(base, heapBase, nframes uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	zero := make([]byte, 8*nframes)
	r.dev.MediaWrite(base, zero)
	r.armLocked(base, heapBase, nframes)
}

// Rearm activates the RBB over an existing reached bitmap without zeroing it
// — the post-crash resume path, where the bitmap holds the pre-crash truth.
func (r *RBB) Rearm(base, heapBase, nframes uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.armLocked(base, heapBase, nframes)
}

func (r *RBB) armLocked(base, heapBase, nframes uint64) {
	r.base = base
	r.heapBase = heapBase
	r.nfr = nframes
	r.on = true
	for i := range r.entries {
		r.entries[i] = rbbEntry{}
	}
}

// Deactivate flushes and disables the RBB (end of compaction; the reached
// bitmap is deallocated by the GC).
func (r *RBB) Deactivate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	r.on = false
}

// Active reports whether a compaction epoch has the RBB armed.
func (r *RBB) Active() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.on
}

func (r *RBB) bitmapAddr(frame uint64) uint64 { return r.base + frame*8 }

func (r *RBB) writebackLocked(e *rbbEntry) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], e.bitmap)
	r.dev.MediaWrite(r.bitmapAddr(e.frame), buf[:])
	r.Writebacks++
}

func (r *RBB) flushLocked() {
	for i := range r.entries {
		if r.entries[i].valid {
			r.writebackLocked(&r.entries[i])
			r.entries[i].valid = false
		}
	}
}

// LineReached implements pmem.RBBSink: a pending cacheline arrived in the
// persistence domain. ctx may be nil when invoked from the ADR power-loss
// path.
func (r *RBB) LineReached(ctx *sim.Ctx, lineAddr uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.on || lineAddr < r.heapBase {
		return
	}
	frame := (lineAddr - r.heapBase) >> FrameShift
	if frame >= r.nfr {
		return
	}
	bit := uint64(1) << ((lineAddr >> pmem.LineShift) & 63)
	r.tick++

	var victim *rbbEntry
	var oldest uint32 = ^uint32(0)
	for i := range r.entries {
		e := &r.entries[i]
		if e.valid && e.frame == frame {
			e.bitmap |= bit
			e.age = r.tick
			r.Hits++
			if ctx != nil {
				ctx.Charge(r.cfg.RBBLatency)
			}
			return
		}
		if !e.valid {
			if oldest != 0 {
				victim, oldest = e, 0
			}
			continue
		}
		if e.age < oldest {
			victim, oldest = e, e.age
		}
	}
	// Miss: evict, fetch the frame's word from the in-memory bitmap (§4.2
	// step 4), then set the bit.
	r.Misses++
	if victim.valid {
		r.writebackLocked(victim)
	}
	var buf [8]byte
	r.dev.MediaRead(r.bitmapAddr(frame), buf[:])
	victim.valid = true
	victim.frame = frame
	victim.bitmap = binary.LittleEndian.Uint64(buf[:]) | bit
	victim.age = r.tick
	if ctx != nil {
		ctx.Charge(r.cfg.RBBLatency + r.cfg.DRAMLatency)
	}
}

// PowerLossFlush writes every valid entry to the in-PM bitmap. The ADR
// battery powers this on a crash (§4.4); the harness calls it as part of the
// simulated power-failure sequence.
func (r *RBB) PowerLossFlush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.on {
		r.flushLocked()
	}
}

// Read returns the merged reached bitmap word for frame (RBB entry if
// resident, else the in-PM copy). Used by the GC's page-release checks and by
// recovery.
func (r *RBB) Read(ctx *sim.Ctx, frame uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.entries {
		e := &r.entries[i]
		if e.valid && e.frame == frame {
			if ctx != nil {
				ctx.Charge(r.cfg.RBBLatency)
			}
			return e.bitmap
		}
	}
	var buf [8]byte
	r.dev.MediaRead(r.bitmapAddr(frame), buf[:])
	if ctx != nil {
		ctx.Charge(r.cfg.DRAMLatency)
	}
	return binary.LittleEndian.Uint64(buf[:])
}
