package arch

import "ffccd/internal/sim"

// CostRow is one line of the Table 1 hardware-cost model.
type CostRow struct {
	Component  string
	EntryBytes float64 // per-entry size; 0 when not applicable
	Entries    int     // 0 when not applicable
	SizeBytes  int
	AreaMM2    float64 // Cacti 45 nm estimate from the paper
}

// MemRow is one line of the in-memory persistent-space half of Table 1.
type MemRow struct {
	Structure       string
	BytesPer4KBPage float64
	OverheadPercent float64 // over the relocation page size
}

// CostTable reproduces Table 1 for a given configuration. Sizes are derived
// from the structure geometries; the per-structure area densities come from
// the paper's Cacti evaluation and scale linearly with size.
func CostTable(cfg *sim.Config) ([]CostRow, []MemRow) {
	// Entry sizes from §4.2/§4.3.2:
	//   RBB entry: 36-bit PFN + 64-bit bitmap = 100 bits = 12.5 bytes.
	//   PMFTLB entry: 36-bit VPN + 18-bit major distance + 256-byte minor
	//   distance map = 70.75 bytes.
	const rbbEntryBytes = 12.5
	const pmftlbEntryBytes = 70.75
	// Area per byte calibrated from the paper's absolute numbers
	// (100 B → 0.004 mm², 1132 B → 0.045 mm², 1024 B → 0.041 mm²).
	const mm2PerByte = 0.00004

	rbbSize := int(rbbEntryBytes * float64(cfg.RBBEntries))
	tlbSize := int(pmftlbEntryBytes * float64(cfg.PMFTLBEntries))
	rows := []CostRow{
		{"Reached bitmap buffer", rbbEntryBytes, cfg.RBBEntries, rbbSize, float64(rbbSize) * mm2PerByte},
		{"PMFTLB", pmftlbEntryBytes, cfg.PMFTLBEntries, tlbSize, float64(tlbSize) * mm2PerByte},
		{"Bloom Filter Cache", 0, 0, cfg.BloomFilterBytes, float64(cfg.BloomFilterBytes) * mm2PerByte},
	}

	// In-memory persistent space per 4 KB relocation page (§4.3.1):
	//   PMFT: 18-bit tag + 18-bit major distance (rounded to bytes) + 256 × 1-byte
	//   minor-distance entries ≈ 259 bytes → 6.32 % of 4096.
	//   Reached bitmap: 64 bits = 8 bytes → 0.2 %.
	mem := []MemRow{
		{"PMFT", 259, 259.0 / 4096 * 100},
		{"Reached bitmap", 8, 8.0 / 4096 * 100},
	}
	return rows, mem
}

// TotalOnChipBytes sums the on-chip storage (the paper reports 2256 bytes;
// ours matches with the default config).
func TotalOnChipBytes(cfg *sim.Config) int {
	rows, _ := CostTable(cfg)
	t := 0
	for _, r := range rows {
		t += r.SizeBytes
	}
	return t
}
