package arch

import (
	"encoding/binary"
	"testing"

	"ffccd/internal/pmem"
	"ffccd/internal/sim"
)

func testSetup() (*sim.Config, *pmem.Device, *sim.Ctx) {
	cfg := sim.DefaultConfig()
	cfg.CacheBytes = 16 * 1024
	cfg.CacheWays = 4
	d := pmem.NewDevice(&cfg, 1<<22)
	return &cfg, d, sim.NewCtx(&cfg)
}

func TestRBBRecordsReachedLines(t *testing.T) {
	cfg, dev, ctx := testSetup()
	rbb := NewRBB(cfg, dev)
	// Bitmap for 64 frames at 1 MB.
	rbb.Configure(1<<20, 0, 64)
	dev.SetRBB(rbb)

	// Relocate one cacheline into frame 3, line 5, then flush it.
	dst := uint64(3<<FrameShift | 5<<pmem.LineShift)
	dev.Store(ctx, 0, make([]byte, 64))
	dev.Relocate(ctx, dst, 0, 64)
	dev.Clwb(ctx, dst)
	dev.Sfence(ctx)

	word := rbb.Read(ctx, 3)
	if word != 1<<5 {
		t.Fatalf("reached word = %b, want bit 5", word)
	}
	if rbb.Read(ctx, 2) != 0 {
		t.Fatal("unrelated frame has reached bits")
	}
}

func TestRBBEvictionWritesBitmapToMedia(t *testing.T) {
	cfg, dev, ctx := testSetup()
	rbb := NewRBB(cfg, dev)
	rbb.Configure(1<<20, 0, 256)
	dev.SetRBB(rbb)

	// Touch more frames than RBB entries so early ones are evicted.
	n := cfg.RBBEntries + 4
	for f := 0; f < n; f++ {
		dst := uint64(f) << FrameShift
		dev.Relocate(ctx, dst, 1<<19, 64)
		dev.Clwb(ctx, dst)
		dev.Sfence(ctx)
	}
	if rbb.Misses == 0 || rbb.Writebacks == 0 {
		t.Fatalf("expected RBB misses and writebacks, got %d/%d", rbb.Misses, rbb.Writebacks)
	}
	// Frame 0's word must be in media now (read it raw).
	var buf [8]byte
	dev.MediaRead(1<<20+0*8, buf[:])
	if binary.LittleEndian.Uint64(buf[:])&1 == 0 {
		t.Fatal("evicted RBB entry not written to in-memory bitmap")
	}
}

func TestRBBPowerLossFlushSurvivesCrash(t *testing.T) {
	cfg, dev, ctx := testSetup()
	rbb := NewRBB(cfg, dev)
	rbb.Configure(1<<20, 0, 64)
	dev.SetRBB(rbb)

	dst := uint64(7 << FrameShift)
	dev.Relocate(ctx, dst, 1<<19, 64)
	dev.Clwb(ctx, dst)
	dev.Sfence(ctx) // line reached; bit only in RBB entry

	// Crash: ADR flushes RBB.
	dev.Crash()
	rbb.PowerLossFlush()

	var buf [8]byte
	dev.MediaRead(1<<20+7*8, buf[:])
	if binary.LittleEndian.Uint64(buf[:])&1 == 0 {
		t.Fatal("RBB contents lost on power failure")
	}
}

func TestRBBUnreachedLineLeavesNoBit(t *testing.T) {
	cfg, dev, ctx := testSetup()
	rbb := NewRBB(cfg, dev)
	rbb.Configure(1<<20, 0, 64)
	dev.SetRBB(rbb)

	dst := uint64(9 << FrameShift)
	dev.Relocate(ctx, dst, 1<<19, 64) // stays in cache
	dev.Crash()
	rbb.PowerLossFlush()
	var buf [8]byte
	dev.MediaRead(1<<20+9*8, buf[:])
	if binary.LittleEndian.Uint64(buf[:]) != 0 {
		t.Fatal("bit set for a line that never reached persistence")
	}
}

func TestRBBInactiveIgnores(t *testing.T) {
	cfg, dev, ctx := testSetup()
	rbb := NewRBB(cfg, dev)
	dev.SetRBB(rbb)
	// Not configured: relocations must not touch anything.
	dev.Relocate(ctx, 4096, 0, 64)
	dev.Clwb(ctx, 4096)
	dev.Sfence(ctx)
	if rbb.Hits+rbb.Misses != 0 {
		t.Fatal("inactive RBB processed a notification")
	}
}

type mapForwarder map[uint64]uint64

func (m mapForwarder) LookupAddr(_ *sim.Ctx, src uint64) (uint64, bool) {
	d, ok := m[src]
	return d, ok
}

func TestCheckLookupHappyPath(t *testing.T) {
	cfg, _, ctx := testSetup()
	u := NewCheckLookupUnit(cfg)
	relocPage := uint64(5 << FrameShift)
	bs := NewBloomSetFromPages([]uint64{relocPage}, cfg.BloomFilters, cfg.BloomFilterBytes)
	fwd := mapForwarder{relocPage + 32: 0x100020}

	dst, ok := u.CheckLookup(ctx, relocPage+32, bs, fwd)
	if !ok || dst != 0x100020 {
		t.Fatalf("checklookup = (%#x,%v), want (0x100020,true)", dst, ok)
	}
}

func TestCheckLookupNonRelocationFastPath(t *testing.T) {
	cfg, _, ctx := testSetup()
	u := NewCheckLookupUnit(cfg)
	bs := NewBloomSetFromPages([]uint64{5 << FrameShift}, cfg.BloomFilters, cfg.BloomFilterBytes)
	fwd := mapForwarder{}

	before := ctx.Clock.Total()
	if _, ok := u.CheckLookup(ctx, 77<<FrameShift, bs, fwd); ok {
		t.Fatal("non-relocation address reported relocated")
	}
	// Fast path: the range compare alone resolves it — no filter fetch.
	if cost := ctx.Clock.Total() - before; cost > cfg.BloomCheckLatency {
		t.Errorf("fast-path cost %d too high", cost)
	}
}

func TestCheckLookupFalsePositiveIsHarmless(t *testing.T) {
	// §4.3.2: a bloom false positive must resolve to not-found via the PMFT.
	cfg, _, ctx := testSetup()
	u := NewCheckLookupUnit(cfg)
	// Tiny filters over a wide page set: false positives likely.
	var pages []uint64
	for pg := uint64(0); pg < 512; pg += 16 {
		pages = append(pages, pg<<FrameShift)
	}
	bs := NewBloomSetFromPages(pages, 1, 8)
	fwd := mapForwarder{} // PMFT knows nothing
	for page := uint64(0); page < 512; page++ {
		if _, ok := u.CheckLookup(ctx, page<<FrameShift, bs, fwd); ok {
			t.Fatalf("false positive produced a destination for page %d", page)
		}
	}
}

func TestPMFTLBCaching(t *testing.T) {
	cfg, _, ctx := testSetup()
	u := NewCheckLookupUnit(cfg)
	page := uint64(4 << FrameShift)
	bs := NewBloomSetFromPages([]uint64{page}, 1, cfg.BloomFilterBytes)
	fwd := mapForwarder{page: 0x8000, page + 64: 0x8040}

	u.CheckLookup(ctx, page, bs, fwd)
	if u.PMFTLBMisses != 1 {
		t.Fatalf("first lookup: misses = %d, want 1", u.PMFTLBMisses)
	}
	u.CheckLookup(ctx, page+64, bs, fwd)
	if u.PMFTLBHits != 1 {
		t.Fatalf("same-frame lookup: hits = %d, want 1", u.PMFTLBHits)
	}
}

func TestCheckLookupNilBloomSet(t *testing.T) {
	cfg, _, ctx := testSetup()
	u := NewCheckLookupUnit(cfg)
	if _, ok := u.CheckLookup(ctx, 0x1000, nil, mapForwarder{}); ok {
		t.Fatal("nil bloom set must mean no relocation in progress")
	}
}

func TestCostTableMatchesPaper(t *testing.T) {
	cfg := sim.DefaultConfig()
	rows, mem := CostTable(&cfg)
	if rows[0].SizeBytes != 100 {
		t.Errorf("RBB size = %d, want 100", rows[0].SizeBytes)
	}
	if rows[1].SizeBytes != 1132 {
		t.Errorf("PMFTLB size = %d, want 1132", rows[1].SizeBytes)
	}
	if rows[2].SizeBytes != 1024 {
		t.Errorf("BFC size = %d, want 1024", rows[2].SizeBytes)
	}
	if got := TotalOnChipBytes(&cfg); got != 2256 {
		t.Errorf("total on-chip storage = %d, want 2256 (paper §4.4)", got)
	}
	if mem[0].BytesPer4KBPage != 259 || mem[1].BytesPer4KBPage != 8 {
		t.Errorf("in-memory rows wrong: %+v", mem)
	}
	if mem[0].OverheadPercent < 6.2 || mem[0].OverheadPercent > 6.4 {
		t.Errorf("PMFT overhead = %.2f%%, want ≈6.32%%", mem[0].OverheadPercent)
	}
}

func TestBloomSetTightRanges(t *testing.T) {
	// Two clusters of relocation pages, far apart: the set must chunk them
	// and addresses between the clusters must fall outside every range.
	var pages []uint64
	for i := uint64(0); i < 16; i++ {
		pages = append(pages, (100+i)<<FrameShift)
		pages = append(pages, (9000+i)<<FrameShift)
	}
	bs := NewBloomSetFromPages(pages, 8, 1024)
	if len(bs.Ranges) == 0 {
		t.Fatal("no ranges")
	}
	for _, pg := range pages {
		idx := bs.rangeFor(pg)
		if idx < 0 || !bs.Ranges[idx].Filter.Test(pg>>FrameShift) {
			t.Fatalf("page %#x not covered", pg)
		}
	}
	if bs.rangeFor(5000<<FrameShift) >= 0 {
		t.Fatal("mid-gap address covered by a range")
	}
	if NewBloomSetFromPages(nil, 8, 1024).rangeFor(0) >= 0 {
		t.Fatal("empty set covered an address")
	}
}
