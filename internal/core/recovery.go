package core

import (
	"encoding/binary"
	"fmt"

	"ffccd/internal/alloc"
	"ffccd/internal/arch"
	"ffccd/internal/obsv"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// Recover attaches an engine to a freshly (re)opened pool and restores full
// consistency after a crash or clean shutdown:
//
//  1. Defragmentation object-state reconciliation per scheme — the paper's
//     recovery() (Fig. 7b for SFCCD, Fig. 9b for FFCCD, moved-bitmap trust
//     for Espresso), driven by the persistent PMFT.
//  2. Application transaction rollback (offset-based undo, safe at any GC
//     state).
//  3. One reachability pass that simultaneously forwards references to moved
//     objects and undoes references to never-reached destinations
//     (Observation 3/4), and yields the live set.
//  4. Allocator rebuild from the live set (leak reclamation included),
//     relocation/destination reservations re-established.
//  5. If an epoch was interrupted, it is resumed and completed before
//     Recover returns, leaving the pool idle and compact.
//
// Recover is also the correct entry point for a clean reopen (it reduces to
// tx rollback + allocator rebuild).
func Recover(ctx *sim.Ctx, p *pmop.Pool, opt Options) (*Engine, error) {
	e := NewEngine(p, opt)
	rctx := ctx.Derived(sim.CatRecovery)
	var t0 uint64
	if e.obs != nil {
		t0 = obsv.Now(rctx)
	}
	if err := e.recover(rctx); err != nil {
		return nil, err
	}
	if o := e.obs; o != nil {
		o.Tracer.Span(rctx, obsv.KindRecovery, t0, 0)
		o.Intervals.Add(obsv.IntervalRecovery, t0, obsv.Now(rctx), 0)
	}
	return e, nil
}

// progress reports a recovery stage boundary to the RecoveryProgress hook.
func (e *Engine) progress(stage string) {
	if e.opt.RecoveryProgress != nil {
		e.opt.RecoveryProgress(stage)
	}
}

func (e *Engine) recover(ctx *sim.Ctx) error {
	p := e.pool
	dev := p.Device()
	state, persistedScheme, epochNo := unpackPhase(p.GCPhase(ctx))

	if state != phaseCompacting {
		// Idle: application recovery + allocator rebuild only.
		e.progress("rollback")
		p.RecoverTx(ctx)
		dev.Site(ctx, pmem.SiteRecoveryStep)
		e.progress("rebuild")
		live := e.mark(ctx, nil)
		p.Heap().RebuildFromMark(rebuildEntries(live))
		dev.Site(ctx, pmem.SiteRecoveryStep)
		e.progress("done")
		return nil
	}

	// An epoch was interrupted. Reconstruct it from the persistent PMFT.
	e.busy.Store(true)
	defer e.busy.Store(false)

	ep, err := e.loadEpoch(ctx, persistedScheme, epochNo)
	if err != nil {
		return err
	}
	dev.Site(ctx, pmem.SiteRecoveryStep)
	// For the epoch span emitted at terminate: the resumed epoch's observable
	// window starts where recovery picked it up.
	ep.obsStart = ctx.Clock.Total()

	// The interrupted scheme may need the relocate/RBB hardware even if the
	// engine was reopened with a different configuration.
	if ep.scheme.UsesRelocateInstruction() && e.rbb == nil {
		e.rbb = newRBBFor(p)
	}

	// (1) Per-scheme object-state reconciliation.
	e.progress("reconcile")
	switch ep.scheme {
	case SchemeEspresso:
		e.recoverEspresso(ctx, ep)
	case SchemeSFCCD:
		e.recoverSFCCD(ctx, ep)
	case SchemeFFCCD, SchemeFFCCDCheckLookup:
		e.recoverFFCCD(ctx, ep)
	default:
		return fmt.Errorf("core: cannot recover unknown scheme %d", ep.scheme)
	}
	dev.Site(ctx, pmem.SiteRecoveryStep)

	// (2) Application transaction rollback (undo is pure offsets: safe
	// before reference fixup, and it may resurrect stale references that
	// step 3 then normalises).
	e.progress("rollback")
	p.RecoverTx(ctx)
	dev.Site(ctx, pmem.SiteRecoveryStep)

	// (3) Unified reference fixup + reachability:
	//   - reference to the source of a moved object   → forward to dest
	//   - reference to the dest of an unmoved object  → undo to source
	heap := p.Heap()
	e.progress("fixup")
	dev.Site(ctx, pmem.SiteBarrierFixup)
	live := e.mark(ctx, func(_ *sim.Ctx, _ uint64, ref pmop.Ptr) pmop.Ptr {
		if ref.PoolID() != p.ID() || ref.Offset() < heap.HeapOff() {
			return ref
		}
		off := ref.Offset()
		if idx, ok := ep.bySrc[off]; ok && ep.isMoved(idx) {
			return ref.WithOffset(ep.objects[idx].dstPayload())
		}
		if idx, ok := ep.byDst[off]; ok && !ep.isMoved(idx) {
			return ref.WithOffset(ep.objects[idx].srcPayload())
		}
		return ref
	})

	dev.Site(ctx, pmem.SiteBarrierFixup)

	// Recovery itself is conservative (§4.1): make everything durable.
	dev.FlushAll(ctx)
	dev.Site(ctx, pmem.SiteRecoveryStep)

	// (4) Allocator rebuild + epoch reservations.
	e.progress("rebuild")
	heap.RebuildFromMark(rebuildEntries(live))
	for _, f := range ep.relocFrames {
		heap.SetState(f, alloc.FrameRelocation)
	}
	ep.dupBytes = 0
	for i := range ep.objects {
		obj := &ep.objects[i]
		if !ep.isMoved(i) {
			// Reserve the destination so the allocator cannot take it
			// before the object moves. (Moved objects are already live at
			// their destination via the rebuild.)
			df, ds := heap.Locate(obj.dstHdr)
			if err := heap.PlaceAt(df, ds, obj.slots); err != nil {
				return fmt.Errorf("core: recovery re-reservation: %w", err)
			}
			ep.dupBytes += obj.bytes()
		}
	}
	heap.AddDup(ep.dupBytes)
	dev.Site(ctx, pmem.SiteRecoveryStep)

	// (5) Resume and complete the epoch.
	e.progress("resume")
	if e.rbb != nil && ep.scheme.UsesRelocateInstruction() {
		reachedOff, _, _ := metaLayout(p)
		heapOff, frames := p.HeapRange()
		e.rbb.Rearm(p.PA(reachedOff), p.PA(heapOff), frames)
	}
	e.mu.Lock()
	e.epoch = ep
	e.mu.Unlock()
	p.SetBarrier(&readBarrier{e: e, ep: ep})
	dev.Site(ctx, pmem.SiteRecoveryStep)
	e.compact(ctx, ep)
	dev.Site(ctx, pmem.SiteRecoveryStep)
	e.finishEpoch(ctx, ep)
	e.cycles.Add(1)
	e.progress("done")
	return nil
}

// loadEpoch rebuilds the volatile epoch state from the persistent PMFT
// (whose deterministic destinations are exactly what make resumption
// possible, §4.3.1).
func (e *Engine) loadEpoch(ctx *sim.Ctx, scheme Scheme, epochNo uint64) (*epochState, error) {
	p := e.pool
	heap := p.Heap()
	ep := &epochState{
		epochNo:   epochNo,
		scheme:    scheme,
		minor:     make(map[int]*[alloc.SlotsPerFrame]byte),
		destFrame: make(map[int]int),
	}
	destSeen := make(map[int]bool)
	entry := make([]byte, pmftEntrySize)
	for f := 0; f < heap.Frames(); f++ {
		p.RawLoad(ctx, pmftEntryOff(p, f), entry)
		if uint64(binary.LittleEndian.Uint32(entry[0:4])) != epochNo {
			continue
		}
		df := int(binary.LittleEndian.Uint32(entry[4:8]))
		var mm [alloc.SlotsPerFrame]byte
		copy(mm[:], entry[8:])
		ep.minor[f] = &mm
		ep.destFrame[f] = df
		ep.relocFrames = append(ep.relocFrames, f)
		if !destSeen[df] {
			destSeen[df] = true
			ep.destFrames = append(ep.destFrames, df)
		}

		// Reconstruct object boundaries: headers in the relocation page are
		// authoritative (persisted at allocation, never modified by a move;
		// SFCCD's tombstone only touches the reserved word).
		for s := 0; s < alloc.SlotsPerFrame; {
			if mm[s] == minorInvalid {
				s++
				continue
			}
			srcHdr := heap.OffsetOf(f, s)
			var hb [8]byte
			p.RawLoad(ctx, srcHdr, hb[:])
			payload := uint64(binary.LittleEndian.Uint32(hb[4:8]))
			n := alloc.SlotsFor(payload)
			if n < 1 || s+n > alloc.SlotsPerFrame {
				return nil, fmt.Errorf("core: corrupt header in relocation frame %d slot %d", f, s)
			}
			ep.objects = append(ep.objects, relocObj{
				srcHdr:  srcHdr,
				dstHdr:  heap.OffsetOf(df, int(mm[s])),
				slots:   n,
				payload: payload,
			})
			s += n
		}
	}
	ep.buildIndexes(p)

	// Rebuild the bloom filters over the relocation pages.
	var relocVAs []uint64
	for _, f := range ep.relocFrames {
		relocVAs = append(relocVAs, p.VA(heap.OffsetOf(f, 0)))
	}
	ep.blooms = arch.NewBloomSetFromPages(relocVAs, e.cfg.BloomFilters, e.cfg.BloomFilterBytes)
	ep.fwd = &pmftForwarder{p: p, ep: ep}
	return ep, nil
}

// recoverEspresso trusts the persistent moved bitmap: the double persist
// barrier guarantees a set bit implies a fully persisted copy.
func (e *Engine) recoverEspresso(ctx *sim.Ctx, ep *epochState) {
	for i := range ep.objects {
		if e.loadMovedBit(ctx, &ep.objects[i]) {
			ep.setMoved(i)
			ep.pending.Add(-1)
		}
	}
}

// recoverSFCCD implements Fig. 7b with the tombstone disambiguation: for
// every object whose moved bit persisted, compare destination and source
// content; a mismatch without an application tombstone means the memcpy did
// not (fully) persist, so it is repeated and persisted.
func (e *Engine) recoverSFCCD(ctx *sim.Ctx, ep *epochState) {
	p := e.pool
	for i := range ep.objects {
		obj := &ep.objects[i]
		if !e.loadMovedBit(ctx, obj) {
			continue // will be (re)moved after resume — Observation 1
		}
		tomb := p.RawLoadU64(ctx, obj.srcHdr+8) == sfccdTombstone
		if !tomb && !e.rangesEqual(ctx, obj.srcHdr, obj.dstHdr, obj.bytes()) {
			e.copyObject(ctx, obj.srcHdr, obj.dstHdr, obj.bytes())
			p.PersistRange(ctx, obj.dstHdr, obj.bytes())
		}
		ep.setMoved(i)
		ep.pending.Add(-1)
	}
}

// recoverFFCCD implements Fig. 9b using the reached bitmap, at the
// granularity of destination-line components (the unit the compactor moves
// atomically): a component none of whose destination lines reached the
// persistence domain is left unmoved — its reference updates are reverted by
// the fixup pass (Observation 3). A component with any reached line is
// finished: every member's bytes on lines that did not reach are re-copied
// from the (still pristine) source, because a reached line may hold newer
// application data while an unreached one holds nothing (Observation 4).
// Classification uses a pre-repair snapshot of the bitmap so repairs cannot
// influence decisions for line-sharing neighbours, and whole components
// finish or revert together so moved-state never diverges within a
// component across repeated crashes.
func (e *Engine) recoverFFCCD(ctx *sim.Ctx, ep *epochState) {
	p := e.pool
	heap := p.Heap()
	reachedOff, _, _ := metaLayout(p)
	heapOff := heap.HeapOff()

	// Snapshot the reached bitmap before any repair.
	snapshot := make(map[int]uint64)
	for i := range ep.objects {
		df := heap.FrameOf(ep.objects[i].dstHdr)
		if _, ok := snapshot[df]; !ok {
			snapshot[df] = p.RawLoadU64(ctx, reachedOff+uint64(df)*8)
		}
	}
	lineRange := func(obj *relocObj) (df int, first, last uint64) {
		df = heap.FrameOf(obj.dstHdr)
		first = (obj.dstHdr - heapOff) % alloc.FrameSize >> pmem.LineShift
		last = (obj.dstHdr + obj.bytes() - 1 - heapOff) % alloc.FrameSize >> pmem.LineShift
		return
	}

	for _, comp := range ep.components {
		reached := 0
		for _, ci := range comp {
			df, first, last := lineRange(&ep.objects[ci])
			for l := first; l <= last; l++ {
				if snapshot[df]&(1<<l) != 0 {
					reached++
				}
			}
		}
		if reached == 0 {
			// Never reached: the component stays unmoved; clear any moved
			// bits that leaked to PM through eviction.
			for _, ci := range comp {
				e.clearMovedBit(ctx, &ep.objects[ci])
			}
			continue
		}
		// Finish the whole component, line-atomically: first make every
		// member's bytes on unreached lines durable, and only then publish
		// the reached bits. A reached bit covers a whole destination line,
		// and members of one component share lines — publishing a line's
		// bit before every sharer's bytes are durable would let a crash
		// *during this repair* strand a neighbour's half-line as zeros
		// (the next recovery trusts reached lines verbatim and would not
		// re-copy them).
		for _, ci := range comp {
			obj := &ep.objects[ci]
			df, first, last := lineRange(obj)
			word := snapshot[df]
			start := obj.dstHdr
			end := obj.dstHdr + obj.bytes()
			lineBase := heapOff + uint64(df)*alloc.FrameSize
			for l := first; l <= last; l++ {
				if word&(1<<l) != 0 {
					continue
				}
				ds := lineBase + l<<pmem.LineShift
				de := ds + pmem.LineSize
				if ds < start {
					ds = start
				}
				if de > end {
					de = end
				}
				ss := obj.srcHdr + (ds - start)
				e.copyObject(ctx, ss, ds, de-ds)
			}
			p.PersistRange(ctx, obj.dstHdr, obj.bytes())
		}
		for _, ci := range comp {
			obj := &ep.objects[ci]
			df, first, last := lineRange(obj)
			newWord := p.RawLoadU64(ctx, reachedOff+uint64(df)*8)
			for l := first; l <= last; l++ {
				newWord |= 1 << l
			}
			p.RawStoreU64(ctx, reachedOff+uint64(df)*8, newWord)
			p.PersistRange(ctx, reachedOff+uint64(df)*8, 8)
			e.setMovedBitDurable(ctx, obj)
			if ep.setMoved(ci) {
				ep.pending.Add(-1)
			}
		}
	}
}

// rangesEqual compares n bytes at two pool offsets.
func (e *Engine) rangesEqual(ctx *sim.Ctx, a, b, n uint64) bool {
	p := e.pool
	var ba, bb [pmem.LineSize]byte
	for done := uint64(0); done < n; {
		step := uint64(pmem.LineSize)
		if n-done < step {
			step = n - done
		}
		p.RawLoad(ctx, a+done, ba[:step])
		p.RawLoad(ctx, b+done, bb[:step])
		for i := uint64(0); i < step; i++ {
			if ba[i] != bb[i] {
				return false
			}
		}
		done += step
	}
	return true
}

func (e *Engine) loadMovedBit(ctx *sim.Ctx, obj *relocObj) bool {
	p := e.pool
	f, slot := p.Heap().Locate(obj.srcHdr)
	off, mask := movedBitOff(p, f, slot)
	var b [1]byte
	p.RawLoad(ctx, off, b[:])
	return b[0]&mask != 0
}

func (e *Engine) clearMovedBit(ctx *sim.Ctx, obj *relocObj) {
	p := e.pool
	f, slot := p.Heap().Locate(obj.srcHdr)
	off, mask := movedBitOff(p, f, slot)
	var b [1]byte
	p.RawLoad(ctx, off, b[:])
	b[0] &^= mask
	p.RawStore(ctx, off, b[:])
	p.Device().Site(ctx, pmem.SiteMovedBit)
	p.Clwb(ctx, off)
	p.Sfence(ctx)
}

func (e *Engine) setMovedBitDurable(ctx *sim.Ctx, obj *relocObj) {
	e.storeMovedBit(ctx, obj, true, true)
}
