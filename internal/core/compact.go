package core

import (
	"sync"

	"ffccd/internal/alloc"
	"ffccd/internal/obsv"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// movedByteLocks serialises read-modify-write of persistent moved-bitmap
// bytes shared by neighbouring objects.
var movedByteLocks [128]sync.Mutex

// relocateObject moves one object (and, under the fence-free schemes, every
// object sharing its destination cacheline — the cluster) from its
// relocation page to its PMFT-determined destination using the active
// scheme's persistence protocol (Fig. 6a, Fig. 7a, Fig. 9a). Safe to call
// concurrently from the read barrier and the background mover; exactly one
// caller performs the move. The lock is keyed by the destination line so
// cluster members serialise on the same stripe.
func (e *Engine) relocateObject(ctx *sim.Ctx, ep *epochState, idx int, fromBarrier bool) {
	cluster := ep.clusterOf(idx)
	// All component members serialise on the stripe of the component's
	// first destination line.
	lock := &e.relocLocks[(ep.objects[cluster[0]].dstHdr>>pmem.LineShift)%relocStripes]
	lock.Lock()
	defer lock.Unlock()
	if ep.isMoved(idx) {
		return
	}

	p := e.pool
	obj := &ep.objects[idx]
	switch ep.scheme {
	case SchemeEspresso:
		// Fig. 6a: memcpy; clwb each destination line; sfence; moved=1;
		// clwb; sfence — two full persist barriers.
		n := obj.bytes()
		e.copyObject(ctx, obj.srcHdr, obj.dstHdr, n)
		for a := obj.dstHdr &^ (pmem.LineSize - 1); a < obj.dstHdr+n; a += pmem.LineSize {
			p.Clwb(ctx, a)
		}
		p.Sfence(ctx)
		e.storeMovedBit(ctx, obj, true, true)
		e.finishMove(ep, idx, fromBarrier)

	case SchemeSFCCD:
		// Fig. 7a: memcpy; clwb destination lines (unfenced); moved=1;
		// clwb(moved); single sfence covering both.
		n := obj.bytes()
		e.copyObject(ctx, obj.srcHdr, obj.dstHdr, n)
		for a := obj.dstHdr &^ (pmem.LineSize - 1); a < obj.dstHdr+n; a += pmem.LineSize {
			p.Clwb(ctx, a)
		}
		e.storeMovedBit(ctx, obj, true, false)
		p.Sfence(ctx)
		e.finishMove(ep, idx, fromBarrier)

	case SchemeFFCCD, SchemeFFCCDCheckLookup:
		// Fig. 9a: relocate instruction(s) — pending-bit-tagged copy, no
		// clwb, no sfence; the moved bit is a plain store that reaches PM
		// lazily. Crash consistency comes from the reached bitmap, whose
		// per-line granularity requires every object sharing the destination
		// line to move in the same line-atomic operation.
		cluster := ep.clusterOf(idx)
		// Skip members that already moved (possible after a crash recovery
		// finished part of the component): re-copying them would overwrite
		// post-move application writes. The line assembly preserves their
		// destination bytes by loading gaps from current contents.
		parts := make([]pmem.RelocatePart, 0, len(cluster))
		pendingMembers := cluster[:0:0]
		for _, ci := range cluster {
			if ep.isMoved(ci) {
				continue
			}
			co := &ep.objects[ci]
			if ctx.TLB != nil {
				ctx.Charge(ctx.TLB.Access(p.VA(co.srcHdr), p.PageShift()))
				ctx.Charge(ctx.TLB.Access(p.VA(co.dstHdr), p.PageShift()))
			}
			parts = append(parts, pmem.RelocatePart{
				Dst: p.PA(co.dstHdr), Src: p.PA(co.srcHdr), N: co.bytes(),
			})
			pendingMembers = append(pendingMembers, ci)
		}
		p.Device().RelocateParts(ctx, parts)
		for _, ci := range pendingMembers {
			e.storeMovedBit(ctx, &ep.objects[ci], false, false)
			e.finishMove(ep, ci, fromBarrier && ci == idx)
		}
	}
}

// finishMove flips the volatile moved state and counters for one object.
func (e *Engine) finishMove(ep *epochState, idx int, fromBarrier bool) {
	if !ep.setMoved(idx) {
		return
	}
	ep.pending.Add(-1)
	e.objectsMoved.Add(1)
	if fromBarrier {
		e.barrierMoves.Add(1)
	}
}

// copyObject is the software memcpy through the cache hierarchy.
func (e *Engine) copyObject(ctx *sim.Ctx, src, dst, n uint64) {
	p := e.pool
	var buf [pmem.LineSize]byte
	for done := uint64(0); done < n; {
		step := uint64(pmem.LineSize)
		if n-done < step {
			step = n - done
		}
		p.RawLoad(ctx, src+done, buf[:step])
		p.RawStore(ctx, dst+done, buf[:step])
		done += step
	}
}

// storeMovedBit sets the object's persistent moved bit. flush adds a clwb;
// fence adds the trailing sfence (Espresso). SFCCD passes flush=true via its
// caller's ordering: the clwb happens here, the shared sfence in the caller.
func (e *Engine) storeMovedBit(ctx *sim.Ctx, obj *relocObj, flush, fence bool) {
	p := e.pool
	heap := p.Heap()
	f, slot := heap.Locate(obj.srcHdr)
	off, mask := movedBitOff(p, f, slot)
	l := &movedByteLocks[off%128]
	l.Lock()
	var b [1]byte
	p.RawLoad(ctx, off, b[:])
	b[0] |= mask
	p.RawStore(ctx, off, b[:])
	l.Unlock()
	// Crash site: moved bit set but not yet (necessarily) flushed — the
	// window between moved-state and pointer fixup. After Unlock so a
	// scheduled crash never strands the package-level byte lock.
	p.Device().Site(ctx, pmem.SiteMovedBit)
	if flush || fence {
		p.Clwb(ctx, off)
	}
	if fence {
		p.Sfence(ctx)
	}
}

// sfccdTxAddHook is installed on the pool under SFCCD. When the application
// first logs (and therefore is about to modify) a range inside a moved
// object's destination copy, the hook durably tombstones the *source*
// header. SFCCD recovery then knows a content mismatch between source and
// destination means "application modified it" rather than "memcpy lost"
// (see DESIGN.md; this closes the ambiguity in Fig. 7b's content check).
func (e *Engine) sfccdTxAddHook(ctx *sim.Ctx, off, n uint64) {
	e.mu.Lock()
	ep := e.epoch
	e.mu.Unlock()
	if ep == nil {
		return
	}
	idx, ok := ep.findDestObject(e.pool, off)
	if !ok || !ep.isMoved(idx) {
		return
	}
	obj := &ep.objects[idx]
	ep.tombMu.Lock()
	if ep.tombstoned[obj.srcHdr] {
		ep.tombMu.Unlock()
		return
	}
	ep.tombstoned[obj.srcHdr] = true
	ep.tombMu.Unlock()
	p := e.pool
	p.RawStoreU64(ctx, obj.srcHdr+8, sfccdTombstone)
	p.Clwb(ctx, obj.srcHdr+8)
	p.Sfence(ctx)
}

// finishEpoch is §5 terminate(): after every object has moved, stop the
// world once more, rewrite all remaining references into relocation pages,
// flush everything durable, release the relocation pages, and leave the
// compacting phase.
func (e *Engine) finishEpoch(ctx *sim.Ctx, ep *epochState) {
	p := e.pool

	// Belt and braces: relocate anything the background mover missed.
	for i := range ep.objects {
		if !ep.isMoved(i) {
			e.relocateObject(ctx.Derived(sim.CatCopy), ep, i, false)
		}
	}

	p.StopWorld()
	defer p.ResumeWorld()
	o := e.obs
	var t0 uint64
	if o != nil {
		t0 = obsv.Now(ctx)
	}
	e.finishEpochLocked(ctx, ep)
	if o != nil {
		o.Tracer.Span(ctx, obsv.KindSTW, t0, 0)
		e.hSTW.Observe(obsv.Now(ctx) - t0)
		o.Intervals.Add(obsv.IntervalSTW, t0, obsv.Now(ctx), ep.epochNo)
	}
}

// finishEpochLocked is the terminate tail; the caller holds the world.
func (e *Engine) finishEpochLocked(ctx *sim.Ctx, ep *epochState) {
	p := e.pool
	gctx := ctx.Derived(sim.CatGCMisc)

	o := e.obs
	var tFix uint64
	if o != nil {
		tFix = obsv.Now(ctx)
	}

	// Final reference fixup: one reachability pass rewriting every pointer
	// that still aims into a relocation frame (§5: "defragmentation runs
	// reachability again to finish all pending relocation and reference
	// updates, and release relocation pages").
	heap := p.Heap()
	p.Device().Site(gctx, pmem.SiteBarrierFixup)
	e.mark(gctx, func(_ *sim.Ctx, _ uint64, ref pmop.Ptr) pmop.Ptr {
		if ref.PoolID() != p.ID() || ref.Offset() < heap.HeapOff() {
			return ref
		}
		if dst, ok := ep.lookupSrc(p, ref.Offset()); ok {
			return ref.WithOffset(dst)
		}
		return ref
	})
	p.Device().Site(gctx, pmem.SiteBarrierFixup)
	if o != nil {
		o.Tracer.Span(ctx, obsv.KindBarrierFix, tFix, uint64(len(ep.objects)))
	}

	// Heal application-held volatile pointer caches (handle maps, DRAM
	// indexes) while the world is stopped and the forwarding info is live.
	p.RunRemapHooks(func(ref pmop.Ptr) pmop.Ptr {
		if ref.IsNull() || ref.PoolID() != p.ID() || ref.Offset() < heap.HeapOff() {
			return ref
		}
		if dst, ok := ep.lookupSrc(p, ref.Offset()); ok {
			return ref.WithOffset(dst)
		}
		return ref
	})

	// Make the moved data, moved bits and updated references durable before
	// the source pages can ever be reused. For the fence-free schemes this
	// is where lazily-pending lines are forced home (and the RBB sees them).
	p.Device().FlushAll(gctx)

	// Durably leave the compacting phase; the PMFT entries become stale by
	// epoch number.
	p.Device().Site(gctx, pmem.SiteEpochTransition)
	p.SetGCPhase(gctx, packPhase(phaseIdle, ep.scheme, ep.epochNo))
	p.Device().Site(gctx, pmem.SiteEpochTransition)

	// Release relocation frames and open destination frames for allocation.
	for _, f := range ep.relocFrames {
		heap.ReleaseFrame(f)
		e.framesReleased.Add(1)
	}
	heap.SubDup(ep.dupBytes)
	for _, f := range ep.destFrames {
		if heap.State(f) == alloc.FrameDestination {
			heap.SetState(f, alloc.FrameActive)
		}
	}
	if e.rbb != nil {
		e.rbb.Deactivate()
	}
	p.SetBarrier(nil)
	e.mu.Lock()
	e.epoch = nil
	e.mu.Unlock()
	if o != nil {
		// The whole epoch, opening stop-the-world through terminate. The
		// barrier (and checklookup hardware, when configured) was live from
		// the same window's start until now.
		o.Tracer.Span(ctx, obsv.KindEpoch, ep.obsStart, ep.epochNo)
		o.Tracer.Span(ctx, obsv.KindCheckLookup, ep.obsStart, ep.epochNo)
		o.Intervals.Add(obsv.IntervalEpoch, ep.obsStart, obsv.Now(ctx), ep.epochNo)
	}
}
