package core

import (
	"ffccd/internal/alloc"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// markObj is one reachable object found by the marking phase.
type markObj struct {
	payloadOff uint64
	typeID     pmop.TypeID
	payload    uint64
}

func (m *markObj) slots() int { return alloc.SlotsFor(m.payload) }

// refVisitor lets a walk rewrite a pointer field. field is the pool offset of
// the cell holding ref; the return value replaces ref both in the cell (when
// changed) and as the traversal target.
type refVisitor func(ctx *sim.Ctx, fieldOff uint64, ref pmop.Ptr) pmop.Ptr

// mark runs reachability analysis from the pool root (§5 marking()): it
// visits every reachable object, following pointer fields via the type
// registry. The caller must have stopped the world (or be in single-threaded
// recovery). If visit is non-nil it may redirect/rewrite each reference
// before traversal — recovery's reference fixup and the finish phase's
// reference updates run through it.
//
// Marking is idempotent (it only reads application memory unless visit
// rewrites), matching §3.3.1.
func (e *Engine) mark(ctx *sim.Ctx, visit refVisitor) []markObj {
	p := e.pool
	heap := p.Heap()
	heapOff := heap.HeapOff()
	heapEnd := heapOff + uint64(heap.Frames())*alloc.FrameSize

	// Visited bitset, one bit per slot.
	visited := make([]uint64, heap.Frames()*alloc.SlotsPerFrame/64+1)
	seen := func(off uint64) bool {
		slot := (off - heapOff) / alloc.SlotSize
		w, b := slot/64, slot%64
		if visited[w]&(1<<b) != 0 {
			return true
		}
		visited[w] |= 1 << b
		return false
	}
	inHeap := func(off uint64) bool {
		return off >= heapOff+pmop.HeaderSize && off < heapEnd
	}

	var out []markObj
	var stack []pmop.Ptr

	// Root cell (pool header offset 16 — see pmop). Read raw: the barrier is
	// either uninstalled (STW between epochs) or must not fire during
	// recovery walks.
	const rootCell = 16
	root := pmop.Ptr(p.RawLoadU64(ctx, rootCell))
	if visit != nil && !root.IsNull() {
		if nr := visit(ctx, rootCell, root); nr != root {
			p.RawStoreU64(ctx, rootCell, uint64(nr))
			root = nr
		}
	}
	if !root.IsNull() && root.PoolID() == p.ID() && inHeap(root.Offset()) {
		stack = append(stack, root)
	}

	for len(stack) > 0 {
		obj := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		off := obj.Offset()
		if seen(off) {
			continue
		}
		typeID, payload := p.Header(ctx, obj)
		ti, ok := p.Types().Lookup(typeID)
		out = append(out, markObj{payloadOff: off, typeID: typeID, payload: payload})
		if !ok {
			// Unregistered type: treated as raw bytes (conservative — no
			// references can hide in it because the programming model
			// requires typed allocation for pointer-bearing objects).
			continue
		}
		for _, fo := range ti.PointerOffsets(payload) {
			fieldOff := off + fo
			ref := pmop.Ptr(p.RawLoadU64(ctx, fieldOff))
			if ref.IsNull() {
				continue
			}
			if visit != nil {
				if nr := visit(ctx, fieldOff, ref); nr != ref {
					p.RawStoreU64(ctx, fieldOff, uint64(nr))
					ref = nr
				}
			}
			if ref.IsNull() || ref.PoolID() != p.ID() || !inHeap(ref.Offset()) {
				continue
			}
			stack = append(stack, ref)
		}
	}
	return out
}

// rebuildEntries converts marked objects to allocator rebuild entries.
func rebuildEntries(live []markObj) []alloc.RebuildEntry {
	out := make([]alloc.RebuildEntry, len(live))
	for i, m := range live {
		out[i] = alloc.RebuildEntry{Off: m.payloadOff - pmop.HeaderSize, Slots: m.slots()}
	}
	return out
}
