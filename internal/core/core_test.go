package core

import (
	"fmt"
	"runtime"
	"testing"

	"ffccd/internal/alloc"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// Test fixture: a singly linked list of nodes (value u64 @0, next Ptr @8,
// 48-byte payload → 4 slots with header) plus interleaved garbage objects
// freed afterwards to manufacture fragmentation.

func testRegistry() *pmop.Registry {
	reg := pmop.NewRegistry()
	reg.Register(pmop.TypeInfo{Name: "tnode", Kind: pmop.KindFixed, Size: 48, PtrOffsets: []uint64{8}})
	reg.Register(pmop.TypeInfo{Name: "tgarbage", Kind: pmop.KindBytes})
	return reg
}

type fixture struct {
	cfg *sim.Config
	rt  *pmop.Runtime
	p   *pmop.Pool
	ctx *sim.Ctx
	n   int
}

// buildFragmented creates a pool holding a list of n nodes with heavy
// external fragmentation (interleaved freed fillers).
func buildFragmented(t *testing.T, n int) *fixture {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.CacheBytes = 256 * 1024 // small enough that eviction happens
	rt := pmop.NewRuntime(&cfg, 64<<20)
	reg := testRegistry()
	p, err := rt.Create("frag", 32<<20, 12, reg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewCtx(&cfg)
	node, _ := reg.LookupName("tnode")
	garb, _ := reg.LookupName("tgarbage")

	var head, prev pmop.Ptr
	var garbage []pmop.Ptr
	for i := 0; i < n; i++ {
		nd, err := p.Alloc(ctx, node.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		p.WriteU64(ctx, nd, 0, uint64(i))
		if prev.IsNull() {
			head = nd
		} else {
			p.WritePtr(ctx, prev, 8, nd)
		}
		prev = nd
		// Interleave 3 garbage objects per node to fragment frames.
		for g := 0; g < 3; g++ {
			go1, err := p.Alloc(ctx, garb.ID, 112)
			if err != nil {
				t.Fatal(err)
			}
			garbage = append(garbage, go1)
		}
	}
	p.SetRoot(ctx, head)
	for _, g := range garbage {
		p.Free(ctx, g)
	}
	// The fixture stands in for an application that kept itself crash
	// consistent (it would have flushed through its transactions): persist
	// the built state before any test crashes the device.
	p.Device().FlushAll(ctx)
	return &fixture{cfg: &cfg, rt: rt, p: p, ctx: ctx, n: n}
}

// checkList verifies the list still holds 0..n-1 in order.
func checkList(t *testing.T, p *pmop.Pool, ctx *sim.Ctx, n int) {
	t.Helper()
	cur := p.Root(ctx)
	for i := 0; i < n; i++ {
		if cur.IsNull() {
			t.Fatalf("list truncated at %d", i)
		}
		if v := p.ReadU64(ctx, cur, 0); v != uint64(i) {
			t.Fatalf("node %d holds %d", i, v)
		}
		cur = p.ReadPtr(ctx, cur, 8)
	}
	if !cur.IsNull() {
		t.Fatal("list longer than expected")
	}
}

func schemes() []Scheme {
	return []Scheme{SchemeEspresso, SchemeSFCCD, SchemeFFCCD, SchemeFFCCDCheckLookup}
}

func TestCycleReducesFragmentation(t *testing.T) {
	for _, s := range schemes() {
		t.Run(s.String(), func(t *testing.T) {
			fx := buildFragmented(t, 200)
			before := fx.p.Heap().Frag(12)
			if before.FragRatio < 1.5 {
				t.Fatalf("fixture not fragmented: %.2f", before.FragRatio)
			}
			opt := DefaultOptions()
			opt.Scheme = s
			e := NewEngine(fx.p, opt)
			defer e.Close()
			if !e.RunCycle(fx.ctx) {
				t.Fatal("cycle did not run")
			}
			after := fx.p.Heap().Frag(12)
			if after.FragRatio >= before.FragRatio {
				t.Fatalf("fragR %.2f → %.2f: no reduction", before.FragRatio, after.FragRatio)
			}
			if after.FragRatio > opt.TargetRatio+0.15 {
				t.Errorf("fragR after = %.2f, want ≈ target %.2f", after.FragRatio, opt.TargetRatio)
			}
			checkList(t, fx.p, fx.ctx, fx.n)
			if st := e.Stats(); st.FramesReleased == 0 || st.ObjectsMoved == 0 {
				t.Errorf("stats: %+v", st)
			}
		})
	}
}

func TestCycleNoopWhenCompact(t *testing.T) {
	cfg := sim.DefaultConfig()
	rt := pmop.NewRuntime(&cfg, 16<<20)
	reg := testRegistry()
	p, _ := rt.Create("dense", 8<<20, 12, reg)
	ctx := sim.NewCtx(&cfg)
	node, _ := reg.LookupName("tnode")
	var head, prev pmop.Ptr
	// 256 four-slot nodes fill exactly 4 frames: fragR = 1.0.
	for i := 0; i < 256; i++ {
		nd, _ := p.Alloc(ctx, node.ID, 0)
		if prev.IsNull() {
			head = nd
		} else {
			p.WritePtr(ctx, prev, 8, nd)
		}
		prev = nd
	}
	p.SetRoot(ctx, head)
	e := NewEngine(p, DefaultOptions())
	defer e.Close()
	if e.RunCycle(ctx) {
		t.Error("cycle ran on a compact heap")
	}
}

func TestLeakReclamation(t *testing.T) {
	fx := buildFragmented(t, 50)
	// Create a leak: allocate unreachable objects (never freed, no refs).
	garb, _ := fx.p.Types().LookupName("tgarbage")
	for i := 0; i < 20; i++ {
		if _, err := fx.p.Alloc(fx.ctx, garb.ID, 112); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(fx.p, DefaultOptions())
	defer e.Close()
	e.RunCycle(fx.ctx)
	if st := e.Stats(); st.LeaksReclaimed < 20 {
		t.Errorf("leaks reclaimed = %d, want >= 20", st.LeaksReclaimed)
	}
	checkList(t, fx.p, fx.ctx, fx.n)
}

func TestBarrierForwardsDuringCompaction(t *testing.T) {
	for _, s := range schemes() {
		t.Run(s.String(), func(t *testing.T) {
			fx := buildFragmented(t, 100)
			opt := DefaultOptions()
			opt.Scheme = s
			e := NewEngine(fx.p, opt)
			defer e.Close()
			ep := e.prepare(fx.ctx)
			if ep == nil {
				t.Fatal("no epoch prepared")
			}
			// Application reads the whole list mid-compaction: the read
			// barrier must relocate on demand and forward pointers.
			checkList(t, fx.p, fx.ctx, fx.n)
			if e.Stats().BarrierMoves == 0 {
				t.Error("no barrier-driven relocations")
			}
			e.finishEpoch(fx.ctx, ep)
			checkList(t, fx.p, fx.ctx, fx.n)
		})
	}
}

func TestPhaseWordLifecycle(t *testing.T) {
	fx := buildFragmented(t, 100)
	e := NewEngine(fx.p, DefaultOptions())
	defer e.Close()
	if st, _, _ := unpackPhase(fx.p.GCPhase(fx.ctx)); st != phaseIdle {
		t.Fatal("not idle initially")
	}
	ep := e.prepare(fx.ctx)
	if ep == nil {
		t.Fatal("no epoch")
	}
	if st, sc, en := unpackPhase(fx.p.GCPhase(fx.ctx)); st != phaseCompacting || sc != e.opt.Scheme || en != ep.epochNo {
		t.Fatalf("phase word wrong: %d/%v/%d", st, sc, en)
	}
	e.compact(fx.ctx, ep)
	e.finishEpoch(fx.ctx, ep)
	if st, _, _ := unpackPhase(fx.p.GCPhase(fx.ctx)); st != phaseIdle {
		t.Fatal("not idle after finish")
	}
}

func TestPMFTDeterminism(t *testing.T) {
	// Same heap state must produce identical destination assignments —
	// the §4.3.1 deterministic relocation requirement. Build two identical
	// fixtures and compare PMFT-assigned destinations.
	mk := func() map[uint64]uint64 {
		fx := buildFragmented(t, 120)
		e := NewEngine(fx.p, DefaultOptions())
		defer e.Close()
		ep := e.prepare(fx.ctx)
		if ep == nil {
			t.Fatal("no epoch")
		}
		out := make(map[uint64]uint64)
		for _, o := range ep.objects {
			out[o.srcHdr] = o.dstHdr
		}
		e.finishEpoch(fx.ctx, ep)
		return out
	}
	a, b := mk(), mk()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("assignment sizes differ: %d vs %d", len(a), len(b))
	}
	for src, dst := range a {
		if b[src] != dst {
			t.Fatalf("nondeterministic destination for %#x: %#x vs %#x", src, dst, b[src])
		}
	}
}

// crashAndRecover simulates power failure and reattaches everything.
func crashAndRecover(t *testing.T, fx *fixture, e *Engine, opt Options) (*pmop.Pool, *Engine) {
	t.Helper()
	fx.rt.Device().Crash()
	if e.RBB() != nil {
		e.RBB().PowerLossFlush()
	}
	rt2, err := pmop.Attach(fx.cfg, fx.rt.Device())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := rt2.Open("frag", testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Recover(fx.ctx, p2, opt)
	if err != nil {
		t.Fatal(err)
	}
	return p2, e2
}

func TestCrashBeforeAnyRelocation(t *testing.T) {
	for _, s := range schemes() {
		t.Run(s.String(), func(t *testing.T) {
			fx := buildFragmented(t, 100)
			opt := DefaultOptions()
			opt.Scheme = s
			e := NewEngine(fx.p, opt)
			if ep := e.prepare(fx.ctx); ep == nil {
				t.Fatal("no epoch")
			}
			// Crash immediately after summary persisted the PMFT.
			p2, e2 := crashAndRecover(t, fx, e, opt)
			defer e2.Close()
			checkList(t, p2, fx.ctx, fx.n)
			if st, _, _ := unpackPhase(p2.GCPhase(fx.ctx)); st != phaseIdle {
				t.Error("recovery did not complete the epoch")
			}
		})
	}
}

func TestCrashMidCompaction(t *testing.T) {
	for _, s := range schemes() {
		t.Run(s.String(), func(t *testing.T) {
			fx := buildFragmented(t, 150)
			opt := DefaultOptions()
			opt.Scheme = s
			e := NewEngine(fx.p, opt)
			ep := e.prepare(fx.ctx)
			if ep == nil {
				t.Fatal("no epoch")
			}
			// Move roughly half the objects, then crash with everything
			// still volatile (FFCCD) or partially persisted.
			for i := 0; i < len(ep.objects)/2; i++ {
				e.relocateObject(fx.ctx, ep, i, false)
			}
			// Touch part of the list so some references self-healed.
			cur := fx.p.Root(fx.ctx)
			for i := 0; i < 30 && !cur.IsNull(); i++ {
				cur = fx.p.ReadPtr(fx.ctx, cur, 8)
			}
			p2, e2 := crashAndRecover(t, fx, e, opt)
			defer e2.Close()
			checkList(t, p2, fx.ctx, fx.n)
			frag := p2.Heap().Frag(12)
			if frag.FragRatio > opt.TargetRatio+0.2 {
				t.Errorf("post-recovery fragR = %.2f", frag.FragRatio)
			}
		})
	}
}

func TestCrashMidCompactionKeepInflight(t *testing.T) {
	// Same as above but the crash policy persists clwb'd-but-unfenced lines:
	// exercises the SFCCD "moved bit persisted, copy persisted" orderings.
	for _, s := range schemes() {
		t.Run(s.String(), func(t *testing.T) {
			fx := buildFragmented(t, 120)
			fx.rt.Device().SetCrashPolicy(pmem.KeepAllInflight)
			opt := DefaultOptions()
			opt.Scheme = s
			e := NewEngine(fx.p, opt)
			ep := e.prepare(fx.ctx)
			if ep == nil {
				t.Fatal("no epoch")
			}
			for i := 0; i < len(ep.objects)*2/3; i++ {
				e.relocateObject(fx.ctx, ep, i, false)
			}
			p2, e2 := crashAndRecover(t, fx, e, opt)
			defer e2.Close()
			checkList(t, p2, fx.ctx, fx.n)
		})
	}
}

func TestCrashAfterAppMutationMidCompaction(t *testing.T) {
	// The hard case for SFCCD/FFCCD recovery: the application durably
	// modifies a *moved* object, then a crash. Recovery must not clobber the
	// committed modification with the stale source copy.
	for _, s := range schemes() {
		t.Run(s.String(), func(t *testing.T) {
			fx := buildFragmented(t, 100)
			opt := DefaultOptions()
			opt.Scheme = s
			e := NewEngine(fx.p, opt)
			ep := e.prepare(fx.ctx)
			if ep == nil {
				t.Fatal("no epoch")
			}
			// Find node #5 and mutate its value through a committed tx.
			cur := fx.p.Root(fx.ctx)
			for i := 0; i < 5; i++ {
				cur = fx.p.ReadPtr(fx.ctx, cur, 8)
			}
			tx := fx.p.Begin(fx.ctx)
			tx.AddRange(fx.ctx, cur, 0, 8)
			fx.p.WriteU64(fx.ctx, cur, 0, 999999)
			tx.Commit(fx.ctx)

			p2, e2 := crashAndRecover(t, fx, e, opt)
			defer e2.Close()
			c := p2.Root(fx.ctx)
			for i := 0; i < 5; i++ {
				c = p2.ReadPtr(fx.ctx, c, 8)
			}
			if v := p2.ReadU64(fx.ctx, c, 0); v != 999999 {
				t.Fatalf("committed mutation lost: node5 = %d", v)
			}
		})
	}
}

func TestCrashWithUncommittedTxMidCompaction(t *testing.T) {
	// Uncommitted mutation of a moved object: recovery must roll it back to
	// the pre-transaction (post-move) value.
	for _, s := range schemes() {
		t.Run(s.String(), func(t *testing.T) {
			fx := buildFragmented(t, 80)
			opt := DefaultOptions()
			opt.Scheme = s
			e := NewEngine(fx.p, opt)
			if ep := e.prepare(fx.ctx); ep == nil {
				t.Fatal("no epoch")
			}
			cur := fx.p.Root(fx.ctx)
			for i := 0; i < 3; i++ {
				cur = fx.p.ReadPtr(fx.ctx, cur, 8)
			}
			tx := fx.p.Begin(fx.ctx)
			tx.AddRange(fx.ctx, cur, 0, 8)
			fx.p.WriteU64(fx.ctx, cur, 0, 424242)
			fx.p.Clwb(fx.ctx, fx.p.Resolve(fx.ctx, cur).Offset())
			fx.p.Sfence(fx.ctx) // the dirty write even persisted
			// No commit — crash.
			p2, e2 := crashAndRecover(t, fx, e, opt)
			defer e2.Close()
			checkList(t, p2, fx.ctx, fx.n) // value 3 must be back
		})
	}
}

func TestRecoverIdempotent(t *testing.T) {
	fx := buildFragmented(t, 100)
	opt := DefaultOptions()
	opt.Scheme = SchemeFFCCD
	e := NewEngine(fx.p, opt)
	ep := e.prepare(fx.ctx)
	for i := 0; i < len(ep.objects)/3; i++ {
		e.relocateObject(fx.ctx, ep, i, false)
	}
	p2, e2 := crashAndRecover(t, fx, e, opt)
	e2.Close()
	// Crash again immediately after recovery (idle state) and recover again.
	fx.rt = nil
	dev := p2.Device()
	dev.Crash()
	rt3, _ := pmop.Attach(fx.cfg, dev)
	p3, _ := rt3.Open("frag", testRegistry())
	e3, err := Recover(fx.ctx, p3, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	checkList(t, p3, fx.ctx, fx.n)
}

func TestAutoTrigger(t *testing.T) {
	fx := buildFragmented(t, 150)
	opt := DefaultOptions()
	opt.AutoTrigger = true
	e := NewEngine(fx.p, opt)
	// Allocations drive the trigger hook; wait for the cycle.
	garb, _ := fx.p.Types().LookupName("tgarbage")
	deadline := 0
	for e.Stats().Cycles == 0 && deadline < 10000 {
		o, err := fx.p.Alloc(fx.ctx, garb.ID, 48)
		if err != nil {
			t.Fatal(err)
		}
		fx.p.Free(fx.ctx, o)
		deadline++
		// The trigger goroutine needs CPU time; a tight alloc loop can
		// starve it on GOMAXPROCS=1 under parallel-suite load.
		runtime.Gosched()
	}
	e.Close()
	if e.Stats().Cycles == 0 {
		t.Fatal("auto trigger never fired")
	}
	checkList(t, fx.p, fx.ctx, fx.n)
}

func TestConcurrentAppDuringCompaction(t *testing.T) {
	fx := buildFragmented(t, 300)
	opt := DefaultOptions()
	opt.Scheme = SchemeFFCCDCheckLookup
	e := NewEngine(fx.p, opt)
	defer e.Close()
	ep := e.prepare(fx.ctx)
	if ep == nil {
		t.Fatal("no epoch")
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func() {
			ctx := sim.NewCtx(fx.cfg)
			for rep := 0; rep < 5; rep++ {
				fx.p.StartOp()
				cur := fx.p.Root(ctx)
				for i := 0; !cur.IsNull(); i++ {
					if v := fx.p.ReadU64(ctx, cur, 0); v != uint64(i) {
						fx.p.EndOp()
						done <- fmt.Errorf("node %d holds %d", i, v)
						return
					}
					cur = fx.p.ReadPtr(ctx, cur, 8)
				}
				fx.p.EndOp()
			}
			done <- nil
		}()
	}
	go e.compact(e.gcCtx, ep)
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	e.finishEpoch(fx.ctx, ep)
	checkList(t, fx.p, fx.ctx, fx.n)
}

func TestSchemeString(t *testing.T) {
	if SchemeFFCCD.String() != "ffccd" || Scheme(99).String() != "unknown" {
		t.Error("scheme names wrong")
	}
}

func TestReachedBitmapGatesRelease(t *testing.T) {
	// White-box: after FFCCD compaction+finish, every destination line of
	// every moved object must be marked reached (FlushAll forced them home).
	fx := buildFragmented(t, 100)
	opt := DefaultOptions()
	opt.Scheme = SchemeFFCCD
	e := NewEngine(fx.p, opt)
	defer e.Close()
	ep := e.prepare(fx.ctx)
	if ep == nil {
		t.Fatal("no epoch")
	}
	e.compact(fx.ctx, ep)
	objs := ep.objects
	e.finishEpoch(fx.ctx, ep)
	reachedOff, _, _ := metaLayout(fx.p)
	heap := fx.p.Heap()
	heapOff := heap.HeapOff()
	for _, o := range objs {
		df := heap.FrameOf(o.dstHdr)
		word := fx.p.RawLoadU64(fx.ctx, reachedOff+uint64(df)*8)
		first := (o.dstHdr - heapOff) % alloc.FrameSize >> pmem.LineShift
		last := (o.dstHdr + o.bytes() - 1 - heapOff) % alloc.FrameSize >> pmem.LineShift
		for l := first; l <= last; l++ {
			if word&(1<<l) == 0 {
				t.Fatalf("dest line %d of frame %d never reached persistence", l, df)
			}
		}
	}
}

func TestEADRMakesFenceFreeTrivial(t *testing.T) {
	// §4.4's contrast: under eADR every store is durable, so a crash in the
	// middle of a fence-free epoch loses nothing — recovery finds every
	// relocated object fully reached.
	fx := buildFragmented(t, 120)
	fx.rt.Device().SetEADR(true)
	opt := DefaultOptions()
	opt.Scheme = SchemeFFCCD
	e := NewEngine(fx.p, opt)
	ep := e.prepare(fx.ctx)
	if ep == nil {
		t.Fatal("no epoch")
	}
	moved := len(ep.objects) / 2
	for i := 0; i < moved; i++ {
		e.relocateObject(fx.ctx, ep, i, false)
	}
	p2, e2 := crashAndRecover(t, fx, e, opt)
	defer e2.Close()
	checkList(t, p2, fx.ctx, fx.n)
}
