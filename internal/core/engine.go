// Package core implements the paper's primary contribution: fence-free
// crash-consistent concurrent defragmentation (FFCCD) for persistent memory,
// together with the two baselines it is evaluated against — the Espresso
// -style two-fence design and the single-fence SFCCD — and the checklookup
// hardware acceleration (§3–§5).
//
// An Engine attaches to one pmop.Pool. A defragmentation cycle is:
//
//	marking  (stop-the-world, idempotent)     §5 marking()
//	summary  (stop-the-world, idempotent;     §5 summary(): page ranking,
//	          persists the PMFT)               PMFT build, leak reclamation)
//	compact  (concurrent: read barrier in      §3.3.3 read barriers +
//	          D_RW/D_RO + background mover)    background relocation
//	finish   (reference fixup, durable flush,  §5 terminate() / periodic
//	          page release)                     release checks
//
// Crash recovery for each scheme implements Observations 1–4 (§3.3.3).
package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ffccd/internal/arch"
	"ffccd/internal/obsv"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// Scheme selects the crash-consistency design for the compacting phase.
type Scheme int

const (
	// SchemeNone disables defragmentation (the PMDK baseline).
	SchemeNone Scheme = iota
	// SchemeEspresso is the state-of-the-art baseline (§3.3.2): two
	// clwb+sfence pairs per relocated object.
	SchemeEspresso
	// SchemeSFCCD removes one of the two fences (§3.3.3, Fig. 7) at the cost
	// of content inspection during recovery.
	SchemeSFCCD
	// SchemeFFCCD removes all fences using the relocate instruction and the
	// reached bitmap (§4.2); check+lookup stays in software.
	SchemeFFCCD
	// SchemeFFCCDCheckLookup adds the BFC + PMFTLB checklookup acceleration
	// (§4.3).
	SchemeFFCCDCheckLookup
)

var schemeNames = [...]string{"none", "espresso", "sfccd", "ffccd", "ffccd+cl"}

func (s Scheme) String() string {
	if s < 0 || int(s) >= len(schemeNames) {
		return "unknown"
	}
	return schemeNames[s]
}

// UsesRelocateInstruction reports whether the scheme relies on the pending-
// bit/RBB hardware.
func (s Scheme) UsesRelocateInstruction() bool {
	return s == SchemeFFCCD || s == SchemeFFCCDCheckLookup
}

// Options configure an Engine (the paper's init() parameters, §5).
type Options struct {
	Scheme Scheme
	// TriggerRatio starts a cycle when fragR exceeds it (paper: 1.5 normal,
	// 1.7 relaxed).
	TriggerRatio float64
	// TargetRatio is the fragR the summary phase compacts down to (paper:
	// 1.25 normal, 1.5 relaxed).
	TargetRatio float64
	// BatchObjects is how many objects the background mover relocates
	// between yields (concurrency pacing).
	BatchObjects int
	// AutoTrigger runs cycles from a background goroutine when pmalloc/pfree
	// observe high fragmentation. When false, RunCycle is manual.
	AutoTrigger bool
	// Obs enables observability from construction (equivalent to SetObs right
	// after NewEngine, but also covers activity during Recover). Nil = off.
	Obs *obsv.Obs
	// RecoveryProgress, when non-nil, is invoked at each stage boundary of
	// Recover with a short stage label ("rollback", "reconcile", "fixup",
	// "rebuild", "resume", "done"). Purely observational: it charges no
	// simulated cycles, so recovery results are identical with or without it.
	// The serving crash harness uses it to decompose blackout time.
	RecoveryProgress func(stage string)
}

// NormalParams are the paper's normal defragmentation parameters (Redis
// defaults): trigger 1.5, target 1.25.
func NormalParams() (trigger, target float64) { return 1.5, 1.25 }

// RelaxedParams are the relaxed parameters: trigger 1.7, target 1.5.
func RelaxedParams() (trigger, target float64) { return 1.7, 1.5 }

// DefaultOptions returns FFCCD+checklookup with normal parameters.
func DefaultOptions() Options {
	tr, tg := NormalParams()
	return Options{
		Scheme:       SchemeFFCCDCheckLookup,
		TriggerRatio: tr,
		TargetRatio:  tg,
		BatchObjects: 32,
	}
}

// relocStripes is the number of per-object relocation locks.
const relocStripes = 256

// Engine drives defragmentation for one pool.
type Engine struct {
	pool *pmop.Pool
	cfg  *sim.Config
	opt  Options
	rbb  *arch.RBB

	gcCtx *sim.Ctx // background thread's clock/TLB

	mu    sync.Mutex // guards epoch pointer and cycle state machine
	epoch *epochState
	busy  atomic.Bool // a cycle is running

	relocLocks [relocStripes]sync.Mutex

	trigger   chan struct{}
	stopCh    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// Stats (atomic; read via Stats()).
	stw            stwState
	cycles         atomic.Uint64
	framesReleased atomic.Uint64
	objectsMoved   atomic.Uint64
	barrierMoves   atomic.Uint64
	leaksReclaimed atomic.Uint64

	// Observability (nil when disabled — every emit site checks). The
	// histogram pointers are resolved once in SetObs so hot paths never touch
	// the registry; cluStats is the shared sink transient checklookup units
	// report into.
	obs      *obsv.Obs
	hSTW     *obsv.Histogram
	hBatch   *obsv.Histogram
	hBarrier *obsv.Histogram
	cluStats *arch.CLUStats

	// cluPool recycles the per-resolve checklookup units. Units are
	// architecturally transient — one cold unit per read-barrier resolve —
	// and cluFor resets recycled ones to power-on state, so pooling changes
	// host allocation pressure only, never simulated cycles.
	cluPool sync.Pool
}

// NewEngine attaches a defragmentation engine to a pool. For the FFCCD
// schemes it wires the RBB into the device. Call Close when done.
func NewEngine(p *pmop.Pool, opt Options) *Engine {
	cfg := p.Config()
	e := &Engine{
		pool:    p,
		cfg:     cfg,
		opt:     opt,
		gcCtx:   sim.NewCtx(cfg),
		trigger: make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
	}
	if opt.BatchObjects <= 0 {
		e.opt.BatchObjects = 32
	}
	e.cluPool.New = func() any { return arch.NewCheckLookupUnit(cfg) }
	if opt.Scheme.UsesRelocateInstruction() {
		e.rbb = arch.NewRBB(cfg, p.Device())
		p.Device().SetRBB(e.rbb)
	}
	if opt.Scheme == SchemeSFCCD {
		p.SetTxAddHook(e.sfccdTxAddHook)
	}
	if opt.Obs != nil {
		e.SetObs(opt.Obs)
	}
	if opt.AutoTrigger && opt.Scheme != SchemeNone {
		p.SetAllocHook(e.checkTrigger)
		e.wg.Add(1)
		go e.triggerLoop()
	}
	return e
}

// Pool returns the attached pool.
func (e *Engine) Pool() *pmop.Pool { return e.pool }

// RBB returns the reached-bitmap buffer (nil for non-FFCCD schemes).
func (e *Engine) RBB() *arch.RBB { return e.rbb }

// GCClock returns the background thread's cycle clock.
func (e *Engine) GCClock() *sim.Clock { return e.gcCtx.Clock }

// Stats summarises engine activity.
type EngineStats struct {
	Cycles         uint64
	FramesReleased uint64
	ObjectsMoved   uint64
	BarrierMoves   uint64
	LeaksReclaimed uint64
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Cycles:         e.cycles.Load(),
		FramesReleased: e.framesReleased.Load(),
		ObjectsMoved:   e.objectsMoved.Load(),
		BarrierMoves:   e.barrierMoves.Load(),
		LeaksReclaimed: e.leaksReclaimed.Load(),
	}
}

// Add folds other into s. The fork-based experiment driver uses it to merge
// the shared prefix engine's pre-divergence activity into each forked run's
// stats so forked and scratch runs report identical engine totals.
func (s *EngineStats) Add(other EngineStats) {
	s.Cycles += other.Cycles
	s.FramesReleased += other.FramesReleased
	s.ObjectsMoved += other.ObjectsMoved
	s.BarrierMoves += other.BarrierMoves
	s.LeaksReclaimed += other.LeaksReclaimed
}

// SetObs wires the observability bundle into the engine: epoch/phase event
// tracing plus the stw_pause_cycles, relocate_batch_objects, and
// read_barrier_cycles histograms, and the "engine"/"checklookup" snapshot
// groups. Call once, before the engine runs; nil disables (the default).
// Observability never charges simulated cycles — events carry clock readings
// only — so enabling it leaves golden cycle totals bit-identical.
func (e *Engine) SetObs(o *obsv.Obs) {
	e.obs = o
	if o == nil {
		e.hSTW, e.hBatch, e.hBarrier, e.cluStats = nil, nil, nil, nil
		return
	}
	e.hSTW = o.Metrics.Hist("stw_pause_cycles")
	e.hBatch = o.Metrics.Hist("relocate_batch_objects")
	e.hBarrier = o.Metrics.Hist("read_barrier_cycles")
	e.cluStats = &arch.CLUStats{}
	o.Metrics.RegisterGroup("engine", func() map[string]uint64 {
		s := e.Stats()
		return map[string]uint64{
			"cycles":          s.Cycles,
			"frames_released": s.FramesReleased,
			"objects_moved":   s.ObjectsMoved,
			"barrier_moves":   s.BarrierMoves,
			"leaks_reclaimed": s.LeaksReclaimed,
		}
	})
	o.Metrics.RegisterGroup("checklookup", e.cluStats.Map)
}

// OpenEpoch reports the number of the currently open defragmentation epoch
// (false when the engine is idle). It is observability-safe: it reads only
// the engine's own epoch pointer under its mutex — no simulated cycles are
// charged and no device state is touched — so serving-path exemplar tagging
// can call it per dispatch without perturbing results.
func (e *Engine) OpenEpoch() (uint64, bool) {
	e.mu.Lock()
	ep := e.epoch
	e.mu.Unlock()
	if ep == nil {
		return 0, false
	}
	return ep.epochNo, true
}

// checkTrigger is the pmalloc/pfree hook (§5): signal the engine when the
// fragmentation ratio crosses the trigger threshold.
func (e *Engine) checkTrigger() {
	if e.busy.Load() {
		return
	}
	fr := e.pool.Heap().Frag(e.pool.PageShift())
	if fr.FragRatio > e.opt.TriggerRatio && fr.LiveBytes > 0 {
		select {
		case e.trigger <- struct{}{}:
		default:
		}
	}
}

func (e *Engine) triggerLoop() {
	defer e.wg.Done()
	for {
		select {
		case <-e.stopCh:
			return
		case <-e.trigger:
			e.RunCycle(e.gcCtx)
		}
	}
}

// Close implements the paper's exit(): it completes any in-flight
// defragmentation (terminate(): finish pending relocations and reference
// updates, release relocation pages, drop metadata) and stops the engine.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		close(e.stopCh)
		if e.opt.AutoTrigger {
			e.pool.SetAllocHook(nil)
		}
		e.wg.Wait()
		// Finish an epoch that a manual BeginCycle left open.
		e.mu.Lock()
		ep := e.epoch
		e.mu.Unlock()
		if ep != nil {
			e.finishEpoch(e.gcCtx, ep)
		}
		e.pool.SetTxAddHook(nil)
	})
}

// RunCycle executes one full defragmentation cycle synchronously:
// mark → summary → concurrent compaction → finish. It is a no-op if another
// cycle is running or the scheme is SchemeNone. Returns true if a cycle ran.
func (e *Engine) RunCycle(ctx *sim.Ctx) bool {
	if e.opt.Scheme == SchemeNone {
		return false
	}
	if !e.busy.CompareAndSwap(false, true) {
		return false
	}
	defer e.busy.Store(false)

	ep := e.prepare(ctx)
	if ep == nil {
		return false
	}
	e.compact(ctx, ep)
	e.finishEpoch(ctx, ep)
	e.cycles.Add(1)
	return true
}

// BeginCycle runs only the stop-the-world phases (marking + summary) and
// installs the read barrier, leaving the epoch open with no object moved
// yet. Crash-injection harnesses use it with StepCompaction and FinishCycle
// to construct mid-compaction states deterministically. Returns false if the
// heap did not need compaction (or a cycle is already running).
func (e *Engine) BeginCycle(ctx *sim.Ctx) bool {
	if e.opt.Scheme == SchemeNone || !e.busy.CompareAndSwap(false, true) {
		return false
	}
	if e.prepare(ctx) == nil {
		e.busy.Store(false)
		return false
	}
	return true
}

// StepCompaction relocates up to n not-yet-moved objects of the open epoch
// and returns how many it moved. Zero means compaction is complete.
func (e *Engine) StepCompaction(ctx *sim.Ctx, n int) int {
	e.mu.Lock()
	ep := e.epoch
	e.mu.Unlock()
	if ep == nil {
		return 0
	}
	o := e.obs
	var t0 uint64
	if o != nil {
		t0 = obsv.Now(ctx)
	}
	moved := 0
	for i := range ep.objects {
		if moved >= n {
			break
		}
		if !ep.isMoved(i) {
			e.relocateObject(ctx.Derived(sim.CatCopy), ep, i, false)
			moved++
		}
	}
	if o != nil && moved > 0 {
		o.Tracer.Span(ctx, obsv.KindCopy, t0, uint64(moved))
		e.hBatch.Observe(uint64(moved))
	}
	return moved
}

// EpochPending returns the number of not-yet-moved objects in the open
// epoch (0 when idle).
func (e *Engine) EpochPending() int {
	e.mu.Lock()
	ep := e.epoch
	e.mu.Unlock()
	if ep == nil {
		return 0
	}
	return int(ep.pending.Load())
}

// FinishCycle completes an epoch opened by BeginCycle: it relocates the
// remaining objects and runs the terminate path.
func (e *Engine) FinishCycle(ctx *sim.Ctx) {
	e.mu.Lock()
	ep := e.epoch
	e.mu.Unlock()
	if ep == nil {
		e.busy.Store(false)
		return
	}
	e.compact(ctx, ep)
	e.finishEpoch(ctx, ep)
	e.cycles.Add(1)
	e.busy.Store(false)
}

// prepare runs the stop-the-world phases (marking + summary) and installs
// the read barrier. Returns nil when fragmentation is already at target.
func (e *Engine) prepare(ctx *sim.Ctx) *epochState {
	p := e.pool
	p.StopWorld()
	defer p.ResumeWorld()

	o := e.obs
	var t0, t1 uint64
	if o != nil {
		t0 = obsv.Now(ctx)
	}
	live := e.mark(ctx.Derived(sim.CatMark), nil)
	if o != nil {
		t1 = obsv.Now(ctx)
		o.Tracer.Span(ctx, obsv.KindMark, t0, uint64(len(live)))
	}
	ep := e.summary(ctx.Derived(sim.CatSummary), live)
	if o != nil {
		var objs, began uint64
		if ep != nil {
			objs, began = uint64(len(ep.objects)), 1
		}
		o.Tracer.Span(ctx, obsv.KindSummary, t1, objs)
		o.Tracer.Span(ctx, obsv.KindSTW, t0, 0)
		e.hSTW.Observe(obsv.Now(ctx) - t0)
		o.Tracer.Instant(ctx, obsv.KindTrigger, began)
		var eno uint64
		if ep != nil {
			eno = ep.epochNo
		}
		o.Intervals.Add(obsv.IntervalSTW, t0, obsv.Now(ctx), eno)
	}
	if ep == nil {
		return nil
	}
	ep.obsStart = t0
	e.mu.Lock()
	e.epoch = ep
	e.mu.Unlock()
	p.SetBarrier(&readBarrier{e: e, ep: ep})
	return ep
}

// compact runs the background mover until every relocation object has moved.
// Application threads run concurrently, relocating on demand through the
// read barrier.
func (e *Engine) compact(ctx *sim.Ctx, ep *epochState) {
	o := e.obs
	var t0 uint64
	if o != nil {
		t0 = obsv.Now(ctx)
	}
	moved := 0
	for _, obj := range ep.objects {
		if ep.isMoved(obj.index) {
			continue
		}
		e.relocateObject(ctx.Derived(sim.CatCopy), ep, obj.index, false)
		moved++
		if moved%e.opt.BatchObjects == 0 {
			// Concurrent pacing: let application threads in. A yield (not a
			// timed sleep) keeps host wall-clock free of timer granularity —
			// a 1µs sleep really costs tens of µs per batch.
			runtime.Gosched()
		}
	}
	if o != nil {
		o.Tracer.Span(ctx, obsv.KindCopy, t0, uint64(moved))
		e.hBatch.Observe(uint64(moved))
	}
}
