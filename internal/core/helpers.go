package core

import (
	"ffccd/internal/arch"
	"ffccd/internal/pmop"
)

// newRBBFor creates and wires a reached-bitmap buffer for a pool's device.
func newRBBFor(p *pmop.Pool) *arch.RBB {
	rbb := arch.NewRBB(p.Config(), p.Device())
	p.Device().SetRBB(rbb)
	return rbb
}
