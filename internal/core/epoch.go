package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"ffccd/internal/alloc"
	"ffccd/internal/arch"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// pmemLineShift mirrors pmem.LineShift for cluster keys.
const pmemLineShift = pmem.LineShift

// relocObj is one object scheduled for relocation in the current epoch.
type relocObj struct {
	index   int
	srcHdr  uint64 // pool offset of the source header slot
	dstHdr  uint64 // pool offset of the destination header slot
	slots   int    // total slots (header + payload)
	payload uint64
}

func (o *relocObj) srcPayload() uint64 { return o.srcHdr + pmop.HeaderSize }
func (o *relocObj) dstPayload() uint64 { return o.dstHdr + pmop.HeaderSize }
func (o *relocObj) bytes() uint64      { return uint64(o.slots) * alloc.SlotSize }

// epochState is the volatile mirror of one defragmentation epoch: the
// relocation set, the forwarding information, and the per-object movement
// state. Built during the stop-the-world summary (or reconstructed from the
// persistent PMFT during recovery); read-only afterwards except for the
// atomic moved flags.
type epochState struct {
	epochNo uint64
	scheme  Scheme

	relocFrames []int
	relocSet    map[int]bool
	destFrames  []int

	objects []relocObj
	bySrc   map[uint64]int // src payload offset → object index
	byDst   map[uint64]int // dst payload offset → object index

	// destIndex lists, per destination frame, object indices sorted by
	// destination offset — used to find the object containing an arbitrary
	// destination address (tx hook, recovery).
	destIndex map[int][]int

	// components groups objects whose destination cachelines overlap
	// (connected components over line sharing); such objects are relocated
	// together as one operation whose destination lines are written
	// atomically under the fence-free schemes. compOf maps an object index
	// to its component.
	components [][]int
	compOf     []int32

	// minor[f] is frame f's volatile minor-distance map; destFrame[f] its
	// major distance.
	minor     map[int]*[alloc.SlotsPerFrame]byte
	destFrame map[int]int

	moved    []uint32 // atomic: 1 once the object's move completed
	pending  atomic.Int64
	dupBytes uint64 // double-counted bytes registered with the heap

	blooms *arch.BloomSet
	fwd    *pmftForwarder

	tombMu     sync.Mutex
	tombstoned map[uint64]bool // srcHdr offsets already tombstoned (SFCCD)

	// obsStart is the simulated cycle the epoch's opening stop-the-world
	// began at, recorded only when observability is enabled so terminate can
	// emit the whole-epoch span. Host-side bookkeeping; never charged.
	obsStart uint64
}

func (ep *epochState) isMoved(i int) bool  { return atomic.LoadUint32(&ep.moved[i]) == 1 }
func (ep *epochState) setMoved(i int) bool { return atomic.SwapUint32(&ep.moved[i], 1) == 0 }

// buildIndexes populates the lookup maps from ep.objects and the per-frame
// forwarding info.
func (ep *epochState) buildIndexes(p *pmop.Pool) {
	ep.relocSet = make(map[int]bool, len(ep.relocFrames))
	for _, f := range ep.relocFrames {
		ep.relocSet[f] = true
	}
	ep.bySrc = make(map[uint64]int, len(ep.objects))
	ep.byDst = make(map[uint64]int, len(ep.objects))
	ep.destIndex = make(map[int][]int)
	heap := p.Heap()
	for i := range ep.objects {
		o := &ep.objects[i]
		o.index = i
		ep.bySrc[o.srcPayload()] = i
		ep.byDst[o.dstPayload()] = i
		df := heap.FrameOf(o.dstHdr)
		ep.destIndex[df] = append(ep.destIndex[df], i)
	}
	for f := range ep.destIndex {
		idx := ep.destIndex[f]
		sort.Slice(idx, func(a, b int) bool {
			return ep.objects[idx[a]].dstHdr < ep.objects[idx[b]].dstHdr
		})
	}
	ep.moved = make([]uint32, len(ep.objects))
	ep.tombstoned = make(map[uint64]bool)
	ep.pending.Store(int64(len(ep.objects)))
	ep.buildComponents()
}

// buildComponents groups objects into connected components of destination-
// line sharing: walking objects in destination order, an object joins the
// current component iff its first line equals the previous object's last.
func (ep *epochState) buildComponents() {
	idx := make([]int, len(ep.objects))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ep.objects[idx[a]].dstHdr < ep.objects[idx[b]].dstHdr })
	ep.compOf = make([]int32, len(ep.objects))
	ep.components = ep.components[:0]
	lastLine := uint64(^uint64(0))
	for _, i := range idx {
		o := &ep.objects[i]
		first := o.dstHdr >> pmemLineShift
		last := (o.dstHdr + o.bytes() - 1) >> pmemLineShift
		if first != lastLine || len(ep.components) == 0 {
			ep.components = append(ep.components, nil)
		}
		c := len(ep.components) - 1
		ep.components[c] = append(ep.components[c], i)
		ep.compOf[i] = int32(c)
		lastLine = last
	}
}

// clusterOf returns the indices of all objects in idx's destination-line
// component (idx included).
func (ep *epochState) clusterOf(idx int) []int {
	return ep.components[ep.compOf[idx]]
}

// lookupSrc returns the destination payload offset for a source payload
// offset using the minor-distance map, mirroring a PMFT walk.
func (ep *epochState) lookupSrc(p *pmop.Pool, srcOff uint64) (uint64, bool) {
	heap := p.Heap()
	f, slot := heap.Locate(srcOff)
	mm, ok := ep.minor[f]
	if !ok || mm[slot] == minorInvalid {
		return 0, false
	}
	df := ep.destFrame[f]
	return heap.OffsetOf(df, int(mm[slot])), true
}

// findDestObject locates the relocation object whose destination range
// contains the pool offset off.
func (ep *epochState) findDestObject(p *pmop.Pool, off uint64) (int, bool) {
	heap := p.Heap()
	heapOff := heap.HeapOff()
	if off < heapOff {
		return 0, false
	}
	f := heap.FrameOf(off)
	idx, ok := ep.destIndex[f]
	if !ok {
		return 0, false
	}
	// Binary search for the last object starting at or before off.
	lo, hi := 0, len(idx)-1
	found := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		if ep.objects[idx[mid]].dstHdr <= off {
			found = idx[mid]
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if found < 0 {
		return 0, false
	}
	o := &ep.objects[found]
	if off < o.dstHdr+o.bytes() {
		return found, true
	}
	return 0, false
}

// pmftForwarder adapts the epoch's forwarding info to arch.Forwarder
// (checklookup's functional backend). Addresses are this run's virtual
// addresses.
type pmftForwarder struct {
	p  *pmop.Pool
	ep *epochState
}

func (f *pmftForwarder) LookupAddr(_ *sim.Ctx, srcVA uint64) (uint64, bool) {
	off := f.p.OffsetOfVA(srcVA)
	dst, ok := f.ep.lookupSrc(f.p, off)
	if !ok {
		return 0, false
	}
	return f.p.VA(dst), true
}
