package core

import (
	"ffccd/internal/arch"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// readBarrier implements pmop.ReadBarrier for the compacting phase. It is
// the paper's modified D_RW/D_RO (Fig. 6b / Fig. 9a): check whether the
// referent lives on a relocation page, look up its destination, relocate it
// if it has not moved, and return the forwarded pointer. The caller
// (pmop.Pool) self-heals stored references with a plain store — the
// idempotent, fence-free reference update of Observation 3.
type readBarrier struct {
	e  *Engine
	ep *epochState
}

// cluFor returns the checklookup unit for one resolve. A unit already
// attached to the context (planted there by a checkpoint restore, so a fork
// resumes with the warm BFC/PMFTLB it captured) is used as-is. Otherwise a
// unit comes from the engine's pool, Reset to power-on state — simulating
// identically to the fresh allocation this replaces — and the caller must
// hand it back with cluDone. pooled reports which case applied.
func (e *Engine) cluFor(ctx *sim.Ctx) (u *arch.CheckLookupUnit, pooled bool) {
	if u, ok := ctx.HW.(*arch.CheckLookupUnit); ok {
		u.Shared = e.cluStats
		return u, false
	}
	u = e.cluPool.Get().(*arch.CheckLookupUnit)
	u.Reset()
	u.Shared = e.cluStats
	return u, true
}

// cluDone returns a pooled unit; units found on the context stay attached.
func (e *Engine) cluDone(u *arch.CheckLookupUnit, pooled bool) {
	if pooled {
		e.cluPool.Put(u)
	}
}

// RestoreCLU rebuilds a checklookup unit from a machine checkpoint, wires it
// to this engine's counter sink, and attaches it to ctx so subsequent
// resolves on ctx use the restored (warm) unit instead of pooled cold ones.
// Used by drivers that fork a machine captured inside an open epoch.
func (e *Engine) RestoreCLU(ctx *sim.Ctx, c *arch.CheckLookupUnitCheckpoint) *arch.CheckLookupUnit {
	u := arch.NewCheckLookupUnit(e.cfg)
	u.Restore(c)
	u.Shared = e.cluStats
	ctx.HW = u
	return u
}

// Resolve wraps resolve with the read-barrier latency histogram when
// observability is enabled. The clock delta is read, never charged, so the
// instrumented and bare paths charge identical cycles.
func (b *readBarrier) Resolve(ctx *sim.Ctx, ref pmop.Ptr) pmop.Ptr {
	if h := b.e.hBarrier; h != nil {
		t0 := ctx.Clock.Total()
		out := b.resolve(ctx, ref)
		h.Observe(ctx.Clock.Total() - t0)
		return out
	}
	return b.resolve(ctx, ref)
}

func (b *readBarrier) resolve(ctx *sim.Ctx, ref pmop.Ptr) pmop.Ptr {
	e, ep := b.e, b.ep
	p := e.pool
	if ref.PoolID() != p.ID() {
		return ref
	}
	off := ref.Offset()
	heap := p.Heap()
	if off < heap.HeapOff() {
		return ref
	}

	clCtx := ctx.Derived(sim.CatCheckLookup)
	var dstOff uint64
	if ep.scheme == SchemeFFCCDCheckLookup {
		// Hardware checklookup: BFC + PMFTLB (§4.3.2).
		u, pooled := e.cluFor(clCtx)
		dstVA, ok := u.CheckLookup(clCtx, p.VA(off), ep.blooms, ep.fwd)
		e.cluDone(u, pooled)
		if !ok {
			return ref
		}
		dstOff = p.OffsetOfVA(dstVA)
	} else {
		// Software path (Espresso / SFCCD / fence-free-only FFCCD):
		// is_frag_page() probes the in-memory per-page metadata table with
		// data-dependent addressing and poor locality — a DRAM-latency-class
		// access (§3.3.3 (i): "an explicit check on whether a pointer is to
		// an object on a relocation page"; §4.3.2 calls check+lookup the
		// second-largest bottleneck). find_newaddr() then walks the
		// forwarding table in PM (§3.3.3 (ii)).
		clCtx.Charge(e.cfg.DRAMLatency)
		if !ep.relocSet[heap.FrameOf(off)] {
			return ref
		}
		clCtx.Charge(e.cfg.PMReadLatency)
		var ok bool
		dstOff, ok = ep.lookupSrc(p, off)
		if !ok {
			return ref
		}
	}

	idx, ok := ep.bySrc[off]
	if !ok {
		// Interior or stale address that maps through the minor table but is
		// not an object start — forward without relocation responsibility.
		return ref.WithOffset(dstOff)
	}
	if !ep.isMoved(idx) {
		e.relocateObject(ctx.Derived(sim.CatCopy), ep, idx, true)
	}
	return ref.WithOffset(dstOff)
}
