package core

import (
	"ffccd/internal/arch"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// readBarrier implements pmop.ReadBarrier for the compacting phase. It is
// the paper's modified D_RW/D_RO (Fig. 6b / Fig. 9a): check whether the
// referent lives on a relocation page, look up its destination, relocate it
// if it has not moved, and return the forwarded pointer. The caller
// (pmop.Pool) self-heals stored references with a plain store — the
// idempotent, fence-free reference update of Observation 3.
type readBarrier struct {
	e  *Engine
	ep *epochState
}

// cluFor returns the calling thread's checklookup unit, lazily created and
// cached in the per-thread context (one unit per simulated core). shared is
// the engine's aggregate counter sink (nil when observability is off).
func cluFor(ctx *sim.Ctx, cfg *sim.Config, shared *arch.CLUStats) *arch.CheckLookupUnit {
	if u, ok := ctx.HW.(*arch.CheckLookupUnit); ok {
		return u
	}
	u := arch.NewCheckLookupUnit(cfg)
	u.Shared = shared
	ctx.HW = u
	return u
}

// Resolve wraps resolve with the read-barrier latency histogram when
// observability is enabled. The clock delta is read, never charged, so the
// instrumented and bare paths charge identical cycles.
func (b *readBarrier) Resolve(ctx *sim.Ctx, ref pmop.Ptr) pmop.Ptr {
	if h := b.e.hBarrier; h != nil {
		t0 := ctx.Clock.Total()
		out := b.resolve(ctx, ref)
		h.Observe(ctx.Clock.Total() - t0)
		return out
	}
	return b.resolve(ctx, ref)
}

func (b *readBarrier) resolve(ctx *sim.Ctx, ref pmop.Ptr) pmop.Ptr {
	e, ep := b.e, b.ep
	p := e.pool
	if ref.PoolID() != p.ID() {
		return ref
	}
	off := ref.Offset()
	heap := p.Heap()
	if off < heap.HeapOff() {
		return ref
	}

	clCtx := ctx.Derived(sim.CatCheckLookup)
	var dstOff uint64
	if ep.scheme == SchemeFFCCDCheckLookup {
		// Hardware checklookup: BFC + PMFTLB (§4.3.2).
		dstVA, ok := cluFor(clCtx, e.cfg, e.cluStats).CheckLookup(clCtx, p.VA(off), ep.blooms, ep.fwd)
		if !ok {
			return ref
		}
		dstOff = p.OffsetOfVA(dstVA)
	} else {
		// Software path (Espresso / SFCCD / fence-free-only FFCCD):
		// is_frag_page() probes the in-memory per-page metadata table with
		// data-dependent addressing and poor locality — a DRAM-latency-class
		// access (§3.3.3 (i): "an explicit check on whether a pointer is to
		// an object on a relocation page"; §4.3.2 calls check+lookup the
		// second-largest bottleneck). find_newaddr() then walks the
		// forwarding table in PM (§3.3.3 (ii)).
		clCtx.Charge(e.cfg.DRAMLatency)
		if !ep.relocSet[heap.FrameOf(off)] {
			return ref
		}
		clCtx.Charge(e.cfg.PMReadLatency)
		var ok bool
		dstOff, ok = ep.lookupSrc(p, off)
		if !ok {
			return ref
		}
	}

	idx, ok := ep.bySrc[off]
	if !ok {
		// Interior or stale address that maps through the minor table but is
		// not an object start — forward without relocation responsibility.
		return ref.WithOffset(dstOff)
	}
	if !ep.isMoved(idx) {
		e.relocateObject(ctx.Derived(sim.CatCopy), ep, idx, true)
	}
	return ref.WithOffset(dstOff)
}
