package core

// Invariant tests for DESIGN.md §6: marking idempotence, deterministic
// relocation, barrier resolution uniqueness, and systematic crash-policy
// sweeps across the persistence-outcome space.

import (
	"fmt"
	"testing"

	"ffccd/internal/checker"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

func TestMarkingIdempotent(t *testing.T) {
	fx := buildFragmented(t, 150)
	e := NewEngine(fx.p, DefaultOptions())
	defer e.Close()
	a := e.mark(fx.ctx, nil)
	b := e.mark(fx.ctx, nil)
	if len(a) != len(b) {
		t.Fatalf("marking not idempotent: %d vs %d objects", len(a), len(b))
	}
	seen := make(map[uint64]uint64, len(a))
	for _, m := range a {
		seen[m.payloadOff] = m.payload
	}
	for _, m := range b {
		if p, ok := seen[m.payloadOff]; !ok || p != m.payload {
			t.Fatalf("marking diverged at %#x", m.payloadOff)
		}
	}
}

func TestMarkingNeverVisitsFreedObjects(t *testing.T) {
	fx := buildFragmented(t, 60)
	// Free every node's predecessor relationship is intact; free the garbage
	// was already done by the fixture. Free one linked node by unlinking it
	// first.
	p := fx.p
	head := p.Root(fx.ctx)
	second := p.ReadPtr(fx.ctx, head, 8)
	third := p.ReadPtr(fx.ctx, second, 8)
	p.WritePtr(fx.ctx, head, 8, third)
	p.Free(fx.ctx, second)

	e := NewEngine(p, DefaultOptions())
	defer e.Close()
	live := e.mark(fx.ctx, nil)
	for _, m := range live {
		if m.payloadOff == second.Offset() {
			t.Fatal("marking visited a freed, unlinked object")
		}
	}
}

func TestBarrierResolutionStable(t *testing.T) {
	// Invariant: after the barrier resolves a reference, resolving the
	// result again is the identity (exactly one live copy).
	fx := buildFragmented(t, 120)
	opt := DefaultOptions()
	opt.Scheme = SchemeFFCCDCheckLookup
	e := NewEngine(fx.p, opt)
	defer e.Close()
	ep := e.prepare(fx.ctx)
	if ep == nil {
		t.Fatal("no epoch")
	}
	defer e.FinishCycle(fx.ctx)

	cur := fx.p.Root(fx.ctx)
	for i := 0; i < 50 && !cur.IsNull(); i++ {
		once := fx.p.Resolve(fx.ctx, cur)
		twice := fx.p.Resolve(fx.ctx, once)
		if once != twice {
			t.Fatalf("resolution not stable: %v → %v → %v", cur, once, twice)
		}
		cur = fx.p.ReadPtr(fx.ctx, cur, 8)
	}
}

func TestCrashPolicySweep(t *testing.T) {
	// Systematic sweep over per-line persistence outcomes for clwb'd-but-
	// unfenced lines: parity classes and modular patterns rather than one
	// random draw. Every outcome must recover to a consistent heap.
	for _, s := range []Scheme{SchemeSFCCD, SchemeFFCCD} {
		for variant := 0; variant < 6; variant++ {
			t.Run(fmt.Sprintf("%s/policy%d", s, variant), func(t *testing.T) {
				fx := buildFragmented(t, 90)
				v := variant
				fx.rt.Device().SetCrashPolicy(func(line uint64) bool {
					idx := line >> pmem.LineShift
					switch v {
					case 0:
						return false
					case 1:
						return true
					case 2:
						return idx%2 == 0
					case 3:
						return idx%2 == 1
					case 4:
						return idx%3 == 0
					default:
						return idx%5 != 0
					}
				})
				opt := DefaultOptions()
				opt.Scheme = s
				e := NewEngine(fx.p, opt)
				ep := e.prepare(fx.ctx)
				if ep == nil {
					t.Fatal("no epoch")
				}
				e.StepCompaction(fx.ctx, len(ep.objects)*(variant+1)/7)
				// Touch part of the list so barriers and heals interleave.
				cur := fx.p.Root(fx.ctx)
				for i := 0; i < 25 && !cur.IsNull(); i++ {
					cur = fx.p.ReadPtr(fx.ctx, cur, 8)
				}
				p2, e2 := crashAndRecover(t, fx, e, opt)
				defer e2.Close()
				checkList(t, p2, fx.ctx, fx.n)
				if _, err := checker.CheckGraph(fx.ctx, p2); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestDoubleCrashDuringRecoveryWindow(t *testing.T) {
	// Crash, recover, run one more epoch, crash again mid-epoch, recover.
	// Exercises reached-bitmap reuse and epoch-number staleness across
	// generations.
	fx := buildFragmented(t, 130)
	opt := DefaultOptions()
	opt.Scheme = SchemeFFCCD
	e := NewEngine(fx.p, opt)
	ep := e.prepare(fx.ctx)
	if ep == nil {
		t.Fatal("no epoch")
	}
	e.StepCompaction(fx.ctx, len(ep.objects)/3)
	p2, e2 := crashAndRecover(t, fx, e, opt)
	checkList(t, p2, fx.ctx, fx.n)

	// Fragment again and start a second-generation epoch on the recovered
	// pool, then crash that one too.
	garb, _ := p2.Types().LookupName("tgarbage")
	var junk []pmop.Ptr
	for i := 0; i < 300; i++ {
		o, err := p2.Alloc(fx.ctx, garb.ID, 112)
		if err != nil {
			t.Fatal(err)
		}
		junk = append(junk, o)
	}
	for i, o := range junk {
		if i%4 != 0 {
			p2.Free(fx.ctx, o)
		}
	}
	p2.Device().FlushAll(fx.ctx)
	if !e2.BeginCycle(fx.ctx) {
		t.Skip("second-generation heap too dense")
	}
	e2.StepCompaction(fx.ctx, 50)
	fx2 := &fixture{cfg: fx.cfg, rt: nil, p: p2, ctx: fx.ctx, n: fx.n}
	_ = fx2
	p2.Device().Crash()
	if e2.RBB() != nil {
		e2.RBB().PowerLossFlush()
	}
	rt3, err := pmop.Attach(fx.cfg, p2.Device())
	if err != nil {
		t.Fatal(err)
	}
	p3, err := rt3.Open("frag", testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	e3, err := Recover(fx.ctx, p3, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	checkList(t, p3, fx.ctx, fx.n)
	if _, err := checker.CheckGraph(fx.ctx, p3); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverWithDifferentSchemeThanCrash(t *testing.T) {
	// A pool that crashed mid-FFCCD-epoch may be reopened by a binary
	// configured for another scheme; recovery must honour the *persisted*
	// scheme.
	fx := buildFragmented(t, 100)
	ffccd := DefaultOptions()
	ffccd.Scheme = SchemeFFCCD
	e := NewEngine(fx.p, ffccd)
	ep := e.prepare(fx.ctx)
	if ep == nil {
		t.Fatal("no epoch")
	}
	e.StepCompaction(fx.ctx, len(ep.objects)/2)

	espresso := DefaultOptions()
	espresso.Scheme = SchemeEspresso
	p2, e2 := crashAndRecover(t, fx, e, espresso)
	defer e2.Close()
	checkList(t, p2, fx.ctx, fx.n)
}

func TestSFCCDFreedDestinationReuse(t *testing.T) {
	// Regression (found by fault injection): an object moves under SFCCD,
	// the application frees it, new allocations reuse the freed destination
	// slots, then a crash. Recovery's content-compare must not "repair" the
	// reused destination from the stale source — the free tombstones the
	// source header just like a transactional modification would.
	fx := buildFragmented(t, 100)
	opt := DefaultOptions()
	opt.Scheme = SchemeSFCCD
	e := NewEngine(fx.p, opt)
	ep := e.prepare(fx.ctx)
	if ep == nil {
		t.Fatal("no epoch")
	}
	// Move everything, then free two list nodes' values through the API and
	// fill the holes with fresh allocations.
	e.StepCompaction(fx.ctx, 1<<30)
	p := fx.p
	head := p.Root(fx.ctx)
	second := p.ReadPtr(fx.ctx, head, 8)
	third := p.ReadPtr(fx.ctx, second, 8)
	tx := p.Begin(fx.ctx)
	tx.AddPtr(fx.ctx, head, 8)
	p.WritePtr(fx.ctx, head, 8, third)
	tx.Commit(fx.ctx)
	p.Free(fx.ctx, second)

	garb, _ := p.Types().LookupName("tgarbage")
	var filled []pmop.Ptr
	for i := 0; i < 8; i++ {
		o, err := p.Alloc(fx.ctx, garb.ID, 16)
		if err != nil {
			t.Fatal(err)
		}
		p.WriteBytes(fx.ctx, o, 0, []byte("fresh-object-byte"[:16]))
		p.PersistRange(fx.ctx, o.Offset(), 16)
		filled = append(filled, o)
	}
	_ = filled
	p2, e2 := crashAndRecover(t, fx, e, opt)
	defer e2.Close()
	// The list itself (nodes 0, and 2..n-1 — node 1 was unlinked) must be
	// intact apart from the deleted node.
	cur := p2.Root(fx.ctx)
	if v := p2.ReadU64(fx.ctx, cur, 0); v != 0 {
		t.Fatalf("head = %d", v)
	}
	cur = p2.ReadPtr(fx.ctx, cur, 8)
	if v := p2.ReadU64(fx.ctx, cur, 0); v != 2 {
		t.Fatalf("second node after unlink = %d, want 2", v)
	}
}

func TestDefragOnHugePagePool(t *testing.T) {
	// A 2 MB-page pool (§6: the paper evaluates with 2 MB huge pages):
	// footprint is huge-page granular, so compaction must vacate entire
	// 2 MB regions to help. The engine still operates on 4 KB frames.
	cfg := sim.DefaultConfig()
	rt := pmop.NewRuntime(&cfg, 128<<20)
	reg := testRegistry()
	p, err := rt.Create("huge", 64<<20, 21, reg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewCtx(&cfg)
	node, _ := reg.LookupName("tnode")
	garb, _ := reg.LookupName("tgarbage")
	var head, prev pmop.Ptr
	var junk []pmop.Ptr
	for i := 0; i < 800; i++ {
		nd, _ := p.Alloc(ctx, node.ID, 0)
		p.WriteU64(ctx, nd, 0, uint64(i))
		if prev.IsNull() {
			head = nd
		} else {
			p.WritePtr(ctx, prev, 8, nd)
		}
		prev = nd
		for g := 0; g < 40; g++ {
			o, err := p.Alloc(ctx, garb.ID, 240)
			if err != nil {
				t.Fatal(err)
			}
			junk = append(junk, o)
		}
	}
	p.SetRoot(ctx, head)
	for _, o := range junk {
		p.Free(ctx, o)
	}
	before := p.Heap().Frag(21)
	if before.FootprintBytes < 4<<20 {
		t.Fatalf("fixture too small to span huge pages: %d", before.FootprintBytes)
	}
	e := NewEngine(p, DefaultOptions())
	defer e.Close()
	if !e.RunCycle(ctx) {
		t.Fatal("no cycle")
	}
	after := p.Heap().Frag(21)
	if after.FootprintBytes >= before.FootprintBytes {
		t.Errorf("huge-page footprint %d → %d", before.FootprintBytes, after.FootprintBytes)
	}
	if after.FootprintBytes%(2<<20) != 0 {
		t.Errorf("footprint %d not 2MB-granular", after.FootprintBytes)
	}
	checkList(t, p, ctx, 800)
}

func TestTwoPoolsIndependentEngines(t *testing.T) {
	// Defragmentation is per-PMOP: two pools with independent engines must
	// not interfere (separate GC metadata, separate phases).
	cfg := sim.DefaultConfig()
	rt := pmop.NewRuntime(&cfg, 128<<20)
	reg := testRegistry()
	ctx := sim.NewCtx(&cfg)
	build := func(name string) (*pmop.Pool, *Engine) {
		p, err := rt.Create(name, 32<<20, 12, reg)
		if err != nil {
			t.Fatal(err)
		}
		node, _ := reg.LookupName("tnode")
		garb, _ := reg.LookupName("tgarbage")
		var head, prev pmop.Ptr
		var junk []pmop.Ptr
		for i := 0; i < 150; i++ {
			nd, _ := p.Alloc(ctx, node.ID, 0)
			p.WriteU64(ctx, nd, 0, uint64(i))
			if prev.IsNull() {
				head = nd
			} else {
				p.WritePtr(ctx, prev, 8, nd)
			}
			prev = nd
			for g := 0; g < 3; g++ {
				o, _ := p.Alloc(ctx, garb.ID, 112)
				junk = append(junk, o)
			}
		}
		p.SetRoot(ctx, head)
		for _, o := range junk {
			p.Free(ctx, o)
		}
		return p, NewEngine(p, DefaultOptions())
	}
	p1, e1 := build("poolA")
	p2, e2 := build("poolB")
	defer e1.Close()
	defer e2.Close()

	// Interleave: open an epoch on A, run a full cycle on B, finish A.
	if !e1.BeginCycle(ctx) {
		t.Fatal("no epoch on A")
	}
	if !e2.RunCycle(ctx) {
		t.Fatal("no cycle on B")
	}
	e1.StepCompaction(ctx, 1<<30)
	e1.FinishCycle(ctx)
	checkList(t, p1, ctx, 150)
	checkList(t, p2, ctx, 150)
}

func TestRecoveryDeterministic(t *testing.T) {
	// Recovering twice from the same post-crash image must produce
	// identical reachable heaps (deterministic relocation is what lets the
	// PMFT be resumed at all, §4.3.1).
	fx := buildFragmented(t, 110)
	opt := DefaultOptions()
	opt.Scheme = SchemeFFCCD
	e := NewEngine(fx.p, opt)
	ep := e.prepare(fx.ctx)
	if ep == nil {
		t.Fatal("no epoch")
	}
	e.StepCompaction(fx.ctx, len(ep.objects)/3)
	fx.rt.Device().Crash()
	if e.RBB() != nil {
		e.RBB().PowerLossFlush()
	}
	image := fx.rt.Device().SnapshotMedia()

	digest := func() map[uint64]uint64 {
		fx.rt.Device().RestoreMedia(image)
		rt, err := pmop.Attach(fx.cfg, fx.rt.Device())
		if err != nil {
			t.Fatal(err)
		}
		p, err := rt.Open("frag", testRegistry())
		if err != nil {
			t.Fatal(err)
		}
		eng, err := Recover(fx.ctx, p, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		out := map[uint64]uint64{}
		cur := p.Root(fx.ctx)
		i := 0
		for !cur.IsNull() {
			out[uint64(i)] = uint64(cur)<<32 ^ p.ReadU64(fx.ctx, cur, 0)
			cur = p.ReadPtr(fx.ctx, cur, 8)
			i++
		}
		return out
	}
	a := digest()
	b := digest()
	if len(a) != len(b) {
		t.Fatalf("recovered list lengths differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("recovery nondeterministic at node %d", k)
		}
	}
}
