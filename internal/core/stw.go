package core

import (
	"sync"

	"ffccd/internal/obsv"
	"ffccd/internal/sim"
)

// stwState tracks pause lengths for the stop-the-world comparator.
type stwState struct {
	mu     sync.Mutex
	pauses []uint64
}

// RunCycleSTW performs one complete stop-the-world defragmentation cycle —
// the jemalloc-style comparator of §7.4: marking, summary, every relocation,
// and the reference fixup all happen inside a single application pause, so
// no read barrier is ever installed. Object moves still follow the engine's
// scheme for persistence (use SchemeEspresso for the paper's comparison).
// Returns the pause length in simulated cycles and whether a cycle ran.
func (e *Engine) RunCycleSTW(ctx *sim.Ctx) (uint64, bool) {
	if e.opt.Scheme == SchemeNone {
		return 0, false
	}
	if !e.busy.CompareAndSwap(false, true) {
		return 0, false
	}
	defer e.busy.Store(false)

	p := e.pool
	p.StopWorld()
	defer p.ResumeWorld()
	start := ctx.Clock.Total()

	live := e.mark(ctx.Derived(sim.CatMark), nil)
	ep := e.summary(ctx.Derived(sim.CatSummary), live)
	if ep == nil {
		return ctx.Clock.Total() - start, false
	}
	ep.obsStart = start
	e.mu.Lock()
	e.epoch = ep
	e.mu.Unlock()

	for i := range ep.objects {
		if !ep.isMoved(i) {
			e.relocateObject(ctx.Derived(sim.CatCopy), ep, i, false)
		}
	}
	e.finishEpochLocked(ctx, ep)
	e.cycles.Add(1)

	pause := ctx.Clock.Total() - start
	e.stw.mu.Lock()
	e.stw.pauses = append(e.stw.pauses, pause)
	e.stw.mu.Unlock()
	if o := e.obs; o != nil {
		o.Tracer.Span(ctx, obsv.KindSTW, start, 0)
		e.hSTW.Observe(pause)
		o.Intervals.Add(obsv.IntervalSTW, start, ctx.Clock.Total(), ep.epochNo)
	}
	return pause, true
}

// STWPauses returns the recorded stop-the-world pause lengths (cycles).
func (e *Engine) STWPauses() []uint64 {
	e.stw.mu.Lock()
	defer e.stw.mu.Unlock()
	out := make([]uint64, len(e.stw.pauses))
	copy(out, e.stw.pauses)
	return out
}
