package core

import (
	"encoding/binary"
	"sort"

	"ffccd/internal/alloc"
	"ffccd/internal/arch"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// maxRelocOccupancy: frames more than ~90% full are never worth evacuating.
const maxRelocOccupancy = 230

// summary implements §5 summary(): resync the allocator to the marking
// results (reclaiming leaks), rank frames by fragmentation, select the top-k
// relocation frames needed to reach the target ratio, deterministically
// assign every live object a destination, build and persist the PMFT, build
// the relocation-page bloom filters, arm the reached bitmap, and durably
// enter the compacting phase. Runs stop-the-world; idempotent until the
// final phase-word store.
func (e *Engine) summary(ctx *sim.Ctx, live []markObj) *epochState {
	p := e.pool
	heap := p.Heap()

	// Leak reclamation: everything not reached by marking is returned to the
	// free lists (§5: "The unreachable objects are returned to the freelist").
	allocatedBefore := 0
	for _, fi := range heap.Snapshot() {
		allocatedBefore += fi.Objects
	}
	heap.RebuildFromMark(rebuildEntries(live))
	if leaked := allocatedBefore - len(live); leaked > 0 {
		e.leaksReclaimed.Add(uint64(leaked))
	}

	frag := heap.Frag(p.PageShift())
	if frag.LiveBytes == 0 || frag.FragRatio <= e.opt.TargetRatio {
		return nil
	}

	// Group live objects by their frame, sorted by offset within the frame.
	objsByFrame := make(map[int][]markObj)
	for _, m := range live {
		f := heap.FrameOf(m.payloadOff - pmop.HeaderSize)
		objsByFrame[f] = append(objsByFrame[f], m)
	}
	for f := range objsByFrame {
		objs := objsByFrame[f]
		sort.Slice(objs, func(a, b int) bool { return objs[a].payloadOff < objs[b].payloadOff })
	}

	// Destination packing is dense (16-byte slots, the paper's granularity).
	// Objects may share destination cachelines; every set of objects whose
	// destination lines overlap forms a *cluster* that the compactor
	// relocates as one operation whose destination lines are each written
	// atomically (pmem.RelocateParts). That preserves the invariant the
	// per-line reached bitmap needs during fence-free recovery — a reached
	// line carries consistent bytes for all its tenants (Observation 4) —
	// without any placement alignment tax.
	groupNeed := func(objs []markObj) int {
		total := 0
		for _, m := range objs {
			total += m.slots()
		}
		return total
	}

	// Candidate relocation frames: most fragmented (lowest occupancy) first.
	snap := heap.Snapshot()
	byFrame := make(map[int]alloc.FrameInfo, len(snap))
	for _, fi := range snap {
		byFrame[fi.Frame] = fi
	}
	isCandidate := func(fi alloc.FrameInfo) bool {
		return fi.State == alloc.FrameActive && fi.Objects > 0 && fi.UsedSlots <= maxRelocOccupancy
	}

	// Selection units: on 4 KB pages each frame is a unit; on huge pages a
	// unit is a whole OS-page group of frames, eligible only when *every*
	// used frame in the group can be evacuated — scattered single-frame
	// releases never vacate a huge page, so footprint would not move
	// (§1: "the large capacity provided by PM necessitates the use of huge
	// pages").
	fpp := 1
	if p.PageShift() > 12 {
		fpp = 1 << (p.PageShift() - 12)
	}
	var units [][]alloc.FrameInfo
	if fpp == 1 {
		for _, fi := range snap {
			if isCandidate(fi) {
				units = append(units, []alloc.FrameInfo{fi})
			}
		}
	} else {
		for g := 0; g < heap.Frames(); g += fpp {
			var unit []alloc.FrameInfo
			ok := true
			for f := g; f < g+fpp && f < heap.Frames(); f++ {
				fi, used := byFrame[f]
				if !used {
					continue
				}
				if !isCandidate(fi) {
					ok = false
					break
				}
				unit = append(unit, fi)
			}
			if ok && len(unit) > 0 {
				units = append(units, unit)
			}
		}
	}
	unitUsed := func(u []alloc.FrameInfo) int {
		t := 0
		for _, fi := range u {
			t += fi.UsedSlots
		}
		return t
	}
	sort.Slice(units, func(a, b int) bool {
		ua, ub := unitUsed(units[a]), unitUsed(units[b])
		if ua != ub {
			return ua < ub
		}
		return units[a][0].Frame < units[b][0].Frame
	})

	// Greedy selection until the projected ratio reaches the target. Each
	// relocation frame's live data lands in exactly one destination frame
	// (the PMFT major-distance invariant); destination frames are fresh
	// free frames packed in order. Frames whose live data exceeds one
	// destination frame cannot be evacuated under that invariant, which
	// disqualifies their whole unit.
	type pick struct {
		fi   alloc.FrameInfo
		need int
	}
	maxDest := heap.Frames()
	freeList := heap.FreeFrames(maxDest)
	// distinctPages[n] = distinct OS pages among the first n destination
	// frames (precomputed once; the selection loop queries it per unit).
	distinctPages := make([]uint64, len(freeList)+1)
	{
		seen := make(map[int]struct{}, len(freeList))
		for i, f := range freeList {
			seen[f/fpp] = struct{}{}
			distinctPages[i+1] = uint64(len(seen))
		}
	}
	destPages := func(n int) uint64 {
		// Footprint the first n destination frames add, in OS pages.
		return distinctPages[n] << p.PageShift()
	}
	var selected []pick
	destUsed, curFree := 0, 0
	var freedBytes uint64
	type gainPoint struct {
		selected int
		netGain  int64
	}
	var gains []gainPoint
	projected := func() float64 {
		fp := int64(frag.FootprintBytes) - int64(freedBytes) + int64(destPages(destUsed))
		return float64(fp) / float64(frag.LiveBytes)
	}
unitLoop:
	for _, unit := range units {
		if projected() <= e.opt.TargetRatio {
			break
		}
		var needs []int
		for _, fi := range unit {
			need := groupNeed(objsByFrame[fi.Frame])
			if need > alloc.SlotsPerFrame {
				continue unitLoop
			}
			needs = append(needs, need)
		}
		for i, fi := range unit {
			if curFree < needs[i] {
				if destUsed >= len(freeList) {
					break unitLoop
				}
				destUsed++
				curFree = alloc.SlotsPerFrame
			}
			curFree -= needs[i]
			selected = append(selected, pick{fi, needs[i]})
		}
		freedBytes += uint64(1) << p.PageShift()
		if fpp == 1 {
			// 4 KB accounting: one page per frame.
		}
		gains = append(gains, gainPoint{len(selected), int64(freedBytes) - int64(destPages(destUsed))})
	}
	// Trim to the prefix (of whole units) with the best net footprint gain:
	// evacuating units that are already as dense as packing allows would
	// move data without freeing anything.
	var best int64
	bestAt := 0
	for _, g := range gains {
		if g.netGain > best {
			best, bestAt = g.netGain, g.selected
		}
	}
	if best <= 0 {
		return nil
	}
	selected = selected[:bestAt]

	_, _, epochNo := unpackPhase(p.GCPhase(ctx))
	ep := &epochState{
		epochNo:   epochNo + 1,
		scheme:    e.opt.Scheme,
		minor:     make(map[int]*[alloc.SlotsPerFrame]byte),
		destFrame: make(map[int]int),
	}

	// Deterministic placement + persistent PMFT construction.
	_, movedOff, _ := metaLayout(p)
	di := -1
	curSlot := 0
	for _, sel := range selected {
		c := sel.fi
		if di < 0 || curSlot+sel.need > alloc.SlotsPerFrame {
			di++
			curSlot = 0
		}
		df := freeList[di]
		var mm [alloc.SlotsPerFrame]byte
		for i := range mm {
			mm[i] = minorInvalid
		}
		for _, m := range objsByFrame[c.Frame] {
			n := m.slots()
			start := curSlot
			curSlot += n
			if err := heap.PlaceAt(df, start, n); err != nil {
				// Cannot happen with fresh destination frames; fail loudly.
				panic("core: destination placement failed: " + err.Error())
			}
			_, srcSlot := heap.Locate(m.payloadOff - pmop.HeaderSize)
			for i := 0; i < n; i++ {
				mm[srcSlot+i] = byte(start + i)
			}
			ep.objects = append(ep.objects, relocObj{
				srcHdr:  m.payloadOff - pmop.HeaderSize,
				dstHdr:  heap.OffsetOf(df, start),
				slots:   n,
				payload: m.payload,
			})
		}
		mcopy := mm
		ep.minor[c.Frame] = &mcopy
		ep.destFrame[c.Frame] = df
		ep.relocFrames = append(ep.relocFrames, c.Frame)
		heap.SetState(c.Frame, alloc.FrameRelocation)

		// Persist the PMFT entry (§4.3.1) and clear the frame's moved bitmap.
		buf := make([]byte, pmftEntrySize)
		binary.LittleEndian.PutUint32(buf[0:4], uint32(ep.epochNo))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(df))
		copy(buf[8:], mm[:])
		entryOff := pmftEntryOff(p, c.Frame)
		p.RawStore(ctx, entryOff, buf)
		p.PersistRange(ctx, entryOff, pmftEntrySize)
		zeros := make([]byte, movedBytesPerFrame)
		mOff := movedOff + uint64(c.Frame)*movedBytesPerFrame
		p.RawStore(ctx, mOff, zeros)
		p.PersistRange(ctx, mOff, movedBytesPerFrame)
	}
	ep.destFrames = append(ep.destFrames, freeList[:di+1]...)
	ep.buildIndexes(p)

	// The epoch holds two copies of every relocation object until the
	// source frames are released; keep the live-data metric single-copy.
	for i := range ep.objects {
		ep.dupBytes += ep.objects[i].bytes()
	}
	heap.AddDup(ep.dupBytes)

	// Relocation-page bloom filters (§4.3.2) — tight ranges over the
	// relocation pages so non-relocation addresses fail the range compare.
	var relocVAs []uint64
	for _, f := range ep.relocFrames {
		relocVAs = append(relocVAs, p.VA(heap.OffsetOf(f, 0)))
	}
	ep.blooms = arch.NewBloomSetFromPages(relocVAs, e.cfg.BloomFilters, e.cfg.BloomFilterBytes)
	ep.fwd = &pmftForwarder{p: p, ep: ep}
	heapOff, frames := p.HeapRange()

	// Arm the reached bitmap for the fence-free schemes (§4.2).
	if e.rbb != nil {
		reachedOff, _, _ := metaLayout(p)
		e.rbb.Configure(p.PA(reachedOff), p.PA(heapOff), frames)
	}

	// Durably enter the compacting phase. Everything above is idempotent;
	// a crash before this store leaves the pool in the idle state.
	p.Device().Site(ctx, pmem.SiteEpochTransition)
	p.SetGCPhase(ctx, packPhase(phaseCompacting, e.opt.Scheme, ep.epochNo))
	p.Device().Site(ctx, pmem.SiteEpochTransition)
	return ep
}
