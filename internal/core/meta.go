package core

import (
	"ffccd/internal/alloc"
	"ffccd/internal/pmop"
)

// Persistent GC metadata layout inside the pool's reserved GC region:
//
//	reached bitmap : 8 bytes per heap frame (one bit per destination
//	                 cacheline, maintained by the RBB — §4.2)
//	moved bitmap   : 32 bytes per heap frame (one bit per slot; set at the
//	                 object's start slot when its move completes)
//	PMFT           : 264 bytes per heap frame (§4.3.1):
//	                   u32 epoch   — entry valid iff equal to the current
//	                                 defragmentation epoch
//	                   u32 destFrame — the major distance (one destination
//	                                 page per relocation page)
//	                   256 × u8 minor-distance map — destination slot for
//	                                 each 16-byte slot; 0xFF = not mapped
//
// All entries are persisted by the summary phase before compaction begins,
// giving the deterministic relocation the paper requires ("whatever an
// object relocation is performed by any component ... relocating an object
// will always have the same outcome").
const (
	movedBytesPerFrame = alloc.SlotsPerFrame / 8 // 32
	pmftEntrySize      = 8 + alloc.SlotsPerFrame // 264
	minorInvalid       = 0xFF
)

// metaLayout returns the pool offsets of the three metadata arrays.
func metaLayout(p *pmop.Pool) (reachedOff, movedOff, pmftOff uint64) {
	base, _ := p.GCMetaRange()
	_, frames := p.HeapRange()
	reachedOff = base
	movedOff = reachedOff + frames*8
	pmftOff = movedOff + frames*movedBytesPerFrame
	return
}

// pmftEntryOff returns the pool offset of frame f's PMFT entry.
func pmftEntryOff(p *pmop.Pool, f int) uint64 {
	_, _, pmftOff := metaLayout(p)
	return pmftOff + uint64(f)*pmftEntrySize
}

// movedBitOff returns the byte offset and bit mask of the persistent moved
// bit for the object starting at slot of frame f.
func movedBitOff(p *pmop.Pool, f, slot int) (off uint64, mask byte) {
	_, movedOff, _ := metaLayout(p)
	return movedOff + uint64(f)*movedBytesPerFrame + uint64(slot/8), 1 << (slot % 8)
}

// Phase word packing (pool header's gcPhase field):
// bits [0,8) state, [8,16) scheme, [16,48) epoch counter.
const (
	phaseIdle       = 0
	phaseCompacting = 1
)

func packPhase(state uint64, scheme Scheme, epoch uint64) uint64 {
	return state | uint64(scheme)<<8 | epoch<<16
}

func unpackPhase(w uint64) (state uint64, scheme Scheme, epoch uint64) {
	return w & 0xFF, Scheme(w >> 8 & 0xFF), w >> 16
}

// MetaView exposes the persistent GC metadata layout to external validators
// (internal/checker) without duplicating the offset arithmetic here.
type MetaView struct {
	// ReachedOff, MovedOff, PMFTOff are pool offsets of the three arrays.
	ReachedOff, MovedOff, PMFTOff uint64
	// MovedBytesPerFrame and PMFTEntrySize are the per-frame strides.
	MovedBytesPerFrame, PMFTEntrySize uint64
	// MinorInvalid is the minor-distance byte meaning "slot not mapped".
	MinorInvalid byte
}

// Meta returns the metadata layout view for p.
func Meta(p *pmop.Pool) MetaView {
	r, m, pf := metaLayout(p)
	return MetaView{
		ReachedOff: r, MovedOff: m, PMFTOff: pf,
		MovedBytesPerFrame: movedBytesPerFrame,
		PMFTEntrySize:      pmftEntrySize,
		MinorInvalid:       minorInvalid,
	}
}

// UnpackPhaseWord decodes a pool gcPhase word into (compacting?, scheme,
// epoch) for external validators.
func UnpackPhaseWord(w uint64) (compacting bool, scheme Scheme, epoch uint64) {
	st, sc, ep := unpackPhase(w)
	return st == phaseCompacting, sc, ep
}

// sfccdTombstone is the sentinel written into a moved object's *source*
// header (reserved word at +8) when the application first modifies the
// destination copy under SFCCD. It lets Fig. 7(b)'s content comparison
// distinguish "memcpy never persisted" from "application legitimately
// modified the moved object" — see DESIGN.md §SFCCD clarification.
const sfccdTombstone = 0x544F4D4253544F4E // "TOMBSTON"
