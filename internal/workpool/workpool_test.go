package workpool

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// withParallelism runs body under a temporary pool size, restoring the
// previous size afterwards (the pool is process-global).
func withParallelism(t *testing.T, n int, body func()) {
	t.Helper()
	old := Parallelism()
	SetParallelism(n)
	defer SetParallelism(old)
	body()
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		withParallelism(t, p, func() {
			const n = 100
			var hits [n]atomic.Int32
			if err := ForEach(n, func(i int) error {
				hits[i].Add(1)
				return nil
			}); err != nil {
				t.Fatalf("p=%d: unexpected error: %v", p, err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("p=%d: index %d ran %d times", p, i, got)
				}
			}
		})
	}
}

func TestForEachFirstErrorInIndexOrder(t *testing.T) {
	withParallelism(t, 4, func() {
		want := errors.New("boom-3")
		err := ForEach(10, func(i int) error {
			if i == 7 {
				return errors.New("boom-7")
			}
			if i == 3 {
				return want
			}
			return nil
		})
		if err != want {
			t.Fatalf("got %v, want the index-3 error", err)
		}
	})
}

func TestForEachZeroAndNegative(t *testing.T) {
	if err := ForEach(0, func(int) error { return fmt.Errorf("ran") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if err := ForEach(-5, func(int) error { return fmt.Errorf("ran") }); err != nil {
		t.Fatalf("n<0: %v", err)
	}
}

// TestNestedForEachRespectsBudget is the pool's reason to exist: an outer
// fan-out whose workers each start an inner fan-out must never run more
// than Parallelism() units at once, and must not deadlock.
func TestNestedForEachRespectsBudget(t *testing.T) {
	const p = 3
	withParallelism(t, p, func() {
		var cur, peak atomic.Int32
		unit := func() {
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
		}
		err := ForEach(4, func(int) error {
			return ForEach(4, func(int) error {
				unit()
				return nil
			})
		})
		if err != nil {
			t.Fatalf("nested ForEach: %v", err)
		}
		if got := peak.Load(); got > p {
			t.Fatalf("peak concurrency %d exceeds pool size %d", got, p)
		}
	})
}

// TestParallelFromEnv pins FFCCD_PARALLEL parsing: valid values override the
// default, invalid ones (non-numeric, zero, negative, trailing junk) warn
// once on the writer and fall back — never silently.
func TestParallelFromEnv(t *testing.T) {
	cases := []struct {
		in       string
		want     int
		wantWarn bool
	}{
		{"", 8, false},
		{"4", 4, false},
		{"1", 1, false},
		{"0", 8, true},
		{"-3", 8, true},
		{"abc", 8, true},
		{"4x", 8, true},
		{"3.5", 8, true},
		{" 2", 8, true},
	}
	for _, c := range cases {
		var warn strings.Builder
		got := parallelFromEnv(c.in, 8, &warn)
		if got != c.want {
			t.Errorf("parallelFromEnv(%q) = %d, want %d", c.in, got, c.want)
		}
		if c.wantWarn != (warn.Len() > 0) {
			t.Errorf("parallelFromEnv(%q): warning emitted = %v, want %v (output %q)",
				c.in, warn.Len() > 0, c.wantWarn, warn.String())
		}
		if c.wantWarn && !strings.Contains(warn.String(), "FFCCD_PARALLEL") {
			t.Errorf("parallelFromEnv(%q) warning %q does not name the variable", c.in, warn.String())
		}
	}
}

// TestStealingAcrossFanOuts is the work-stealing pool's reason to exist: a
// helper freed when one fan-out drains must migrate to a sibling fan-out
// that still has work, instead of idling behind the old FIFO token handoff.
// With pool size 2 (one helper slot): fan-out A takes the helper and parks;
// fan-out B starts helper-less and grinds serially; releasing A must let its
// helper steal into B, making B's iterations overlap. (If A happens to lose
// the token race the overlap arrives even earlier — the test never
// false-fails on scheduling, it only false-passes the stealing aspect.)
func TestStealingAcrossFanOuts(t *testing.T) {
	withParallelism(t, 2, func() {
		aRelease := make(chan struct{})
		var overlapped atomic.Bool
		var inB atomic.Int32
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // A: two parked iterations (caller + the pool's one helper)
			defer wg.Done()
			_ = ForEach(2, func(int) error { <-aRelease; return nil })
		}()
		time.Sleep(10 * time.Millisecond) // let A claim the helper slot
		bFirst := make(chan struct{})
		var once sync.Once
		go func() { // B: long serial grind until a stolen helper joins
			defer wg.Done()
			_ = ForEach(16, func(int) error {
				once.Do(func() { close(bFirst) })
				if inB.Add(1) > 1 {
					overlapped.Store(true)
				}
				time.Sleep(2 * time.Millisecond)
				inB.Add(-1)
				return nil
			})
		}()
		<-bFirst
		close(aRelease) // A drains; its helper must rescan and steal into B
		wg.Wait()
		if !overlapped.Load() {
			t.Fatal("helper freed by a drained fan-out never stole into the running sibling")
		}
	})
}

// TestFanOutReturnsWhileSiblingStillRunning pins the deadlock-freedom
// invariant the fork driver relies on (PR-5): a fan-out waits only for its
// OWN iterations, so a fast fan-out completes while a concurrently started
// slow one is still mid-flight — even when the slow one holds every helper.
func TestFanOutReturnsWhileSiblingStillRunning(t *testing.T) {
	withParallelism(t, 4, func() {
		slowRunning := make(chan struct{})
		release := make(chan struct{})
		var slowDone atomic.Bool
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var once sync.Once
			_ = ForEach(4, func(int) error {
				once.Do(func() { close(slowRunning) })
				<-release
				return nil
			})
			slowDone.Store(true)
		}()
		<-slowRunning
		// The sibling fan-out must complete even though the slow group
		// occupies the pool: the caller is its own worker.
		done := make(chan struct{})
		go func() {
			_ = ForEach(16, func(int) error { return nil })
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("fast fan-out blocked on a sibling fan-out's completion")
		}
		if slowDone.Load() {
			t.Fatal("slow fan-out finished early; assertion vacuous")
		}
		close(release)
		wg.Wait()
	})
}

// TestNestedStressRandomized3Deep is the randomized deadlock-freedom stress
// for the work-stealing deques: 3-deep nested ForEach trees with random
// fan-out widths and sleep times, run at several pool sizes under -race (it
// is part of the short suite `make race` runs). Budget and completion are
// asserted; a deadlock shows up as the 60s watchdog firing.
func TestNestedStressRandomized3Deep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []int{1, 2, 3, 5} {
		withParallelism(t, p, func() {
			var cur, peak atomic.Int32
			var leaves atomic.Int64
			var wantLeaves atomic.Int64
			watchdog := time.AfterFunc(60*time.Second, func() {
				panic(fmt.Sprintf("nested stress deadlocked at pool size %d", p))
			})
			defer watchdog.Stop()

			width := func() int { return 1 + rng.Intn(4) }
			outer, mid, inner := width()+1, width(), width()
			wantLeaves.Store(int64(outer * mid * inner))
			err := ForEach(outer, func(o int) error {
				return ForEach(mid, func(m int) error {
					return ForEach(inner, func(i int) error {
						c := cur.Add(1)
						for {
							old := peak.Load()
							if c <= old || peak.CompareAndSwap(old, c) {
								break
							}
						}
						// Deterministic per-leaf jitter (rng is not
						// goroutine-safe; leaves run concurrently).
						jitter := time.Duration((o*31+m*17+i*7)%750) * time.Microsecond
						time.Sleep(250*time.Microsecond + jitter)
						leaves.Add(1)
						cur.Add(-1)
						return nil
					})
				})
			})
			if err != nil {
				t.Fatalf("p=%d: %v", p, err)
			}
			if got := leaves.Load(); got != wantLeaves.Load() {
				t.Fatalf("p=%d: ran %d leaves, want %d", p, got, wantLeaves.Load())
			}
			if got := peak.Load(); got > int32(p) {
				t.Fatalf("p=%d: peak concurrency %d exceeds pool size", p, got)
			}
		})
	}
}

func TestSerialPoolRunsInline(t *testing.T) {
	withParallelism(t, 1, func() {
		var mu sync.Mutex
		order := make([]int, 0, 5)
		if err := ForEach(5, func(i int) error {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("serial pool ran out of order: %v", order)
			}
		}
	})
}
