package workpool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// withParallelism runs body under a temporary pool size, restoring the
// previous size afterwards (the pool is process-global).
func withParallelism(t *testing.T, n int, body func()) {
	t.Helper()
	old := Parallelism()
	SetParallelism(n)
	defer SetParallelism(old)
	body()
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		withParallelism(t, p, func() {
			const n = 100
			var hits [n]atomic.Int32
			if err := ForEach(n, func(i int) error {
				hits[i].Add(1)
				return nil
			}); err != nil {
				t.Fatalf("p=%d: unexpected error: %v", p, err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("p=%d: index %d ran %d times", p, i, got)
				}
			}
		})
	}
}

func TestForEachFirstErrorInIndexOrder(t *testing.T) {
	withParallelism(t, 4, func() {
		want := errors.New("boom-3")
		err := ForEach(10, func(i int) error {
			if i == 7 {
				return errors.New("boom-7")
			}
			if i == 3 {
				return want
			}
			return nil
		})
		if err != want {
			t.Fatalf("got %v, want the index-3 error", err)
		}
	})
}

func TestForEachZeroAndNegative(t *testing.T) {
	if err := ForEach(0, func(int) error { return fmt.Errorf("ran") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if err := ForEach(-5, func(int) error { return fmt.Errorf("ran") }); err != nil {
		t.Fatalf("n<0: %v", err)
	}
}

// TestNestedForEachRespectsBudget is the pool's reason to exist: an outer
// fan-out whose workers each start an inner fan-out must never run more
// than Parallelism() units at once, and must not deadlock.
func TestNestedForEachRespectsBudget(t *testing.T) {
	const p = 3
	withParallelism(t, p, func() {
		var cur, peak atomic.Int32
		unit := func() {
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
		}
		err := ForEach(4, func(int) error {
			return ForEach(4, func(int) error {
				unit()
				return nil
			})
		})
		if err != nil {
			t.Fatalf("nested ForEach: %v", err)
		}
		if got := peak.Load(); got > p {
			t.Fatalf("peak concurrency %d exceeds pool size %d", got, p)
		}
	})
}

func TestSerialPoolRunsInline(t *testing.T) {
	withParallelism(t, 1, func() {
		var mu sync.Mutex
		order := make([]int, 0, 5)
		if err := ForEach(5, func(i int) error {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("serial pool ran out of order: %v", order)
			}
		}
	})
}
