// Package workpool is the one bounded worker pool every host-side fan-out in
// this repo shares. The experiment driver (RunSpecs, the fork driver's
// per-group fan-out), the fault-injection campaign (trial sweeps, repetition
// grids) and any future driver all draw helper goroutines from the same
// budget, so nested fan-outs — RunSpecsForked fanning a fork group out from
// inside its per-cell fan-out, a campaign running trials from inside a
// repetition sweep — share GOMAXPROCS slots instead of multiplying them.
//
// The pool is work-stealing: every ForEach registers its iteration range as
// a job on a process-wide list, and a helper whose own fan-out runs dry
// steals iterations from any other in-flight fan-out before giving its slot
// back. This is what saturates a many-core host when sibling fan-outs finish
// unevenly (one fork group down to its last slow scheme while another has a
// queue) — under the old FIFO token handoff, helpers were pinned to the
// fan-out that spawned them and cores idled.
//
// The nesting rule that makes the pool deadlock-free is unchanged: the
// calling goroutine ALWAYS participates in its own fan-out, and helpers are
// only taken when a pool slot is free (a non-blocking acquire). An inner
// ForEach that finds the pool exhausted simply runs serially on its caller —
// which already holds a slot — so no fan-out ever *needs* a helper to make
// progress, and a fan-out only ever waits for its own iterations (stolen or
// not), never for another fan-out's completion.
//
// Parallelism is purely a host concern: every unit of work in this repo
// builds its own hermetic simulated machine, so the pool size changes
// wall-clock time only, never a simulated result.
package workpool

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// job is one ForEach fan-out. Its work queue is the index range [0, n),
// claimed through the atomic next counter — claiming is what both the
// caller's own loop and stealing helpers do, so "the deque" is bounded by
// construction (indices past n claim nothing). Completion is tracked
// separately from claiming: the goroutine that finishes the last iteration
// closes fin, releasing the caller.
type job struct {
	n    int
	f    func(i int) error
	errs []error
	next atomic.Int64
	done atomic.Int64
	fin  chan struct{}
}

// claim takes the next unclaimed iteration, if any.
func (j *job) claim() (int, bool) {
	i := int(j.next.Add(1) - 1)
	return i, i < j.n
}

// run executes one claimed iteration and signals completion of the job when
// it was the last.
func (j *job) run(i int) {
	j.errs[i] = j.f(i)
	if j.done.Add(1) == int64(j.n) {
		close(j.fin)
	}
}

var (
	mu   sync.Mutex
	size atomic.Int64
	// tokens holds size-1 helper slots (the caller of a fan-out is the
	// implicit size-th worker). Holding a token is the right to run one
	// helper goroutine; a helper returns its token when no fan-out anywhere
	// has claimable work left.
	tokens chan struct{}
	// gen is bumped by SetParallelism; helpers retire at their next steal
	// attempt when their generation is stale, so a shrunk pool converges to
	// its new budget instead of old helpers stealing indefinitely.
	gen atomic.Uint64
	// jobs is the work-stealing substrate: every in-flight ForEach, in
	// registration order (helpers drain older fan-outs first).
	jobs []*job
)

func init() {
	SetParallelism(parallelFromEnv(os.Getenv("FFCCD_PARALLEL"), runtime.GOMAXPROCS(0), os.Stderr))
}

// parallelFromEnv resolves an FFCCD_PARALLEL override against a default.
// Invalid values (non-numeric, zero, negative) are reported once on warn and
// ignored — a silently-swallowed typo here used to mean a silently serial
// bench run.
func parallelFromEnv(s string, def int, warn io.Writer) int {
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		fmt.Fprintf(warn, "workpool: ignoring invalid FFCCD_PARALLEL=%q (want a positive integer), using %d\n", s, def)
		return def
	}
	return v
}

// SetParallelism sets the pool size (values < 1 mean serial). It takes
// effect for fan-outs that start afterwards; helpers already running finish
// against the budget they were spawned under.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	size.Store(int64(n))
	gen.Add(1)
	tokens = make(chan struct{}, n-1)
	for i := 0; i < n-1; i++ {
		tokens <- struct{}{}
	}
}

// Parallelism returns the current pool size.
func Parallelism() int { return int(size.Load()) }

// deregister removes j from the stealing list.
func deregister(j *job) {
	mu.Lock()
	for i, other := range jobs {
		if other == j {
			jobs[i] = jobs[len(jobs)-1]
			jobs[len(jobs)-1] = nil
			jobs = jobs[:len(jobs)-1]
			break
		}
	}
	mu.Unlock()
}

// steal claims one iteration from any in-flight fan-out, oldest first.
func steal() (*job, int, bool) {
	mu.Lock()
	defer mu.Unlock()
	for _, j := range jobs {
		if i, ok := j.claim(); ok {
			return j, i, true
		}
	}
	return nil, 0, false
}

// helper runs claimed work until no fan-out anywhere has claimable
// iterations — or its pool generation is retired by SetParallelism — then
// hands its slot back on ch (the token channel it was spawned under; a later
// SetParallelism retires the old channel wholesale, so the return never
// blocks and never refills the new pool).
func helper(ch chan struct{}, g uint64) {
	for {
		if gen.Load() != g {
			ch <- struct{}{}
			return
		}
		j, i, ok := steal()
		if !ok {
			ch <- struct{}{}
			return
		}
		j.run(i)
	}
}

// ForEach runs f(0..n-1), writing results into index-addressed slots so the
// outcome is deterministic regardless of worker count, and returns the first
// error in index order. The caller works too; helper goroutines are added
// only while pool slots are free, so total workers across all concurrent
// (and nested) ForEach calls never exceed Parallelism(). Helpers outlive the
// fan-out that spawned them: when one fan-out drains they steal from any
// other, so a slot freed by an uneven group immediately serves whoever still
// has work.
func ForEach(n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	j := &job{n: n, f: f, errs: make([]error, n), fin: make(chan struct{})}
	// A serial pool (size 1) never has helpers, so the job is not published
	// for stealing — this also guarantees strictly in-order execution on the
	// caller, which a straggling helper from a just-resized pool could
	// otherwise perturb.
	mu.Lock()
	ch := tokens
	g := gen.Load()
	stealable := size.Load() > 1
	if stealable {
		jobs = append(jobs, j)
	}
	mu.Unlock()

spawn:
	for helpers := 0; helpers < n-1; helpers++ {
		select {
		case <-ch:
			go helper(ch, g)
		default:
			// Pool exhausted: no helper spawned here, but a helper freed
			// elsewhere can still steal into this job via the list.
			break spawn
		}
	}

	// The caller is its own fan-out's first worker.
	for {
		i, ok := j.claim()
		if !ok {
			break
		}
		j.run(i)
	}
	// Own claims exhausted; iterations stolen by helpers may still be in
	// flight. Wait for *this job's* completion only — never another
	// fan-out's.
	<-j.fin
	if stealable {
		deregister(j)
	}

	for _, err := range j.errs {
		if err != nil {
			return err
		}
	}
	return nil
}
