// Package workpool is the one bounded worker pool every host-side fan-out in
// this repo shares. The experiment driver (RunSpecs, the fork driver's
// per-group fan-out), the fault-injection campaign (trial sweeps, repetition
// grids) and any future driver all draw helper goroutines from the same
// budget, so nested fan-outs — RunSpecsForked fanning a fork group out from
// inside its per-cell fan-out, a campaign running trials from inside a
// repetition sweep — share GOMAXPROCS slots instead of multiplying them.
//
// The nesting rule that makes the pool deadlock-free: the calling goroutine
// ALWAYS participates in its own fan-out, and helpers are only taken when a
// pool slot is free (a non-blocking acquire). An inner ForEach that finds the
// pool exhausted simply runs serially on its caller — which already holds a
// slot — so no fan-out ever waits on another's completion to make progress.
//
// Parallelism is purely a host concern: every unit of work in this repo
// builds its own hermetic simulated machine, so the pool size changes
// wall-clock time only, never a simulated result.
package workpool

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

var (
	mu   sync.Mutex
	size atomic.Int64
	// tokens holds size-1 helper slots (the caller of a fan-out is the
	// implicit size-th worker). Holding a token is the right to run one
	// helper goroutine; helpers return their token when they run dry.
	tokens chan struct{}
)

func init() {
	n := runtime.GOMAXPROCS(0)
	if s := os.Getenv("FFCCD_PARALLEL"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	SetParallelism(n)
}

// SetParallelism sets the pool size (values < 1 mean serial). It takes
// effect for fan-outs that start afterwards; helpers already running finish
// against the budget they were spawned under.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	size.Store(int64(n))
	tokens = make(chan struct{}, n-1)
	for i := 0; i < n-1; i++ {
		tokens <- struct{}{}
	}
}

// Parallelism returns the current pool size.
func Parallelism() int { return int(size.Load()) }

// ForEach runs f(0..n-1), writing results into index-addressed slots so the
// outcome is deterministic regardless of worker count, and returns the first
// error in index order. The caller works too; helper goroutines are added
// only while pool slots are free, so total workers across all concurrent
// (and nested) ForEach calls never exceed Parallelism().
func ForEach(n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			errs[i] = f(i)
		}
	}
	mu.Lock()
	ch := tokens
	mu.Unlock()
	var wg sync.WaitGroup
spawn:
	for helpers := 0; helpers < n-1; helpers++ {
		select {
		case <-ch:
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
				ch <- struct{}{}
			}()
		default:
			// Pool exhausted: the remaining iterations run on this
			// goroutine, which already owns a slot.
			break spawn
		}
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
