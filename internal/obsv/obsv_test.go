package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ffccd/internal/sim"
)

func TestHistogramSnapshot(t *testing.T) {
	h := &Histogram{}
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot("lat")
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("count/min/max = %d/%d/%d", s.Count, s.Min, s.Max)
	}
	if got, want := s.Mean(), 50.5; got != want {
		t.Fatalf("mean = %v want %v", got, want)
	}
	// Log-linear buckets: the p50 estimate must bound the true median (50)
	// from above within 1/16 relative error, and p99 lands in 100's bucket,
	// clamped to the observed max.
	if s.P50 < 50 || s.P50 > 63 {
		t.Fatalf("p50 = %d, want within [50,63]", s.P50)
	}
	if s.P99 != 100 {
		t.Fatalf("p99 = %d, want clamped to max 100", s.P99)
	}
	if zero := (&Histogram{}).Snapshot("z"); zero.Count != 0 || zero.Mean() != 0 {
		t.Fatalf("empty snapshot = %+v", zero)
	}
}

// TestHistogramResolution pins the HDR-style log-linear bucket contract:
// every quantile estimate is an upper bound on the true value with relative
// error at most 2^-histSubBits, across the full uint64 range.
func TestHistogramResolution(t *testing.T) {
	// Bucket geometry: index and upper bound must be mutually consistent.
	probe := []uint64{0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1023, 1024,
		1<<20 + 12345, 1<<40 + 987654321, 1<<63 + 12345, ^uint64(0)}
	for _, v := range probe {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		u := bucketUpper(i)
		if v > u {
			t.Fatalf("value %d above its bucket upper %d (idx %d)", v, u, i)
		}
		if i+1 < histBuckets && bucketUpper(i+1) <= u {
			t.Fatalf("bucket uppers not increasing at idx %d", i)
		}
		// Relative width bound: upper/v - 1 <= 2^-histSubBits for v >= 16.
		if v >= histSubCount {
			if err := float64(u-v) / float64(v); err > 1.0/histSubCount {
				t.Fatalf("bucket relative error %v for value %d (upper %d)", err, v, u)
			}
		} else if u != v {
			t.Fatalf("small value %d not exact (upper %d)", v, u)
		}
	}

	// End-to-end: a geometric sweep of observations; each quantile estimate
	// must be >= the true order statistic and within 1/16 above it.
	h := &Histogram{}
	var vals []uint64
	v := uint64(1)
	for v < 1<<50 {
		vals = append(vals, v)
		h.Observe(v)
		v += v/7 + 1
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		idx := int(q * float64(len(vals)))
		if idx >= len(vals) {
			idx = len(vals) - 1
		}
		truth := vals[idx] // vals is sorted by construction
		got := h.Quantile(q)
		if got < truth {
			t.Fatalf("q=%v: estimate %d below true %d", q, got, truth)
		}
		if float64(got-truth)/float64(truth) > 1.0/histSubCount {
			t.Fatalf("q=%v: estimate %d exceeds true %d by more than 1/%d", q, got, truth, histSubCount)
		}
	}

	// Merge is exact: two halves merged equal one histogram of the union.
	a, b, all := &Histogram{}, &Histogram{}, &Histogram{}
	for i, x := range vals {
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
		all.Observe(x)
	}
	a.Merge(b)
	sa, sall := a.Snapshot("m"), all.Snapshot("m")
	if sa != sall {
		t.Fatalf("merged snapshot %+v != direct %+v", sa, sall)
	}
}

func TestRingOverwrites(t *testing.T) {
	cfg := sim.DefaultConfig()
	ctx := sim.NewCtx(&cfg)
	tr := NewTracer(4)
	for i := uint64(0); i < 10; i++ {
		tr.Instant(ctx, KindWPQDrain, i)
	}
	bufs := tr.Threads()
	if len(bufs) != 1 {
		t.Fatalf("threads = %d", len(bufs))
	}
	ev := bufs[0].Events()
	if len(ev) != 4 || bufs[0].Dropped != 6 {
		t.Fatalf("len=%d dropped=%d", len(ev), bufs[0].Dropped)
	}
	for i, e := range ev {
		if want := uint64(6 + i); e.Arg != want {
			t.Fatalf("ring order: ev[%d].Arg = %d want %d", i, e.Arg, want)
		}
	}
	if tr.EventCount() != 10 {
		t.Fatalf("event count = %d", tr.EventCount())
	}
}

func TestDerivedCtxSharesThreadBuffer(t *testing.T) {
	cfg := sim.DefaultConfig()
	ctx := sim.NewCtx(&cfg)
	other := sim.NewCtx(&cfg)
	tr := NewTracer(0)
	tr.Name(ctx, "app")
	tr.Instant(ctx, KindTrigger, 1)
	tr.Instant(ctx.Derived(sim.CatMark), KindMark, 2)
	tr.Instant(other, KindTrigger, 3)
	bufs := tr.Threads()
	if len(bufs) != 2 {
		t.Fatalf("threads = %d, want derived ctx to share its parent buffer", len(bufs))
	}
	if bufs[0].Name != "app" || len(bufs[0].Events()) != 2 {
		t.Fatalf("buf0 = %q/%d events", bufs[0].Name, len(bufs[0].Events()))
	}
}

func TestSpanUsesSimulatedCycles(t *testing.T) {
	cfg := sim.DefaultConfig()
	ctx := sim.NewCtx(&cfg)
	tr := NewTracer(0)
	start := Now(ctx)
	ctx.ChargeCat(sim.CatMark, 1234)
	tr.Span(ctx, KindMark, start, 7)
	e := tr.Threads()[0].Events()[0]
	if e.Start != start || e.End != start+1234 || e.Arg != 7 {
		t.Fatalf("span = %+v", e)
	}
}

func TestMarkCrashPlacesInstantAtLatestCycle(t *testing.T) {
	cfg := sim.DefaultConfig()
	ctx := sim.NewCtx(&cfg)
	tr := NewTracer(0)
	ctx.ChargeCat(sim.CatApp, 500)
	tr.Instant(ctx, KindTrigger, 0)
	tr.MarkCrash()
	if !tr.Crashed() {
		t.Fatal("Crashed() = false")
	}
	bufs := tr.Threads()
	last := bufs[len(bufs)-1]
	if last.Name != "machine" {
		t.Fatalf("crash buffer name = %q", last.Name)
	}
	if e := last.Events()[0]; e.Kind != KindCrash || e.Start != 500 {
		t.Fatalf("crash event = %+v", e)
	}
}

func TestRegistrySnapshotUnifiesGroups(t *testing.T) {
	r := NewRegistry()
	r.Hist("read_barrier_cycles").Observe(40)
	r.Counter("trigger_attempts").Add(3)
	r.RegisterGroup("device", func() map[string]uint64 {
		return map[string]uint64{"loads": 10, "clwbs": 2}
	})
	s := r.Snapshot()
	if len(s.Hists) != 1 || len(s.Groups) != 1 || len(s.Counters) != 1 {
		t.Fatalf("snapshot shape = %d/%d/%d", len(s.Hists), len(s.Groups), len(s.Counters))
	}
	if s.Groups[0].Keys[0] != "clwbs" || s.Groups[0].Vals[0] != 2 {
		t.Fatalf("group not sorted: %+v", s.Groups[0])
	}
	flat := s.Flat()
	if flat["device.loads"] != 10 || flat["counters.trigger_attempts"] != 3 ||
		flat["read_barrier_cycles.count"] != 1 {
		t.Fatalf("flat = %v", flat)
	}
	// Stable pointers: a second lookup must return the same histogram.
	if r.Hist("read_barrier_cycles").Snapshot("x").Count != 1 {
		t.Fatal("Hist() did not return the existing histogram")
	}
}

func TestChromeTraceExport(t *testing.T) {
	cfg := sim.DefaultConfig()
	col := NewCollector(0)
	o := col.NewObs("fig14/FFCCD")
	ctx := sim.NewCtx(&cfg)
	o.Tracer.Name(ctx, "gc")
	start := Now(ctx)
	ctx.ChargeCat(sim.CatMark, 2600) // 1µs at 2.6GHz
	o.Tracer.Span(ctx, KindMark, start, 11)
	o.Tracer.Instant(ctx, KindTrigger, 1)

	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	var sawProc, sawSpan, sawInstant, sawMarkLane, sawEpochLane bool
	for _, e := range evs {
		switch e["ph"] {
		case "M":
			if e["name"] == "process_name" {
				sawProc = e["args"].(map[string]any)["name"] == "fig14/FFCCD"
			}
			if e["name"] == "thread_name" {
				n := e["args"].(map[string]any)["name"].(string)
				sawMarkLane = sawMarkLane || n == "gc/mark"
				sawEpochLane = sawEpochLane || n == "gc/epoch"
			}
		case "X":
			if e["name"] == "mark" && e["dur"].(float64) == 1.0 {
				sawSpan = true
			}
		case "i":
			sawInstant = sawInstant || e["name"] == "trigger"
		}
	}
	if !sawProc || !sawSpan || !sawInstant || !sawMarkLane || !sawEpochLane {
		t.Fatalf("missing trace pieces: proc=%v span=%v instant=%v markLane=%v epochLane=%v",
			sawProc, sawSpan, sawInstant, sawMarkLane, sawEpochLane)
	}
}

func TestTimelineAndFlightRecorderDump(t *testing.T) {
	cfg := sim.DefaultConfig()
	o := New(2)
	ctx := sim.NewCtx(&cfg)
	o.Tracer.Name(ctx, "app")
	for i := uint64(0); i < 5; i++ {
		ctx.ChargeCat(sim.CatApp, 100)
		o.Tracer.Instant(ctx, KindWPQDrain, i)
	}
	o.Tracer.MarkCrash()
	var buf bytes.Buffer
	if err := WriteFlightRecorder(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"crashed=true", "overwritten by ring", "wpq-drain", "crash"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsSummaryMergesProcesses(t *testing.T) {
	col := NewCollector(0)
	a := col.NewObs("a")
	b := col.NewObs("b")
	a.Metrics.Hist("h").Observe(10)
	b.Metrics.Hist("h").Observe(30)
	m := col.MetricsSummary()
	if m["h.count"] != 2 || m["h.max"] != 30 || m["trace.processes"] != 2 {
		t.Fatalf("summary = %v", m)
	}
}
