// Cycle-domain time series: fixed-width windows in simulated time that
// snapshot throughput, tail percentiles, and the app/interference/stall/queue
// cycle decomposition, plus the K worst requests per window captured as
// exemplars with a full stall-cause record. Defrag epochs and stop-the-world
// pauses are recorded as overlay intervals so a timeline shows tail spikes
// aligned against the GC phase that caused them.
//
// The layer obeys the package invariants: it only reads values the serving
// loop has already committed (virtual-time cycles, per-op decompositions), it
// never charges a simulated cycle, and it draws from no RNG stream — enabling
// it reproduces simulated results bit-identically (pinned by
// TestServeWindowsDoNotPerturb and TestServingWindowsDoNotPerturb).
package obsv

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ffccd/internal/sim"
)

// DefaultWindowCycles is the default time-series window width: 50M simulated
// cycles, ~19.2ms at the machine's 2.6GHz clock.
const DefaultWindowCycles = 50_000_000

// DefaultExemplarK is the default number of worst-request exemplars retained
// per window.
const DefaultExemplarK = 4

// Overlay interval kinds.
const (
	// IntervalSTW is a stop-the-world pause (mark+summary, terminate fixup,
	// or a full STW compaction cycle).
	IntervalSTW = "stw"
	// IntervalEpoch is an open concurrent defragmentation epoch, from the
	// opening pause to terminate.
	IntervalEpoch = "epoch"
	// IntervalRecovery is post-crash recovery.
	IntervalRecovery = "recovery"
	// IntervalBackoff is one client's retry backoff wait after an admission
	// rejection during recovery (Epoch carries the client id).
	IntervalBackoff = "backoff"
)

// Interval is one overlay annotation on the time series: a span of simulated
// cycles during which a GC phase was active.
type Interval struct {
	Kind  string `json:"kind"`
	Start uint64 `json:"start_cycle"`
	End   uint64 `json:"end_cycle"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// Overlaps reports whether the interval intersects [start, end).
func (iv Interval) Overlaps(start, end uint64) bool {
	return iv.Start < end && iv.End > start
}

// IntervalLog accumulates overlay intervals. Safe for concurrent use.
type IntervalLog struct {
	mu sync.Mutex
	iv []Interval
}

// Add records one interval. Safe on a nil log (no-op), so emit sites need no
// extra guard beyond their component's *Obs nil check.
func (l *IntervalLog) Add(kind string, start, end, epoch uint64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.iv = append(l.iv, Interval{Kind: kind, Start: start, End: end, Epoch: epoch})
	l.mu.Unlock()
}

// Intervals returns the recorded intervals sorted by start cycle.
func (l *IntervalLog) Intervals() []Interval {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]Interval(nil), l.iv...)
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// StallCause is the full attribution record carried by an exemplar: which
// scheme and epoch the request dispatched against, and where its cycles went.
// All cycle fields are simulated cycles.
type StallCause struct {
	// Scheme is the defrag scheme of the run ("ffccd", "stw", ...).
	Scheme string `json:"scheme"`
	// Epoch is the defrag epoch open at dispatch (meaningful when Phase is
	// "compacting").
	Epoch uint64 `json:"epoch,omitempty"`
	// Phase at dispatch: "idle" or "compacting".
	Phase string `json:"phase"`
	// App is pure application service time (service minus WPQ-drain stalls).
	App uint64 `json:"app_cycles"`
	// WPQDrain is fence time: cycles the request spent draining the device
	// write-pending queue at sfences.
	WPQDrain uint64 `json:"wpq_drain_cycles"`
	// Interf is barrier interference: extra service cycles from read-barrier
	// checks and relocation fixups during an open epoch.
	Interf uint64 `json:"barrier_interf_cycles"`
	// STWWait is dispatch stall: cycles the request waited for a
	// stop-the-world pause to lift.
	STWWait uint64 `json:"stw_wait_cycles"`
	// QueueWait is connection queueing: cycles the request waited behind
	// earlier requests on its connection.
	QueueWait uint64 `json:"queue_wait_cycles"`
	// STWRef, when nonzero, is the end cycle of the STW pause this request's
	// delay chains back to — directly (the request dispatched against the
	// pause) or transitively (it queued behind requests that did). It matches
	// the End of an IntervalSTW overlay recorded by the same run.
	STWRef uint64 `json:"stw_ref_cycle,omitempty"`
	// CacheSet is the device cache set of the request's primary line
	// (-1 unknown).
	CacheSet int `json:"cache_set"`
	// Key is the workload key the request touched.
	Key uint64 `json:"key"`
	// Shard is the serving shard the request executed on (0 in unsharded
	// runs; omitted from JSON there so pre-sharding records are unchanged).
	Shard int `json:"shard,omitempty"`
}

// Dominant names the largest cycle component of the cause: "app",
// "wpq-drain", "barrier", "stw", or "queue".
func (c StallCause) Dominant() string {
	name, best := "app", c.App
	for _, cand := range []struct {
		name string
		v    uint64
	}{
		{"wpq-drain", c.WPQDrain},
		{"barrier", c.Interf},
		{"stw", c.STWWait},
		{"queue", c.QueueWait},
	} {
		if cand.v > best {
			name, best = cand.name, cand.v
		}
	}
	return name
}

// Exemplar is one captured worst request: its latency breakdown plus the
// stall-cause record, OpenTelemetry-exemplar style.
type Exemplar struct {
	Latency  uint64     `json:"latency_cycles"`
	Arrival  uint64     `json:"arrival_cycle"`
	Start    uint64     `json:"start_cycle"`
	Complete uint64     `json:"complete_cycle"`
	Cause    StallCause `json:"cause"`
}

func (e Exemplar) String() string {
	c := e.Cause
	s := fmt.Sprintf("latency=%.3fms (arrival %.3fms) dominant=%s: app=%d wpq=%d barrier=%d stw=%d queue=%d cycles; phase=%s",
		sim.CyclesToMillis(e.Latency), sim.CyclesToMillis(e.Arrival),
		c.Dominant(), c.App, c.WPQDrain, c.Interf, c.STWWait, c.QueueWait, c.Phase)
	if c.Phase == "compacting" {
		s += fmt.Sprintf(" epoch=%d", c.Epoch)
	}
	if c.STWRef != 0 {
		s += fmt.Sprintf(" stw_ref=%.3fms", sim.CyclesToMillis(c.STWRef))
	}
	if c.CacheSet >= 0 {
		s += fmt.Sprintf(" set=%d", c.CacheSet)
	}
	return s
}

// OpSample is one completed request handed to the time series. All fields are
// simulated cycles; Latency is Complete-Arrival.
type OpSample struct {
	Arrival  uint64
	Start    uint64
	Complete uint64
	App      uint64
	Interf   uint64
	Stall    uint64
	Queue    uint64
	Cause    StallCause
}

// window accumulates one fixed-width slice of simulated time.
type window struct {
	index uint64
	count uint64
	hist  Histogram
	app   uint64
	inter uint64
	stall uint64
	queue uint64
	ex    []Exemplar // worst-K, sorted by latency descending
}

// exLess orders exemplars worst-first with a deterministic tie-break, so
// worst-K selection is independent of host scheduling and needs no RNG.
func exLess(a, b Exemplar) bool {
	if a.Latency != b.Latency {
		return a.Latency > b.Latency
	}
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	if a.Cause.Key != b.Cause.Key {
		return a.Cause.Key < b.Cause.Key
	}
	// Sharded merge: two shards can each complete a request with identical
	// (latency, arrival, key); the shard id makes worst-K selection total.
	return a.Cause.Shard < b.Cause.Shard
}

// WindowSnap is the exported snapshot of one completed window.
type WindowSnap struct {
	Index uint64 `json:"window"`
	Start uint64 `json:"start_cycle"`
	End   uint64 `json:"end_cycle"`
	Count uint64 `json:"count"`
	// ThroughputOpsSec is completions per simulated second over the window.
	ThroughputOpsSec float64 `json:"throughput_ops_sec"`
	P50              uint64  `json:"p50_cycles"`
	P99              uint64  `json:"p99_cycles"`
	P999             uint64  `json:"p999_cycles"`
	Max              uint64  `json:"max_cycles"`
	AppCycles        uint64  `json:"app_cycles"`
	InterfCycles     uint64  `json:"interf_cycles"`
	StallCycles      uint64  `json:"stall_cycles"`
	QueueCycles      uint64  `json:"queue_cycles"`
	// STWOverlap/EpochOverlap/RecoveryOverlap/BackoffOverlap report whether
	// an overlay interval of that kind intersects the window.
	STWOverlap      bool       `json:"stw_overlap"`
	EpochOverlap    bool       `json:"epoch_overlap"`
	RecoveryOverlap bool       `json:"recovery_overlap,omitempty"`
	BackoffOverlap  bool       `json:"backoff_overlap,omitempty"`
	Exemplars       []Exemplar `json:"exemplars,omitempty"`
}

// TimeSeries is the windowed metric accumulator for one run. Requests are
// bucketed by completion cycle into fixed-width windows; overlay intervals
// mark GC activity. Safe for concurrent use, though the serving loop commits
// serially.
type TimeSeries struct {
	scheme string
	width  uint64
	k      int

	mu   sync.Mutex
	win  map[uint64]*window
	ivs  IntervalLog
	wex  *Exemplar // worst exemplar across all windows
	seen uint64
}

// NewTimeSeries creates a time series for one run. windowCycles = 0 selects
// DefaultWindowCycles; k = 0 selects DefaultExemplarK.
func NewTimeSeries(scheme string, windowCycles uint64, k int) *TimeSeries {
	if windowCycles == 0 {
		windowCycles = DefaultWindowCycles
	}
	if k <= 0 {
		k = DefaultExemplarK
	}
	return &TimeSeries{scheme: scheme, width: windowCycles, k: k, win: map[uint64]*window{}}
}

// Scheme returns the run's defrag scheme label.
func (ts *TimeSeries) Scheme() string { return ts.scheme }

// WindowCycles returns the window width in simulated cycles.
func (ts *TimeSeries) WindowCycles() uint64 { return ts.width }

// ObserveOp records one completed request into its completion-cycle window.
func (ts *TimeSeries) ObserveOp(op OpSample) {
	lat := op.Complete - op.Arrival
	idx := op.Complete / ts.width
	ex := Exemplar{Latency: lat, Arrival: op.Arrival, Start: op.Start, Complete: op.Complete, Cause: op.Cause}

	ts.mu.Lock()
	defer ts.mu.Unlock()
	w := ts.win[idx]
	if w == nil {
		w = &window{index: idx}
		ts.win[idx] = w
	}
	w.count++
	ts.seen++
	w.hist.Observe(lat)
	w.app += op.App
	w.inter += op.Interf
	w.stall += op.Stall
	w.queue += op.Queue
	if len(w.ex) < ts.k {
		w.ex = append(w.ex, ex)
		sort.SliceStable(w.ex, func(i, j int) bool { return exLess(w.ex[i], w.ex[j]) })
	} else if exLess(ex, w.ex[len(w.ex)-1]) {
		w.ex[len(w.ex)-1] = ex
		sort.SliceStable(w.ex, func(i, j int) bool { return exLess(w.ex[i], w.ex[j]) })
	}
	if ts.wex == nil || exLess(ex, *ts.wex) {
		cp := ex
		ts.wex = &cp
	}
}

// AddInterval records one overlay interval (an open epoch or an STW pause).
func (ts *TimeSeries) AddInterval(kind string, start, end, epoch uint64) {
	ts.ivs.Add(kind, start, end, epoch)
}

// Merge folds another series (same window width required) into ts — the
// sharded-serving merge. Per-window histograms merge exactly, cycle sums and
// counts add, worst-K exemplars re-select under the total exLess order
// (latency desc, arrival asc, key asc, shard asc), and overlay intervals
// union. Windows fold in ascending index order and every per-window
// operation is order-insensitive or totally ordered, so the merged series is
// bit-identical however the shards were scheduled on the host.
func (ts *TimeSeries) Merge(o *TimeSeries) error {
	if o == nil {
		return nil
	}
	if o.width != ts.width {
		return fmt.Errorf("obsv: TimeSeries.Merge width mismatch: %d vs %d", ts.width, o.width)
	}

	o.mu.Lock()
	idxs := make([]uint64, 0, len(o.win))
	for idx := range o.win {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	ts.mu.Lock()
	for _, idx := range idxs {
		ow := o.win[idx]
		w := ts.win[idx]
		if w == nil {
			w = &window{index: idx}
			ts.win[idx] = w
		}
		w.count += ow.count
		w.hist.Merge(&ow.hist)
		w.app += ow.app
		w.inter += ow.inter
		w.stall += ow.stall
		w.queue += ow.queue
		w.ex = append(w.ex, ow.ex...)
		sort.SliceStable(w.ex, func(i, j int) bool { return exLess(w.ex[i], w.ex[j]) })
		if len(w.ex) > ts.k {
			w.ex = w.ex[:ts.k:ts.k]
		}
	}
	if o.wex != nil && (ts.wex == nil || exLess(*o.wex, *ts.wex)) {
		cp := *o.wex
		ts.wex = &cp
	}
	ts.seen += o.seen
	ts.mu.Unlock()
	o.mu.Unlock()

	for _, iv := range o.Intervals() {
		ts.ivs.Add(iv.Kind, iv.Start, iv.End, iv.Epoch)
	}
	return nil
}

// Intervals returns the overlay intervals sorted by start cycle.
func (ts *TimeSeries) Intervals() []Interval { return ts.ivs.Intervals() }

// Count returns the number of requests observed.
func (ts *TimeSeries) Count() uint64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.seen
}

// WorstExemplar returns the single worst request seen across all windows.
func (ts *TimeSeries) WorstExemplar() (Exemplar, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.wex == nil {
		return Exemplar{}, false
	}
	return *ts.wex, true
}

// Windows snapshots every populated window, sorted by window index, with
// overlay-overlap flags resolved against the recorded intervals.
func (ts *TimeSeries) Windows() []WindowSnap {
	ivs := ts.Intervals()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]WindowSnap, 0, len(ts.win))
	for _, w := range ts.win {
		start, end := w.index*ts.width, (w.index+1)*ts.width
		h := w.hist.Snapshot("")
		ws := WindowSnap{
			Index: w.index, Start: start, End: end, Count: w.count,
			ThroughputOpsSec: float64(w.count) * float64(sim.CyclesPerSecond) / float64(ts.width),
			P50:              h.P50, P99: h.P99, P999: h.P999, Max: h.Max,
			AppCycles: w.app, InterfCycles: w.inter,
			StallCycles: w.stall, QueueCycles: w.queue,
			Exemplars: append([]Exemplar(nil), w.ex...),
		}
		for _, iv := range ivs {
			if !iv.Overlaps(start, end) {
				continue
			}
			switch iv.Kind {
			case IntervalSTW:
				ws.STWOverlap = true
			case IntervalEpoch:
				ws.EpochOverlap = true
			case IntervalRecovery:
				ws.RecoveryOverlap = true
			case IntervalBackoff:
				ws.BackoffOverlap = true
			}
		}
		out = append(out, ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// LastWindows returns the up-to-n most recent populated windows — the slice a
// flight-recorder crash dump renders.
func (ts *TimeSeries) LastWindows(n int) []WindowSnap {
	all := ts.Windows()
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// CSVHeader is the column list of TimeSeries.CSV rows.
const CSVHeader = "scheme,window,start_cycle,end_cycle,count,throughput_ops_sec," +
	"p50_cycles,p99_cycles,p999_cycles,max_cycles," +
	"app_cycles,interf_cycles,stall_cycles,queue_cycles," +
	"stw_overlap,epoch_overlap,worst_latency_cycles,worst_dominant,worst_epoch,worst_stw_ref"

// CSV renders the per-window rows (no header; see CSVHeader).
func (ts *TimeSeries) CSV() string {
	var b strings.Builder
	for _, w := range ts.Windows() {
		worstLat, worstDom, worstEpoch, worstRef := uint64(0), "", uint64(0), uint64(0)
		if len(w.Exemplars) > 0 {
			e := w.Exemplars[0]
			worstLat, worstDom = e.Latency, e.Cause.Dominant()
			worstEpoch, worstRef = e.Cause.Epoch, e.Cause.STWRef
		}
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%.0f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d,%d\n",
			ts.scheme, w.Index, w.Start, w.End, w.Count, w.ThroughputOpsSec,
			w.P50, w.P99, w.P999, w.Max,
			w.AppCycles, w.InterfCycles, w.StallCycles, w.QueueCycles,
			boolBit(w.STWOverlap), boolBit(w.EpochOverlap),
			worstLat, worstDom, worstEpoch, worstRef)
	}
	return b.String()
}

func boolBit(v bool) int {
	if v {
		return 1
	}
	return 0
}

// RenderTimeline renders the time series as a terminal timeline: one row per
// window with a log-free linear p999 bar plus overlay marks (S = an STW pause
// intersects the window, E = a concurrent epoch is open, R = post-crash
// recovery, B = retry backoff after an admission rejection). barWidth is the
// bar column width (<=0 selects 40).
func RenderTimeline(ts *TimeSeries, barWidth int) string {
	if barWidth <= 0 {
		barWidth = 40
	}
	wins := ts.Windows()
	if len(wins) == 0 {
		return "(no windows recorded)\n"
	}
	var maxP999 uint64
	for _, w := range wins {
		if w.P999 > maxP999 {
			maxP999 = w.P999
		}
	}
	if maxP999 == 0 {
		maxP999 = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d windows x %.1fms (p999 bar full scale = %.3fms; S=stw pause, E=epoch open, R=recovery, B=backoff)\n",
		ts.scheme, len(wins), sim.CyclesToMillis(ts.width), sim.CyclesToMillis(maxP999))
	fmt.Fprintf(&b, "%6s %10s %8s %10s %10s  %-*s ov\n",
		"win", "t(ms)", "ops", "p50(ms)", "p999(ms)", barWidth, "p999")
	for _, w := range wins {
		n := int(float64(w.P999) / float64(maxP999) * float64(barWidth))
		if n > barWidth {
			n = barWidth
		}
		if n == 0 && w.P999 > 0 {
			n = 1
		}
		ov := ""
		if w.STWOverlap {
			ov += "S"
		}
		if w.EpochOverlap {
			ov += "E"
		}
		if w.RecoveryOverlap {
			ov += "R"
		}
		if w.BackoffOverlap {
			ov += "B"
		}
		fmt.Fprintf(&b, "%6d %10.1f %8d %10.3f %10.3f  %-*s %s\n",
			w.Index, sim.CyclesToMillis(w.Start), w.Count,
			sim.CyclesToMillis(w.P50), sim.CyclesToMillis(w.P999),
			barWidth, strings.Repeat("#", n), ov)
	}
	return b.String()
}
