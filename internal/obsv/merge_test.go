package obsv

import (
	"reflect"
	"testing"
)

// TestTimeSeriesMergeMatchesSingleStream is the merge-layer property test:
// a completion log partitioned across per-shard series and merged must equal
// the single-stream reference — windows, counts, percentiles, cycle sums,
// exemplars, and overlay intervals.
func TestTimeSeriesMergeMatchesSingleStream(t *testing.T) {
	const shards, nops, width = 4, 3000, 10_000
	ref := NewTimeSeries("ffccd", width, 3)
	parts := make([]*TimeSeries, shards)
	for i := range parts {
		parts[i] = NewTimeSeries("ffccd", width, 3)
	}

	// Deterministic pseudo-random completion log (LCG); each op routes to one
	// shard and lands in both the reference and that shard's series.
	x := uint64(0x9E3779B97F4A7C15)
	next := func(mod uint64) uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return (x >> 33) % mod
	}
	for i := 0; i < nops; i++ {
		arrival := next(width * 20)
		lat := 1 + next(50_000)
		s := int(next(shards))
		op := OpSample{
			Arrival:  arrival,
			Start:    arrival + lat/4,
			Complete: arrival + lat,
			App:      lat / 2,
			Interf:   lat / 8,
			Stall:    lat / 8,
			Queue:    lat / 4,
			Cause: StallCause{
				App: lat / 2, QueueWait: lat / 4, Phase: "idle",
				Key: next(500), Shard: s, CacheSet: -1,
			},
		}
		ref.ObserveOp(op)
		parts[s].ObserveOp(op)
	}
	// Overlay intervals: one per shard, all present in the reference.
	for s, ts := range parts {
		start := uint64(s+1) * width
		ts.AddInterval(IntervalEpoch, start, start+width/2, uint64(s))
		ref.AddInterval(IntervalEpoch, start, start+width/2, uint64(s))
	}

	merged := NewTimeSeries("ffccd", width, 3)
	for _, ts := range parts {
		if err := merged.Merge(ts); err != nil {
			t.Fatal(err)
		}
	}

	if merged.Count() != ref.Count() {
		t.Fatalf("merged count %d != reference %d", merged.Count(), ref.Count())
	}
	mw, rw := merged.Windows(), ref.Windows()
	if len(mw) == 0 {
		t.Fatal("no windows; the property is vacuous")
	}
	if !reflect.DeepEqual(mw, rw) {
		t.Errorf("merged windows differ from single-stream reference (%d vs %d windows)", len(mw), len(rw))
		for i := range mw {
			if i < len(rw) && !reflect.DeepEqual(mw[i], rw[i]) {
				t.Errorf("first divergence at window %d:\n  merged:    %+v\n  reference: %+v", i, mw[i], rw[i])
				break
			}
		}
	}
	me, mok := merged.WorstExemplar()
	re, rok := ref.WorstExemplar()
	if mok != rok || me != re {
		t.Errorf("worst exemplar differs: merged %+v vs reference %+v", me, re)
	}
	if !reflect.DeepEqual(merged.Intervals(), ref.Intervals()) {
		t.Error("merged overlay intervals differ from reference")
	}
}

// TestTimeSeriesMergeOrderInvariant pins the fold-order independence the
// sharded dispatcher relies on: merging the same per-shard series in any
// order yields identical windows and exemplars (the exLess shard tie-break
// makes worst-K selection total).
func TestTimeSeriesMergeOrderInvariant(t *testing.T) {
	const shards, nops, width = 3, 600, 5_000
	parts := make([]*TimeSeries, shards)
	for i := range parts {
		parts[i] = NewTimeSeries("stw", width, 2)
	}
	x := uint64(7)
	next := func(mod uint64) uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return (x >> 33) % mod
	}
	for i := 0; i < nops; i++ {
		arrival := next(width * 8)
		// Coarse latencies force cross-shard exemplar ties, exercising the
		// shard tie-break.
		lat := (1 + next(4)) * 1000
		s := int(next(shards))
		parts[s].ObserveOp(OpSample{
			Arrival: arrival, Start: arrival, Complete: arrival + lat,
			App:   lat,
			Cause: StallCause{App: lat, Key: next(10), Shard: s, CacheSet: -1},
		})
	}
	fold := func(order []int) *TimeSeries {
		m := NewTimeSeries("stw", width, 2)
		for _, i := range order {
			if err := m.Merge(parts[i]); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	a := fold([]int{0, 1, 2})
	b := fold([]int{2, 0, 1})
	if !reflect.DeepEqual(a.Windows(), b.Windows()) {
		t.Error("merge result depends on fold order")
	}
}

// TestTimeSeriesMergeWidthMismatch pins the error path: shard series of
// different window widths must refuse to merge rather than mis-bucket.
func TestTimeSeriesMergeWidthMismatch(t *testing.T) {
	a := NewTimeSeries("none", 1000, 0)
	b := NewTimeSeries("none", 2000, 0)
	if err := a.Merge(b); err == nil {
		t.Fatal("width mismatch merged silently")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge should be a no-op, got %v", err)
	}
}
