package obsv

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// The histogram is HDR-style log-linear: each power-of-two octave is split
// into histSubCount linear sub-buckets, so the relative width of any bucket
// is at most 2^-histSubBits (6.25%) — fine enough to resolve p999 tails.
// Values below histSubCount get one exact bucket each.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits // sub-buckets per octave
	// Octaves 4..63 contribute histSubCount buckets each on top of the
	// histSubCount exact small-value buckets: indices 0..975.
	histBuckets = histSubCount + (64-histSubBits)*histSubCount
)

// bucketIndex maps a value to its log-linear bucket.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	e := uint(bits.Len64(v)) - 1
	return int((e-histSubBits)<<histSubBits) + int(v>>(e-histSubBits))
}

// Histogram is a cycle-domain histogram with log-linear buckets (16
// sub-buckets per power-of-two octave). It trades a bounded ≤1/16 relative
// bucket width for O(1) constant-memory observation, which is what a
// hot-path latency recorder needs; percentile estimates are resolved to the
// upper bound of the containing bucket, clamped to the observed max.
type Histogram struct {
	mu      sync.Mutex
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [histBuckets]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketIndex(v)]++
	h.mu.Unlock()
}

// Merge folds other's observations into h (bucket-wise; exact for count,
// sum, min, max, and every quantile estimate, as if all values had been
// observed on h).
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	count, sum, mn, mx := other.count, other.sum, other.min, other.max
	var b [histBuckets]uint64
	copy(b[:], other.buckets[:])
	other.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	if h.count == 0 || mn < h.min {
		h.min = mn
	}
	if mx > h.max {
		h.max = mx
	}
	h.count += count
	h.sum += sum
	for i := range b {
		h.buckets[i] += b[i]
	}
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time summary of one histogram.
type HistSnapshot struct {
	Name  string
	Count uint64
	Sum   uint64
	Min   uint64
	Max   uint64
	P50   uint64 // bucket-upper-bound estimates
	P90   uint64
	P95   uint64
	P99   uint64
	P999  uint64
}

// Mean returns the exact arithmetic mean of observed values.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketUpper is the largest value bucket i holds (inverse of bucketIndex).
func bucketUpper(i int) uint64 {
	if i < histSubCount {
		return uint64(i)
	}
	shift := uint(i>>histSubBits) - 1
	lower := (uint64(i&(histSubCount-1)) + histSubCount) << shift
	return lower + (1 << shift) - 1
}

// quantileLocked resolves quantile q (0..1) to the upper bound of its
// bucket, clamped to the observed max. Caller holds h.mu.
func (h *Histogram) quantileLocked(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Quantile resolves quantile q in [0,1] to the upper bound of its log-linear
// bucket (relative error ≤ 2^-4), clamped to the observed max.
func (h *Histogram) Quantile(q float64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

// Count returns the number of observed values.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Snapshot summarizes the histogram. Percentiles are upper bounds of the
// containing log-linear bucket, clamped to the observed max.
func (h *Histogram) Snapshot(name string) HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count == 0 {
		return s
	}
	s.P50 = h.quantileLocked(0.50)
	s.P90 = h.quantileLocked(0.90)
	s.P95 = h.quantileLocked(0.95)
	s.P99 = h.quantileLocked(0.99)
	s.P999 = h.quantileLocked(0.999)
	return s
}

// Counter is a named monotonic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// GroupSnapshot is a point-in-time reading of one registered counter group,
// with keys sorted for stable output.
type GroupSnapshot struct {
	Name string
	Keys []string
	Vals []uint64
}

// Snapshot is a full registry reading: every histogram, counter, and group.
type Snapshot struct {
	Hists    []HistSnapshot
	Counters []GroupSnapshot // single synthetic group "counters" when any exist
	Groups   []GroupSnapshot
}

// Registry holds the machine's metrics: named histograms and counters
// created by instrumented components, plus snapshot groups — closures over
// counters that already live elsewhere (device stats, engine stats, TLB and
// checklookup counters), registered so one Snapshot call unifies them all.
type Registry struct {
	mu        sync.Mutex
	hists     map[string]*Histogram
	histOrder []string
	ctrs      map[string]*Counter
	ctrOrder  []string
	groups    []struct {
		name string
		fn   func() map[string]uint64
	}
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{hists: map[string]*Histogram{}, ctrs: map[string]*Counter{}}
}

// Hist returns the named histogram, creating it on first use. The returned
// pointer is stable: components resolve it once at wiring time and keep it,
// so hot paths never touch the registry map.
func (r *Registry) Hist(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{}
	r.hists[name] = h
	r.histOrder = append(r.histOrder, name)
	return h
}

// Counter returns the named counter, creating it on first use. Stable
// pointer, like Hist.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.ctrs[name]; ok {
		return c
	}
	c := &Counter{}
	r.ctrs[name] = c
	r.ctrOrder = append(r.ctrOrder, name)
	return c
}

// RegisterGroup registers a named snapshot closure. fn is invoked at
// Snapshot time and must be safe to call after the run completes.
func (r *Registry) RegisterGroup(name string, fn func() map[string]uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.groups = append(r.groups, struct {
		name string
		fn   func() map[string]uint64
	}{name, fn})
}

func sortedGroup(name string, m map[string]uint64) GroupSnapshot {
	g := GroupSnapshot{Name: name, Keys: make([]string, 0, len(m))}
	for k := range m {
		g.Keys = append(g.Keys, k)
	}
	sort.Strings(g.Keys)
	g.Vals = make([]uint64, len(g.Keys))
	for i, k := range g.Keys {
		g.Vals[i] = m[k]
	}
	return g
}

// Snapshot reads every histogram, counter, and registered group.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	hists := append([]string(nil), r.histOrder...)
	ctrs := append([]string(nil), r.ctrOrder...)
	groups := append(r.groups[:0:0], r.groups...)
	r.mu.Unlock()

	var s Snapshot
	for _, name := range hists {
		s.Hists = append(s.Hists, r.Hist(name).Snapshot(name))
	}
	if len(ctrs) > 0 {
		m := make(map[string]uint64, len(ctrs))
		for _, name := range ctrs {
			m[name] = r.Counter(name).Value()
		}
		s.Counters = append(s.Counters, sortedGroup("counters", m))
	}
	for _, g := range groups {
		s.Groups = append(s.Groups, sortedGroup(g.name, g.fn()))
	}
	return s
}

// Flat renders the snapshot as a single sorted key→value map — the shape
// benchmark records and expvar publish. Histograms contribute
// name.count/.mean/.p50/.p95/.p99/.p999/.max; groups contribute group.key.
func (s Snapshot) Flat() map[string]float64 {
	out := map[string]float64{}
	for _, h := range s.Hists {
		out[h.Name+".count"] = float64(h.Count)
		if h.Count > 0 {
			out[h.Name+".mean"] = h.Mean()
			out[h.Name+".p50"] = float64(h.P50)
			out[h.Name+".p95"] = float64(h.P95)
			out[h.Name+".p99"] = float64(h.P99)
			out[h.Name+".p999"] = float64(h.P999)
			out[h.Name+".max"] = float64(h.Max)
		}
	}
	for _, gs := range [][]GroupSnapshot{s.Counters, s.Groups} {
		for _, g := range gs {
			for i, k := range g.Keys {
				out[g.Name+"."+k] = float64(g.Vals[i])
			}
		}
	}
	return out
}

// merge folds other into s for cross-run aggregation: histograms merge
// count/sum/min/max (percentiles are recomputed as maxima), group values add.
func mergeFlat(dst, src map[string]float64) {
	for k, v := range src {
		switch {
		case len(k) > 4 && (k[len(k)-4:] == ".p50" || k[len(k)-4:] == ".p95" || k[len(k)-4:] == ".p99" || k[len(k)-4:] == ".max"):
			if v > dst[k] {
				dst[k] = v
			}
		case len(k) > 5 && (k[len(k)-5:] == ".mean" || k[len(k)-5:] == ".p999"):
			// Recomputed below from count/sum when both present; otherwise keep max.
			if v > dst[k] {
				dst[k] = v
			}
		default:
			dst[k] += v
		}
	}
}
