// OpenMetrics text exposition of a Collector: every process's histograms,
// counters, and counter groups, plus the windowed time series with
// OpenMetrics-style exemplars (the worst request of each window, tagged with
// its dominant stall cause). Served on the -httpobs endpoint at /metrics and
// format-checked by TestOpenMetricsConformance.
package obsv

import (
	"fmt"
	"io"
	"strings"
)

// omFamily is one metric family: HELP/TYPE header plus contiguous samples,
// as the OpenMetrics exposition format requires.
type omFamily struct {
	name    string
	typ     string // "counter" | "gauge" | "summary"
	help    string
	samples []string
}

type omWriter struct {
	fams  map[string]*omFamily
	order []string
}

func (o *omWriter) family(name, typ, help string) *omFamily {
	if f, ok := o.fams[name]; ok {
		return f
	}
	f := &omFamily{name: name, typ: typ, help: help}
	if o.fams == nil {
		o.fams = map[string]*omFamily{}
	}
	o.fams[name] = f
	o.order = append(o.order, name)
	return f
}

// omName sanitizes a metric or label name to the OpenMetrics charset.
func omName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// omEscape escapes a label value per the exposition format.
func omEscape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

type omLabel struct{ k, v string }

func omLabels(ls []omLabel) string {
	if len(ls) == 0 {
		return ""
	}
	parts := make([]string, len(ls))
	for i, l := range ls {
		// omEscape already applies the exposition-format escapes; %q would
		// double-escape them.
		parts[i] = omName(l.k) + `="` + omEscape(l.v) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// sample appends one sample line. suffix is appended to the family name
// (e.g. "_total", "_count"); exemplar, when non-empty, is appended after the
// value ("# {labels} value" syntax).
func (f *omFamily) sample(suffix string, ls []omLabel, value string, exemplar string) {
	line := f.name + suffix + omLabels(ls) + " " + value
	if exemplar != "" {
		line += " # " + exemplar
	}
	f.samples = append(f.samples, line)
}

func omExemplar(ls []omLabel, value float64) string {
	return fmt.Sprintf("{%s} %g", strings.TrimSuffix(strings.TrimPrefix(omLabels(ls), "{"), "}"), value)
}

// WriteOpenMetrics renders the collector in the OpenMetrics text exposition
// format: HELP/TYPE headers, one contiguous block of samples per family,
// label-escaped process/scheme names, per-window series with worst-request
// exemplars on the window request counters, and a final # EOF terminator.
func (c *Collector) WriteOpenMetrics(w io.Writer) error {
	names, procs := c.snapshot()
	var om omWriter

	traces := om.family("ffccd_trace_events", "counter", "Trace events recorded per process.")
	for pid, o := range procs {
		pl := []omLabel{{"process", names[pid]}}
		traces.sample("_total", pl, fmt.Sprintf("%d", o.Tracer.EventCount()), "")

		snap := o.Metrics.Snapshot()
		for _, h := range snap.Hists {
			f := om.family("ffccd_"+omName(h.Name), "summary",
				"Cycle-domain histogram "+h.Name+" (simulated cycles).")
			for _, q := range []struct {
				q string
				v uint64
			}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.95", h.P95}, {"0.99", h.P99}, {"0.999", h.P999}} {
				f.sample("", append(pl[:1:1], omLabel{"quantile", q.q}), fmt.Sprintf("%d", q.v), "")
			}
			f.sample("_count", pl, fmt.Sprintf("%d", h.Count), "")
			f.sample("_sum", pl, fmt.Sprintf("%d", h.Sum), "")
		}
		for _, gs := range [][]GroupSnapshot{snap.Counters, snap.Groups} {
			for _, g := range gs {
				f := om.family("ffccd_"+omName(g.Name), "counter",
					"Counter group "+g.Name+".")
				for i, k := range g.Keys {
					f.sample("_total", append(pl[:1:1], omLabel{"key", k}),
						fmt.Sprintf("%d", g.Vals[i]), "")
				}
			}
		}

		if o.Series == nil {
			continue
		}
		ts := o.Series
		sl := append(pl[:1:1], omLabel{"scheme", ts.Scheme()})
		req := om.family("ffccd_window_requests", "counter",
			"Requests completed per simulated-time window; exemplar = worst request with its dominant stall cause.")
		p999 := om.family("ffccd_window_p999_cycles", "gauge",
			"Per-window p999 latency in simulated cycles.")
		p50 := om.family("ffccd_window_p50_cycles", "gauge",
			"Per-window p50 latency in simulated cycles.")
		decomp := om.family("ffccd_window_cycles", "gauge",
			"Per-window cycle decomposition (class = app|interf|stall|queue).")
		overlay := om.family("ffccd_window_overlay", "gauge",
			"1 when a GC overlay interval (kind = stw|epoch) intersects the window.")
		for _, win := range ts.Windows() {
			wl := append(sl[:2:2], omLabel{"window", fmt.Sprintf("%d", win.Index)})
			ex := ""
			if len(win.Exemplars) > 0 {
				e := win.Exemplars[0]
				exl := []omLabel{
					{"dominant", e.Cause.Dominant()},
					{"phase", e.Cause.Phase},
					{"epoch", fmt.Sprintf("%d", e.Cause.Epoch)},
					{"cache_set", fmt.Sprintf("%d", e.Cause.CacheSet)},
				}
				ex = omExemplar(exl, float64(e.Latency))
			}
			req.sample("_total", wl, fmt.Sprintf("%d", win.Count), ex)
			p999.sample("", wl, fmt.Sprintf("%d", win.P999), "")
			p50.sample("", wl, fmt.Sprintf("%d", win.P50), "")
			for _, cl := range []struct {
				name string
				v    uint64
			}{{"app", win.AppCycles}, {"interf", win.InterfCycles}, {"stall", win.StallCycles}, {"queue", win.QueueCycles}} {
				decomp.sample("", append(wl[:3:3], omLabel{"class", cl.name}),
					fmt.Sprintf("%d", cl.v), "")
			}
			for _, ov := range []struct {
				kind string
				v    bool
			}{{"stw", win.STWOverlap}, {"epoch", win.EpochOverlap}} {
				overlay.sample("", append(wl[:3:3], omLabel{"kind", ov.kind}),
					fmt.Sprintf("%d", boolBit(ov.v)), "")
			}
		}
	}

	for _, name := range om.order {
		f := om.fams[name]
		if len(f.samples) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			if _, err := io.WriteString(w, s+"\n"); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}
