package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"ffccd/internal/sim"
	"ffccd/internal/stats"
)

// Collector owns the observability of a whole benchmark invocation: one Obs
// ("process" in trace terms) per experiment run, including separate processes
// for a fork driver's shared prefix so prefix work is attributed distinctly
// from per-scheme forks. Exporters render all processes into one artifact.
type Collector struct {
	mu      sync.Mutex
	ringCap int
	names   []string
	procs   []*Obs
}

// NewCollector creates a collector. ringCap is forwarded to every per-run
// tracer (0 = unbounded, >0 = flight-recorder ring).
func NewCollector(ringCap int) *Collector {
	return &Collector{ringCap: ringCap}
}

// NewObs creates, registers, and returns the observability bundle for one
// run. name becomes the Perfetto process name.
func (c *Collector) NewObs(name string) *Obs {
	o := New(c.ringCap)
	c.mu.Lock()
	c.names = append(c.names, name)
	c.procs = append(c.procs, o)
	c.mu.Unlock()
	return o
}

// RingCap returns the flight-recorder capacity the collector was built with.
func (c *Collector) RingCap() int { return c.ringCap }

// Processes returns the registered process names and observability bundles,
// in creation order.
func (c *Collector) Processes() ([]string, []*Obs) { return c.snapshot() }

func (c *Collector) snapshot() (names []string, procs []*Obs) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.names...), append([]*Obs(nil), c.procs...)
}

// cyclesPerMicro converts simulated cycles to trace microseconds.
const cyclesPerMicro = float64(sim.CyclesPerSecond) / 1e6

// chromeEvent is one Chrome trace-event (the JSON array format Perfetto
// loads). ph "X" = complete (span), "i" = instant, "M" = metadata.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// laneOf maps an event kind to a per-thread lane so Perfetto renders
// mark/summary/copy/barrier/STW on distinct tracks instead of one overloaded
// row. Lanes nest related kinds: the epoch/STW skeleton, the phases, the
// barrier work, and the persist domain.
func laneOf(k Kind) (lane int, label string) {
	switch k {
	case KindEpoch, KindTrigger:
		return 0, "epoch"
	case KindSTW:
		return 1, "stw"
	case KindMark:
		return 2, "mark"
	case KindSummary:
		return 3, "summary"
	case KindCopy:
		return 4, "copy"
	case KindBarrierFix, KindCheckLookup:
		return 5, "barrier"
	case KindRecovery, KindCrash:
		return 6, "recovery"
	default: // KindWPQDrain, KindRelocate
		return 7, "persist"
	}
}

const lanesPerThread = 8

// WriteChromeTrace renders every process of the collector as Chrome
// trace-event JSON. Load the file in Perfetto (ui.perfetto.dev) or
// chrome://tracing; timestamps are simulated cycles scaled to microseconds
// at the machine's configured clock, so the timeline is the simulated
// machine's, not the host's.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	names, procs := c.snapshot()
	var evs []chromeEvent
	for pid, o := range procs {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": names[pid]},
		})
		for _, b := range o.Tracer.Threads() {
			tname := b.Name
			if tname == "" {
				tname = fmt.Sprintf("thread%d", b.ID)
			}
			lanesSeen := map[int]string{}
			for _, e := range b.Events() {
				lane, label := laneOf(e.Kind)
				tid := b.ID*lanesPerThread + lane
				lanesSeen[lane] = label
				ce := chromeEvent{
					Name: e.Kind.String(),
					Ts:   float64(e.Start) / cyclesPerMicro,
					Pid:  pid,
					Tid:  tid,
					Args: map[string]any{"arg": e.Arg, "start_cycle": e.Start},
				}
				if e.End > e.Start {
					dur := float64(e.End-e.Start) / cyclesPerMicro
					ce.Ph, ce.Dur = "X", &dur
					ce.Args["cycles"] = e.End - e.Start
				} else {
					ce.Ph, ce.S = "i", "t"
				}
				evs = append(evs, ce)
			}
			for lane := 0; lane < lanesPerThread; lane++ {
				label, ok := lanesSeen[lane]
				if !ok {
					continue
				}
				evs = append(evs, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: pid,
					Tid:  b.ID*lanesPerThread + lane,
					Args: map[string]any{"name": tname + "/" + label},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}

// MetricsSummary flattens and merges every process's metrics snapshot into
// one key→value map, the shape BENCH_*.json records and expvar carry.
// Histogram count/sum/group values add across processes; percentile and max
// keys keep the cross-process maximum.
func (c *Collector) MetricsSummary() map[string]float64 {
	_, procs := c.snapshot()
	out := map[string]float64{}
	for _, o := range procs {
		mergeFlat(out, o.Metrics.Snapshot().Flat())
	}
	out["trace.events"] = 0
	for _, o := range procs {
		out["trace.events"] += float64(o.Tracer.EventCount())
	}
	out["trace.processes"] = float64(len(procs))
	return out
}

// SummaryTable renders a human-readable summary of the collector: one
// histogram table (merged observation counts per process would be noise, so
// rows are per process × histogram) and one row per group counter family.
func (c *Collector) SummaryTable() string {
	names, procs := c.snapshot()
	var out string

	ht := stats.NewTable("process", "histogram", "count", "mean", "p50", "p95", "max")
	rows := 0
	for pid, o := range procs {
		for _, h := range o.Metrics.Snapshot().Hists {
			if h.Count == 0 {
				continue
			}
			ht.Add(names[pid], h.Name,
				fmt.Sprintf("%d", h.Count), fmt.Sprintf("%.0f", h.Mean()),
				fmt.Sprintf("%d", h.P50), fmt.Sprintf("%d", h.P95),
				fmt.Sprintf("%d", h.Max))
			rows++
		}
	}
	if rows > 0 {
		out += "cycle-domain histograms (cycles):\n" + ht.String() + "\n"
	}

	gt := stats.NewTable("process", "group", "key", "value")
	rows = 0
	for pid, o := range procs {
		snap := o.Metrics.Snapshot()
		for _, gs := range [][]GroupSnapshot{snap.Counters, snap.Groups} {
			for _, g := range gs {
				for i, k := range g.Keys {
					gt.Add(names[pid], g.Name, k, fmt.Sprintf("%d", g.Vals[i]))
					rows++
				}
			}
		}
	}
	if rows > 0 {
		out += "counter groups:\n" + gt.String()
	}
	return out
}

// TimelineTable renders one Obs's events as a text phase timeline in
// internal/stats table style, sorted by start cycle: the ffccd-inspect view
// and the flight-recorder dump format.
func TimelineTable(o *Obs) string {
	type row struct {
		thread string
		Event
	}
	var all []row
	for _, b := range o.Tracer.Threads() {
		tname := b.Name
		if tname == "" {
			tname = fmt.Sprintf("thread%d", b.ID)
		}
		for _, e := range b.Events() {
			all = append(all, row{tname, e})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Start != all[j].Start {
			return all[i].Start < all[j].Start
		}
		return all[i].End < all[j].End
	})
	t := stats.NewTable("start_ms", "dur_ms", "thread", "event", "arg")
	for _, r := range all {
		dur := "-"
		if r.End > r.Start {
			dur = fmt.Sprintf("%.3f", sim.CyclesToMillis(r.End-r.Start))
		}
		t.Add(fmt.Sprintf("%.3f", sim.CyclesToMillis(r.Start)), dur,
			r.thread, r.Kind.String(), fmt.Sprintf("%d", r.Arg))
	}
	return t.String()
}

// flightRecorderWindows is how many completed metric windows a crash dump
// renders: the tail trajectory leading into the fault.
const flightRecorderWindows = 8

// WriteFlightRecorder dumps a flight-recorder ring (or any Obs) as a text
// timeline plus drop counts — what crash harnesses write at the fault. When
// the Obs carries a windowed time series, the last few completed windows are
// appended so post-crash inspection shows the tail trajectory into the crash.
func WriteFlightRecorder(w io.Writer, o *Obs) error {
	if _, err := fmt.Fprintf(w, "flight recorder dump (crashed=%v, events=%d)\n",
		o.Tracer.Crashed(), o.Tracer.EventCount()); err != nil {
		return err
	}
	for _, b := range o.Tracer.Threads() {
		if b.Dropped > 0 {
			if _, err := fmt.Fprintf(w, "thread %d (%s): %d older events overwritten by ring\n",
				b.ID, b.Name, b.Dropped); err != nil {
				return err
			}
		}
	}
	if _, err := io.WriteString(w, TimelineTable(o)); err != nil {
		return err
	}
	if o.Series != nil && o.Series.Count() > 0 {
		wins := o.Series.LastWindows(flightRecorderWindows)
		if _, err := fmt.Fprintf(w, "last %d metric windows before the fault:\n", len(wins)); err != nil {
			return err
		}
		t := stats.NewTable("window", "start_ms", "ops", "p50", "p999", "worst_cause")
		for _, win := range wins {
			cause := "-"
			if len(win.Exemplars) > 0 {
				cause = win.Exemplars[0].Cause.Dominant()
			}
			t.Add(fmt.Sprintf("%d", win.Index),
				fmt.Sprintf("%.3f", sim.CyclesToMillis(win.Start)),
				fmt.Sprintf("%d", win.Count),
				fmt.Sprintf("%d", win.P50), fmt.Sprintf("%d", win.P999), cause)
		}
		if _, err := io.WriteString(w, t.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTraceAll merges several collectors (e.g. one per benchmark
// repetition) into a single Chrome trace file, renumbering pids.
func WriteChromeTraceAll(w io.Writer, cols ...*Collector) error {
	merged := NewCollector(0)
	for _, c := range cols {
		names, procs := c.snapshot()
		merged.mu.Lock()
		merged.names = append(merged.names, names...)
		merged.procs = append(merged.procs, procs...)
		merged.mu.Unlock()
	}
	return merged.WriteChromeTrace(w)
}
