package obsv

import (
	"bytes"
	"strings"
	"testing"

	"ffccd/internal/sim"
)

func sampleAt(complete, lat uint64, key uint64) OpSample {
	return OpSample{
		Arrival: complete - lat, Start: complete - lat, Complete: complete,
		App: lat, Cause: StallCause{Scheme: "t", Phase: "idle", App: lat, Key: key, CacheSet: -1},
	}
}

func TestTimeSeriesBucketsByCompletion(t *testing.T) {
	ts := NewTimeSeries("t", 1000, 2)
	ts.ObserveOp(sampleAt(10, 5, 1))   // window 0
	ts.ObserveOp(sampleAt(999, 50, 2)) // window 0
	ts.ObserveOp(sampleAt(1000, 7, 3)) // window 1
	ts.ObserveOp(sampleAt(5500, 9, 4)) // window 5 (gap: 2-4 empty)
	wins := ts.Windows()
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3 populated", len(wins))
	}
	if wins[0].Index != 0 || wins[1].Index != 1 || wins[2].Index != 5 {
		t.Fatalf("window indices %d/%d/%d", wins[0].Index, wins[1].Index, wins[2].Index)
	}
	if wins[0].Count != 2 || wins[1].Count != 1 || wins[2].Count != 1 {
		t.Fatalf("window counts %d/%d/%d", wins[0].Count, wins[1].Count, wins[2].Count)
	}
	if wins[2].Start != 5000 || wins[2].End != 6000 {
		t.Fatalf("window 5 bounds [%d,%d)", wins[2].Start, wins[2].End)
	}
	if ts.Count() != 4 {
		t.Fatalf("count %d", ts.Count())
	}
	// Throughput: 2 completions per 1000 cycles.
	if want := 2 * float64(sim.CyclesPerSecond) / 1000; wins[0].ThroughputOpsSec != want {
		t.Fatalf("throughput %v want %v", wins[0].ThroughputOpsSec, want)
	}
	last := ts.LastWindows(2)
	if len(last) != 2 || last[0].Index != 1 || last[1].Index != 5 {
		t.Fatalf("LastWindows(2) = %+v", last)
	}
}

func TestTimeSeriesWorstKExemplars(t *testing.T) {
	ts := NewTimeSeries("t", 1_000_000, 3)
	lats := []uint64{10, 500, 20, 500, 90, 3, 700}
	for i, l := range lats {
		ts.ObserveOp(sampleAt(1000*uint64(i+1), l, uint64(i)))
	}
	w := ts.Windows()[0]
	if len(w.Exemplars) != 3 {
		t.Fatalf("kept %d exemplars, want 3", len(w.Exemplars))
	}
	got := []uint64{w.Exemplars[0].Latency, w.Exemplars[1].Latency, w.Exemplars[2].Latency}
	if got[0] != 700 || got[1] != 500 || got[2] != 500 {
		t.Fatalf("worst-3 latencies %v", got)
	}
	// Tie at 500: earlier arrival (key 1, completion 2000) must rank first.
	if w.Exemplars[1].Cause.Key != 1 || w.Exemplars[2].Cause.Key != 3 {
		t.Fatalf("tie-break keys %d/%d, want 1/3", w.Exemplars[1].Cause.Key, w.Exemplars[2].Cause.Key)
	}
	if ex, ok := ts.WorstExemplar(); !ok || ex.Latency != 700 {
		t.Fatalf("worst exemplar = %+v ok=%v", ex, ok)
	}
}

func TestIntervalOverlapAndFlags(t *testing.T) {
	iv := Interval{Kind: IntervalSTW, Start: 100, End: 200}
	for _, c := range []struct {
		s, e uint64
		want bool
	}{
		{0, 100, false}, {200, 300, false}, // half-open: touching ends don't overlap
		{0, 101, true}, {199, 300, true}, {120, 130, true}, {0, 1000, true},
	} {
		if got := iv.Overlaps(c.s, c.e); got != c.want {
			t.Fatalf("Overlaps(%d,%d) = %v want %v", c.s, c.e, got, c.want)
		}
	}

	ts := NewTimeSeries("t", 1000, 1)
	ts.ObserveOp(sampleAt(500, 5, 1))           // window 0
	ts.ObserveOp(sampleAt(1500, 5, 2))          // window 1
	ts.ObserveOp(sampleAt(2500, 5, 3))          // window 2
	ts.AddInterval(IntervalSTW, 1200, 1300, 0)  // inside window 1 only
	ts.AddInterval(IntervalEpoch, 900, 1100, 7) // straddles windows 0 and 1
	wins := ts.Windows()
	if wins[0].STWOverlap || !wins[0].EpochOverlap {
		t.Fatalf("window 0 flags stw=%v epoch=%v", wins[0].STWOverlap, wins[0].EpochOverlap)
	}
	if !wins[1].STWOverlap || !wins[1].EpochOverlap {
		t.Fatalf("window 1 flags stw=%v epoch=%v", wins[1].STWOverlap, wins[1].EpochOverlap)
	}
	if wins[2].STWOverlap || wins[2].EpochOverlap {
		t.Fatalf("window 2 flags stw=%v epoch=%v", wins[2].STWOverlap, wins[2].EpochOverlap)
	}
}

// The serving-path crash overlays: a recovery blackout and a retry backoff
// must flag the windows they touch and render as R/B marks in the timeline,
// exactly like the S/E GC overlays do.
func TestIntervalRecoveryAndBackoffFlags(t *testing.T) {
	ts := NewTimeSeries("ffccd", 1000, 1)
	ts.ObserveOp(sampleAt(500, 5, 1))               // window 0: pre-crash
	ts.ObserveOp(sampleAt(1500, 5, 2))              // window 1: blackout
	ts.ObserveOp(sampleAt(2500, 5, 3))              // window 2: degraded resume
	ts.ObserveOp(sampleAt(3500, 5, 4))              // window 3: healthy again
	ts.AddInterval(IntervalRecovery, 1100, 1900, 0) // inside window 1
	ts.AddInterval(IntervalBackoff, 2100, 2300, 0)  // inside window 2

	wins := ts.Windows()
	wantR := []bool{false, true, false, false}
	wantB := []bool{false, false, true, false}
	for i, w := range wins {
		if w.RecoveryOverlap != wantR[i] || w.BackoffOverlap != wantB[i] {
			t.Fatalf("window %d flags recovery=%v backoff=%v, want %v/%v",
				i, w.RecoveryOverlap, w.BackoffOverlap, wantR[i], wantB[i])
		}
	}

	tl := RenderTimeline(ts, 20)
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) != 6 { // title + header + 4 windows
		t.Fatalf("timeline has %d lines:\n%s", len(lines), tl)
	}
	if !strings.HasSuffix(lines[3], " R") {
		t.Fatalf("blackout window row missing R overlay mark: %q", lines[3])
	}
	if !strings.HasSuffix(lines[4], " B") {
		t.Fatalf("backoff window row missing B overlay mark: %q", lines[4])
	}
	if strings.HasSuffix(lines[2], " R") || strings.HasSuffix(lines[2], " B") ||
		strings.HasSuffix(lines[5], " R") || strings.HasSuffix(lines[5], " B") {
		t.Fatalf("overlay marks leaked into untouched windows:\n%s", tl)
	}
}

func TestStallCauseDominant(t *testing.T) {
	for _, c := range []struct {
		cause StallCause
		want  string
	}{
		{StallCause{App: 10}, "app"},
		{StallCause{App: 10, WPQDrain: 20}, "wpq-drain"},
		{StallCause{App: 10, Interf: 30}, "barrier"},
		{StallCause{App: 10, STWWait: 40}, "stw"},
		{StallCause{App: 10, STWWait: 40, QueueWait: 50}, "queue"},
		{StallCause{}, "app"}, // all-zero defaults to app
	} {
		if got := c.cause.Dominant(); got != c.want {
			t.Fatalf("Dominant(%+v) = %q want %q", c.cause, got, c.want)
		}
	}
}

func TestTimeSeriesCSVAndTimeline(t *testing.T) {
	ts := NewTimeSeries("ffccd", 1000, 2)
	ts.ObserveOp(sampleAt(500, 100, 1))
	big := sampleAt(1500, 900, 2)
	big.Cause.App = 50 // stall, not service, dominates this request
	big.Cause.STWWait, big.Cause.STWRef, big.Cause.Phase, big.Cause.Epoch = 800, 600, "compacting", 3
	big.Stall = 800
	ts.ObserveOp(big)
	ts.AddInterval(IntervalSTW, 400, 600, 3)

	csv := ts.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv rows = %d:\n%s", len(lines), csv)
	}
	if cols := strings.Split(lines[0], ","); len(cols) != len(strings.Split(CSVHeader, ",")) {
		t.Fatalf("csv row has %d cols, header %d", len(cols), len(strings.Split(CSVHeader, ",")))
	}
	if !strings.HasPrefix(lines[0], "ffccd,0,0,1000,1,") {
		t.Fatalf("row 0 = %q", lines[0])
	}
	// Window 1 carries the stw-dominant worst exemplar and its chain ref.
	if !strings.Contains(lines[1], ",stw,3,600") {
		t.Fatalf("row 1 missing worst-cause columns: %q", lines[1])
	}

	tl := RenderTimeline(ts, 20)
	tlLines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(tlLines) != 4 { // title + header + 2 windows
		t.Fatalf("timeline has %d lines:\n%s", len(tlLines), tl)
	}
	if !strings.HasSuffix(tlLines[2], " S") {
		t.Fatalf("window 0 row missing S overlay mark: %q", tlLines[2])
	}
	if !strings.Contains(tlLines[3], strings.Repeat("#", 20)) {
		t.Fatalf("worst window bar not full scale: %q", tlLines[3])
	}
	if empty := RenderTimeline(NewTimeSeries("x", 0, 0), 0); !strings.Contains(empty, "no windows") {
		t.Fatalf("empty render = %q", empty)
	}
}

func TestFlightRecorderIncludesWindows(t *testing.T) {
	o := New(4)
	ts := NewTimeSeries("ffccd", 1000, 1)
	for i := uint64(0); i < 12; i++ {
		s := sampleAt(i*1000+500, 10+i, i)
		s.Cause.QueueWait = 100 + i
		ts.ObserveOp(s)
	}
	o.Series = ts
	o.Tracer.MarkCrash()
	var buf bytes.Buffer
	if err := WriteFlightRecorder(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "last 8 metric windows before the fault") {
		t.Fatalf("dump missing window section:\n%s", out)
	}
	// Only the newest flightRecorderWindows windows appear: window 3 was
	// truncated, window 4 starts the tail, and the worst cause is rendered.
	if strings.Contains(out, "\n3 ") {
		t.Fatalf("dump shows truncated window 3:\n%s", out)
	}
	for _, want := range []string{"\n4 ", "\n11 ", "queue"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}

	// Without a series the dump must stay window-free.
	o2 := New(2)
	o2.Tracer.MarkCrash()
	buf.Reset()
	if err := WriteFlightRecorder(&buf, o2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "metric windows") {
		t.Fatalf("seriesless dump rendered windows:\n%s", buf.String())
	}
}
