package obsv

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ffccd/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// goldenTraceCollector builds a fully deterministic two-thread trace covering
// every lane class (epoch/stw/mark/copy/barrier/persist), instants, spans, and
// a crash buffer — the byte-for-byte fixture for the Chrome-trace exporter.
func goldenTraceCollector() *Collector {
	cfg := sim.DefaultConfig()
	col := NewCollector(0)
	o := col.NewObs("fig14/FFCCD")

	gc := sim.NewCtx(&cfg)
	o.Tracer.Name(gc, "gc")
	o.Tracer.Instant(gc, KindTrigger, 1)
	epochStart := Now(gc)
	stwStart := Now(gc)
	gc.ChargeCat(sim.CatMark, 2600)
	o.Tracer.Span(gc, KindMark, stwStart, 11)
	o.Tracer.Span(gc, KindSTW, stwStart, 0)
	copyStart := Now(gc)
	gc.ChargeCat(sim.CatCopy, 5200)
	o.Tracer.Span(gc, KindCopy, copyStart, 7)
	fixStart := Now(gc)
	gc.ChargeCat(sim.CatGCMisc, 1300)
	o.Tracer.Span(gc, KindBarrierFix, fixStart, 0)
	o.Tracer.Span(gc, KindEpoch, epochStart, 1)

	app := sim.NewCtx(&cfg)
	o.Tracer.Name(app, "app")
	app.ChargeCat(sim.CatApp, 999)
	o.Tracer.Instant(app, KindWPQDrain, 3)

	o.Tracer.MarkCrash()
	return col
}

// TestChromeTraceGolden pins the exporter's exact output — event ordering,
// lane assignment, metadata emission order, field formatting — against a
// committed fixture. Run `go test ./internal/obsv/ -run Golden -update` after
// an intentional format change.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTraceCollector().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	path := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden fixture unreadable (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Chrome trace drifted from golden fixture %s.\ngot:\n%s\nwant:\n%s\n(run with -update if the change is intentional)",
			path, got, want)
	}
	// The fixture itself must also stay valid, loadable trace JSON — the
	// structural checks TestChromeTraceExport applies to a live export.
	var evs []map[string]any
	if err := json.Unmarshal(want, &evs); err != nil {
		t.Fatalf("golden fixture is not valid JSON: %v", err)
	}
	if len(evs) == 0 || evs[0]["ph"] != "M" {
		t.Fatalf("fixture shape unexpected: %v", evs[:1])
	}
}
