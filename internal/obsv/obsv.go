// Package obsv is the machine-wide observability layer for the simulated
// machine: structured event tracing of defragmentation epochs, a metrics
// registry with counters and cycle-domain histograms, and exporters (Chrome
// trace-event JSON loadable in Perfetto, text summaries, benchmark-record
// enrichment).
//
// Two invariants govern everything in this package (DESIGN.md §8):
//
//   - Zero overhead when disabled. Every instrumentation site in core/pmem is
//     guarded by a nil pointer check on its component's *Obs; a disabled
//     machine executes one predictable branch per site and nothing else.
//
//   - Non-perturbing when enabled. Events are keyed by *simulated* cycles
//     (ctx.Clock totals), never host wall time, and no obsv code path ever
//     calls ctx.Charge or touches device/heap state — enabling tracing on a
//     golden run reproduces the committed cycle totals bit-identically
//     (pinned by TestGoldenCycles, which runs with tracing enabled, and
//     TestTracingDoesNotPerturb).
//
// The tracer keeps one buffer per simulated thread (keyed by the sim.Ctx
// shard hint, so derived contexts share their parent's buffer) and supports a
// flight-recorder ring mode that retains only the most recent events per
// thread — the mode fault-injection harnesses dump on a crash.
package obsv

import (
	"sync"
	"sync/atomic"

	"ffccd/internal/sim"
)

// Kind identifies one traced event type. Span kinds cover an interval of
// simulated cycles; instant kinds mark a point.
type Kind uint8

const (
	// KindTrigger is a defragmentation trigger attempt (instant; Arg=1 when
	// an epoch began, 0 when the heap was already at target).
	KindTrigger Kind = iota
	// KindMark is the stop-the-world marking phase (span; Arg=live objects).
	KindMark
	// KindSummary is the stop-the-world summary phase (span; Arg=relocation
	// objects selected).
	KindSummary
	// KindCopy is one background-mover compaction call (span; Arg=objects
	// relocated by the call).
	KindCopy
	// KindBarrierFix is the terminate-phase reference fixup pass (span).
	KindBarrierFix
	// KindSTW is a stop-the-world window (span; the mark+summary pause or the
	// terminate pause).
	KindSTW
	// KindEpoch is a whole defragmentation epoch, from the opening
	// stop-the-world to terminate (span; Arg=epoch number).
	KindEpoch
	// KindCheckLookup is the window during which the read barrier (and under
	// §4.3 the checklookup hardware) is live for an epoch (span; Arg=epoch
	// number).
	KindCheckLookup
	// KindCrash is a simulated power failure (instant).
	KindCrash
	// KindRecovery is post-crash recovery, reconciliation through epoch
	// completion (span).
	KindRecovery
	// KindWPQDrain is one sfence draining in-flight lines (instant; Arg=lines
	// drained). Emitted only in flight-recorder ring mode: full traces would
	// drown in per-fence events, but the last few before a crash are exactly
	// what persist-domain forensics needs.
	KindWPQDrain
	// KindRelocate is one relocate-instruction issue (instant; Arg=bytes).
	// Ring mode only, like KindWPQDrain.
	KindRelocate
	// KindSite is one crash-site passage (instant; Arg = siteIndex<<8 |
	// siteClass). Ring mode only: a flight-recorder dump at an injected
	// crash then shows the exact site indices leading up to the fault,
	// which is what a crash-schedule repro needs.
	KindSite

	numKinds
)

var kindNames = [numKinds]string{
	"trigger", "mark", "summary", "copy", "barrier-fix", "stw", "epoch",
	"checklookup", "crash", "recovery", "wpq-drain", "relocate", "site",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one recorded trace event. Start and End are simulated cycle
// totals of the emitting thread's clock; Start==End marks an instant.
type Event struct {
	Kind       Kind
	Start, End uint64
	Arg        uint64
}

// ThreadBuf collects the events of one simulated thread. Appends happen only
// from the owning goroutine; the tracer mutex guards discovery and export.
type ThreadBuf struct {
	ID      int
	Name    string
	Dropped uint64 // events overwritten in ring mode

	ring int
	ev   []Event
	head int // next overwrite slot once len(ev)==ring
}

func (b *ThreadBuf) add(e Event) {
	if b.ring > 0 && len(b.ev) >= b.ring {
		b.ev[b.head] = e
		b.head = (b.head + 1) % b.ring
		b.Dropped++
		return
	}
	b.ev = append(b.ev, e)
}

// Events returns the buffer's events in emission order (unwinding the ring).
func (b *ThreadBuf) Events() []Event {
	if b.ring == 0 || len(b.ev) < b.ring || b.head == 0 {
		return b.ev
	}
	out := make([]Event, 0, len(b.ev))
	out = append(out, b.ev[b.head:]...)
	out = append(out, b.ev[:b.head]...)
	return out
}

// Tracer records events into per-thread buffers. Buffers are keyed by the
// emitting context's Shard hint: derived contexts share their parent's shard,
// so all phases of one simulated thread land in one buffer. Lookup is a
// lock-free sync.Map read on the hot path; the mutex is taken only when a new
// thread first emits.
type Tracer struct {
	ringCap int

	bufs sync.Map // uint32 (ctx shard) → *ThreadBuf
	mu   sync.Mutex
	all  []*ThreadBuf

	crashed atomic.Bool
	events  atomic.Uint64
}

// NewTracer creates a tracer. ringCap > 0 selects flight-recorder mode:
// each thread retains only its most recent ringCap events (older ones are
// overwritten), and the high-frequency persist-domain instants
// (KindWPQDrain, KindRelocate) are recorded too.
func NewTracer(ringCap int) *Tracer {
	if ringCap < 0 {
		ringCap = 0
	}
	return &Tracer{ringCap: ringCap}
}

// RingMode reports whether the tracer is a bounded flight recorder.
func (t *Tracer) RingMode() bool { return t.ringCap > 0 }

// Now returns the emitting thread's current simulated cycle total — the
// timestamp domain of every event.
func Now(ctx *sim.Ctx) uint64 { return ctx.Clock.Total() }

func (t *Tracer) buf(ctx *sim.Ctx) *ThreadBuf {
	if v, ok := t.bufs.Load(ctx.Shard); ok {
		return v.(*ThreadBuf)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if v, ok := t.bufs.Load(ctx.Shard); ok {
		return v.(*ThreadBuf)
	}
	b := &ThreadBuf{ID: len(t.all), ring: t.ringCap}
	t.all = append(t.all, b)
	t.bufs.Store(ctx.Shard, b)
	return b
}

// Name labels the thread buffer of ctx (e.g. "app", "gc") for exporters.
func (t *Tracer) Name(ctx *sim.Ctx, name string) {
	b := t.buf(ctx)
	t.mu.Lock()
	b.Name = name
	t.mu.Unlock()
}

// Span records an interval event that started at simulated cycle start and
// ends now (the emitting thread's current clock total).
func (t *Tracer) Span(ctx *sim.Ctx, k Kind, start, arg uint64) {
	t.buf(ctx).add(Event{Kind: k, Start: start, End: Now(ctx), Arg: arg})
	t.events.Add(1)
}

// Instant records a point event at the emitting thread's current cycle.
func (t *Tracer) Instant(ctx *sim.Ctx, k Kind, arg uint64) {
	now := Now(ctx)
	t.buf(ctx).add(Event{Kind: k, Start: now, End: now, Arg: arg})
	t.events.Add(1)
}

// MarkCrash records a simulated power failure. The crash has no issuing
// thread or clock, so the instant is placed on a dedicated "machine" buffer
// at the latest cycle any thread has reached — the moment power was lost.
func (t *Tracer) MarkCrash() {
	t.crashed.Store(true)
	t.mu.Lock()
	defer t.mu.Unlock()
	var at uint64
	for _, b := range t.all {
		for _, e := range b.ev {
			if e.End > at {
				at = e.End
			}
		}
	}
	b := &ThreadBuf{ID: len(t.all), Name: "machine", ring: t.ringCap}
	b.add(Event{Kind: KindCrash, Start: at, End: at})
	t.all = append(t.all, b)
	t.events.Add(1)
}

// Crashed reports whether MarkCrash was called.
func (t *Tracer) Crashed() bool { return t.crashed.Load() }

// EventCount returns the number of events recorded (including any later
// overwritten by ring mode).
func (t *Tracer) EventCount() uint64 { return t.events.Load() }

// Threads returns every thread buffer, in first-emission order. The caller
// must not race it with active emission.
func (t *Tracer) Threads() []*ThreadBuf {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*ThreadBuf, len(t.all))
	copy(out, t.all)
	return out
}

// Obs bundles the tracer and metrics registry that one simulated machine's
// components share. Components hold a *Obs that is nil when observability is
// off — the zero-overhead contract is that nil check.
type Obs struct {
	Tracer  *Tracer
	Metrics *Registry

	// Intervals collects GC overlay annotations (epoch spans, STW pauses,
	// recovery) in machine-global virtual time, the series a timeline
	// renders under its latency windows.
	Intervals *IntervalLog

	// Series, when set, is the run's windowed time series (per-window SLO
	// metrics and worst-request exemplars). Wired by serving harnesses; nil
	// for runs without a request stream.
	Series *TimeSeries

	// OnCrash, when set, runs after a simulated power failure is recorded
	// (Device.Crash). Flight-recorder harnesses use it to dump the ring at
	// the moment of the fault.
	OnCrash func(*Obs)
}

// New builds an enabled observability bundle. ringCap > 0 selects
// flight-recorder mode (see NewTracer).
func New(ringCap int) *Obs {
	return &Obs{Tracer: NewTracer(ringCap), Metrics: NewRegistry(), Intervals: &IntervalLog{}}
}
