package obsv

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"ffccd/internal/sim"
)

// omTestCollector builds a collector exercising every exported family:
// histograms, counters, groups, and a windowed series whose scheme name needs
// every label-escape rule (backslash, quote, newline).
func omTestCollector(extraOps uint64) (*Collector, string) {
	scheme := "ff\"c\\cd\nx"
	cfg := sim.DefaultConfig()
	col := NewCollector(0)
	o := col.NewObs("serving/" + scheme)
	ctx := sim.NewCtx(&cfg)
	o.Tracer.Name(ctx, "loader")
	o.Tracer.Instant(ctx, KindTrigger, 1)
	o.Metrics.Hist("read_barrier_cycles").Observe(40)
	o.Metrics.Counter("trigger_attempts").Add(3)
	o.Metrics.RegisterGroup("device", func() map[string]uint64 {
		return map[string]uint64{"loads": 10, "clwbs": 2}
	})
	ts := NewTimeSeries(scheme, 1000, 2)
	for i := uint64(0); i < 5+extraOps; i++ {
		s := sampleAt(i*400+100, 20+i, i)
		s.Cause.Scheme = scheme
		if i == 2 {
			s.Cause.STWWait, s.Cause.STWRef = 500, 900
		}
		ts.ObserveOp(s)
	}
	ts.AddInterval(IntervalSTW, 850, 900, 1)
	o.Series = ts
	return col, scheme
}

// parseOM splits an OpenMetrics exposition into families and samples,
// failing the test on any structural violation: samples before their
// family's HELP/TYPE, non-contiguous families, names that map to no
// declared family, or a missing final # EOF.
func parseOM(t *testing.T, text string) map[string]float64 {
	t.Helper()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if lines[len(lines)-1] != "# EOF" {
		t.Fatalf("last line %q, want # EOF", lines[len(lines)-1])
	}
	helped, typed := map[string]string{}, map[string]string{}
	samples := map[string]float64{}
	current := "" // family whose contiguous sample block we are in
	done := map[string]bool{}
	for _, line := range lines[:len(lines)-1] {
		if h, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(h, " ")
			if helped[name] != "" {
				t.Fatalf("duplicate HELP for %s", name)
			}
			helped[name] = help
			continue
		}
		if ty, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(ty, " ")
			if helped[name] == "" {
				t.Fatalf("TYPE before HELP for %s", name)
			}
			typed[name] = typ
			if done[name] {
				t.Fatalf("family %s re-opened (samples must be contiguous)", name)
			}
			if current != "" {
				done[current] = true
			}
			current = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		// Sample: name[{labels}] value [# exemplar]
		body, _, _ := strings.Cut(line, " # ")
		key := body
		sp := strings.LastIndex(body, " ")
		if sp < 0 {
			t.Fatalf("malformed sample %q", line)
		}
		key, valStr := body[:sp], body[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("sample %q value: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_total", "_count", "_sum"} {
			if b, ok := strings.CutSuffix(name, suf); ok && typed[b] != "" {
				base = b
				break
			}
		}
		if typed[base] == "" {
			t.Fatalf("sample %q belongs to no declared family", line)
		}
		if base != current {
			t.Fatalf("sample for %s inside %s's block", base, current)
		}
		if typed[base] == "counter" && !strings.HasPrefix(strings.TrimPrefix(name, base), "_total") {
			t.Fatalf("counter sample %q lacks _total", line)
		}
		samples[key] = val
	}
	return samples
}

func TestOpenMetricsConformance(t *testing.T) {
	col, scheme := omTestCollector(0)
	var buf bytes.Buffer
	if err := col.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	samples := parseOM(t, out)

	// Label escaping: the hostile scheme name must round-trip through the
	// documented escape sequences, never raw.
	if want := `scheme="ff\"c\\cd\nx"`; !strings.Contains(out, want) {
		t.Fatalf("escaped scheme label %q not found in:\n%s", want, out)
	}
	if strings.Contains(out, scheme) {
		t.Fatal("raw (unescaped) scheme value leaked into the exposition")
	}

	// Exemplar syntax on the worst request of a window, with its cause labels.
	if !strings.Contains(out, `_total{`) || !strings.Contains(out, ` # {dominant="stw"`) {
		t.Fatalf("window exemplar missing:\n%s", out)
	}

	// Spot-check families all made it.
	for _, want := range []string{
		"ffccd_trace_events_total{", "ffccd_read_barrier_cycles_count{",
		`key="trigger_attempts"`, `ffccd_device_total{process="serving/ff\"c\\cd\nx",key="clwbs"}`,
		"ffccd_window_requests_total{", "ffccd_window_p999_cycles{", "ffccd_window_p50_cycles{",
		`ffccd_window_cycles{`, `ffccd_window_overlay{`,
	} {
		found := false
		for k := range samples {
			if strings.Contains(k, want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no sample matching %q", want)
		}
	}

	// Counter monotonicity: a collector that has seen strictly more work
	// must never decrease any counter sample.
	col2, _ := omTestCollector(3)
	buf.Reset()
	if err := col2.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	samples2 := parseOM(t, buf.String())
	checked := 0
	for k, v1 := range samples {
		if !strings.Contains(k, "_total") {
			continue
		}
		v2, ok := samples2[k]
		if !ok {
			continue // windows beyond the first run's range are new series
		}
		checked++
		if v2 < v1 {
			t.Fatalf("counter %s decreased %v -> %v", k, v1, v2)
		}
	}
	if checked == 0 {
		t.Fatal("monotonicity check matched no counter samples")
	}
}

func TestOpenMetricsNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"read_barrier_cycles": "read_barrier_cycles",
		"p99.9-latency":       "p99_9_latency",
		"9lives":              "_lives",
	} {
		if got := omName(in); got != want {
			t.Fatalf("omName(%q) = %q want %q", in, got, want)
		}
	}
	if got := omEscape("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Fatalf("omEscape = %q", got)
	}
	ex := omExemplar([]omLabel{{"dominant", "stw"}}, 42)
	if ex != fmt.Sprintf("{dominant=%q} 42", "stw") {
		t.Fatalf("omExemplar = %q", ex)
	}
}
