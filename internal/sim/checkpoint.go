package sim

// Checkpoint/restore for the per-thread simulation state (clock, TLB,
// pending-flush count). Checkpoints are deep value copies: restoring one into
// a fresh Ctx reproduces the simulated-visible state bit-identically, which
// the fork-based experiment driver relies on (DESIGN.md §7). The *Into
// variants reuse a previously allocated checkpoint's buffers so a driver that
// re-checkpoints at every candidate fork point pays no steady-state
// allocation.

// setAssocState is a deep copy of one set-associative array's contents.
type setAssocState struct {
	Tags []uint64
	Age  []uint32
	Tick uint32
}

func (s *setAssoc) checkpointInto(c *setAssocState) {
	if cap(c.Tags) < len(s.tags) {
		c.Tags = make([]uint64, len(s.tags))
		c.Age = make([]uint32, len(s.age))
	}
	c.Tags = c.Tags[:len(s.tags)]
	c.Age = c.Age[:len(s.age)]
	copy(c.Tags, s.tags)
	copy(c.Age, s.age)
	c.Tick = s.tick
}

func (s *setAssoc) restore(c *setAssocState) {
	copy(s.tags, c.Tags)
	copy(s.age, c.Age)
	s.tick = c.Tick
}

// TLBCheckpoint captures the full translation hierarchy: resident tags, LRU
// ages and ticks for both L1 structures and the unified L2, plus the miss
// counters.
type TLBCheckpoint struct {
	L14K, L12M, L2               setAssocState
	Accesses, L1Misses, L2Misses uint64
}

// Checkpoint returns a deep copy of the TLB state.
func (t *TLB) Checkpoint() *TLBCheckpoint {
	c := &TLBCheckpoint{}
	t.CheckpointInto(c)
	return c
}

// CheckpointInto captures the TLB state into c, reusing c's buffers. Any
// deferred streak bookkeeping is materialized first so the captured arrays
// and counters are exact.
func (t *TLB) CheckpointInto(c *TLBCheckpoint) {
	t.syncStreak()
	t.l14k.checkpointInto(&c.L14K)
	t.l12m.checkpointInto(&c.L12M)
	t.l2.checkpointInto(&c.L2)
	c.Accesses, c.L1Misses, c.L2Misses = t.Accesses, t.L1Misses, t.L2Misses
}

// Restore overwrites the TLB state from c. The TLB must have the same
// geometry (entry/way configuration) as the one the checkpoint was taken
// from.
func (t *TLB) Restore(c *TLBCheckpoint) {
	t.l14k.restore(&c.L14K)
	t.l12m.restore(&c.L12M)
	t.l2.restore(&c.L2)
	t.Accesses, t.L1Misses, t.L2Misses = c.Accesses, c.L1Misses, c.L2Misses
	// The same-page streak trusts its slot index without revalidation, so a
	// restore (unlike the validated mruIdx/mruTag hints) must disarm it, and
	// any deferred hits belong to the overwritten timeline — drop them.
	t.streakMask = 0
	t.streakLen = 0
}

// Restore overwrites the per-category counters from a Snapshot.
func (c *Clock) Restore(snap [NumCategories]uint64) {
	copy(c.cycles[:], snap[:])
}

// CtxCheckpoint captures one simulation context: its clock's per-category
// cycle counters, attribution category, pending-flush count, and TLB. HW is
// deliberately absent — every fork point in the experiment driver sits
// outside any defragmentation epoch, where parent contexts carry no
// per-core hardware state (the checklookup unit lives only on transient
// derived contexts).
type CtxCheckpoint struct {
	Cycles         [NumCategories]uint64
	Cat            Category
	PendingFlushes int
	TLB            TLBCheckpoint
}

// Checkpoint returns a deep copy of the context's simulated state.
func (x *Ctx) Checkpoint() *CtxCheckpoint {
	c := &CtxCheckpoint{}
	x.CheckpointInto(c)
	return c
}

// CheckpointInto captures the context's simulated state into c, reusing c's
// buffers.
func (x *Ctx) CheckpointInto(c *CtxCheckpoint) {
	c.Cycles = x.Clock.Snapshot()
	c.Cat = x.Cat
	c.PendingFlushes = x.PendingFlushes
	x.TLB.CheckpointInto(&c.TLB)
}

// Restore overwrites the context's simulated state from c. The context keeps
// its own Clock/TLB instances (their contents are overwritten) and its host
// Shard; HW is cleared.
func (x *Ctx) Restore(c *CtxCheckpoint) {
	x.Clock.Restore(c.Cycles)
	x.Cat = c.Cat
	x.PendingFlushes = c.PendingFlushes
	x.TLB.Restore(&c.TLB)
	x.HW = nil
}
