package sim

// TLB models the per-core translation hierarchy from Table 2: a split L1
// (separate 4 KB and 2 MB structures) backed by a unified L2. It is a
// functional model — it tracks which virtual page numbers are resident and
// charges the configured hit/miss latencies. Fragmentation shows up here: a
// bloated footprint touches more pages, thrashing the TLB exactly as the
// paper's Figure 1 throughput decline describes.
//
// A TLB belongs to one simulated hardware thread and is not safe for
// concurrent use.
type TLB struct {
	cfg *Config

	l14k setAssoc // 4 KB pages
	l12m setAssoc // 2 MB pages
	l2   setAssoc // unified

	// Counters for reporting.
	Accesses uint64
	L1Misses uint64
	L2Misses uint64

	// Same-page streak fast path (ROADMAP: skip the VPN shift/mask and the
	// set-associative lookup entirely while consecutive accesses stay on one
	// page). The streak always describes the immediately preceding Access —
	// nothing else mutates the L1 arrays between Accesses — so streakIdx
	// needs no tag revalidation, but it MUST be cleared by Flush and by a
	// checkpoint Restore (unlike mruIdx/mruTag it is trusted, not validated).
	// A streak hit replicates an L1 MRU hit exactly — Accesses++, tick bump,
	// age refresh, TLB1Latency — but the bookkeeping is batched in streakLen
	// and materialized lazily; cycles stay bit-identical, pinned by the
	// goldens and TestTLBStreakFastPathBitIdentical.
	streakMask  uint64 // ^(pageSize-1); 0 = no streak armed
	streakTag   uint64 // va & streakMask of the last translation
	streakShift uint
	streakSA    *setAssoc
	streakIdx   int
	// streakLen counts streak hits whose bookkeeping is deferred: a hit only
	// bumps this counter, and syncStreak materializes the batch (Accesses,
	// tick, age refresh) the moment anything else needs the arrays or the
	// counters. N deferred hits materialize to the exact state N immediate
	// hits would have left — nothing else touches the streak's set-assoc
	// between hits — so cycles and checkpoints stay bit-identical.
	streakLen uint64
}

// setAssoc is a small set-associative array of tags with round-robin-ish LRU.
type setAssoc struct {
	sets int
	mask uint64 // sets-1 when sets is a power of two, else 0 (use modulo)
	ways int
	tags []uint64 // sets*ways entries; 0 means invalid (VPN 0 is never used)
	age  []uint32
	tick uint32
	// mruIdx/mruTag are a host-side hint for consecutive translations of the
	// same page — always validated against tags, so stale values (including
	// across a checkpoint restore) only cost the scan they avoid. mruTag 0
	// never matches (VPN tags are biased nonzero).
	mruIdx int
	mruTag uint64
}

func newSetAssoc(entries, ways int) setAssoc {
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	s := setAssoc{
		sets: sets,
		ways: ways,
		tags: make([]uint64, sets*ways),
		age:  make([]uint32, sets*ways),
	}
	if sets&(sets-1) == 0 {
		s.mask = uint64(sets - 1)
	}
	return s
}

// setBase returns the first slice index of tag's set. The set count is a
// runtime value, so the masked path spares a hardware divide on every
// translation for the (default-config) power-of-two geometries.
func (s *setAssoc) setBase(tag uint64) int {
	if s.sets&(s.sets-1) == 0 {
		return int(tag&s.mask) * s.ways
	}
	return int(tag%uint64(s.sets)) * s.ways
}

// lookup probes for tag; on miss it inserts tag, evicting the LRU way.
// Returns true on hit.
func (s *setAssoc) lookup(tag uint64) bool {
	if tag == s.mruTag && s.tags[s.mruIdx] == tag {
		s.tick++
		s.age[s.mruIdx] = s.tick
		return true
	}
	s.tick++
	base := s.setBase(tag)
	victim := base
	oldest := s.age[base]
	for i := 0; i < s.ways; i++ {
		idx := base + i
		if s.tags[idx] == tag {
			s.age[idx] = s.tick
			s.mruIdx, s.mruTag = idx, tag
			return true
		}
		if s.age[idx] < oldest {
			oldest = s.age[idx]
			victim = idx
		}
	}
	s.tags[victim] = tag
	s.age[victim] = s.tick
	s.mruIdx, s.mruTag = victim, tag
	return false
}

// contains probes without inserting or touching LRU state.
func (s *setAssoc) contains(tag uint64) bool {
	base := s.setBase(tag)
	for i := 0; i < s.ways; i++ {
		if s.tags[base+i] == tag {
			return true
		}
	}
	return false
}

// flush invalidates all entries.
func (s *setAssoc) flush() {
	for i := range s.tags {
		s.tags[i] = 0
		s.age[i] = 0
	}
}

// NewTLB builds the Table 2 TLB hierarchy.
func NewTLB(cfg *Config) *TLB {
	return &TLB{
		cfg:  cfg,
		l14k: newSetAssoc(cfg.L1TLB4KEntries, cfg.L1TLB4KWays),
		l12m: newSetAssoc(cfg.L1TLB2MEntries, cfg.L1TLB2MWays),
		l2:   newSetAssoc(cfg.L2TLBEntries, cfg.L2TLBWays),
	}
}

// Access translates virtual address va under the given page-size shift
// (12 for 4 KB pages, 21 for 2 MB pages) and returns the cycles charged.
func (t *TLB) Access(va uint64, pageShift uint) uint64 {
	if t.streakMask != 0 && pageShift == t.streakShift && va&t.streakMask == t.streakTag {
		t.streakLen++
		return t.cfg.TLB1Latency
	}
	t.syncStreak()
	t.Accesses++
	// Tags must be nonzero; VPN 0 would alias the invalid marker, so bias by 1.
	vpn := (va >> pageShift) + 1
	cycles := t.cfg.TLB1Latency
	l1 := &t.l14k
	if pageShift >= 21 {
		l1 = &t.l12m
	}
	hit := l1.lookup(vpn)
	// lookup set l1.mruIdx to vpn's slot on hit and insert alike, so the next
	// same-page access can refresh its recency without re-probing.
	t.streakMask = ^uint64(0) << pageShift
	t.streakTag = va & t.streakMask
	t.streakShift = pageShift
	t.streakSA = l1
	t.streakIdx = l1.mruIdx
	if hit {
		return cycles
	}
	t.L1Misses++
	cycles += t.cfg.TLB2Latency
	if t.l2.lookup(vpn) {
		return cycles
	}
	t.L2Misses++
	cycles += t.cfg.TLBMissPenalty + t.cfg.TLBWalkPenaltyExtra
	return cycles
}

// syncStreak materializes the deferred streak bookkeeping. Must run before
// anything reads or mutates the L1 arrays, the tick clocks, or Accesses —
// i.e. on every non-streak Access, on Flush, and before a checkpoint.
func (t *TLB) syncStreak() {
	if t.streakLen == 0 {
		return
	}
	t.Accesses += t.streakLen
	sa := t.streakSA
	sa.tick += uint32(t.streakLen)
	sa.age[t.streakIdx] = sa.tick
	t.streakLen = 0
}

// AccessCount is the total translation count including streak hits whose
// bookkeeping is still deferred. Readers (snapshot groups, tests) must use
// this instead of the Accesses field, which lags by the open streak.
func (t *TLB) AccessCount() uint64 { return t.Accesses + t.streakLen }

// Flush empties the whole hierarchy (e.g. on a simulated crash/restart).
func (t *TLB) Flush() {
	t.syncStreak()
	t.l14k.flush()
	t.l12m.flush()
	t.l2.flush()
	t.streakMask = 0
}
