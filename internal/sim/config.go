// Package sim provides the cycle-accounting cost model and functional TLB
// hierarchy used to evaluate FFCCD. All latencies default to Table 2 of the
// paper (Sniper simulation parameters). The model is analytical rather than
// cycle-accurate: every simulated memory operation charges the corresponding
// latency to a per-thread Clock, attributed to a Category so that the
// phase-breakdown figures (Fig. 5, 14, 15) can be regenerated.
package sim

// Config holds the machine parameters from Table 2 of the paper plus the
// FFCCD structure latencies. All values are in processor cycles at 2.6 GHz.
type Config struct {
	// Core cache latencies.
	L1Latency uint64 // L1D access time (4 cycles)
	L2Latency uint64 // L2 access time (25 cycles)

	// Memory latencies.
	DRAMLatency    uint64 // 120 cycles
	PMReadLatency  uint64 // 360 cycles
	PMWriteLatency uint64 // 360 cycles (symmetric latency; bandwidth asymmetry is modelled separately)
	WPQLatency     uint64 // 30 cycles to insert into / drain the write pending queue

	// TLB hierarchy.
	TLB1Latency    uint64 // 1 cycle L1 TLB access
	TLB2Latency    uint64 // 4 cycles L2 TLB access
	TLBMissPenalty uint64 // 60 cycles 2MB (and 4KB) TLB miss penalty
	// TLBWalkPenaltyExtra adds to every L2 TLB miss, modelling page-table
	// walks that land in persistent memory (0 keeps the pure Table 2
	// model; the Figure 1 motivation experiment sets it to the PM read
	// latency — see EXPERIMENTS.md).
	TLBWalkPenaltyExtra uint64
	L1TLB4KEntries      int // 64 entries, 4-way
	L1TLB4KWays         int
	L1TLB2MEntries      int // 32 entries, 4-way
	L1TLB2MWays         int
	L2TLBEntries        int // 1536 entries, 6-way
	L2TLBWays           int

	// FFCCD architecture support (Table 2, bottom block).
	PMFTLBEntries     int    // 16
	RBBEntries        int    // 8
	BloomFilterBytes  int    // 1024
	BloomFilters      int    // 8 in-memory bloom filters
	BloomMissLatency  uint64 // 120 cycles (fetch filter from memory)
	BloomCheckLatency uint64 // 2 cycles
	PMFTLBLatency     uint64 // 4 cycles
	RBBLatency        uint64 // 30 cycles

	// Simulated shared cache geometry (persistence-relevant cache model).
	CacheBytes    int // 3 MB L2
	CacheWays     int // 16
	CacheLineSize int // 64

	// Write-bandwidth pressure: extra cycles charged per PM line write beyond
	// latency, reflecting the 4 GB/s PM write vs 24 GB/s DRAM bandwidth gap.
	PMWriteBandwidthPenalty uint64
}

// DefaultConfig returns the Table 2 parameters.
func DefaultConfig() Config {
	return Config{
		L1Latency:      4,
		L2Latency:      25,
		DRAMLatency:    120,
		PMReadLatency:  360,
		PMWriteLatency: 360,
		WPQLatency:     30,

		TLB1Latency:    1,
		TLB2Latency:    4,
		TLBMissPenalty: 60,
		L1TLB4KEntries: 64,
		L1TLB4KWays:    4,
		L1TLB2MEntries: 32,
		L1TLB2MWays:    4,
		L2TLBEntries:   1536,
		L2TLBWays:      6,

		PMFTLBEntries:     16,
		RBBEntries:        8,
		BloomFilterBytes:  1024,
		BloomFilters:      8,
		BloomMissLatency:  120,
		BloomCheckLatency: 2,
		PMFTLBLatency:     4,
		RBBLatency:        30,

		CacheBytes:    3 << 20,
		CacheWays:     16,
		CacheLineSize: 64,

		PMWriteBandwidthPenalty: 120, // 24/4 GB/s ratio spread over line writes
	}
}

// CyclesPerSecond is the simulated core frequency (Table 2: 2.6 GHz).
const CyclesPerSecond = 2_600_000_000

// CyclesToMillis converts simulated cycles to milliseconds of simulated time.
func CyclesToMillis(c uint64) float64 {
	return float64(c) / (CyclesPerSecond / 1000)
}
