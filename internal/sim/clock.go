package sim

import (
	"fmt"
	"sync/atomic"
)

// Category attributes simulated cycles to a phase of execution so that the
// defragmentation time breakdowns (Fig. 5, 14, 15) can be reconstructed.
type Category int

const (
	// CatApp is application work: loads, stores, allocation.
	CatApp Category = iota
	// CatMark is the stop-the-world marking phase.
	CatMark
	// CatSummary is the summary phase: page ranking, PMFT construction.
	CatSummary
	// CatCopy is object movement plus the persistence operations that guard
	// it (memcpy, clwb, sfence, relocate) — the "data copy" slice.
	CatCopy
	// CatCheckLookup is the read-barrier relocation-page check and forwarding
	// table lookup — the "check & lookup" slice.
	CatCheckLookup
	// CatGCMisc is other defragmentation work: bitmap upkeep, page release,
	// pacing, terminate.
	CatGCMisc
	// CatRecovery is post-crash recovery work.
	CatRecovery

	numCategories
)

// NumCategories is the number of cycle-attribution categories.
const NumCategories = int(numCategories)

var categoryNames = [...]string{"app", "mark", "summary", "copy", "checklookup", "gcmisc", "recovery"}

func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Clock accumulates simulated cycles per category. A Clock is owned by a
// single thread of execution (goroutine) and is not safe for concurrent use;
// use Stats to merge clocks from multiple threads.
type Clock struct {
	cycles [numCategories]uint64
}

// NewClock returns a zeroed clock.
func NewClock() *Clock { return &Clock{} }

// Add charges n cycles to category cat.
func (c *Clock) Add(cat Category, n uint64) { c.cycles[cat] += n }

// Cycles returns the cycles charged to cat.
func (c *Clock) Cycles(cat Category) uint64 { return c.cycles[cat] }

// Total returns cycles across all categories.
func (c *Clock) Total() uint64 {
	var t uint64
	for _, v := range c.cycles {
		t += v
	}
	return t
}

// GCTotal returns cycles attributed to defragmentation (everything except
// application and recovery work).
func (c *Clock) GCTotal() uint64 {
	return c.cycles[CatMark] + c.cycles[CatSummary] + c.cycles[CatCopy] +
		c.cycles[CatCheckLookup] + c.cycles[CatGCMisc]
}

// Merge adds other's cycles into c.
func (c *Clock) Merge(other *Clock) {
	for i := range c.cycles {
		c.cycles[i] += other.cycles[i]
	}
}

// Reset zeroes all counters.
func (c *Clock) Reset() { c.cycles = [numCategories]uint64{} }

// Snapshot returns a copy of the per-category counters.
func (c *Clock) Snapshot() [NumCategories]uint64 {
	var out [NumCategories]uint64
	copy(out[:], c.cycles[:])
	return out
}

// Ctx is the per-thread simulation context threaded through every simulated
// memory operation: a clock to charge, the category to attribute to, and the
// thread's private TLB state. Ctx values are cheap to copy; WithCat returns a
// derived context charging a different category to the same clock and TLB.
type Ctx struct {
	Clock *Clock
	TLB   *TLB
	Cat   Category

	// PendingFlushes counts clwbs issued by this thread since its last
	// sfence; the device uses it to decide whether a fence stalls.
	PendingFlushes int

	// HW carries per-thread (per-core) hardware model state such as the
	// checklookup unit, opaque to this package.
	HW any

	// Shard is a small per-context integer assigned at NewCtx. Host-side
	// sharded data structures (e.g. the device's statistics counters) use it
	// to spread contexts across shards without touching the simulated state.
	// It never influences simulated cycles.
	Shard uint32

	// derived holds one reusable child context per category for Derived.
	// Host-only: it spares the per-operation heap allocation WithCat pays
	// when the derived context escapes into an interface call.
	derived [numCategories]*Ctx
}

var ctxSeq atomic.Uint32

// NewCtx returns a fresh per-thread context with its own clock and TLB.
func NewCtx(cfg *Config) *Ctx {
	return &Ctx{Clock: NewClock(), TLB: NewTLB(cfg), Cat: CatApp, Shard: ctxSeq.Add(1)}
}

// Charge adds n cycles to the context's current category.
func (x *Ctx) Charge(n uint64) {
	if x.Clock != nil {
		x.Clock.Add(x.Cat, n)
	}
}

// ChargeCat adds n cycles to an explicit category.
func (x *Ctx) ChargeCat(cat Category, n uint64) {
	if x.Clock != nil {
		x.Clock.Add(cat, n)
	}
}

// WithCat returns a copy of the context attributing to cat. The clock and TLB
// are shared with the receiver.
func (x *Ctx) WithCat(cat Category) *Ctx {
	c := *x
	c.Cat = cat
	c.derived = [numCategories]*Ctx{}
	return &c
}

// Derived returns a context equivalent to WithCat(cat) but backed by a
// per-category scratch slot on the receiver, so repeated calls on a hot path
// do not allocate. The returned context has exactly WithCat's semantics: it
// shares the clock and TLB, and receives a *copy* of PendingFlushes and HW —
// mutations of either on the child never propagate back to the parent (the
// fence-stall accounting in Device.Sfence depends on that isolation).
//
// The scratch slot is reused by the next Derived(cat) call on the same
// receiver, so callers must not retain the result across a subsequent call
// with the same category. All uses in this codebase are sequential
// call-then-drop sites.
func (x *Ctx) Derived(cat Category) *Ctx {
	d := x.derived[cat]
	if d == nil {
		d = &Ctx{}
		x.derived[cat] = d
	}
	// Reinitialize field-by-field rather than assigning a whole Ctx value:
	// a struct assignment would wipe the child's own scratch slots.
	d.Clock, d.TLB, d.Cat, d.PendingFlushes, d.HW, d.Shard =
		x.Clock, x.TLB, cat, x.PendingFlushes, x.HW, x.Shard
	return d
}
