package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// accessNoStreak is the pre-streak Access algorithm, kept verbatim as the
// reference the same-page fast path must match cycle-for-cycle.
func accessNoStreak(t *TLB, va uint64, pageShift uint) uint64 {
	t.Accesses++
	vpn := (va >> pageShift) + 1
	cycles := t.cfg.TLB1Latency
	l1 := &t.l14k
	if pageShift >= 21 {
		l1 = &t.l12m
	}
	if l1.lookup(vpn) {
		return cycles
	}
	t.L1Misses++
	cycles += t.cfg.TLB2Latency
	if t.l2.lookup(vpn) {
		return cycles
	}
	t.L2Misses++
	cycles += t.cfg.TLBMissPenalty + t.cfg.TLBWalkPenaltyExtra
	return cycles
}

func TestTLBStreakFastPathBitIdentical(t *testing.T) {
	// Drive a locality-heavy trace (long same-page runs, page switches, 4K/2M
	// mixes, flushes, checkpoint round-trips) through the streak fast path and
	// the reference algorithm; cycles, counters, and array state must match
	// access-for-access.
	cfg := DefaultConfig()
	fast, ref := NewTLB(&cfg), NewTLB(&cfg)
	rng := rand.New(rand.NewSource(7))
	var chk TLBCheckpoint
	page, shift := uint64(0), uint(12)
	for i := 0; i < 200000; i++ {
		switch r := rng.Intn(100); {
		case r < 2: // switch page size
			if shift == 12 {
				shift = 21
			} else {
				shift = 12
			}
			page = rng.Uint64() % (1 << 20)
		case r < 20: // jump to another page
			page = rng.Uint64() % (1 << 20)
		case r == 20: // flush both
			fast.Flush()
			ref.Flush()
		case r == 21: // checkpoint/restore round-trip on the fast TLB only
			fast.CheckpointInto(&chk)
			fast.Restore(&chk)
		case r == 22: // mid-streak counter read must include deferred hits
			if fast.AccessCount() != ref.Accesses {
				t.Fatalf("access %d: AccessCount = %d, reference %d",
					i, fast.AccessCount(), ref.Accesses)
			}
		}
		va := page<<shift | (rng.Uint64() & (1<<shift - 1))
		got, want := fast.Access(va, shift), accessNoStreak(ref, va, shift)
		if got != want {
			t.Fatalf("access %d (va=%#x shift=%d): streak path charged %d, reference %d",
				i, va, shift, got, want)
		}
	}
	if fast.AccessCount() != ref.Accesses || fast.L1Misses != ref.L1Misses || fast.L2Misses != ref.L2Misses {
		t.Fatalf("counters diverged: fast %d/%d/%d ref %d/%d/%d",
			fast.AccessCount(), fast.L1Misses, fast.L2Misses, ref.Accesses, ref.L1Misses, ref.L2Misses)
	}
	var a, b TLBCheckpoint
	fast.CheckpointInto(&a)
	ref.CheckpointInto(&b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("TLB array state diverged between streak path and reference")
	}
}

func TestDefaultConfigTable2(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.DRAMLatency != 120 {
		t.Errorf("DRAM latency = %d, want 120", cfg.DRAMLatency)
	}
	if cfg.PMReadLatency != 360 || cfg.PMWriteLatency != 360 {
		t.Errorf("PM latency = %d/%d, want 360", cfg.PMReadLatency, cfg.PMWriteLatency)
	}
	if cfg.WPQLatency != 30 {
		t.Errorf("WPQ latency = %d, want 30", cfg.WPQLatency)
	}
	if cfg.PMFTLBEntries != 16 || cfg.RBBEntries != 8 || cfg.BloomFilterBytes != 1024 {
		t.Errorf("FFCCD structure sizes wrong: %d/%d/%d", cfg.PMFTLBEntries, cfg.RBBEntries, cfg.BloomFilterBytes)
	}
	if cfg.TLBMissPenalty != 60 || cfg.TLB1Latency != 1 || cfg.TLB2Latency != 4 {
		t.Errorf("TLB latencies wrong")
	}
}

func TestClockAttribution(t *testing.T) {
	c := NewClock()
	c.Add(CatApp, 100)
	c.Add(CatMark, 10)
	c.Add(CatCopy, 20)
	c.Add(CatCheckLookup, 5)
	if got := c.Cycles(CatApp); got != 100 {
		t.Errorf("app cycles = %d, want 100", got)
	}
	if got := c.Total(); got != 135 {
		t.Errorf("total = %d, want 135", got)
	}
	if got := c.GCTotal(); got != 35 {
		t.Errorf("gc total = %d, want 35", got)
	}
}

func TestClockMerge(t *testing.T) {
	a, b := NewClock(), NewClock()
	a.Add(CatApp, 7)
	b.Add(CatApp, 3)
	b.Add(CatRecovery, 11)
	a.Merge(b)
	if a.Cycles(CatApp) != 10 || a.Cycles(CatRecovery) != 11 {
		t.Errorf("merge: got %d app, %d recovery", a.Cycles(CatApp), a.Cycles(CatRecovery))
	}
	a.Reset()
	if a.Total() != 0 {
		t.Errorf("reset: total = %d", a.Total())
	}
}

func TestCtxWithCat(t *testing.T) {
	cfg := DefaultConfig()
	ctx := NewCtx(&cfg)
	ctx.Charge(5)
	gc := ctx.WithCat(CatCopy)
	gc.Charge(9)
	if ctx.Clock.Cycles(CatApp) != 5 || ctx.Clock.Cycles(CatCopy) != 9 {
		t.Errorf("WithCat must share the clock: app=%d copy=%d",
			ctx.Clock.Cycles(CatApp), ctx.Clock.Cycles(CatCopy))
	}
	if gc.TLB != ctx.TLB {
		t.Error("WithCat must share the TLB")
	}
}

func TestCategoryString(t *testing.T) {
	if CatApp.String() != "app" || CatCheckLookup.String() != "checklookup" {
		t.Errorf("category names wrong: %s %s", CatApp, CatCheckLookup)
	}
	if Category(99).String() != "Category(99)" {
		t.Errorf("out-of-range category: %s", Category(99))
	}
}

func TestTLBHitAfterMiss(t *testing.T) {
	cfg := DefaultConfig()
	tlb := NewTLB(&cfg)
	va := uint64(0x12345000)
	first := tlb.Access(va, 12)
	want := cfg.TLB1Latency + cfg.TLB2Latency + cfg.TLBMissPenalty
	if first != want {
		t.Errorf("cold access = %d cycles, want %d", first, want)
	}
	second := tlb.Access(va, 12)
	if second != cfg.TLB1Latency {
		t.Errorf("warm access = %d cycles, want %d", second, cfg.TLB1Latency)
	}
	// Same page, different offset: still a hit.
	third := tlb.Access(va+0xff0, 12)
	if third != cfg.TLB1Latency {
		t.Errorf("same-page access = %d cycles, want %d", third, cfg.TLB1Latency)
	}
}

func TestTLBHugePagesSeparateStructure(t *testing.T) {
	cfg := DefaultConfig()
	tlb := NewTLB(&cfg)
	tlb.Access(0x40000000, 21)
	if got := tlb.Access(0x40000000+1<<20, 21); got != cfg.TLB1Latency {
		t.Errorf("2MB same-page access = %d, want L1 hit", got)
	}
	if tlb.L1Misses != 1 {
		t.Errorf("L1 misses = %d, want 1", tlb.L1Misses)
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	cfg := DefaultConfig()
	tlb := NewTLB(&cfg)
	// Touch far more 4K pages than L2 TLB capacity; early pages must miss again.
	n := cfg.L2TLBEntries * 4
	for i := 0; i < n; i++ {
		tlb.Access(uint64(i)<<12, 12)
	}
	missesBefore := tlb.L2Misses
	tlb.Access(0, 12)
	if tlb.L2Misses == missesBefore {
		t.Error("expected evicted page to miss in L2 TLB")
	}
}

func TestTLBFlush(t *testing.T) {
	cfg := DefaultConfig()
	tlb := NewTLB(&cfg)
	tlb.Access(0x1000, 12)
	tlb.Flush()
	if got := tlb.Access(0x1000, 12); got == cfg.TLB1Latency {
		t.Error("post-flush access should miss")
	}
}

func TestTLBMoreDistinctPagesMoreCycles(t *testing.T) {
	// The fragmentation→slowdown mechanism: the same number of accesses over
	// more distinct pages must cost more cycles.
	cfg := DefaultConfig()
	cost := func(pages int) uint64 {
		tlb := NewTLB(&cfg)
		var total uint64
		for i := 0; i < 20000; i++ {
			total += tlb.Access(uint64(i%pages)<<12, 12)
		}
		return total
	}
	compact, sparse := cost(32), cost(8192)
	if sparse <= compact {
		t.Errorf("sparse footprint (%d cyc) should cost more than compact (%d cyc)", sparse, compact)
	}
}

func TestSetAssocProperty(t *testing.T) {
	// Property: immediately after lookup(tag), contains(tag) is true.
	f := func(tags []uint64) bool {
		s := newSetAssoc(64, 4)
		for _, tag := range tags {
			if tag == 0 {
				tag = 1
			}
			s.lookup(tag)
			if !s.contains(tag) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclesToMillis(t *testing.T) {
	if got := CyclesToMillis(CyclesPerSecond); got != 1000 {
		t.Errorf("1s of cycles = %v ms, want 1000", got)
	}
}

func TestTLBWalkPenaltyExtra(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TLBWalkPenaltyExtra = cfg.PMReadLatency
	tlb := NewTLB(&cfg)
	cold := tlb.Access(0x7000000, 12)
	want := cfg.TLB1Latency + cfg.TLB2Latency + cfg.TLBMissPenalty + cfg.PMReadLatency
	if cold != want {
		t.Errorf("cold access with PM page walk = %d, want %d", cold, want)
	}
	if warm := tlb.Access(0x7000000, 12); warm != cfg.TLB1Latency {
		t.Errorf("warm access = %d", warm)
	}
}

func TestChargeCatIndependentOfCurrent(t *testing.T) {
	cfg := DefaultConfig()
	ctx := NewCtx(&cfg)
	ctx.Cat = CatApp
	ctx.ChargeCat(CatRecovery, 42)
	if ctx.Clock.Cycles(CatRecovery) != 42 || ctx.Clock.Cycles(CatApp) != 0 {
		t.Error("ChargeCat attributed to the wrong category")
	}
}

func TestNilClockChargeSafe(t *testing.T) {
	ctx := &Ctx{} // no clock, no TLB
	ctx.Charge(100)
	ctx.ChargeCat(CatMark, 100) // must not panic
}
