package workload_test

import (
	"testing"

	"ffccd/internal/alloc"
	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
	"ffccd/internal/workload"
)

func setup(t *testing.T) (*pmop.Pool, *sim.Ctx) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.CacheBytes = 256 * 1024
	rt := pmop.NewRuntime(&cfg, 128<<20)
	reg := pmop.NewRegistry()
	ds.RegisterTypes(reg)
	p, err := rt.Create("wl", 64<<20, 12, reg)
	if err != nil {
		t.Fatal(err)
	}
	return p, sim.NewCtx(&cfg)
}

func TestWorkloadPhases(t *testing.T) {
	p, ctx := setup(t)
	l, _ := ds.NewList(ctx, p)
	cfg := workload.Scaled(0.1) // 2000 init, 1600 per phase
	res, err := workload.Run(ctx, p, l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 4 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	if res.Phases[0].Name != "init" || res.Phases[3].Name != "delete2" {
		t.Fatal("phase names wrong")
	}
	// Live data shrinks in delete phases, grows in insert.
	if l.Len() != 2000-1600+1600-1600 {
		t.Fatalf("final live keys = %d", l.Len())
	}
	// Without defragmentation the delete phases leave fragmentation behind.
	if res.Phases[1].End.FragRatio <= 1.2 {
		t.Errorf("delete phase fragR = %.2f, expected fragmentation", res.Phases[1].End.FragRatio)
	}
	if res.AvgFragRatio() <= 1.0 {
		t.Errorf("avg fragR = %.2f", res.AvgFragRatio())
	}
	if res.TotalCycles == 0 || res.TotalOps != 4800 {
		t.Errorf("totals: %d cycles %d ops", res.TotalCycles, res.TotalOps)
	}
}

func TestWorkloadWithDefragReducesFootprint(t *testing.T) {
	run := func(scheme core.Scheme) float64 {
		p, ctx := setup(t)
		l, _ := ds.NewList(ctx, p)
		cfg := workload.Scaled(0.1)
		if scheme != core.SchemeNone {
			opt := core.DefaultOptions()
			opt.Scheme = scheme
			eng := core.NewEngine(p, opt)
			defer eng.Close()
			gcCtx := sim.NewCtx(p.Config())
			cfg.Maintenance = func() {
				if p.Heap().Frag(p.PageShift()).FragRatio > opt.TriggerRatio {
					eng.RunCycle(gcCtx)
				}
			}
		}
		res, err := workload.Run(ctx, p, l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgFragRatio()
	}
	baseline := run(core.SchemeNone)
	ffccd := run(core.SchemeFFCCDCheckLookup)
	if ffccd >= baseline {
		t.Errorf("FFCCD avg fragR %.2f not better than baseline %.2f", ffccd, baseline)
	}
}

func TestWorkloadKeyCap(t *testing.T) {
	p, ctx := setup(t)
	s, _ := ds.NewStringStore(ctx, p, 2048)
	cfg := workload.Scaled(0.05)
	cfg.KeyCap = 2048
	if _, err := workload.Run(ctx, p, s, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPreSampleAndMaintenanceOrdering(t *testing.T) {
	p, ctx := setup(t)
	l, _ := ds.NewList(ctx, p)
	cfg := workload.Scaled(0.05)
	var order []string
	cfg.PreSample = func() { order = append(order, "pre") }
	cfg.Maintenance = func() { order = append(order, "maint") }
	if _, err := workload.Run(ctx, p, l, cfg); err != nil {
		t.Fatal(err)
	}
	if len(order) < 4 || order[0] != "pre" || order[1] != "maint" {
		t.Fatalf("hook order wrong: %v", order[:4])
	}
	for i := 0; i+1 < len(order); i += 2 {
		if order[i] != "pre" || order[i+1] != "maint" {
			t.Fatalf("hooks interleaved wrongly at %d: %v", i, order[i:i+2])
		}
	}
}

func TestKeyBaseDisjointRanges(t *testing.T) {
	p, ctx := setup(t)
	l, _ := ds.NewList(ctx, p)
	cfg := workload.Scaled(0.02)
	cfg.KeyBase = 1 << 40
	if _, err := workload.Run(ctx, p, l, cfg); err != nil {
		t.Fatal(err)
	}
	// Every surviving key must carry the base.
	count := 0
	l.Walk(ctx, func(key uint64, _ pmop.Ptr) bool {
		count++
		if key < 1<<40 {
			t.Errorf("key %d below the key base", key)
		}
		return true
	})
	if count == 0 {
		t.Error("no keys survived")
	}
}

func TestScaledConfig(t *testing.T) {
	base := workload.DefaultConfig()
	half := workload.Scaled(0.5)
	if half.InitInserts != base.InitInserts/2 || half.PhaseOps != base.PhaseOps/2 {
		t.Errorf("Scaled(0.5) = %d/%d, want %d/%d",
			half.InitInserts, half.PhaseOps, base.InitInserts/2, base.PhaseOps/2)
	}
	if half.ValueSize != base.ValueSize || half.SampleEvery != base.SampleEvery {
		t.Error("Scaled must only change the op counts")
	}
}

func TestAvgFragRatioZeroLive(t *testing.T) {
	if (workload.PhaseResult{AvgFootprint: 10}).AvgFragRatio() != 0 {
		t.Error("phase with zero live size must report ratio 0, not +Inf")
	}
	if (workload.Result{AvgFootprint: 10}).AvgFragRatio() != 0 {
		t.Error("result with zero live size must report ratio 0, not +Inf")
	}
}

func TestRunIsSeedDeterministic(t *testing.T) {
	run := func() (workload.Result, alloc.FragStats) {
		cfg := sim.DefaultConfig()
		rt := pmop.NewRuntime(&cfg, 64<<20)
		reg := pmop.NewRegistry()
		ds.RegisterTypes(reg)
		p, err := rt.Create("det", 32<<20, 12, reg)
		if err != nil {
			t.Fatal(err)
		}
		ctx := sim.NewCtx(&cfg)
		s, err := ds.NewList(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		wcfg := workload.Config{InitInserts: 800, PhaseOps: 600, ValueSize: 64, Seed: 5, SampleEvery: 100}
		res, err := workload.Run(ctx, p, s, wcfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, p.Heap().Frag(12)
	}
	r1, f1 := run()
	r2, f2 := run()
	if r1.TotalOps != r2.TotalOps || r1.AvgFootprint != r2.AvgFootprint || r1.AvgLive != r2.AvgLive {
		t.Errorf("two identical runs diverged: %+v vs %+v", r1, r2)
	}
	if f1 != f2 {
		t.Errorf("final fragmentation diverged: %+v vs %+v", f1, f2)
	}
}

func TestValueJitterVariesSizes(t *testing.T) {
	cfg := sim.DefaultConfig()
	rt := pmop.NewRuntime(&cfg, 64<<20)
	reg := pmop.NewRegistry()
	ds.RegisterTypes(reg)
	p, err := rt.Create("jit", 32<<20, 12, reg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewCtx(&cfg)
	s, err := ds.NewList(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.Config{InitInserts: 400, PhaseOps: 200, ValueSize: 64, ValueJitter: 48, Seed: 9, SampleEvery: 100}
	if _, err := workload.Run(ctx, p, s, wcfg); err != nil {
		t.Fatal(err)
	}
	sizes := map[int]bool{}
	s.Walk(ctx, func(k uint64, _ pmop.Ptr) bool {
		if v, ok := s.Get(ctx, k); ok {
			sizes[len(v)] = true
		}
		return len(sizes) < 4
	})
	if len(sizes) < 4 {
		t.Errorf("jittered workload produced only %d distinct value sizes", len(sizes))
	}
}
