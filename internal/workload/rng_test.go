package workload

import (
	"testing"
	"time"
)

// TestCounterSourceSkipMatchesSequentialDraws pins the property the fork
// driver depends on: skip(n) lands on exactly the state n sequential draws
// produce, for every n, so a resumed runner replays the same stream a
// scratch runner would.
func TestCounterSourceSkipMatchesSequentialDraws(t *testing.T) {
	for _, seed := range []int64{0, 1, 2, -7, 1 << 40} {
		ref := newCountingSource(seed)
		var stream [300]uint64
		for i := range stream {
			stream[i] = ref.Uint64()
		}
		for _, n := range []uint64{0, 1, 2, 99, 255, 299} {
			s := newCountingSource(seed)
			s.skip(n)
			if s.draws != n {
				t.Fatalf("seed %d: skip(%d) left draws=%d", seed, n, s.draws)
			}
			for i := n; i < uint64(len(stream)); i++ {
				if got := s.Uint64(); got != stream[i] {
					t.Fatalf("seed %d skip(%d): draw %d = %#x, sequential %#x",
						seed, n, i, got, stream[i])
				}
			}
		}
	}
}

// TestCounterSourceSkipIsConstantTime pins the tentpole claim: positioning a
// source billions of draws into its stream is O(1), not O(draws). A
// draw-and-discard implementation would spend years here.
func TestCounterSourceSkipIsConstantTime(t *testing.T) {
	s := newCountingSource(42)
	start := time.Now()
	s.skip(1 << 40) // ~10¹² draws
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("skip(2^40) took %v — restore is not O(1)", elapsed)
	}
	// The landed position must still be exact: one more draw equals the
	// closed-form draw 2^40+1.
	pos := uint64(1<<40) + 1
	want := mix64(s.base + pos*sm64Gamma)
	if got := s.Uint64(); got != want {
		t.Fatalf("draw after skip(2^40) = %#x, want %#x", got, want)
	}
}

// TestCounterSourceSeedsAreUncorrelated guards the seed scrambler: the
// drivers hand out adjacent seeds (spec.Seed+1, tid·101), which must select
// streams that differ immediately and don't collide pairwise over a prefix.
func TestCounterSourceSeedsAreUncorrelated(t *testing.T) {
	seen := map[uint64]int64{}
	for seed := int64(0); seed < 64; seed++ {
		s := newCountingSource(seed)
		v := s.Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("seeds %d and %d share first draw %#x", prev, seed, v)
		}
		seen[v] = seed
	}
	// Shifted-copy check: seed k's stream must not be seed k+1's shifted by
	// one draw (the failure mode of an unscrambled Weyl base).
	a := newCountingSource(10)
	b := newCountingSource(11)
	a.Uint64()
	if a.Uint64() == b.Uint64() {
		t.Fatal("adjacent seeds produce shifted copies of one stream")
	}
}

// TestCounterSourceSeedResets pins Seed(): same seed, same stream, draws
// rewound.
func TestCounterSourceSeedReset(t *testing.T) {
	s := newCountingSource(5)
	first := s.Uint64()
	s.Uint64()
	s.Seed(5)
	if s.draws != 0 {
		t.Fatalf("Seed left draws=%d", s.draws)
	}
	if got := s.Uint64(); got != first {
		t.Fatalf("re-seeded first draw %#x != original %#x", got, first)
	}
}

// TestCheckpointRestorePositionsRNG runs a real runner, checkpoints it
// mid-run, resumes, and verifies the resumed source is positioned exactly at
// the checkpointed draw count — the RunnerCheckpoint → counterSource
// contract (Draws is the entire RNG state).
func TestCheckpointRestoreRNGState(t *testing.T) {
	ref := newCountingSource(3)
	for i := 0; i < 1234; i++ {
		ref.Uint64()
	}
	clone := newCountingSource(3)
	clone.skip(ref.draws)
	for i := 0; i < 10; i++ {
		if a, b := ref.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("restored stream diverges at +%d: %#x vs %#x", i, a, b)
		}
	}
}
