package workload

import (
	"fmt"
	"math/rand"

	"ffccd/internal/ds"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// counterSource is a counter-based (SplitMix64-style) random source: draw i
// of stream seed is the pure function mix64(base(seed) + (i+1)·γ). The
// generator's whole state is (seed, draws), so a checkpointed stream
// position restores in O(1) — set draws — where the previous wrapped
// math/rand source had to replay draw-and-discard, making forked resume
// O(draws). Every Int63/Uint64 call advances the counter exactly once, so
// draw counts keep meaning "state advances", as the checkpoint format
// requires. The workload's randomness is golden-pinned
// (testdata/golden_cycles.json was regenerated when this generator replaced
// the math/rand one), so the mixing function must not change.
type counterSource struct {
	base  uint64 // seed-derived stream offset
	draws uint64
}

// sm64Gamma is the SplitMix64 Weyl-sequence increment (odd, ≈2⁶⁴/φ).
const sm64Gamma = 0x9E3779B97F4A7C15

// mix64 is the SplitMix64 output permutation (Steele, Lea & Flood 2014) —
// a bijective avalanche over the counter sequence.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func newCountingSource(seed int64) *counterSource {
	s := &counterSource{}
	s.Seed(seed)
	return s
}

func (s *counterSource) Uint64() uint64 {
	s.draws++
	return mix64(s.base + s.draws*sm64Gamma)
}

func (s *counterSource) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

func (s *counterSource) Seed(seed int64) {
	// Scramble the seed so the adjacent seeds the drivers hand out
	// (seed, seed+1, tid·101, …) select unrelated streams rather than
	// shifted copies of one Weyl sequence.
	s.base = mix64(uint64(seed) ^ 0xFF51AFD7ED558CCD)
	s.draws = 0
}

// skip positions the source exactly n draws into its stream. O(1): the
// counter is the state.
func (s *counterSource) skip(n uint64) { s.draws = n }

// runnerStage is the Runner's position within one loop iteration.
type runnerStage int

const (
	// stageBody: about to execute op i (or finish the phase if i == ops).
	stageBody runnerStage = iota
	// stagePre: op i was a sample point; run PreSample and the sample.
	stagePre
	// stageMaint: run the Maintenance hook for op i. This is the suspension
	// point: a checkpoint taken inside Maintenance resumes by re-invoking
	// the (new) Maintenance hook with identical machine state.
	stageMaint
)

// phaseDef is one workload phase: a name, an op count and which operation
// body drives it.
type phaseDef struct {
	name   string
	ops    int
	insert bool
}

// Runner executes the §6 workload as an explicit state machine, equivalent
// op-for-op to the closed-loop Run but suspendable at any Maintenance point
// and checkpointable there. The fork-based experiment driver builds one
// runner per breakdown cell, suspends it where the schemes diverge, and
// resumes a clone per scheme (DESIGN.md §7).
type Runner struct {
	ctx *sim.Ctx
	p   *pmop.Pool
	s   ds.Store
	cfg Config

	src *counterSource
	rng *rand.Rand

	live     []uint64
	nextKey  uint64
	freeKeys []uint64
	valBuf   []byte

	samples          int
	sumFoot, sumLive float64
	res              Result

	phases []phaseDef
	ph     int
	i      int
	stage  runnerStage

	// Per-phase start markers (captured at phase entry).
	startCycles    uint64
	phSamples      int
	phFoot, phLive float64

	stopReq  bool
	finished bool
}

func (r *Runner) phaseDefs() []phaseDef {
	return []phaseDef{
		{"init", r.cfg.InitInserts, true},
		{"delete1", r.cfg.PhaseOps, false},
		{"insert", r.cfg.PhaseOps, true},
		{"delete2", r.cfg.PhaseOps, false},
	}
}

// NewRunner prepares a run positioned at the first op of the init phase.
func NewRunner(ctx *sim.Ctx, p *pmop.Pool, s ds.Store, cfg Config) *Runner {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 500
	}
	r := &Runner{
		ctx: ctx, p: p, s: s, cfg: cfg,
		src:      newCountingSource(cfg.Seed),
		freeKeys: []uint64{},
	}
	r.rng = rand.New(r.src)
	r.phases = r.phaseDefs()
	r.startPhase()
	return r
}

func (r *Runner) startPhase() {
	r.startCycles = r.ctx.Clock.Total()
	r.phSamples = r.samples
	r.phFoot, r.phLive = r.sumFoot, r.sumLive
}

func (r *Runner) takeKey() uint64 {
	if r.cfg.KeyCap > 0 {
		if n := len(r.freeKeys); n > 0 {
			k := r.freeKeys[n-1]
			r.freeKeys = r.freeKeys[:n-1]
			return k
		}
		k := r.nextKey % r.cfg.KeyCap
		r.nextKey++
		return r.cfg.KeyBase + k
	}
	k := r.nextKey
	r.nextKey++
	return r.cfg.KeyBase + k
}

func (r *Runner) val(k uint64) []byte {
	n := r.cfg.ValueSize
	if r.cfg.ValueJitter > 0 {
		n += r.rng.Intn(2*r.cfg.ValueJitter) - r.cfg.ValueJitter
		if n < 8 {
			n = 8
		}
	}
	// Stores copy the value into simulated memory, so one reusable buffer
	// (fully overwritten each call) serves every op.
	if cap(r.valBuf) < n {
		r.valBuf = make([]byte, n)
	}
	b := r.valBuf[:n]
	for i := range b {
		b[i] = byte(k>>uint(8*(i%8))) ^ byte(i)
	}
	return b
}

func (r *Runner) sample() {
	st := r.p.Heap().Frag(r.p.PageShift())
	r.sumFoot += float64(st.FootprintBytes)
	r.sumLive += float64(st.LiveBytes)
	r.samples++
}

func (r *Runner) insertOne() error {
	k := r.takeKey()
	if err := r.s.Insert(r.ctx, k, r.val(k)); err != nil {
		return err
	}
	r.live = append(r.live, k)
	return nil
}

func (r *Runner) deleteOne() error {
	if len(r.live) == 0 {
		return nil
	}
	i := r.rng.Intn(len(r.live))
	k := r.live[i]
	r.live[i] = r.live[len(r.live)-1]
	r.live = r.live[:len(r.live)-1]
	if _, err := r.s.Delete(r.ctx, k); err != nil {
		return err
	}
	if r.cfg.KeyCap > 0 {
		r.freeKeys = append(r.freeKeys, k)
	}
	return nil
}

func (r *Runner) endPhase() {
	r.sample()
	def := r.phases[r.ph]
	n := float64(r.samples - r.phSamples)
	r.res.Phases = append(r.res.Phases, PhaseResult{
		Name:         def.name,
		Ops:          def.ops,
		Cycles:       r.ctx.Clock.Total() - r.startCycles,
		AvgFootprint: (r.sumFoot - r.phFoot) / n,
		AvgLive:      (r.sumLive - r.phLive) / n,
		End:          r.p.Heap().Frag(r.p.PageShift()),
	})
	r.ph++
	r.i = 0
	if r.ph < len(r.phases) {
		r.startPhase()
		return
	}
	// Aggregate the measured (post-init) phases.
	var foot, liveB float64
	for _, ph := range r.res.Phases[1:] {
		foot += ph.AvgFootprint
		liveB += ph.AvgLive
		r.res.TotalOps += ph.Ops
		r.res.TotalCycles += ph.Cycles
	}
	r.res.AvgFootprint = foot / float64(len(r.res.Phases)-1)
	r.res.AvgLive = liveB / float64(len(r.res.Phases)-1)
	r.finished = true
}

// RequestStop asks the runner to suspend. It is meant to be called from
// inside the Maintenance hook; the runner returns from Run before advancing
// past the current op, leaving its state checkpointable at exactly the
// pre-Maintenance point.
func (r *Runner) RequestStop() { r.stopReq = true }

// Run advances the state machine until the workload completes or a
// Maintenance hook requests a stop. It returns (result, true, nil) on
// completion; (zero, false, nil) when suspended.
func (r *Runner) Run() (Result, bool, error) {
	if r.finished {
		return r.res, true, nil
	}
	for {
		switch r.stage {
		case stageBody:
			if r.i >= r.phases[r.ph].ops {
				r.endPhase()
				if r.finished {
					return r.res, true, nil
				}
				continue
			}
			var err error
			if r.phases[r.ph].insert {
				err = r.insertOne()
			} else {
				err = r.deleteOne()
			}
			if err != nil {
				return Result{}, false, err
			}
			if r.i%r.cfg.SampleEvery == 0 {
				r.stage = stagePre
			} else {
				r.i++
			}
		case stagePre:
			if r.cfg.PreSample != nil {
				r.cfg.PreSample()
			}
			r.sample()
			r.stage = stageMaint
		case stageMaint:
			if r.cfg.Maintenance != nil {
				r.cfg.Maintenance()
				if r.stopReq {
					r.stopReq = false
					return Result{}, false, nil
				}
			}
			r.i++
			r.stage = stageBody
		}
	}
}

// RunnerCheckpoint is a deep copy of a runner's position and accumulators.
// The RNG is captured as its draw count (see counterSource: the draw counter is the full generator state, so restore is O(1)).
type RunnerCheckpoint struct {
	Live     []uint64
	NextKey  uint64
	FreeKeys []uint64
	Draws    uint64

	Samples          int
	SumFoot, SumLive float64
	Phases           []PhaseResult

	Phase int
	Index int
	Stage int

	StartCycles    uint64
	PhSamples      int
	PhFoot, PhLive float64
}

// Checkpoint captures the runner's state. Valid at any point the runner is
// not executing — including from inside a Maintenance hook, where the
// captured stage makes a resumed clone re-invoke its own Maintenance hook
// first.
func (r *Runner) Checkpoint() *RunnerCheckpoint {
	return &RunnerCheckpoint{
		Live:        append([]uint64(nil), r.live...),
		NextKey:     r.nextKey,
		FreeKeys:    append([]uint64{}, r.freeKeys...),
		Draws:       r.src.draws,
		Samples:     r.samples,
		SumFoot:     r.sumFoot,
		SumLive:     r.sumLive,
		Phases:      append([]PhaseResult(nil), r.res.Phases...),
		Phase:       r.ph,
		Index:       r.i,
		Stage:       int(r.stage),
		StartCycles: r.startCycles,
		PhSamples:   r.phSamples,
		PhFoot:      r.phFoot,
		PhLive:      r.phLive,
	}
}

// ResumeRunner reconstructs a runner from a checkpoint against a (forked)
// context, pool and store. The checkpoint is only read; several forks may
// resume from the same checkpoint concurrently.
func ResumeRunner(ctx *sim.Ctx, p *pmop.Pool, s ds.Store, cfg Config, c *RunnerCheckpoint) (*Runner, error) {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 500
	}
	r := &Runner{
		ctx: ctx, p: p, s: s, cfg: cfg,
		src:      newCountingSource(cfg.Seed),
		live:     append([]uint64(nil), c.Live...),
		nextKey:  c.NextKey,
		freeKeys: append([]uint64{}, c.FreeKeys...),
		samples:  c.Samples,
		sumFoot:  c.SumFoot,
		sumLive:  c.SumLive,
	}
	r.rng = rand.New(r.src)
	r.src.skip(c.Draws)
	r.res.Phases = append(r.res.Phases, c.Phases...)
	r.phases = r.phaseDefs()
	if c.Phase < 0 || c.Phase >= len(r.phases) {
		return nil, fmt.Errorf("workload: checkpoint phase %d out of range", c.Phase)
	}
	r.ph = c.Phase
	r.i = c.Index
	r.stage = runnerStage(c.Stage)
	r.startCycles = c.StartCycles
	r.phSamples = c.PhSamples
	r.phFoot, r.phLive = c.PhFoot, c.PhLive
	return r, nil
}
