package workload

import (
	"math"
	"math/bits"
)

// RNG is the exported face of the counter-based skippable random source the
// workload runner uses (see counterSource in runner.go): draw i of stream
// seed is the pure function mix64(base(seed) + (i+1)·γ), so the whole
// generator state is (seed, draw counter) and a checkpointed position
// restores in O(1). Other packages (the redisws serving layer) build on it
// so their runs checkpoint and fork like every other workload.
//
// RNG additionally implements math/rand's Source and Source64, so it can
// seed a *rand.Rand when a derived distribution (e.g. rand.Zipf) is wanted;
// note that rand.Rand adapters may consume draws at rates of their own
// (Float64 retries, Intn rejection sampling), which stays deterministic but
// makes per-call draw counts distribution-dependent.
type RNG struct {
	src counterSource
}

// NewRNG returns a counter-based source positioned at draw 0 of the stream
// selected by seed. Adjacent seeds select unrelated streams.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	r.src.Seed(seed)
	return r
}

// Uint64 returns the next 64 uniform bits, advancing the counter by one.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// Int63 returns a uniform value in [0, 2^63), advancing the counter by one.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// Seed repositions the stream (math/rand Source contract); the draw counter
// resets to zero.
func (r *RNG) Seed(seed int64) { r.src.Seed(seed) }

// Draws returns the number of values drawn so far — the checkpointable
// stream position.
func (r *RNG) Draws() uint64 { return r.src.draws }

// Skip positions the stream exactly n draws in, in O(1).
func (r *RNG) Skip(n uint64) { r.src.skip(n) }

// Intn returns a uniform value in [0, n). It always consumes exactly one
// draw (unlike math/rand's rejection sampler), using the fixed-point
// multiply reduction; the tiny modulo bias (< n/2^64) is irrelevant for
// simulation workloads and worth the constant draw rate, which keeps
// checkpoint positions a pure function of operation counts.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload.RNG.Intn: n <= 0")
	}
	hi, _ := bits.Mul64(r.src.Uint64(), uint64(n))
	return int(hi)
}

// Float64 returns a uniform value in [0, 1), consuming exactly one draw.
func (r *RNG) Float64() float64 {
	return float64(r.src.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponential variate with mean 1, consuming exactly
// one draw (inverse transform, not math/rand's ziggurat).
func (r *RNG) ExpFloat64() float64 {
	// 1-Float64 is in (0,1], so the log argument never hits zero.
	return -math.Log(1 - r.Float64())
}
