// Package workload generates the paper's evaluation workloads (§6): each
// benchmark is initialised with N insertions of 128-byte values, then runs
// three phases — delete, insert, delete — representing application memory
// decreasing and increasing stages. Sizes are scaled down from the paper's
// 5M/4M via the Scale factor so the simulated machine finishes in reasonable
// time; fragmentation ratios are scale-invariant (see DESIGN.md).
package workload

import (
	"fmt"

	"ffccd/internal/alloc"
	"ffccd/internal/ds"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// Config parameterises a run.
type Config struct {
	InitInserts int    // paper: 5,000,000
	PhaseOps    int    // paper: 4,000,000
	ValueSize   int    // paper: 128 bytes
	ValueJitter int    // ± bytes of size variation (string-swap style); 0 = fixed
	KeyCap      uint64 // >0 bounds the key space (slot-addressed stores)
	KeyBase     uint64 // added to every key: disjoint ranges for threads
	Seed        int64
	// SampleEvery controls footprint sampling (ops between samples).
	SampleEvery int
	// PreSample, when set, runs at every sample point before the footprint
	// is read — the place a harness completes an in-flight defragmentation
	// epoch so samples see quiesced state.
	PreSample func()
	// Maintenance, when set, is invoked at every sample point after the
	// footprint is read — the place a harness runs/starts synchronous
	// defragmentation, mirroring the §5 pmalloc/pfree trigger
	// deterministically.
	Maintenance func()
}

// DefaultConfig returns the paper's shape scaled by 1/250 (5M → 20k).
func DefaultConfig() Config {
	return Config{
		InitInserts: 20000,
		PhaseOps:    16000,
		ValueSize:   128,
		Seed:        1,
		SampleEvery: 500,
	}
}

// Scaled returns DefaultConfig with both sizes multiplied by f.
func Scaled(f float64) Config {
	c := DefaultConfig()
	c.InitInserts = int(float64(c.InitInserts) * f)
	c.PhaseOps = int(float64(c.PhaseOps) * f)
	return c
}

// PhaseResult reports one phase of a run.
type PhaseResult struct {
	Name         string
	Ops          int
	Cycles       uint64 // application cycles spent in the phase
	AvgFootprint float64
	AvgLive      float64
	End          alloc.FragStats
}

// AvgFragRatio is the phase's mean footprint over mean live size.
func (r PhaseResult) AvgFragRatio() float64 {
	if r.AvgLive == 0 {
		return 0
	}
	return r.AvgFootprint / r.AvgLive
}

// Result is a whole run.
type Result struct {
	Phases []PhaseResult
	// Aggregates over the post-init phases (what Table 3/4 report).
	AvgFootprint float64
	AvgLive      float64
	TotalOps     int
	TotalCycles  uint64
}

// AvgFragRatio over the measured phases.
func (r Result) AvgFragRatio() float64 {
	if r.AvgLive == 0 {
		return 0
	}
	return r.AvgFootprint / r.AvgLive
}

// Run drives the §6 workload against a store. The engine (if any) runs via
// its own triggers; Run only measures. It is a closed-loop convenience over
// Runner, which exposes the same execution as a suspendable state machine.
func Run(ctx *sim.Ctx, p *pmop.Pool, s ds.Store, cfg Config) (Result, error) {
	r := NewRunner(ctx, p, s, cfg)
	res, finished, err := r.Run()
	if err != nil {
		return Result{}, err
	}
	if !finished {
		return Result{}, fmt.Errorf("workload: run suspended without completing")
	}
	return res, nil
}
