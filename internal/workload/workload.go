// Package workload generates the paper's evaluation workloads (§6): each
// benchmark is initialised with N insertions of 128-byte values, then runs
// three phases — delete, insert, delete — representing application memory
// decreasing and increasing stages. Sizes are scaled down from the paper's
// 5M/4M via the Scale factor so the simulated machine finishes in reasonable
// time; fragmentation ratios are scale-invariant (see DESIGN.md).
package workload

import (
	"math/rand"

	"ffccd/internal/alloc"
	"ffccd/internal/ds"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// Config parameterises a run.
type Config struct {
	InitInserts int    // paper: 5,000,000
	PhaseOps    int    // paper: 4,000,000
	ValueSize   int    // paper: 128 bytes
	ValueJitter int    // ± bytes of size variation (string-swap style); 0 = fixed
	KeyCap      uint64 // >0 bounds the key space (slot-addressed stores)
	KeyBase     uint64 // added to every key: disjoint ranges for threads
	Seed        int64
	// SampleEvery controls footprint sampling (ops between samples).
	SampleEvery int
	// PreSample, when set, runs at every sample point before the footprint
	// is read — the place a harness completes an in-flight defragmentation
	// epoch so samples see quiesced state.
	PreSample func()
	// Maintenance, when set, is invoked at every sample point after the
	// footprint is read — the place a harness runs/starts synchronous
	// defragmentation, mirroring the §5 pmalloc/pfree trigger
	// deterministically.
	Maintenance func()
}

// DefaultConfig returns the paper's shape scaled by 1/250 (5M → 20k).
func DefaultConfig() Config {
	return Config{
		InitInserts: 20000,
		PhaseOps:    16000,
		ValueSize:   128,
		Seed:        1,
		SampleEvery: 500,
	}
}

// Scaled returns DefaultConfig with both sizes multiplied by f.
func Scaled(f float64) Config {
	c := DefaultConfig()
	c.InitInserts = int(float64(c.InitInserts) * f)
	c.PhaseOps = int(float64(c.PhaseOps) * f)
	return c
}

// PhaseResult reports one phase of a run.
type PhaseResult struct {
	Name         string
	Ops          int
	Cycles       uint64 // application cycles spent in the phase
	AvgFootprint float64
	AvgLive      float64
	End          alloc.FragStats
}

// AvgFragRatio is the phase's mean footprint over mean live size.
func (r PhaseResult) AvgFragRatio() float64 {
	if r.AvgLive == 0 {
		return 0
	}
	return r.AvgFootprint / r.AvgLive
}

// Result is a whole run.
type Result struct {
	Phases []PhaseResult
	// Aggregates over the post-init phases (what Table 3/4 report).
	AvgFootprint float64
	AvgLive      float64
	TotalOps     int
	TotalCycles  uint64
}

// AvgFragRatio over the measured phases.
func (r Result) AvgFragRatio() float64 {
	if r.AvgLive == 0 {
		return 0
	}
	return r.AvgFootprint / r.AvgLive
}

// Run drives the §6 workload against a store. The engine (if any) runs via
// its own triggers; Run only measures.
func Run(ctx *sim.Ctx, p *pmop.Pool, s ds.Store, cfg Config) (Result, error) {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 500
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var live []uint64
	nextKey := uint64(0)
	freeKeys := []uint64{}

	takeKey := func() uint64 {
		if cfg.KeyCap > 0 {
			if len(freeKeys) > 0 {
				k := freeKeys[len(freeKeys)-1]
				freeKeys = freeKeys[:len(freeKeys)-1]
				return k
			}
			k := nextKey % cfg.KeyCap
			nextKey++
			return cfg.KeyBase + k
		}
		k := nextKey
		nextKey++
		return cfg.KeyBase + k
	}
	val := func(k uint64) []byte {
		n := cfg.ValueSize
		if cfg.ValueJitter > 0 {
			n += rng.Intn(2*cfg.ValueJitter) - cfg.ValueJitter
			if n < 8 {
				n = 8
			}
		}
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(k>>uint(8*(i%8))) ^ byte(i)
		}
		return b
	}

	var res Result
	samples := 0
	var sumFoot, sumLive float64
	sample := func() {
		st := p.Heap().Frag(p.PageShift())
		sumFoot += float64(st.FootprintBytes)
		sumLive += float64(st.LiveBytes)
		samples++
	}

	phase := func(name string, ops int, body func(i int) error) (PhaseResult, error) {
		startCycles := ctx.Clock.Total()
		phSamples := samples
		phFoot, phLive := sumFoot, sumLive
		for i := 0; i < ops; i++ {
			if err := body(i); err != nil {
				return PhaseResult{}, err
			}
			if i%cfg.SampleEvery == 0 {
				if cfg.PreSample != nil {
					cfg.PreSample()
				}
				sample()
				if cfg.Maintenance != nil {
					cfg.Maintenance()
				}
			}
		}
		sample()
		n := float64(samples - phSamples)
		pr := PhaseResult{
			Name:         name,
			Ops:          ops,
			Cycles:       ctx.Clock.Total() - startCycles,
			AvgFootprint: (sumFoot - phFoot) / n,
			AvgLive:      (sumLive - phLive) / n,
			End:          p.Heap().Frag(p.PageShift()),
		}
		return pr, nil
	}

	insertOne := func(int) error {
		k := takeKey()
		if err := s.Insert(ctx, k, val(k)); err != nil {
			return err
		}
		live = append(live, k)
		return nil
	}
	deleteOne := func(int) error {
		if len(live) == 0 {
			return nil
		}
		i := rng.Intn(len(live))
		k := live[i]
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
		if _, err := s.Delete(ctx, k); err != nil {
			return err
		}
		if cfg.KeyCap > 0 {
			freeKeys = append(freeKeys, k)
		}
		return nil
	}

	init, err := phase("init", cfg.InitInserts, insertOne)
	if err != nil {
		return res, err
	}
	res.Phases = append(res.Phases, init)

	del1, err := phase("delete1", cfg.PhaseOps, deleteOne)
	if err != nil {
		return res, err
	}
	res.Phases = append(res.Phases, del1)

	ins, err := phase("insert", cfg.PhaseOps, insertOne)
	if err != nil {
		return res, err
	}
	res.Phases = append(res.Phases, ins)

	del2, err := phase("delete2", cfg.PhaseOps, deleteOne)
	if err != nil {
		return res, err
	}
	res.Phases = append(res.Phases, del2)

	// Aggregate the measured (post-init) phases.
	var foot, liveB float64
	for _, ph := range res.Phases[1:] {
		foot += ph.AvgFootprint
		liveB += ph.AvgLive
		res.TotalOps += ph.Ops
		res.TotalCycles += ph.Cycles
	}
	res.AvgFootprint = foot / float64(len(res.Phases)-1)
	res.AvgLive = liveB / float64(len(res.Phases)-1)
	return res, nil
}
