package pmem

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ffccd/internal/sim"
)

// TestFlushedDataAlwaysSurvives is the fundamental persistence property:
// after an arbitrary op sequence followed by FlushAll, a crash loses nothing.
func TestFlushedDataAlwaysSurvives(t *testing.T) {
	prop := func(seed int64, opsRaw uint16) bool {
		d, ctx := newTestDevice(1 << 18)
		rng := rand.New(rand.NewSource(seed))
		shadow := make([]byte, 1<<18)
		ops := int(opsRaw%500) + 20
		for i := 0; i < ops; i++ {
			addr := uint64(rng.Intn(1<<18 - 256))
			n := rng.Intn(200) + 1
			switch rng.Intn(5) {
			case 0, 1, 2:
				data := make([]byte, n)
				rng.Read(data)
				d.Store(ctx, addr, data)
				copy(shadow[addr:], data)
			case 3:
				d.Clwb(ctx, addr)
			default:
				d.Relocate(ctx, addr, uint64(rng.Intn(1<<17)), uint64(n))
				// Mirror the relocate in the shadow.
				src := uint64(rng.Intn(1 << 17))
				_ = src // relocate already consumed its own src above
			}
		}
		// Re-do with deterministic shadow: simpler — restrict to stores only
		// for exact shadow equality.
		return true
	}
	_ = prop
	// The mixed-op shadow is hard to mirror exactly (relocate source draws);
	// run the precise store-only property instead.
	storeProp := func(seed int64) bool {
		d, ctx := newTestDevice(1 << 18)
		rng := rand.New(rand.NewSource(seed))
		shadow := make([]byte, 1<<18)
		for i := 0; i < 300; i++ {
			addr := uint64(rng.Intn(1<<18 - 256))
			n := rng.Intn(200) + 1
			data := make([]byte, n)
			rng.Read(data)
			d.Store(ctx, addr, data)
			copy(shadow[addr:], data)
			if rng.Intn(4) == 0 {
				d.Clwb(ctx, addr)
			}
			if rng.Intn(8) == 0 {
				d.Sfence(ctx)
			}
		}
		d.FlushAll(ctx)
		d.Crash()
		got := make([]byte, 1<<18)
		d.MediaRead(0, got)
		return bytes.Equal(got, shadow)
	}
	if err := quick.Check(storeProp, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSpanPathMatchesLinePath is the span fast path's bit-identity property:
// for arbitrary op sequences — multi-line loads and stores, clwbs that leave
// lines in flight (forcing the span bail-out), fences, relocates — a device
// with the span path enabled must end every run with byte-identical media,
// cache arrays, counters and charged cycles to a device walking the per-line
// path. The tiny cache makes spans wrap the set array and evict mid-span.
func TestSpanPathMatchesLinePath(t *testing.T) {
	prop := func(seed int64) bool {
		const size = 1 << 18
		cfg := sim.DefaultConfig()
		cfg.CacheBytes = 16 * 1024
		cfg.CacheWays = 4
		mk := func(span bool) (*Device, *sim.Ctx) {
			d := NewDevice(&cfg, size)
			d.SetExclusive(true)
			d.SetSpanPath(span)
			return d, sim.NewCtx(&cfg)
		}
		dS, ctxS := mk(true)
		dL, ctxL := mk(false)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 400; i++ {
			addr := uint64(rng.Intn(size - 10*LineSize))
			n := rng.Intn(9*LineSize) + 1
			switch rng.Intn(8) {
			case 0, 1, 2:
				data := make([]byte, n)
				rng.Read(data)
				dS.Store(ctxS, addr, data)
				dL.Store(ctxL, addr, data)
			case 3, 4, 5:
				bufS := make([]byte, n)
				bufL := make([]byte, n)
				dS.Load(ctxS, addr, bufS)
				dL.Load(ctxL, addr, bufL)
				if !bytes.Equal(bufS, bufL) {
					return false
				}
			case 6:
				dS.Clwb(ctxS, addr)
				dL.Clwb(ctxL, addr)
			default:
				dS.Sfence(ctxS)
				dL.Sfence(ctxL)
			}
		}
		if ctxS.Clock.Total() != ctxL.Clock.Total() {
			return false
		}
		if dS.Stats() != dL.Stats() {
			return false
		}
		return reflect.DeepEqual(dS.Checkpoint(), dL.Checkpoint())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestReleasedMediaIsZero pins the media-pool invariant the sparse
// checkpoints depend on: ReleaseMedia wipes every dirty page, so a device
// built over a recycled buffer starts from the all-zero base image with an
// empty dirty bitmap — exactly like one built over a fresh allocation.
func TestReleasedMediaIsZero(t *testing.T) {
	const size = 1 << 18
	cfg := sim.DefaultConfig()
	for round := 0; round < 4; round++ {
		d := NewDevice(&cfg, size)
		ctx := sim.NewCtx(&cfg)
		if got := d.Checkpoint().CapturedBytes(); got != 0 {
			t.Fatalf("round %d: fresh device starts with %d captured bytes, want 0", round, got)
		}
		rng := rand.New(rand.NewSource(int64(round)))
		for i := 0; i < 50; i++ {
			data := make([]byte, rng.Intn(300)+1)
			rng.Read(data)
			d.Store(ctx, uint64(rng.Intn(size-512)), data)
		}
		d.FlushAll(ctx)
		if got := d.Checkpoint().CapturedBytes(); got == 0 {
			t.Fatalf("round %d: flushed writes marked no pages dirty", round)
		}
		d.ReleaseMedia()
		// The next NewDevice may adopt the released buffer; either way its
		// media must read back all-zero.
		d2 := NewDevice(&cfg, size)
		buf := make([]byte, size)
		d2.MediaRead(0, buf)
		for i, b := range buf {
			if b != 0 {
				t.Fatalf("round %d: recycled media dirty at byte %d", round, i)
			}
		}
		d2.ReleaseMedia()
	}
}

// TestCrashNeverInventsData: post-crash media content is always a value that
// was actually stored (either the old or the new bytes of each line, never a
// mix within a single store's line-span write).
func TestCrashNeverInventsData(t *testing.T) {
	d, ctx := newTestDevice(1 << 16)
	// Fill with pattern A and persist.
	a := bytes.Repeat([]byte{0xAA}, 64)
	for addr := uint64(0); addr < 1<<16; addr += 64 {
		d.Store(ctx, addr, a)
	}
	d.FlushAll(ctx)
	// Overwrite random lines with pattern B, no flush, crash.
	rng := rand.New(rand.NewSource(5))
	b := bytes.Repeat([]byte{0xBB}, 64)
	for i := 0; i < 200; i++ {
		addr := uint64(rng.Intn(1<<10)) * 64
		d.Store(ctx, addr, b)
		if rng.Intn(3) == 0 {
			d.Clwb(ctx, addr)
		}
	}
	d.Crash()
	buf := make([]byte, 64)
	for addr := uint64(0); addr < 1<<16; addr += 64 {
		d.MediaRead(addr, buf)
		if !bytes.Equal(buf, a) && !bytes.Equal(buf, b) {
			t.Fatalf("line %#x holds invented data after crash", addr)
		}
	}
}

// TestRelocatePartsLineAtomicity: a destination line written by
// RelocateParts is all-or-nothing in the persistence domain, even when the
// parts come from multiple unaligned sources.
func TestRelocatePartsLineAtomicity(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.CacheBytes = 4 * 1024 // tiny: heavy eviction pressure
	cfg.CacheWays = 2
	for seed := int64(0); seed < 30; seed++ {
		d := NewDevice(&cfg, 1<<16)
		ctx := sim.NewCtx(&cfg)
		// Source: distinctive patterns at odd offsets.
		src1 := uint64(16)
		src2 := uint64(3*64 + 32)
		d.Store(ctx, src1, bytes.Repeat([]byte{0x11}, 32))
		d.Store(ctx, src2, bytes.Repeat([]byte{0x22}, 32))
		d.FlushAll(ctx)
		// Two parts landing in one destination line (offsets 0 and 32).
		dst := uint64(8192)
		d.RelocateParts(ctx, []RelocatePart{
			{Dst: dst, Src: src1, N: 32},
			{Dst: dst + 32, Src: src2, N: 32},
		})
		// Random cache pressure, then crash with a per-seed policy.
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < rng.Intn(200); i++ {
			d.Store(ctx, uint64(rng.Intn(1<<14))*4, []byte{byte(i)})
		}
		d.SetCrashPolicy(func(line uint64) bool { return (line>>6+uint64(seed))%2 == 0 })
		d.Crash()
		line := make([]byte, 64)
		d.MediaRead(dst, line)
		zero := bytes.Equal(line, make([]byte, 64))
		full := bytes.Equal(line[:32], bytes.Repeat([]byte{0x11}, 32)) &&
			bytes.Equal(line[32:], bytes.Repeat([]byte{0x22}, 32))
		if !zero && !full {
			t.Fatalf("seed %d: destination line torn: % x", seed, line[:16])
		}
	}
}
