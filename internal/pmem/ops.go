package pmem

import "ffccd/internal/sim"

// fillLine loads the newest persistent copy of lineIdx (in-flight beats
// media) into buf. Caller holds the set lock.
func (d *Device) fillLine(lineIdx uint64, buf *[LineSize]byte) {
	d.inflightMu.Lock()
	fl, ok := d.inflight[lineIdx]
	if ok {
		*buf = fl.data
	}
	d.inflightMu.Unlock()
	if !ok {
		copy(buf[:], d.media[lineIdx<<LineShift:(lineIdx+1)<<LineShift])
	}
}

// access locks the set for lineIdx, ensures the line is resident (filling
// from the persistence domain on a miss, evicting a victim if needed), runs
// fn on it, and unlocks. Returns whether the access hit in the cache.
func (d *Device) access(ctx *sim.Ctx, lineIdx uint64, fn func(l *cacheLine)) bool {
	set := &d.sets[int(lineIdx%uint64(d.nset))]
	set.mu.Lock()
	set.tick++
	var victim *cacheLine
	var oldest uint32 = ^uint32(0)
	for w := range set.ways {
		l := &set.ways[w]
		if l.tag == lineIdx+1 {
			l.age = set.tick
			fn(l)
			set.mu.Unlock()
			return true
		}
		if l.tag == 0 {
			if oldest != 0 {
				victim, oldest = l, 0
			}
			continue
		}
		if l.age < oldest {
			victim, oldest = l, l.age
		}
	}
	// Miss: evict the victim and fill.
	if victim.tag != 0 && victim.dirty {
		d.bump(func(s *Stats) { s.Evictions++ })
		d.writeMediaLine(ctx, victim.tag-1, &victim.data, victim.pending)
	}
	victim.tag = lineIdx + 1
	victim.dirty = false
	victim.pending = false
	victim.age = set.tick
	d.fillLine(lineIdx, &victim.data)
	fn(victim)
	set.mu.Unlock()
	return false
}

// Load reads len(buf) bytes at addr through the cache, charging hit/miss
// latencies. TLB translation is charged by the caller, which knows the
// virtual address.
func (d *Device) Load(ctx *sim.Ctx, addr uint64, buf []byte) {
	d.checkRange(addr, uint64(len(buf)))
	d.bump(func(s *Stats) { s.Loads++ })
	for len(buf) > 0 {
		lineIdx := addr >> LineShift
		off := addr & (LineSize - 1)
		n := LineSize - off
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		hit := d.access(ctx, lineIdx, func(l *cacheLine) {
			copy(buf[:n], l.data[off:off+n])
		})
		if hit {
			ctx.Charge(d.cfg.L2Latency)
			d.bump(func(s *Stats) { s.CacheHits++ })
		} else {
			ctx.Charge(d.cfg.L2Latency + d.cfg.PMReadLatency)
			d.bump(func(s *Stats) { s.CacheMisses++; s.MediaReads++ })
		}
		buf = buf[n:]
		addr += n
	}
}

// Store writes data at addr through the cache (write-allocate, write-back).
func (d *Device) Store(ctx *sim.Ctx, addr uint64, data []byte) {
	d.storeInternal(ctx, addr, data, false)
}

func (d *Device) storeInternal(ctx *sim.Ctx, addr uint64, data []byte, pending bool) {
	d.checkRange(addr, uint64(len(data)))
	d.bump(func(s *Stats) { s.Stores++ })
	for len(data) > 0 {
		lineIdx := addr >> LineShift
		off := addr & (LineSize - 1)
		n := LineSize - off
		if n > uint64(len(data)) {
			n = uint64(len(data))
		}
		hit := d.access(ctx, lineIdx, func(l *cacheLine) {
			copy(l.data[off:off+n], data[:n])
			l.dirty = true
			if pending {
				l.pending = true
			}
		})
		if hit {
			ctx.Charge(d.cfg.L2Latency)
			d.bump(func(s *Stats) { s.CacheHits++ })
		} else {
			ctx.Charge(d.cfg.L2Latency + d.cfg.PMReadLatency)
			d.bump(func(s *Stats) { s.CacheMisses++; s.MediaReads++ })
		}
		data = data[n:]
		addr += n
	}
}

// Clwb initiates write-back of the line containing addr. The line becomes
// clean in the cache and its contents move to the in-flight buffer: durable
// only after the next Sfence (or if the crash policy is merciful). A clwb of
// a line that is not dirty is a no-op beyond its access cost.
func (d *Device) Clwb(ctx *sim.Ctx, addr uint64) {
	d.checkRange(addr, 1)
	d.bump(func(s *Stats) { s.Clwbs++ })
	lineIdx := addr >> LineShift
	set := &d.sets[int(lineIdx%uint64(d.nset))]
	set.mu.Lock()
	for w := range set.ways {
		l := &set.ways[w]
		if l.tag == lineIdx+1 {
			if l.dirty {
				d.inflightMu.Lock()
				fl := d.inflight[lineIdx]
				if fl == nil {
					fl = &inflightLine{}
					d.inflight[lineIdx] = fl
				}
				fl.data = l.data
				fl.pending = fl.pending || l.pending
				d.inflightMu.Unlock()
				l.dirty = false
				l.pending = false
				ctx.PendingFlushes++
			}
			break
		}
	}
	set.mu.Unlock()
	ctx.Charge(d.cfg.L2Latency + d.cfg.WPQLatency)
}

// Sfence drains all in-flight lines into the persistence domain and stalls
// the issuing thread. (Real sfence orders only the issuing core's stores;
// draining globally is a conservative simplification that never weakens the
// schemes' ordering assumptions — documented in DESIGN.md.)
func (d *Device) Sfence(ctx *sim.Ctx) {
	d.bump(func(s *Stats) { s.Sfences++ })
	d.inflightMu.Lock()
	drained := len(d.inflight)
	var reached []uint64
	for lineIdx, fl := range d.inflight {
		copy(d.media[lineIdx<<LineShift:], fl.data[:])
		if fl.pending {
			reached = append(reached, lineIdx)
		}
		delete(d.inflight, lineIdx)
	}
	d.inflightMu.Unlock()
	if drained > 0 {
		d.bump(func(s *Stats) { s.MediaWrites += uint64(drained) })
		ctx.Charge(uint64(drained) * d.cfg.PMWriteBandwidthPenalty)
	}
	for _, lineIdx := range reached {
		d.notifyReached(ctx, lineIdx)
	}
	if ctx.PendingFlushes > 0 || drained > 0 {
		// The fence exposes the full PM write latency — the stall FFCCD's
		// fence-free design eliminates (§3.3.3).
		ctx.Charge(d.cfg.PMWriteLatency)
	} else {
		ctx.Charge(d.cfg.WPQLatency)
	}
	ctx.PendingFlushes = 0
}

// RelocatePart is one source→destination span of a relocate operation.
type RelocatePart struct {
	Dst, Src, N uint64
}

// Relocate implements the paper's relocate instruction (§4.2): it copies n
// bytes from src to dst through the cache, tagging every destination line
// with the pending bit. No flush or fence is issued; the copied data reaches
// the persistence domain lazily (eviction, a later clwb+sfence, or ADR at
// power-off), and the RBB is notified when it does.
func (d *Device) Relocate(ctx *sim.Ctx, dst, src, n uint64) {
	d.RelocateParts(ctx, []RelocatePart{{Dst: dst, Src: src, N: n}})
}

// RelocateParts performs one relocate operation over multiple spans,
// assembling each destination cacheline's new bytes in full before issuing a
// single store for it. Destination lines are therefore update-atomic: a line
// that reaches the persistence domain carries either none or all of the
// operation's bytes for that line — the invariant the reached bitmap's
// per-line granularity relies on during recovery (Observation 4), both for
// objects whose source is not line-aligned and for small objects sharing a
// destination line (which the defragmenter relocates as one cluster through
// this call).
func (d *Device) RelocateParts(ctx *sim.Ctx, parts []RelocatePart) {
	d.bump(func(s *Stats) { s.RelocateOps++ })
	// Collect the per-destination-line writes.
	type span struct {
		off  uint64 // offset within the line
		data []byte
	}
	lines := make(map[uint64][]span)
	var order []uint64
	for _, p := range parts {
		d.checkRange(p.Src, p.N)
		d.checkRange(p.Dst, p.N)
		dst, src, n := p.Dst, p.Src, p.N
		for n > 0 {
			lineIdx := dst >> LineShift
			off := dst & (LineSize - 1)
			step := LineSize - off
			if step > n {
				step = n
			}
			buf := make([]byte, step)
			d.Load(ctx, src, buf)
			if _, seen := lines[lineIdx]; !seen {
				order = append(order, lineIdx)
			}
			lines[lineIdx] = append(lines[lineIdx], span{off, buf})
			dst += step
			src += step
			n -= step
		}
	}
	// One pending-tagged store per destination line, covering the full span
	// this operation writes there.
	for _, lineIdx := range order {
		spans := lines[lineIdx]
		lo, hi := uint64(LineSize), uint64(0)
		for _, s := range spans {
			if s.off < lo {
				lo = s.off
			}
			if end := s.off + uint64(len(s.data)); end > hi {
				hi = end
			}
		}
		buf := make([]byte, hi-lo)
		// Gaps between spans within [lo,hi) keep their current contents.
		d.Load(ctx, lineIdx<<LineShift+lo, buf)
		for _, s := range spans {
			copy(buf[s.off-lo:], s.data)
		}
		d.storeInternal(ctx, lineIdx<<LineShift+lo, buf, true)
	}
}

// FlushAll writes every dirty cached line back to media (clwb+sfence over
// the whole cache). Used by terminate() before releasing relocation pages
// and by tests that need a fully persisted heap.
func (d *Device) FlushAll(ctx *sim.Ctx) {
	for i := range d.sets {
		set := &d.sets[i]
		set.mu.Lock()
		for w := range set.ways {
			l := &set.ways[w]
			if l.tag != 0 && l.dirty {
				d.writeMediaLine(ctx, l.tag-1, &l.data, l.pending)
				l.dirty = false
				l.pending = false
			}
		}
		set.mu.Unlock()
	}
	d.Sfence(ctx)
}
