package pmem

import (
	"slices"
	"sync"

	"ffccd/internal/obsv"
	"ffccd/internal/sim"
)

// fillLine loads the newest persistent copy of lineIdx (in-flight beats
// media) into buf. Caller holds set.mu for the line's set.
func (d *Device) fillLine(set *cacheSet, lineIdx uint64, buf *[LineSize]byte) {
	if i := set.inflightIndex(lineIdx); i >= 0 {
		*buf = set.inflight[i].data
		return
	}
	copy(buf[:], d.media[lineIdx<<LineShift:(lineIdx+1)<<LineShift])
}

// lockLine locks the set for lineIdx and ensures the line is resident,
// filling from the persistence domain on a miss (evicting a victim if
// needed). It returns the locked set, the resident line, and whether the
// access hit in the cache. The caller mutates the line and unlocks set.mu.
func (d *Device) lockLine(ctx *sim.Ctx, lineIdx uint64) (set *cacheSet, line *cacheLine, hit bool) {
	set = d.setOf(lineIdx)
	d.lockSet(set)
	line, hit = d.resident(ctx, set, lineIdx)
	return set, line, hit
}

// resident ensures lineIdx is cached in set — the set the line maps to,
// which the caller has locked (or owns exclusively) — evicting a victim and
// filling from the persistence domain on a miss. Returns the resident line
// and whether the access hit.
func (d *Device) resident(ctx *sim.Ctx, set *cacheSet, lineIdx uint64) (line *cacheLine, hit bool) {
	tag := lineIdx + 1
	if w := set.mruWay; set.tags[w] == tag {
		set.tick++
		set.ages[w] = set.tick
		return &set.ways[w], true
	}
	set.tick++
	victim := 0
	var oldest uint32 = ^uint32(0)
	for w, t := range set.tags {
		if t == tag {
			set.ages[w] = set.tick
			set.mruWay = uint32(w)
			return &set.ways[w], true
		}
		if t == 0 {
			if oldest != 0 {
				victim, oldest = w, 0
			}
			continue
		}
		if a := set.ages[w]; a < oldest {
			victim, oldest = w, a
		}
	}
	// Miss: evict the victim and fill.
	l := &set.ways[victim]
	if vt := set.tags[victim]; vt != 0 && l.dirty {
		d.lineShard(vt - 1).c[cEvictions].Add(1)
		d.writeMediaLine(ctx, set, vt-1, &l.data, l.pending)
	}
	set.tags[victim] = tag
	set.ages[victim] = set.tick
	set.mruWay = uint32(victim)
	l.dirty = false
	l.pending = false
	d.fillLine(set, lineIdx, &l.data)
	return l, false
}

// Load reads len(buf) bytes at addr through the cache, charging hit/miss
// latencies. TLB translation is charged by the caller, which knows the
// virtual address.
func (d *Device) Load(ctx *sim.Ctx, addr uint64, buf []byte) {
	d.checkRange(addr, uint64(len(buf)))
	lineIdx := addr >> LineShift
	off := addr & (LineSize - 1)
	shard := d.lineShard(lineIdx)
	if off+uint64(len(buf)) <= LineSize {
		// Fast path: the access is contained in a single line (the dominant
		// case — field reads, pointers, headers).
		set, l, hit := d.lockLine(ctx, lineIdx)
		copy(buf, l.data[off:off+uint64(len(buf))])
		d.unlockSet(set)
		shard.c[cLoads].Add(1)
		if hit {
			ctx.Charge(d.cfg.L2Latency)
			shard.c[cCacheHits].Add(1)
		} else {
			ctx.Charge(d.cfg.L2Latency + d.cfg.PMReadLatency)
			shard.c[cCacheMisses].Add(1)
			shard.c[cMediaReads].Add(1)
		}
		return
	}
	var hits, misses uint64
	if d.span && d.exclusive {
		// Span fast path: resolve consecutive lines in one device entry —
		// the single lock-elision check above covers the whole span. Returns
		// the unconsumed remainder (non-empty only when a set held in-flight
		// lines), which the per-line loop below finishes.
		hits, misses, addr, buf = d.loadSpan(ctx, addr, buf)
	}
	for len(buf) > 0 {
		lineIdx = addr >> LineShift
		off = addr & (LineSize - 1)
		n := LineSize - off
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		set, l, hit := d.lockLine(ctx, lineIdx)
		copy(buf[:n], l.data[off:off+n])
		d.unlockSet(set)
		if hit {
			hits++
		} else {
			misses++
		}
		buf = buf[n:]
		addr += n
	}
	ctx.Charge(hits*d.cfg.L2Latency + misses*(d.cfg.L2Latency+d.cfg.PMReadLatency))
	shard.c[cLoads].Add(1)
	if hits > 0 {
		shard.c[cCacheHits].Add(hits)
	}
	if misses > 0 {
		shard.c[cCacheMisses].Add(misses)
		shard.c[cMediaReads].Add(misses)
	}
}

// loadSpan is the multi-line load fast path, entered only on exclusive-mode
// devices with the span path enabled: one set lookup seeds the span
// (consecutive lines map to consecutive sets, so the index advances
// incrementally instead of re-running the fastmod per line), the caller's
// lock-elision check and batched stat/cycle charges cover every line, and
// eviction behavior is byte-identical to the per-line path (both run
// resident). A set that holds in-flight lines ends the span: the remainder
// is returned to the caller's per-line loop, whose fill path consults the
// in-flight buffer.
func (d *Device) loadSpan(ctx *sim.Ctx, addr uint64, buf []byte) (hits, misses uint64, raddr uint64, rbuf []byte) {
	lineIdx := addr >> LineShift
	si := d.setIndex(lineIdx)
	for len(buf) > 0 {
		set := &d.sets[si]
		if len(set.inflight) != 0 {
			break
		}
		off := addr & (LineSize - 1)
		n := LineSize - off
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		l, hit := d.resident(ctx, set, lineIdx)
		copy(buf[:n], l.data[off:off+n])
		if hit {
			hits++
		} else {
			misses++
		}
		buf = buf[n:]
		addr += n
		lineIdx++
		if si++; si == d.nset {
			si = 0
		}
	}
	return hits, misses, addr, buf
}

// Store writes data at addr through the cache (write-allocate, write-back).
func (d *Device) Store(ctx *sim.Ctx, addr uint64, data []byte) {
	d.storeInternal(ctx, addr, data, false)
}

func (d *Device) storeInternal(ctx *sim.Ctx, addr uint64, data []byte, pending bool) {
	d.checkRange(addr, uint64(len(data)))
	lineIdx := addr >> LineShift
	off := addr & (LineSize - 1)
	shard := d.lineShard(lineIdx)
	if off+uint64(len(data)) <= LineSize {
		// Fast path: single-line store.
		set, l, hit := d.lockLine(ctx, lineIdx)
		copy(l.data[off:off+uint64(len(data))], data)
		l.dirty = true
		if pending {
			l.pending = true
		}
		d.unlockSet(set)
		shard.c[cStores].Add(1)
		if hit {
			ctx.Charge(d.cfg.L2Latency)
			shard.c[cCacheHits].Add(1)
		} else {
			ctx.Charge(d.cfg.L2Latency + d.cfg.PMReadLatency)
			shard.c[cCacheMisses].Add(1)
			shard.c[cMediaReads].Add(1)
		}
		return
	}
	var hits, misses uint64
	if d.span && d.exclusive {
		// Span fast path; see loadSpan.
		hits, misses, addr, data = d.storeSpan(ctx, addr, data, pending)
	}
	for len(data) > 0 {
		lineIdx = addr >> LineShift
		off = addr & (LineSize - 1)
		n := LineSize - off
		if n > uint64(len(data)) {
			n = uint64(len(data))
		}
		set, l, hit := d.lockLine(ctx, lineIdx)
		copy(l.data[off:off+n], data[:n])
		l.dirty = true
		if pending {
			l.pending = true
		}
		d.unlockSet(set)
		if hit {
			hits++
		} else {
			misses++
		}
		data = data[n:]
		addr += n
	}
	ctx.Charge(hits*d.cfg.L2Latency + misses*(d.cfg.L2Latency+d.cfg.PMReadLatency))
	shard.c[cStores].Add(1)
	if hits > 0 {
		shard.c[cCacheHits].Add(hits)
	}
	if misses > 0 {
		shard.c[cCacheMisses].Add(misses)
		shard.c[cMediaReads].Add(misses)
	}
}

// storeSpan is the multi-line store fast path — loadSpan's mutating twin
// (write-allocate, identical set-index seeding, in-flight fallback and
// eviction behavior).
func (d *Device) storeSpan(ctx *sim.Ctx, addr uint64, data []byte, pending bool) (hits, misses uint64, raddr uint64, rdata []byte) {
	lineIdx := addr >> LineShift
	si := d.setIndex(lineIdx)
	for len(data) > 0 {
		set := &d.sets[si]
		if len(set.inflight) != 0 {
			break
		}
		off := addr & (LineSize - 1)
		n := LineSize - off
		if n > uint64(len(data)) {
			n = uint64(len(data))
		}
		l, hit := d.resident(ctx, set, lineIdx)
		copy(l.data[off:off+n], data[:n])
		l.dirty = true
		if pending {
			l.pending = true
		}
		if hit {
			hits++
		} else {
			misses++
		}
		data = data[n:]
		addr += n
		lineIdx++
		if si++; si == d.nset {
			si = 0
		}
	}
	return hits, misses, addr, data
}

// Clwb initiates write-back of the line containing addr. The line becomes
// clean in the cache and its contents move to the in-flight buffer: durable
// only after the next Sfence (or if the crash policy is merciful). A clwb of
// a line that is not dirty is a no-op beyond its access cost.
func (d *Device) Clwb(ctx *sim.Ctx, addr uint64) {
	d.checkRange(addr, 1)
	lineIdx := addr >> LineShift
	d.lineShard(lineIdx).c[cClwbs].Add(1)
	set := d.setOf(lineIdx)
	d.lockSet(set)
	for w, t := range set.tags {
		if t == lineIdx+1 {
			l := &set.ways[w]
			if l.dirty {
				if i := set.inflightIndex(lineIdx); i >= 0 {
					fl := &set.inflight[i]
					fl.data = l.data
					fl.pending = fl.pending || l.pending
				} else {
					set.inflight = append(set.inflight, inflightEntry{
						lineIdx: lineIdx, pending: l.pending, data: l.data,
					})
					if !set.enqueued {
						set.enqueued = true
						si := d.setIndex(lineIdx)
						if d.exclusive {
							d.pend = append(d.pend, si)
						} else {
							d.pendMu.Lock()
							d.pend = append(d.pend, si)
							d.pendMu.Unlock()
						}
					}
				}
				l.dirty = false
				l.pending = false
				ctx.PendingFlushes++
			}
			break
		}
	}
	d.unlockSet(set)
	ctx.Charge(d.cfg.L2Latency + d.cfg.WPQLatency)
}

// sfenceScratch holds Sfence's reusable working set.
type sfenceScratch struct {
	sets    []int
	reached []uint64
}

var sfencePool = sync.Pool{New: func() any { return new(sfenceScratch) }}

// Sfence drains all in-flight lines into the persistence domain and stalls
// the issuing thread. (Real sfence orders only the issuing core's stores;
// draining globally is a conservative simplification that never weakens the
// schemes' ordering assumptions — documented in DESIGN.md.) Only sets that
// actually hold in-flight lines are visited, and pending-line RBB
// notifications are issued in ascending line order so concurrent and
// sequential runs drain identically.
func (d *Device) Sfence(ctx *sim.Ctx) {
	d.Site(ctx, SiteSfence)
	d.ctxShard(ctx).c[cSfences].Add(1)

	sc := sfencePool.Get().(*sfenceScratch)
	if d.exclusive {
		sc.sets = append(sc.sets[:0], d.pend...)
		d.pend = d.pend[:0]
	} else {
		d.pendMu.Lock()
		sc.sets = append(sc.sets[:0], d.pend...)
		d.pend = d.pend[:0]
		d.pendMu.Unlock()
	}

	drained := 0
	reached := sc.reached[:0]
	for _, si := range sc.sets {
		set := &d.sets[si]
		d.lockSet(set)
		set.enqueued = false
		for i := range set.inflight {
			fl := &set.inflight[i]
			copy(d.media[fl.lineIdx<<LineShift:], fl.data[:])
			d.touchLine(fl.lineIdx)
			if fl.pending {
				reached = append(reached, fl.lineIdx)
			}
		}
		drained += len(set.inflight)
		set.inflight = set.inflight[:0]
		d.unlockSet(set)
	}
	var stall uint64
	if drained > 0 {
		d.ctxShard(ctx).c[cMediaWrites].Add(uint64(drained))
		stall = uint64(drained) * d.cfg.PMWriteBandwidthPenalty
		ctx.Charge(stall)
	}
	if h := d.hWPQ; h != nil {
		h.Observe(uint64(drained))
		if d.ringRec {
			d.obs.Tracer.Instant(ctx, obsv.KindWPQDrain, uint64(drained))
		}
	}
	slices.Sort(reached)
	for _, lineIdx := range reached {
		d.notifyReached(ctx, lineIdx)
	}
	sc.reached = reached[:0]
	sfencePool.Put(sc)
	d.Site(ctx, SiteWPQDrain)
	if ctx.PendingFlushes > 0 || drained > 0 {
		// The fence exposes the full PM write latency — the stall FFCCD's
		// fence-free design eliminates (§3.3.3).
		ctx.Charge(d.cfg.PMWriteLatency)
		stall += d.cfg.PMWriteLatency
	} else {
		ctx.Charge(d.cfg.WPQLatency)
		stall += d.cfg.WPQLatency
	}
	ctx.PendingFlushes = 0
	if p := d.drainProbe; p != nil {
		p(ctx, stall)
	}
}

// FlushAll writes every dirty cached line back to media (clwb+sfence over
// the whole cache). Used by terminate() before releasing relocation pages
// and by tests that need a fully persisted heap.
func (d *Device) FlushAll(ctx *sim.Ctx) {
	for i := range d.sets {
		set := &d.sets[i]
		d.lockSet(set)
		for w, t := range set.tags {
			l := &set.ways[w]
			if t != 0 && l.dirty {
				d.writeMediaLine(ctx, set, t-1, &l.data, l.pending)
				l.dirty = false
				l.pending = false
			}
		}
		d.unlockSet(set)
	}
	d.Sfence(ctx)
}
