package pmem

// Crash-site instrumentation: every persistence-relevant event in the
// simulated machine — fence/WPQ drains, relocate issues, moved-bit updates,
// reference-fixup passes, epoch-state transitions, recovery steps — passes
// through Device.Site. With no recorder armed the hook is one atomic pointer
// load and a predicted branch (the zero-overhead contract the golden cycle
// tests and ffccd-bench pin). With a recorder armed, every passage bumps a
// global site counter; a schedule can name an exact counter value at which
// the machine "loses power", turning the §7.1 crash campaign from a random
// step-count lottery into a deterministic, enumerable explorer: a trial first
// runs to completion counting sites, then replays with an armed index that
// fires the crash at the exact same event.
//
// Firing is a panic with *CrashAtSite. The harness (internal/faultinject)
// drives armed trials single-threaded and recovers the panic at the trial
// driver, then calls Device.Crash() — the volatile machine state at the
// panic point is exactly the state the power failure destroys. Code between
// a site and the next device operation holds no device locks (sites are
// placed only at lock-free points), and engine-side locks are either
// deferred (released during unwinding) or not held across device calls, so
// the abandoned pre-crash engine never wedges the device.

import (
	"fmt"
	"sync/atomic"

	"ffccd/internal/obsv"
	"ffccd/internal/sim"
)

// SiteClass groups crash sites by the event they follow. The classes mirror
// the windows the paper's Observations 1–4 reason about.
type SiteClass uint8

const (
	// SiteSfence is the entry of an Sfence: the WPQ still holds every
	// in-flight line, so the crash policy decides all of them.
	SiteSfence SiteClass = iota
	// SiteWPQDrain is an Sfence that completed its drain: every previously
	// in-flight line is on media and the RBB has been notified.
	SiteWPQDrain
	// SiteRelocate is the issue of a relocate operation, before any
	// destination line is written.
	SiteRelocate
	// SiteRelocateLine follows each destination-line store of a relocate —
	// the mid-operation window where some of a cluster's lines are (volatile)
	// new data and the rest still hold old bytes.
	SiteRelocateLine
	// SiteMovedBit follows a persistent moved-bit update (set or clear),
	// before any flush of it — the window between moved-bit and pointer
	// fixup.
	SiteMovedBit
	// SiteBarrierFixup brackets a reference-fixup reachability pass
	// (terminate or recovery).
	SiteBarrierFixup
	// SiteEpochTransition brackets a durable GC phase-word transition
	// (idle→compacting at summary, compacting→idle at terminate).
	SiteEpochTransition
	// SiteRecoveryStep follows each step of Engine recovery — the class that
	// makes crash-during-recovery schedules addressable.
	SiteRecoveryStep

	// NumSiteClasses is the number of site classes.
	NumSiteClasses
)

var siteClassNames = [NumSiteClasses]string{
	"sfence", "wpq-drain", "relocate", "relocate-line", "moved-bit",
	"barrier-fixup", "epoch-transition", "recovery-step",
}

func (c SiteClass) String() string {
	if int(c) < len(siteClassNames) {
		return siteClassNames[c]
	}
	return "unknown"
}

// ParseSiteClass is the inverse of SiteClass.String.
func ParseSiteClass(s string) (SiteClass, bool) {
	for i, n := range siteClassNames {
		if n == s {
			return SiteClass(i), true
		}
	}
	return 0, false
}

// SiteCensus summarises the site passages one recorder observed.
type SiteCensus struct {
	// Total is the number of sites passed; valid schedule indices are
	// [0, Total).
	Total uint64
	// ByClass counts passages per class.
	ByClass [NumSiteClasses]uint64
	// FirstIndex is the global index of the first passage of each class, or
	// -1 if the class never fired — how campaigns target a class window
	// deterministically.
	FirstIndex [NumSiteClasses]int64
}

// CrashAtSite is the panic value an armed site recorder fires when the
// global site counter reaches the armed index. Harnesses recover it at the
// trial driver and call Device.Crash.
type CrashAtSite struct {
	Index uint64
	Class SiteClass
}

func (c *CrashAtSite) Error() string {
	return fmt.Sprintf("pmem: scheduled crash at site %d (%s)", c.Index, c.Class)
}

// SiteRecorder counts crash-site passages and optionally fires a scheduled
// crash at an exact index. Counting is atomic, so the un-armed (census) mode
// tolerates concurrent simulation threads; an *armed* recorder must only be
// driven single-threaded — the firing panic unwinds the goroutine that hit
// the site, which must be the harness driver.
type SiteRecorder struct {
	total atomic.Uint64
	class [NumSiteClasses]atomic.Uint64
	first [NumSiteClasses]atomic.Int64
	arm   int64 // index to fire at; < 0 = census only
}

func newSiteRecorder(arm int64) *SiteRecorder {
	r := &SiteRecorder{arm: arm}
	for i := range r.first {
		r.first[i].Store(-1)
	}
	return r
}

// hit records one passage and reports its global index and whether the
// armed schedule fires here.
func (r *SiteRecorder) hit(class SiteClass) (idx uint64, fire bool) {
	idx = r.total.Add(1) - 1
	r.class[class].Add(1)
	r.first[class].CompareAndSwap(-1, int64(idx))
	return idx, r.arm >= 0 && idx == uint64(r.arm)
}

// Census snapshots the recorder's counts.
func (r *SiteRecorder) Census() SiteCensus {
	c := SiteCensus{Total: r.total.Load()}
	for i := range r.class {
		c.ByClass[i] = r.class[i].Load()
		c.FirstIndex[i] = r.first[i].Load()
	}
	return c
}

// ArmSites installs a fresh site recorder on the device. armIndex >= 0 makes
// the recorder panic with *CrashAtSite when the armIndex-th site (0-based)
// is passed; armIndex < 0 only counts. Returns the recorder so callers can
// inspect the census mid-flight. Replaces any previous recorder.
func (d *Device) ArmSites(armIndex int64) *SiteRecorder {
	r := newSiteRecorder(armIndex)
	d.sites.Store(r)
	return r
}

// DisarmSites removes the current recorder and returns its final census
// (zero census if none was armed).
func (d *Device) DisarmSites() SiteCensus {
	r := d.sites.Swap(nil)
	if r == nil {
		return SiteCensus{}
	}
	return r.Census()
}

// Site records the passage of one crash site. With no recorder armed this is
// a single atomic load and branch; it never charges simulated cycles, so
// arming a census changes no simulated result. In flight-recorder ring mode
// the passage is also traced (Arg = index<<8 | class) so a crash dump shows
// the exact sites leading up to the fault. ctx may be nil (power-loss
// paths).
func (d *Device) Site(ctx *sim.Ctx, class SiteClass) {
	r := d.sites.Load()
	if r == nil {
		return
	}
	idx, fire := r.hit(class)
	if d.ringRec && ctx != nil {
		d.obs.Tracer.Instant(ctx, obsv.KindSite, idx<<8|uint64(class))
	}
	if fire {
		panic(&CrashAtSite{Index: idx, Class: class})
	}
}
