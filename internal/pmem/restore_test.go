package pmem

import (
	"testing"

	"ffccd/internal/workpool"
)

// dirtySource builds a device with a pseudo-random footprint large enough to
// take Restore's parallel span path (> parallelRestoreBytes of page data).
func dirtySource(t *testing.T, size uint64) (*Device, *DeviceCheckpoint) {
	t.Helper()
	d, ctx := newTestDevice(size)
	x := uint64(0x243F6A8885A308D3)
	buf := make([]byte, 256)
	for off := uint64(0); off+uint64(len(buf)) < size; off += 1536 {
		for i := range buf {
			x = x*6364136223846793005 + 1442695040888963407
			buf[i] = byte(x >> 56)
		}
		d.Store(ctx, off, buf)
	}
	d.FlushAll(ctx)
	c := d.Checkpoint()
	if c.CapturedBytes() < parallelRestoreBytes {
		t.Fatalf("footprint %d below the parallel threshold %d; the test is vacuous",
			c.CapturedBytes(), parallelRestoreBytes)
	}
	return d, c
}

// TestRestoreSpansDisjointAndComplete pins the span planner: zero and copy
// spans are pairwise disjoint, in-bounds, and together rewrite exactly the
// union of the target's dirty pages and the checkpoint's pages.
func TestRestoreSpansDisjointAndComplete(t *testing.T) {
	const size = 4 << 20
	// Sparse source: every third page dirty, so a fully-dirty target has
	// pages to zero between the checkpoint's copies.
	d, ctx := newTestDevice(size)
	buf := make([]byte, 256)
	for i := range buf {
		buf[i] = byte(i)
	}
	for off := uint64(0); off+uint64(len(buf)) < size; off += 3 * DirtyPageSize {
		d.Store(ctx, off, buf)
	}
	d.FlushAll(ctx)
	c := d.Checkpoint()

	// A target whose dirty bitmap disagrees everywhere.
	own := make([]uint64, len(c.Dirty))
	for w := range own {
		own[w] = ^uint64(0)
	}
	spans := restoreSpans(own, c, size)

	covered := make(map[uint64]bool) // byte offsets, sampled per page
	var zeroBytes, copyBytes uint64
	for _, s := range spans {
		if s.mediaOff+s.n > size {
			t.Fatalf("span [%d,+%d) out of bounds", s.mediaOff, s.n)
		}
		for p := s.mediaOff >> DirtyPageShift; p<<DirtyPageShift < s.mediaOff+s.n; p++ {
			if covered[p] {
				t.Fatalf("page %d covered by two spans", p)
			}
			covered[p] = true
		}
		if s.zero {
			zeroBytes += s.n
		} else {
			if s.dataOff+s.n > uint64(len(c.PageData)) {
				t.Fatalf("copy span data [%d,+%d) beyond PageData %d", s.dataOff, s.n, len(c.PageData))
			}
			copyBytes += s.n
		}
	}
	if copyBytes != c.CapturedBytes() {
		t.Fatalf("copy spans move %d bytes, checkpoint holds %d", copyBytes, c.CapturedBytes())
	}
	if zeroBytes == 0 {
		t.Fatal("no zero spans despite extra target dirty pages")
	}
	// Every checkpoint page must be covered.
	for _, p := range c.Pages {
		if !covered[uint64(p)] {
			t.Fatalf("checkpoint page %d not covered", p)
		}
	}
}

// TestRestoreParallelEquivalence is the satellite pin for the parallel
// restore fast path: restoring the same checkpoint with and without worker
// helpers — and onto a dirty recycled device — yields the source media
// bit-identically.
func TestRestoreParallelEquivalence(t *testing.T) {
	const size = 4 << 20
	src, c := dirtySource(t, size)
	want := src.HashMedia()

	old := workpool.Parallelism()
	defer workpool.SetParallelism(old)

	for _, par := range []int{1, 8} {
		workpool.SetParallelism(par)

		fresh, _ := newTestDevice(size)
		fresh.Restore(c)
		if got := fresh.HashMedia(); got != want {
			t.Errorf("parallelism %d: fresh restore hash %#x != source %#x", par, got, want)
		}

		// Recycled target: stale dirty data everywhere the checkpoint does
		// not cover must be zeroed back to the base image.
		dirty, dctx := newTestDevice(size)
		junk := make([]byte, 512)
		for i := range junk {
			junk[i] = 0xEE
		}
		for off := uint64(0); off+512 < size; off += 4096 + 512 {
			dirty.Store(dctx, off, junk)
		}
		dirty.FlushAll(dctx)
		dirty.Restore(c)
		if got := dirty.HashMedia(); got != want {
			t.Errorf("parallelism %d: recycled restore hash %#x != source %#x", par, got, want)
		}
	}
}
