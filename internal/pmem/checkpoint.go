package pmem

import (
	"math/bits"

	"ffccd/internal/workpool"
)

// Device checkpoint/restore for the fork-based experiment driver
// (DESIGN.md §7): capture the complete simulated machine-memory state —
// persistent media, every cache set's tags/ages/lines/LRU ticks, the
// in-flight (clwb'd, unfenced) lines, the pending-set list, eADR mode and
// the cumulative counters — and later reproduce it bit-identically on a
// fresh device of the same geometry.
//
// Media is captured SPARSELY against the all-zero base image every device
// starts from: only the pages marked in the device's dirty bitmap are
// copied, so checkpoint and restore cost tracks the workload's footprint,
// not the media size. Restore relies on the target device upholding the same
// invariant (its media equals the base image outside its own dirty bitmap),
// which NewDevice/NewDeviceForRestore guarantee — fresh arrays are zero, and
// ReleaseMedia wipes recycled ones. CheckpointInto reuses the checkpoint's
// buffers, so a driver that re-checkpoints at every candidate fork point
// allocates only while the captured footprint is still growing.

// setCheckpoint is a deep copy of one cache set's volatile state.
type setCheckpoint struct {
	Tags     []uint64
	Ages     []uint32
	Ways     []cacheLine
	Tick     uint32
	Inflight []inflightEntry
	Enqueued bool
}

// DeviceCheckpoint is a deep, immutable-by-convention copy of a device's
// state. One checkpoint may be restored into any number of devices (fork
// fan-out reads it concurrently; Restore only reads the checkpoint).
type DeviceCheckpoint struct {
	// MediaLen is the source device's media size in bytes.
	MediaLen int
	// Dirty is the source's dirty-page bitmap; Pages lists the marked page
	// indices in ascending order and PageData their contents, one
	// DirtyPageSize stride per page (the final page of an unaligned media
	// size is zero-padded).
	Dirty    []uint64
	Pages    []uint32
	PageData []byte

	Sets []setCheckpoint
	Pend []int
	EADR bool

	// Stats holds the counter totals (summed over shards). The per-shard
	// spread is host-scheduling detail, not simulated state, so Restore
	// deposits the totals into shard 0 — Stats() sums shards and is exact
	// either way.
	Stats [statCount]uint64
}

// CapturedBytes is the volume of media data the checkpoint holds — the
// sparse alternative to the MediaBytes a full-image copy would move.
func (c *DeviceCheckpoint) CapturedBytes() uint64 {
	return uint64(len(c.Pages)) * DirtyPageSize
}

// MediaBytes is the source device's full media size.
func (c *DeviceCheckpoint) MediaBytes() uint64 { return uint64(c.MediaLen) }

// Checkpoint captures the device state. Call only on a quiescent device.
func (d *Device) Checkpoint() *DeviceCheckpoint {
	c := &DeviceCheckpoint{}
	d.CheckpointInto(c)
	return c
}

// CheckpointInto captures the device state into c, reusing c's buffers.
// Call only on a quiescent device.
func (d *Device) CheckpointInto(c *DeviceCheckpoint) {
	c.MediaLen = len(d.media)
	c.Dirty = append(c.Dirty[:0], d.dirty...)
	c.Pages = c.Pages[:0]
	c.PageData = c.PageData[:0]
	size := uint64(len(d.media))
	for _, p := range dirtyPages(d.dirty) {
		start := uint64(p) << DirtyPageShift
		end := start + DirtyPageSize
		c.Pages = append(c.Pages, p)
		if end <= size {
			c.PageData = append(c.PageData, d.media[start:end]...)
			continue
		}
		// Unaligned tail: store the partial page zero-padded to full stride.
		var pad [DirtyPageSize]byte
		copy(pad[:], d.media[start:size])
		c.PageData = append(c.PageData, pad[:]...)
	}

	if len(c.Sets) != len(d.sets) {
		c.Sets = make([]setCheckpoint, len(d.sets))
	}
	for i := range d.sets {
		set := &d.sets[i]
		cs := &c.Sets[i]
		if cap(cs.Tags) < d.nway {
			cs.Tags = make([]uint64, d.nway)
			cs.Ages = make([]uint32, d.nway)
			cs.Ways = make([]cacheLine, d.nway)
		}
		cs.Tags = cs.Tags[:d.nway]
		cs.Ages = cs.Ages[:d.nway]
		cs.Ways = cs.Ways[:d.nway]
		copy(cs.Tags, set.tags)
		copy(cs.Ages, set.ages)
		copy(cs.Ways, set.ways)
		cs.Tick = set.tick
		cs.Inflight = append(cs.Inflight[:0], set.inflight...)
		cs.Enqueued = set.enqueued
	}
	c.Pend = append(c.Pend[:0], d.pend...)
	c.EADR = d.eADR.Load()

	var t [statCount]uint64
	for i := range d.stat {
		for j := 0; j < statCount; j++ {
			t[j] += d.stat[i].c[j].Load()
		}
	}
	c.Stats = t
}

// parallelRestoreBytes is the media volume above which Restore fans its
// spans out on the worker pool; below it the fan-out overhead exceeds the
// copy cost.
const parallelRestoreBytes = 1 << 20

// restoreSpan is one contiguous media range a Restore must rewrite: either
// zeroed (a page of the target's dirty set the checkpoint does not cover) or
// copied from the checkpoint's page data.
type restoreSpan struct {
	mediaOff uint64
	dataOff  uint64 // into DeviceCheckpoint.PageData; copy spans only
	n        uint64
	zero     bool
}

// restoreSpans plans a Restore as coalesced disjoint spans: the zero walk
// over own &^ checkpoint pages, then the checkpoint's page copies, with runs
// of consecutive pages merged. Zero and copy spans address disjoint page
// sets by construction.
func restoreSpans(own []uint64, c *DeviceCheckpoint, size uint64) []restoreSpan {
	var spans []restoreSpan
	push := func(s restoreSpan) {
		if n := len(spans); n > 0 {
			prev := &spans[n-1]
			if prev.zero == s.zero && prev.mediaOff+prev.n == s.mediaOff &&
				(s.zero || prev.dataOff+prev.n == s.dataOff) {
				prev.n += s.n
				return
			}
		}
		spans = append(spans, s)
	}
	for w, bw := range own {
		if w < len(c.Dirty) {
			bw &^= c.Dirty[w]
		}
		for bw != 0 {
			p := uint64(w<<6 + bits.TrailingZeros64(bw))
			bw &= bw - 1
			start := p << DirtyPageShift
			end := start + DirtyPageSize
			if end > size {
				end = size
			}
			if end > start {
				push(restoreSpan{mediaOff: start, n: end - start, zero: true})
			}
		}
	}
	for i, p := range c.Pages {
		start := uint64(p) << DirtyPageShift
		end := start + DirtyPageSize
		if end > size {
			end = size
		}
		if end > start {
			push(restoreSpan{mediaOff: start, dataOff: uint64(i) << DirtyPageShift, n: end - start})
		}
	}
	return spans
}

// dirtyPages expands a dirty bitmap into ascending page indices.
func dirtyPages(bitmap []uint64) []uint32 {
	var out []uint32
	for w, bw := range bitmap {
		for bw != 0 {
			out = append(out, uint32(w<<6+bits.TrailingZeros64(bw)))
			bw &= bw - 1
		}
	}
	return out
}

// Restore overwrites the device's state from c. The device must have the
// same media size and cache geometry as the checkpoint's source, and must
// uphold the base-image invariant (media all-zero outside its dirty
// bitmap). Call only on a quiescent device; the checkpoint itself is not
// modified, so several devices may restore from the same checkpoint
// concurrently.
func (d *Device) Restore(c *DeviceCheckpoint) {
	if c.MediaLen != len(d.media) || len(c.Sets) != len(d.sets) {
		panic("pmem: Restore geometry mismatch")
	}
	size := uint64(len(d.media))
	// Zero this device's dirty pages the checkpoint does not cover (its
	// covered pages are overwritten below) and copy the checkpoint's pages
	// in, then adopt its bitmap. Runs of consecutive pages coalesce into
	// spans — one clear()/copy() per span instead of one call per page — and
	// a large restore fans the spans out on the worker pool: the spans are
	// pairwise disjoint byte ranges and each span's content is independent
	// of every other, so host execution order cannot change the result.
	spans := restoreSpans(d.dirty, c, size)
	apply := func(s restoreSpan) {
		if s.zero {
			clear(d.media[s.mediaOff : s.mediaOff+s.n])
		} else {
			copy(d.media[s.mediaOff:s.mediaOff+s.n], c.PageData[s.dataOff:s.dataOff+s.n])
		}
	}
	var total uint64
	for _, s := range spans {
		total += s.n
	}
	if total >= parallelRestoreBytes && len(spans) > 1 {
		_ = workpool.ForEach(len(spans), func(i int) error {
			apply(spans[i])
			return nil
		})
	} else {
		for _, s := range spans {
			apply(s)
		}
	}
	copy(d.dirty, c.Dirty)
	for i := range d.sets {
		set := &d.sets[i]
		cs := &c.Sets[i]
		copy(set.tags, cs.Tags)
		copy(set.ages, cs.Ages)
		copy(set.ways, cs.Ways)
		set.tick = cs.Tick
		set.inflight = append(set.inflight[:0], cs.Inflight...)
		set.enqueued = cs.Enqueued
	}
	d.pend = append(d.pend[:0], c.Pend...)
	d.eADR.Store(c.EADR)
	for i := range d.stat {
		for j := 0; j < statCount; j++ {
			d.stat[i].c[j].Store(0)
		}
	}
	for j := 0; j < statCount; j++ {
		d.stat[0].c[j].Store(c.Stats[j])
	}
}
