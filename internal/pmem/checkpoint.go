package pmem

// Device checkpoint/restore for the fork-based experiment driver
// (DESIGN.md §7): capture the complete simulated machine-memory state —
// persistent media, every cache set's tags/ages/lines/LRU ticks, the
// in-flight (clwb'd, unfenced) lines, the pending-set list, eADR mode and
// the cumulative counters — and later reproduce it bit-identically on a
// fresh device of the same geometry. CheckpointInto reuses the checkpoint's
// buffers (the media copy dominates), so a driver that re-checkpoints at
// every candidate fork point allocates only on the first capture.

// setCheckpoint is a deep copy of one cache set's volatile state.
type setCheckpoint struct {
	Tags     []uint64
	Ages     []uint32
	Ways     []cacheLine
	Tick     uint32
	Inflight []inflightEntry
	Enqueued bool
}

// DeviceCheckpoint is a deep, immutable-by-convention copy of a device's
// state. One checkpoint may be restored into any number of devices (fork
// fan-out reads it concurrently; Restore only reads the checkpoint).
type DeviceCheckpoint struct {
	Media []byte
	Sets  []setCheckpoint
	Pend  []int
	EADR  bool

	// Stats holds the counter totals (summed over shards). The per-shard
	// spread is host-scheduling detail, not simulated state, so Restore
	// deposits the totals into shard 0 — Stats() sums shards and is exact
	// either way.
	Stats [statCount]uint64
}

// Checkpoint captures the device state. Call only on a quiescent device.
func (d *Device) Checkpoint() *DeviceCheckpoint {
	c := &DeviceCheckpoint{}
	d.CheckpointInto(c)
	return c
}

// CheckpointInto captures the device state into c, reusing c's buffers.
// Call only on a quiescent device.
func (d *Device) CheckpointInto(c *DeviceCheckpoint) {
	if cap(c.Media) < len(d.media) {
		c.Media = make([]byte, len(d.media))
	}
	c.Media = c.Media[:len(d.media)]
	copy(c.Media, d.media)

	if len(c.Sets) != len(d.sets) {
		c.Sets = make([]setCheckpoint, len(d.sets))
	}
	for i := range d.sets {
		set := &d.sets[i]
		cs := &c.Sets[i]
		if cap(cs.Tags) < d.nway {
			cs.Tags = make([]uint64, d.nway)
			cs.Ages = make([]uint32, d.nway)
			cs.Ways = make([]cacheLine, d.nway)
		}
		cs.Tags = cs.Tags[:d.nway]
		cs.Ages = cs.Ages[:d.nway]
		cs.Ways = cs.Ways[:d.nway]
		copy(cs.Tags, set.tags)
		copy(cs.Ages, set.ages)
		copy(cs.Ways, set.ways)
		cs.Tick = set.tick
		cs.Inflight = append(cs.Inflight[:0], set.inflight...)
		cs.Enqueued = set.enqueued
	}
	c.Pend = append(c.Pend[:0], d.pend...)
	c.EADR = d.eADR.Load()

	var t [statCount]uint64
	for i := range d.stat {
		for j := 0; j < statCount; j++ {
			t[j] += d.stat[i].c[j].Load()
		}
	}
	c.Stats = t
}

// Restore overwrites the device's state from c. The device must have the
// same media size and cache geometry as the checkpoint's source. Call only
// on a quiescent device; the checkpoint itself is not modified, so several
// devices may restore from the same checkpoint concurrently.
func (d *Device) Restore(c *DeviceCheckpoint) {
	if len(c.Media) != len(d.media) || len(c.Sets) != len(d.sets) {
		panic("pmem: Restore geometry mismatch")
	}
	copy(d.media, c.Media)
	for i := range d.sets {
		set := &d.sets[i]
		cs := &c.Sets[i]
		copy(set.tags, cs.Tags)
		copy(set.ages, cs.Ages)
		copy(set.ways, cs.Ways)
		set.tick = cs.Tick
		set.inflight = append(set.inflight[:0], cs.Inflight...)
		set.enqueued = cs.Enqueued
	}
	d.pend = append(d.pend[:0], c.Pend...)
	d.eADR.Store(c.EADR)
	for i := range d.stat {
		for j := 0; j < statCount; j++ {
			d.stat[i].c[j].Store(0)
		}
	}
	for j := 0; j < statCount; j++ {
		d.stat[0].c[j].Store(c.Stats[j])
	}
}
