package pmem

import (
	"fmt"
	"sync"
	"testing"

	"ffccd/internal/sim"
)

// The device micro-benchmarks measure host-side cost of the simulated
// machine's per-access path — the code the tentpole de-contends. Each
// benchmark runs at 1, 4 and 8 goroutines; the simulated cycle accounting is
// identical at every parallelism level, only host ns/op changes.

func benchDevice() (*Device, *sim.Config) {
	cfg := sim.DefaultConfig()
	d := NewDevice(&cfg, 64<<20)
	return d, &cfg
}

// benchParallel splits b.N across exactly g goroutines, each with its own
// sim.Ctx and a disjoint 4 MB address window.
func benchParallel(b *testing.B, g int, cfg *sim.Config, body func(ctx *sim.Ctx, base, i uint64)) {
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / g
	for w := 0; w < g; w++ {
		wg.Add(1)
		n := per
		if w == g-1 {
			n = b.N - per*(g-1)
		}
		go func(id, n int) {
			defer wg.Done()
			ctx := sim.NewCtx(cfg)
			base := uint64(id) * (4 << 20)
			for i := 0; i < n; i++ {
				body(ctx, base, uint64(i))
			}
		}(w, n)
	}
	wg.Wait()
}

func BenchmarkDeviceLoad(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			d, cfg := benchDevice()
			benchParallel(b, g, cfg, func(ctx *sim.Ctx, base, i uint64) {
				var buf [8]byte
				d.Load(ctx, base+(i%32768)*LineSize, buf[:])
			})
		})
	}
}

func BenchmarkDeviceStoreClwbSfence(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			d, cfg := benchDevice()
			benchParallel(b, g, cfg, func(ctx *sim.Ctx, base, i uint64) {
				var buf [16]byte
				addr := base + (i%8192)*LineSize
				d.Store(ctx, addr, buf[:])
				d.Clwb(ctx, addr)
				if i%8 == 7 {
					d.Sfence(ctx)
				}
			})
		})
	}
}

func BenchmarkRelocateParts(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			d, cfg := benchDevice()
			benchParallel(b, g, cfg, func(ctx *sim.Ctx, base, i uint64) {
				// A representative cluster move: two sub-line objects sharing
				// a destination line plus one full line.
				off := base + (i%4096)*LineSize
				parts := [3]RelocatePart{
					{Dst: off + (2 << 20), Src: off, N: 40},
					{Dst: off + (2 << 20) + 40, Src: off + 128, N: 24},
					{Dst: off + (2 << 20) + LineSize, Src: off + 256, N: LineSize},
				}
				d.RelocateParts(ctx, parts[:])
			})
		})
	}
}
