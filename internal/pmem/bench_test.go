package pmem

import (
	"fmt"
	"sync"
	"testing"

	"ffccd/internal/sim"
)

// The device micro-benchmarks measure host-side cost of the simulated
// machine's per-access path — the code the tentpole de-contends. Each
// benchmark runs at 1, 4 and 8 goroutines; the simulated cycle accounting is
// identical at every parallelism level, only host ns/op changes.

func benchDevice() (*Device, *sim.Config) {
	cfg := sim.DefaultConfig()
	d := NewDevice(&cfg, 64<<20)
	return d, &cfg
}

// benchParallel splits b.N across exactly g goroutines, each with its own
// sim.Ctx and a disjoint 4 MB address window.
func benchParallel(b *testing.B, g int, cfg *sim.Config, body func(ctx *sim.Ctx, base, i uint64)) {
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / g
	for w := 0; w < g; w++ {
		wg.Add(1)
		n := per
		if w == g-1 {
			n = b.N - per*(g-1)
		}
		go func(id, n int) {
			defer wg.Done()
			ctx := sim.NewCtx(cfg)
			base := uint64(id) * (4 << 20)
			for i := 0; i < n; i++ {
				body(ctx, base, uint64(i))
			}
		}(w, n)
	}
	wg.Wait()
}

func BenchmarkDeviceLoad(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			d, cfg := benchDevice()
			benchParallel(b, g, cfg, func(ctx *sim.Ctx, base, i uint64) {
				var buf [8]byte
				d.Load(ctx, base+(i%32768)*LineSize, buf[:])
			})
		})
	}
}

func BenchmarkDeviceStoreClwbSfence(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			d, cfg := benchDevice()
			benchParallel(b, g, cfg, func(ctx *sim.Ctx, base, i uint64) {
				var buf [16]byte
				addr := base + (i%8192)*LineSize
				d.Store(ctx, addr, buf[:])
				d.Clwb(ctx, addr)
				if i%8 == 7 {
					d.Sfence(ctx)
				}
			})
		})
	}
}

// The span benchmarks measure the multi-line fast path against the per-line
// walk it replaces (span=false), across span lengths and under the set-array
// wrap-around worst case. Single goroutine with exclusivity on — the only
// regime where the span path engages.
func benchSpanDevice(span bool) (*Device, *sim.Ctx) {
	cfg := sim.DefaultConfig()
	d := NewDevice(&cfg, 64<<20)
	d.SetExclusive(true)
	d.SetSpanPath(span)
	return d, sim.NewCtx(&cfg)
}

func BenchmarkDeviceLoadSpan(b *testing.B) {
	for _, lines := range []int{1, 2, 4, 8} {
		for _, span := range []bool{false, true} {
			b.Run(fmt.Sprintf("lines=%d/span=%v", lines, span), func(b *testing.B) {
				d, ctx := benchSpanDevice(span)
				buf := make([]byte, lines*LineSize)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d.Load(ctx, (uint64(i)%16384)*uint64(lines)*LineSize, buf)
				}
			})
		}
	}
}

func BenchmarkDeviceStoreSpan(b *testing.B) {
	for _, lines := range []int{1, 2, 4, 8} {
		for _, span := range []bool{false, true} {
			b.Run(fmt.Sprintf("lines=%d/span=%v", lines, span), func(b *testing.B) {
				d, ctx := benchSpanDevice(span)
				data := make([]byte, lines*LineSize)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d.Store(ctx, (uint64(i)%16384)*uint64(lines)*LineSize, data)
				}
			})
		}
	}
}

// BenchmarkDeviceLoadSpanConflict is the span worst case: a cache small
// enough that an 8-line span wraps the whole set array, so every span access
// evicts lines the same span just filled.
func BenchmarkDeviceLoadSpanConflict(b *testing.B) {
	for _, span := range []bool{false, true} {
		b.Run(fmt.Sprintf("span=%v", span), func(b *testing.B) {
			cfg := sim.DefaultConfig()
			cfg.CacheBytes = 4 * 1024
			cfg.CacheWays = 2
			d := NewDevice(&cfg, 16<<20)
			d.SetExclusive(true)
			d.SetSpanPath(span)
			ctx := sim.NewCtx(&cfg)
			buf := make([]byte, 8*LineSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Load(ctx, (uint64(i)%4096)*8*LineSize, buf)
			}
		})
	}
}

func BenchmarkRelocateParts(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			d, cfg := benchDevice()
			benchParallel(b, g, cfg, func(ctx *sim.Ctx, base, i uint64) {
				// A representative cluster move: two sub-line objects sharing
				// a destination line plus one full line.
				off := base + (i%4096)*LineSize
				parts := [3]RelocatePart{
					{Dst: off + (2 << 20), Src: off, N: 40},
					{Dst: off + (2 << 20) + 40, Src: off + 128, N: 24},
					{Dst: off + (2 << 20) + LineSize, Src: off + 256, N: LineSize},
				}
				d.RelocateParts(ctx, parts[:])
			})
		})
	}
}
