package pmem

import (
	"sync"

	"ffccd/internal/obsv"
	"ffccd/internal/sim"
)

// RelocatePart is one source→destination span of a relocate operation.
type RelocatePart struct {
	Dst, Src, N uint64
}

// relocSpan is one source chunk destined for (part of) one destination line.
// Data lives in the scratch arena at [start,end); next chains spans that
// target the same destination line, in chunk order.
type relocSpan struct {
	off        uint64 // offset within the destination line
	start, end int    // arena range
	next       int    // next span for the same line, or -1
}

// relocLine is one destination line with its chain of spans.
type relocLine struct {
	lineIdx    uint64
	head, tail int
}

// relocScratch is the reusable working set of one RelocateParts call. All
// slices retain capacity and the map retains its buckets across calls, so
// the steady-state hot path allocates nothing.
type relocScratch struct {
	arena   []byte
	spans   []relocSpan
	lines   []relocLine
	lineOf  map[uint64]int
	lineBuf [LineSize]byte
}

var relocPool = sync.Pool{
	New: func() any { return &relocScratch{lineOf: make(map[uint64]int)} },
}

var zeroLine [LineSize]byte

// Relocate implements the paper's relocate instruction (§4.2): it copies n
// bytes from src to dst through the cache, tagging every destination line
// with the pending bit. No flush or fence is issued; the copied data reaches
// the persistence domain lazily (eviction, a later clwb+sfence, or ADR at
// power-off), and the RBB is notified when it does.
func (d *Device) Relocate(ctx *sim.Ctx, dst, src, n uint64) {
	d.RelocateParts(ctx, []RelocatePart{{Dst: dst, Src: src, N: n}})
}

// RelocateParts performs one relocate operation over multiple spans,
// assembling each destination cacheline's new bytes in full before issuing a
// single store for it. Destination lines are therefore update-atomic: a line
// that reaches the persistence domain carries either none or all of the
// operation's bytes for that line — the invariant the reached bitmap's
// per-line granularity relies on during recovery (Observation 4), both for
// objects whose source is not line-aligned and for small objects sharing a
// destination line (which the defragmenter relocates as one cluster through
// this call).
func (d *Device) RelocateParts(ctx *sim.Ctx, parts []RelocatePart) {
	d.Site(ctx, SiteRelocate)
	d.ctxShard(ctx).c[cRelocateOps].Add(1)
	if d.ringRec {
		var bytes uint64
		for _, p := range parts {
			bytes += p.N
		}
		d.obs.Tracer.Instant(ctx, obsv.KindRelocate, bytes)
	}
	sc := relocPool.Get().(*relocScratch)
	sc.arena = sc.arena[:0]
	sc.spans = sc.spans[:0]
	sc.lines = sc.lines[:0]
	clear(sc.lineOf)

	// Gather the per-destination-line writes: read every source chunk
	// through the cache (in operation order) into the arena and chain it to
	// its destination line.
	for _, p := range parts {
		d.checkRange(p.Src, p.N)
		d.checkRange(p.Dst, p.N)
		dst, src, n := p.Dst, p.Src, p.N
		for n > 0 {
			lineIdx := dst >> LineShift
			off := dst & (LineSize - 1)
			step := LineSize - off
			if step > n {
				step = n
			}
			start := len(sc.arena)
			sc.arena = append(sc.arena, zeroLine[:step]...)
			d.Load(ctx, src, sc.arena[start:start+int(step)])
			si := len(sc.spans)
			sc.spans = append(sc.spans, relocSpan{off: off, start: start, end: start + int(step), next: -1})
			if li, ok := sc.lineOf[lineIdx]; ok {
				sc.spans[sc.lines[li].tail].next = si
				sc.lines[li].tail = si
			} else {
				sc.lineOf[lineIdx] = len(sc.lines)
				sc.lines = append(sc.lines, relocLine{lineIdx: lineIdx, head: si, tail: si})
			}
			dst += step
			src += step
			n -= step
		}
	}
	// One pending-tagged store per destination line (in first-touch order),
	// covering the full span this operation writes there.
	for _, ln := range sc.lines {
		lo, hi := uint64(LineSize), uint64(0)
		for si := ln.head; si >= 0; si = sc.spans[si].next {
			s := &sc.spans[si]
			if s.off < lo {
				lo = s.off
			}
			if end := s.off + uint64(s.end-s.start); end > hi {
				hi = end
			}
		}
		buf := sc.lineBuf[:hi-lo]
		// Gaps between spans within [lo,hi) keep their current contents.
		d.Load(ctx, ln.lineIdx<<LineShift+lo, buf)
		for si := ln.head; si >= 0; si = sc.spans[si].next {
			s := &sc.spans[si]
			copy(buf[s.off-lo:], sc.arena[s.start:s.end])
		}
		d.storeInternal(ctx, ln.lineIdx<<LineShift+lo, buf, true)
		d.Site(ctx, SiteRelocateLine)
	}
	relocPool.Put(sc)
}
