// Package pmem simulates byte-addressable persistent memory behind a
// write-back processor cache, reproducing the Intel ADR failure model the
// paper assumes:
//
//   - Stores land in a volatile set-associative cache.
//   - clwb copies a dirty line toward the Write Pending Queue; until the next
//     sfence the line is "in flight" and MAY OR MAY NOT survive a crash.
//   - sfence drains in-flight lines into the persistence domain (WPQ → media).
//   - Natural evictions write lines back to media lazily — this is the path
//     FFCCD's fence-free design relies on.
//   - relocate (the paper's new instruction, §4.2) copies data through the
//     cache setting a pending bit on every destination line; when a pending
//     line reaches the persistence domain the Reached Bitmap Buffer is
//     notified via the RBBSink hook.
//   - Crash() discards all cached lines, applies a configurable policy to
//     in-flight lines (ADR guarantees only what reached the WPQ), and leaves
//     the media array as the exact post-crash machine state.
//
// All latencies are charged to the sim.Ctx passed to each operation. The
// device is engineered so that simulation threads share no contended host
// state on the per-access path: statistics counters are sharded atomics,
// and in-flight (clwb'd, unfenced) lines live with their cache set, under
// the same per-set lock every access already takes. See DESIGN.md ("Host
// performance model") for the invariant host-side optimizations must keep.
package pmem

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"ffccd/internal/obsv"
	"ffccd/internal/sim"
)

// LineSize is the cacheline size in bytes.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// DirtyPageShift is log2 of the dirty-tracking granularity (4 KB): the unit
// in which the device remembers which media pages may differ from the
// all-zero image a fresh device starts from. Checkpoints capture and
// restores re-apply only those pages, so fork cost tracks the workload's
// footprint instead of the media size (DESIGN.md §7).
const DirtyPageShift = 12

// DirtyPageSize is the dirty-tracking page size in bytes.
const DirtyPageSize = 1 << DirtyPageShift

// RBBSink receives notifications when a cacheline tagged by relocate reaches
// the persistence domain. The arch package's Reached Bitmap Buffer implements
// it. Implementations must not call back into Device cache operations (they
// may use MediaWrite/MediaRead, which bypass the cache).
type RBBSink interface {
	LineReached(ctx *sim.Ctx, lineAddr uint64)
}

// CrashPolicy decides, for a line that was clwb'd but not yet fenced at the
// moment of a crash, whether it reached the persistence domain. Fault
// injection enumerates both outcomes; the default policy drops everything
// (the most adversarial interpretation). Policies must be pure functions of
// the line address: they are invoked in ascending line order.
type CrashPolicy func(lineAddr uint64) bool

// PowerLossFlusher is an RBBSink whose volatile state is battery-flushed to
// media at power failure (the RBB's small residual-energy domain, §4.3).
// Crash() invokes it after the post-crash media image is final, so harnesses
// that lose the engine handle mid-recovery (nested crash schedules) still get
// the architecturally guaranteed RBB flush. The flush must be idempotent:
// engine-level harnesses may also call it explicitly.
type PowerLossFlusher interface {
	PowerLossFlush()
}

// DropAllInflight is the default CrashPolicy: no unfenced line survives.
func DropAllInflight(uint64) bool { return false }

// KeepAllInflight persists every unfenced clwb'd line.
func KeepAllInflight(uint64) bool { return true }

// cacheLine holds one way's payload. Tags and LRU ages live in separate
// per-set arrays (cacheSet.tags/ages) so the way scan on every access walks a
// few contiguous host cachelines instead of striding through the line bodies.
type cacheLine struct {
	dirty   bool
	pending bool // destination of a relocate, not yet reached persistence
	data    [LineSize]byte
}

// inflightEntry is one clwb'd-but-unfenced line. Entries live with the cache
// set their line maps to, so the per-set lock that already serializes cache
// accesses to the line also serializes its in-flight state — no global
// in-flight lock exists.
type inflightEntry struct {
	lineIdx uint64
	pending bool
	data    [LineSize]byte
}

type cacheSet struct {
	mu   sync.Mutex
	tags []uint64 // line index + 1 per way; 0 = invalid
	ages []uint32 // LRU age per way
	ways []cacheLine
	tick uint32
	// mruWay is a host-side hint: the way of the most recent hit. It is
	// always validated against tags before use, so stale values (including
	// across a checkpoint restore) only cost the full scan they avoid.
	mruWay uint32

	// inflight holds this set's clwb'd-but-unfenced lines (guarded by mu).
	// The slice's capacity is retained across drains so the steady state
	// allocates nothing.
	inflight []inflightEntry
	// enqueued records whether this set is already on the device's
	// pending-set list (guarded by mu).
	enqueued bool

	_ [64]byte // keep adjacent sets off each other's cachelines
}

// Device is a simulated persistent-memory module plus the volatile cache in
// front of it. It is safe for concurrent use by multiple simulation threads;
// per-access state is partitioned per cache set so threads touching
// different lines share no locks.
type Device struct {
	cfg   *sim.Config
	media []byte
	nset  int
	nway  int
	sets  []cacheSet

	// setMagic enables the division-free set mapping (Lemire's fastmod).
	// Non-zero only when nset is not a power of two and every line index
	// fits in 32 bits; zero falls back to the plain modulo. Either path
	// computes exactly lineIdx % nset.
	setMagic uint64

	// dirty marks DirtyPageSize media pages that may differ from the
	// all-zero base image, one bit per page. Every media-write path sets the
	// page's bit (plain or-in under exclusive mode, atomic otherwise);
	// CheckpointInto captures only marked pages, Restore zeroes/overwrites
	// only marked pages, and ReleaseMedia wipes marked pages so recycled
	// buffers are always all-zero. A spuriously set bit only costs a no-op
	// copy; a missed bit would corrupt forked runs, so every write to
	// d.media must be paired with touchLine/touchRange.
	dirty []uint64

	// pend lists the indices of sets that currently hold in-flight lines, so
	// Sfence visits only those sets instead of scanning the whole cache.
	pendMu sync.Mutex
	pend   []int

	rbbMu sync.Mutex
	rbb   RBBSink

	policyMu sync.Mutex
	policy   CrashPolicy

	eADR atomic.Bool

	// exclusive elides the per-access host locks (per-set, pending-set and
	// RBB mutexes) when a single goroutine owns the device — the dominant
	// experiment configuration (Threads == 1, where workload and GC share one
	// simulation thread). Purely a host optimization: simulated behavior is
	// identical either way. May only be toggled while the device is quiescent,
	// and must stay false whenever two goroutines can touch the device.
	exclusive bool

	stat [statShards]statShard

	// Observability (nil when disabled). hWPQ is resolved once in SetObs so
	// Sfence never touches the registry; ringRec additionally enables the
	// per-fence/per-relocate instants that only flight-recorder traces keep.
	obs     *obsv.Obs
	hWPQ    *obsv.Histogram
	ringRec bool

	// drainProbe, when set, is called at the end of every Sfence with the
	// stall cycles the fence charged to the issuing context (drain bandwidth
	// plus exposed write latency). It is a host-side read-only tap — the
	// serving path uses it for per-request WPQ-drain attribution — and costs
	// one nil check when unset.
	drainProbe func(ctx *sim.Ctx, stallCycles uint64)

	// sites is the armed crash-site recorder (nil when disarmed — the
	// default; see site.go). Atomic so arming/disarming never touches the
	// per-access locks.
	sites atomic.Pointer[SiteRecorder]

	// span gates the multi-line span fast path in Load/Store (see loadSpan).
	// Purely a host optimization — span and per-line paths produce
	// bit-identical simulated results (pinned by the span property tests) —
	// so the toggle exists only for A/B benchmarking.
	span bool
}

// spanPathDefault seeds the span flag of newly created devices (on by
// default; cmd/ffccd-bench -span=false measures the off configuration).
var spanPathDefault atomic.Bool

func init() { spanPathDefault.Store(true) }

// SetSpanPathDefault sets whether devices created from now on use the
// multi-line span fast path.
func SetSpanPathDefault(on bool) { spanPathDefault.Store(on) }

// SetSpanPath toggles this device's multi-line span fast path. Call only on
// a quiescent device.
func (d *Device) SetSpanPath(on bool) { d.span = on }

// SetObs wires the observability bundle into the device: the wpq_drain_lines
// histogram, the "device" stats snapshot group, crash instants (plus the
// bundle's OnCrash hook), and — in flight-recorder ring mode — per-fence
// drain instants. Call on a quiescent device; nil disables (the default).
// Never charges simulated cycles.
func (d *Device) SetObs(o *obsv.Obs) {
	d.obs = o
	if o == nil {
		d.hWPQ, d.ringRec = nil, false
		return
	}
	d.hWPQ = o.Metrics.Hist("wpq_drain_lines")
	d.ringRec = o.Tracer.RingMode()
	o.Metrics.RegisterGroup("device", func() map[string]uint64 {
		s := d.Stats()
		return map[string]uint64{
			"loads": s.Loads, "stores": s.Stores, "clwbs": s.Clwbs,
			"sfences": s.Sfences, "cache_hits": s.CacheHits,
			"cache_misses": s.CacheMisses, "evictions": s.Evictions,
			"media_writes": s.MediaWrites, "media_reads": s.MediaReads,
			"relocate_ops": s.RelocateOps, "pending_reach": s.PendingReach,
		}
	})
}

// SetDrainProbe installs (or with nil removes) the per-fence stall tap: fn
// runs at the end of every Sfence with the issuing context and the stall
// cycles the fence charged. fn must not charge cycles or touch device state.
// Call only on a quiescent device.
func (d *Device) SetDrainProbe(fn func(ctx *sim.Ctx, stallCycles uint64)) { d.drainProbe = fn }

// SetExclusive declares that exactly one goroutine will use the device until
// the flag is cleared, allowing the per-access locks to be skipped. Call only
// on a quiescent device.
func (d *Device) SetExclusive(on bool) { d.exclusive = on }

// lockSet/unlockSet guard a cache set's per-access state, compiling to a
// plain branch in exclusive mode.
func (d *Device) lockSet(set *cacheSet) {
	if !d.exclusive {
		set.mu.Lock()
	}
}

func (d *Device) unlockSet(set *cacheSet) {
	if !d.exclusive {
		set.mu.Unlock()
	}
}

// SetEADR switches the platform persistence domain to eADR (§4.4): on power
// failure the battery flushes *all* cache levels, so every store is durable
// once globally visible and crash consistency needs no clwb/sfence at all.
// The paper contrasts eADR's ~300 mm³ battery volume against the 0.017 mm³
// the RBB needs; this switch exists for that ablation.
func (d *Device) SetEADR(on bool) { d.eADR.Store(on) }

// EADR reports whether the device is in eADR mode.
func (d *Device) EADR() bool { return d.eADR.Load() }

// NewDevice creates a device with size bytes of all-zero persistent media,
// recycling a released device's array when one fits (recycled arrays are
// wiped back to zero by ReleaseMedia, so this is indistinguishable from a
// fresh allocation).
func NewDevice(cfg *sim.Config, size uint64) *Device {
	return newDevice(cfg, zeroMedia(size))
}

// mediaPool recycles media arrays across short-lived simulated devices: the
// fork-based experiment driver creates (and drops) one multi-MB device per
// forked run, and allocating plus faulting-in a fresh multi-MB array each
// time dominates its setup cost. Pooled arrays are always all-zero: that is
// the base image the dirty-page bitmap is relative to, so ReleaseMedia wipes
// exactly the dirty pages before pooling — footprint-proportional work.
var mediaPool sync.Pool

// zeroMedia returns an all-zero media array of the given size, pooled when
// possible.
func zeroMedia(size uint64) []byte {
	if v := mediaPool.Get(); v != nil {
		if b := v.([]byte); uint64(cap(b)) >= size {
			return b[:size]
		}
	}
	return make([]byte, size)
}

// NewDeviceForRestore creates a device intended to receive a checkpoint via
// Restore. Since pooled media is pre-zeroed it is today identical to
// NewDevice; the separate entry point remains because restore targets are
// the call sites that must pair with ReleaseMedia.
func NewDeviceForRestore(cfg *sim.Config, size uint64) *Device {
	return NewDevice(cfg, size)
}

// ReleaseMedia wipes the device's dirty pages back to the all-zero base
// image and returns the media array to the recycle pool. The device is
// unusable afterwards; callers do this only when dropping it.
func (d *Device) ReleaseMedia() {
	if d.media != nil {
		d.wipeDirty()
		mediaPool.Put(d.media)
		d.media = nil
	}
}

// wipeDirty zeroes every dirty page (returning the media to the all-zero
// base image) and clears the bitmap. Call only on a quiescent device.
func (d *Device) wipeDirty() {
	size := uint64(len(d.media))
	for w, bw := range d.dirty {
		for bw != 0 {
			p := uint64(w<<6 + bits.TrailingZeros64(bw))
			bw &= bw - 1
			start := p << DirtyPageShift
			end := start + DirtyPageSize
			if end > size {
				end = size
			}
			clear(d.media[start:end])
		}
		d.dirty[w] = 0
	}
}

// touchLine marks the dirty bit of the page holding lineIdx's line. Lines
// never straddle pages (LineSize divides DirtyPageSize).
func (d *Device) touchLine(lineIdx uint64) {
	p := lineIdx >> (DirtyPageShift - LineShift)
	if d.exclusive {
		d.dirty[p>>6] |= 1 << (p & 63)
	} else {
		atomic.OrUint64(&d.dirty[p>>6], 1<<(p&63))
	}
}

// touchRange marks every page overlapping [addr, addr+n).
func (d *Device) touchRange(addr, n uint64) {
	if n == 0 {
		return
	}
	for p, last := addr>>DirtyPageShift, (addr+n-1)>>DirtyPageShift; p <= last; p++ {
		if d.exclusive {
			d.dirty[p>>6] |= 1 << (p & 63)
		} else {
			atomic.OrUint64(&d.dirty[p>>6], 1<<(p&63))
		}
	}
}

func newDevice(cfg *sim.Config, media []byte) *Device {
	size := uint64(len(media))
	nline := cfg.CacheBytes / cfg.CacheLineSize
	nway := cfg.CacheWays
	nset := nline / nway
	if nset < 1 {
		nset = 1
	}
	npages := (size + DirtyPageSize - 1) >> DirtyPageShift
	d := &Device{
		cfg:    cfg,
		media:  media,
		nset:   nset,
		nway:   nway,
		sets:   make([]cacheSet, nset),
		dirty:  make([]uint64, (npages+63)/64),
		policy: DropAllInflight,
		span:   spanPathDefault.Load(),
	}
	for i := range d.sets {
		d.sets[i].tags = make([]uint64, nway)
		d.sets[i].ages = make([]uint32, nway)
		d.sets[i].ways = make([]cacheLine, nway)
	}
	if nset > 1 && nset&(nset-1) != 0 && size>>LineShift <= 1<<32 {
		d.setMagic = ^uint64(0)/uint64(nset) + 1
	}
	return d
}

// Size returns the media capacity in bytes.
func (d *Device) Size() uint64 { return uint64(len(d.media)) }

// SetRBB installs the reached-bitmap sink (nil disables notifications).
func (d *Device) SetRBB(s RBBSink) {
	d.rbbMu.Lock()
	d.rbb = s
	d.rbbMu.Unlock()
}

// SetCrashPolicy installs the policy applied to in-flight lines at Crash().
func (d *Device) SetCrashPolicy(p CrashPolicy) {
	d.policyMu.Lock()
	if p == nil {
		p = DropAllInflight
	}
	d.policy = p
	d.policyMu.Unlock()
}

// setOf returns the cache set for lineIdx.
func (d *Device) setOf(lineIdx uint64) *cacheSet {
	return &d.sets[d.setIndex(lineIdx)]
}

// setIndex computes lineIdx % nset without a hardware divide when setMagic
// is armed (the set count is a runtime value, so the compiler cannot
// strength-reduce the modulo itself).
func (d *Device) setIndex(lineIdx uint64) int {
	if m := d.setMagic; m != 0 {
		hi, _ := bits.Mul64(m*lineIdx, uint64(d.nset))
		return int(hi)
	}
	return int(lineIdx % uint64(d.nset))
}

func (d *Device) checkRange(addr, n uint64) {
	if addr+n > uint64(len(d.media)) || addr+n < addr {
		panic(fmt.Sprintf("pmem: access out of range: addr=%#x len=%d size=%d", addr, n, len(d.media)))
	}
}

// notifyReached reports a pending line's arrival in the persistence domain.
func (d *Device) notifyReached(ctx *sim.Ctx, lineIdx uint64) {
	d.lineShard(lineIdx).c[cPendingReach].Add(1)
	var sink RBBSink
	if d.exclusive {
		sink = d.rbb
	} else {
		d.rbbMu.Lock()
		sink = d.rbb
		d.rbbMu.Unlock()
	}
	if sink != nil {
		sink.LineReached(ctx, lineIdx<<LineShift)
	}
}

// inflightIndex returns the position of lineIdx in set.inflight, or -1.
// Caller holds set.mu.
func (set *cacheSet) inflightIndex(lineIdx uint64) int {
	for i := range set.inflight {
		if set.inflight[i].lineIdx == lineIdx {
			return i
		}
	}
	return -1
}

// writeMediaLine commits a full line to media, dropping any stale in-flight
// copy so a later crash cannot regress the line to older data. The caller
// holds the lock of the set the line maps to (set), which is the same lock
// Clwb and Sfence take for the line's in-flight state, so the media copy
// cannot interleave with a drain of the same line.
func (d *Device) writeMediaLine(ctx *sim.Ctx, set *cacheSet, lineIdx uint64, data *[LineSize]byte, pending bool) {
	copy(d.media[lineIdx<<LineShift:], data[:])
	d.touchLine(lineIdx)
	if i := set.inflightIndex(lineIdx); i >= 0 {
		last := len(set.inflight) - 1
		set.inflight[i] = set.inflight[last]
		set.inflight = set.inflight[:last]
	}
	d.lineShard(lineIdx).c[cMediaWrites].Add(1)
	if ctx != nil {
		ctx.Charge(d.cfg.PMWriteBandwidthPenalty)
	}
	if pending {
		d.notifyReached(ctx, lineIdx)
	}
}

// HashMedia digests the full persistent image (volatile cache state
// excluded) into 64 bits — the cheap bit-identity witness crash-schedule
// replays compare. Word-wise FNV-1a variant with a final avalanche; call
// only on a quiescent device.
func (d *Device) HashMedia() uint64 {
	const prime = 0x100000001b3
	h := uint64(0xcbf29ce484222325)
	b := d.media
	for len(b) >= 8 {
		w := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		h = (h ^ w) * prime
		b = b[8:]
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// SnapshotMedia returns a copy of the full persistent image (for
// determinism tests and offline analysis). Call only on a quiescent device.
func (d *Device) SnapshotMedia() []byte {
	out := make([]byte, len(d.media))
	copy(out, d.media)
	return out
}

// RestoreMedia overwrites the persistent image and drops all volatile state
// — reconstructing a captured post-crash machine. Testing only.
func (d *Device) RestoreMedia(img []byte) {
	if len(img) != len(d.media) {
		panic("pmem: RestoreMedia size mismatch")
	}
	copy(d.media, img)
	// The image is arbitrary: conservatively mark every page dirty.
	for i := range d.dirty {
		d.dirty[i] = ^uint64(0)
	}
	d.dropVolatile()
}

// dropVolatile clears every cached line, all in-flight state and the
// pending-set list.
func (d *Device) dropVolatile() {
	for i := range d.sets {
		set := &d.sets[i]
		set.mu.Lock()
		set.clearWays()
		set.inflight = set.inflight[:0]
		set.enqueued = false
		set.mu.Unlock()
	}
	d.pendMu.Lock()
	d.pend = d.pend[:0]
	d.pendMu.Unlock()
}

// clearWays invalidates every way of the set. Caller holds set.mu.
func (set *cacheSet) clearWays() {
	for w := range set.ways {
		set.tags[w] = 0
		set.ages[w] = 0
		set.ways[w] = cacheLine{}
	}
	set.tick = 0
}

// MediaRead copies persisted bytes (media only — the post-crash view). It is
// intended for recovery code, checkers and tests; it does not model latency
// and must not race with concurrent cache operations on the same lines.
func (d *Device) MediaRead(addr uint64, buf []byte) {
	d.checkRange(addr, uint64(len(buf)))
	copy(buf, d.media[addr:])
}

// MediaWrite writes bytes straight to media, bypassing the cache — the
// memory-controller-side path used by the RBB to maintain the in-memory
// reached bitmap, and by tests to construct post-crash states.
func (d *Device) MediaWrite(addr uint64, data []byte) {
	d.checkRange(addr, uint64(len(data)))
	copy(d.media[addr:], data)
	d.touchRange(addr, uint64(len(data)))
	d.lineShard(addr >> LineShift).c[cMediaWrites].Add(1)
}

// Crash simulates a power failure: every cached line is lost, the crash
// policy decides the fate of in-flight (clwb'd, unfenced) lines, and ADR
// drains whatever reached the WPQ. After Crash the media array is the
// machine's post-restart persistent state. Not safe to call concurrently
// with other operations (a real crash stops the machine too).
func (d *Device) Crash() {
	if o := d.obs; o != nil {
		// Record the power failure once the post-crash media state is final,
		// then hand the bundle to the flight-recorder dump hook.
		defer func() {
			o.Tracer.MarkCrash()
			if o.OnCrash != nil {
				o.OnCrash(o)
			}
		}()
	}
	defer d.powerLossFlushRBB()
	if d.eADR.Load() {
		// eADR: the battery flushes every cache level; nothing volatile is
		// lost. Pending lines reach the persistence domain and notify the
		// RBB exactly as a normal write-back would.
		d.FlushAll(sim.NewCtx(d.cfg))
		return
	}
	d.policyMu.Lock()
	policy := d.policy
	d.policyMu.Unlock()

	// Harvest all in-flight lines and clear the volatile state under the set
	// locks, then apply the policy and notify the RBB with no locks held
	// (the sink may call back into MediaWrite/MediaRead).
	var pending []inflightEntry
	for i := range d.sets {
		set := &d.sets[i]
		set.mu.Lock()
		pending = append(pending, set.inflight...)
		set.inflight = set.inflight[:0]
		set.enqueued = false
		set.clearWays()
		set.mu.Unlock()
	}
	d.pendMu.Lock()
	d.pend = d.pend[:0]
	d.pendMu.Unlock()

	sort.Slice(pending, func(i, j int) bool { return pending[i].lineIdx < pending[j].lineIdx })
	var reached []uint64
	for i := range pending {
		fl := &pending[i]
		if policy(fl.lineIdx << LineShift) {
			copy(d.media[fl.lineIdx<<LineShift:], fl.data[:])
			d.touchLine(fl.lineIdx)
			if fl.pending {
				// Reached the WPQ at power-off; ADR flushes it and the RBB
				// update logic runs during the flush (§4.2).
				reached = append(reached, fl.lineIdx)
			}
		}
	}
	for _, lineIdx := range reached {
		d.notifyReached(nil, lineIdx)
	}
}

// powerLossFlushRBB runs the installed sink's battery-backed flush, if it
// has one. Runs after Crash finalizes the media image so the flush sees the
// full set of reached-line notifications.
func (d *Device) powerLossFlushRBB() {
	d.rbbMu.Lock()
	sink := d.rbb
	d.rbbMu.Unlock()
	if f, ok := sink.(PowerLossFlusher); ok {
		f.PowerLossFlush()
	}
}

// InflightLines returns the addresses of clwb'd-but-unfenced lines in
// ascending order (for fault injection to enumerate crash outcomes).
func (d *Device) InflightLines() []uint64 {
	var out []uint64
	for i := range d.sets {
		set := &d.sets[i]
		set.mu.Lock()
		for j := range set.inflight {
			out = append(out, set.inflight[j].lineIdx<<LineShift)
		}
		set.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LineState reports, for tests, where the newest copy of the line containing
// addr currently lives.
type LineState int

const (
	// LineMediaOnly means the newest data is only in media (persistent).
	LineMediaOnly LineState = iota
	// LineCachedClean means cached and identical to media.
	LineCachedClean
	// LineCachedDirty means the newest data is volatile (lost on crash).
	LineCachedDirty
	// LineCachedPending means dirty and tagged by relocate.
	LineCachedPending
	// LineInflight means clwb'd but not fenced (crash-policy dependent).
	LineInflight
)

// NumSets returns the number of cache sets — the conflict granularity for
// host-parallel dispatch: operations whose lines map to disjoint sets share
// no per-access device state.
func (d *Device) NumSets() int { return d.nset }

// SetOfAddr returns the cache-set index the line containing addr maps to.
func (d *Device) SetOfAddr(addr uint64) int { return d.setIndex(addr >> LineShift) }

// Peek copies the newest value of [addr, addr+len(buf)) into buf — cached
// way first, then in-flight copy, then media — without simulating the
// access: no cycles are charged, no cache fill or LRU aging happens, and no
// stats move. The serving layer's dispatch-time footprint prediction uses
// it on a quiescent device; it takes the per-set locks, so it is safe
// against concurrent ops but reflects no single instant across lines.
func (d *Device) Peek(addr uint64, buf []byte) {
	d.checkRange(addr, uint64(len(buf)))
	for len(buf) > 0 {
		lineIdx := addr >> LineShift
		off := addr & (LineSize - 1)
		n := LineSize - off
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		set := d.setOf(lineIdx)
		d.lockSet(set)
		copied := false
		for w, t := range set.tags {
			if t == lineIdx+1 {
				copy(buf[:n], set.ways[w].data[off:off+n])
				copied = true
				break
			}
		}
		if !copied {
			if i := set.inflightIndex(lineIdx); i >= 0 {
				copy(buf[:n], set.inflight[i].data[off:off+n])
			} else {
				copy(buf[:n], d.media[addr:addr+n])
			}
		}
		d.unlockSet(set)
		addr += n
		buf = buf[n:]
	}
}

// StateOf returns the LineState for the line containing addr.
func (d *Device) StateOf(addr uint64) LineState {
	lineIdx := addr >> LineShift
	set := d.setOf(lineIdx)
	set.mu.Lock()
	defer set.mu.Unlock()
	inflight := set.inflightIndex(lineIdx) >= 0
	for w, t := range set.tags {
		if t == lineIdx+1 {
			l := &set.ways[w]
			st := LineCachedClean
			if l.pending {
				st = LineCachedPending
			} else if l.dirty {
				st = LineCachedDirty
			} else if inflight {
				// Cached clean but the durable copy is still in flight.
				st = LineInflight
			}
			return st
		}
	}
	if inflight {
		return LineInflight
	}
	return LineMediaOnly
}
