// Package pmem simulates byte-addressable persistent memory behind a
// write-back processor cache, reproducing the Intel ADR failure model the
// paper assumes:
//
//   - Stores land in a volatile set-associative cache.
//   - clwb copies a dirty line toward the Write Pending Queue; until the next
//     sfence the line is "in flight" and MAY OR MAY NOT survive a crash.
//   - sfence drains in-flight lines into the persistence domain (WPQ → media).
//   - Natural evictions write lines back to media lazily — this is the path
//     FFCCD's fence-free design relies on.
//   - relocate (the paper's new instruction, §4.2) copies data through the
//     cache setting a pending bit on every destination line; when a pending
//     line reaches the persistence domain the Reached Bitmap Buffer is
//     notified via the RBBSink hook.
//   - Crash() discards all cached lines, applies a configurable policy to
//     in-flight lines (ADR guarantees only what reached the WPQ), and leaves
//     the media array as the exact post-crash machine state.
//
// All latencies are charged to the sim.Ctx passed to each operation.
package pmem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ffccd/internal/sim"
)

// LineSize is the cacheline size in bytes.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// RBBSink receives notifications when a cacheline tagged by relocate reaches
// the persistence domain. The arch package's Reached Bitmap Buffer implements
// it. Implementations must not call back into Device cache operations (they
// may use MediaWrite/MediaRead, which bypass the cache).
type RBBSink interface {
	LineReached(ctx *sim.Ctx, lineAddr uint64)
}

// CrashPolicy decides, for a line that was clwb'd but not yet fenced at the
// moment of a crash, whether it reached the persistence domain. Fault
// injection enumerates both outcomes; the default policy drops everything
// (the most adversarial interpretation).
type CrashPolicy func(lineAddr uint64) bool

// DropAllInflight is the default CrashPolicy: no unfenced line survives.
func DropAllInflight(uint64) bool { return false }

// KeepAllInflight persists every unfenced clwb'd line.
func KeepAllInflight(uint64) bool { return true }

type cacheLine struct {
	tag     uint64 // line index + 1; 0 = invalid
	dirty   bool
	pending bool // destination of a relocate, not yet reached persistence
	age     uint32
	data    [LineSize]byte
}

type cacheSet struct {
	mu   sync.Mutex
	ways []cacheLine
	tick uint32
}

type inflightLine struct {
	pending bool
	data    [LineSize]byte
}

// Stats are cumulative device counters (approximate under concurrency; used
// for reporting, not correctness).
type Stats struct {
	Loads        uint64
	Stores       uint64
	CacheHits    uint64
	CacheMisses  uint64
	Evictions    uint64
	MediaWrites  uint64 // lines written to media (PM write traffic)
	MediaReads   uint64 // lines fetched from media
	Clwbs        uint64
	Sfences      uint64
	RelocateOps  uint64
	PendingReach uint64 // pending lines that reached persistence
}

// Device is a simulated persistent-memory module plus the volatile cache in
// front of it. It is safe for concurrent use by multiple simulation threads.
type Device struct {
	cfg   *sim.Config
	media []byte
	nset  int
	nway  int
	sets  []cacheSet

	inflightMu sync.Mutex
	inflight   map[uint64]*inflightLine

	rbbMu sync.Mutex
	rbb   RBBSink

	policyMu sync.Mutex
	policy   CrashPolicy

	eADR atomic.Bool

	statsMu sync.Mutex
	stats   Stats
}

// SetEADR switches the platform persistence domain to eADR (§4.4): on power
// failure the battery flushes *all* cache levels, so every store is durable
// once globally visible and crash consistency needs no clwb/sfence at all.
// The paper contrasts eADR's ~300 mm³ battery volume against the 0.017 mm³
// the RBB needs; this switch exists for that ablation.
func (d *Device) SetEADR(on bool) { d.eADR.Store(on) }

// EADR reports whether the device is in eADR mode.
func (d *Device) EADR() bool { return d.eADR.Load() }

// NewDevice creates a device with size bytes of persistent media.
func NewDevice(cfg *sim.Config, size uint64) *Device {
	nline := cfg.CacheBytes / cfg.CacheLineSize
	nway := cfg.CacheWays
	nset := nline / nway
	if nset < 1 {
		nset = 1
	}
	d := &Device{
		cfg:      cfg,
		media:    make([]byte, size),
		nset:     nset,
		nway:     nway,
		sets:     make([]cacheSet, nset),
		inflight: make(map[uint64]*inflightLine),
		policy:   DropAllInflight,
	}
	for i := range d.sets {
		d.sets[i].ways = make([]cacheLine, nway)
	}
	return d
}

// Size returns the media capacity in bytes.
func (d *Device) Size() uint64 { return uint64(len(d.media)) }

// SetRBB installs the reached-bitmap sink (nil disables notifications).
func (d *Device) SetRBB(s RBBSink) {
	d.rbbMu.Lock()
	d.rbb = s
	d.rbbMu.Unlock()
}

// SetCrashPolicy installs the policy applied to in-flight lines at Crash().
func (d *Device) SetCrashPolicy(p CrashPolicy) {
	d.policyMu.Lock()
	if p == nil {
		p = DropAllInflight
	}
	d.policy = p
	d.policyMu.Unlock()
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters.
func (d *Device) ResetStats() {
	d.statsMu.Lock()
	d.stats = Stats{}
	d.statsMu.Unlock()
}

func (d *Device) bump(f func(*Stats)) {
	d.statsMu.Lock()
	f(&d.stats)
	d.statsMu.Unlock()
}

func (d *Device) checkRange(addr, n uint64) {
	if addr+n > uint64(len(d.media)) || addr+n < addr {
		panic(fmt.Sprintf("pmem: access out of range: addr=%#x len=%d size=%d", addr, n, len(d.media)))
	}
}

// notifyReached reports a pending line's arrival in the persistence domain.
func (d *Device) notifyReached(ctx *sim.Ctx, lineIdx uint64) {
	d.bump(func(s *Stats) { s.PendingReach++ })
	d.rbbMu.Lock()
	sink := d.rbb
	d.rbbMu.Unlock()
	if sink != nil {
		sink.LineReached(ctx, lineIdx<<LineShift)
	}
}

// writeMediaLine commits a full line to media, dropping any stale in-flight
// copy so a later crash cannot regress the line to older data. The media
// copy happens under inflightMu so it cannot interleave with an Sfence
// draining the same line.
func (d *Device) writeMediaLine(ctx *sim.Ctx, lineIdx uint64, data *[LineSize]byte, pending bool) {
	d.inflightMu.Lock()
	copy(d.media[lineIdx<<LineShift:], data[:])
	delete(d.inflight, lineIdx)
	d.inflightMu.Unlock()
	d.bump(func(s *Stats) { s.MediaWrites++ })
	if ctx != nil {
		ctx.Charge(d.cfg.PMWriteBandwidthPenalty)
	}
	if pending {
		d.notifyReached(ctx, lineIdx)
	}
}

// SnapshotMedia returns a copy of the full persistent image (for
// determinism tests and offline analysis). Call only on a quiescent device.
func (d *Device) SnapshotMedia() []byte {
	out := make([]byte, len(d.media))
	copy(out, d.media)
	return out
}

// RestoreMedia overwrites the persistent image and drops all volatile state
// — reconstructing a captured post-crash machine. Testing only.
func (d *Device) RestoreMedia(img []byte) {
	if len(img) != len(d.media) {
		panic("pmem: RestoreMedia size mismatch")
	}
	copy(d.media, img)
	d.inflightMu.Lock()
	d.inflight = make(map[uint64]*inflightLine)
	d.inflightMu.Unlock()
	for i := range d.sets {
		set := &d.sets[i]
		set.mu.Lock()
		for w := range set.ways {
			set.ways[w] = cacheLine{}
		}
		set.mu.Unlock()
	}
}

// MediaRead copies persisted bytes (media only — the post-crash view). It is
// intended for recovery code, checkers and tests; it does not model latency
// and must not race with concurrent cache operations on the same lines.
func (d *Device) MediaRead(addr uint64, buf []byte) {
	d.checkRange(addr, uint64(len(buf)))
	copy(buf, d.media[addr:])
}

// MediaWrite writes bytes straight to media, bypassing the cache — the
// memory-controller-side path used by the RBB to maintain the in-memory
// reached bitmap, and by tests to construct post-crash states.
func (d *Device) MediaWrite(addr uint64, data []byte) {
	d.checkRange(addr, uint64(len(data)))
	copy(d.media[addr:], data)
	d.bump(func(s *Stats) { s.MediaWrites++ })
}

// Crash simulates a power failure: every cached line is lost, the crash
// policy decides the fate of in-flight (clwb'd, unfenced) lines, and ADR
// drains whatever reached the WPQ. After Crash the media array is the
// machine's post-restart persistent state. Not safe to call concurrently
// with other operations (a real crash stops the machine too).
func (d *Device) Crash() {
	if d.eADR.Load() {
		// eADR: the battery flushes every cache level; nothing volatile is
		// lost. Pending lines reach the persistence domain and notify the
		// RBB exactly as a normal write-back would.
		d.FlushAll(sim.NewCtx(d.cfg))
		return
	}
	d.policyMu.Lock()
	policy := d.policy
	d.policyMu.Unlock()

	d.inflightMu.Lock()
	for lineIdx, fl := range d.inflight {
		if policy(lineIdx << LineShift) {
			copy(d.media[lineIdx<<LineShift:], fl.data[:])
			if fl.pending {
				// Reached the WPQ at power-off; ADR flushes it and the RBB
				// update logic runs during the flush (§4.2).
				d.inflightMu.Unlock()
				d.notifyReached(nil, lineIdx)
				d.inflightMu.Lock()
			}
		}
	}
	d.inflight = make(map[uint64]*inflightLine)
	d.inflightMu.Unlock()

	for i := range d.sets {
		set := &d.sets[i]
		set.mu.Lock()
		for w := range set.ways {
			set.ways[w] = cacheLine{}
		}
		set.tick = 0
		set.mu.Unlock()
	}
}

// InflightLines returns the addresses of clwb'd-but-unfenced lines (for fault
// injection to enumerate crash outcomes).
func (d *Device) InflightLines() []uint64 {
	d.inflightMu.Lock()
	defer d.inflightMu.Unlock()
	out := make([]uint64, 0, len(d.inflight))
	for idx := range d.inflight {
		out = append(out, idx<<LineShift)
	}
	return out
}

// LineState reports, for tests, where the newest copy of the line containing
// addr currently lives.
type LineState int

const (
	// LineMediaOnly means the newest data is only in media (persistent).
	LineMediaOnly LineState = iota
	// LineCachedClean means cached and identical to media.
	LineCachedClean
	// LineCachedDirty means the newest data is volatile (lost on crash).
	LineCachedDirty
	// LineCachedPending means dirty and tagged by relocate.
	LineCachedPending
	// LineInflight means clwb'd but not fenced (crash-policy dependent).
	LineInflight
)

// StateOf returns the LineState for the line containing addr.
func (d *Device) StateOf(addr uint64) LineState {
	lineIdx := addr >> LineShift
	d.inflightMu.Lock()
	_, inflight := d.inflight[lineIdx]
	d.inflightMu.Unlock()
	set := &d.sets[int(lineIdx%uint64(d.nset))]
	set.mu.Lock()
	for w := range set.ways {
		l := &set.ways[w]
		if l.tag == lineIdx+1 {
			st := LineCachedClean
			if l.pending {
				st = LineCachedPending
			} else if l.dirty {
				st = LineCachedDirty
			} else if inflight {
				// Cached clean but the durable copy is still in flight.
				st = LineInflight
			}
			set.mu.Unlock()
			return st
		}
	}
	set.mu.Unlock()
	if inflight {
		return LineInflight
	}
	return LineMediaOnly
}
