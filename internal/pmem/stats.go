package pmem

import (
	"sync/atomic"

	"ffccd/internal/sim"
)

// Device counters. The hot paths batch increments: one shard update per
// Load/Store call rather than one mutex round-trip per cacheline.
const (
	cLoads = iota
	cStores
	cCacheHits
	cCacheMisses
	cEvictions
	cMediaWrites
	cMediaReads
	cClwbs
	cSfences
	cRelocateOps
	cPendingReach
	statCount
)

// statShards is the number of counter shards (power of two). Line-addressed
// events pick a shard from the line index, thread-scoped events (sfence,
// relocate) from the issuing Ctx's shard hint, so concurrent simulation
// threads land on different cachelines.
const statShards = 64

// statShard is one cache-line-padded bank of counters.
type statShard struct {
	c [statCount]atomic.Uint64
	_ [(128 - (statCount*8)%128) % 128]byte
}

func (d *Device) lineShard(lineIdx uint64) *statShard {
	return &d.stat[lineIdx&(statShards-1)]
}

func (d *Device) ctxShard(ctx *sim.Ctx) *statShard {
	if ctx == nil {
		return &d.stat[0]
	}
	return &d.stat[uint64(ctx.Shard)&(statShards-1)]
}

// Stats are cumulative device counters. Counters are sharded atomics: every
// increment is applied exactly once, so after the device quiesces the sums
// are exact (a snapshot taken while operations are still in flight is a
// consistent sum of completed increments per counter, though not a single
// instant across counters).
type Stats struct {
	Loads        uint64
	Stores       uint64
	CacheHits    uint64
	CacheMisses  uint64
	Evictions    uint64
	MediaWrites  uint64 // lines written to media (PM write traffic)
	MediaReads   uint64 // lines fetched from media
	Clwbs        uint64
	Sfences      uint64
	RelocateOps  uint64
	PendingReach uint64 // pending lines that reached persistence
}

// Stats returns a snapshot of the device counters (sum over shards).
func (d *Device) Stats() Stats {
	var t [statCount]uint64
	for i := range d.stat {
		for j := 0; j < statCount; j++ {
			t[j] += d.stat[i].c[j].Load()
		}
	}
	return Stats{
		Loads:        t[cLoads],
		Stores:       t[cStores],
		CacheHits:    t[cCacheHits],
		CacheMisses:  t[cCacheMisses],
		Evictions:    t[cEvictions],
		MediaWrites:  t[cMediaWrites],
		MediaReads:   t[cMediaReads],
		Clwbs:        t[cClwbs],
		Sfences:      t[cSfences],
		RelocateOps:  t[cRelocateOps],
		PendingReach: t[cPendingReach],
	}
}

// ResetStats zeroes the counters. Call only on a quiescent device.
func (d *Device) ResetStats() {
	for i := range d.stat {
		for j := 0; j < statCount; j++ {
			d.stat[i].c[j].Store(0)
		}
	}
}
