package pmem

import (
	"sync"
	"testing"

	"ffccd/internal/sim"
)

// TestStatsExactUnderConcurrency hammers one device from 8 goroutines with a
// mix of distinct-line and overlapping-line traffic and then demands the
// sharded counters sum to exactly the number of issued operations. Run under
// -race this doubles as the data-race check for the per-set in-flight state
// and the pending-set list.
func TestStatsExactUnderConcurrency(t *testing.T) {
	const (
		workers = 8
		iters   = 1600 // divisible by 16 so the op mix below is exact
	)
	cfg := sim.DefaultConfig()
	// Small cache: constant eviction and writeback pressure.
	cfg.CacheBytes = 16 * 1024
	cfg.CacheWays = 4
	d := NewDevice(&cfg, 1<<21)

	// Layout: lines 0..127 are shared load targets (all workers overlap);
	// each worker stores to its own 64-line region and relocates within its
	// own source/destination pair — so the mix has both contended and
	// uncontended sets.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := sim.NewCtx(&cfg)
			own := uint64(64<<10 + id*(8<<10))
			relocSrc := uint64(1<<20 + id*(8<<10))
			relocDst := uint64(1<<20 + 256<<10 + id*(8<<10))
			var buf [16]byte
			for i := 0; i < iters; i++ {
				d.Store(ctx, own+uint64(i%64)*LineSize, buf[:16])
				d.Load(ctx, uint64(i%128)*LineSize, buf[:8])
				d.Clwb(ctx, own+uint64(i%64)*LineSize)
				if i%8 == 7 {
					d.Sfence(ctx)
				}
				if i%16 == 15 {
					// One full aligned line: exactly 2 internal loads (source
					// chunk + destination gap) and 1 internal store.
					d.RelocateParts(ctx, []RelocatePart{{
						Dst: relocDst + uint64(i%32)*LineSize,
						Src: relocSrc + uint64(i%32)*LineSize,
						N:   LineSize,
					}})
				}
			}
		}(w)
	}
	wg.Wait()

	st := d.Stats()
	relocs := uint64(workers * iters / 16)
	wantLoads := uint64(workers*iters) + 2*relocs
	wantStores := uint64(workers*iters) + relocs
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"Loads", st.Loads, wantLoads},
		{"Stores", st.Stores, wantStores},
		{"Clwbs", st.Clwbs, uint64(workers * iters)},
		{"Sfences", st.Sfences, uint64(workers * iters / 8)},
		{"RelocateOps", st.RelocateOps, relocs},
		// Every Load/Store above touches exactly one line, so the hit/miss
		// split must partition the access count with nothing lost.
		{"CacheHits+CacheMisses", st.CacheHits + st.CacheMisses, wantLoads + wantStores},
		{"MediaReads", st.MediaReads, st.CacheMisses},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if st.MediaWrites == 0 || st.Evictions == 0 {
		t.Errorf("no writeback traffic recorded: %+v", st)
	}
}

// TestSetIndexMatchesModulo pins the division-free set mapping to the plain
// modulo it replaces, across the full tag width and awkward boundaries.
func TestSetIndexMatchesModulo(t *testing.T) {
	cfg := sim.DefaultConfig()
	d := NewDevice(&cfg, 1<<22)
	if d.setMagic == 0 {
		t.Fatalf("fastmod not armed for nset=%d", d.nset)
	}
	check := func(lineIdx uint64) {
		if got, want := d.setIndex(lineIdx), int(lineIdx%uint64(d.nset)); got != want {
			t.Fatalf("setIndex(%d) = %d, want %d", lineIdx, got, want)
		}
	}
	for i := uint64(0); i < 1<<16; i++ {
		check(i)
	}
	for _, edge := range []uint64{1<<32 - 1, 1<<32 - 2, 1 << 31, 1<<31 - 1, 3072, 3071, 3073} {
		check(edge)
	}
	// An LCG walk over the rest of the 32-bit index space.
	x := uint64(88172645463325252 & (1<<32 - 1))
	for i := 0; i < 1<<16; i++ {
		x = (x*6364136223846793005 + 1442695040888963407) & (1<<32 - 1)
		check(x)
	}
}

// TestRelocatePartsAllocFree pins the relocate hot path at zero allocations
// per call once its pooled scratch is warm.
func TestRelocatePartsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool reuse")
	}
	cfg := sim.DefaultConfig()
	d := NewDevice(&cfg, 1<<20)
	ctx := sim.NewCtx(&cfg)
	parts := []RelocatePart{
		{Dst: 4096, Src: 64, N: 200},        // unaligned, multi-line
		{Dst: 4296, Src: 1024, N: 24},       // shares a destination line
		{Dst: 8192, Src: 2048, N: LineSize}, // full aligned line
	}
	d.RelocateParts(ctx, parts) // warm the pooled scratch
	if allocs := testing.AllocsPerRun(100, func() {
		d.RelocateParts(ctx, parts)
	}); allocs != 0 {
		t.Errorf("RelocateParts allocates %.1f objects per call, want 0", allocs)
	}
}
