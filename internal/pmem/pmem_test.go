package pmem

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"ffccd/internal/sim"
)

func newTestDevice(size uint64) (*Device, *sim.Ctx) {
	cfg := sim.DefaultConfig()
	// Small cache so eviction paths are exercised.
	cfg.CacheBytes = 16 * 1024
	cfg.CacheWays = 4
	d := NewDevice(&cfg, size)
	return d, sim.NewCtx(&cfg)
}

func TestStoreLoadRoundTrip(t *testing.T) {
	d, ctx := newTestDevice(1 << 20)
	data := []byte("hello persistent world, spanning more than one cacheline......!")
	d.Store(ctx, 100, data)
	got := make([]byte, len(data))
	d.Load(ctx, 100, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q vs %q", got, data)
	}
}

func TestDirtyLineLostOnCrash(t *testing.T) {
	d, ctx := newTestDevice(1 << 20)
	d.Store(ctx, 0, []byte{0xAA})
	if st := d.StateOf(0); st != LineCachedDirty {
		t.Fatalf("state = %v, want dirty", st)
	}
	d.Crash()
	buf := make([]byte, 1)
	d.MediaRead(0, buf)
	if buf[0] != 0 {
		t.Fatalf("unflushed store survived crash: %x", buf[0])
	}
}

func TestClwbSfencePersists(t *testing.T) {
	d, ctx := newTestDevice(1 << 20)
	d.Store(ctx, 64, []byte{0xBB})
	d.Clwb(ctx, 64)
	if st := d.StateOf(64); st != LineInflight {
		t.Fatalf("post-clwb state = %v, want inflight", st)
	}
	d.Sfence(ctx)
	if st := d.StateOf(64); st != LineCachedClean {
		t.Fatalf("post-sfence state = %v, want cached clean", st)
	}
	d.Crash()
	buf := make([]byte, 1)
	d.MediaRead(64, buf)
	if buf[0] != 0xBB {
		t.Fatal("clwb+sfence data lost on crash")
	}
}

func TestClwbWithoutSfenceCrashPolicy(t *testing.T) {
	// The SFCCD-critical window: clwb issued, no fence. The crash policy
	// decides survival.
	for _, keep := range []bool{false, true} {
		d, ctx := newTestDevice(1 << 20)
		if keep {
			d.SetCrashPolicy(KeepAllInflight)
		}
		d.Store(ctx, 128, []byte{0xCC})
		d.Clwb(ctx, 128)
		d.Crash()
		buf := make([]byte, 1)
		d.MediaRead(128, buf)
		want := byte(0)
		if keep {
			want = 0xCC
		}
		if buf[0] != want {
			t.Errorf("keep=%v: media = %x, want %x", keep, buf[0], want)
		}
	}
}

func TestEvictionWritesBack(t *testing.T) {
	d, ctx := newTestDevice(1 << 20)
	// Fill one set far past associativity: same set stride = nset*LineSize.
	stride := uint64(d.nset * LineSize)
	for i := uint64(0); i < uint64(d.nway+2); i++ {
		d.Store(ctx, i*stride, []byte{byte(i + 1)})
	}
	// The earliest line must have been evicted and written back to media.
	buf := make([]byte, 1)
	d.MediaRead(0, buf)
	if buf[0] != 1 {
		t.Fatalf("evicted line not written back: media[0]=%x", buf[0])
	}
	if d.Stats().Evictions == 0 {
		t.Fatal("expected evictions")
	}
}

func TestLoadSeesInflightData(t *testing.T) {
	d, ctx := newTestDevice(1 << 20)
	d.Store(ctx, 0, []byte{0x11})
	d.Clwb(ctx, 0)
	// Evict the (clean) line so a reload must consult the in-flight buffer.
	stride := uint64(d.nset * LineSize)
	for i := uint64(1); i <= uint64(d.nway+1); i++ {
		d.Store(ctx, i*stride, []byte{0xFF})
	}
	buf := make([]byte, 1)
	d.Load(ctx, 0, buf)
	if buf[0] != 0x11 {
		t.Fatalf("load missed in-flight data: %x", buf[0])
	}
}

func TestWritebackSupersedesInflight(t *testing.T) {
	// A newer eviction write-back must invalidate an older in-flight copy so
	// a crash cannot regress the line.
	d, ctx := newTestDevice(1 << 20)
	d.SetCrashPolicy(KeepAllInflight)
	d.Store(ctx, 0, []byte{0x01})
	d.Clwb(ctx, 0) // v1 in flight
	d.Store(ctx, 0, []byte{0x02})
	// Force eviction of the line (writes v2 to media).
	stride := uint64(d.nset * LineSize)
	for i := uint64(1); i <= uint64(d.nway+1); i++ {
		d.Store(ctx, i*stride, []byte{0xFF})
	}
	d.Crash()
	buf := make([]byte, 1)
	d.MediaRead(0, buf)
	if buf[0] != 0x02 {
		t.Fatalf("crash regressed line to %x, want 02", buf[0])
	}
}

type recordingSink struct {
	mu    sync.Mutex
	lines []uint64
}

func (r *recordingSink) LineReached(_ *sim.Ctx, addr uint64) {
	r.mu.Lock()
	r.lines = append(r.lines, addr)
	r.mu.Unlock()
}

func TestRelocateSetsPendingAndNotifiesOnEviction(t *testing.T) {
	d, ctx := newTestDevice(1 << 20)
	sink := &recordingSink{}
	d.SetRBB(sink)
	src, dst := uint64(0), uint64(4096)
	d.Store(ctx, src, []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"))
	d.Relocate(ctx, dst, src, 64)
	if st := d.StateOf(dst); st != LineCachedPending {
		t.Fatalf("dest state = %v, want pending", st)
	}
	got := make([]byte, 64)
	d.Load(ctx, dst, got)
	if string(got[:16]) != "0123456789abcdef" {
		t.Fatalf("relocate copied wrong data: %q", got[:16])
	}
	// No flush issued: nothing reached persistence yet.
	if len(sink.lines) != 0 {
		t.Fatalf("premature reached notification: %v", sink.lines)
	}
	// Force eviction of the pending dest line.
	stride := uint64(d.nset * LineSize)
	for i := uint64(0); i <= uint64(d.nway+1); i++ {
		d.Store(ctx, dst+i*stride+stride, []byte{0xFF})
	}
	sink.mu.Lock()
	reached := len(sink.lines) > 0 && sink.lines[0] == dst
	sink.mu.Unlock()
	if !reached {
		t.Fatalf("eviction of pending line did not notify RBB: %v", sink.lines)
	}
}

func TestRelocatePendingLineLostOnCrash(t *testing.T) {
	// Fence-free semantics: relocated data still in cache is lost on crash,
	// and the RBB is never told it reached.
	d, ctx := newTestDevice(1 << 20)
	sink := &recordingSink{}
	d.SetRBB(sink)
	d.Store(ctx, 0, []byte{0x77})
	d.FlushAll(ctx)
	d.Relocate(ctx, 8192, 0, 64)
	d.Crash()
	buf := make([]byte, 1)
	d.MediaRead(8192, buf)
	if buf[0] != 0 {
		t.Fatal("unreached relocate destination survived crash")
	}
	if len(sink.lines) != 0 {
		t.Fatalf("RBB notified for a line that never reached: %v", sink.lines)
	}
}

func TestRelocateClwbSfenceNotifies(t *testing.T) {
	d, ctx := newTestDevice(1 << 20)
	sink := &recordingSink{}
	d.SetRBB(sink)
	d.Store(ctx, 0, []byte{0x42})
	d.Relocate(ctx, 4096, 0, 64)
	d.Clwb(ctx, 4096)
	d.Sfence(ctx)
	if len(sink.lines) != 1 || sink.lines[0] != 4096 {
		t.Fatalf("clwb+sfence of pending line must notify RBB: %v", sink.lines)
	}
	buf := make([]byte, 1)
	d.MediaRead(4096, buf)
	if buf[0] != 0x42 {
		t.Fatal("flushed relocate data not in media")
	}
}

func TestFlushAllPersistsEverything(t *testing.T) {
	d, ctx := newTestDevice(1 << 20)
	for i := uint64(0); i < 100; i++ {
		d.Store(ctx, i*64, []byte{byte(i)})
	}
	d.FlushAll(ctx)
	d.Crash()
	buf := make([]byte, 1)
	for i := uint64(0); i < 100; i++ {
		d.MediaRead(i*64, buf)
		if buf[0] != byte(i) {
			t.Fatalf("line %d lost after FlushAll: %x", i, buf[0])
		}
	}
}

func TestMediaWriteBypassesCache(t *testing.T) {
	d, ctx := newTestDevice(1 << 20)
	d.MediaWrite(256, []byte{0x99})
	d.Crash()
	buf := make([]byte, 1)
	d.MediaRead(256, buf)
	if buf[0] != 0x99 {
		t.Fatal("MediaWrite did not persist")
	}
	// A load must observe it too (fill from media).
	d.Load(ctx, 256, buf)
	if buf[0] != 0x99 {
		t.Fatal("Load did not see media data")
	}
}

func TestSfenceChargesStallOnlyWhenNeeded(t *testing.T) {
	cfg := sim.DefaultConfig()
	d := NewDevice(&cfg, 1<<20)
	ctx := sim.NewCtx(&cfg)
	d.Sfence(ctx)
	idle := ctx.Clock.Total()
	if idle > cfg.WPQLatency {
		t.Errorf("idle sfence charged %d cycles, want <= %d", idle, cfg.WPQLatency)
	}
	ctx.Clock.Reset()
	d.Store(ctx, 0, []byte{1})
	d.Clwb(ctx, 0)
	before := ctx.Clock.Total()
	d.Sfence(ctx)
	stall := ctx.Clock.Total() - before
	if stall < cfg.PMWriteLatency {
		t.Errorf("draining sfence charged %d cycles, want >= %d", stall, cfg.PMWriteLatency)
	}
}

func TestMissChargesPMLatency(t *testing.T) {
	cfg := sim.DefaultConfig()
	d := NewDevice(&cfg, 1<<20)
	ctx := sim.NewCtx(&cfg)
	buf := make([]byte, 8)
	d.Load(ctx, 0, buf)
	cold := ctx.Clock.Total()
	if cold < cfg.PMReadLatency {
		t.Errorf("cold load charged %d, want >= %d", cold, cfg.PMReadLatency)
	}
	ctx.Clock.Reset()
	d.Load(ctx, 0, buf)
	warm := ctx.Clock.Total()
	if warm >= cfg.PMReadLatency {
		t.Errorf("warm load charged %d, want < %d", warm, cfg.PMReadLatency)
	}
}

func TestConcurrentStoresDistinctLines(t *testing.T) {
	d, _ := newTestDevice(1 << 22)
	cfg := sim.DefaultConfig()
	var wg sync.WaitGroup
	for th := 0; th < 8; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			ctx := sim.NewCtx(&cfg)
			for i := 0; i < 1000; i++ {
				addr := uint64(th*1000+i) * 64 % (1 << 22)
				d.Store(ctx, addr, []byte{byte(th)})
			}
		}(th)
	}
	wg.Wait()
}

func TestStoreLoadProperty(t *testing.T) {
	d, ctx := newTestDevice(1 << 20)
	f := func(addr uint32, data []byte) bool {
		if len(data) == 0 || len(data) > 512 {
			return true
		}
		a := uint64(addr) % (1<<20 - 512)
		d.Store(ctx, a, data)
		got := make([]byte, len(data))
		d.Load(ctx, a, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCrashPersistencePartition(t *testing.T) {
	// Invariant: after arbitrary traffic, a line is recovered after crash iff
	// it reached the persistence domain (fenced or evicted or media-written).
	d, ctx := newTestDevice(1 << 20)
	d.Store(ctx, 0, []byte{1})  // dirty only
	d.Store(ctx, 64, []byte{2}) // will clwb+sfence
	d.Clwb(ctx, 64)
	d.Sfence(ctx)
	d.Store(ctx, 128, []byte{3}) // clwb, no fence (default policy: dropped)
	d.Clwb(ctx, 128)
	d.MediaWrite(192, []byte{4})
	d.Crash()
	want := map[uint64]byte{0: 0, 64: 2, 128: 0, 192: 4}
	buf := make([]byte, 1)
	for addr, v := range want {
		d.MediaRead(addr, buf)
		if buf[0] != v {
			t.Errorf("media[%d] = %x, want %x", addr, buf[0], v)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d, ctx := newTestDevice(1024)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	d.Store(ctx, 1020, []byte{1, 2, 3, 4, 5})
}

func TestEADRCrashKeepsEverything(t *testing.T) {
	d, ctx := newTestDevice(1 << 20)
	d.SetEADR(true)
	if !d.EADR() {
		t.Fatal("eADR not enabled")
	}
	// Plain stores, a relocate, and a clwb'd-unfenced line: under eADR all
	// of it survives a crash — no fences required anywhere.
	d.Store(ctx, 0, []byte{0x11})
	d.Store(ctx, 4096, []byte{0x22})
	d.Clwb(ctx, 4096)
	sink := &recordingSink{}
	d.SetRBB(sink)
	d.Relocate(ctx, 8192, 0, 64)
	d.Crash()
	buf := make([]byte, 1)
	for addr, want := range map[uint64]byte{0: 0x11, 4096: 0x22, 8192: 0x11} {
		d.MediaRead(addr, buf)
		if buf[0] != want {
			t.Errorf("media[%d] = %x, want %x (lost under eADR)", addr, buf[0], want)
		}
	}
	// The pending line reached persistence during the battery flush.
	if len(sink.lines) == 0 {
		t.Error("RBB not notified during eADR flush")
	}
}

func TestEADRDisabledStillLoses(t *testing.T) {
	d, ctx := newTestDevice(1 << 20)
	d.SetEADR(true)
	d.SetEADR(false)
	d.Store(ctx, 0, []byte{0x33})
	d.Crash()
	buf := make([]byte, 1)
	d.MediaRead(0, buf)
	if buf[0] != 0 {
		t.Error("ADR crash preserved a dirty line after eADR was disabled")
	}
}
