//go:build !race

package pmem

// raceEnabled reports whether the race detector is compiled in; allocation-
// count assertions are skipped under -race (the detector defeats sync.Pool
// reuse by design).
const raceEnabled = false
