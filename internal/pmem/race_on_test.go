//go:build race

package pmem

const raceEnabled = true
