package ds

import (
	"sort"
	"sync"

	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// FPTree follows Oukid et al. (SIGMOD'16): a hybrid index whose inner nodes
// live in volatile memory (rebuilt on restart) and whose leaves live in PM.
// Each leaf carries a slot bitmap and one-byte fingerprints so lookups touch
// a single cacheline of hashes before the keys. The original's HTM-based
// concurrency is replaced by a read-write mutex; the persistence layout is
// preserved.
type FPTree struct {
	p     *pmop.Pool
	mu    sync.RWMutex
	leafT pmop.TypeID
	root  pmop.Ptr // holder: first leaf @0

	// Volatile inner index: leaves sorted by their minimum key.
	index []fpIdx
	count int
}

type fpIdx struct {
	min  uint64
	leaf pmop.Ptr
}

// FPTree leaf layout: bitmap u64 @0, next Ptr @8, fingerprints [16]u8 @16,
// keys [16]u64 @32, value ptrs [16]Ptr @160.
const (
	fpBitmap   = 0
	fpNext     = 8
	fpFPs      = 16
	fpKeys     = 32
	fpVals     = 160
	fpSlots    = 16
	fpLeafSize = fpVals + fpSlots*8 // 288
)

func fpLeafPtrOffsets() []uint64 {
	offs := []uint64{fpNext}
	for i := 0; i < fpSlots; i++ {
		offs = append(offs, fpVals+uint64(i)*8)
	}
	return offs
}

func fpKeyOff(i int) uint64 { return fpKeys + uint64(i)*8 }
func fpValOff(i int) uint64 { return fpVals + uint64(i)*8 }

// fingerprint hashes a key to one byte (never 0 so a zeroed slot can't
// accidentally match before the bitmap check).
func fingerprint(key uint64) byte {
	h := key * 0x9E3779B97F4A7C15
	b := byte(h >> 56)
	if b == 0 {
		b = 1
	}
	return b
}

// NewFPTree creates or reopens the tree.
func NewFPTree(ctx *sim.Ctx, p *pmop.Pool) (*FPTree, error) {
	holderT, _ := p.Types().LookupName(typeListRoot)
	leafT, _ := p.Types().LookupName(typeFPLeaf)
	t := &FPTree{p: p, leafT: leafT.ID}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		t.mu.Lock()
		t.root = remap(t.root)
		for i := range t.index {
			t.index[i].leaf = remap(t.index[i].leaf)
		}
		t.mu.Unlock()
	})
	if r := p.Root(ctx); !r.IsNull() {
		t.root = r
		t.rebuildIndex(ctx)
		return t, nil
	}
	r, err := p.Alloc(ctx, holderT.ID, 0)
	if err != nil {
		return nil, err
	}
	first, err := p.Alloc(ctx, leafT.ID, 0)
	if err != nil {
		return nil, err
	}
	p.PersistRange(ctx, first.Offset(), fpLeafSize)
	p.WritePtr(ctx, r, 0, first)
	p.PersistRange(ctx, r.Offset(), 16)
	p.SetRoot(ctx, r)
	t.root = r
	t.index = []fpIdx{{0, first}}
	return t, nil
}

// rebuildIndex reconstructs the volatile inner nodes from the persistent
// leaf chain — the FPTree restart path.
func (t *FPTree) rebuildIndex(ctx *sim.Ctx) {
	p := t.p
	t.index = t.index[:0]
	t.count = 0
	for leaf := p.ReadPtr(ctx, t.root, 0); !leaf.IsNull(); leaf = p.ReadPtr(ctx, leaf, fpNext) {
		bm := p.ReadU64(ctx, leaf, fpBitmap)
		minKey := ^uint64(0)
		for s := 0; s < fpSlots; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			t.count++
			if k := p.ReadU64(ctx, leaf, fpKeyOff(s)); k < minKey {
				minKey = k
			}
		}
		if len(t.index) == 0 {
			minKey = 0 // the first leaf covers everything below
		}
		t.index = append(t.index, fpIdx{minKey, leaf})
	}
	sort.Slice(t.index, func(a, b int) bool { return t.index[a].min < t.index[b].min })
}

// Name implements Store.
func (t *FPTree) Name() string { return "FPTree" }

// Len implements Store.
func (t *FPTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// leafFor finds the index entry covering key.
func (t *FPTree) leafFor(key uint64) int {
	lo, hi := 0, len(t.index)-1
	res := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		if t.index[mid].min <= key {
			res = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return res
}

// findSlot locates key in leaf via fingerprint + key compare.
func (t *FPTree) findSlot(ctx *sim.Ctx, leaf pmop.Ptr, key uint64) int {
	p := t.p
	bm := p.ReadU64(ctx, leaf, fpBitmap)
	fp := fingerprint(key)
	var fps [fpSlots]byte
	p.ReadBytes(ctx, leaf, fpFPs, fps[:])
	for s := 0; s < fpSlots; s++ {
		if bm&(1<<s) == 0 || fps[s] != fp {
			continue
		}
		if p.ReadU64(ctx, leaf, fpKeyOff(s)) == key {
			return s
		}
	}
	return -1
}

// Insert implements Store.
func (t *FPTree) Insert(ctx *sim.Ctx, key uint64, val []byte) error {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.Lock()
	defer t.mu.Unlock()

	p := t.p
	v, err := allocValue(ctx, p, val)
	if err != nil {
		return err
	}
	i := t.leafFor(key)
	leaf := t.index[i].leaf

	if s := t.findSlot(ctx, leaf, key); s >= 0 {
		old := p.ReadPtr(ctx, leaf, fpValOff(s))
		tx := p.Begin(ctx)
		tx.AddRange(ctx, leaf, fpValOff(s), 8)
		p.WritePtr(ctx, leaf, fpValOff(s), v)
		tx.Commit(ctx)
		if !old.IsNull() {
			p.Free(ctx, old)
		}
		return nil
	}

	bm := p.ReadU64(ctx, leaf, fpBitmap)
	free := -1
	for s := 0; s < fpSlots; s++ {
		if bm&(1<<s) == 0 {
			free = s
			break
		}
	}
	if free < 0 {
		// Split: move the upper half of the keys to a new leaf.
		var err error
		leaf, err = t.split(ctx, i, key)
		if err != nil {
			p.Free(ctx, v)
			return err
		}
		bm = p.ReadU64(ctx, leaf, fpBitmap)
		for s := 0; s < fpSlots; s++ {
			if bm&(1<<s) == 0 {
				free = s
				break
			}
		}
	}

	tx := p.Begin(ctx)
	tx.AddRange(ctx, leaf, fpKeyOff(free), 8)
	tx.AddRange(ctx, leaf, fpValOff(free), 8)
	tx.AddRange(ctx, leaf, fpFPs+uint64(free), 1)
	tx.AddRange(ctx, leaf, fpBitmap, 8)
	p.WriteU64(ctx, leaf, fpKeyOff(free), key)
	p.WritePtr(ctx, leaf, fpValOff(free), v)
	p.WriteBytes(ctx, leaf, fpFPs+uint64(free), []byte{fingerprint(key)})
	p.WriteU64(ctx, leaf, fpBitmap, bm|1<<free)
	tx.Commit(ctx)
	t.count++
	return nil
}

// split divides the full leaf at index position i, returning the leaf that
// should receive key.
func (t *FPTree) split(ctx *sim.Ctx, i int, key uint64) (pmop.Ptr, error) {
	p := t.p
	leaf := t.index[i].leaf

	// Collect and sort the 16 keys to find the median.
	type slotKey struct {
		slot int
		key  uint64
	}
	var sk [fpSlots]slotKey
	for s := 0; s < fpSlots; s++ {
		sk[s] = slotKey{s, p.ReadU64(ctx, leaf, fpKeyOff(s))}
	}
	sort.Slice(sk[:], func(a, b int) bool { return sk[a].key < sk[b].key })
	median := sk[fpSlots/2].key

	nl, err := p.Alloc(ctx, t.leafT, 0)
	if err != nil {
		return pmop.Null, err
	}
	tx := p.Begin(ctx)
	tx.AddObject(ctx, nl)
	tx.AddObject(ctx, leaf)

	var newBM, oldBM uint64
	oldBM = p.ReadU64(ctx, leaf, fpBitmap)
	w := 0
	for _, e := range sk[fpSlots/2:] {
		p.WriteU64(ctx, nl, fpKeyOff(w), e.key)
		p.WritePtr(ctx, nl, fpValOff(w), p.ReadPtr(ctx, leaf, fpValOff(e.slot)))
		p.WriteBytes(ctx, nl, fpFPs+uint64(w), []byte{fingerprint(e.key)})
		newBM |= 1 << w
		oldBM &^= 1 << e.slot
		// Null the moved-out slot in the old leaf (no dangling pointers).
		p.WritePtr(ctx, leaf, fpValOff(e.slot), pmop.Null)
		w++
	}
	p.WriteU64(ctx, nl, fpBitmap, newBM)
	p.WritePtr(ctx, nl, fpNext, p.ReadPtr(ctx, leaf, fpNext))
	// Publish: persist the new leaf via the commit flush, then atomically
	// shrink the old bitmap and link the chain.
	p.WritePtr(ctx, leaf, fpNext, nl)
	p.WriteU64(ctx, leaf, fpBitmap, oldBM)
	tx.Commit(ctx)

	t.index = append(t.index, fpIdx{})
	copy(t.index[i+2:], t.index[i+1:])
	t.index[i+1] = fpIdx{median, nl}
	if key >= median {
		return nl, nil
	}
	return leaf, nil
}

// Delete implements Store.
func (t *FPTree) Delete(ctx *sim.Ctx, key uint64) (bool, error) {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.Lock()
	defer t.mu.Unlock()

	p := t.p
	leaf := t.index[t.leafFor(key)].leaf
	s := t.findSlot(ctx, leaf, key)
	if s < 0 {
		return false, nil
	}
	old := p.ReadPtr(ctx, leaf, fpValOff(s))
	tx := p.Begin(ctx)
	tx.AddRange(ctx, leaf, fpBitmap, 8)
	tx.AddRange(ctx, leaf, fpValOff(s), 8)
	p.WriteU64(ctx, leaf, fpBitmap, p.ReadU64(ctx, leaf, fpBitmap)&^(1<<s))
	// Dead slots must not hold stale pointers (see RegisterTypes).
	p.WritePtr(ctx, leaf, fpValOff(s), pmop.Null)
	tx.Commit(ctx)
	if !old.IsNull() {
		p.Free(ctx, old)
	}
	t.count--
	return true, nil
}

// Get implements Store.
func (t *FPTree) Get(ctx *sim.Ctx, key uint64) ([]byte, bool) {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.RLock()
	defer t.mu.RUnlock()

	leaf := t.index[t.leafFor(key)].leaf
	s := t.findSlot(ctx, leaf, key)
	if s < 0 {
		return nil, false
	}
	v := t.p.ReadPtr(ctx, leaf, fpValOff(s))
	if v.IsNull() {
		return nil, false
	}
	return readValue(ctx, t.p, v), true
}
