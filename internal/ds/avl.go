package ds

import (
	"sync"

	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// AVL is the AVL microbenchmark: a persistent height-balanced binary search
// tree. Every mutation runs inside one undo-log transaction; each node is
// logged once before its first modification in the operation.
type AVL struct {
	p     *pmop.Pool
	mu    sync.Mutex
	nodeT pmop.TypeID
	root  pmop.Ptr // holder object: root node Ptr @0
	count int
}

// AVL node field offsets.
const (
	avKey    = 0
	avVal    = 8
	avLeft   = 16
	avRight  = 24
	avHeight = 32
)

// logset logs each object at most once per transaction.
type logset struct {
	tx   *pmop.Tx
	seen map[uint64]bool
	p    *pmop.Pool
}

func newLogset(p *pmop.Pool, tx *pmop.Tx) *logset {
	return &logset{tx: tx, seen: make(map[uint64]bool), p: p}
}

func (ls *logset) log(ctx *sim.Ctx, n pmop.Ptr) {
	r := ls.p.Resolve(ctx, n)
	if ls.seen[r.Offset()] {
		return
	}
	ls.seen[r.Offset()] = true
	ls.tx.AddObject(ctx, r)
}

// NewAVL creates or reopens the tree in p.
func NewAVL(ctx *sim.Ctx, p *pmop.Pool) (*AVL, error) {
	holderT, _ := p.Types().LookupName(typeListRoot)
	nodeT, _ := p.Types().LookupName(typeAVLNode)
	t := &AVL{p: p, nodeT: nodeT.ID}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		t.mu.Lock()
		t.root = remap(t.root)
		t.mu.Unlock()
	})
	if r := p.Root(ctx); !r.IsNull() {
		t.root = r
		t.count = t.countFrom(ctx, p.ReadPtr(ctx, r, 0))
		return t, nil
	}
	r, err := p.Alloc(ctx, holderT.ID, 0)
	if err != nil {
		return nil, err
	}
	p.SetRoot(ctx, r)
	t.root = r
	return t, nil
}

func (t *AVL) countFrom(ctx *sim.Ctx, n pmop.Ptr) int {
	if n.IsNull() {
		return 0
	}
	return 1 + t.countFrom(ctx, t.p.ReadPtr(ctx, n, avLeft)) +
		t.countFrom(ctx, t.p.ReadPtr(ctx, n, avRight))
}

// Name implements Store.
func (t *AVL) Name() string { return "AVL" }

// Len implements Store.
func (t *AVL) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

func (t *AVL) height(ctx *sim.Ctx, n pmop.Ptr) uint64 {
	if n.IsNull() {
		return 0
	}
	return t.p.ReadU64(ctx, n, avHeight)
}

func (t *AVL) fixHeight(ctx *sim.Ctx, ls *logset, n pmop.Ptr) {
	l := t.height(ctx, t.p.ReadPtr(ctx, n, avLeft))
	r := t.height(ctx, t.p.ReadPtr(ctx, n, avRight))
	h := l
	if r > h {
		h = r
	}
	ls.log(ctx, n)
	t.p.WriteU64(ctx, n, avHeight, h+1)
}

func (t *AVL) balanceFactor(ctx *sim.Ctx, n pmop.Ptr) int {
	l := t.height(ctx, t.p.ReadPtr(ctx, n, avLeft))
	r := t.height(ctx, t.p.ReadPtr(ctx, n, avRight))
	return int(l) - int(r)
}

func (t *AVL) rotateRight(ctx *sim.Ctx, ls *logset, y pmop.Ptr) pmop.Ptr {
	p := t.p
	x := p.ReadPtr(ctx, y, avLeft)
	ls.log(ctx, x)
	ls.log(ctx, y)
	p.WritePtr(ctx, y, avLeft, p.ReadPtr(ctx, x, avRight))
	p.WritePtr(ctx, x, avRight, y)
	t.fixHeight(ctx, ls, y)
	t.fixHeight(ctx, ls, x)
	return x
}

func (t *AVL) rotateLeft(ctx *sim.Ctx, ls *logset, x pmop.Ptr) pmop.Ptr {
	p := t.p
	y := p.ReadPtr(ctx, x, avRight)
	ls.log(ctx, x)
	ls.log(ctx, y)
	p.WritePtr(ctx, x, avRight, p.ReadPtr(ctx, y, avLeft))
	p.WritePtr(ctx, y, avLeft, x)
	t.fixHeight(ctx, ls, x)
	t.fixHeight(ctx, ls, y)
	return y
}

func (t *AVL) rebalance(ctx *sim.Ctx, ls *logset, n pmop.Ptr) pmop.Ptr {
	t.fixHeight(ctx, ls, n)
	bf := t.balanceFactor(ctx, n)
	p := t.p
	if bf > 1 {
		if t.balanceFactor(ctx, p.ReadPtr(ctx, n, avLeft)) < 0 {
			ls.log(ctx, n)
			p.WritePtr(ctx, n, avLeft, t.rotateLeft(ctx, ls, p.ReadPtr(ctx, n, avLeft)))
		}
		return t.rotateRight(ctx, ls, n)
	}
	if bf < -1 {
		if t.balanceFactor(ctx, p.ReadPtr(ctx, n, avRight)) > 0 {
			ls.log(ctx, n)
			p.WritePtr(ctx, n, avRight, t.rotateRight(ctx, ls, p.ReadPtr(ctx, n, avRight)))
		}
		return t.rotateLeft(ctx, ls, n)
	}
	return n
}

// Insert implements Store.
func (t *AVL) Insert(ctx *sim.Ctx, key uint64, val []byte) error {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.Lock()
	defer t.mu.Unlock()

	v, err := allocValue(ctx, t.p, val)
	if err != nil {
		return err
	}
	tx := t.p.Begin(ctx)
	ls := newLogset(t.p, tx)
	ls.log(ctx, t.root)
	newRoot, added, err := t.insert(ctx, ls, t.p.ReadPtr(ctx, t.root, 0), key, v)
	if err != nil {
		tx.Abort(ctx)
		t.p.Free(ctx, v)
		return err
	}
	t.p.WritePtr(ctx, t.root, 0, newRoot)
	tx.Commit(ctx)
	if added {
		t.count++
	}
	return nil
}

func (t *AVL) insert(ctx *sim.Ctx, ls *logset, n pmop.Ptr, key uint64, v pmop.Ptr) (pmop.Ptr, bool, error) {
	p := t.p
	if n.IsNull() {
		nn, err := p.Alloc(ctx, t.nodeT, 0)
		if err != nil {
			return pmop.Null, false, err
		}
		ls.tx.AddObject(ctx, nn)
		p.WriteU64(ctx, nn, avKey, key)
		p.WritePtr(ctx, nn, avVal, v)
		p.WriteU64(ctx, nn, avHeight, 1)
		return nn, true, nil
	}
	k := p.ReadU64(ctx, n, avKey)
	switch {
	case key == k:
		old := p.ReadPtr(ctx, n, avVal)
		ls.log(ctx, n)
		p.WritePtr(ctx, n, avVal, v)
		if !old.IsNull() {
			p.Free(ctx, old)
		}
		return n, false, nil
	case key < k:
		child, added, err := t.insert(ctx, ls, p.ReadPtr(ctx, n, avLeft), key, v)
		if err != nil {
			return pmop.Null, false, err
		}
		ls.log(ctx, n)
		p.WritePtr(ctx, n, avLeft, child)
		return t.rebalance(ctx, ls, n), added, nil
	default:
		child, added, err := t.insert(ctx, ls, p.ReadPtr(ctx, n, avRight), key, v)
		if err != nil {
			return pmop.Null, false, err
		}
		ls.log(ctx, n)
		p.WritePtr(ctx, n, avRight, child)
		return t.rebalance(ctx, ls, n), added, nil
	}
}

// Delete implements Store.
func (t *AVL) Delete(ctx *sim.Ctx, key uint64) (bool, error) {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.Lock()
	defer t.mu.Unlock()

	tx := t.p.Begin(ctx)
	ls := newLogset(t.p, tx)
	ls.log(ctx, t.root)
	newRoot, removedVal, removedNode, found := t.remove(ctx, ls, t.p.ReadPtr(ctx, t.root, 0), key)
	if !found {
		tx.Abort(ctx)
		return false, nil
	}
	t.p.WritePtr(ctx, t.root, 0, newRoot)
	tx.Commit(ctx)
	if !removedVal.IsNull() {
		t.p.Free(ctx, removedVal)
	}
	t.p.Free(ctx, removedNode)
	t.count--
	return true, nil
}

// remove deletes key from the subtree at n, returning the new subtree root,
// the removed node's value and node pointers, and whether the key was found.
func (t *AVL) remove(ctx *sim.Ctx, ls *logset, n pmop.Ptr, key uint64) (pmop.Ptr, pmop.Ptr, pmop.Ptr, bool) {
	p := t.p
	if n.IsNull() {
		return pmop.Null, pmop.Null, pmop.Null, false
	}
	k := p.ReadU64(ctx, n, avKey)
	switch {
	case key < k:
		child, rv, rn, found := t.remove(ctx, ls, p.ReadPtr(ctx, n, avLeft), key)
		if !found {
			return n, pmop.Null, pmop.Null, false
		}
		ls.log(ctx, n)
		p.WritePtr(ctx, n, avLeft, child)
		return t.rebalance(ctx, ls, n), rv, rn, true
	case key > k:
		child, rv, rn, found := t.remove(ctx, ls, p.ReadPtr(ctx, n, avRight), key)
		if !found {
			return n, pmop.Null, pmop.Null, false
		}
		ls.log(ctx, n)
		p.WritePtr(ctx, n, avRight, child)
		return t.rebalance(ctx, ls, n), rv, rn, true
	}
	// Found. The node's value is freed by the caller after commit.
	val := p.ReadPtr(ctx, n, avVal)
	left := p.ReadPtr(ctx, n, avLeft)
	right := p.ReadPtr(ctx, n, avRight)
	if left.IsNull() || right.IsNull() {
		child := left
		if child.IsNull() {
			child = right
		}
		return child, val, n, true
	}
	// Two children: replace with in-order successor's key/value, then delete
	// the successor node.
	succ := right
	for {
		l := p.ReadPtr(ctx, succ, avLeft)
		if l.IsNull() {
			break
		}
		succ = l
	}
	sk := p.ReadU64(ctx, succ, avKey)
	sv := p.ReadPtr(ctx, succ, avVal)
	ls.log(ctx, n)
	ls.log(ctx, succ)
	// Detach the successor's value so removing it doesn't free sv.
	p.WritePtr(ctx, succ, avVal, pmop.Null)
	newRight, _, rn, _ := t.remove(ctx, ls, right, sk)
	p.WriteU64(ctx, n, avKey, sk)
	p.WritePtr(ctx, n, avVal, sv)
	p.WritePtr(ctx, n, avRight, newRight)
	return t.rebalance(ctx, ls, n), val, rn, true
}

// Get implements Store.
func (t *AVL) Get(ctx *sim.Ctx, key uint64) ([]byte, bool) {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.p
	n := p.ReadPtr(ctx, t.root, 0)
	for !n.IsNull() {
		k := p.ReadU64(ctx, n, avKey)
		switch {
		case key == k:
			v := p.ReadPtr(ctx, n, avVal)
			if v.IsNull() {
				return nil, false
			}
			return readValue(ctx, p, v), true
		case key < k:
			n = p.ReadPtr(ctx, n, avLeft)
		default:
			n = p.ReadPtr(ctx, n, avRight)
		}
	}
	return nil, false
}
