package ds

import (
	"ffccd/internal/pmop"
)

// Forker is implemented by stores that can clone themselves onto a forked
// pool. Fork copies the store's volatile state (root handles, caches,
// counts) and registers a fresh remap hook on the target pool; it performs
// no simulated memory operations — unlike the constructors' reopen paths,
// which replay loads and would perturb a forked run's cycle counts. The
// persistent state is already present in the forked pool's media, and
// pmop.Ptr values stay valid across a fork because the forked pool keeps
// the parent's id and VA base (pmop.AttachAtEpoch).
//
// Fork only reads the receiver, so one store can be forked concurrently
// into several pools. The receiver must be quiescent (no in-flight ops).
type Forker interface {
	Fork(p *pmop.Pool) Store
}

// Fork implements Forker.
func (l *List) Fork(p *pmop.Pool) Store {
	nl := &List{p: p, nodeT: l.nodeT, root: l.root, handles: make(map[uint64]pmop.Ptr, len(l.handles))}
	for k, h := range l.handles {
		nl.handles[k] = h
	}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		nl.mu.Lock()
		defer nl.mu.Unlock()
		for k, h := range nl.handles {
			nl.handles[k] = remap(h)
		}
		nl.root = remap(nl.root)
	})
	return nl
}

// Fork implements Forker.
func (t *AVL) Fork(p *pmop.Pool) Store {
	nt := &AVL{p: p, nodeT: t.nodeT, root: t.root, count: t.count}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		nt.mu.Lock()
		nt.root = remap(nt.root)
		nt.mu.Unlock()
	})
	return nt
}

// Fork implements Forker.
func (t *BPTree) Fork(p *pmop.Pool) Store {
	nt := &BPTree{p: p, nodeT: t.nodeT, root: t.root, count: t.count}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		nt.mu.Lock()
		nt.root = remap(nt.root)
		nt.mu.Unlock()
	})
	return nt
}

// Fork implements Forker.
func (t *RBTree) Fork(p *pmop.Pool) Store {
	nt := &RBTree{p: p, nodeT: t.nodeT, root: t.root, count: t.count}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		nt.mu.Lock()
		nt.root = remap(nt.root)
		nt.mu.Unlock()
	})
	return nt
}

// Fork implements Forker.
func (t *BzTree) Fork(p *pmop.Pool) Store {
	nt := &BzTree{p: p, nodeT: t.nodeT, root: t.root, count: t.count}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		nt.mu.Lock()
		nt.root = remap(nt.root)
		nt.mu.Unlock()
	})
	return nt
}

// Fork implements Forker.
func (t *FPTree) Fork(p *pmop.Pool) Store {
	nt := &FPTree{
		p: p, leafT: t.leafT, root: t.root,
		index: append([]fpIdx(nil), t.index...),
		count: t.count,
	}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		nt.mu.Lock()
		nt.root = remap(nt.root)
		for i := range nt.index {
			nt.index[i].leaf = remap(nt.index[i].leaf)
		}
		nt.mu.Unlock()
	})
	return nt
}

// Fork implements Forker.
func (s *StringStore) Fork(p *pmop.Pool) Store {
	ns := &StringStore{
		p: p, slots: s.slots,
		segs:  append([]pmop.Ptr(nil), s.segs...),
		count: s.count,
	}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		ns.mu.Lock()
		for i := range ns.segs {
			ns.segs[i] = remap(ns.segs[i])
		}
		ns.mu.Unlock()
	})
	return ns
}
