package ds

import (
	"sync"

	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// RBTree is the RBT microbenchmark: a persistent left-leaning red-black
// tree (Sedgewick's LLRB, which keeps the delete rebalancing tractable).
type RBTree struct {
	p     *pmop.Pool
	mu    sync.Mutex
	nodeT pmop.TypeID
	root  pmop.Ptr // holder: root node @0
	count int
}

// RB node field offsets.
const (
	rbKey   = 0
	rbVal   = 8
	rbLeft  = 16
	rbRight = 24
	rbColor = 32 // 1 = red, 0 = black
)

// NewRBTree creates or reopens the tree.
func NewRBTree(ctx *sim.Ctx, p *pmop.Pool) (*RBTree, error) {
	holderT, _ := p.Types().LookupName(typeListRoot)
	nodeT, _ := p.Types().LookupName(typeRBNode)
	t := &RBTree{p: p, nodeT: nodeT.ID}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		t.mu.Lock()
		t.root = remap(t.root)
		t.mu.Unlock()
	})
	if r := p.Root(ctx); !r.IsNull() {
		t.root = r
		t.count = t.countFrom(ctx, p.ReadPtr(ctx, r, 0))
		return t, nil
	}
	r, err := p.Alloc(ctx, holderT.ID, 0)
	if err != nil {
		return nil, err
	}
	p.SetRoot(ctx, r)
	t.root = r
	return t, nil
}

func (t *RBTree) countFrom(ctx *sim.Ctx, n pmop.Ptr) int {
	if n.IsNull() {
		return 0
	}
	return 1 + t.countFrom(ctx, t.p.ReadPtr(ctx, n, rbLeft)) +
		t.countFrom(ctx, t.p.ReadPtr(ctx, n, rbRight))
}

// Name implements Store.
func (t *RBTree) Name() string { return "RBT" }

// Len implements Store.
func (t *RBTree) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

func (t *RBTree) isRed(ctx *sim.Ctx, n pmop.Ptr) bool {
	return !n.IsNull() && t.p.ReadU64(ctx, n, rbColor) == 1
}

func (t *RBTree) setColor(ctx *sim.Ctx, ls *logset, n pmop.Ptr, red bool) {
	ls.log(ctx, n)
	c := uint64(0)
	if red {
		c = 1
	}
	t.p.WriteU64(ctx, n, rbColor, c)
}

func (t *RBTree) rotL(ctx *sim.Ctx, ls *logset, h pmop.Ptr) pmop.Ptr {
	p := t.p
	x := p.ReadPtr(ctx, h, rbRight)
	ls.log(ctx, h)
	ls.log(ctx, x)
	p.WritePtr(ctx, h, rbRight, p.ReadPtr(ctx, x, rbLeft))
	p.WritePtr(ctx, x, rbLeft, h)
	p.WriteU64(ctx, x, rbColor, p.ReadU64(ctx, h, rbColor))
	p.WriteU64(ctx, h, rbColor, 1)
	return x
}

func (t *RBTree) rotR(ctx *sim.Ctx, ls *logset, h pmop.Ptr) pmop.Ptr {
	p := t.p
	x := p.ReadPtr(ctx, h, rbLeft)
	ls.log(ctx, h)
	ls.log(ctx, x)
	p.WritePtr(ctx, h, rbLeft, p.ReadPtr(ctx, x, rbRight))
	p.WritePtr(ctx, x, rbRight, h)
	p.WriteU64(ctx, x, rbColor, p.ReadU64(ctx, h, rbColor))
	p.WriteU64(ctx, h, rbColor, 1)
	return x
}

func (t *RBTree) flip(ctx *sim.Ctx, ls *logset, h pmop.Ptr) {
	p := t.p
	ls.log(ctx, h)
	l, r := p.ReadPtr(ctx, h, rbLeft), p.ReadPtr(ctx, h, rbRight)
	p.WriteU64(ctx, h, rbColor, 1^p.ReadU64(ctx, h, rbColor))
	if !l.IsNull() {
		ls.log(ctx, l)
		p.WriteU64(ctx, l, rbColor, 1^p.ReadU64(ctx, l, rbColor))
	}
	if !r.IsNull() {
		ls.log(ctx, r)
		p.WriteU64(ctx, r, rbColor, 1^p.ReadU64(ctx, r, rbColor))
	}
}

func (t *RBTree) fixUp(ctx *sim.Ctx, ls *logset, h pmop.Ptr) pmop.Ptr {
	p := t.p
	if t.isRed(ctx, p.ReadPtr(ctx, h, rbRight)) && !t.isRed(ctx, p.ReadPtr(ctx, h, rbLeft)) {
		h = t.rotL(ctx, ls, h)
	}
	l := p.ReadPtr(ctx, h, rbLeft)
	if t.isRed(ctx, l) && !l.IsNull() && t.isRed(ctx, p.ReadPtr(ctx, l, rbLeft)) {
		h = t.rotR(ctx, ls, h)
	}
	if t.isRed(ctx, p.ReadPtr(ctx, h, rbLeft)) && t.isRed(ctx, p.ReadPtr(ctx, h, rbRight)) {
		t.flip(ctx, ls, h)
	}
	return h
}

// Insert implements Store.
func (t *RBTree) Insert(ctx *sim.Ctx, key uint64, val []byte) error {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.Lock()
	defer t.mu.Unlock()

	v, err := allocValue(ctx, t.p, val)
	if err != nil {
		return err
	}
	tx := t.p.Begin(ctx)
	ls := newLogset(t.p, tx)
	ls.log(ctx, t.root)
	nr, added, err := t.insert(ctx, ls, t.p.ReadPtr(ctx, t.root, 0), key, v)
	if err != nil {
		tx.Abort(ctx)
		t.p.Free(ctx, v)
		return err
	}
	t.setColor(ctx, ls, nr, false)
	t.p.WritePtr(ctx, t.root, 0, nr)
	tx.Commit(ctx)
	if added {
		t.count++
	}
	return nil
}

func (t *RBTree) insert(ctx *sim.Ctx, ls *logset, h pmop.Ptr, key uint64, v pmop.Ptr) (pmop.Ptr, bool, error) {
	p := t.p
	if h.IsNull() {
		n, err := p.Alloc(ctx, t.nodeT, 0)
		if err != nil {
			return pmop.Null, false, err
		}
		ls.tx.AddObject(ctx, n)
		p.WriteU64(ctx, n, rbKey, key)
		p.WritePtr(ctx, n, rbVal, v)
		p.WriteU64(ctx, n, rbColor, 1)
		return n, true, nil
	}
	k := p.ReadU64(ctx, h, rbKey)
	var added bool
	var err error
	switch {
	case key == k:
		old := p.ReadPtr(ctx, h, rbVal)
		ls.log(ctx, h)
		p.WritePtr(ctx, h, rbVal, v)
		if !old.IsNull() {
			p.Free(ctx, old)
		}
	case key < k:
		var child pmop.Ptr
		child, added, err = t.insert(ctx, ls, p.ReadPtr(ctx, h, rbLeft), key, v)
		if err != nil {
			return pmop.Null, false, err
		}
		ls.log(ctx, h)
		p.WritePtr(ctx, h, rbLeft, child)
	default:
		var child pmop.Ptr
		child, added, err = t.insert(ctx, ls, p.ReadPtr(ctx, h, rbRight), key, v)
		if err != nil {
			return pmop.Null, false, err
		}
		ls.log(ctx, h)
		p.WritePtr(ctx, h, rbRight, child)
	}
	return t.fixUp(ctx, ls, h), added, nil
}

func (t *RBTree) moveRedLeft(ctx *sim.Ctx, ls *logset, h pmop.Ptr) pmop.Ptr {
	p := t.p
	t.flip(ctx, ls, h)
	r := p.ReadPtr(ctx, h, rbRight)
	if !r.IsNull() && t.isRed(ctx, p.ReadPtr(ctx, r, rbLeft)) {
		ls.log(ctx, h)
		p.WritePtr(ctx, h, rbRight, t.rotR(ctx, ls, r))
		h = t.rotL(ctx, ls, h)
		t.flip(ctx, ls, h)
	}
	return h
}

func (t *RBTree) moveRedRight(ctx *sim.Ctx, ls *logset, h pmop.Ptr) pmop.Ptr {
	p := t.p
	t.flip(ctx, ls, h)
	l := p.ReadPtr(ctx, h, rbLeft)
	if !l.IsNull() && t.isRed(ctx, p.ReadPtr(ctx, l, rbLeft)) {
		h = t.rotR(ctx, ls, h)
		t.flip(ctx, ls, h)
	}
	return h
}

// Delete implements Store.
func (t *RBTree) Delete(ctx *sim.Ctx, key uint64) (bool, error) {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.get(ctx, key); !ok {
		return false, nil
	}
	tx := t.p.Begin(ctx)
	ls := newLogset(t.p, tx)
	ls.log(ctx, t.root)
	var freedVal, freedNode pmop.Ptr
	nr := t.remove(ctx, ls, t.p.ReadPtr(ctx, t.root, 0), key, &freedVal, &freedNode)
	if !nr.IsNull() {
		t.setColor(ctx, ls, nr, false)
	}
	t.p.WritePtr(ctx, t.root, 0, nr)
	tx.Commit(ctx)
	if !freedVal.IsNull() {
		t.p.Free(ctx, freedVal)
	}
	if !freedNode.IsNull() {
		t.p.Free(ctx, freedNode)
	}
	t.count--
	return true, nil
}

func (t *RBTree) minNode(ctx *sim.Ctx, h pmop.Ptr) pmop.Ptr {
	p := t.p
	for {
		l := p.ReadPtr(ctx, h, rbLeft)
		if l.IsNull() {
			return h
		}
		h = l
	}
}

func (t *RBTree) remove(ctx *sim.Ctx, ls *logset, h pmop.Ptr, key uint64, freedVal, freedNode *pmop.Ptr) pmop.Ptr {
	p := t.p
	if key < p.ReadU64(ctx, h, rbKey) {
		l := p.ReadPtr(ctx, h, rbLeft)
		if !t.isRed(ctx, l) && !l.IsNull() && !t.isRed(ctx, p.ReadPtr(ctx, l, rbLeft)) {
			h = t.moveRedLeft(ctx, ls, h)
		}
		ls.log(ctx, h)
		p.WritePtr(ctx, h, rbLeft, t.remove(ctx, ls, p.ReadPtr(ctx, h, rbLeft), key, freedVal, freedNode))
	} else {
		if t.isRed(ctx, p.ReadPtr(ctx, h, rbLeft)) {
			h = t.rotR(ctx, ls, h)
		}
		if key == p.ReadU64(ctx, h, rbKey) && p.ReadPtr(ctx, h, rbRight).IsNull() {
			*freedVal = p.ReadPtr(ctx, h, rbVal)
			*freedNode = p.Resolve(ctx, h)
			return pmop.Null
		}
		r := p.ReadPtr(ctx, h, rbRight)
		if !t.isRed(ctx, r) && !r.IsNull() && !t.isRed(ctx, p.ReadPtr(ctx, r, rbLeft)) {
			h = t.moveRedRight(ctx, ls, h)
		}
		if key == p.ReadU64(ctx, h, rbKey) {
			// Replace with the successor's key/value, then remove it.
			succ := t.minNode(ctx, p.ReadPtr(ctx, h, rbRight))
			sk := p.ReadU64(ctx, succ, rbKey)
			sv := p.ReadPtr(ctx, succ, rbVal)
			*freedVal = p.ReadPtr(ctx, h, rbVal)
			ls.log(ctx, h)
			ls.log(ctx, succ)
			p.WritePtr(ctx, succ, rbVal, pmop.Null)
			p.WriteU64(ctx, h, rbKey, sk)
			p.WritePtr(ctx, h, rbVal, sv)
			var dummyVal pmop.Ptr
			p.WritePtr(ctx, h, rbRight, t.removeMin(ctx, ls, p.ReadPtr(ctx, h, rbRight), &dummyVal, freedNode))
		} else {
			ls.log(ctx, h)
			p.WritePtr(ctx, h, rbRight, t.remove(ctx, ls, p.ReadPtr(ctx, h, rbRight), key, freedVal, freedNode))
		}
	}
	return t.fixUp(ctx, ls, h)
}

func (t *RBTree) removeMin(ctx *sim.Ctx, ls *logset, h pmop.Ptr, freedVal, freedNode *pmop.Ptr) pmop.Ptr {
	p := t.p
	if p.ReadPtr(ctx, h, rbLeft).IsNull() {
		*freedVal = p.ReadPtr(ctx, h, rbVal)
		*freedNode = p.Resolve(ctx, h)
		return pmop.Null
	}
	l := p.ReadPtr(ctx, h, rbLeft)
	if !t.isRed(ctx, l) && !t.isRed(ctx, p.ReadPtr(ctx, l, rbLeft)) {
		h = t.moveRedLeft(ctx, ls, h)
	}
	ls.log(ctx, h)
	p.WritePtr(ctx, h, rbLeft, t.removeMin(ctx, ls, p.ReadPtr(ctx, h, rbLeft), freedVal, freedNode))
	return t.fixUp(ctx, ls, h)
}

func (t *RBTree) get(ctx *sim.Ctx, key uint64) (pmop.Ptr, bool) {
	p := t.p
	n := p.ReadPtr(ctx, t.root, 0)
	for !n.IsNull() {
		k := p.ReadU64(ctx, n, rbKey)
		switch {
		case key == k:
			return p.ReadPtr(ctx, n, rbVal), true
		case key < k:
			n = p.ReadPtr(ctx, n, rbLeft)
		default:
			n = p.ReadPtr(ctx, n, rbRight)
		}
	}
	return pmop.Null, false
}

// Get implements Store.
func (t *RBTree) Get(ctx *sim.Ctx, key uint64) ([]byte, bool) {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.get(ctx, key)
	if !ok || v.IsNull() {
		return nil, ok && !v.IsNull()
	}
	return readValue(ctx, t.p, v), true
}
