package ds_test

import (
	"bytes"
	"testing"

	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/pmop"
)

func TestEmptyStoreOperations(t *testing.T) {
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			_, _, p, ctx := newPool(t)
			s, err := b.build(ctx, p)
			if err != nil {
				t.Fatal(err)
			}
			if s.Len() != 0 {
				t.Errorf("fresh store len = %d", s.Len())
			}
			if _, ok := s.Get(ctx, 1); ok {
				t.Error("phantom key in empty store")
			}
			if ok, err := s.Delete(ctx, 1); ok || err != nil {
				t.Errorf("empty delete = %v, %v", ok, err)
			}
		})
	}
}

func TestSingleElementLifecycle(t *testing.T) {
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			_, _, p, ctx := newPool(t)
			s, _ := b.build(ctx, p)
			if err := s.Insert(ctx, 5, []byte("only")); err != nil {
				t.Fatal(err)
			}
			if ok, _ := s.Delete(ctx, 5); !ok {
				t.Fatal("delete failed")
			}
			if s.Len() != 0 {
				t.Errorf("len = %d after emptying", s.Len())
			}
			// Reinsert into the emptied structure.
			if err := s.Insert(ctx, 6, []byte("again")); err != nil {
				t.Fatal(err)
			}
			if v, ok := s.Get(ctx, 6); !ok || string(v) != "again" {
				t.Fatal("reinsert failed")
			}
		})
	}
}

func TestLargeValues(t *testing.T) {
	// Values near the frame capacity (4064-byte payload limit).
	for _, b := range builders() {
		if b.name == "SS" {
			continue // slot store works the same way; sizes covered below
		}
		t.Run(b.name, func(t *testing.T) {
			_, _, p, ctx := newPool(t)
			s, _ := b.build(ctx, p)
			big := bytes.Repeat([]byte{0xC3}, 4000)
			if err := s.Insert(ctx, 1, big); err != nil {
				t.Fatal(err)
			}
			v, ok := s.Get(ctx, 1)
			if !ok || !bytes.Equal(v, big) {
				t.Fatal("large value round trip failed")
			}
		})
	}
}

func TestSortedInsertWorstCase(t *testing.T) {
	// Monotonic keys are the classic rebalancing stress for AVL/RBT and the
	// split cascade for BT/FPTree/BzTree.
	for _, b := range builders() {
		if b.name == "SS" || b.name == "LL" {
			continue
		}
		t.Run(b.name, func(t *testing.T) {
			_, _, p, ctx := newPool(t)
			s, _ := b.build(ctx, p)
			const n = 800
			for i := uint64(0); i < n; i++ {
				if err := s.Insert(ctx, i, []byte{byte(i)}); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			for i := uint64(0); i < n; i++ {
				if v, ok := s.Get(ctx, i); !ok || v[0] != byte(i) {
					t.Fatalf("get %d failed", i)
				}
			}
			// Descending deletes.
			for i := int64(n - 1); i >= 0; i-- {
				if ok, _ := s.Delete(ctx, uint64(i)); !ok {
					t.Fatalf("delete %d failed", i)
				}
			}
			if s.Len() != 0 {
				t.Errorf("len = %d", s.Len())
			}
		})
	}
}

func TestReverseSortedInsert(t *testing.T) {
	for _, b := range builders() {
		if b.name == "SS" || b.name == "LL" {
			continue
		}
		t.Run(b.name, func(t *testing.T) {
			_, _, p, ctx := newPool(t)
			s, _ := b.build(ctx, p)
			for i := int64(500); i >= 0; i-- {
				if err := s.Insert(ctx, uint64(i), []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			for i := uint64(0); i <= 500; i++ {
				if _, ok := s.Get(ctx, i); !ok {
					t.Fatalf("get %d failed", i)
				}
			}
		})
	}
}

func TestExtremeKeys(t *testing.T) {
	for _, b := range builders() {
		if b.name == "SS" {
			continue
		}
		t.Run(b.name, func(t *testing.T) {
			_, _, p, ctx := newPool(t)
			s, _ := b.build(ctx, p)
			keys := []uint64{0, 1, ^uint64(0) - 1, 1 << 62, 1<<62 + 1}
			for _, k := range keys {
				if err := s.Insert(ctx, k, []byte{byte(k), byte(k >> 56)}); err != nil {
					t.Fatalf("insert %d: %v", k, err)
				}
			}
			for _, k := range keys {
				v, ok := s.Get(ctx, k)
				if !ok || v[0] != byte(k) || v[1] != byte(k>>56) {
					t.Fatalf("get %d failed", k)
				}
			}
		})
	}
}

func TestListWalkOrder(t *testing.T) {
	_, _, p, ctx := newPool(t)
	l, _ := ds.NewList(ctx, p)
	for i := uint64(0); i < 10; i++ {
		l.Insert(ctx, i, []byte{byte(i)})
	}
	var seen []uint64
	l.Walk(ctx, func(key uint64, _ pmop.Ptr) bool {
		seen = append(seen, key)
		return true
	})
	// Head insertion: newest first.
	if len(seen) != 10 || seen[0] != 9 || seen[9] != 0 {
		t.Errorf("walk order = %v", seen)
	}
}

func TestBzTreeConsolidationKeepsData(t *testing.T) {
	// Hammer one leaf with overwrites so it consolidates repeatedly.
	_, _, p, ctx := newPool(t)
	s, _ := ds.NewBzTree(ctx, p)
	for round := 0; round < 50; round++ {
		for k := uint64(0); k < 8; k++ {
			if err := s.Insert(ctx, k, []byte{byte(round), byte(k)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k := uint64(0); k < 8; k++ {
		v, ok := s.Get(ctx, k)
		if !ok || v[0] != 49 || v[1] != byte(k) {
			t.Fatalf("key %d = %v, %v", k, v, ok)
		}
	}
	if s.Len() != 8 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestFPTreeRebuildAfterSplits(t *testing.T) {
	cfg, rt, p, ctx := newPool(t)
	s, _ := ds.NewFPTree(ctx, p)
	for i := uint64(0); i < 500; i++ {
		s.Insert(ctx, i*7%501, []byte{byte(i)})
	}
	p.Device().FlushAll(ctx)
	// Rebuild the volatile inner index from the persistent leaf chain.
	rt2, err := pmop.Attach(cfg, rt.Device())
	if err != nil {
		t.Fatal(err)
	}
	reg := pmop.NewRegistry()
	ds.RegisterTypes(reg)
	p2, err := rt2.Open("ds", reg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Recover(ctx, p2, core.Options{Scheme: core.SchemeNone})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	s2, err := ds.NewFPTree(ctx, p2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() {
		t.Fatalf("len %d vs %d after rebuild", s2.Len(), s.Len())
	}
	for i := uint64(0); i < 501; i++ {
		if _, ok := s.Get(ctx, i); ok {
			if _, ok2 := s2.Get(ctx, i); !ok2 {
				t.Fatalf("key %d lost across rebuild", i)
			}
		}
	}
}
