package ds

import (
	"sync"

	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// BPTree is the BT microbenchmark: a persistent B+tree of order 4 ("one node
// can store 4 values", §7.2). Deletion is lazy — keys are removed from
// leaves without rebalancing and empty nodes are unlinked — which produces
// the internal fragmentation the paper observes for BT.
type BPTree struct {
	p     *pmop.Pool
	mu    sync.Mutex
	nodeT pmop.TypeID
	root  pmop.Ptr // holder: root node @0
	count int
}

// B+tree node layout (order 4): nkeys u64 @0, leaf u64 @8, keys [4]u64 @16,
// slots [5]Ptr @48 (children for internal nodes; value pointers for leaves,
// slot 4 unused). There is deliberately no leaf chain — see RegisterTypes.
const (
	btNKeys = 0
	btLeaf  = 8
	btKeys  = 16
	btSlots = 48
	btOrder = 4
)

func btKeyOff(i int) uint64  { return btKeys + uint64(i)*8 }
func btSlotOff(i int) uint64 { return btSlots + uint64(i)*8 }

// NewBPTree creates or reopens the tree.
func NewBPTree(ctx *sim.Ctx, p *pmop.Pool) (*BPTree, error) {
	holderT, _ := p.Types().LookupName(typeListRoot)
	nodeT, _ := p.Types().LookupName(typeBTNode)
	t := &BPTree{p: p, nodeT: nodeT.ID}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		t.mu.Lock()
		t.root = remap(t.root)
		t.mu.Unlock()
	})
	if r := p.Root(ctx); !r.IsNull() {
		t.root = r
		t.count = t.countKeys(ctx, p.ReadPtr(ctx, r, 0))
		return t, nil
	}
	r, err := p.Alloc(ctx, holderT.ID, 0)
	if err != nil {
		return nil, err
	}
	p.SetRoot(ctx, r)
	t.root = r
	return t, nil
}

func (t *BPTree) countKeys(ctx *sim.Ctx, n pmop.Ptr) int {
	if n.IsNull() {
		return 0
	}
	p := t.p
	nk := int(p.ReadU64(ctx, n, btNKeys))
	if p.ReadU64(ctx, n, btLeaf) == 1 {
		return nk
	}
	total := 0
	for i := 0; i <= nk; i++ {
		total += t.countKeys(ctx, p.ReadPtr(ctx, n, btSlotOff(i)))
	}
	return total
}

// Name implements Store.
func (t *BPTree) Name() string { return "BT" }

// Len implements Store.
func (t *BPTree) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

func (t *BPTree) newNode(ctx *sim.Ctx, ls *logset, leaf bool) (pmop.Ptr, error) {
	n, err := t.p.Alloc(ctx, t.nodeT, 0)
	if err != nil {
		return pmop.Null, err
	}
	ls.tx.AddObject(ctx, n)
	if leaf {
		t.p.WriteU64(ctx, n, btLeaf, 1)
	}
	return n, nil
}

// findLeaf descends to the leaf that should hold key.
func (t *BPTree) findLeaf(ctx *sim.Ctx, key uint64) pmop.Ptr {
	p := t.p
	n := p.ReadPtr(ctx, t.root, 0)
	for !n.IsNull() && p.ReadU64(ctx, n, btLeaf) == 0 {
		nk := int(p.ReadU64(ctx, n, btNKeys))
		i := 0
		for i < nk && key >= p.ReadU64(ctx, n, btKeyOff(i)) {
			i++
		}
		n = p.ReadPtr(ctx, n, btSlotOff(i))
	}
	return n
}

// Insert implements Store.
func (t *BPTree) Insert(ctx *sim.Ctx, key uint64, val []byte) error {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.Lock()
	defer t.mu.Unlock()

	v, err := allocValue(ctx, t.p, val)
	if err != nil {
		return err
	}
	p := t.p
	tx := p.Begin(ctx)
	ls := newLogset(p, tx)
	ls.log(ctx, t.root)

	rootNode := p.ReadPtr(ctx, t.root, 0)
	if rootNode.IsNull() {
		leaf, err := t.newNode(ctx, ls, true)
		if err != nil {
			tx.Abort(ctx)
			p.Free(ctx, v)
			return err
		}
		p.WriteU64(ctx, leaf, btNKeys, 1)
		p.WriteU64(ctx, leaf, btKeyOff(0), key)
		p.WritePtr(ctx, leaf, btSlotOff(0), v)
		p.WritePtr(ctx, t.root, 0, leaf)
		tx.Commit(ctx)
		t.count++
		return nil
	}

	midKey, sibling, added, err := t.insert(ctx, ls, rootNode, key, v)
	if err != nil {
		tx.Abort(ctx)
		p.Free(ctx, v)
		return err
	}
	if !sibling.IsNull() {
		// Root split: new internal root.
		nr, err := t.newNode(ctx, ls, false)
		if err != nil {
			tx.Abort(ctx)
			return err
		}
		p.WriteU64(ctx, nr, btNKeys, 1)
		p.WriteU64(ctx, nr, btKeyOff(0), midKey)
		p.WritePtr(ctx, nr, btSlotOff(0), rootNode)
		p.WritePtr(ctx, nr, btSlotOff(1), sibling)
		p.WritePtr(ctx, t.root, 0, nr)
	}
	tx.Commit(ctx)
	if added {
		t.count++
	}
	return nil
}

// insert adds (key, v) under n. On split it returns the separator key and
// the new right sibling.
func (t *BPTree) insert(ctx *sim.Ctx, ls *logset, n pmop.Ptr, key uint64, v pmop.Ptr) (uint64, pmop.Ptr, bool, error) {
	p := t.p
	nk := int(p.ReadU64(ctx, n, btNKeys))
	if p.ReadU64(ctx, n, btLeaf) == 1 {
		// Overwrite?
		for i := 0; i < nk; i++ {
			if p.ReadU64(ctx, n, btKeyOff(i)) == key {
				old := p.ReadPtr(ctx, n, btSlotOff(i))
				ls.log(ctx, n)
				p.WritePtr(ctx, n, btSlotOff(i), v)
				if !old.IsNull() {
					p.Free(ctx, old)
				}
				return 0, pmop.Null, false, nil
			}
		}
		if nk < btOrder {
			t.leafInsertAt(ctx, ls, n, nk, key, v)
			return 0, pmop.Null, true, nil
		}
		// Split the leaf: keep 2, move 2 to a new sibling, then insert.
		sib, err := t.newNode(ctx, ls, true)
		if err != nil {
			return 0, pmop.Null, false, err
		}
		ls.log(ctx, n)
		for i := 0; i < 2; i++ {
			p.WriteU64(ctx, sib, btKeyOff(i), p.ReadU64(ctx, n, btKeyOff(i+2)))
			p.WritePtr(ctx, sib, btSlotOff(i), p.ReadPtr(ctx, n, btSlotOff(i+2)))
		}
		p.WriteU64(ctx, sib, btNKeys, 2)
		p.WriteU64(ctx, n, btNKeys, 2)
		// Null the vacated slots: reachability reads every pointer offset of
		// the node type, so dead slots must not hold stale pointers.
		p.WritePtr(ctx, n, btSlotOff(2), pmop.Null)
		p.WritePtr(ctx, n, btSlotOff(3), pmop.Null)
		sepKey := p.ReadU64(ctx, sib, btKeyOff(0))
		if key < sepKey {
			t.leafInsertAt(ctx, ls, n, 2, key, v)
		} else {
			t.leafInsertAt(ctx, ls, sib, 2, key, v)
		}
		return sepKey, sib, true, nil
	}

	// Internal node: descend.
	i := 0
	for i < nk && key >= p.ReadU64(ctx, n, btKeyOff(i)) {
		i++
	}
	child := p.ReadPtr(ctx, n, btSlotOff(i))
	midKey, sib, added, err := t.insert(ctx, ls, child, key, v)
	if err != nil || sib.IsNull() {
		return 0, pmop.Null, added, err
	}
	if nk < btOrder {
		ls.log(ctx, n)
		for j := nk; j > i; j-- {
			p.WriteU64(ctx, n, btKeyOff(j), p.ReadU64(ctx, n, btKeyOff(j-1)))
			p.WritePtr(ctx, n, btSlotOff(j+1), p.ReadPtr(ctx, n, btSlotOff(j)))
		}
		p.WriteU64(ctx, n, btKeyOff(i), midKey)
		p.WritePtr(ctx, n, btSlotOff(i+1), sib)
		p.WriteU64(ctx, n, btNKeys, uint64(nk+1))
		return 0, pmop.Null, added, nil
	}
	// Split the internal node. Gather the 5 keys / 6 children including the
	// new separator, keep 2 keys left, promote 1, put 2 right.
	var keys [btOrder + 1]uint64
	var kids [btOrder + 2]pmop.Ptr
	for j := 0; j < nk; j++ {
		keys[j] = p.ReadU64(ctx, n, btKeyOff(j))
	}
	for j := 0; j <= nk; j++ {
		kids[j] = p.ReadPtr(ctx, n, btSlotOff(j))
	}
	copy(keys[i+1:], keys[i:nk])
	keys[i] = midKey
	copy(kids[i+2:], kids[i+1:nk+1])
	kids[i+1] = sib

	nsib, err := t.newNode(ctx, ls, false)
	if err != nil {
		return 0, pmop.Null, false, err
	}
	ls.log(ctx, n)
	promote := keys[2]
	p.WriteU64(ctx, n, btNKeys, 2)
	for j := 0; j < 2; j++ {
		p.WriteU64(ctx, n, btKeyOff(j), keys[j])
	}
	for j := 0; j < 3; j++ {
		p.WritePtr(ctx, n, btSlotOff(j), kids[j])
	}
	p.WritePtr(ctx, n, btSlotOff(3), pmop.Null)
	p.WritePtr(ctx, n, btSlotOff(4), pmop.Null)
	p.WriteU64(ctx, nsib, btNKeys, 2)
	for j := 0; j < 2; j++ {
		p.WriteU64(ctx, nsib, btKeyOff(j), keys[j+3])
	}
	for j := 0; j < 3; j++ {
		p.WritePtr(ctx, nsib, btSlotOff(j), kids[j+3])
	}
	return promote, nsib, added, nil
}

func (t *BPTree) leafInsertAt(ctx *sim.Ctx, ls *logset, n pmop.Ptr, nk int, key uint64, v pmop.Ptr) {
	p := t.p
	ls.log(ctx, n)
	i := 0
	for i < nk && p.ReadU64(ctx, n, btKeyOff(i)) < key {
		i++
	}
	for j := nk; j > i; j-- {
		p.WriteU64(ctx, n, btKeyOff(j), p.ReadU64(ctx, n, btKeyOff(j-1)))
		p.WritePtr(ctx, n, btSlotOff(j), p.ReadPtr(ctx, n, btSlotOff(j-1)))
	}
	p.WriteU64(ctx, n, btKeyOff(i), key)
	p.WritePtr(ctx, n, btSlotOff(i), v)
	p.WriteU64(ctx, n, btNKeys, uint64(nk+1))
}

// Delete implements Store (lazy: no rebalancing; empty subtrees unlinked).
func (t *BPTree) Delete(ctx *sim.Ctx, key uint64) (bool, error) {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.Lock()
	defer t.mu.Unlock()

	p := t.p
	tx := p.Begin(ctx)
	ls := newLogset(p, tx)
	rootNode := p.ReadPtr(ctx, t.root, 0)
	if rootNode.IsNull() {
		tx.Abort(ctx)
		return false, nil
	}
	var freedVal pmop.Ptr
	var freed []pmop.Ptr
	emptied, found := t.remove(ctx, ls, rootNode, key, &freedVal, &freed)
	if !found {
		tx.Abort(ctx)
		return false, nil
	}
	if emptied {
		ls.log(ctx, t.root)
		p.WritePtr(ctx, t.root, 0, pmop.Null)
		freed = append(freed, rootNode)
	}
	tx.Commit(ctx)
	if !freedVal.IsNull() {
		p.Free(ctx, freedVal)
	}
	for _, n := range freed {
		p.Free(ctx, n)
	}
	t.count--
	return true, nil
}

// remove deletes key under n; reports whether n became empty.
func (t *BPTree) remove(ctx *sim.Ctx, ls *logset, n pmop.Ptr, key uint64, freedVal *pmop.Ptr, freed *[]pmop.Ptr) (bool, bool) {
	p := t.p
	nk := int(p.ReadU64(ctx, n, btNKeys))
	if p.ReadU64(ctx, n, btLeaf) == 1 {
		for i := 0; i < nk; i++ {
			if p.ReadU64(ctx, n, btKeyOff(i)) == key {
				*freedVal = p.ReadPtr(ctx, n, btSlotOff(i))
				ls.log(ctx, n)
				for j := i; j < nk-1; j++ {
					p.WriteU64(ctx, n, btKeyOff(j), p.ReadU64(ctx, n, btKeyOff(j+1)))
					p.WritePtr(ctx, n, btSlotOff(j), p.ReadPtr(ctx, n, btSlotOff(j+1)))
				}
				p.WritePtr(ctx, n, btSlotOff(nk-1), pmop.Null)
				p.WriteU64(ctx, n, btNKeys, uint64(nk-1))
				return nk-1 == 0, true
			}
		}
		return false, false
	}
	i := 0
	for i < nk && key >= p.ReadU64(ctx, n, btKeyOff(i)) {
		i++
	}
	child := p.ReadPtr(ctx, n, btSlotOff(i))
	if child.IsNull() {
		return false, false
	}
	emptied, found := t.remove(ctx, ls, child, key, freedVal, freed)
	if !found {
		return false, false
	}
	if emptied {
		// Unlink the empty child.
		*freed = append(*freed, p.Resolve(ctx, child))
		ls.log(ctx, n)
		if i < nk {
			for j := i; j < nk-1; j++ {
				p.WriteU64(ctx, n, btKeyOff(j), p.ReadU64(ctx, n, btKeyOff(j+1)))
			}
			for j := i; j < nk; j++ {
				p.WritePtr(ctx, n, btSlotOff(j), p.ReadPtr(ctx, n, btSlotOff(j+1)))
			}
			// Clear the vacated last slot: a stale duplicate would dangle
			// once that subtree is freed.
			p.WritePtr(ctx, n, btSlotOff(nk), pmop.Null)
		} else {
			p.WritePtr(ctx, n, btSlotOff(nk), pmop.Null)
		}
		p.WriteU64(ctx, n, btNKeys, uint64(nk-1))
		return nk-1 < 0 || (nk-1 == 0 && p.ReadPtr(ctx, n, btSlotOff(0)).IsNull()), true
	}
	return false, true
}

// Get implements Store.
func (t *BPTree) Get(ctx *sim.Ctx, key uint64) ([]byte, bool) {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.p
	leaf := t.findLeaf(ctx, key)
	if leaf.IsNull() {
		return nil, false
	}
	nk := int(p.ReadU64(ctx, leaf, btNKeys))
	for i := 0; i < nk; i++ {
		if p.ReadU64(ctx, leaf, btKeyOff(i)) == key {
			v := p.ReadPtr(ctx, leaf, btSlotOff(i))
			if v.IsNull() {
				return nil, false
			}
			return readValue(ctx, p, v), true
		}
	}
	return nil, false
}
