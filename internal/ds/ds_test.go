package ds_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

type builder struct {
	name   string
	build  func(ctx *sim.Ctx, p *pmop.Pool) (ds.Store, error)
	keyCap uint64 // key space bound (SS is slot-addressed)
}

func builders() []builder {
	return []builder{
		{"LL", func(ctx *sim.Ctx, p *pmop.Pool) (ds.Store, error) { return ds.NewList(ctx, p) }, 1 << 62},
		{"AVL", func(ctx *sim.Ctx, p *pmop.Pool) (ds.Store, error) { return ds.NewAVL(ctx, p) }, 1 << 62},
		{"SS", func(ctx *sim.Ctx, p *pmop.Pool) (ds.Store, error) { return ds.NewStringStore(ctx, p, 1024) }, 1024},
		{"BT", func(ctx *sim.Ctx, p *pmop.Pool) (ds.Store, error) { return ds.NewBPTree(ctx, p) }, 1 << 62},
		{"RBT", func(ctx *sim.Ctx, p *pmop.Pool) (ds.Store, error) { return ds.NewRBTree(ctx, p) }, 1 << 62},
		{"BzTree", func(ctx *sim.Ctx, p *pmop.Pool) (ds.Store, error) { return ds.NewBzTree(ctx, p) }, 1 << 62},
		{"FPTree", func(ctx *sim.Ctx, p *pmop.Pool) (ds.Store, error) { return ds.NewFPTree(ctx, p) }, 1 << 62},
	}
}

func newPool(t testing.TB) (*sim.Config, *pmop.Runtime, *pmop.Pool, *sim.Ctx) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.CacheBytes = 256 * 1024
	rt := pmop.NewRuntime(&cfg, 128<<20)
	reg := pmop.NewRegistry()
	ds.RegisterTypes(reg)
	p, err := rt.Create("ds", 64<<20, 12, reg)
	if err != nil {
		t.Fatal(err)
	}
	return &cfg, rt, p, sim.NewCtx(&cfg)
}

func valFor(key uint64, n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = byte(key>>uint(8*(i%8))) ^ byte(i)
	}
	return v
}

func TestInsertGetDelete(t *testing.T) {
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			_, _, p, ctx := newPool(t)
			s, err := b.build(ctx, p)
			if err != nil {
				t.Fatal(err)
			}
			const n = 300
			for i := uint64(0); i < n; i++ {
				if err := s.Insert(ctx, i, valFor(i, 64)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			if s.Len() != n {
				t.Fatalf("len = %d, want %d", s.Len(), n)
			}
			for i := uint64(0); i < n; i++ {
				v, ok := s.Get(ctx, i)
				if !ok || !bytes.Equal(v, valFor(i, 64)) {
					t.Fatalf("get %d: ok=%v", i, ok)
				}
			}
			if _, ok := s.Get(ctx, n+10); ok {
				t.Fatal("phantom key")
			}
			// Delete evens.
			for i := uint64(0); i < n; i += 2 {
				ok, err := s.Delete(ctx, i)
				if err != nil || !ok {
					t.Fatalf("delete %d: %v %v", i, ok, err)
				}
			}
			for i := uint64(0); i < n; i++ {
				_, ok := s.Get(ctx, i)
				if want := i%2 == 1; ok != want {
					t.Fatalf("after delete, get %d = %v", i, ok)
				}
			}
			if s.Len() != n/2 {
				t.Fatalf("len = %d, want %d", s.Len(), n/2)
			}
			if ok, _ := s.Delete(ctx, 0); ok {
				t.Fatal("double delete succeeded")
			}
		})
	}
}

func TestOverwrite(t *testing.T) {
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			_, _, p, ctx := newPool(t)
			s, _ := b.build(ctx, p)
			s.Insert(ctx, 7, []byte("old-value-old-value"))
			s.Insert(ctx, 7, []byte("new"))
			v, ok := s.Get(ctx, 7)
			if !ok || string(v) != "new" {
				t.Fatalf("overwrite failed: %q %v", v, ok)
			}
			if s.Len() != 1 {
				t.Fatalf("len = %d", s.Len())
			}
		})
	}
}

// churn runs a deterministic op mix mirrored against a Go map. A nil model
// starts fresh; passing an existing model continues a prior session.
func churn(t *testing.T, s ds.Store, ctx *sim.Ctx, keyCap uint64, ops int, seed int64, model map[uint64][]byte) map[uint64][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	if model == nil {
		model = make(map[uint64][]byte)
	}
	for i := 0; i < ops; i++ {
		key := rng.Uint64() % keyCap
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // insert
			v := valFor(key^uint64(i), 16+rng.Intn(113))
			if err := s.Insert(ctx, key, v); err != nil {
				t.Fatalf("op %d insert: %v", i, err)
			}
			model[key] = v
		case 6, 7: // delete
			ok, err := s.Delete(ctx, key)
			if err != nil {
				t.Fatalf("op %d delete: %v", i, err)
			}
			_, want := model[key]
			if ok != want {
				t.Fatalf("op %d delete %d: got %v want %v", i, key, ok, want)
			}
			delete(model, key)
		default: // get
			v, ok := s.Get(ctx, key)
			want, wok := model[key]
			if ok != wok || (ok && !bytes.Equal(v, want)) {
				t.Fatalf("op %d get %d mismatch (ok=%v want %v)", i, key, ok, wok)
			}
		}
	}
	return model
}

func verifyModel(t *testing.T, s ds.Store, ctx *sim.Ctx, model map[uint64][]byte) {
	t.Helper()
	if s.Len() != len(model) {
		t.Fatalf("len = %d, model = %d", s.Len(), len(model))
	}
	for k, want := range model {
		v, ok := s.Get(ctx, k)
		if !ok || !bytes.Equal(v, want) {
			t.Fatalf("key %d: ok=%v", k, ok)
		}
	}
}

func TestChurnAgainstModel(t *testing.T) {
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			_, _, p, ctx := newPool(t)
			s, _ := b.build(ctx, p)
			keyCap := b.keyCap
			if keyCap > 500 {
				keyCap = 500
			}
			model := churn(t, s, ctx, keyCap, 1500, 42, nil)
			verifyModel(t, s, ctx, model)
		})
	}
}

func TestDefragPreservesData(t *testing.T) {
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			_, _, p, ctx := newPool(t)
			s, _ := b.build(ctx, p)
			keyCap := b.keyCap
			if keyCap > 800 {
				keyCap = 800
			}
			model := churn(t, s, ctx, keyCap, 2500, 7, nil)
			before := p.Heap().Frag(12)

			opt := core.DefaultOptions()
			opt.TriggerRatio = 1.01
			opt.TargetRatio = 1.05
			e := core.NewEngine(p, opt)
			defer e.Close()
			e.RunCycle(ctx)

			after := p.Heap().Frag(12)
			if before.FragRatio > 1.3 && after.FragRatio >= before.FragRatio {
				t.Errorf("fragR %.2f → %.2f", before.FragRatio, after.FragRatio)
			}
			verifyModel(t, s, ctx, model)

			// Keep operating after the cycle (stale-handle check).
			model = churn(t, s, ctx, keyCap, 500, 8, model)
			verifyModel(t, s, ctx, model)
		})
	}
}

func TestReopenAcrossRuns(t *testing.T) {
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			cfg, rt, p, ctx := newPool(t)
			s, _ := b.build(ctx, p)
			keyCap := b.keyCap
			if keyCap > 300 {
				keyCap = 300
			}
			model := churn(t, s, ctx, keyCap, 800, 13, nil)
			p.Device().FlushAll(ctx)

			rt2, err := pmop.Attach(cfg, rt.Device())
			if err != nil {
				t.Fatal(err)
			}
			reg := pmop.NewRegistry()
			ds.RegisterTypes(reg)
			p2, err := rt2.Open("ds", reg)
			if err != nil {
				t.Fatal(err)
			}
			e, err := core.Recover(ctx, p2, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			s2, err := b.build(ctx, p2)
			if err != nil {
				t.Fatal(err)
			}
			verifyModel(t, s2, ctx, model)
			// And the reopened store still accepts writes.
			if err := s2.Insert(ctx, 1, []byte("post-reopen")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCrashDuringDefragThroughAPI(t *testing.T) {
	for _, b := range builders() {
		for _, scheme := range []core.Scheme{core.SchemeSFCCD, core.SchemeFFCCD} {
			t.Run(fmt.Sprintf("%s/%s", b.name, scheme), func(t *testing.T) {
				cfg, rt, p, ctx := newPool(t)
				s, _ := b.build(ctx, p)
				keyCap := b.keyCap
				if keyCap > 400 {
					keyCap = 400
				}
				model := churn(t, s, ctx, keyCap, 1200, 17, nil)
				p.Device().FlushAll(ctx)

				opt := core.DefaultOptions()
				opt.Scheme = scheme
				opt.TriggerRatio = 1.01
				opt.TargetRatio = 1.05
				e := core.NewEngine(p, opt)
				// Start the epoch and do some API traffic mid-compaction,
				// then crash.
				if !e.BeginCycle(ctx) {
					t.Skip("heap too compact to start a cycle")
				}
				for i := uint64(0); i < 50; i++ {
					s.Get(ctx, i%keyCap)
				}
				rt.Device().Crash()
				if e.RBB() != nil {
					e.RBB().PowerLossFlush()
				}

				rt2, err := pmop.Attach(cfg, rt.Device())
				if err != nil {
					t.Fatal(err)
				}
				reg := pmop.NewRegistry()
				ds.RegisterTypes(reg)
				p2, err := rt2.Open("ds", reg)
				if err != nil {
					t.Fatal(err)
				}
				e2, err := core.Recover(ctx, p2, opt)
				if err != nil {
					t.Fatal(err)
				}
				defer e2.Close()
				s2, err := b.build(ctx, p2)
				if err != nil {
					t.Fatal(err)
				}
				verifyModel(t, s2, ctx, model)
			})
		}
	}
}

func TestStringStoreSwap(t *testing.T) {
	_, _, p, ctx := newPool(t)
	s, _ := ds.NewStringStore(ctx, p, 64)
	s.Insert(ctx, 1, []byte("one"))
	s.Insert(ctx, 2, []byte("two"))
	if err := s.Swap(ctx, 1, 2); err != nil {
		t.Fatal(err)
	}
	v1, _ := s.Get(ctx, 1)
	v2, _ := s.Get(ctx, 2)
	if string(v1) != "two" || string(v2) != "one" {
		t.Fatalf("swap failed: %q %q", v1, v2)
	}
}

func TestStringStoreOutOfRange(t *testing.T) {
	_, _, p, ctx := newPool(t)
	s, _ := ds.NewStringStore(ctx, p, 8)
	if err := s.Insert(ctx, 9, []byte("x")); err == nil {
		t.Fatal("expected range error")
	}
}

func TestConcurrentReaders(t *testing.T) {
	// BzTree and FPTree advertise concurrent access (4T in the paper).
	for _, b := range builders()[5:] {
		t.Run(b.name, func(t *testing.T) {
			cfg, _, p, ctx := newPool(t)
			s, _ := b.build(ctx, p)
			for i := uint64(0); i < 200; i++ {
				s.Insert(ctx, i, valFor(i, 32))
			}
			done := make(chan error, 4)
			for w := 0; w < 4; w++ {
				go func(w int) {
					c := sim.NewCtx(cfg)
					for i := uint64(0); i < 200; i++ {
						if w%2 == 0 {
							if v, ok := s.Get(c, i); !ok || !bytes.Equal(v, valFor(i, 32)) {
								done <- fmt.Errorf("reader: key %d bad", i)
								return
							}
						} else {
							k := 1000 + uint64(w)*1000 + i
							if err := s.Insert(c, k, valFor(k, 32)); err != nil {
								done <- err
								return
							}
						}
					}
					done <- nil
				}(w)
			}
			for w := 0; w < 4; w++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
