package ds

import (
	"sync"

	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// List is the LL microbenchmark: a persistent doubly linked list of
// (key, value-object) nodes. Like a real application it keeps a volatile
// handle map from key to node pointer so deletes are O(1); the handles are
// persistent pointers and every use goes through D_RW, so they stay valid
// while the defragmenter moves nodes.
type List struct {
	p  *pmop.Pool
	mu sync.Mutex

	root    pmop.Ptr // listroot object: head @0, tail @8
	nodeT   pmop.TypeID
	handles map[uint64]pmop.Ptr
}

// List node field offsets.
const (
	lnKey  = 0
	lnVal  = 8
	lnNext = 16
	lnPrev = 24
)

// NewList creates (or rebuilds, if the pool root already holds one) the list.
func NewList(ctx *sim.Ctx, p *pmop.Pool) (*List, error) {
	rootT, _ := p.Types().LookupName(typeListRoot)
	nodeT, _ := p.Types().LookupName(typeListNode)
	l := &List{p: p, nodeT: nodeT.ID, handles: make(map[uint64]pmop.Ptr)}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		l.mu.Lock()
		defer l.mu.Unlock()
		for k, h := range l.handles {
			l.handles[k] = remap(h)
		}
		l.root = remap(l.root)
	})

	if r := p.Root(ctx); !r.IsNull() {
		l.root = r
		// Rebuild the volatile handle map from the persistent list.
		for n := p.ReadPtr(ctx, r, 0); !n.IsNull(); n = p.ReadPtr(ctx, n, lnNext) {
			l.handles[p.ReadU64(ctx, n, lnKey)] = n
		}
		return l, nil
	}
	r, err := p.Alloc(ctx, rootT.ID, 0)
	if err != nil {
		return nil, err
	}
	p.SetRoot(ctx, r)
	l.root = r
	return l, nil
}

// Name implements Store.
func (l *List) Name() string { return "LL" }

// Len implements Store.
func (l *List) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.handles)
}

// Insert implements Store: head insertion, overwriting duplicates.
func (l *List) Insert(ctx *sim.Ctx, key uint64, val []byte) error {
	l.p.StartOp()
	defer l.p.EndOp()
	l.mu.Lock()
	defer l.mu.Unlock()

	if old, ok := l.handles[key]; ok {
		return l.overwrite(ctx, old, val)
	}
	v, err := allocValue(ctx, l.p, val)
	if err != nil {
		return err
	}
	n, err := l.p.Alloc(ctx, l.nodeT, 0)
	if err != nil {
		l.p.Free(ctx, v)
		return err
	}
	p := l.p
	tx := p.Begin(ctx)
	tx.AddObject(ctx, n)
	tx.AddPtr(ctx, l.root, 0)
	p.WriteU64(ctx, n, lnKey, key)
	p.WritePtr(ctx, n, lnVal, v)
	head := p.ReadPtr(ctx, l.root, 0)
	p.WritePtr(ctx, n, lnNext, head)
	if !head.IsNull() {
		tx.AddPtr(ctx, head, lnPrev)
		p.WritePtr(ctx, head, lnPrev, n)
	} else {
		tx.AddPtr(ctx, l.root, 8)
		p.WritePtr(ctx, l.root, 8, n)
	}
	p.WritePtr(ctx, l.root, 0, n)
	tx.Commit(ctx)
	l.handles[key] = n
	return nil
}

func (l *List) overwrite(ctx *sim.Ctx, n pmop.Ptr, val []byte) error {
	p := l.p
	nv, err := allocValue(ctx, p, val)
	if err != nil {
		return err
	}
	old := p.ReadPtr(ctx, n, lnVal)
	tx := p.Begin(ctx)
	tx.AddPtr(ctx, n, lnVal)
	p.WritePtr(ctx, n, lnVal, nv)
	tx.Commit(ctx)
	if !old.IsNull() {
		p.Free(ctx, old)
	}
	return nil
}

// Delete implements Store.
func (l *List) Delete(ctx *sim.Ctx, key uint64) (bool, error) {
	l.p.StartOp()
	defer l.p.EndOp()
	l.mu.Lock()
	defer l.mu.Unlock()
	n, ok := l.handles[key]
	if !ok {
		return false, nil
	}
	p := l.p
	prev := p.ReadPtr(ctx, n, lnPrev)
	next := p.ReadPtr(ctx, n, lnNext)
	val := p.ReadPtr(ctx, n, lnVal)

	tx := p.Begin(ctx)
	if prev.IsNull() {
		tx.AddPtr(ctx, l.root, 0)
		p.WritePtr(ctx, l.root, 0, next)
	} else {
		tx.AddPtr(ctx, prev, lnNext)
		p.WritePtr(ctx, prev, lnNext, next)
	}
	if next.IsNull() {
		tx.AddPtr(ctx, l.root, 8)
		p.WritePtr(ctx, l.root, 8, prev)
	} else {
		tx.AddPtr(ctx, next, lnPrev)
		p.WritePtr(ctx, next, lnPrev, prev)
	}
	tx.Commit(ctx)

	if !val.IsNull() {
		p.Free(ctx, val)
	}
	p.Free(ctx, n)
	delete(l.handles, key)
	return true, nil
}

// Get implements Store.
func (l *List) Get(ctx *sim.Ctx, key uint64) ([]byte, bool) {
	l.p.StartOp()
	defer l.p.EndOp()
	l.mu.Lock()
	n, ok := l.handles[key]
	l.mu.Unlock()
	if !ok {
		return nil, false
	}
	v := l.p.ReadPtr(ctx, n, lnVal)
	if v.IsNull() {
		return nil, false
	}
	return readValue(ctx, l.p, v), true
}

// Walk traverses the persistent chain from head, calling fn for each
// (key, node) — used by integrity checkers.
func (l *List) Walk(ctx *sim.Ctx, fn func(key uint64, node pmop.Ptr) bool) {
	l.p.StartOp()
	defer l.p.EndOp()
	for n := l.p.ReadPtr(ctx, l.root, 0); !n.IsNull(); n = l.p.ReadPtr(ctx, n, lnNext) {
		if !fn(l.p.ReadU64(ctx, n, lnKey), n) {
			return
		}
	}
}
