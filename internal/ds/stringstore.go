package ds

import (
	"fmt"
	"sync"

	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// StringStore is the SS ("String Swap") microbenchmark: a persistent array
// of string slots whose contents are repeatedly replaced by strings of
// different lengths — the classic external-fragmentation generator (every
// replacement frees one size class and allocates another).
//
// The slot array is a chain of pointer-array segments (a segment must fit in
// one allocator frame). Slot 0 of each segment links to the next segment;
// the remaining slots hold string pointers.
type StringStore struct {
	p     *pmop.Pool
	mu    sync.Mutex
	slots int
	segs  []pmop.Ptr // volatile segment cache (healed by the remap hook)
	count int
}

// ssSegSlots is the number of data slots per segment (plus the next link).
const ssSegSlots = 480

// NewStringStore creates or reopens a store with the given slot count.
func NewStringStore(ctx *sim.Ctx, p *pmop.Pool, slots int) (*StringStore, error) {
	arrT, _ := p.Types().LookupName(typeStrArray)
	s := &StringStore{p: p, slots: slots}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		s.mu.Lock()
		for i := range s.segs {
			s.segs[i] = remap(s.segs[i])
		}
		s.mu.Unlock()
	})

	if r := p.Root(ctx); !r.IsNull() {
		// Reopen: walk the segment chain, rebuild the cache and count.
		s.slots = 0
		for seg := r; !seg.IsNull(); seg = p.ReadPtr(ctx, seg, 0) {
			s.segs = append(s.segs, seg)
			_, payload := p.Header(ctx, p.Resolve(ctx, seg))
			n := int(payload/8) - 1
			s.slots += n
			for i := 1; i <= n; i++ {
				if !p.ReadPtr(ctx, seg, uint64(i)*8).IsNull() {
					s.count++
				}
			}
		}
		return s, nil
	}

	var prev pmop.Ptr
	for remaining := slots; remaining > 0; remaining -= ssSegSlots {
		n := remaining
		if n > ssSegSlots {
			n = ssSegSlots
		}
		seg, err := p.Alloc(ctx, arrT.ID, uint64(n+1)*8)
		if err != nil {
			return nil, err
		}
		p.PersistRange(ctx, seg.Offset(), uint64(n+1)*8)
		if prev.IsNull() {
			p.SetRoot(ctx, seg)
		} else {
			p.WritePtr(ctx, prev, 0, seg)
			p.PersistRange(ctx, prev.Offset(), 8)
		}
		s.segs = append(s.segs, seg)
		prev = seg
	}
	return s, nil
}

// Name implements Store.
func (s *StringStore) Name() string { return "SS" }

// Len implements Store.
func (s *StringStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// slotOf maps a key to (segment, payload offset). Caller holds s.mu.
func (s *StringStore) slotOf(key uint64) (pmop.Ptr, uint64, error) {
	if key >= uint64(s.slots) {
		return pmop.Null, 0, fmt.Errorf("ds: string slot %d out of range (%d slots)", key, s.slots)
	}
	seg := int(key) / ssSegSlots
	idx := int(key)%ssSegSlots + 1 // slot 0 is the chain link
	return s.segs[seg], uint64(idx) * 8, nil
}

// Insert implements Store: replace slot key's string with val.
func (s *StringStore) Insert(ctx *sim.Ctx, key uint64, val []byte) error {
	s.p.StartOp()
	defer s.p.EndOp()
	s.mu.Lock()
	defer s.mu.Unlock()

	seg, off, err := s.slotOf(key)
	if err != nil {
		return err
	}
	p := s.p
	nv, err := allocValue(ctx, p, val)
	if err != nil {
		return err
	}
	old := p.ReadPtr(ctx, seg, off)
	tx := p.Begin(ctx)
	tx.AddRange(ctx, seg, off, 8)
	p.WritePtr(ctx, seg, off, nv)
	tx.Commit(ctx)
	if !old.IsNull() {
		p.Free(ctx, old)
	} else {
		s.count++
	}
	return nil
}

// Delete implements Store: clear the slot.
func (s *StringStore) Delete(ctx *sim.Ctx, key uint64) (bool, error) {
	s.p.StartOp()
	defer s.p.EndOp()
	s.mu.Lock()
	defer s.mu.Unlock()

	seg, off, err := s.slotOf(key)
	if err != nil {
		return false, err
	}
	p := s.p
	old := p.ReadPtr(ctx, seg, off)
	if old.IsNull() {
		return false, nil
	}
	tx := p.Begin(ctx)
	tx.AddRange(ctx, seg, off, 8)
	p.WritePtr(ctx, seg, off, pmop.Null)
	tx.Commit(ctx)
	p.Free(ctx, old)
	s.count--
	return true, nil
}

// Get implements Store.
func (s *StringStore) Get(ctx *sim.Ctx, key uint64) ([]byte, bool) {
	s.p.StartOp()
	defer s.p.EndOp()
	s.mu.Lock()
	defer s.mu.Unlock()

	seg, off, err := s.slotOf(key)
	if err != nil {
		return nil, false
	}
	v := s.p.ReadPtr(ctx, seg, off)
	if v.IsNull() {
		return nil, false
	}
	return readValue(ctx, s.p, v), true
}

// Swap exchanges the strings in slots i and j — the benchmark's namesake
// operation.
func (s *StringStore) Swap(ctx *sim.Ctx, i, j uint64) error {
	s.p.StartOp()
	defer s.p.EndOp()
	s.mu.Lock()
	defer s.mu.Unlock()

	segI, oi, err := s.slotOf(i)
	if err != nil {
		return err
	}
	segJ, oj, err := s.slotOf(j)
	if err != nil {
		return err
	}
	p := s.p
	a := p.ReadPtr(ctx, segI, oi)
	b := p.ReadPtr(ctx, segJ, oj)
	tx := p.Begin(ctx)
	tx.AddRange(ctx, segI, oi, 8)
	tx.AddRange(ctx, segJ, oj, 8)
	p.WritePtr(ctx, segI, oi, b)
	p.WritePtr(ctx, segJ, oj, a)
	tx.Commit(ctx)
	return nil
}
