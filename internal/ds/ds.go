// Package ds implements the persistent data structures the paper evaluates
// on top of the PMOP programming model: the five microbenchmarks (linked
// list, AVL tree, string swap, B+tree, red-black tree, §6) and the two
// state-of-the-art concurrent PM indexes (BzTree and FPTree, §7.3).
//
// Every structure follows the libpmemobj discipline the paper assumes:
// typed allocation, root objects, undo-log transactions around mutations,
// and all pointer dereferences through the pool's D_RW/D_RO accessors — the
// hook the defragmenter's read barrier lives in. Mutating operations bracket
// themselves with Pool.StartOp/EndOp so the collector can stop the world.
package ds

import (
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// Store is the uniform key-value interface the workload drivers exercise.
type Store interface {
	// Name identifies the structure in reports (LL, AVL, SS, BT, RBT, ...).
	Name() string
	// Insert adds key with a copy of val. Duplicate keys overwrite.
	Insert(ctx *sim.Ctx, key uint64, val []byte) error
	// Delete removes key, reporting whether it was present.
	Delete(ctx *sim.Ctx, key uint64) (bool, error)
	// Get returns a copy of the value stored under key.
	Get(ctx *sim.Ctx, key uint64) ([]byte, bool)
	// Len returns the number of live keys.
	Len() int
}

// Type names shared by the structures; RegisterTypes installs them all in a
// registry (idempotent).
const (
	typeValue    = "ds.value"
	typeListNode = "ds.listnode"
	typeListRoot = "ds.listroot"
	typeAVLNode  = "ds.avlnode"
	typeRBNode   = "ds.rbnode"
	typeBTNode   = "ds.btnode"
	typeStrArray = "ds.strarray"
	typeBzNode   = "ds.bznode"
	typeFPLeaf   = "ds.fpleaf"
)

// RegisterTypes registers every ds type in reg. Safe to call repeatedly.
func RegisterTypes(reg *pmop.Registry) {
	reg.Register(pmop.TypeInfo{Name: typeValue, Kind: pmop.KindBytes})
	// list node: key u64 @0, val Ptr @8, next Ptr @16, prev Ptr @24.
	reg.Register(pmop.TypeInfo{Name: typeListNode, Kind: pmop.KindFixed, Size: 32, PtrOffsets: []uint64{8, 16, 24}})
	// list root: head Ptr @0, tail Ptr @8.
	reg.Register(pmop.TypeInfo{Name: typeListRoot, Kind: pmop.KindFixed, Size: 16, PtrOffsets: []uint64{0, 8}})
	// AVL node: key u64 @0, val Ptr @8, left @16, right @24, height u64 @32.
	reg.Register(pmop.TypeInfo{Name: typeAVLNode, Kind: pmop.KindFixed, Size: 40, PtrOffsets: []uint64{8, 16, 24}})
	// RB node: key u64 @0, val Ptr @8, left @16, right @24, color u64 @32.
	reg.Register(pmop.TypeInfo{Name: typeRBNode, Kind: pmop.KindFixed, Size: 40, PtrOffsets: []uint64{8, 16, 24}})
	// B+tree node (order 4, §7.2 "one node can store 4 values"):
	// nkeys u64 @0, leaf u64 @8, keys [4]u64 @16, children/vals [5]Ptr @48.
	// (No leaf chain: lazy deletion would leave dangling next pointers that
	// reachability analysis must not follow; range scans go via the index.)
	reg.Register(pmop.TypeInfo{Name: typeBTNode, Kind: pmop.KindFixed, Size: 96,
		PtrOffsets: []uint64{48, 56, 64, 72, 80}})
	// String-swap slot array: pure pointer array.
	reg.Register(pmop.TypeInfo{Name: typeStrArray, Kind: pmop.KindPtrArray})
	// BzTree node (layout in bztree.go).
	reg.Register(pmop.TypeInfo{Name: typeBzNode, Kind: pmop.KindFixed, Size: bzNodeSize, PtrOffsets: bzNodePtrOffsets()})
	// FPTree leaf (layout in fptree.go).
	reg.Register(pmop.TypeInfo{Name: typeFPLeaf, Kind: pmop.KindFixed, Size: fpLeafSize, PtrOffsets: fpLeafPtrOffsets()})
	// Registration batch complete: compile the registry for lock-free
	// lookup (the Alloc/mark hot path). Later Registers — e.g. a following
	// kv.RegisterTypes on the same registry — copy-on-write and republish.
	reg.Freeze()
}

// allocValue clones val into a fresh persistent value object and persists
// it. Values are immutable once linked, so flushing here (while the object
// is still unreachable) keeps the later link-commit sufficient for crash
// consistency without logging the value contents.
func allocValue(ctx *sim.Ctx, p *pmop.Pool, val []byte) (pmop.Ptr, error) {
	ti, _ := p.Types().LookupName(typeValue)
	v, err := p.Alloc(ctx, ti.ID, uint64(len(val)))
	if err != nil {
		return pmop.Null, err
	}
	p.WriteBytes(ctx, v, 0, val)
	p.PersistRange(ctx, v.Offset(), uint64(len(val)))
	return v, nil
}

// readValue copies a value object's payload out.
func readValue(ctx *sim.Ctx, p *pmop.Pool, v pmop.Ptr) []byte {
	_, n := p.Header(ctx, p.Resolve(ctx, v))
	buf := make([]byte, n)
	p.ReadBytes(ctx, v, 0, buf)
	return buf
}
