package ds

import (
	"sort"
	"sync"

	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// BzTree is a persistent B-tree in the style of Arulraj et al. (VLDB'18):
// leaf nodes are append-only (inserts and deletes append records; a full
// leaf is consolidated or split into fresh nodes) and internal nodes are
// copy-on-write. Every entry carries a PMwCAS metadata word — the extra
// space the paper notes makes BzTree benefit less from defragmentation
// (§7.3). The original's lock-free PMwCAS protocol is replaced by a
// read-write mutex; the allocation and layout behaviour, which is what
// defragmentation sees, is preserved.
type BzTree struct {
	p     *pmop.Pool
	mu    sync.RWMutex
	nodeT pmop.TypeID
	root  pmop.Ptr // holder: root node @0
	count int
}

// BzTree node layout: count u64 @0, leaf u64 @8, status u64 @16 (PMwCAS
// status word), pad @24; then bzEntries entries of 24 bytes each:
// key u64, meta u64, ptr (value or child).
const (
	bzCount    = 0
	bzLeafF    = 8
	bzStatus   = 16
	bzEntry0   = 32
	bzEntries  = 16
	bzNodeSize = bzEntry0 + bzEntries*24

	bzMetaVisible   = 1 << 0
	bzMetaTombstone = 1 << 1
)

func bzNodePtrOffsets() []uint64 {
	offs := make([]uint64, bzEntries)
	for i := range offs {
		offs[i] = uint64(bzEntry0 + i*24 + 16)
	}
	return offs
}

func bzKeyOff(i int) uint64  { return uint64(bzEntry0 + i*24) }
func bzMetaOff(i int) uint64 { return uint64(bzEntry0 + i*24 + 8) }
func bzPtrOff(i int) uint64  { return uint64(bzEntry0 + i*24 + 16) }

// NewBzTree creates or reopens the tree.
func NewBzTree(ctx *sim.Ctx, p *pmop.Pool) (*BzTree, error) {
	holderT, _ := p.Types().LookupName(typeListRoot)
	nodeT, _ := p.Types().LookupName(typeBzNode)
	t := &BzTree{p: p, nodeT: nodeT.ID}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		t.mu.Lock()
		t.root = remap(t.root)
		t.mu.Unlock()
	})
	if r := p.Root(ctx); !r.IsNull() {
		t.root = r
		t.count = len(t.collectLive(ctx, p.ReadPtr(ctx, r, 0)))
		return t, nil
	}
	r, err := p.Alloc(ctx, holderT.ID, 0)
	if err != nil {
		return nil, err
	}
	p.SetRoot(ctx, r)
	t.root = r
	return t, nil
}

type bzKV struct {
	key uint64
	val pmop.Ptr
}

// liveEntries resolves a leaf's append log: newest record per key wins,
// tombstones remove.
func (t *BzTree) liveEntries(ctx *sim.Ctx, leaf pmop.Ptr) []bzKV {
	p := t.p
	n := int(p.ReadU64(ctx, leaf, bzCount))
	seen := make(map[uint64]bool, n)
	var out []bzKV
	for i := n - 1; i >= 0; i-- {
		meta := p.ReadU64(ctx, leaf, bzMetaOff(i))
		if meta&bzMetaVisible == 0 {
			continue
		}
		k := p.ReadU64(ctx, leaf, bzKeyOff(i))
		if seen[k] {
			continue
		}
		seen[k] = true
		if meta&bzMetaTombstone == 0 {
			out = append(out, bzKV{k, p.ReadPtr(ctx, leaf, bzPtrOff(i))})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].key < out[b].key })
	return out
}

func (t *BzTree) collectLive(ctx *sim.Ctx, n pmop.Ptr) []bzKV {
	if n.IsNull() {
		return nil
	}
	p := t.p
	if p.ReadU64(ctx, n, bzLeafF) == 1 {
		return t.liveEntries(ctx, n)
	}
	var out []bzKV
	cnt := int(p.ReadU64(ctx, n, bzCount))
	for i := 0; i < cnt; i++ {
		out = append(out, t.collectLive(ctx, p.ReadPtr(ctx, n, bzPtrOff(i)))...)
	}
	return out
}

// Name implements Store.
func (t *BzTree) Name() string { return "BzTree" }

// Len implements Store.
func (t *BzTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// findLeafPath descends to the leaf for key, recording the internal path.
func (t *BzTree) findLeafPath(ctx *sim.Ctx, key uint64) (pmop.Ptr, []pmop.Ptr, []int) {
	p := t.p
	var path []pmop.Ptr
	var idxs []int
	n := p.ReadPtr(ctx, t.root, 0)
	for !n.IsNull() && p.ReadU64(ctx, n, bzLeafF) == 0 {
		cnt := int(p.ReadU64(ctx, n, bzCount))
		i := 0
		// Internal entries hold separator keys ascending; the last entry is
		// a catch-all with key MaxUint64.
		for i < cnt-1 && key > p.ReadU64(ctx, n, bzKeyOff(i)) {
			i++
		}
		path = append(path, n)
		idxs = append(idxs, i)
		n = p.ReadPtr(ctx, n, bzPtrOff(i))
	}
	return n, path, idxs
}

// newLeaf allocates a leaf populated with kvs (pre-sorted).
func (t *BzTree) newLeaf(ctx *sim.Ctx, tx *pmop.Tx, kvs []bzKV) (pmop.Ptr, error) {
	p := t.p
	n, err := p.Alloc(ctx, t.nodeT, 0)
	if err != nil {
		return pmop.Null, err
	}
	tx.AddObject(ctx, n)
	p.WriteU64(ctx, n, bzLeafF, 1)
	p.WriteU64(ctx, n, bzCount, uint64(len(kvs)))
	p.WriteU64(ctx, n, bzStatus, 0)
	for i, kv := range kvs {
		p.WriteU64(ctx, n, bzKeyOff(i), kv.key)
		p.WriteU64(ctx, n, bzMetaOff(i), bzMetaVisible)
		p.WritePtr(ctx, n, bzPtrOff(i), kv.val)
	}
	return n, nil
}

type bzEnt struct {
	key  uint64
	meta uint64
	ptr  pmop.Ptr
}

// writeInternal allocates a fresh internal node holding ents.
func (t *BzTree) writeInternal(ctx *sim.Ctx, tx *pmop.Tx, ents []bzEnt) (pmop.Ptr, error) {
	p := t.p
	nn, err := p.Alloc(ctx, t.nodeT, 0)
	if err != nil {
		return pmop.Null, err
	}
	tx.AddObject(ctx, nn)
	p.WriteU64(ctx, nn, bzLeafF, 0)
	p.WriteU64(ctx, nn, bzStatus, 0)
	p.WriteU64(ctx, nn, bzCount, uint64(len(ents)))
	for i, e := range ents {
		p.WriteU64(ctx, nn, bzKeyOff(i), e.key)
		p.WriteU64(ctx, nn, bzMetaOff(i), e.meta)
		p.WritePtr(ctx, nn, bzPtrOff(i), e.ptr)
	}
	return nn, nil
}

// rebuildPath rebuilds the copy-on-write internal path after the leaf at the
// end of path was replaced by repl (and optionally a new sibling with
// separator sepKey). Internal nodes that overflow are split, propagating
// upward, with a new root created if needed. Returns nodes to free after
// commit.
func (t *BzTree) rebuildPath(ctx *sim.Ctx, tx *pmop.Tx, path []pmop.Ptr, idxs []int,
	repl pmop.Ptr, sepKey uint64, sibling pmop.Ptr) ([]pmop.Ptr, error) {

	p := t.p
	var freed []pmop.Ptr
	child, childSep, childSib := repl, sepKey, sibling
	for level := len(path) - 1; level >= 0; level-- {
		old := path[level]
		cnt := int(p.ReadU64(ctx, old, bzCount))
		i := idxs[level]

		ents := make([]bzEnt, 0, cnt+1)
		for j := 0; j < cnt; j++ {
			oldKey := p.ReadU64(ctx, old, bzKeyOff(j))
			if j == i {
				if !childSib.IsNull() {
					ents = append(ents,
						bzEnt{childSep, bzMetaVisible, child},
						bzEnt{oldKey, bzMetaVisible, childSib})
				} else {
					ents = append(ents, bzEnt{oldKey, bzMetaVisible, child})
				}
			} else {
				ents = append(ents, bzEnt{oldKey, p.ReadU64(ctx, old, bzMetaOff(j)),
					p.ReadPtr(ctx, old, bzPtrOff(j))})
			}
		}
		freed = append(freed, p.Resolve(ctx, old))
		if len(ents) <= bzEntries {
			nn, err := t.writeInternal(ctx, tx, ents)
			if err != nil {
				return nil, err
			}
			child, childSib = nn, pmop.Null
			continue
		}
		// Internal split.
		mid := len(ents) / 2
		left, err := t.writeInternal(ctx, tx, ents[:mid])
		if err != nil {
			return nil, err
		}
		right, err := t.writeInternal(ctx, tx, ents[mid:])
		if err != nil {
			return nil, err
		}
		child, childSep, childSib = left, ents[mid-1].key, right
	}
	if !childSib.IsNull() {
		// Root split: the sibling's subtree keeps the old catch-all key.
		nr, err := t.writeInternal(ctx, tx, []bzEnt{
			{childSep, bzMetaVisible, child},
			{^uint64(0), bzMetaVisible, childSib},
		})
		if err != nil {
			return nil, err
		}
		child = nr
	}
	tx.AddPtr(ctx, t.root, 0)
	p.WritePtr(ctx, t.root, 0, child)
	return freed, nil
}

// Insert implements Store.
func (t *BzTree) Insert(ctx *sim.Ctx, key uint64, val []byte) error {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.Lock()
	defer t.mu.Unlock()

	p := t.p
	v, err := allocValue(ctx, p, val)
	if err != nil {
		return err
	}
	tx := p.Begin(ctx)
	leaf, path, idxs := t.findLeafPath(ctx, key)

	if leaf.IsNull() {
		nl, err := t.newLeaf(ctx, tx, []bzKV{{key, v}})
		if err != nil {
			tx.Abort(ctx)
			p.Free(ctx, v)
			return err
		}
		tx.AddPtr(ctx, t.root, 0)
		p.WritePtr(ctx, t.root, 0, nl)
		tx.Commit(ctx)
		t.count++
		return nil
	}

	cnt := int(p.ReadU64(ctx, leaf, bzCount))
	if cnt < bzEntries {
		// Append path: supersede any older live record for the key.
		replaced := t.supersede(ctx, tx, leaf, key, cnt)
		tx.AddRange(ctx, leaf, bzKeyOff(cnt), 24)
		p.WriteU64(ctx, leaf, bzKeyOff(cnt), key)
		p.WriteU64(ctx, leaf, bzMetaOff(cnt), bzMetaVisible)
		p.WritePtr(ctx, leaf, bzPtrOff(cnt), v)
		tx.AddRange(ctx, leaf, bzCount, 8)
		p.WriteU64(ctx, leaf, bzCount, uint64(cnt+1))
		// The status word churns on every PMwCAS-mediated append.
		tx.AddRange(ctx, leaf, bzStatus, 8)
		p.WriteU64(ctx, leaf, bzStatus, p.ReadU64(ctx, leaf, bzStatus)+1)
		tx.Commit(ctx)
		if !replaced {
			t.count++
		}
		return nil
	}

	// Full leaf: consolidate (and split if still large), copy-on-write up
	// the path.
	live := t.liveEntries(ctx, leaf)
	replaced := false
	merged := make([]bzKV, 0, len(live)+1)
	for _, kv := range live {
		if kv.key == key {
			replaced = true
			p.Free(ctx, kv.val)
			continue
		}
		merged = append(merged, kv)
	}
	merged = append(merged, bzKV{key, v})
	sort.Slice(merged, func(a, b int) bool { return merged[a].key < merged[b].key })

	var repl, sib pmop.Ptr
	var sep uint64
	if len(merged) > bzEntries/2 {
		mid := len(merged) / 2
		repl, err = t.newLeaf(ctx, tx, merged[:mid])
		if err == nil {
			sib, err = t.newLeaf(ctx, tx, merged[mid:])
			sep = merged[mid-1].key
		}
	} else {
		repl, err = t.newLeaf(ctx, tx, merged)
	}
	if err != nil {
		tx.Abort(ctx)
		p.Free(ctx, v)
		return err
	}

	var freed []pmop.Ptr
	if len(path) == 0 {
		if sib.IsNull() {
			tx.AddPtr(ctx, t.root, 0)
			p.WritePtr(ctx, t.root, 0, repl)
		} else {
			// New internal root over the two leaves.
			nr, err := p.Alloc(ctx, t.nodeT, 0)
			if err != nil {
				tx.Abort(ctx)
				return err
			}
			tx.AddObject(ctx, nr)
			p.WriteU64(ctx, nr, bzLeafF, 0)
			p.WriteU64(ctx, nr, bzCount, 2)
			p.WriteU64(ctx, nr, bzKeyOff(0), sep)
			p.WriteU64(ctx, nr, bzMetaOff(0), bzMetaVisible)
			p.WritePtr(ctx, nr, bzPtrOff(0), repl)
			p.WriteU64(ctx, nr, bzKeyOff(1), ^uint64(0))
			p.WriteU64(ctx, nr, bzMetaOff(1), bzMetaVisible)
			p.WritePtr(ctx, nr, bzPtrOff(1), sib)
			tx.AddPtr(ctx, t.root, 0)
			p.WritePtr(ctx, t.root, 0, nr)
		}
	} else {
		freed, err = t.rebuildPath(ctx, tx, path, idxs, repl, sep, sib)
		if err != nil {
			tx.Abort(ctx)
			return err
		}
	}
	tx.Commit(ctx)
	p.Free(ctx, leaf)
	for _, f := range freed {
		p.Free(ctx, f)
	}
	if !replaced {
		t.count++
	}
	return nil
}

// supersede tombstones the newest live record for key in leaf (entries
// [0,cnt)) and frees its value. Reports whether a record was superseded.
func (t *BzTree) supersede(ctx *sim.Ctx, tx *pmop.Tx, leaf pmop.Ptr, key uint64, cnt int) bool {
	p := t.p
	for i := cnt - 1; i >= 0; i-- {
		meta := p.ReadU64(ctx, leaf, bzMetaOff(i))
		if meta&bzMetaVisible == 0 || p.ReadU64(ctx, leaf, bzKeyOff(i)) != key {
			continue
		}
		if meta&bzMetaTombstone != 0 {
			return false
		}
		old := p.ReadPtr(ctx, leaf, bzPtrOff(i))
		tx.AddRange(ctx, leaf, bzMetaOff(i), 8)
		tx.AddRange(ctx, leaf, bzPtrOff(i), 8)
		p.WriteU64(ctx, leaf, bzMetaOff(i), meta|bzMetaTombstone)
		// Null the pointer: dead slots must not dangle once the value's
		// memory is reused (reachability reads every pointer offset).
		p.WritePtr(ctx, leaf, bzPtrOff(i), pmop.Null)
		if !old.IsNull() {
			p.Free(ctx, old)
		}
		return true
	}
	return false
}

// Delete implements Store: append a tombstone record.
func (t *BzTree) Delete(ctx *sim.Ctx, key uint64) (bool, error) {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.Lock()
	defer t.mu.Unlock()

	p := t.p
	leaf, _, _ := t.findLeafPath(ctx, key)
	if leaf.IsNull() {
		return false, nil
	}
	// Present?
	found := false
	for _, kv := range t.liveEntries(ctx, leaf) {
		if kv.key == key {
			found = true
			break
		}
	}
	if !found {
		return false, nil
	}
	tx := p.Begin(ctx)
	cnt := int(p.ReadU64(ctx, leaf, bzCount))
	if cnt < bzEntries {
		t.supersede(ctx, tx, leaf, key, cnt)
		tx.AddRange(ctx, leaf, bzKeyOff(cnt), 24)
		p.WriteU64(ctx, leaf, bzKeyOff(cnt), key)
		p.WriteU64(ctx, leaf, bzMetaOff(cnt), bzMetaVisible|bzMetaTombstone)
		p.WritePtr(ctx, leaf, bzPtrOff(cnt), pmop.Null)
		tx.AddRange(ctx, leaf, bzCount, 8)
		p.WriteU64(ctx, leaf, bzCount, uint64(cnt+1))
		tx.Commit(ctx)
	} else {
		// Full: consolidate without the key.
		live := t.liveEntries(ctx, leaf)
		kept := make([]bzKV, 0, len(live))
		for _, kv := range live {
			if kv.key == key {
				p.Free(ctx, kv.val)
				continue
			}
			kept = append(kept, kv)
		}
		repl, err := t.newLeaf(ctx, tx, kept)
		if err != nil {
			tx.Abort(ctx)
			return false, err
		}
		_, path, idxs := t.findLeafPath(ctx, key)
		var freed []pmop.Ptr
		if len(path) == 0 {
			tx.AddPtr(ctx, t.root, 0)
			p.WritePtr(ctx, t.root, 0, repl)
		} else {
			freed, err = t.rebuildPath(ctx, tx, path, idxs, repl, 0, pmop.Null)
			if err != nil {
				tx.Abort(ctx)
				return false, err
			}
		}
		tx.Commit(ctx)
		p.Free(ctx, leaf)
		for _, f := range freed {
			p.Free(ctx, f)
		}
	}
	t.count--
	return true, nil
}

// Get implements Store.
func (t *BzTree) Get(ctx *sim.Ctx, key uint64) ([]byte, bool) {
	t.p.StartOp()
	defer t.p.EndOp()
	t.mu.RLock()
	defer t.mu.RUnlock()

	p := t.p
	leaf, _, _ := t.findLeafPath(ctx, key)
	if leaf.IsNull() {
		return nil, false
	}
	n := int(p.ReadU64(ctx, leaf, bzCount))
	for i := n - 1; i >= 0; i-- {
		meta := p.ReadU64(ctx, leaf, bzMetaOff(i))
		if meta&bzMetaVisible == 0 || p.ReadU64(ctx, leaf, bzKeyOff(i)) != key {
			continue
		}
		if meta&bzMetaTombstone != 0 {
			return nil, false
		}
		return readValue(ctx, p, p.ReadPtr(ctx, leaf, bzPtrOff(i))), true
	}
	return nil, false
}
