package kv

import (
	"ffccd/internal/ds"
	"ffccd/internal/pmop"
)

// Fork implements ds.Forker: it clones the volatile segment cache and count
// onto a forked pool and registers a fresh remap hook, with no simulated
// memory operations (see the ds package's Forker doc).
func (e *Echo) Fork(p *pmop.Pool) ds.Store {
	ne := &Echo{
		p:    p,
		segs: append([]pmop.Ptr(nil), e.segs...),
		nb:   e.nb, entT: e.entT, valT: e.valT,
		n: e.n,
	}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		ne.mu.Lock()
		for i := range ne.segs {
			ne.segs[i] = remap(ne.segs[i])
		}
		ne.mu.Unlock()
	})
	return ne
}

// Fork implements ds.Forker.
func (k *PmemKV) Fork(p *pmop.Pool) ds.Store {
	nk := &PmemKV{inner: k.inner.Fork(p).(*Echo)}
	nk.n = k.n
	return nk
}
