package kv_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/kv"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

func newPool(t testing.TB) (*sim.Config, *pmop.Runtime, *pmop.Pool, *sim.Ctx) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.CacheBytes = 256 * 1024
	rt := pmop.NewRuntime(&cfg, 64<<20)
	reg := pmop.NewRegistry()
	kv.RegisterTypes(reg)
	p, err := rt.Create("kv", 32<<20, 12, reg)
	if err != nil {
		t.Fatal(err)
	}
	return &cfg, rt, p, sim.NewCtx(&cfg)
}

func stores(ctx *sim.Ctx, p *pmop.Pool, t *testing.T) []ds.Store {
	e, err := kv.NewEcho(ctx, p, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return []ds.Store{e}
}

func TestEchoBasics(t *testing.T) {
	_, _, p, ctx := newPool(t)
	e, err := kv.NewEcho(ctx, p, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if err := e.Insert(ctx, i, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if e.Len() != 500 {
		t.Fatalf("len = %d", e.Len())
	}
	for i := uint64(0); i < 500; i++ {
		v, ok := e.Get(ctx, i)
		if !ok || string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("get %d failed: %q %v", i, v, ok)
		}
	}
	// Overwrite + delete.
	e.Insert(ctx, 7, []byte("updated"))
	if v, _ := e.Get(ctx, 7); string(v) != "updated" {
		t.Fatal("overwrite failed")
	}
	if e.Len() != 500 {
		t.Fatalf("len after overwrite = %d", e.Len())
	}
	ok, _ := e.Delete(ctx, 7)
	if !ok {
		t.Fatal("delete failed")
	}
	if _, ok := e.Get(ctx, 7); ok {
		t.Fatal("deleted key readable")
	}
	if ok, _ := e.Delete(ctx, 7); ok {
		t.Fatal("double delete")
	}
}

func TestEchoCollisionChains(t *testing.T) {
	// Tiny bucket count forces chains; everything must still resolve.
	_, _, p, ctx := newPool(t)
	e, _ := kv.NewEcho(ctx, p, 4)
	for i := uint64(0); i < 100; i++ {
		e.Insert(ctx, i, []byte{byte(i)})
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := e.Get(ctx, i)
		if !ok || v[0] != byte(i) {
			t.Fatalf("chained get %d failed", i)
		}
	}
	// Delete from middles of chains.
	for i := uint64(0); i < 100; i += 3 {
		if ok, _ := e.Delete(ctx, i); !ok {
			t.Fatalf("chained delete %d failed", i)
		}
	}
	for i := uint64(0); i < 100; i++ {
		_, ok := e.Get(ctx, i)
		if want := i%3 != 0; ok != want {
			t.Fatalf("after delete get %d = %v", i, ok)
		}
	}
}

func TestEchoReopen(t *testing.T) {
	cfg, rt, p, ctx := newPool(t)
	e, _ := kv.NewEcho(ctx, p, 256)
	for i := uint64(0); i < 200; i++ {
		e.Insert(ctx, i, []byte{byte(i), byte(i >> 8)})
	}
	p.Device().FlushAll(ctx)
	rt2, err := pmop.Attach(cfg, rt.Device())
	if err != nil {
		t.Fatal(err)
	}
	reg := pmop.NewRegistry()
	kv.RegisterTypes(reg)
	p2, err := rt2.Open("kv", reg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Recover(ctx, p2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	e2, err := kv.NewEcho(ctx, p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Len() != 200 {
		t.Fatalf("reopened len = %d", e2.Len())
	}
	for i := uint64(0); i < 200; i++ {
		v, ok := e2.Get(ctx, i)
		if !ok || !bytes.Equal(v, []byte{byte(i), byte(i >> 8)}) {
			t.Fatalf("reopened get %d failed", i)
		}
	}
}

func TestEchoDefrag(t *testing.T) {
	_, _, p, ctx := newPool(t)
	e, _ := kv.NewEcho(ctx, p, 512)
	// Insert then delete most: hash-table array pins its frames (the paper's
	// point about Echo), but entry/value frames compact.
	for i := uint64(0); i < 2000; i++ {
		e.Insert(ctx, i, bytes.Repeat([]byte{byte(i)}, 128))
	}
	for i := uint64(0); i < 2000; i++ {
		if i%4 != 0 {
			e.Delete(ctx, i)
		}
	}
	before := p.Heap().Frag(12)
	opt := core.DefaultOptions()
	opt.TriggerRatio = 1.01
	opt.TargetRatio = 1.05
	eng := core.NewEngine(p, opt)
	defer eng.Close()
	eng.RunCycle(ctx)
	after := p.Heap().Frag(12)
	if after.FragRatio >= before.FragRatio {
		t.Errorf("fragR %.2f → %.2f", before.FragRatio, after.FragRatio)
	}
	for i := uint64(0); i < 2000; i += 4 {
		v, ok := e.Get(ctx, i)
		if !ok || len(v) != 128 || v[0] != byte(i) {
			t.Fatalf("post-defrag get %d failed", i)
		}
	}
}

func TestPmemKVConcurrent(t *testing.T) {
	cfg, _, p, ctx := newPool(t)
	k, err := kv.NewPmemKV(ctx, p, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sim.NewCtx(cfg)
			base := uint64(w) * 10000
			for i := uint64(0); i < 300; i++ {
				if err := k.Insert(c, base+i, []byte{byte(w), byte(i)}); err != nil {
					errCh <- err
					return
				}
			}
			for i := uint64(0); i < 300; i++ {
				v, ok := k.Get(c, base+i)
				if !ok || v[0] != byte(w) {
					errCh <- fmt.Errorf("worker %d key %d bad", w, i)
					return
				}
			}
			for i := uint64(0); i < 300; i += 2 {
				if ok, err := k.Delete(c, base+i); !ok || err != nil {
					errCh <- fmt.Errorf("worker %d delete %d: %v %v", w, i, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if k.Len() != 4*150 {
		t.Fatalf("len = %d, want 600", k.Len())
	}
}

func TestStoresInterface(t *testing.T) {
	_, _, p, ctx := newPool(t)
	for _, s := range stores(ctx, p, t) {
		if s.Name() == "" {
			t.Error("empty store name")
		}
	}
}

func TestPmemKVConcurrentWithDefragAndCrash(t *testing.T) {
	// Four writer threads over disjoint ranges while a defragmentation
	// epoch is open; crash; recover; verify all committed data.
	cfg, rt, p, ctx := newPool(t)
	k, err := kv.NewPmemKV(ctx, p, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3000; i++ {
		k.Insert(ctx, i, []byte{byte(i), 0x77})
	}
	for i := uint64(0); i < 3000; i += 2 {
		k.Delete(ctx, i)
	}
	p.Device().FlushAll(ctx)

	opt := core.DefaultOptions()
	opt.Scheme = core.SchemeFFCCD
	opt.TriggerRatio, opt.TargetRatio = 1.05, 1.02
	eng := core.NewEngine(p, opt)
	if !eng.BeginCycle(ctx) {
		t.Skip("not fragmented enough")
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sim.NewCtx(cfg)
			base := uint64(100000 + w*10000)
			for i := uint64(0); i < 80; i++ {
				k.Insert(c, base+i, []byte{byte(w), byte(i)})
			}
		}(w)
	}
	wg.Wait()
	eng.StepCompaction(ctx, 200)

	rt.Device().Crash()
	if eng.RBB() != nil {
		eng.RBB().PowerLossFlush()
	}
	rt2, err := pmop.Attach(cfg, rt.Device())
	if err != nil {
		t.Fatal(err)
	}
	reg := pmop.NewRegistry()
	kv.RegisterTypes(reg)
	p2, err := rt2.Open("kv", reg)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := core.Recover(ctx, p2, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	k2, err := kv.NewPmemKV(ctx, p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Old odd keys survive.
	for i := uint64(1); i < 3000; i += 2 {
		v, ok := k2.Get(ctx, i)
		if !ok || v[0] != byte(i) || v[1] != 0x77 {
			t.Fatalf("old key %d lost/corrupt", i)
		}
	}
	// Mid-epoch concurrent inserts survive (their txs committed).
	for w := 0; w < 4; w++ {
		base := uint64(100000 + w*10000)
		for i := uint64(0); i < 80; i++ {
			v, ok := k2.Get(ctx, base+i)
			if !ok || v[0] != byte(w) || v[1] != byte(i) {
				t.Fatalf("mid-epoch key %d lost/corrupt", base+i)
			}
		}
	}
}

func TestOverwriteSemantics(t *testing.T) {
	_, _, p, ctx := newPool(t)
	for _, s := range stores(ctx, p, t) {
		if err := s.Insert(ctx, 7, []byte("first")); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := s.Insert(ctx, 7, []byte("a-longer-second-value")); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		got, ok := s.Get(ctx, 7)
		if !ok || !bytes.Equal(got, []byte("a-longer-second-value")) {
			t.Errorf("%s: overwrite lost: %q", s.Name(), got)
		}
		if s.Len() != 1 {
			t.Errorf("%s: Len = %d after overwrite, want 1", s.Name(), s.Len())
		}
	}
}

func TestDeleteAbsentKey(t *testing.T) {
	_, _, p, ctx := newPool(t)
	for _, s := range stores(ctx, p, t) {
		found, err := s.Delete(ctx, 99999)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if found {
			t.Errorf("%s: deleting an absent key reported found", s.Name())
		}
		if _, ok := s.Get(ctx, 99999); ok {
			t.Errorf("%s: absent key readable", s.Name())
		}
	}
}

func TestLenTracksMixedOps(t *testing.T) {
	_, _, p, ctx := newPool(t)
	for _, s := range stores(ctx, p, t) {
		model := map[uint64]bool{}
		for i := 0; i < 300; i++ {
			k := uint64(i*i) % 97
			if i%3 == 2 {
				s.Delete(ctx, k)
				delete(model, k)
			} else {
				if err := s.Insert(ctx, k, []byte{byte(i)}); err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				model[k] = true
			}
		}
		if s.Len() != len(model) {
			t.Errorf("%s: Len = %d, model has %d", s.Name(), s.Len(), len(model))
		}
	}
}

func TestEchoZeroLengthValueRejected(t *testing.T) {
	// Values live in sized heap objects whose header carries the length, so
	// a zero-length value has no representation; stores must reject it with
	// an error rather than corrupt state or panic.
	_, _, p, ctx := newPool(t)
	e, err := kv.NewEcho(ctx, p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(ctx, 5, nil); err == nil {
		t.Fatal("empty value accepted")
	}
	if _, ok := e.Get(ctx, 5); ok {
		t.Error("failed insert left a readable entry")
	}
	if e.Len() != 0 {
		t.Errorf("failed insert changed Len to %d", e.Len())
	}
	// The store must remain fully usable afterwards.
	if err := e.Insert(ctx, 5, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got, ok := e.Get(ctx, 5); !ok || !bytes.Equal(got, []byte("x")) {
		t.Errorf("store unusable after rejected insert: %q %v", got, ok)
	}
}
