package kv

import (
	"sync"

	"ffccd/internal/ds"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// PmemKV models pmemkv's default concurrent engine (cmap): a persistent
// chained hash table with striped locks so independent buckets proceed in
// parallel. It shares the persistent layout machinery with Echo but differs
// in its concurrency discipline, which is what distinguishes the two
// applications in the paper's Figure 15.
type PmemKV struct {
	inner   *Echo
	stripes [64]sync.Mutex
	lenMu   sync.Mutex
	n       int
}

// NewPmemKV creates or reopens a pmemkv-style store with nb buckets.
func NewPmemKV(ctx *sim.Ctx, p *pmop.Pool, nb int) (*PmemKV, error) {
	inner, err := NewEcho(ctx, p, nb)
	if err != nil {
		return nil, err
	}
	k := &PmemKV{inner: inner}
	k.n = inner.Len()
	return k, nil
}

func (k *PmemKV) stripe(key uint64) *sync.Mutex {
	return &k.stripes[hashKey(key)%uint64(len(k.stripes))]
}

// Name implements ds.Store.
func (k *PmemKV) Name() string { return "pmemkv" }

// Len implements ds.Store.
func (k *PmemKV) Len() int {
	k.lenMu.Lock()
	defer k.lenMu.Unlock()
	return k.n
}

// Insert implements ds.Store.
func (k *PmemKV) Insert(ctx *sim.Ctx, key uint64, val []byte) error {
	k.inner.p.StartOp()
	defer k.inner.p.EndOp()
	m := k.stripe(key)
	m.Lock()
	defer m.Unlock()
	before := k.exists(ctx, key)
	if err := k.inner.insertUnlocked(ctx, key, val); err != nil {
		return err
	}
	if !before {
		k.lenMu.Lock()
		k.n++
		k.lenMu.Unlock()
	}
	return nil
}

// Delete implements ds.Store.
func (k *PmemKV) Delete(ctx *sim.Ctx, key uint64) (bool, error) {
	k.inner.p.StartOp()
	defer k.inner.p.EndOp()
	m := k.stripe(key)
	m.Lock()
	defer m.Unlock()
	ok, err := k.inner.deleteUnlocked(ctx, key)
	if ok {
		k.lenMu.Lock()
		k.n--
		k.lenMu.Unlock()
	}
	return ok, err
}

// Get implements ds.Store.
func (k *PmemKV) Get(ctx *sim.Ctx, key uint64) ([]byte, bool) {
	k.inner.p.StartOp()
	defer k.inner.p.EndOp()
	m := k.stripe(key)
	m.Lock()
	defer m.Unlock()
	return k.inner.getUnlocked(ctx, key)
}

func (k *PmemKV) exists(ctx *sim.Ctx, key uint64) bool {
	_, ok := k.inner.getUnlocked(ctx, key)
	return ok
}

var _ ds.Store = (*PmemKV)(nil)
