// Package kv implements the two key-value store applications of the paper's
// evaluation (§6): an Echo-style store (WHISPER) built on a persistent hash
// table with chained entries, and a pmemkv-style concurrent engine with
// striped bucket locks. Both follow the PMOP discipline (typed allocation,
// transactions, D_RW accessors) and implement ds.Store.
package kv

import (
	"sync"

	"ffccd/internal/ds"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

const (
	typeBuckets = "kv.buckets"
	typeEntry   = "kv.entry"
	typeValue   = "kv.value"
)

// Entry field offsets: key u64 @0, val Ptr @8, next Ptr @16.
const (
	enKey  = 0
	enVal  = 8
	enNext = 16
)

// bucketSegSlots is the number of bucket-head slots per segment (slot 0
// links segments).
const bucketSegSlots = 480

// RegisterTypes installs the kv types (idempotent).
func RegisterTypes(reg *pmop.Registry) {
	reg.Register(pmop.TypeInfo{Name: typeBuckets, Kind: pmop.KindPtrArray})
	reg.Register(pmop.TypeInfo{Name: typeEntry, Kind: pmop.KindFixed, Size: 24, PtrOffsets: []uint64{8, 16}})
	reg.Register(pmop.TypeInfo{Name: typeValue, Kind: pmop.KindBytes})
	// Compile for lock-free lookup; on a registry ds.RegisterTypes already
	// froze, the Registers above took the copy-on-write republish path.
	reg.Freeze()
}

// Echo is the Echo-style store: a fixed-size persistent hash table whose
// bucket array, as the paper notes (§7.3), "cannot be released until all
// keys are removed" — which is why Echo sees the smallest fragmentation
// reduction.
type Echo struct {
	p    *pmop.Pool
	mu   sync.Mutex
	segs []pmop.Ptr // bucket-array segments (volatile cache, remap-healed)
	nb   int        // bucket count
	entT pmop.TypeID
	valT pmop.TypeID
	n    int
}

// NewEcho creates or reopens an Echo store with nb buckets.
func NewEcho(ctx *sim.Ctx, p *pmop.Pool, nb int) (*Echo, error) {
	bT, _ := p.Types().LookupName(typeBuckets)
	eT, _ := p.Types().LookupName(typeEntry)
	vT, _ := p.Types().LookupName(typeValue)
	e := &Echo{p: p, nb: nb, entT: eT.ID, valT: vT.ID}
	p.RegisterRemapHook(func(remap func(pmop.Ptr) pmop.Ptr) {
		e.mu.Lock()
		for i := range e.segs {
			e.segs[i] = remap(e.segs[i])
		}
		e.mu.Unlock()
	})

	if r := p.Root(ctx); !r.IsNull() {
		e.nb = 0
		for seg := r; !seg.IsNull(); seg = p.ReadPtr(ctx, seg, 0) {
			e.segs = append(e.segs, seg)
			_, payload := p.Header(ctx, p.Resolve(ctx, seg))
			n := int(payload/8) - 1
			e.nb += n
			for i := 1; i <= n; i++ {
				for ent := p.ReadPtr(ctx, seg, uint64(i)*8); !ent.IsNull(); ent = p.ReadPtr(ctx, ent, enNext) {
					e.n++
				}
			}
		}
		return e, nil
	}

	var prev pmop.Ptr
	for remaining := nb; remaining > 0; remaining -= bucketSegSlots {
		n := remaining
		if n > bucketSegSlots {
			n = bucketSegSlots
		}
		seg, err := p.Alloc(ctx, bT.ID, uint64(n+1)*8)
		if err != nil {
			return nil, err
		}
		p.PersistRange(ctx, seg.Offset(), uint64(n+1)*8)
		if prev.IsNull() {
			p.SetRoot(ctx, seg)
		} else {
			p.WritePtr(ctx, prev, 0, seg)
			p.PersistRange(ctx, prev.Offset(), 8)
		}
		e.segs = append(e.segs, seg)
		prev = seg
	}
	return e, nil
}

func hashKey(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xFF51AFD7ED558CCD
	key ^= key >> 33
	return key
}

// bucket returns (segment, payload offset) of key's bucket head.
func (e *Echo) bucket(key uint64) (pmop.Ptr, uint64) {
	b := int(hashKey(key) % uint64(e.nb))
	return e.segs[b/bucketSegSlots], uint64(b%bucketSegSlots+1) * 8
}

// Name implements ds.Store.
func (e *Echo) Name() string { return "Echo" }

// Len implements ds.Store.
func (e *Echo) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// findEntry scans the chain for key; returns the entry and its predecessor
// (Null when the entry is the head).
func (e *Echo) findEntry(ctx *sim.Ctx, seg pmop.Ptr, off uint64, key uint64) (ent, prev pmop.Ptr) {
	p := e.p
	for ent = p.ReadPtr(ctx, seg, off); !ent.IsNull(); ent = p.ReadPtr(ctx, ent, enNext) {
		if p.ReadU64(ctx, ent, enKey) == key {
			return ent, prev
		}
		prev = ent
	}
	return pmop.Null, pmop.Null
}

// Insert implements ds.Store.
func (e *Echo) Insert(ctx *sim.Ctx, key uint64, val []byte) error {
	e.p.StartOp()
	defer e.p.EndOp()
	e.mu.Lock()
	defer e.mu.Unlock()
	existed := func() bool { _, ok := e.getUnlocked(ctx, key); return ok }()
	if err := e.insertUnlocked(ctx, key, val); err != nil {
		return err
	}
	if !existed {
		e.n++
	}
	return nil
}

// insertUnlocked is the synchronisation-free core (callers provide locking
// and world bracketing; it does not maintain the length counter).
func (e *Echo) insertUnlocked(ctx *sim.Ctx, key uint64, val []byte) error {
	p := e.p
	seg, off := e.bucket(key)
	v, err := p.Alloc(ctx, e.valT, uint64(len(val)))
	if err != nil {
		return err
	}
	p.WriteBytes(ctx, v, 0, val)
	p.PersistRange(ctx, v.Offset(), uint64(len(val)))

	if ent, _ := e.findEntry(ctx, seg, off, key); !ent.IsNull() {
		old := p.ReadPtr(ctx, ent, enVal)
		tx := p.Begin(ctx)
		tx.AddPtr(ctx, ent, enVal)
		p.WritePtr(ctx, ent, enVal, v)
		tx.Commit(ctx)
		if !old.IsNull() {
			p.Free(ctx, old)
		}
		return nil
	}
	ent, err := p.Alloc(ctx, e.entT, 0)
	if err != nil {
		p.Free(ctx, v)
		return err
	}
	tx := p.Begin(ctx)
	tx.AddObject(ctx, ent)
	tx.AddRange(ctx, seg, off, 8)
	p.WriteU64(ctx, ent, enKey, key)
	p.WritePtr(ctx, ent, enVal, v)
	p.WritePtr(ctx, ent, enNext, p.ReadPtr(ctx, seg, off))
	p.WritePtr(ctx, seg, off, ent)
	tx.Commit(ctx)
	return nil
}

// Delete implements ds.Store.
func (e *Echo) Delete(ctx *sim.Ctx, key uint64) (bool, error) {
	e.p.StartOp()
	defer e.p.EndOp()
	e.mu.Lock()
	defer e.mu.Unlock()
	ok, err := e.deleteUnlocked(ctx, key)
	if ok {
		e.n--
	}
	return ok, err
}

// deleteUnlocked is the synchronisation-free core.
func (e *Echo) deleteUnlocked(ctx *sim.Ctx, key uint64) (bool, error) {
	p := e.p
	seg, off := e.bucket(key)
	ent, prev := e.findEntry(ctx, seg, off, key)
	if ent.IsNull() {
		return false, nil
	}
	next := p.ReadPtr(ctx, ent, enNext)
	val := p.ReadPtr(ctx, ent, enVal)
	tx := p.Begin(ctx)
	if prev.IsNull() {
		tx.AddRange(ctx, seg, off, 8)
		p.WritePtr(ctx, seg, off, next)
	} else {
		tx.AddPtr(ctx, prev, enNext)
		p.WritePtr(ctx, prev, enNext, next)
	}
	tx.Commit(ctx)
	if !val.IsNull() {
		p.Free(ctx, val)
	}
	p.Free(ctx, ent)
	return true, nil
}

// Get implements ds.Store.
func (e *Echo) Get(ctx *sim.Ctx, key uint64) ([]byte, bool) {
	e.p.StartOp()
	defer e.p.EndOp()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.getUnlocked(ctx, key)
}

// getUnlocked is the synchronisation-free core.
func (e *Echo) getUnlocked(ctx *sim.Ctx, key uint64) ([]byte, bool) {
	p := e.p
	seg, off := e.bucket(key)
	ent, _ := e.findEntry(ctx, seg, off, key)
	if ent.IsNull() {
		return nil, false
	}
	v := p.ReadPtr(ctx, ent, enVal)
	if v.IsNull() {
		return nil, false
	}
	_, n := p.Header(ctx, p.Resolve(ctx, v))
	buf := make([]byte, n)
	p.ReadBytes(ctx, v, 0, buf)
	return buf, true
}

// GetParallel is Get without the store mutex: the synchronisation-free read
// path the serving layer dispatches in host-parallel batches. It is only
// safe when the caller guarantees no concurrent mutation of the touched
// bucket chain and no open defragmentation epoch (no read barrier, so the
// load sequence is side-effect free outside the device's cache sets).
func (e *Echo) GetParallel(ctx *sim.Ctx, key uint64) ([]byte, bool) {
	e.p.StartOp()
	defer e.p.EndOp()
	return e.getUnlocked(ctx, key)
}

// GetFootprint reports a superset of the pool-offset byte ranges Get(key)
// would load, by walking the bucket chain with non-perturbing peeks (no
// cycles, no cache effects). The serving layer maps the ranges to device
// cache sets to decide which in-flight operations commute. Must be called
// with no open defragmentation epoch (peeked pointers are not
// barrier-resolved).
func (e *Echo) GetFootprint(key uint64, visit func(off, n uint64)) {
	p := e.p
	seg, off := e.bucket(key)
	slot := seg.Offset() + off
	visit(slot, 8)
	for ent := pmop.Ptr(p.PeekU64(slot)); !ent.IsNull(); {
		entOff := ent.Offset()
		visit(entOff, enNext+8)
		if p.PeekU64(entOff+enKey) == key {
			v := pmop.Ptr(p.PeekU64(entOff + enVal))
			if !v.IsNull() {
				hdrOff := v.Offset() - pmop.HeaderSize
				visit(hdrOff, pmop.HeaderSize)
				n := p.PeekU64(hdrOff) >> 32 // header: type u32 | payload-len u32
				visit(v.Offset(), n)
			}
			return
		}
		ent = pmop.Ptr(p.PeekU64(entOff + enNext))
	}
}

var _ ds.Store = (*Echo)(nil)
