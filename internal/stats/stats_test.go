package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	if got := Percentile(xs, 50); got < 49 || got > 51 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 99); got < 98 || got > 100 {
		t.Errorf("p99 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		ps := []float64{10, 50, 90, 99}
		var vals []float64
		for _, p := range ps {
			vals = append(vals, Percentile(raw, p))
		}
		return sort.Float64sAreSorted(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Add("alpha", 3.14159)
	tb.Add("a-much-longer-name", 42)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.14") {
		t.Errorf("table output wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestMB(t *testing.T) {
	if MB(1<<20) != 1 {
		t.Error("MB conversion wrong")
	}
}
