// Package stats provides the small reporting toolkit the benchmark harness
// uses: percentiles, means, and aligned table rendering for regenerating the
// paper's tables and figure series.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0–100) using nearest-rank on a
// sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(p/100*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Table renders aligned rows for terminal output.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// MB formats bytes as mebibytes.
func MB(b float64) float64 { return b / (1 << 20) }
