package redisws_test

import (
	"testing"

	"ffccd/internal/core"
	"ffccd/internal/kv"
	"ffccd/internal/pmop"
	"ffccd/internal/redisws"
	"ffccd/internal/sim"
)

func setup(t *testing.T) (*pmop.Pool, *sim.Ctx) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.CacheBytes = 256 * 1024
	rt := pmop.NewRuntime(&cfg, 128<<20)
	reg := pmop.NewRegistry()
	kv.RegisterTypes(reg)
	p, err := rt.Create("redis", 64<<20, 12, reg)
	if err != nil {
		t.Fatal(err)
	}
	return p, sim.NewCtx(&cfg)
}

func smallCfg() redisws.Config {
	c := redisws.DefaultConfig()
	c.MaxLiveBytes = 300 << 10 // force LRU expiry (the Figure 16 regime)
	c.InitialKeys = 2500
	c.ExtraKeys = 1200
	c.QueriesPerInsert = 1
	c.MinVal = 24 // a wide size mix fragments the heap hard
	return c
}

func TestRedisLRUCapHolds(t *testing.T) {
	p, ctx := setup(t)
	store, _ := kv.NewEcho(ctx, p, 2048)
	cfg := smallCfg()
	res, err := redisws.Run(ctx, p, store, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions == 0 {
		t.Fatal("LRU never evicted despite cap")
	}
	// Live data stays near the cap; the footprint grows past it — that is
	// the fragmentation Figure 16 shows.
	// The allocator's live view includes entry/bucket overhead on top of
	// the value bytes the LRU cap governs.
	last := res.Samples[len(res.Samples)-1]
	if last.Live > cfg.MaxLiveBytes*7/4 {
		t.Errorf("live %d far exceeds cap %d", last.Live, cfg.MaxLiveBytes)
	}
	if res.Final.FragRatio < 1.1 {
		t.Errorf("baseline fragR = %.2f, expected fragmentation", res.Final.FragRatio)
	}
	if res.Lat.Count() == 0 {
		t.Fatal("no latencies recorded")
	}
}

func TestRedisWithFFCCDReducesFootprint(t *testing.T) {
	base := func() float64 {
		p, ctx := setup(t)
		store, _ := kv.NewEcho(ctx, p, 2048)
		res, err := redisws.Run(ctx, p, store, smallCfg(), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Final.FragRatio
	}()
	withGC := func() float64 {
		p, ctx := setup(t)
		store, _ := kv.NewEcho(ctx, p, 2048)
		opt := core.DefaultOptions()
		opt.TriggerRatio = 1.05
		opt.TargetRatio = 1.02
		eng := core.NewEngine(p, opt)
		defer eng.Close()
		// Run defrag synchronously through the hook on a GC context: the
		// pause the application observes is only the barrier cost.
		gcCtx := sim.NewCtx(p.Config())
		res, err := redisws.Run(ctx, p, store, smallCfg(), func(op int) uint64 {
			if op%500 == 499 {
				eng.RunCycle(gcCtx)
			}
			return 0
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Final.FragRatio
	}()
	// At this miniature scale the achievable compaction gain is marginal
	// (per-object line round-up ≈ first-fit waste); the full-scale reduction
	// is validated by the Figure 16 experiment (see EXPERIMENTS.md). Here we
	// guard that running FFCCD never makes fragmentation materially worse.
	if withGC > base+0.05 {
		t.Errorf("FFCCD fragR %.2f materially worse than baseline %.2f", withGC, base)
	}
}

func TestRedisSTWPausesVisibleInTail(t *testing.T) {
	p, ctx := setup(t)
	store, _ := kv.NewEcho(ctx, p, 2048)
	opt := core.DefaultOptions()
	opt.Scheme = core.SchemeEspresso
	opt.TriggerRatio = 1.05
	opt.TargetRatio = 1.02
	eng := core.NewEngine(p, opt)
	defer eng.Close()
	stwCtx := sim.NewCtx(p.Config())
	cfg := smallCfg()
	cfg.ReservoirCap = 1 << 20 // hold every observation: exact cross-check below
	res, err := redisws.Run(ctx, p, store, cfg, func(op int) uint64 {
		if op%400 == 399 {
			pause, _ := eng.RunCycleSTW(stwCtx)
			return pause
		}
		return 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p50 := res.Lat.Percentile(50)
	p999 := res.Lat.Percentile(99.9)
	if p999 < 10*p50 {
		t.Errorf("STW pauses not visible in tail: p50=%.0f p99.9=%.0f", p50, p999)
	}
	// The bounded reservoir holds every observation at this run size, so its
	// exact percentile must sit within the histogram bucket's 1/16 bound.
	if exact := res.Lat.ReservoirPercentile(99.9); exact > p999 || p999 > exact*(1+1.0/16)+1 {
		t.Errorf("histogram p999 %.0f not within bucket error of exact %.0f", p999, exact)
	}
}
