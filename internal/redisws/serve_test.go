package redisws_test

import (
	"reflect"
	"testing"

	"ffccd/internal/kv"
	"ffccd/internal/obsv"
	"ffccd/internal/redisws"
	"ffccd/internal/workpool"
)

func serveCfg() redisws.ServeConfig {
	cfg := redisws.DefaultServeConfig()
	cfg.Clients = 8
	cfg.Ops = 4000
	cfg.Keyspace = 800
	cfg.MaxLiveBytes = 800 * 150 // force LRU churn
	cfg.MinVal, cfg.MaxVal = 240, 366
	cfg.MinVal2, cfg.MaxVal2 = 367, 492
	cfg.MaintEvery = 200
	cfg.Seed = 7
	return cfg
}

// serveSummary flattens every deterministic outcome of a run into one
// comparable value: counters, cycle sums, and full histogram snapshots.
type serveSummary struct {
	Ops, Gets, Sets, Hits, Misses, Evictions int
	Parallel, Serial, Batches                int
	App, Interf, Stall, Queue                uint64
	SimCycles, Makespan                      uint64
	Rate                                     float64
	LatCount                                 uint64
	LatP50, LatP99, LatP999                  float64
	ExactP999                                float64
	Hists                                    [4]obsv.HistSnapshot
}

func summarize(res redisws.ServeResult) serveSummary {
	return serveSummary{
		Ops: res.Ops, Gets: res.Gets, Sets: res.Sets,
		Hits: res.Hits, Misses: res.Misses, Evictions: res.Evictions,
		Parallel: res.ParallelOps, Serial: res.SerialOps, Batches: res.Batches,
		App: res.AppCycles, Interf: res.InterfCycles,
		Stall: res.StallWaitCycles, Queue: res.QueueWaitCycles,
		SimCycles: res.SimCycles, Makespan: res.Makespan,
		Rate:     res.RateUsed,
		LatCount: res.Lat.Count(),
		LatP50:   res.Lat.Percentile(50),
		LatP99:   res.Lat.Percentile(99),
		LatP999:  res.Lat.Percentile(99.9),
		// The reservoir is sampled from its own counter stream, so even the
		// sampled exact percentile must reproduce bit-for-bit.
		ExactP999: res.Lat.ReservoirPercentile(99.9),
		Hists: [4]obsv.HistSnapshot{
			res.AppHist.Snapshot(""), res.InterfHist.Snapshot(""),
			res.StallHist.Snapshot(""), res.QueueHist.Snapshot(""),
		},
	}
}

func runServe(t *testing.T, cfg redisws.ServeConfig, hooks redisws.ServeHooks) redisws.ServeResult {
	t.Helper()
	p, ctx := setup(t)
	store, _ := kv.NewEcho(ctx, p, 1024)
	res, err := redisws.Serve(ctx, p, store, cfg, hooks)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServeDeterministicAcrossHostParallelism is the soundness pin for
// host-parallel batched dispatch: the simulated outcome — every counter,
// cycle sum, and latency histogram — must be bit-identical whether batches
// run on one host thread or several.
func TestServeDeterministicAcrossHostParallelism(t *testing.T) {
	old := workpool.Parallelism()
	defer workpool.SetParallelism(old)

	run := func(par int) serveSummary {
		workpool.SetParallelism(par)
		return summarize(runServe(t, serveCfg(), redisws.ServeHooks{}))
	}
	serial := run(1)
	parallel := run(4)

	if serial.Parallel == 0 {
		t.Fatal("no ops took the batched path; the pin is vacuous")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("simulated outcome differs across host parallelism:\n  1 thread : %+v\n  4 threads: %+v", serial, parallel)
	}
}

// TestServeShape sanity-checks the dispatch split and latency ordering of a
// plain (no defrag) serving run.
func TestServeShape(t *testing.T) {
	res := runServe(t, serveCfg(), redisws.ServeHooks{})
	if res.Ops != 4000 || res.Gets+res.Sets != res.Ops || res.Hits+res.Misses != res.Gets {
		t.Fatalf("op accounting broken: %+v", res)
	}
	if res.ParallelOps == 0 || res.SerialOps == 0 {
		t.Fatalf("expected both batched GETs and serial SETs: par=%d ser=%d", res.ParallelOps, res.SerialOps)
	}
	if res.ParallelOps+res.SerialOps != res.Ops {
		t.Fatalf("dispatch split %d+%d != %d ops", res.ParallelOps, res.SerialOps, res.Ops)
	}
	if res.Evictions == 0 {
		t.Fatal("LRU cap never evicted")
	}
	p50, p99, p999 := res.Lat.Percentile(50), res.Lat.Percentile(99), res.Lat.Percentile(99.9)
	if !(p50 <= p99 && p99 <= p999 && p999 <= res.Lat.Max()) {
		t.Errorf("percentiles not monotone: %v %v %v max %v", p50, p99, p999, res.Lat.Max())
	}
	if res.AppCycles == 0 {
		t.Error("no app cycles recorded")
	}
	if res.StallWaitCycles != 0 {
		t.Errorf("stall cycles %d without any defrag hook", res.StallWaitCycles)
	}
	if res.RateUsed <= 0 {
		t.Errorf("auto-calibrated rate %v", res.RateUsed)
	}
}

// TestServeStallSurfacesInTail injects one large STW pause late in the run
// (so only the last dispatch window is affected); open-loop arrivals must
// pile up behind it, pushing the tail — but not the median — out by at
// least the pause length.
func TestServeStallSurfacesInTail(t *testing.T) {
	const pause = 40_000_000
	calls, fired := 0, false
	hooks := redisws.ServeHooks{Maintenance: func(uint64) uint64 {
		calls++
		if calls == 18 { // dispatched ≈ 3600 of 4000: ~10% of ops stall
			fired = true
			return pause
		}
		return 0
	}}
	res := runServe(t, serveCfg(), hooks)
	if !fired {
		t.Fatalf("maintenance hook ran %d times, pause never fired", calls)
	}
	if res.StallWaitCycles == 0 {
		t.Fatal("pause did not stall any op")
	}
	p50, p999 := res.Lat.Percentile(50), res.Lat.Percentile(99.9)
	if p999 < pause {
		t.Errorf("p999 %.0f below the %d-cycle pause", p999, pause)
	}
	if p50 >= pause {
		t.Errorf("p50 %.0f swallowed the pause; it should only surface in the tail", p50)
	}
}

// TestServeEpochForcesSerial: while a defrag epoch reports open, batched
// dispatch must be disabled (reads go through the barrier, so the
// peek-predicted parallel path is unsound there).
func TestServeEpochForcesSerial(t *testing.T) {
	cfg := serveCfg()
	cfg.Ops = 1000
	hooks := redisws.ServeHooks{EpochOpen: func() bool { return true }}
	res := runServe(t, cfg, hooks)
	if res.ParallelOps != 0 {
		t.Errorf("%d ops batched while an epoch was open", res.ParallelOps)
	}
	if res.SerialOps != res.Ops {
		t.Errorf("serial %d != ops %d", res.SerialOps, res.Ops)
	}
}
