package redisws

import (
	"fmt"

	"ffccd/internal/ds"
	"ffccd/internal/obsv"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
	"ffccd/internal/workpool"
)

// Sharded serving: the keyspace is partitioned by key-hash across N fully
// independent simulated machines. Each shard has its own pmem.Device,
// alloc.Heap, sim.Ctx clock domain, scheme engine, and counter-RNG stream —
// a SET, conflict, or open defrag epoch on shard A never serializes shard B.
// Whole shards run as workpool jobs, so serving throughput scales with host
// cores instead of one device's lock domain.
//
// Determinism. Every shard is a pure function of its own config and seed
// (redisws.Serve's existing guarantee), and the merge folds per-shard results
// in shard-index order with order-insensitive (histogram sums) or
// explicitly-ordered (exemplar sort keyed latency/arrival/key/shard)
// operations — so the merged summary, histogram snapshots, time-series
// windows, and exemplars are bit-identical at any host thread count and any
// FFCCD_PARALLEL (pinned by TestServeShardedDeterministicAcrossHostParallelism).

// shardSeedMix spreads per-shard seeds across the counter-RNG space
// (golden-ratio multiplier); shard 0 keeps the base seed so a one-shard
// deployment draws the exact unsharded stream.
const shardSeedMix = 0x9E3779B97F4A7C15

// shardOfKey routes key k to one of shards machines with a 64-bit
// finalizer-mixed hash (splitmix64/murmur3 finalizer), so consecutive keys
// spread instead of striping.
func shardOfKey(k uint64, shards int) int {
	h := k
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(shards))
}

// OwnedKeys lists, ascending, the keys of [0, keyspace) that hash to shard
// (of shards). The union over all shards is an exact partition of the
// keyspace.
func OwnedKeys(keyspace uint64, shard, shards int) []uint64 {
	if shards <= 1 {
		out := make([]uint64, keyspace)
		for k := range out {
			out[k] = uint64(k)
		}
		return out
	}
	out := make([]uint64, 0, keyspace/uint64(shards)+1)
	for k := uint64(0); k < keyspace; k++ {
		if shardOfKey(k, shards) == shard {
			out = append(out, k)
		}
	}
	return out
}

// Shard is one independent simulated machine of a sharded deployment. Ctx is
// its loader context; all four fields live in the shard's private clock
// domain and must not be shared between shards.
type Shard struct {
	Ctx   *sim.Ctx
	Pool  *pmop.Pool
	Store ds.Store
	Hooks ServeHooks
}

// ShardedResult is a completed sharded serving run: the deterministic merge
// plus the per-shard rows it was folded from.
type ShardedResult struct {
	Merged  ServeResult
	Shards  []ServeResult
	Configs []ServeConfig
}

// ShardConfigs derives the per-shard configs of an n-shard deployment from
// the deployment-wide config: clients, op counts, LRU budget, maintenance
// cadence, and offered load are split across shards; seeds decorrelate via
// shardSeedMix (shard 0 keeps cfg.Seed). n <= 1 returns cfg verbatim — the
// unsharded dispatcher is the one-shard special case, not a separate path.
func ShardConfigs(cfg ServeConfig, n int) []ServeConfig {
	if n <= 1 {
		return []ServeConfig{cfg}
	}
	share := func(total, i int) int {
		s := total / n
		if i < total%n {
			s++
		}
		if s < 1 {
			s = 1
		}
		return s
	}
	maint := cfg.MaintEvery
	if maint <= 0 {
		maint = cfg.Keyspace / 4
	}
	out := make([]ServeConfig, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.ShardIndex, c.ShardCount = i, n
		c.Clients = share(cfg.Clients, i)
		c.Ops = share(cfg.Ops, i)
		c.MaxLiveBytes = cfg.MaxLiveBytes / uint64(n)
		c.MaintEvery = maint / n
		if c.MaintEvery < 1 {
			c.MaintEvery = 1
		}
		if cfg.RatePerSec > 0 {
			c.RatePerSec = cfg.RatePerSec / float64(n)
		}
		if cfg.WarmupOps > 0 {
			c.WarmupOps = share(cfg.WarmupOps, i)
		}
		c.Seed = cfg.Seed ^ int64(uint64(i)*shardSeedMix)
		out[i] = c
	}
	return out
}

// ServeSharded runs one serving config per shard machine (len(shards) must
// equal len(cfgs); use ShardConfigs to derive cfgs) and merges the results.
// Shards execute as workpool jobs — host-parallel when the pool has helpers,
// strictly in shard order when it does not — and the merge is identical
// either way.
func ServeSharded(shards []Shard, cfgs []ServeConfig) (ShardedResult, error) {
	if len(shards) == 0 || len(shards) != len(cfgs) {
		return ShardedResult{}, fmt.Errorf("redisws.ServeSharded: %d shards vs %d configs", len(shards), len(cfgs))
	}
	out := ShardedResult{
		Shards:  make([]ServeResult, len(shards)),
		Configs: cfgs,
	}
	err := workpool.ForEach(len(shards), func(i int) error {
		r, err := Serve(shards[i].Ctx, shards[i].Pool, shards[i].Store, cfgs[i], shards[i].Hooks)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		out.Shards[i] = r
		return nil
	})
	if err != nil {
		return out, err
	}
	out.Merged = MergeServeResults(out.Shards)
	return out, nil
}

// MergeServeResults folds per-shard results, in shard-index order, into one
// deployment-wide result: counters and cycle sums add, histograms merge
// exactly (obsv.Histogram.Merge), latency reservoirs merge deterministically
// (LatencyRecorder.Merge), makespan is the slowest shard's, offered load
// sums, and crash fields surface the crashed shard's outage. One input is
// returned as-is, so a one-shard deployment is bit-identical to the
// unsharded run it wraps.
func MergeServeResults(rs []ServeResult) ServeResult {
	if len(rs) == 0 {
		return ServeResult{}
	}
	if len(rs) == 1 {
		return rs[0]
	}
	m := ServeResult{
		Lat:        NewLatencyRecorder(rs[0].Lat.Cap(), 0),
		AppHist:    &obsv.Histogram{},
		InterfHist: &obsv.Histogram{},
		StallHist:  &obsv.Histogram{},
		QueueHist:  &obsv.Histogram{},
	}
	for i := range rs {
		r := &rs[i]
		m.Ops += r.Ops
		m.Gets += r.Gets
		m.Sets += r.Sets
		m.Hits += r.Hits
		m.Misses += r.Misses
		m.Evictions += r.Evictions
		m.Lat.Merge(r.Lat)
		m.AppHist.Merge(r.AppHist)
		m.InterfHist.Merge(r.InterfHist)
		m.StallHist.Merge(r.StallHist)
		m.QueueHist.Merge(r.QueueHist)
		m.AppCycles += r.AppCycles
		m.InterfCycles += r.InterfCycles
		m.StallWaitCycles += r.StallWaitCycles
		m.QueueWaitCycles += r.QueueWaitCycles
		m.RateUsed += r.RateUsed
		if r.Makespan > m.Makespan {
			m.Makespan = r.Makespan
		}
		m.SimCycles += r.SimCycles
		m.ParallelOps += r.ParallelOps
		m.SerialOps += r.SerialOps
		m.Batches += r.Batches
		m.Crashes += r.Crashes
		if r.Crashes > 0 && r.CrashCycle >= m.CrashCycle {
			m.CrashCycle = r.CrashCycle
			m.ResumeCycle = r.ResumeCycle
			m.TimeToFirstAck = r.TimeToFirstAck
		}
		m.BlackoutCycles += r.BlackoutCycles
		m.Retries += r.Retries
		m.Rejects += r.Rejects
		m.Admitted += r.Admitted
		m.Final.FootprintBytes += r.Final.FootprintBytes
		m.Final.LiveBytes += r.Final.LiveBytes
		m.Final.UsedFrames += r.Final.UsedFrames
	}
	if m.Final.FootprintBytes > 0 {
		m.Final.FragRatio = float64(m.Final.FootprintBytes) / float64(m.Final.LiveBytes)
	}
	return m
}

// MergeShardSeries folds per-shard time series into one deployment-wide
// series (see obsv.TimeSeries.Merge); fold order is shard index, and the
// exemplar order is fully keyed (latency, arrival, key, shard), so the
// merged series is independent of host scheduling.
func MergeShardSeries(scheme string, windowCycles uint64, k int, shardSeries []*obsv.TimeSeries) (*obsv.TimeSeries, error) {
	merged := obsv.NewTimeSeries(scheme, windowCycles, k)
	for i, ts := range shardSeries {
		if ts == nil {
			continue
		}
		if err := merged.Merge(ts); err != nil {
			return nil, fmt.Errorf("shard %d series: %w", i, err)
		}
	}
	return merged, nil
}
