// Package redisws drives the paper's Redis case study (§7.4): a Redis-style
// LRU cache over a persistent hash store, capped at a fixed live-data size.
// It generates random keys with 240–492-byte values, expires least-recently
// used entries once the cap is reached, interleaves queries, and records the
// memory-footprint-over-time series and per-operation latencies behind
// Figure 16 and the tail-latency comparison.
//
// Defragmentation is injected through the Hook: the harness runs concurrent
// (FFCCD), stop-the-world (jemalloc-style) or Mesh cycles there, and any
// returned stall cycles are charged to the in-flight operation's latency —
// which is how STW pauses surface as tail latency.
package redisws

import (
	"container/list"

	"ffccd/internal/alloc"
	"ffccd/internal/ds"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
	"ffccd/internal/workload"
)

// Config matches the paper's setup, scaled (200 MB cap → default 8 MB,
// 1M initial + 500k extra keys → 20k + 10k).
type Config struct {
	MaxLiveBytes     uint64
	InitialKeys      int
	ExtraKeys        int
	QueriesPerInsert int
	MinVal, MaxVal   int
	// MinVal2/MaxVal2, when nonzero, change the value-size distribution for
	// the post-initial insert phase — the size-class drift that makes
	// long-running caches fragment (holes from the old distribution cannot
	// host values from the new one).
	MinVal2, MaxVal2 int
	Seed             int64
	SampleEvery      int
	// ReservoirCap bounds the exact-latency reservoir sample (<=0 selects
	// DefaultReservoirCap); the histogram always records every operation.
	ReservoirCap int
}

// DefaultConfig returns the scaled §7.4 parameters.
func DefaultConfig() Config {
	return Config{
		MaxLiveBytes:     8 << 20,
		InitialKeys:      20000,
		ExtraKeys:        10000,
		QueriesPerInsert: 2,
		MinVal:           240,
		MaxVal:           492,
		Seed:             99,
		SampleEvery:      200,
	}
}

// Sample is one point of the footprint-over-time series.
type Sample struct {
	Op        int
	Footprint uint64
	Live      uint64
}

// Result is a completed run. Per-operation latencies stream into Lat (a
// log-linear histogram plus a bounded reservoir) instead of an unbounded
// slice, so million-op serving runs stay constant-memory.
type Result struct {
	Samples   []Sample
	Lat       *LatencyRecorder // simulated cycles per operation
	Final     alloc.FragStats
	Evictions int
}

// Hook is called before every operation with the operation index; it returns
// extra stall cycles to charge to that operation's latency (e.g. an STW
// pause that the operation had to wait out).
type Hook func(op int) uint64

// FootprintFn lets a comparator report its own footprint (Mesh reports
// physical frames); nil uses the allocator's view.
type FootprintFn func() alloc.FragStats

// Run executes the case study against store s (an Echo-style hash store in
// the paper's configuration).
func Run(ctx *sim.Ctx, p *pmop.Pool, s ds.Store, cfg Config, hook Hook, foot FootprintFn) (Result, error) {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 200
	}
	if foot == nil {
		foot = func() alloc.FragStats { return p.Heap().Frag(p.PageShift()) }
	}
	// The counter-based RNG makes the run checkpoint/forkable in O(1) like
	// every other workload (the stream position is the draw counter).
	rng := workload.NewRNG(cfg.Seed)

	// Volatile LRU bookkeeping (Redis keeps this in DRAM too).
	lru := list.New() // front = most recent
	elems := make(map[uint64]*list.Element)
	liveBytes := uint64(0)

	res := Result{Lat: NewLatencyRecorder(cfg.ReservoirCap, cfg.Seed^0x5ca1ab1e)}
	op := 0

	record := func(stall, start uint64) {
		res.Lat.Observe(stall + ctx.Clock.Total() - start)
		if op%cfg.SampleEvery == 0 {
			st := foot()
			res.Samples = append(res.Samples, Sample{Op: op, Footprint: st.FootprintBytes, Live: st.LiveBytes})
		}
		op++
	}

	lo, hi := cfg.MinVal, cfg.MaxVal
	valueOf := func(k uint64) []byte {
		n := lo + rng.Intn(hi-lo+1)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(k) + byte(i)
		}
		return b
	}

	evict := func() error {
		for liveBytes > cfg.MaxLiveBytes && lru.Len() > 0 {
			back := lru.Back()
			k := back.Value.(lruEnt).key
			sz := back.Value.(lruEnt).size
			// Redis stores the expired pair to disk; for the footprint study
			// the PM side simply frees it.
			if _, err := s.Delete(ctx, k); err != nil {
				return err
			}
			lru.Remove(back)
			delete(elems, k)
			liveBytes -= sz
			res.Evictions++
		}
		return nil
	}

	insert := func(k uint64) error {
		stall := uint64(0)
		if hook != nil {
			stall = hook(op)
		}
		start := ctx.Clock.Total()
		v := valueOf(k)
		if err := s.Insert(ctx, k, v); err != nil {
			return err
		}
		if e, ok := elems[k]; ok {
			liveBytes -= e.Value.(lruEnt).size
			lru.Remove(e)
		}
		elems[k] = lru.PushFront(lruEnt{k, uint64(len(v))})
		liveBytes += uint64(len(v))
		if err := evict(); err != nil {
			return err
		}
		record(stall, start)
		return nil
	}
	query := func(k uint64) {
		stall := uint64(0)
		if hook != nil {
			stall = hook(op)
		}
		start := ctx.Clock.Total()
		if _, ok := s.Get(ctx, k); ok {
			if e, found := elems[k]; found {
				lru.MoveToFront(e)
			}
		}
		record(stall, start)
	}

	keyspace := uint64(cfg.InitialKeys)
	for i := 0; i < cfg.InitialKeys; i++ {
		if err := insert(rng.Uint64() % keyspace); err != nil {
			return res, err
		}
		for q := 0; q < cfg.QueriesPerInsert; q++ {
			query(rng.Uint64() % keyspace)
		}
	}
	keyspace += uint64(cfg.ExtraKeys)
	if cfg.MinVal2 > 0 && cfg.MaxVal2 >= cfg.MinVal2 {
		lo, hi = cfg.MinVal2, cfg.MaxVal2
	}
	for i := 0; i < cfg.ExtraKeys; i++ {
		if err := insert(rng.Uint64() % keyspace); err != nil {
			return res, err
		}
		for q := 0; q < cfg.QueriesPerInsert; q++ {
			query(rng.Uint64() % keyspace)
		}
	}
	res.Final = foot()
	return res, nil
}

type lruEnt struct {
	key  uint64
	size uint64
}
