package redisws_test

import (
	"reflect"
	"testing"

	"ffccd/internal/obsv"
	"ffccd/internal/redisws"
)

// stallHooks injects one large STW pause mid-run (the TestServeStallSurfacesInTail
// shape), so windowed runs have a real stall chain to attribute.
func stallHooks(pause uint64) redisws.ServeHooks {
	calls := 0
	return redisws.ServeHooks{Maintenance: func(uint64) uint64 {
		calls++
		if calls == 10 {
			return pause
		}
		return 0
	}}
}

// TestServeWindowsDoNotPerturb is the serving-path bit-identity pin for the
// time-series layer: enabling windows (per-op samples, exemplars, overlay
// intervals, the device drain probe) must reproduce every simulated outcome —
// counters, cycle sums, full histogram snapshots, sim cycle total — exactly,
// while actually capturing windows, exemplars, and the injected STW pause.
func TestServeWindowsDoNotPerturb(t *testing.T) {
	const pause = 40_000_000
	plain := summarize(runServe(t, serveCfg(), stallHooks(pause)))

	series := obsv.NewTimeSeries("stw", 4_000_000, 3)
	hooks := stallHooks(pause)
	hooks.Series = series
	hooks.EpochInfo = func() (uint64, bool) { return 0, false }
	windowed := summarize(runServe(t, serveCfg(), hooks))

	if !reflect.DeepEqual(plain, windowed) {
		t.Errorf("windows perturbed the simulated outcome:\n  off: %+v\n  on : %+v", plain, windowed)
	}

	// The identical run must still have observed everything.
	if got, want := series.Count(), uint64(plain.Ops); got != want {
		t.Fatalf("series observed %d ops, run completed %d", got, want)
	}
	wins := series.Windows()
	if len(wins) < 2 {
		t.Fatalf("only %d windows; widen the run or shrink the window", len(wins))
	}
	var total uint64
	sawExemplar, sawSTWFlag := false, false
	for _, w := range wins {
		total += w.Count
		if w.Start != w.Index*series.WindowCycles() || w.End != w.Start+series.WindowCycles() {
			t.Fatalf("window %d bounds [%d,%d) inconsistent with width %d", w.Index, w.Start, w.End, series.WindowCycles())
		}
		if len(w.Exemplars) > 0 {
			sawExemplar = true
			if w.Exemplars[0].Latency < w.Exemplars[len(w.Exemplars)-1].Latency {
				t.Fatalf("window %d exemplars not worst-first", w.Index)
			}
		}
		if w.STWOverlap {
			sawSTWFlag = true
		}
	}
	if total != series.Count() {
		t.Fatalf("window counts sum %d != observed %d", total, series.Count())
	}
	if !sawExemplar {
		t.Fatal("no window captured an exemplar")
	}
	if !sawSTWFlag {
		t.Fatal("no window flagged the injected STW pause")
	}

	// Every exemplar that claims an STW chain must reference the End of a
	// pause interval the overlay log independently recorded.
	ends := map[uint64]bool{}
	for _, iv := range series.Intervals() {
		if iv.Kind == obsv.IntervalSTW {
			if iv.End <= iv.Start {
				t.Fatalf("degenerate stw interval %+v", iv)
			}
			ends[iv.End] = true
		}
	}
	if len(ends) == 0 {
		t.Fatal("injected pause recorded no IntervalSTW overlay")
	}
	refs := 0
	for _, w := range wins {
		for _, ex := range w.Exemplars {
			if ref := ex.Cause.STWRef; ref != 0 {
				refs++
				if !ends[ref] {
					t.Fatalf("exemplar stw_ref %d matches no recorded IntervalSTW end %v", ref, ends)
				}
			}
		}
	}
	if refs == 0 {
		t.Fatal("no exemplar chained back to the STW pause")
	}
}
