package redisws

import (
	"container/list"
	"errors"
	"sort"

	"ffccd/internal/alloc"
	"ffccd/internal/ds"
	"ffccd/internal/obsv"
	"ffccd/internal/pmem"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
	"ffccd/internal/workload"
	"ffccd/internal/workpool"
)

// This file is the serving layer: many simulated client connections against
// one machine, under a deterministic virtual-time scheduler.
//
// Model. Each client is one connection thread with its own sim.Ctx (private
// clock + TLB). Operations arrive open-loop: a Poisson process per client
// (aggregate rate Config.RatePerSec), independent of completions, so an
// overloaded machine builds queueing delay instead of silently slowing the
// offered load — the regime in which STW pauses surface as p999. "Millions
// of users" are represented by the aggregate arrival process; the client
// count is the number of server-side connection contexts, not the user
// population (a Ctx carries a private TLB, so a million Ctxs would model a
// million hardware threads, which is not the machine the paper runs).
//
// Scheduling. The dispatcher always serves the client with the lowest
// virtual start time s = max(arrival, readyAt, stallUntil), ties by client
// id. All randomness (op type, Zipfian key, value size, next interarrival)
// is drawn from one counter-based stream in dispatch order, so the whole
// run is a pure function of the seed.
//
// Host parallelism. Consecutive dispatches that are read-only, touch
// pairwise-disjoint device cache sets (predicted with non-perturbing
// peeks), and run while no defragmentation epoch is open are executed as
// one batch on the shared worker pool. Every side effect of such a GET is
// confined to its own cache sets (fills, LRU aging, eviction write-backs)
// or commutes (sharded stat counters), and its cycle charges land on the
// client's private clock — so the simulated outcome is bit-identical to
// serial execution regardless of host thread count or interleaving.
// Anything else — SETs, conflicting GETs, epochs in flight — falls back to
// serial dispatch in virtual-time order.

// ServeConfig parameterizes one serving run.
type ServeConfig struct {
	Clients  int // simulated connection threads
	Ops      int // dispatched operations (after prepopulation)
	Keyspace int // distinct keys; prepopulated 0..Keyspace-1

	// RatePerSec is the aggregate offered load in simulated ops/sec.
	// <= 0 auto-calibrates to TargetUtil of the measured service rate.
	RatePerSec float64
	TargetUtil float64 // calibration target utilization (default 0.6)

	ZipfTheta   float64 // key-popularity skew (default 0.99)
	GetFraction float64 // fraction of GETs (default 0.9)

	MaxLiveBytes     uint64 // LRU cap; 0 disables eviction
	MinVal, MaxVal   int    // value sizes (default 240..492)
	MinVal2, MaxVal2 int    // post-drift sizes, switched at Ops/2 when set

	Seed         int64
	MaxBatch     int // parallel batch size limit (default 64)
	MaintEvery   int // ops between maintenance-hook calls (default Keyspace/4)
	WarmupOps    int // serial warmup ops before arrivals start (default 64/client, also the calibration window)
	ReservoirCap int

	// ShardIndex/ShardCount place this run inside a sharded deployment: the
	// machine owns only the keys of Keyspace whose hash maps to ShardIndex
	// (see OwnedKeys), and exemplar stall causes carry the shard id. With
	// ShardCount <= 1 the run is byte-for-byte the unsharded dispatcher —
	// there is one serving path, not two (pinned by
	// TestServeShardedOneShardMatchesServe).
	ShardIndex int
	ShardCount int
}

// DefaultServeConfig returns a small serving setup (tests and smoke runs
// override what they need).
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		Clients:     16,
		Ops:         20000,
		Keyspace:    4000,
		TargetUtil:  0.6,
		ZipfTheta:   0.99,
		GetFraction: 0.9,
		MinVal:      240,
		MaxVal:      492,
		Seed:        7,
	}
}

// PendingWrite is the one store sub-transaction in flight at a crash (Val
// nil = delete). See checker.PendingWrite — redisws keeps its own type so the
// dependency points from the harness into both, not between them.
type PendingWrite struct {
	Key uint64
	Val []byte
}

// Recovered is the machine a CrashPlan.Recover hands back: the reopened
// store and pool, replacement scheme hooks (the pre-crash engine died with
// the power), how many simulated cycles the restart took, and the durable
// key/value model the recovery checker verified (the dispatcher rebuilds its
// volatile LRU from it and continues acknowledging against it).
type Recovered struct {
	Store ds.Store
	Pool  *pmop.Pool
	// Hooks replace Maintenance/Step/EpochOpen/EpochInfo/Foot; the run keeps
	// its original Series (the time series spans the crash).
	Hooks  ServeHooks
	Cycles uint64
	Model  map[uint64][]byte
}

// CrashPlan schedules a power failure inside a serving run and supplies the
// recovery path. Arm is called once, right before dispatch begins (so a site
// census covers exactly the dispatch phase). When a crash site fires — the
// dispatch goroutine panics with *pmem.CrashAtSite — Serve catches it,
// records the crash at the current completion high-water mark, and calls
// Recover with the acknowledged-write model and the in-flight transaction.
// Recover's error is the trial verdict and aborts the run; on success the
// dispatcher swaps in the recovered machine and resumes the arrival process.
//
// Degraded-mode semantics during the blackout [crash, crash+Cycles):
// connections whose request was lost with the power (in flight or queued
// server-side) retry with capped exponential backoff in virtual time;
// arrivals during the blackout hit a bounded admission queue — the first
// AdmitCap are parked until the server is back, the rest are rejected and
// retry with backoff. All of it is simulated serially in deterministic
// (time, client) order, so resumed runs stay bit-identical at any host
// thread count.
type CrashPlan struct {
	Arm     func()
	Recover func(crash *pmem.CrashAtSite, acked map[uint64][]byte, pending *PendingWrite) (*Recovered, error)

	// AdmitCap bounds the admission queue during recovery (default
	// Clients/4+1). BackoffBase/BackoffCap bound the retry backoff in cycles
	// (defaults 65536 and BackoffBase<<6).
	AdmitCap    int
	BackoffBase uint64
	BackoffCap  uint64
}

// ServeHooks injects a defragmentation scheme into the serving loop.
type ServeHooks struct {
	// Maintenance runs every MaintEvery dispatched ops at virtual time now;
	// returned cycles stall every client (an STW pause: arrivals during the
	// pause queue behind it).
	Maintenance func(now uint64) uint64
	// Step runs background defrag work after each commit round while an
	// epoch is open (n = ops just committed); it reports whether the epoch
	// is still open, plus any STW pause cycles the step incurred (the
	// terminate phase stops the world to fix references and flush).
	Step func(n int) (open bool, pause uint64)
	// EpochOpen reports whether a concurrent-defrag epoch is mid-flight —
	// read barriers installed, so batched (lock-free, peek-predicted)
	// dispatch is disabled and everything runs serially.
	EpochOpen func() bool
	// Foot overrides the footprint source (Mesh reports physical frames).
	Foot FootprintFn

	// Series, when non-nil, receives the run's windowed time series: per-op
	// samples with a full stall-cause record, plus epoch/STW overlay
	// intervals, all in the run's virtual-time domain. The layer is purely
	// observational — it reads committed values and non-perturbing peeks,
	// never charges a simulated cycle, and draws from no RNG stream — so
	// simulated results are bit-identical with or without it (pinned by
	// TestServeWindowsDoNotPerturb).
	Series *obsv.TimeSeries
	// EpochInfo reports the open defragmentation epoch for exemplar tagging
	// (0, false when idle). Must be observability-safe (no cycle charges);
	// core.Engine.OpenEpoch qualifies. Optional.
	EpochInfo func() (epoch uint64, open bool)

	// Crash, when non-nil, arms a scheduled power failure and supplies the
	// online recovery path (see CrashPlan). Nil leaves the serving loop
	// byte-for-byte on its crash-free path.
	Crash *CrashPlan
}

// ServeResult is a completed serving run.
type ServeResult struct {
	Ops, Gets, Sets int
	Hits, Misses    int
	Evictions       int

	// Lat is the per-op latency (arrival → completion, simulated cycles).
	Lat *LatencyRecorder
	// Decomposition histograms, one observation per op:
	AppHist    *obsv.Histogram // service cycles in CatApp (the op's own work)
	InterfHist *obsv.Histogram // service cycles outside CatApp (barrier fixups, checklookup)
	StallHist  *obsv.Histogram // dispatch delay from STW pauses
	QueueHist  *obsv.Histogram // waiting behind the connection's previous op

	AppCycles, InterfCycles          uint64 // sums of the above
	StallWaitCycles, QueueWaitCycles uint64

	RateUsed  float64 // offered load actually used (ops/sec)
	Makespan  uint64  // virtual time of the last completion
	SimCycles uint64  // total cycles across the loader and every client clock

	// Dispatch-shape counters (deterministic for a fixed seed).
	ParallelOps, SerialOps, Batches int

	// Crash-resume availability metrics (set when a ServeHooks.Crash schedule
	// fired; all in virtual cycles, deterministic for a fixed repro).
	Crashes        int
	CrashCycle     uint64 // virtual time of the (last) power failure
	ResumeCycle    uint64 // CrashCycle + recovery cycles
	BlackoutCycles uint64 // summed recovery durations
	TimeToFirstAck uint64 // first post-resume completion minus CrashCycle (0 = none)
	Retries        int    // client retries (lost requests + admission rejections)
	Rejects        int    // admission-queue rejections during recovery
	Admitted       int    // requests parked in the admission queue

	Final alloc.FragStats
}

// parallelStore is the optional store interface batched dispatch needs;
// kv.Echo implements it. Stores without it serve strictly serially.
type parallelStore interface {
	ds.Store
	GetParallel(ctx *sim.Ctx, key uint64) ([]byte, bool)
	GetFootprint(key uint64, visit func(off, n uint64))
}

// pendingOp is one generated-but-uncommitted operation.
type pendingOp struct {
	cli     int
	key     uint64
	isGet   bool
	valSize int
	arrival uint64
	// retryAt, when nonzero, is the earliest virtual time the op's retried
	// submission reached the server (crash resume); dispatch clamps to it.
	retryAt uint64
	// filled by execution:
	svc, app uint64
	wpq      uint64 // fence-drain stall cycles within svc (series runs only)
	hit      bool
}

// clientState is one connection thread.
type clientState struct {
	ctx         *sim.Ctx
	nextArrival uint64
	readyAt     uint64
	// stwRef is the end cycle of the STW pause the connection's delay chain
	// currently leads back to (0 = none); see StallCause.STWRef.
	stwRef uint64
	// resubmitAt, when nonzero, is the earliest submission time of the
	// client's next drawn op (set by crash-resume rescheduling, consumed by
	// genOp).
	resubmitAt uint64
}

// clientHeap is a binary min-heap of client ids ordered by (base, id),
// base = max(nextArrival, readyAt). Clients re-enter only after commit, so
// plain push/pop suffices.
type clientHeap struct {
	ids  []int
	base []uint64 // indexed by client id
}

func (h *clientHeap) less(a, b int) bool {
	if h.base[a] != h.base[b] {
		return h.base[a] < h.base[b]
	}
	return a < b
}

func (h *clientHeap) push(id int) {
	h.ids = append(h.ids, id)
	i := len(h.ids) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.ids[i], h.ids[p]) {
			break
		}
		h.ids[i], h.ids[p] = h.ids[p], h.ids[i]
		i = p
	}
}

func (h *clientHeap) pop() int {
	top := h.ids[0]
	last := len(h.ids) - 1
	h.ids[0] = h.ids[last]
	h.ids = h.ids[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h.ids) && h.less(h.ids[l], h.ids[m]) {
			m = l
		}
		if r < len(h.ids) && h.less(h.ids[r], h.ids[m]) {
			m = r
		}
		if m == i {
			return top
		}
		h.ids[i], h.ids[m] = h.ids[m], h.ids[i]
		i = m
	}
}

// setMarks detects cache-set conflicts between a candidate op and the
// current batch with O(footprint) stamping and O(1) reset.
type setMarks struct {
	stamp    []uint64
	batchTag uint64
	candTag  uint64
	tag      uint64
}

func newSetMarks(nset int) *setMarks { return &setMarks{stamp: make([]uint64, nset)} }

func (m *setMarks) newBatch() { m.tag++; m.batchTag = m.tag }
func (m *setMarks) newCand()  { m.tag++; m.candTag = m.tag }

// catchCrashSite runs f, converting a scheduled-crash unwind (a panic with
// *pmem.CrashAtSite, raised by an armed site recorder) into a value. Any other
// panic propagates.
func catchCrashSite(f func() error) (crash *pmem.CrashAtSite, err error) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(*pmem.CrashAtSite)
			if !ok {
				panic(r)
			}
			crash, err = c, nil
		}
	}()
	return nil, f()
}

// Serve runs the serving scenario. ctx is the loader context (prepopulation
// runs on it, serially; warmup runs on the client contexts).
func Serve(ctx *sim.Ctx, p *pmop.Pool, store ds.Store, cfg ServeConfig, hooks ServeHooks) (ServeResult, error) {
	if cfg.Clients <= 0 || cfg.Ops <= 0 || cfg.Keyspace <= 0 {
		return ServeResult{}, errors.New("redisws.Serve: Clients, Ops and Keyspace must be positive")
	}
	if cfg.TargetUtil <= 0 || cfg.TargetUtil >= 1 {
		cfg.TargetUtil = 0.6
	}
	if cfg.ZipfTheta <= 0 {
		cfg.ZipfTheta = 0.99
	}
	if cfg.GetFraction < 0 || cfg.GetFraction > 1 {
		cfg.GetFraction = 0.9
	}
	if cfg.MinVal <= 0 || cfg.MaxVal < cfg.MinVal {
		cfg.MinVal, cfg.MaxVal = 240, 492
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaintEvery <= 0 {
		cfg.MaintEvery = cfg.Keyspace / 4
		if cfg.MaintEvery == 0 {
			cfg.MaintEvery = 1
		}
	}
	foot := hooks.Foot
	if foot == nil {
		foot = func() alloc.FragStats { return p.Heap().Frag(p.PageShift()) }
	}

	// Shard key ownership. Unsharded runs (ShardCount <= 1) take the identity
	// mapping with no slice allocated, so their RNG draws and store traffic
	// are bit-identical to the pre-sharding dispatcher. A sharded run owns
	// the hash-selected subset and draws its Zipf ranks over that subset
	// only — the popularity skew applies within the shard, matching a
	// frontend that hashes each user key to one backend.
	var owned []uint64
	nOwned := uint64(cfg.Keyspace)
	if cfg.ShardCount > 1 {
		owned = OwnedKeys(uint64(cfg.Keyspace), cfg.ShardIndex, cfg.ShardCount)
		nOwned = uint64(len(owned))
		if nOwned == 0 {
			return ServeResult{}, errors.New("redisws.Serve: shard owns no keys; Keyspace too small for ShardCount")
		}
	}
	keyAt := func(rank uint64) uint64 { return rank }
	if owned != nil {
		keyAt = func(rank uint64) uint64 { return owned[rank] }
	}

	rng := workload.NewRNG(cfg.Seed)
	zipf := NewZipf(rng, nOwned, cfg.ZipfTheta)

	res := ServeResult{
		Lat:        NewLatencyRecorder(cfg.ReservoirCap, cfg.Seed^0x5ca1ab1e),
		AppHist:    &obsv.Histogram{},
		InterfHist: &obsv.Histogram{},
		StallHist:  &obsv.Histogram{},
		QueueHist:  &obsv.Histogram{},
	}

	// Volatile LRU bookkeeping, shared across clients (Redis keeps one).
	lru := list.New()
	elems := make(map[uint64]*list.Element)
	liveBytes := uint64(0)

	// Durable-ack tracking (crash runs only — nil maps keep the crash-free
	// path untouched). acked mirrors, in dispatch order, every write whose
	// transaction committed; pending is the one sub-transaction in flight, so
	// at any crash site the durable image must equal acked or acked±pending.
	plan := hooks.Crash
	var acked map[uint64][]byte
	var pending *PendingWrite
	// held[i] is client i's lost-in-flight op awaiting retry after a crash;
	// inFlight is the op currently executing serially; awaitFirstAck marks the
	// window between resume and the first post-resume completion.
	var held []*pendingOp
	var inFlight *pendingOp
	var awaitFirstAck bool
	if plan != nil {
		acked = make(map[uint64][]byte, cfg.Keyspace)
		held = make([]*pendingOp, cfg.Clients)
	}

	lo, hi := cfg.MinVal, cfg.MaxVal
	fillValue := func(k uint64, n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(k) + byte(i)
		}
		return b
	}

	evict := func(ectx *sim.Ctx) error {
		if cfg.MaxLiveBytes == 0 {
			return nil
		}
		for liveBytes > cfg.MaxLiveBytes && lru.Len() > 0 {
			back := lru.Back()
			k := back.Value.(lruEnt).key
			sz := back.Value.(lruEnt).size
			if acked != nil {
				pending = &PendingWrite{Key: k}
			}
			if _, err := store.Delete(ectx, k); err != nil {
				return err
			}
			if acked != nil {
				delete(acked, k)
				pending = nil
			}
			lru.Remove(back)
			delete(elems, k)
			liveBytes -= sz
			res.Evictions++
		}
		return nil
	}

	// Prepopulate the owned keyspace on the loader context.
	for i := uint64(0); i < nOwned; i++ {
		k := keyAt(i)
		n := lo + rng.Intn(hi-lo+1)
		v := fillValue(k, n)
		if err := store.Insert(ctx, k, v); err != nil {
			return res, err
		}
		if acked != nil {
			acked[k] = v
		}
		elems[k] = lru.PushFront(lruEnt{k, uint64(n)})
		liveBytes += uint64(n)
		if err := evict(ctx); err != nil {
			return res, err
		}
	}

	ps, _ := store.(parallelStore)
	dev := p.Device()
	marks := newSetMarks(dev.NumSets())

	clients := make([]clientState, cfg.Clients)
	for i := range clients {
		clients[i].ctx = sim.NewCtx(p.Config())
	}

	// Warmup and calibration. The warmup window runs the first WarmupOps of
	// the real mix (GETs and SETs with LRU churn) serially, round-robin
	// across the real client contexts, before arrivals begin: cold per-client
	// TLBs, cache pressure from the churn, and eviction work are all part of
	// the steady-state service time the offered load must be set against (a
	// GET-only probe on the warm loader context underestimates it
	// several-fold and the run saturates). The draws come from the main
	// stream, so every scheme (same seed, same prepopulated machine, no
	// defrag activity yet) measures the same mean and lands on the same
	// rate — equal offered load is what makes the per-scheme tails
	// comparable.
	warm := cfg.WarmupOps
	if warm <= 0 {
		warm = 64 * cfg.Clients
		if warm > 8192 {
			warm = 8192
		}
	}
	var warmSvc uint64
	for i := 0; i < warm; i++ {
		c := clients[i%cfg.Clients].ctx
		t0 := c.Clock.Total()
		if rng.Float64() < cfg.GetFraction {
			store.Get(c, keyAt(zipf.Next()))
		} else {
			k := keyAt(zipf.Next())
			n := lo + rng.Intn(hi-lo+1)
			v := fillValue(k, n)
			if err := store.Insert(c, k, v); err != nil {
				return res, err
			}
			if acked != nil {
				acked[k] = v
			}
			if e, ok := elems[k]; ok {
				liveBytes -= e.Value.(lruEnt).size
				lru.Remove(e)
			}
			elems[k] = lru.PushFront(lruEnt{k, uint64(n)})
			liveBytes += uint64(n)
			if err := evict(c); err != nil {
				return res, err
			}
		}
		warmSvc += c.Clock.Total() - t0
	}
	rate := cfg.RatePerSec
	if rate <= 0 {
		meanSvc := float64(warmSvc) / float64(warm)
		rate = cfg.TargetUtil * float64(cfg.Clients) / meanSvc * sim.CyclesPerSecond
	}
	res.RateUsed = rate
	meanInter := float64(cfg.Clients) * sim.CyclesPerSecond / rate // cycles, per client

	heap := &clientHeap{base: make([]uint64, cfg.Clients)}
	for i := range clients {
		clients[i].nextArrival = uint64(rng.ExpFloat64() * meanInter)
		heap.base[i] = clients[i].nextArrival
		heap.push(i)
	}

	var (
		stallUntil uint64
		vHigh      uint64 // high-water completion time
		dispatched int
		nextMaint  = cfg.MaintEvery
		epochOpen  bool
		carry      *pendingOp
		batch      []pendingOp
		driftAt    = cfg.Ops / 2
	)

	// Time-series instrumentation (nil/zero-cost when hooks.Series is unset).
	series := hooks.Series
	var drainByCli []uint64
	if series != nil {
		// Per-fence stall attribution: the device probe maps the issuing
		// context's shard back to its client. A client never executes two ops
		// concurrently (it re-enters the heap only at commit) and batched ops
		// are fence-free GETs, so the per-client slots are race-free.
		drainByCli = make([]uint64, cfg.Clients)
		shard2cli := make(map[uint32]int, cfg.Clients)
		for i := range clients {
			shard2cli[clients[i].ctx.Shard] = i
		}
		dev.SetDrainProbe(func(c *sim.Ctx, cycles uint64) {
			if i, ok := shard2cli[c.Shard]; ok {
				drainByCli[i] += cycles
			}
		})
		defer dev.SetDrainProbe(nil)
	}
	// epTrack mirrors epochOpen transitions into overlay intervals.
	var epTrack struct {
		open  bool
		start uint64
		id    uint64
	}
	noteEpoch := func(now uint64) {
		if series == nil || epochOpen == epTrack.open {
			return
		}
		if epochOpen {
			epTrack.open, epTrack.start, epTrack.id = true, now, 0
			if hooks.EpochInfo != nil {
				epTrack.id, _ = hooks.EpochInfo()
			}
		} else {
			series.AddInterval(obsv.IntervalEpoch, epTrack.start, now, epTrack.id)
			epTrack.open, epTrack.id = false, 0
		}
	}
	// primarySet resolves an op's primary device cache set (its store
	// footprint's first line) with non-perturbing peeks; -1 when unknown.
	primarySet := func(key uint64) int {
		set := -1
		ps.GetFootprint(key, func(off, n uint64) {
			if set < 0 {
				set = int(dev.SetOfAddr(p.PA(off &^ (pmem.LineSize - 1))))
			}
		})
		return set
	}

	// footprintSets stamps the candidate's predicted cache sets; reports
	// whether it conflicts with the current batch.
	footprintSets := func(key uint64) bool {
		marks.newCand()
		conflict := false
		ps.GetFootprint(key, func(off, n uint64) {
			if conflict {
				return
			}
			for a := off &^ (pmem.LineSize - 1); a < off+n; a += pmem.LineSize {
				set := dev.SetOfAddr(p.PA(a))
				switch marks.stamp[set] {
				case marks.batchTag:
					conflict = true
					return
				case marks.candTag:
					// dup within this candidate
				default:
					marks.stamp[set] = marks.candTag
				}
			}
		})
		return conflict
	}
	// acceptCand promotes the candidate's stamps into the batch.
	acceptCand := func() {
		for i, s := range marks.stamp {
			if s == marks.candTag {
				marks.stamp[i] = marks.batchTag
			}
		}
	}

	// genOp pops the lowest-virtual-time client and draws its operation. A
	// held (crash-lost, retried) op is replayed as drawn — no fresh randomness,
	// so the post-resume stream stays aligned with the repro's seed.
	genOp := func() pendingOp {
		id := heap.pop()
		c := &clients[id]
		if held != nil && held[id] != nil {
			op := *held[id]
			held[id] = nil
			return op
		}
		op := pendingOp{cli: id, arrival: c.nextArrival, retryAt: c.resubmitAt}
		c.resubmitAt = 0
		op.isGet = rng.Float64() < cfg.GetFraction
		op.key = keyAt(zipf.Next())
		if !op.isGet {
			op.valSize = lo + rng.Intn(hi-lo+1)
		}
		c.nextArrival += uint64(rng.ExpFloat64() * meanInter)
		return op
	}

	// execGet runs one GET on its client's private context (safe in a batch).
	execGet := func(op *pendingOp) {
		c := &clients[op.cli]
		t0 := c.ctx.Clock.Total()
		a0 := c.ctx.Clock.Cycles(sim.CatApp)
		var d0 uint64
		if drainByCli != nil {
			d0 = drainByCli[op.cli]
		}
		if ps != nil {
			_, op.hit = ps.GetParallel(c.ctx, op.key)
		} else {
			_, op.hit = store.Get(c.ctx, op.key)
		}
		op.svc = c.ctx.Clock.Total() - t0
		op.app = c.ctx.Clock.Cycles(sim.CatApp) - a0
		if drainByCli != nil {
			op.wpq = drainByCli[op.cli] - d0
		}
	}

	// commit applies one executed op in dispatch order: latency accounting,
	// LRU update, and the client's re-entry into the virtual-time heap.
	commit := func(op *pendingOp) {
		c := &clients[op.cli]
		base := op.arrival
		if c.readyAt > base {
			base = c.readyAt
		}
		start := base
		if stallUntil > start {
			start = stallUntil
		}
		if op.retryAt > start {
			start = op.retryAt
		}
		comp := start + op.svc
		c.readyAt = comp
		if comp > vHigh {
			vHigh = comp
		}
		if awaitFirstAck {
			res.TimeToFirstAck = comp - res.CrashCycle
			awaitFirstAck = false
		}

		queueWait := base - op.arrival // waiting behind this connection's previous op
		stallWait := start - base
		res.Lat.Observe(comp - op.arrival)
		res.AppHist.Observe(op.app)
		res.InterfHist.Observe(op.svc - op.app)
		res.StallHist.Observe(stallWait)
		res.QueueHist.Observe(queueWait)
		res.AppCycles += op.app
		res.InterfCycles += op.svc - op.app
		res.StallWaitCycles += stallWait
		res.QueueWaitCycles += queueWait

		if series != nil {
			pureApp := op.app
			if op.wpq <= pureApp {
				pureApp -= op.wpq
			} else {
				// Fence stalls charged outside CatApp (barrier relocations on
				// the client's clock); leave them in WPQDrain only.
				pureApp = 0
			}
			cause := obsv.StallCause{
				Scheme:    series.Scheme(),
				Phase:     "idle",
				App:       pureApp,
				WPQDrain:  op.wpq,
				Interf:    op.svc - op.app,
				STWWait:   stallWait,
				QueueWait: queueWait,
				CacheSet:  -1,
				Key:       op.key,
				Shard:     cfg.ShardIndex,
			}
			if epochOpen {
				cause.Phase, cause.Epoch = "compacting", epTrack.id
			}
			if ps != nil {
				cause.CacheSet = primarySet(op.key)
			}
			// Chain attribution: a stalled op dispatched at the pause end; a
			// queued op inherits its connection's pending attribution.
			switch {
			case stallWait > 0:
				cause.STWRef = start
				c.stwRef = start
			case queueWait > 0 && c.stwRef != 0:
				cause.STWRef = c.stwRef
			default:
				c.stwRef = 0
			}
			series.ObserveOp(obsv.OpSample{
				Arrival: op.arrival, Start: start, Complete: comp,
				App: op.app, Interf: op.svc - op.app, Stall: stallWait, Queue: queueWait,
				Cause: cause,
			})
		}

		if op.isGet {
			res.Gets++
			if op.hit {
				res.Hits++
				if e, found := elems[op.key]; found {
					lru.MoveToFront(e)
				}
			} else {
				res.Misses++
			}
		} else {
			res.Sets++
		}
		res.Ops++
		dispatched++
		heap.base[op.cli] = c.nextArrival
		if c.readyAt > heap.base[op.cli] {
			heap.base[op.cli] = c.readyAt
		}
		heap.push(op.cli)
	}

	// execSerial runs a SET (or a GET that could not batch) on the dispatch
	// goroutine.
	execSerial := func(op *pendingOp) error {
		c := &clients[op.cli]
		if plan != nil {
			inFlight = op
		}
		t0 := c.ctx.Clock.Total()
		a0 := c.ctx.Clock.Cycles(sim.CatApp)
		var d0 uint64
		if drainByCli != nil {
			d0 = drainByCli[op.cli]
		}
		if op.isGet {
			_, op.hit = store.Get(c.ctx, op.key)
		} else {
			v := fillValue(op.key, op.valSize)
			if acked != nil {
				pending = &PendingWrite{Key: op.key, Val: v}
			}
			if err := store.Insert(c.ctx, op.key, v); err != nil {
				return err
			}
			if acked != nil {
				acked[op.key] = v
				pending = nil
			}
			if e, ok := elems[op.key]; ok {
				liveBytes -= e.Value.(lruEnt).size
				lru.Remove(e)
			}
			elems[op.key] = lru.PushFront(lruEnt{op.key, uint64(op.valSize)})
			liveBytes += uint64(op.valSize)
			// Evictions run on the owning client's clock: the deletes are
			// that connection's work.
			if err := evict(c.ctx); err != nil {
				return err
			}
		}
		op.svc = c.ctx.Clock.Total() - t0
		op.app = c.ctx.Clock.Cycles(sim.CatApp) - a0
		if drainByCli != nil {
			op.wpq = drainByCli[op.cli] - d0
		}
		res.SerialOps++
		commit(op)
		inFlight = nil
		return nil
	}

	afterRound := func(n int) {
		if hooks.Step != nil && epochOpen {
			var pause uint64
			epochOpen, pause = hooks.Step(n)
			if pause > 0 && vHigh+pause > stallUntil {
				if series != nil {
					// The terminate pause of the epoch being stepped.
					series.AddInterval(obsv.IntervalSTW, vHigh, vHigh+pause, epTrack.id)
				}
				stallUntil = vHigh + pause
			}
			noteEpoch(vHigh)
		}
	}

	// dispatch runs the serving loop to completion (or until a crash site
	// fires, unwinding through it as a *pmem.CrashAtSite panic).
	dispatch := func() error {
		if hooks.EpochOpen != nil {
			epochOpen = hooks.EpochOpen()
			noteEpoch(vHigh)
		}
		for dispatched < cfg.Ops {
			if dispatched >= nextMaint {
				nextMaint += cfg.MaintEvery
				if hooks.Maintenance != nil {
					if pause := hooks.Maintenance(vHigh); pause > 0 {
						if vHigh+pause > stallUntil {
							if series != nil {
								series.AddInterval(obsv.IntervalSTW, vHigh, vHigh+pause, epTrack.id)
							}
							stallUntil = vHigh + pause
						}
					}
				}
				if hooks.EpochOpen != nil {
					epochOpen = hooks.EpochOpen()
					noteEpoch(vHigh)
				}
			}
			if cfg.MinVal2 > 0 && cfg.MaxVal2 >= cfg.MinVal2 && dispatched >= driftAt {
				lo, hi = cfg.MinVal2, cfg.MaxVal2
			}

			// Collect a batch of commuting GETs in virtual-time order.
			batch = batch[:0]
			marks.newBatch()
			canBatch := ps != nil && !epochOpen
			for dispatched+len(batch) < cfg.Ops {
				var op pendingOp
				if carry != nil {
					op, carry = *carry, nil
				} else if len(heap.ids) > 0 {
					op = genOp()
				} else {
					break // every client is already in the batch
				}
				if canBatch && op.isGet && len(batch) < cfg.MaxBatch && !footprintSets(op.key) {
					acceptCand()
					batch = append(batch, op)
					continue
				}
				carry = &op
				break
			}

			if len(batch) > 0 {
				b := batch
				if err := workpool.ForEach(len(b), func(i int) error {
					execGet(&b[i])
					return nil
				}); err != nil {
					return err
				}
				for i := range b {
					commit(&b[i])
				}
				res.ParallelOps += len(b)
				res.Batches++
				afterRound(len(b))
			}
			if carry != nil && len(batch) == 0 {
				op := carry
				carry = nil
				if err := execSerial(op); err != nil {
					return err
				}
				afterRound(1)
			}
		}

		// Drain any open epoch so Final reflects a quiesced machine.
		if hooks.Step != nil {
			for epochOpen {
				epochOpen, _ = hooks.Step(cfg.MaxBatch)
			}
			noteEpoch(vHigh)
		}
		return nil
	}

	// resumeFromCrash swaps in the recovered machine and restarts the arrival
	// process with degraded-mode admission: lost requests (in flight or queued
	// server-side when the power failed) retry with capped exponential backoff;
	// blackout-era submissions hit a bounded admission queue — the first
	// AdmitCap park until resume, the rest are rejected into backoff. The whole
	// reschedule is simulated serially in (time, client) order, so the resumed
	// run is a pure function of the repro at any host thread count.
	resumeFromCrash := func(crash *pmem.CrashAtSite) error {
		crashAt := vHigh
		rec, err := plan.Recover(crash, acked, pending)
		if err != nil {
			return err
		}
		// Swap the machine. The recovered pool reopens the same device, so the
		// drain probe and set geometry carry over.
		store = rec.Store
		ps, _ = store.(parallelStore)
		if rec.Pool != nil {
			p = rec.Pool
			dev = p.Device()
		}
		hooks.Maintenance = rec.Hooks.Maintenance
		hooks.Step = rec.Hooks.Step
		hooks.EpochOpen = rec.Hooks.EpochOpen
		hooks.EpochInfo = rec.Hooks.EpochInfo
		if rec.Hooks.Foot != nil {
			foot = rec.Hooks.Foot
		} else {
			foot = func() alloc.FragStats { return p.Heap().Frag(p.PageShift()) }
		}
		// The pre-crash epoch (if any) died with the power: close its overlay.
		epochOpen = false
		noteEpoch(crashAt)

		resumeAt := crashAt + rec.Cycles
		res.Crashes++
		res.CrashCycle = crashAt
		res.ResumeCycle = resumeAt
		res.BlackoutCycles += rec.Cycles
		if series != nil {
			series.AddInterval(obsv.IntervalRecovery, crashAt, resumeAt, 0)
		}
		awaitFirstAck = true
		if resumeAt > stallUntil {
			stallUntil = resumeAt
		}

		// Rebuild the volatile LRU from the verified durable model, keys
		// ascending (deterministic; recency order died with the power).
		lru.Init()
		for k := range elems {
			delete(elems, k)
		}
		liveBytes = 0
		keys := make([]uint64, 0, len(rec.Model))
		for k := range rec.Model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			n := uint64(len(rec.Model[k]))
			elems[k] = lru.PushFront(lruEnt{k, n})
			liveBytes += n
		}
		acked = rec.Model
		pending = nil

		// Degraded-mode reschedule.
		backBase := plan.BackoffBase
		if backBase == 0 {
			backBase = 65536
		}
		backCap := plan.BackoffCap
		if backCap == 0 {
			backCap = backBase << 6
		}
		admitCap := plan.AdmitCap
		if admitCap <= 0 {
			admitCap = cfg.Clients/4 + 1
		}
		backoff := func(tries int) uint64 {
			b := backBase
			for i := 0; i < tries && b < backCap; i++ {
				b <<= 1
			}
			if b > backCap {
				b = backCap
			}
			return b
		}
		type attempt struct {
			cli   int
			t     uint64 // when this submission (re)reaches the server
			tries int
			op    *pendingOp // non-nil: a drawn op lost in flight
		}
		var atts []attempt
		lost := func(op *pendingOp) {
			res.Retries++
			atts = append(atts, attempt{cli: op.cli, t: crashAt + backoff(0), tries: 1, op: op})
		}
		if inFlight != nil {
			op := *inFlight
			inFlight = nil
			lost(&op)
		}
		if carry != nil {
			op := carry
			carry = nil
			lost(op)
		}
		for _, id := range heap.ids {
			c := &clients[id]
			if c.nextArrival <= crashAt {
				// Submitted before the failure; lost with the server's queue.
				res.Retries++
				atts = append(atts, attempt{cli: id, t: crashAt + backoff(0), tries: 1})
			} else {
				atts = append(atts, attempt{cli: id, t: c.nextArrival})
			}
		}
		heap.ids = heap.ids[:0]
		// finalize re-enters a client into the dispatch heap; submitAt > 0 is
		// the time its submission reached the server (0 = parked in the
		// admission queue; stallUntil already clamps its start to resumeAt).
		finalize := func(a attempt, submitAt uint64) {
			c := &clients[a.cli]
			var base uint64
			if a.op != nil {
				op := *a.op
				op.retryAt = submitAt
				held[a.cli] = &op
				base = op.arrival
			} else {
				c.resubmitAt = submitAt
				base = c.nextArrival
			}
			if submitAt > base {
				base = submitAt
			}
			if c.readyAt > base {
				base = c.readyAt
			}
			heap.base[a.cli] = base
			heap.push(a.cli)
		}
		admitted := 0
		for len(atts) > 0 {
			mi := 0
			for i := 1; i < len(atts); i++ {
				if atts[i].t < atts[mi].t || (atts[i].t == atts[mi].t && atts[i].cli < atts[mi].cli) {
					mi = i
				}
			}
			a := atts[mi]
			atts[mi] = atts[len(atts)-1]
			atts = atts[:len(atts)-1]
			switch {
			case a.t >= resumeAt:
				finalize(a, a.t)
			case admitted < admitCap:
				admitted++
				res.Admitted++
				finalize(a, 0)
			default:
				res.Rejects++
				res.Retries++
				if series != nil {
					series.AddInterval(obsv.IntervalBackoff, a.t, a.t+backoff(a.tries), uint64(a.cli))
				}
				a.t += backoff(a.tries)
				a.tries++
				atts = append(atts, a)
			}
		}
		return nil
	}

	if plan != nil && plan.Arm != nil {
		plan.Arm()
	}
	for {
		var crash *pmem.CrashAtSite
		var err error
		if plan != nil {
			crash, err = catchCrashSite(dispatch)
		} else {
			err = dispatch()
		}
		if err != nil {
			return res, err
		}
		if crash == nil {
			break
		}
		if err := resumeFromCrash(crash); err != nil {
			return res, err
		}
	}

	res.Makespan = vHigh
	res.SimCycles = ctx.Clock.Total()
	for i := range clients {
		res.SimCycles += clients[i].ctx.Clock.Total()
	}
	res.Final = foot()
	return res, nil
}
