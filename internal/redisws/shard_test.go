package redisws_test

import (
	"reflect"
	"testing"

	"ffccd/internal/kv"
	"ffccd/internal/obsv"
	"ffccd/internal/redisws"
	"ffccd/internal/workpool"
)

// TestOwnedKeysPartition pins the shard routing: the per-shard owned-key
// lists are ascending and their union is an exact partition of the keyspace.
func TestOwnedKeysPartition(t *testing.T) {
	const keyspace, shards = 1000, 4
	owner := make(map[uint64]int)
	for s := 0; s < shards; s++ {
		owned := redisws.OwnedKeys(keyspace, s, shards)
		if len(owned) == 0 {
			t.Fatalf("shard %d owns no keys", s)
		}
		for i, k := range owned {
			if i > 0 && owned[i-1] >= k {
				t.Fatalf("shard %d owned keys not ascending at %d: %d >= %d", s, i, owned[i-1], k)
			}
			if prev, dup := owner[k]; dup {
				t.Fatalf("key %d owned by both shard %d and %d", k, prev, s)
			}
			owner[k] = s
		}
	}
	if len(owner) != keyspace {
		t.Fatalf("union covers %d of %d keys", len(owner), keyspace)
	}
	// shards=1 is the identity partition.
	if got := redisws.OwnedKeys(10, 0, 1); len(got) != 10 || got[0] != 0 || got[9] != 9 {
		t.Fatalf("one-shard OwnedKeys = %v", got)
	}
}

// TestShardConfigsSplit pins the deployment-wide split: op and client budgets
// are conserved, shard 0 keeps the base seed, and n<=1 returns the config
// verbatim (the unsharded dispatcher is the one-shard special case).
func TestShardConfigsSplit(t *testing.T) {
	cfg := serveCfg()
	one := redisws.ShardConfigs(cfg, 1)
	if len(one) != 1 || !reflect.DeepEqual(one[0], cfg) {
		t.Fatalf("ShardConfigs(cfg, 1) altered the config: %+v", one)
	}
	const n = 4
	cfgs := redisws.ShardConfigs(cfg, n)
	ops, clients := 0, 0
	for i, c := range cfgs {
		if c.ShardIndex != i || c.ShardCount != n {
			t.Fatalf("shard %d mislabeled: index=%d count=%d", i, c.ShardIndex, c.ShardCount)
		}
		ops += c.Ops
		clients += c.Clients
		if c.MaintEvery < 1 || c.Clients < 1 {
			t.Fatalf("shard %d degenerate split: %+v", i, c)
		}
	}
	if ops != cfg.Ops || clients != cfg.Clients {
		t.Fatalf("split not conserved: ops %d/%d clients %d/%d", ops, cfg.Ops, clients, cfg.Clients)
	}
	if cfgs[0].Seed != cfg.Seed {
		t.Fatalf("shard 0 seed %d != base %d", cfgs[0].Seed, cfg.Seed)
	}
	if cfgs[1].Seed == cfg.Seed {
		t.Fatal("shard 1 seed not decorrelated")
	}
}

// buildShards constructs n independent machines (pool, ctx, store) for a
// sharded run, optionally with a per-shard time series.
func buildShards(t *testing.T, n int, window uint64) ([]redisws.Shard, []*obsv.TimeSeries) {
	t.Helper()
	shards := make([]redisws.Shard, n)
	var series []*obsv.TimeSeries
	for i := range shards {
		p, ctx := setup(t)
		store, _ := kv.NewEcho(ctx, p, 1024)
		shards[i] = redisws.Shard{Ctx: ctx, Pool: p, Store: store}
		if window > 0 {
			ts := obsv.NewTimeSeries("none", window, 0)
			shards[i].Hooks.Series = ts
			series = append(series, ts)
		}
	}
	return shards, series
}

// TestServeShardedOneShardMatchesServe is the regression pin for the
// "sharding replaces, not forks, the old path" requirement: a one-shard
// deployment must reproduce the direct unsharded Serve bit-identically.
func TestServeShardedOneShardMatchesServe(t *testing.T) {
	direct := summarize(runServe(t, serveCfg(), redisws.ServeHooks{}))

	shards, _ := buildShards(t, 1, 0)
	out, err := redisws.ServeSharded(shards, redisws.ShardConfigs(serveCfg(), 1))
	if err != nil {
		t.Fatal(err)
	}
	sharded := summarize(out.Merged)
	if !reflect.DeepEqual(direct, sharded) {
		t.Errorf("one-shard deployment differs from direct Serve:\n  direct : %+v\n  sharded: %+v", direct, sharded)
	}
}

// shardedRun executes a 4-shard deployment and flattens everything
// deterministic about it: merged summary, per-shard summaries, merged series
// windows and worst exemplar.
type shardedOutcome struct {
	Merged   serveSummary
	PerShard []serveSummary
	Windows  []obsv.WindowSnap
	Worst    obsv.Exemplar
}

func shardedRun(t *testing.T, n int) shardedOutcome {
	t.Helper()
	const window = 2_000_000
	shards, series := buildShards(t, n, window)
	out, err := redisws.ServeSharded(shards, redisws.ShardConfigs(serveCfg(), n))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := redisws.MergeShardSeries("none", window, 0, series)
	if err != nil {
		t.Fatal(err)
	}
	oc := shardedOutcome{Merged: summarize(out.Merged), Windows: merged.Windows()}
	for _, r := range out.Shards {
		oc.PerShard = append(oc.PerShard, summarize(r))
	}
	if ex, ok := merged.WorstExemplar(); ok {
		oc.Worst = ex
	}
	return oc
}

// TestServeShardedDeterministicAcrossHostParallelism is the tentpole
// acceptance pin: a sharded deployment's merged summary, per-shard rows,
// time-series windows, and exemplars must be bit-identical whether the
// shards run on one host thread or several.
func TestServeShardedDeterministicAcrossHostParallelism(t *testing.T) {
	old := workpool.Parallelism()
	defer workpool.SetParallelism(old)

	workpool.SetParallelism(1)
	serial := shardedRun(t, 4)
	workpool.SetParallelism(4)
	parallel := shardedRun(t, 4)

	if serial.Merged.Ops != 4000 {
		t.Fatalf("merged ops %d, want the full deployment budget", serial.Merged.Ops)
	}
	if len(serial.Windows) == 0 {
		t.Fatal("no merged windows; the series pin is vacuous")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("sharded outcome differs across host parallelism:\n  1 thread : %+v\n  4 threads: %+v", serial, parallel)
	}
}

// TestServeShardedRaceHammer drives 8 shards at workpool parallelism 8 — under
// `go test -race` this is the isolation proof that no state is shared across
// shard clock domains.
func TestServeShardedRaceHammer(t *testing.T) {
	old := workpool.Parallelism()
	defer workpool.SetParallelism(old)
	workpool.SetParallelism(8)

	const n = 8
	shards, _ := buildShards(t, n, 0)
	out, err := redisws.ServeSharded(shards, redisws.ShardConfigs(serveCfg(), n))
	if err != nil {
		t.Fatal(err)
	}
	if out.Merged.Ops != 4000 {
		t.Fatalf("merged ops %d, want 4000", out.Merged.Ops)
	}
	for i, r := range out.Shards {
		if r.Ops == 0 {
			t.Errorf("shard %d served no ops", i)
		}
	}
}

// TestLatencyRecorderMergeMatchesSingleStream is the merge-layer property
// test: latencies partitioned across per-shard recorders and merged must
// reproduce the single-stream reference exactly for everything the histogram
// answers (count, percentiles, snapshot), since the histogram merge is exact.
func TestLatencyRecorderMergeMatchesSingleStream(t *testing.T) {
	const n, vals = 3, 5000
	ref := redisws.NewLatencyRecorder(256, 0)
	parts := make([]*redisws.LatencyRecorder, n)
	for i := range parts {
		parts[i] = redisws.NewLatencyRecorder(256, 0)
	}
	// Deterministic pseudo-random latencies (LCG), partitioned round-robin.
	x := uint64(0x2545F4914F6CDD1D)
	for i := 0; i < vals; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		v := (x >> 33) % 1_000_000
		ref.Observe(v)
		parts[i%n].Observe(v)
	}
	merged := redisws.NewLatencyRecorder(256, 0)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != ref.Count() {
		t.Fatalf("merged count %d != %d", merged.Count(), ref.Count())
	}
	for _, q := range []float64{50, 90, 99, 99.9} {
		if m, r := merged.Percentile(q), ref.Percentile(q); m != r {
			t.Errorf("p%g: merged %v != reference %v", q, m, r)
		}
	}
	if !reflect.DeepEqual(merged.Hist.Snapshot(""), ref.Hist.Snapshot("")) {
		t.Error("merged histogram snapshot differs from single-stream reference")
	}
	if merged.Max() != ref.Max() {
		t.Errorf("merged max %v != %v", merged.Max(), ref.Max())
	}
}
