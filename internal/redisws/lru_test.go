package redisws_test

import (
	"testing"

	"ffccd/internal/kv"
	"ffccd/internal/redisws"
)

func TestValueSizeDrift(t *testing.T) {
	// The second phase's drifted size distribution must raise fragmentation
	// above the single-distribution run (the mechanism behind Figure 16's
	// footprint growth).
	run := func(drift bool) float64 {
		p, ctx := setup(t)
		store, _ := kv.NewEcho(ctx, p, 2048)
		cfg := smallCfg()
		if drift {
			cfg.MinVal, cfg.MaxVal = 24, 128
			cfg.MinVal2, cfg.MaxVal2 = 256, 492
		}
		res, err := redisws.Run(ctx, p, store, cfg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Final.FragRatio
	}
	same := run(false)
	drifted := run(true)
	if drifted <= same {
		t.Errorf("drifted fragR %.2f not above same-distribution %.2f", drifted, same)
	}
}

func TestHookStallsAppearInLatencies(t *testing.T) {
	p, ctx := setup(t)
	store, _ := kv.NewEcho(ctx, p, 2048)
	cfg := smallCfg()
	cfg.InitialKeys, cfg.ExtraKeys = 500, 100
	const bigStall = 50_000_000
	fired := 0
	res, err := redisws.Run(ctx, p, store, cfg, func(op int) uint64 {
		if op == 300 {
			fired++
			return bigStall
		}
		return 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times", fired)
	}
	if maxLat := res.Lat.Max(); maxLat < bigStall {
		t.Errorf("stall not reflected in latencies: max=%.0f", maxLat)
	}
}

func TestEvictionsAreLRU(t *testing.T) {
	p, ctx := setup(t)
	store, _ := kv.NewEcho(ctx, p, 4096)
	cfg := redisws.Config{
		MaxLiveBytes:     10 * 1024,
		InitialKeys:      200,
		ExtraKeys:        0,
		QueriesPerInsert: 0,
		MinVal:           100,
		MaxVal:           100,
		Seed:             7,
	}
	res, err := redisws.Run(ctx, p, store, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions == 0 {
		t.Fatal("no evictions with a 10KB cap")
	}
	// Live stays bounded: ~100 values of 100 bytes.
	if store.Len() > 110 {
		t.Errorf("store holds %d entries, cap allows ~102", store.Len())
	}
}
