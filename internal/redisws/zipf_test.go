package redisws_test

import (
	"math"
	"testing"

	"ffccd/internal/redisws"
	"ffccd/internal/workload"
)

// TestZipfFrequency checks the Gray sampler against the closed-form Zipfian
// pmf it is supposed to draw from: head ranks within a few percent, and the
// whole distribution close in total-variation distance. The run is
// deterministic (counter-based stream), so the tolerances are not flaky.
func TestZipfFrequency(t *testing.T) {
	const (
		n     = 200
		theta = 0.99
		draws = 200_000
	)
	rng := workload.NewRNG(11)
	z := redisws.NewZipf(rng, n, theta)

	before := rng.Draws()
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if got := rng.Draws() - before; got != draws {
		t.Fatalf("Next consumed %d draws for %d samples; want exactly one each", got, draws)
	}

	// Ranks 0 and 1 are generated exactly (the sampler's uz < 1 and
	// uz < thresh branches carve out precisely Prob(0) and Prob(1) of the
	// uniform mass), so they admit a tight check. Higher ranks come from the
	// continuous inverse-CDF approximation, which misallocates a few percent
	// at small ranks — that error is the sampler's, not noise, and is
	// covered by the total-variation bound below.
	for k := uint64(0); k < 2; k++ {
		obs := float64(counts[k]) / draws
		exp := z.Prob(k)
		if rel := math.Abs(obs-exp) / exp; rel > 0.02 {
			t.Errorf("rank %d: observed %.4f vs expected %.4f (rel err %.3f)", k, obs, exp, rel)
		}
	}

	// Whole distribution: total-variation distance and pmf normalization.
	var tv, mass float64
	for k := uint64(0); k < n; k++ {
		obs := float64(counts[k]) / draws
		tv += math.Abs(obs - z.Prob(k))
		mass += z.Prob(k)
	}
	tv /= 2
	if tv > 0.04 {
		t.Errorf("total-variation distance %.4f too large", tv)
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("Prob does not normalize: sum = %.12f", mass)
	}

	// Monotonicity of the reference pmf (rank 0 most popular).
	for k := uint64(1); k < n; k++ {
		if z.Prob(k) > z.Prob(k-1) {
			t.Fatalf("pmf not monotone at rank %d", k)
		}
	}
}
