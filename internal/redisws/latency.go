package redisws

import (
	"sort"

	"ffccd/internal/obsv"
	"ffccd/internal/workload"
)

// DefaultReservoirCap bounds the exact-latency side channel: at million-op
// serving scale the histogram is the record of truth and the reservoir is a
// fixed-size uniform sample kept only for exact-percentile cross-checks.
const DefaultReservoirCap = 4096

// LatencyRecorder streams per-operation latencies (simulated cycles) into a
// log-linear obsv.Histogram plus a bounded uniform reservoir (Vitter's
// algorithm R, driven by its own counter-based RNG stream so sampling never
// perturbs the workload's draws). It replaces the unbounded
// Result.Latencies slice: memory is O(histBuckets + cap) regardless of
// operation count, and the reservoir gives tests an exact percentile when
// the run is smaller than the cap.
type LatencyRecorder struct {
	Hist *obsv.Histogram

	cap    int
	seen   uint64
	sample []uint64
	rng    *workload.RNG
}

// NewLatencyRecorder returns a recorder with the given reservoir capacity
// (<=0 selects DefaultReservoirCap). seed selects the reservoir's private
// sampling stream.
func NewLatencyRecorder(capacity int, seed int64) *LatencyRecorder {
	if capacity <= 0 {
		capacity = DefaultReservoirCap
	}
	return &LatencyRecorder{
		Hist:   &obsv.Histogram{},
		cap:    capacity,
		sample: make([]uint64, 0, capacity),
		rng:    workload.NewRNG(seed),
	}
}

// Observe records one latency.
func (r *LatencyRecorder) Observe(v uint64) {
	r.Hist.Observe(v)
	r.seen++
	if len(r.sample) < r.cap {
		r.sample = append(r.sample, v)
		return
	}
	// One draw per overflowing observation keeps the stream position a pure
	// function of the op count (checkpoint-friendly, like the workload RNG).
	if j := r.rng.Intn(int(r.seen)); j < r.cap {
		r.sample[j] = v
	}
}

// Cap returns the reservoir capacity.
func (r *LatencyRecorder) Cap() int { return r.cap }

// Merge folds another recorder into r (sharded-serving merge). The histogram
// merge is exact. The reservoirs concatenate in call order; when the result
// overflows the capacity it is thinned by a systematic (every len/cap-th
// element) subsample — deterministic, which the bit-identical merge needs,
// though no longer a uniform sample of the combined stream. The histogram
// remains the record of truth; ReservoirPercentile stays exact whenever the
// combined count fits the capacity.
func (r *LatencyRecorder) Merge(o *LatencyRecorder) {
	r.Hist.Merge(o.Hist)
	combined := make([]uint64, 0, len(r.sample)+len(o.sample))
	combined = append(combined, r.sample...)
	combined = append(combined, o.sample...)
	if len(combined) > r.cap {
		kept := make([]uint64, r.cap)
		for i := range kept {
			kept[i] = combined[i*len(combined)/r.cap]
		}
		combined = kept
	}
	r.sample = combined
	r.seen += o.seen
}

// Count returns the number of recorded latencies.
func (r *LatencyRecorder) Count() uint64 { return r.seen }

// Max returns the largest recorded latency.
func (r *LatencyRecorder) Max() float64 {
	s := r.Hist.Snapshot("")
	return float64(s.Max)
}

// Mean returns the exact mean latency.
func (r *LatencyRecorder) Mean() float64 {
	return r.Hist.Snapshot("").Mean()
}

// Percentile resolves percentile p (0..100, stats.Percentile convention)
// from the histogram: an upper bound within 1/16 relative error.
func (r *LatencyRecorder) Percentile(p float64) float64 {
	return float64(r.Hist.Quantile(p / 100))
}

// ReservoirPercentile resolves percentile p from the reservoir sample by
// nearest rank — exact over all observations when Count() <= the capacity,
// an unbiased estimate otherwise. Tests use it to cross-check the
// histogram's bounded-error percentiles.
func (r *LatencyRecorder) ReservoirPercentile(p float64) float64 {
	if len(r.sample) == 0 {
		return 0
	}
	s := append([]uint64(nil), r.sample...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p / 100 * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return float64(s[idx])
}
