package redisws

import (
	"math"

	"ffccd/internal/workload"
)

// Zipf generates Zipfian-distributed ranks in [0, n): rank k is drawn with
// probability proportional to 1/(k+1)^theta — the key-popularity skew of
// cache workloads (YCSB uses theta = 0.99). This is Gray et al.'s constant-
// time bounded-Zipfian sampler ("Quickly generating billion-record
// synthetic databases", SIGMOD '94), which — unlike math/rand's Zipf —
// supports theta < 1. Each Next consumes exactly one draw from the
// counter-based stream, so the position stays a pure function of the
// sample count.
type Zipf struct {
	rng   *workload.RNG
	n     uint64
	theta float64

	alpha, zetan, eta, thresh float64
}

// NewZipf prepares a sampler over n ranks with skew theta in (0, 1) ∪ (1, ∞).
// The one-time zeta(n, theta) sum is O(n) host work.
func NewZipf(rng *workload.RNG, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("redisws.NewZipf: n == 0")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	zeta2 := zeta(2, theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	z.thresh = 1 + math.Pow(0.5, theta)
	return z
}

func zeta(n uint64, theta float64) float64 {
	var s float64
	for i := uint64(0); i < n; i++ {
		s += 1 / math.Pow(float64(i+1), theta)
	}
	return s
}

// Next returns the next rank. Rank 0 is the most popular.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.thresh {
		return 1
	}
	r := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// Prob returns the theoretical probability of rank k — the reference
// distribution the frequency test checks Next against.
func (z *Zipf) Prob(k uint64) float64 {
	return 1 / math.Pow(float64(k+1), z.theta) / z.zetan
}
