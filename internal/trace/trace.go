// Package trace records and replays key-value operation streams — the
// WHISPER-style trace methodology the paper's workloads descend from. A
// trace captures (op, key, value-size) tuples in a compact binary format;
// replaying one against any ds.Store reproduces an identical allocation and
// fragmentation history, which makes cross-structure and cross-scheme
// comparisons exact rather than statistically similar.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"

	"ffccd/internal/ds"
	"ffccd/internal/sim"
)

// Op is one traced operation kind.
type Op uint8

const (
	// OpInsert inserts/overwrites a key with a value of Size bytes.
	OpInsert Op = iota
	// OpDelete removes a key.
	OpDelete
	// OpGet reads a key.
	OpGet
)

// Record is one traced operation.
type Record struct {
	Op   Op
	Key  uint64
	Size uint32 // value size for OpInsert
}

// Trace is an in-memory operation stream.
type Trace struct {
	Records []Record
}

// magic identifies the binary format.
const magic = 0x46464344_54524331 // "FFCDTRC1"

// Write serialises the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], magic)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(t.Records)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [13]byte
	for _, r := range t.Records {
		rec[0] = byte(r.Op)
		binary.LittleEndian.PutUint64(rec[1:9], r.Key)
		binary.LittleEndian.PutUint32(rec[9:13], r.Size)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserialises a trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(hdr[0:8]) != magic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	t := &Trace{Records: make([]Record, 0, n)}
	var rec [13]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated at record %d: %w", i, err)
		}
		t.Records = append(t.Records, Record{
			Op:   Op(rec[0]),
			Key:  binary.LittleEndian.Uint64(rec[1:9]),
			Size: binary.LittleEndian.Uint32(rec[9:13]),
		})
	}
	return t, nil
}

// GenerateConfig parameterises synthetic trace generation.
type GenerateConfig struct {
	Ops       int
	KeySpace  uint64
	MinVal    int
	MaxVal    int
	InsertPct int // percentage of operations that insert
	DeletePct int // percentage that delete; the rest are gets
	Seed      int64
}

// Generate builds a synthetic trace with the given mix.
func Generate(cfg GenerateConfig) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Trace{Records: make([]Record, 0, cfg.Ops)}
	span := cfg.MaxVal - cfg.MinVal + 1
	if span < 1 {
		span = 1
	}
	for i := 0; i < cfg.Ops; i++ {
		key := rng.Uint64() % cfg.KeySpace
		p := rng.Intn(100)
		switch {
		case p < cfg.InsertPct:
			t.Records = append(t.Records, Record{OpInsert, key, uint32(cfg.MinVal + rng.Intn(span))})
		case p < cfg.InsertPct+cfg.DeletePct:
			t.Records = append(t.Records, Record{OpDelete, key, 0})
		default:
			t.Records = append(t.Records, Record{OpGet, key, 0})
		}
	}
	return t
}

// ReplayStats summarise a replay.
type ReplayStats struct {
	Inserts, Deletes, Gets int
	Cycles                 uint64
}

// Replay runs the trace against a store. Values are deterministic functions
// of (key, size), so two replays of the same trace build byte-identical
// stores.
func Replay(ctx *sim.Ctx, s ds.Store, t *Trace) (ReplayStats, error) {
	var st ReplayStats
	start := ctx.Clock.Total()
	for i, r := range t.Records {
		switch r.Op {
		case OpInsert:
			if err := s.Insert(ctx, r.Key, ValueFor(r.Key, int(r.Size))); err != nil {
				return st, fmt.Errorf("trace: record %d: %w", i, err)
			}
			st.Inserts++
		case OpDelete:
			if _, err := s.Delete(ctx, r.Key); err != nil {
				return st, fmt.Errorf("trace: record %d: %w", i, err)
			}
			st.Deletes++
		case OpGet:
			s.Get(ctx, r.Key)
			st.Gets++
		default:
			return st, fmt.Errorf("trace: record %d has unknown op %d", i, r.Op)
		}
	}
	st.Cycles = ctx.Clock.Total() - start
	return st, nil
}

// ValueFor is the deterministic value a replayed insert writes.
func ValueFor(key uint64, size int) []byte {
	if size < 1 {
		size = 1
	}
	b := make([]byte, size)
	x := key*0x9E3779B97F4A7C15 + 1
	for i := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x)
	}
	return b
}

// Model computes the expected final contents of a store after replaying t —
// the reference for post-replay (or post-crash) verification.
func (t *Trace) Model() map[uint64][]byte {
	m := map[uint64][]byte{}
	for _, r := range t.Records {
		switch r.Op {
		case OpInsert:
			m[r.Key] = ValueFor(r.Key, int(r.Size))
		case OpDelete:
			delete(m, r.Key)
		}
	}
	return m
}
