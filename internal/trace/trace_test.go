package trace_test

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"ffccd/internal/checker"
	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
	"ffccd/internal/trace"
)

func newStore(t *testing.T, name string) (*pmop.Pool, *sim.Ctx, ds.Store) {
	t.Helper()
	cfg := sim.DefaultConfig()
	rt := pmop.NewRuntime(&cfg, 64<<20)
	reg := pmop.NewRegistry()
	ds.RegisterTypes(reg)
	p, err := rt.Create("trace", 32<<20, 12, reg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewCtx(&cfg)
	var s ds.Store
	switch name {
	case "LL":
		s, err = ds.NewList(ctx, p)
	case "BT":
		s, err = ds.NewBPTree(ctx, p)
	}
	if err != nil {
		t.Fatal(err)
	}
	return p, ctx, s
}

func TestRoundTripSerialization(t *testing.T) {
	tr := trace.Generate(trace.GenerateConfig{
		Ops: 1000, KeySpace: 200, MinVal: 16, MaxVal: 128,
		InsertPct: 60, DeletePct: 20, Seed: 1,
	})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(tr.Records) {
		t.Fatalf("records %d vs %d", len(back.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if back.Records[i] != tr.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := trace.Read(bytes.NewReader([]byte("not a trace at all!!"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReplayMatchesModel(t *testing.T) {
	tr := trace.Generate(trace.GenerateConfig{
		Ops: 3000, KeySpace: 400, MinVal: 16, MaxVal: 200,
		InsertPct: 55, DeletePct: 25, Seed: 9,
	})
	_, ctx, s := newStore(t, "LL")
	st, err := trace.Replay(ctx, s, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserts == 0 || st.Deletes == 0 || st.Gets == 0 || st.Cycles == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	model := tr.Model()
	if err := checker.CheckStore(ctx, s, model); err != nil {
		t.Fatal(err)
	}
}

func TestReplayIsDeterministicAcrossStores(t *testing.T) {
	// The same trace replayed on two structures yields the same key→value
	// mapping (fragmentation histories differ, contents must not).
	tr := trace.Generate(trace.GenerateConfig{
		Ops: 2000, KeySpace: 300, MinVal: 16, MaxVal: 100,
		InsertPct: 60, DeletePct: 20, Seed: 4,
	})
	_, ctx1, s1 := newStore(t, "LL")
	_, ctx2, s2 := newStore(t, "BT")
	if _, err := trace.Replay(ctx1, s1, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Replay(ctx2, s2, tr); err != nil {
		t.Fatal(err)
	}
	model := tr.Model()
	if err := checker.CheckStore(ctx1, s1, model); err != nil {
		t.Fatalf("LL: %v", err)
	}
	if err := checker.CheckStore(ctx2, s2, model); err != nil {
		t.Fatalf("BT: %v", err)
	}
}

func TestReplayWithDefragAndCrash(t *testing.T) {
	// Replay half a trace, crash mid-defragmentation, recover, replay the
	// rest, verify against the full model — the trace makes the whole
	// scenario exactly reproducible.
	tr := trace.Generate(trace.GenerateConfig{
		Ops: 2400, KeySpace: 350, MinVal: 16, MaxVal: 160,
		InsertPct: 55, DeletePct: 25, Seed: 12,
	})
	half := &trace.Trace{Records: tr.Records[:1200]}
	rest := &trace.Trace{Records: tr.Records[1200:]}

	cfg := sim.DefaultConfig()
	cfg.CacheBytes = 256 * 1024
	rt := pmop.NewRuntime(&cfg, 64<<20)
	reg := pmop.NewRegistry()
	ds.RegisterTypes(reg)
	p, _ := rt.Create("trace", 32<<20, 12, reg)
	ctx := sim.NewCtx(&cfg)
	s, _ := ds.NewList(ctx, p)
	if _, err := trace.Replay(ctx, s, half); err != nil {
		t.Fatal(err)
	}
	p.Device().FlushAll(ctx)

	opt := core.DefaultOptions()
	opt.Scheme = core.SchemeFFCCD
	opt.TriggerRatio, opt.TargetRatio = 1.02, 1.01
	eng := core.NewEngine(p, opt)
	if eng.BeginCycle(ctx) {
		eng.StepCompaction(ctx, 150)
	}
	rt.Device().Crash()
	if eng.RBB() != nil {
		eng.RBB().PowerLossFlush()
	}

	rt2, err := pmop.Attach(&cfg, rt.Device())
	if err != nil {
		t.Fatal(err)
	}
	reg2 := pmop.NewRegistry()
	ds.RegisterTypes(reg2)
	p2, err := rt2.Open("trace", reg2)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := core.Recover(ctx, p2, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	s2, err := ds.NewList(ctx, p2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Replay(ctx, s2, rest); err != nil {
		t.Fatal(err)
	}
	if err := checker.CheckStore(ctx, s2, tr.Model()); err != nil {
		t.Fatal(err)
	}
}

func TestValueForDeterministicAndSized(t *testing.T) {
	a := trace.ValueFor(42, 100)
	b := trace.ValueFor(42, 100)
	if len(a) != 100 || !bytes.Equal(a, b) {
		t.Fatal("ValueFor must be a pure function of (key, size)")
	}
	if !bytes.Equal(trace.ValueFor(0, 0), trace.ValueFor(0, 1)) {
		t.Fatal("size < 1 must clamp to 1 byte")
	}
	if bytes.Equal(trace.ValueFor(1, 64), trace.ValueFor(2, 64)) {
		t.Fatal("different keys should produce different values")
	}
}

func TestGenerateMixAndDeterminism(t *testing.T) {
	cfg := trace.GenerateConfig{
		Ops: 20000, KeySpace: 5000, MinVal: 16, MaxVal: 64,
		InsertPct: 50, DeletePct: 30, Seed: 3,
	}
	tr := trace.Generate(cfg)
	if len(tr.Records) != cfg.Ops {
		t.Fatalf("generated %d records, want %d", len(tr.Records), cfg.Ops)
	}
	var ins, del, get int
	for _, r := range tr.Records {
		switch r.Op {
		case trace.OpInsert:
			ins++
			if int(r.Size) < cfg.MinVal || int(r.Size) > cfg.MaxVal {
				t.Fatalf("insert size %d outside [%d,%d]", r.Size, cfg.MinVal, cfg.MaxVal)
			}
		case trace.OpDelete:
			del++
		default:
			get++
		}
		if r.Key >= cfg.KeySpace {
			t.Fatalf("key %d outside key space %d", r.Key, cfg.KeySpace)
		}
	}
	// The mix must be within a few points of the requested percentages.
	near := func(got, wantPct int) bool {
		want := cfg.Ops * wantPct / 100
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < cfg.Ops/50 // 2% tolerance
	}
	if !near(ins, 50) || !near(del, 30) || !near(get, 20) {
		t.Fatalf("mix %d/%d/%d far from 50/30/20 of %d", ins, del, get, cfg.Ops)
	}
	// Same seed → identical trace.
	tr2 := trace.Generate(cfg)
	for i := range tr.Records {
		if tr.Records[i] != tr2.Records[i] {
			t.Fatal("same seed must generate an identical trace")
		}
	}
	// Different seed → different trace.
	cfg.Seed = 4
	tr3 := trace.Generate(cfg)
	same := true
	for i := range tr.Records {
		if tr.Records[i] != tr3.Records[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should generate different traces")
	}
}

func TestModelInsertThenDelete(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		{Op: trace.OpInsert, Key: 1, Size: 8},
		{Op: trace.OpInsert, Key: 2, Size: 8},
		{Op: trace.OpDelete, Key: 1},
		{Op: trace.OpInsert, Key: 2, Size: 16}, // overwrite
		{Op: trace.OpGet, Key: 2},
	}}
	m := tr.Model()
	if _, ok := m[1]; ok {
		t.Fatal("deleted key survived in model")
	}
	if v, ok := m[2]; !ok || len(v) != 16 {
		t.Fatalf("overwrite not reflected: %v", v)
	}
	if len(m) != 1 {
		t.Fatalf("model has %d keys, want 1", len(m))
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := (&trace.Trace{}).Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 0 {
		t.Fatalf("empty trace read back %d records", len(back.Records))
	}
}

func TestReadRejectsTruncatedStream(t *testing.T) {
	tr := trace.Generate(trace.GenerateConfig{
		Ops: 50, KeySpace: 10, MinVal: 8, MaxVal: 8, InsertPct: 100, Seed: 1,
	})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-7] // mid-record
	if _, err := trace.Read(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestReadRejectsWrongMagicInWellFormedHeader(t *testing.T) {
	// A structurally valid 16-byte header whose magic is off by one bit must
	// be rejected by the magic check itself, not by a length error further in.
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], 0x46464344_54524331^1)
	binary.LittleEndian.PutUint64(hdr[8:16], 0) // zero records: nothing else to object to
	_, err := trace.Read(bytes.NewReader(hdr[:]))
	if err == nil {
		t.Fatal("wrong magic accepted")
	}
	if !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("want a bad-magic error, got: %v", err)
	}
}

func TestReadRejectsTruncatedHeader(t *testing.T) {
	// Fewer than 16 header bytes — including a prefix that starts with the
	// correct magic — must fail cleanly rather than read records.
	tr := trace.Generate(trace.GenerateConfig{
		Ops: 10, KeySpace: 10, MinVal: 8, MaxVal: 8, InsertPct: 100, Seed: 1,
	})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 8, 15} {
		if _, err := trace.Read(bytes.NewReader(buf.Bytes()[:n])); err == nil {
			t.Fatalf("%d-byte header accepted", n)
		}
	}
}

func TestReadRejectsHeaderPromisingMissingRecords(t *testing.T) {
	// A valid header whose record count exceeds the stream's contents must
	// report truncation at the first absent record.
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], 0x46464344_54524331)
	binary.LittleEndian.PutUint64(hdr[8:16], 3)
	_, err := trace.Read(bytes.NewReader(hdr[:]))
	if err == nil {
		t.Fatal("record-less stream accepted")
	}
	if !strings.Contains(err.Error(), "truncated at record 0") {
		t.Fatalf("want truncation at record 0, got: %v", err)
	}
}

func TestReplayRejectsUnknownOp(t *testing.T) {
	_, ctx, s := newStore(t, "LL")
	bad := &trace.Trace{Records: []trace.Record{{Op: trace.Op(9), Key: 1}}}
	if _, err := trace.Replay(ctx, s, bad); err == nil {
		t.Fatal("unknown op accepted")
	}
}
