package checker_test

// Failure-path tests for CheckGraph: each test plants one specific
// corruption a crash-consistency bug would leave behind — a dangling
// forwarded pointer, a stale moved bit, GC metadata disagreeing with the
// heap — and asserts the checker reports it with a descriptive error.

import (
	"strings"
	"testing"

	"ffccd/internal/alloc"
	"ffccd/internal/checker"
	"ffccd/internal/core"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// defragged builds a list, fragments it, and runs one full compaction
// cycle so the pool carries real epoch metadata (phase epoch >= 1).
func defragged(t *testing.T) (*pmop.Pool, *sim.Ctx) {
	t.Helper()
	p, ctx, l := setup(t)
	for i := uint64(0); i < 1500; i++ {
		l.Insert(ctx, i, []byte{byte(i), byte(i >> 8), 0x3C})
	}
	for i := uint64(0); i < 1500; i += 2 {
		l.Delete(ctx, i)
	}
	opt := core.DefaultOptions()
	opt.TriggerRatio, opt.TargetRatio = 1.05, 1.02
	eng := core.NewEngine(p, opt)
	defer eng.Close()
	if !eng.RunCycle(ctx) {
		t.Skip("heap too dense to open an epoch")
	}
	if _, err := checker.CheckGraph(ctx, p); err != nil {
		t.Fatalf("clean post-defrag graph rejected: %v", err)
	}
	return p, ctx
}

// TestMetaLayoutLockstep pins checker's mirrored metadata arithmetic to
// core's authoritative layout (checker cannot import core from non-test
// code, so the constants are duplicated and this test keeps them honest).
func TestMetaLayoutLockstep(t *testing.T) {
	p, _, _ := setup(t)
	got := checker.MetaLayoutFor(p)
	want := core.Meta(p)
	if got.ReachedOff != want.ReachedOff || got.MovedOff != want.MovedOff || got.PMFTOff != want.PMFTOff {
		t.Fatalf("layout drift: checker %+v vs core %+v", got, want)
	}
	if want.MovedBytesPerFrame != alloc.SlotsPerFrame/8 || want.PMFTEntrySize != 8+alloc.SlotsPerFrame {
		t.Fatalf("core strides changed: %+v — update checker's mirror", want)
	}
}

// TestDetectsDanglingForwardedPointer simulates a missed reference fixup:
// after a completed epoch, a reachable pointer still aims into a released
// relocation frame (the address its referent was forwarded away from).
func TestDetectsDanglingForwardedPointer(t *testing.T) {
	p, ctx := defragged(t)
	heap := p.Heap()
	free := -1
	for f := 0; f < heap.Frames(); f++ {
		if heap.State(f) == alloc.FrameFree {
			free = f
			break
		}
	}
	if free < 0 {
		t.Skip("no released frame to dangle into")
	}
	head := p.Root(ctx)
	node := p.ReadPtr(ctx, head, 0)
	stale := pmop.MakePtr(p.ID(), heap.OffsetOf(free, 0)+pmop.HeaderSize)
	p.RawStoreU64(ctx, node.Offset()+16, uint64(stale))
	_, err := checker.CheckGraph(ctx, p)
	if err == nil || !strings.Contains(err.Error(), "free frame") && !strings.Contains(err.Error(), "allocation start") {
		t.Fatalf("dangling forwarded pointer undetected: %v", err)
	}
}

// TestDetectsStaleMovedBit plants a moved bit for a slot the current
// epoch's PMFT does not map — the residue a lost moved-bitmap reset (or a
// moved-bit write landing on the wrong frame) would leave.
func TestDetectsStaleMovedBit(t *testing.T) {
	p, ctx := defragged(t)
	_, _, epoch := core.UnpackPhaseWord(p.GCPhase(ctx))
	if epoch == 0 {
		t.Fatal("defragged pool has phase epoch 0")
	}
	mv := core.Meta(p)
	const frame, slot = 0, 9
	entry := mv.PMFTOff + uint64(frame)*mv.PMFTEntrySize
	// Claim the frame for the current epoch with an explicitly unmapped slot.
	p.RawStoreU64(ctx, entry, epoch) // epoch u32 + destFrame u32 (0)
	p.RawStore(ctx, entry+8+uint64(slot), []byte{mv.MinorInvalid})
	off := mv.MovedOff + uint64(frame)*mv.MovedBytesPerFrame + uint64(slot/8)
	p.RawStore(ctx, off, []byte{1 << (slot % 8)})
	_, err := checker.CheckGraph(ctx, p)
	if err == nil || !strings.Contains(err.Error(), "stale moved bit") {
		t.Fatalf("stale moved bit undetected: %v", err)
	}
}

// TestDetectsPhaseFrameDisagreement covers the summary-vs-heap metadata
// check: an idle phase word while a frame still claims to be part of an
// epoch (relocation source or destination) is a half-finished terminate.
func TestDetectsPhaseFrameDisagreement(t *testing.T) {
	for _, st := range []alloc.FrameState{alloc.FrameRelocation, alloc.FrameDestination} {
		p, ctx := defragged(t)
		heap := p.Heap()
		victim := -1
		for f := 0; f < heap.Frames(); f++ {
			if heap.State(f) == alloc.FrameActive {
				victim = f
				break
			}
		}
		if victim < 0 {
			t.Fatal("no active frame")
		}
		heap.SetState(victim, st)
		_, err := checker.CheckGraph(ctx, p)
		if err == nil || !strings.Contains(err.Error(), "idle phase but frame") {
			t.Fatalf("state %d disagreement undetected: %v", st, err)
		}
	}
}
