package checker

// Durable-ack validation for the serving path. The batch checkers validate a
// workload model built by the driver; the serving path has a sharper,
// client-visible contract: a SET the server *acknowledged* (its transaction
// committed and the completion was handed back to the client in virtual
// time) must survive any later power failure. DurableAcks is that statement
// turned into a pass/fail check, run right after recovery while the cache is
// cold so reads reflect the persistent image.

import (
	"fmt"

	"ffccd/internal/ds"
	"ffccd/internal/sim"
)

// PendingWrite is the one store sub-transaction that may have been in flight
// at the crash (Val nil = delete). Store transactions are atomic, so the
// post-crash image reflects it either fully or not at all; the checker
// accepts both outcomes but nothing in between.
type PendingWrite struct {
	Key uint64
	Val []byte
}

// DurableAcks verifies the serving path's crash contract: every write the
// server acknowledged before the power failure reads back with its
// last-acknowledged value, keys whose last acknowledged operation was a
// delete are absent, and the store holds nothing else (no torn or
// half-relocated object is reachable — CheckStore's length check plus the
// read path's header validation cover that). The check passes against either
// the acked model or acked±pending and returns the variant that verified —
// the model the resumed server continues against.
func DurableAcks(ctx *sim.Ctx, s ds.Store, acked map[uint64][]byte, pending *PendingWrite) (map[uint64][]byte, error) {
	err := CheckStore(ctx, s, acked)
	if err == nil {
		return acked, nil
	}
	if pending == nil {
		return nil, fmt.Errorf("checker: durable-ack violation: %w", err)
	}
	alt := make(map[uint64][]byte, len(acked)+1)
	for k, v := range acked {
		alt[k] = v
	}
	if pending.Val != nil {
		alt[pending.Key] = pending.Val
	} else {
		delete(alt, pending.Key)
	}
	if err2 := CheckStore(ctx, s, alt); err2 == nil {
		return alt, nil
	}
	return nil, fmt.Errorf("checker: durable-ack violation: %w (still failing with the in-flight write applied)", err)
}

// DurableAcksShard is DurableAcks for one machine of a sharded deployment:
// the same check, with the shard index stitched into the violation so a
// multi-shard trial's verdict names the machine that lost the write.
func DurableAcksShard(ctx *sim.Ctx, shard int, s ds.Store, acked map[uint64][]byte, pending *PendingWrite) (map[uint64][]byte, error) {
	model, err := DurableAcks(ctx, s, acked, pending)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", shard, err)
	}
	return model, nil
}
