package checker_test

import (
	"strings"
	"testing"

	"ffccd/internal/checker"
	"ffccd/internal/ds"
	"ffccd/internal/sim"
)

// populate inserts n keys into the list and returns the matching acked model.
func populate(t *testing.T, ctx *sim.Ctx, l *ds.List, n uint64) map[uint64][]byte {
	t.Helper()
	model := map[uint64][]byte{}
	for i := uint64(0); i < n; i++ {
		v := []byte{byte(i), byte(i >> 8), 0x5a}
		if err := l.Insert(ctx, i, v); err != nil {
			t.Fatal(err)
		}
		model[i] = v
	}
	return model
}

func TestDurableAcksExactModel(t *testing.T) {
	_, ctx, l := setup(t)
	acked := populate(t, ctx, l, 200)
	got, err := checker.DurableAcks(ctx, l, acked, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(acked) {
		t.Fatalf("verified model has %d keys, want %d", len(got), len(acked))
	}
}

// The in-flight write landed before the crash: the store holds acked+pending
// and the checker must accept it, returning the extended model.
func TestDurableAcksPendingApplied(t *testing.T) {
	_, ctx, l := setup(t)
	acked := populate(t, ctx, l, 100)
	inflight := []byte{0xaa, 0xbb}
	if err := l.Insert(ctx, 500, inflight); err != nil {
		t.Fatal(err)
	}
	pend := &checker.PendingWrite{Key: 500, Val: inflight}

	got, err := checker.DurableAcks(ctx, l, acked, pend)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[500]) != string(inflight) {
		t.Fatalf("verified model missing the applied in-flight write: %v", got[500])
	}
}

// The in-flight write was torn away by the crash: the store holds exactly the
// acked model and the checker must accept it without applying the pending op.
func TestDurableAcksPendingDropped(t *testing.T) {
	_, ctx, l := setup(t)
	acked := populate(t, ctx, l, 100)
	pend := &checker.PendingWrite{Key: 500, Val: []byte{0xaa}}

	got, err := checker.DurableAcks(ctx, l, acked, pend)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got[500]; ok {
		t.Fatal("verified model contains a write that never reached the store")
	}
}

// An in-flight DELETE that landed: the key is gone from the store even though
// the acked model still carries it.
func TestDurableAcksPendingDeleteApplied(t *testing.T) {
	_, ctx, l := setup(t)
	acked := populate(t, ctx, l, 100)
	if _, err := l.Delete(ctx, 42); err != nil {
		t.Fatal(err)
	}
	pend := &checker.PendingWrite{Key: 42, Val: nil}

	got, err := checker.DurableAcks(ctx, l, acked, pend)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got[42]; ok {
		t.Fatal("verified model still carries the deleted key")
	}
}

// A lost acknowledged write is a contract violation even when a pending write
// is on offer — the pending op can't explain a DIFFERENT missing key.
func TestDurableAcksLostAckCaught(t *testing.T) {
	_, ctx, l := setup(t)
	acked := populate(t, ctx, l, 100)
	if _, err := l.Delete(ctx, 7); err != nil { // 7 was acked, then silently lost
		t.Fatal(err)
	}
	pend := &checker.PendingWrite{Key: 500, Val: []byte{0xaa}}

	if _, err := checker.DurableAcks(ctx, l, acked, pend); err == nil {
		t.Fatal("lost acknowledged write not caught")
	} else if !strings.Contains(err.Error(), "durable-ack") {
		t.Fatalf("error does not name the contract: %v", err)
	}
}

// A stale value (the store kept an older version of an acked overwrite) is a
// violation too: acks promise the LAST acknowledged value.
func TestDurableAcksStaleValueCaught(t *testing.T) {
	_, ctx, l := setup(t)
	acked := populate(t, ctx, l, 100)
	acked[3] = []byte{0xde, 0xad} // client was acked this value; store has the old one

	if _, err := checker.DurableAcks(ctx, l, acked, nil); err == nil {
		t.Fatal("stale acknowledged value not caught")
	} else if !strings.Contains(err.Error(), "durable-ack") {
		t.Fatalf("error does not name the contract: %v", err)
	}
}
